//! Versioned machine snapshots (`psi-snapshot-v1`).
//!
//! A snapshot captures everything needed to rebuild a consulted,
//! never-run [`Machine`] template: the exact consulted source text,
//! the full [`MachineConfig`] (cache geometry, lane, budgets,
//! ablation flags), and an integrity fingerprint of the compiled code
//! image. [`restore`] recompiles the source deterministically and
//! verifies the fingerprint, so a snapshot taken by one build of the
//! compiler refuses — with a typed error, never a panic — to restore
//! on a build whose codegen would produce a different image.
//!
//! The format is one flat JSON line in the [`crate::json`] codec, the
//! same line shape as the event export and the `psi-server` wire
//! protocol. Nested structure is deliberately avoided: the config
//! flattens into `cache_*` / `limit_*` prefixed scalars.
//!
//! Snapshots are restricted to pre-run machines for the same reason
//! [`Machine::fork`] is: query compilation appends entry stubs to the
//! image, after which "recompile the source" no longer reproduces it.
//! The serving lifecycle this supports is load → snapshot → (persist,
//! ship, restart) → restore → fork per session.

use crate::json::{parse_object, JsonObject, ObjectBuilder};
use kl0::Program;
use psi_cache::{CacheConfig, WritePolicy};
use psi_core::{Measurement, PsiError, Result};
use psi_machine::{Machine, MachineConfig, ResourceLimits};
use std::time::Duration;

/// Schema tag of the current snapshot format.
pub const SNAPSHOT_SCHEMA: &str = "psi-snapshot-v1";

/// Serializes a consulted, never-run machine (plus the exact source
/// text it was consulted with) into one `psi-snapshot-v1` JSON line.
///
/// The caller supplies `source` because the machine does not retain
/// source text; it must be the exact text consulted (for pooled
/// machines, the pool key). The snapshot embeds a fingerprint of the
/// machine's compiled image, so a `source` that does not compile to
/// this machine's image is caught at [`restore`] time.
///
/// # Errors
///
/// [`PsiError::Snapshot`] when the machine has already compiled or
/// run a query (snapshots capture templates, not run state).
pub fn snapshot(machine: &Machine, source: &str) -> Result<String> {
    if !machine.is_pristine() {
        return Err(PsiError::Snapshot {
            detail: "snapshot requires a consulted, never-run machine".into(),
        });
    }
    let config = machine.config();
    let mut b = ObjectBuilder::new()
        .str("schema", SNAPSHOT_SCHEMA)
        .str("source", source)
        .u64("cycle_ns", config.cycle_ns)
        .bool("frame_buffering", config.frame_buffering)
        .bool("tail_recursion_opt", config.tail_recursion_opt)
        .bool("trace_memory", config.trace_memory)
        .bool("trace_events", config.trace_events)
        .bool("clause_indexing", config.clause_indexing)
        .str("measurement", config.measurement.label())
        .bool("compiled", config.compiled);
    b = match &config.cache {
        Some(c) => b
            .bool("cache", true)
            .u64("cache_capacity_words", c.capacity_words as u64)
            .u64("cache_block_words", c.block_words as u64)
            .u64("cache_ways", c.ways as u64)
            .str(
                "cache_policy",
                match c.policy {
                    WritePolicy::StoreIn => "store_in",
                    WritePolicy::StoreThrough => "store_through",
                },
            )
            .bool("cache_write_stack_no_fetch", c.write_stack_no_fetch)
            .u64("cache_hit_ns", c.hit_ns)
            .u64("cache_miss_ns", c.miss_ns)
            .u64("cache_memory_busy_ns", c.memory_busy_ns),
        None => b.bool("cache", false),
    };
    b = limits_fields(b, &config.limits);
    let image = machine.image();
    Ok(b.u64("image_words", image.heap().len() as u64)
        .u64("image_preds", image.predicates().len() as u64)
        .u64("image_fnv", image_fingerprint(machine))
        .finish())
}

/// Rebuilds a machine from a [`snapshot`] line: checks the schema
/// tag, reconstructs the [`MachineConfig`], recompiles the embedded
/// source, and verifies the restored image against the snapshot's
/// fingerprint. The result is a pristine template, bit-identical in
/// behaviour to the machine that was snapshotted (round-trip
/// regression-tested in `tests/fork.rs`).
///
/// # Errors
///
/// [`PsiError::Snapshot`] for a line that is not a snapshot object,
/// an unsupported schema version, an out-of-range or unknown-variant
/// field, or a fingerprint mismatch (the restoring build compiles the
/// source to a different image); [`PsiError::Syntax`] for a missing
/// or mistyped field; [`PsiError::Syntax`] / [`PsiError::Compile`] if
/// the embedded source no longer parses or compiles. Never panics.
pub fn restore(line: &str) -> Result<Machine> {
    let obj = parse_object(line).map_err(|e| PsiError::Snapshot {
        detail: format!("not a snapshot object: {e}"),
    })?;
    let schema = obj.str_field("schema").map_err(|_| PsiError::Snapshot {
        detail: "missing schema field".into(),
    })?;
    if schema != SNAPSHOT_SCHEMA {
        return Err(PsiError::Snapshot {
            detail: format!("unsupported schema `{schema}` (expected `{SNAPSHOT_SCHEMA}`)"),
        });
    }
    let source = obj.str_field("source")?.to_owned();
    let config = MachineConfig {
        cache: read_cache(&obj)?,
        cycle_ns: obj.u64_field("cycle_ns")?,
        limits: read_limits(&obj)?,
        frame_buffering: bool_field(&obj, "frame_buffering")?,
        tail_recursion_opt: bool_field(&obj, "tail_recursion_opt")?,
        trace_memory: bool_field(&obj, "trace_memory")?,
        trace_events: bool_field(&obj, "trace_events")?,
        clause_indexing: bool_field(&obj, "clause_indexing")?,
        measurement: match obj.str_field("measurement")? {
            "fidelity" => Measurement::Full,
            "throughput" => Measurement::Off,
            other => {
                return Err(PsiError::Snapshot {
                    detail: format!("unknown measurement lane `{other}`"),
                })
            }
        },
        // Absent in snapshots written before the compiled lane
        // existed; those machines ran uncompiled, so false is the
        // faithful default, not a guess.
        compiled: bool_field(&obj, "compiled").unwrap_or(false),
    };
    let program = Program::parse(&source)?;
    let machine = Machine::load(&program, config)?;
    let image = machine.image();
    let (words, preds, fnv) = (
        image.heap().len() as u64,
        image.predicates().len() as u64,
        image_fingerprint(&machine),
    );
    let expect = (
        obj.u64_field("image_words")?,
        obj.u64_field("image_preds")?,
        obj.u64_field("image_fnv")?,
    );
    if (words, preds, fnv) != expect {
        return Err(PsiError::Snapshot {
            detail: format!(
                "restored image diverges from snapshot \
                 (got {words} words / {preds} preds / fnv {fnv:#x}, \
                 snapshot has {} / {} / {:#x}); \
                 the snapshot was produced by an incompatible compiler",
                expect.0, expect.1, expect.2
            ),
        });
    }
    Ok(machine)
}

/// FNV-1a over the raw encodings of every compiled code word — a
/// cheap, deterministic fingerprint of the image the consulted source
/// compiled to.
fn image_fingerprint(machine: &Machine) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for w in machine.image().heap() {
        for byte in w.raw().to_le_bytes() {
            h ^= byte as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    h
}

fn limits_fields(mut b: ObjectBuilder, l: &ResourceLimits) -> ObjectBuilder {
    // Unset budgets are omitted rather than written as null — the
    // flat codec has no null, and absence is the natural encoding of
    // "unlimited".
    if let Some(v) = l.max_steps {
        b = b.u64("limit_steps", v);
    }
    if let Some(v) = l.max_heap_words {
        b = b.u64("limit_heap_words", v as u64);
    }
    if let Some(v) = l.max_local_words {
        b = b.u64("limit_local_words", v as u64);
    }
    if let Some(v) = l.max_global_words {
        b = b.u64("limit_global_words", v as u64);
    }
    if let Some(v) = l.max_control_words {
        b = b.u64("limit_control_words", v as u64);
    }
    if let Some(v) = l.max_trail_words {
        b = b.u64("limit_trail_words", v as u64);
    }
    if let Some(v) = l.deadline {
        b = b.u64("limit_deadline_ms", v.as_millis() as u64);
    }
    b
}

fn read_limits(obj: &JsonObject) -> Result<ResourceLimits> {
    Ok(ResourceLimits {
        max_steps: opt_u64(obj, "limit_steps")?,
        max_heap_words: opt_u32(obj, "limit_heap_words")?,
        max_local_words: opt_u32(obj, "limit_local_words")?,
        max_global_words: opt_u32(obj, "limit_global_words")?,
        max_control_words: opt_u32(obj, "limit_control_words")?,
        max_trail_words: opt_u32(obj, "limit_trail_words")?,
        deadline: opt_u64(obj, "limit_deadline_ms")?.map(Duration::from_millis),
    })
}

fn read_cache(obj: &JsonObject) -> Result<Option<CacheConfig>> {
    if !bool_field(obj, "cache")? {
        return Ok(None);
    }
    Ok(Some(CacheConfig {
        capacity_words: u32_field(obj, "cache_capacity_words")?,
        block_words: u32_field(obj, "cache_block_words")?,
        ways: u32_field(obj, "cache_ways")?,
        policy: match obj.str_field("cache_policy")? {
            "store_in" => WritePolicy::StoreIn,
            "store_through" => WritePolicy::StoreThrough,
            other => {
                return Err(PsiError::Snapshot {
                    detail: format!("unknown cache policy `{other}`"),
                })
            }
        },
        write_stack_no_fetch: bool_field(obj, "cache_write_stack_no_fetch")?,
        hit_ns: obj.u64_field("cache_hit_ns")?,
        miss_ns: obj.u64_field("cache_miss_ns")?,
        memory_busy_ns: obj.u64_field("cache_memory_busy_ns")?,
    }))
}

fn bool_field(obj: &JsonObject, key: &str) -> Result<bool> {
    obj.get(key)
        .and_then(crate::json::JsonValue::as_bool)
        .ok_or_else(|| PsiError::Snapshot {
            detail: format!("field `{key}` missing or not a boolean"),
        })
}

fn u32_field(obj: &JsonObject, key: &str) -> Result<u32> {
    u32::try_from(obj.u64_field(key)?).map_err(|_| PsiError::Snapshot {
        detail: format!("field `{key}` exceeds 32 bits"),
    })
}

fn opt_u64(obj: &JsonObject, key: &str) -> Result<Option<u64>> {
    match obj.get(key) {
        None => Ok(None),
        Some(v) => v.as_u64().map(Some).ok_or_else(|| PsiError::Snapshot {
            detail: format!("field `{key}` is not a non-negative integer"),
        }),
    }
}

fn opt_u32(obj: &JsonObject, key: &str) -> Result<Option<u32>> {
    match opt_u64(obj, key)? {
        None => Ok(None),
        Some(v) => u32::try_from(v).map(Some).map_err(|_| PsiError::Snapshot {
            detail: format!("field `{key}` exceeds 32 bits"),
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SRC: &str = "app([], L, L).\napp([H|T], L, [H|R]) :- app(T, L, R).";

    fn template(config: MachineConfig) -> Machine {
        Machine::load(&Program::parse(SRC).unwrap(), config).unwrap()
    }

    #[test]
    fn round_trip_restores_an_equivalent_pristine_machine() {
        let mut config = MachineConfig::psi_indexed();
        config.limits = ResourceLimits::unlimited()
            .with_max_steps(1_000_000)
            .with_deadline(Duration::from_secs(5));
        config.limits.max_heap_words = Some(1 << 20);
        let m = template(config);
        let line = snapshot(&m, SRC).unwrap();
        let restored = restore(&line).unwrap();
        assert!(restored.is_pristine());
        assert_eq!(restored.config().limits, m.config().limits);
        assert_eq!(restored.config().cache, m.config().cache);
        assert_eq!(
            restored.config().clause_indexing,
            m.config().clause_indexing
        );
        // Behavioural equivalence: the restored machine runs
        // bit-identically to the original.
        let mut a = m;
        let mut b = restored;
        assert_eq!(
            a.solve("app(X, Y, [1,2,3])", 9).unwrap(),
            b.solve("app(X, Y, [1,2,3])", 9).unwrap()
        );
        assert_eq!(a.stats(), b.stats());
    }

    #[test]
    fn run_machines_cannot_be_snapshotted() {
        let mut m = template(MachineConfig::psi());
        m.solve("app([], X, [1])", 1).unwrap();
        let err = snapshot(&m, SRC).unwrap_err();
        assert_eq!(err.wire_kind(), "snapshot");
    }

    #[test]
    fn version_mismatch_is_a_typed_error() {
        let m = template(MachineConfig::psi());
        let line = snapshot(&m, SRC).unwrap();
        let wrong = line.replace("psi-snapshot-v1", "psi-snapshot-v999");
        let err = restore(&wrong).unwrap_err();
        assert_eq!(err.wire_kind(), "snapshot");
        assert!(err.to_string().contains("psi-snapshot-v999"), "{err}");
    }

    #[test]
    fn tampered_fingerprint_is_a_typed_error_not_a_panic() {
        let m = template(MachineConfig::psi());
        let line = snapshot(&m, SRC).unwrap();
        let obj = parse_object(&line).unwrap();
        let fnv = obj.u64_field("image_fnv").unwrap();
        let tampered = line.replace(&fnv.to_string(), &(fnv ^ 1).to_string());
        let err = restore(&tampered).unwrap_err();
        assert_eq!(err.wire_kind(), "snapshot");
    }

    #[test]
    fn garbage_lines_are_typed_errors() {
        for line in ["", "not json", "{\"schema\":17}", "{\"x\":1}"] {
            let err = restore(line).unwrap_err();
            assert_eq!(err.wire_kind(), "snapshot", "{line:?}");
        }
    }

    #[test]
    fn uncached_throughput_config_survives_the_trip() {
        let mut config = MachineConfig::psi_throughput();
        config.cache = None;
        let m = template(config);
        let line = snapshot(&m, SRC).unwrap();
        let restored = restore(&line).unwrap();
        assert!(restored.config().cache.is_none());
        assert_eq!(restored.config().measurement, Measurement::Off);
    }
}
