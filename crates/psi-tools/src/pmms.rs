//! PMMS: trace-driven cache re-simulation.
//!
//! "For analyzing the dynamic characteristics of cache memory, we also
//! made a cache memory simulator called PMMS. Hit ratios and its
//! variations according to the cache memory size were obtained by
//! PMMS with cache command patterns and memory addresses collected by
//! COLLECT" (§4.1). This module replays collected traces through any
//! [`CacheConfig`] and computes the paper's performance-improvement
//! ratio (Figure 1) and the §4.2 associativity and write-policy
//! studies.

use psi_cache::{Cache, CacheConfig, CacheStats};
use psi_machine::Machine;
use psi_mem::TraceEntry;

/// Replays a trace through a cache configuration, advancing the cache
/// clock by the actual inter-access step gaps, and returns the final
/// statistics plus the total simulated time in nanoseconds.
pub fn replay(
    trace: &[TraceEntry],
    config: CacheConfig,
    cycle_ns: u64,
    total_steps: u64,
) -> (CacheStats, u64) {
    let mut cache = Cache::new(config);
    let mut stall = 0u64;
    let mut prev_step = 0u64;
    for e in trace {
        let gap = e.step.saturating_sub(prev_step);
        prev_step = e.step;
        cache.advance(gap * cycle_ns);
        stall += cache.access(e.command, e.address).stall_ns;
    }
    let time = total_steps * cycle_ns + stall;
    (*cache.stats(), time)
}

/// The paper's Figure 1 metric:
/// `performance improvement ratio = (Tnc/Tc − 1) × 100`, where `Tnc`
/// is the execution time without cache and `Tc` with the given cache.
pub fn improvement_ratio_pct(
    trace: &[TraceEntry],
    config: CacheConfig,
    cycle_ns: u64,
    total_steps: u64,
) -> f64 {
    let miss_extra = config.miss_extra_ns();
    let (_, tc) = replay(trace, config, cycle_ns, total_steps);
    if tc == 0 {
        // An empty trace of a zero-step run has no execution time to
        // improve; without this guard the 0/0 below would yield NaN
        // and poison the Figure 1 output.
        return 0.0;
    }
    let tnc = total_steps * cycle_ns + trace.len() as u64 * miss_extra;
    (tnc as f64 / tc as f64 - 1.0) * 100.0
}

/// The Figure 1 capacity axis: 8 W – 8 KW by powers of two ("other
/// specifications are same with the cache memory of the PSI").
pub fn figure1_capacities() -> Vec<u32> {
    (0..11).map(|i| 8u32 << i).collect() // 8 .. 8192
}

/// Runs one closure per item on up to `threads` scoped workers,
/// handing items out through a shared atomic cursor (work stealing:
/// long cells never serialize short ones behind them) and returning
/// the results **in input order**. `threads <= 1` maps on the calling
/// thread with no scaffolding. This is the one sweep loop — every
/// capacity/geometry sweep in this module is a thin wrapper over it,
/// where the three pre-consolidation variants each carried their own
/// copy.
///
/// # Panics
///
/// Propagates a panicking cell from the calling thread. The batch
/// engine in `psi-bench` layers per-cell panic containment on top;
/// the in-process sweeps here are expected to be infallible.
pub fn sweep_cells<T, U, F>(items: &[T], threads: usize, cell: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(&T) -> U + Sync,
{
    let threads = threads.clamp(1, items.len().max(1));
    if threads <= 1 {
        return items.iter().map(cell).collect();
    }
    use std::sync::atomic::{AtomicUsize, Ordering};
    let cursor = AtomicUsize::new(0);
    let mut slots: Vec<Option<U>> = (0..items.len()).map(|_| None).collect();
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                scope.spawn(|| {
                    let mut done = Vec::new();
                    loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        let Some(item) = items.get(i) else {
                            return done;
                        };
                        done.push((i, cell(item)));
                    }
                })
            })
            .collect();
        for handle in handles {
            for (i, value) in handle.join().expect("sweep worker panicked") {
                slots[i] = Some(value);
            }
        }
    });
    slots
        .into_iter()
        .map(|s| s.expect("every cell computed"))
        .collect()
}

/// Replays one trace through every configuration in `configs` (each
/// on its own independent [`Cache`]) and returns the improvement
/// ratio per configuration, in input order. This is the generic
/// geometry axis behind [`capacity_sweep_parallel`] and the batch
/// sweep engine's replay planes.
pub fn geometry_sweep(
    trace: &[TraceEntry],
    configs: &[CacheConfig],
    cycle_ns: u64,
    total_steps: u64,
    threads: usize,
) -> Vec<f64> {
    sweep_cells(configs, threads, |config| {
        improvement_ratio_pct(trace, *config, cycle_ns, total_steps)
    })
}

/// Figure 1: improvement ratio at each capacity (8 W – 8 KW by powers
/// of two, "other specifications are same with the cache memory of
/// the PSI").
pub fn capacity_sweep(trace: &[TraceEntry], cycle_ns: u64, total_steps: u64) -> Vec<(u32, f64)> {
    capacity_sweep_parallel(trace, cycle_ns, total_steps, 1)
}

/// [`capacity_sweep`] with each capacity replayed on its own scoped
/// worker thread (up to `threads` at once; 1 = serial). Every replay
/// drives an independent [`Cache`], so the result is identical to the
/// serial sweep, just wall-clock faster.
pub fn capacity_sweep_parallel(
    trace: &[TraceEntry],
    cycle_ns: u64,
    total_steps: u64,
    threads: usize,
) -> Vec<(u32, f64)> {
    let caps = figure1_capacities();
    let configs: Vec<CacheConfig> = caps
        .iter()
        .map(|&cap| CacheConfig::psi_with_capacity(cap))
        .collect();
    caps.into_iter()
        .zip(geometry_sweep(
            trace,
            &configs,
            cycle_ns,
            total_steps,
            threads,
        ))
        .collect()
}

/// The paper's Figure 1 metric computed from a *live* run instead of
/// a replayed trace: `Tc` is the run's simulated time, `Tnc` prices
/// every cache access at the miss premium on top of the stall-free
/// step time. Shared by [`capacity_sweep_forked`] and the batch
/// engine's fork cells so both derive the ratio identically.
pub fn improvement_from_run(
    steps: u64,
    time_ns: u64,
    cache_accesses: u64,
    cycle_ns: u64,
    config: CacheConfig,
) -> f64 {
    if time_ns == 0 {
        return 0.0;
    }
    let tnc = steps * cycle_ns + cache_accesses * config.miss_extra_ns();
    (tnc as f64 / time_ns as f64 - 1.0) * 100.0
}

/// [`capacity_sweep`] computed live instead of by trace replay: each
/// capacity cell [forks](Machine::fork) the consulted template with
/// its own cache geometry and runs the goal for real, reading `Tc`
/// from the forked machine's clock and `Tnc` from its step and access
/// counts. One consult serves all eleven cells (previously each cell
/// re-parsed and re-compiled the program), and because the memory
/// trace is a pure function of execution — not of cache geometry —
/// the ratios are bit-identical to replaying a collected trace
/// through the same configurations (regression-tested below).
///
/// The template must be a consulted, never-run machine in the
/// fidelity lane; the goal runs with memory tracing off, since the
/// live cache statistics replace the trace.
///
/// # Errors
///
/// [`psi_core::PsiError::ForkAfterRun`] if `template` has already
/// compiled or run a query; any machine error from running `goal`.
pub fn capacity_sweep_forked(
    template: &Machine,
    goal: &str,
    max_solutions: usize,
    threads: usize,
) -> psi_core::Result<Vec<(u32, f64)>> {
    let caps = figure1_capacities();
    let cycle_ns = template.config().cycle_ns;
    let cells = sweep_cells(&caps, threads, |&cap| -> psi_core::Result<(u32, f64)> {
        let config = CacheConfig::psi_with_capacity(cap);
        let mut m = template.fork_with_cache(Some(config))?;
        m.solve(goal, max_solutions)?;
        let stats = m.stats();
        let ratio = improvement_from_run(
            stats.steps,
            stats.time_ns,
            stats.cache.total().accesses(),
            cycle_ns,
            config,
        );
        Ok((cap, ratio))
    });
    cells.into_iter().collect()
}

/// §4.2 associativity study: improvement ratios with two 4K-word sets
/// (2-way, 8 KW) versus one 4K-word set (direct-mapped, 4 KW). The
/// paper found the single set "only 3% lower".
pub fn associativity_study(trace: &[TraceEntry], cycle_ns: u64, total_steps: u64) -> (f64, f64) {
    let two = improvement_ratio_pct(trace, CacheConfig::psi_two_set_8k(), cycle_ns, total_steps);
    let one = improvement_ratio_pct(
        trace,
        CacheConfig::psi_direct_mapped_4k(),
        cycle_ns,
        total_steps,
    );
    (two, one)
}

/// §4.2 write-policy study: improvement ratios under store-in versus
/// store-through. The paper found store-in "8% higher".
pub fn policy_study(trace: &[TraceEntry], cycle_ns: u64, total_steps: u64) -> (f64, f64) {
    let store_in = improvement_ratio_pct(trace, CacheConfig::psi(), cycle_ns, total_steps);
    let store_through = improvement_ratio_pct(
        trace,
        CacheConfig::psi_store_through(),
        cycle_ns,
        total_steps,
    );
    (store_in, store_through)
}

#[cfg(test)]
mod tests {
    use super::*;
    use psi_cache::CacheCommand;
    use psi_core::{Address, Area, ProcessId};

    /// A looping trace with strong locality plus occasional far
    /// accesses.
    fn trace(n: u64) -> Vec<TraceEntry> {
        (0..n)
            .map(|i| TraceEntry {
                step: i * 5,
                command: if i % 4 == 3 {
                    CacheCommand::WriteStack
                } else {
                    CacheCommand::Read
                },
                address: Address::new(
                    ProcessId::ZERO,
                    Area::Heap,
                    if i % 17 == 0 {
                        (i * 97 % 4096) as u32
                    } else {
                        (i % 64) as u32
                    },
                ),
            })
            .collect()
    }

    #[test]
    fn replay_accounts_all_accesses() {
        let t = trace(500);
        let (stats, time) = replay(&t, CacheConfig::psi(), 200, 2500);
        assert_eq!(stats.total().accesses(), 500);
        assert!(time >= 2500 * 200);
    }

    #[test]
    fn improvement_grows_with_capacity() {
        let t = trace(4000);
        let sweep = capacity_sweep(&t, 200, 20_000);
        assert_eq!(sweep.len(), 11); // 8 .. 8192
        let first = sweep.first().unwrap().1;
        let last = sweep.last().unwrap().1;
        assert!(
            last >= first,
            "bigger cache must not hurt: {first} vs {last}"
        );
        assert!(last > 0.0, "a cache must help this trace");
        // Monotone non-decreasing within noise for this regular trace.
        for w in sweep.windows(2) {
            assert!(w[1].1 >= w[0].1 - 1.0, "{:?}", sweep);
        }
    }

    #[test]
    fn two_way_beats_or_matches_direct_mapped() {
        let t = trace(4000);
        let (two, one) = associativity_study(&t, 200, 20_000);
        assert!(two >= one - 0.5, "two={two} one={one}");
    }

    /// Regression: an empty trace with `total_steps == 0` used to
    /// divide 0 by 0 and return NaN, which then propagated into the
    /// Figure 1 report. It must be a finite, neutral 0.0.
    #[test]
    fn empty_trace_with_zero_steps_yields_zero_not_nan() {
        let ratio = improvement_ratio_pct(&[], CacheConfig::psi(), 200, 0);
        assert!(ratio.is_finite(), "got {ratio}");
        assert_eq!(ratio, 0.0);
        let sweep = capacity_sweep(&[], 200, 0);
        assert!(sweep.iter().all(|(_, r)| r.is_finite() && *r == 0.0));
        let (two, one) = associativity_study(&[], 200, 0);
        assert_eq!((two, one), (0.0, 0.0));
    }

    /// The fork-based live sweep must agree bit-for-bit with replaying
    /// a collected trace through the same configurations — the memory
    /// trace is a pure function of execution, not of cache geometry,
    /// so both paths feed identical access streams to identical cache
    /// models.
    #[test]
    fn forked_sweep_matches_trace_replay() {
        use kl0::Program;
        use psi_machine::MachineConfig;

        const SRC: &str = "app([], L, L).\n\
                           app([H|T], L, [H|R]) :- app(T, L, R).\n\
                           rev([], []).\n\
                           rev([H|T], R) :- rev(T, RT), app(RT, [H], R).";
        let goal = "rev([1,2,3,4,5,6,7,8], R)";

        // Trace branch: one traced run on the stock PSI cache.
        let mut config = MachineConfig::psi();
        config.trace_memory = true;
        let mut traced = Machine::load(&Program::parse(SRC).unwrap(), config).unwrap();
        traced.solve(goal, 1).unwrap();
        let steps = traced.stats().steps;
        let t = traced.take_trace();
        assert!(!t.is_empty());
        let replayed = capacity_sweep_parallel(&t, 200, steps, 2);

        // Live branch: eleven forks of one consulted template.
        let template = Machine::load(&Program::parse(SRC).unwrap(), MachineConfig::psi()).unwrap();
        let forked = capacity_sweep_forked(&template, goal, 1, 2).unwrap();
        assert_eq!(forked, replayed);

        // The template stayed pristine, so the sweep can run again.
        assert_eq!(
            capacity_sweep_forked(&template, goal, 1, 1).unwrap(),
            forked
        );

        // A run machine is not a template.
        let err = capacity_sweep_forked(&traced, goal, 1, 1).unwrap_err();
        assert_eq!(err.wire_kind(), "fork_after_run");
    }

    #[test]
    fn store_in_beats_store_through() {
        let t = trace(4000);
        let (si, st) = policy_study(&t, 200, 20_000);
        assert!(si > st, "store-in {si} vs store-through {st}");
    }
}
