//! COLLECT: trace capture and persistence.
//!
//! The paper's COLLECT ran in the console processor, single-stepping
//! the CPU and dumping "microinstruction addresses and the contents of
//! registers or memory... onto a flexible disk each time the CPU
//! stopped". Our equivalent captures the memory-access trace from the
//! simulator ([`psi_mem::TraceEntry`]) and serializes it to JSON.

use psi_core::{PsiError, Result};
use psi_mem::TraceEntry;
use std::io::{Read, Write};

/// Serializes a trace to a writer as JSON (remember a `&mut` writer
/// can be passed).
///
/// # Errors
///
/// Returns [`PsiError::Compile`] wrapping serialization failures.
pub fn save_trace<W: Write>(trace: &[TraceEntry], writer: W) -> Result<()> {
    serde_json::to_writer(writer, trace).map_err(|e| PsiError::Compile {
        detail: format!("trace serialization failed: {e}"),
    })
}

/// Deserializes a trace from a reader (a `&mut` reader works too).
///
/// # Errors
///
/// Returns [`PsiError::Compile`] wrapping deserialization failures.
pub fn load_trace<R: Read>(reader: R) -> Result<Vec<TraceEntry>> {
    serde_json::from_reader(reader).map_err(|e| PsiError::Compile {
        detail: format!("trace deserialization failed: {e}"),
    })
}

/// Summary statistics of a trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceSummary {
    /// Number of accesses.
    pub accesses: usize,
    /// Total steps spanned (last step − first step).
    pub steps_spanned: u64,
    /// Reads.
    pub reads: usize,
    /// Ordinary writes.
    pub writes: usize,
    /// Write-stack pushes.
    pub write_stacks: usize,
}

/// Summarizes a trace.
pub fn summarize(trace: &[TraceEntry]) -> TraceSummary {
    use psi_cache::CacheCommand;
    let mut s = TraceSummary {
        accesses: trace.len(),
        steps_spanned: 0,
        reads: 0,
        writes: 0,
        write_stacks: 0,
    };
    if let (Some(first), Some(last)) = (trace.first(), trace.last()) {
        s.steps_spanned = last.step.saturating_sub(first.step);
    }
    for e in trace {
        match e.command {
            CacheCommand::Read => s.reads += 1,
            CacheCommand::Write => s.writes += 1,
            CacheCommand::WriteStack => s.write_stacks += 1,
        }
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use psi_cache::CacheCommand;
    use psi_core::{Address, Area, ProcessId};

    fn sample() -> Vec<TraceEntry> {
        (0..10)
            .map(|i| TraceEntry {
                step: i * 3,
                command: if i % 3 == 0 {
                    CacheCommand::WriteStack
                } else {
                    CacheCommand::Read
                },
                address: Address::new(ProcessId::ZERO, Area::Heap, i as u32),
            })
            .collect()
    }

    #[test]
    fn roundtrip_through_json() {
        let trace = sample();
        let mut buf = Vec::new();
        save_trace(&trace, &mut buf).unwrap();
        let loaded = load_trace(buf.as_slice()).unwrap();
        assert_eq!(trace, loaded);
    }

    #[test]
    fn summary_counts() {
        let s = summarize(&sample());
        assert_eq!(s.accesses, 10);
        assert_eq!(s.write_stacks, 4);
        assert_eq!(s.reads, 6);
        assert_eq!(s.steps_spanned, 27);
    }

    #[test]
    fn empty_trace_summary() {
        let s = summarize(&[]);
        assert_eq!(s.accesses, 0);
        assert_eq!(s.steps_spanned, 0);
    }
}
