//! COLLECT: trace capture and persistence.
//!
//! The paper's COLLECT ran in the console processor, single-stepping
//! the CPU and dumping "microinstruction addresses and the contents of
//! registers or memory... onto a flexible disk each time the CPU
//! stopped". Our equivalent captures the memory-access trace from the
//! simulator ([`psi_mem::TraceEntry`]) and serializes it to JSON.

use psi_core::{PsiError, Result};
use psi_mem::TraceEntry;
use std::io::{Read, Write};

use psi_cache::CacheCommand as Cmd;

fn command_label(c: Cmd) -> &'static str {
    match c {
        Cmd::Read => "read",
        Cmd::Write => "write",
        Cmd::WriteStack => "write_stack",
    }
}

fn command_from_label(s: &str) -> Option<Cmd> {
    match s {
        "read" => Some(Cmd::Read),
        "write" => Some(Cmd::Write),
        "write_stack" => Some(Cmd::WriteStack),
        _ => None,
    }
}

fn io_err(e: std::io::Error) -> PsiError {
    PsiError::Compile {
        detail: format!("trace serialization failed: {e}"),
    }
}

fn parse_err(detail: impl Into<String>) -> PsiError {
    PsiError::Compile {
        detail: format!("trace deserialization failed: {}", detail.into()),
    }
}

/// Serializes a trace to a writer as JSON (remember a `&mut` writer
/// can be passed). Each entry becomes
/// `{"step":N,"command":"read","address":RAW}` where `RAW` is the
/// packed logical address ([`psi_core::Address::raw`]).
///
/// # Errors
///
/// Returns [`PsiError::Compile`] wrapping serialization failures.
pub fn save_trace<W: Write>(trace: &[TraceEntry], mut writer: W) -> Result<()> {
    let mut out = String::with_capacity(trace.len() * 48 + 2);
    out.push('[');
    for (i, e) in trace.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"step\":{},\"command\":\"{}\",\"address\":{}}}",
            e.step,
            command_label(e.command),
            e.address.raw()
        ));
    }
    out.push(']');
    writer.write_all(out.as_bytes()).map_err(io_err)
}

/// Deserializes a trace from a reader (a `&mut` reader works too).
/// Accepts exactly the format [`save_trace`] produces.
///
/// # Errors
///
/// Returns [`PsiError::Compile`] wrapping deserialization failures.
pub fn load_trace<R: Read>(mut reader: R) -> Result<Vec<TraceEntry>> {
    let mut text = String::new();
    reader
        .read_to_string(&mut text)
        .map_err(|e| parse_err(e.to_string()))?;
    let body = text.trim();
    let inner = body
        .strip_prefix('[')
        .and_then(|s| s.strip_suffix(']'))
        .ok_or_else(|| parse_err("expected a JSON array"))?
        .trim();
    let mut entries = Vec::new();
    if inner.is_empty() {
        return Ok(entries);
    }
    // Objects are flat (no nested braces), so splitting on "}" is safe.
    for obj in inner.split('}') {
        let obj = obj.trim_start_matches([',', ' ', '\n', '\t']).trim();
        if obj.is_empty() {
            continue;
        }
        let obj = obj
            .strip_prefix('{')
            .ok_or_else(|| parse_err("expected an object"))?;
        let mut step = None;
        let mut command = None;
        let mut address = None;
        for field in obj.split(',') {
            let (key, value) = field
                .split_once(':')
                .ok_or_else(|| parse_err(format!("malformed field `{field}`")))?;
            match key.trim().trim_matches('"') {
                "step" => {
                    step = Some(
                        value
                            .trim()
                            .parse::<u64>()
                            .map_err(|e| parse_err(e.to_string()))?,
                    )
                }
                "command" => {
                    let label = value.trim().trim_matches('"');
                    command =
                        Some(command_from_label(label).ok_or_else(|| {
                            parse_err(format!("unknown cache command `{label}`"))
                        })?);
                }
                "address" => {
                    let raw = value
                        .trim()
                        .parse::<u32>()
                        .map_err(|e| parse_err(e.to_string()))?;
                    address = Some(
                        psi_core::Address::from_raw(raw)
                            .ok_or_else(|| parse_err(format!("invalid packed address {raw}")))?,
                    );
                }
                other => return Err(parse_err(format!("unknown key `{other}`"))),
            }
        }
        entries.push(TraceEntry {
            step: step.ok_or_else(|| parse_err("missing step"))?,
            command: command.ok_or_else(|| parse_err("missing command"))?,
            address: address.ok_or_else(|| parse_err("missing address"))?,
        });
    }
    Ok(entries)
}

/// Summary statistics of a trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceSummary {
    /// Number of accesses.
    pub accesses: usize,
    /// Total steps spanned (last step − first step).
    pub steps_spanned: u64,
    /// Reads.
    pub reads: usize,
    /// Ordinary writes.
    pub writes: usize,
    /// Write-stack pushes.
    pub write_stacks: usize,
}

/// Summarizes a trace.
pub fn summarize(trace: &[TraceEntry]) -> TraceSummary {
    use psi_cache::CacheCommand;
    let mut s = TraceSummary {
        accesses: trace.len(),
        steps_spanned: 0,
        reads: 0,
        writes: 0,
        write_stacks: 0,
    };
    if let (Some(first), Some(last)) = (trace.first(), trace.last()) {
        s.steps_spanned = last.step.saturating_sub(first.step);
    }
    for e in trace {
        match e.command {
            CacheCommand::Read => s.reads += 1,
            CacheCommand::Write => s.writes += 1,
            CacheCommand::WriteStack => s.write_stacks += 1,
        }
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use psi_cache::CacheCommand;
    use psi_core::{Address, Area, ProcessId};

    fn sample() -> Vec<TraceEntry> {
        (0..10)
            .map(|i| TraceEntry {
                step: i * 3,
                command: if i % 3 == 0 {
                    CacheCommand::WriteStack
                } else {
                    CacheCommand::Read
                },
                address: Address::new(ProcessId::ZERO, Area::Heap, i as u32),
            })
            .collect()
    }

    #[test]
    fn roundtrip_through_json() {
        let trace = sample();
        let mut buf = Vec::new();
        save_trace(&trace, &mut buf).unwrap();
        let loaded = load_trace(buf.as_slice()).unwrap();
        assert_eq!(trace, loaded);
    }

    #[test]
    fn summary_counts() {
        let s = summarize(&sample());
        assert_eq!(s.accesses, 10);
        assert_eq!(s.write_stacks, 4);
        assert_eq!(s.reads, 6);
        assert_eq!(s.steps_spanned, 27);
    }

    #[test]
    fn empty_trace_summary() {
        let s = summarize(&[]);
        assert_eq!(s.accesses, 0);
        assert_eq!(s.steps_spanned, 0);
    }
}
