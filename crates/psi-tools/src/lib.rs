//! Reimplementations of the paper's measurement tooling (§4.1).
//!
//! * [`collect`] — COLLECT: capture and persist execution traces
//!   (microstep-stamped cache commands with addresses), as the
//!   console-processor tool dumped them "onto a flexible disk";
//! * [`events`] — export/import of observability event streams
//!   (JSON lines) captured from the machine's bounded event ring;
//! * [`json`] — the shared hand-rolled flat-JSON codec behind the
//!   line-oriented formats (event export, bench archives, and the
//!   `psi-server` wire protocol);
//! * [`map`] — MAP: count microinstruction field patterns, producing
//!   the work-file (Table 6) and branch (Table 7) analyses;
//! * [`pmms`] — PMMS: replay a collected trace through arbitrary
//!   cache configurations to obtain hit ratios and performance
//!   improvement ratios (Table 5, Figure 1, and the §4.2
//!   associativity and write-policy studies);
//! * [`quantile`] — the shared type-7 percentile estimator used by
//!   the serving load driver and the sweep engine's per-cell
//!   wall-time summaries.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod collect;
pub mod events;
pub mod json;
pub mod map;
pub mod pmms;
pub mod quantile;
pub mod snapshot;
