//! Hand-rolled flat-JSON codec shared by the line-oriented tools.
//!
//! The workspace is dependency-free by design, so every JSON surface
//! (trace export, event export, bench archives, the `psi-server` wire
//! protocol) is hand-rolled. The earlier codecs could stay trivial
//! because their objects held only integers; the server protocol
//! carries *program text* inside string fields, which needs real
//! string escaping on both sides. This module is the one shared
//! implementation: a writer ([`ObjectBuilder`], [`escape`]) and a
//! strict reader ([`parse_object`]) for **flat** JSON objects — string
//! values with full escape handling (including `\uXXXX` and surrogate
//! pairs), integer and float literals, booleans and `null`. Nested
//! objects and arrays are rejected: every line-oriented format in this
//! workspace is deliberately flat so it can be streamed, concatenated
//! and grepped.

use psi_core::{PsiError, Result};
use std::fmt::Write as _;

/// Escapes `s` for inclusion in a JSON string literal (quotes not
/// included). Control characters become `\uXXXX` escapes.
///
/// ```
/// use psi_tools::json::escape;
/// assert_eq!(escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
/// assert_eq!(escape("\u{1}"), "\\u0001");
/// ```
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{8}' => out.push_str("\\b"),
            '\u{c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// One parsed value of a flat JSON object.
///
/// Numbers keep their raw literal text and are converted on access
/// ([`JsonValue::as_u64`] and friends), so a round trip never loses
/// precision to an intermediate type.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// A string, unescaped.
    Str(String),
    /// A numeric literal, verbatim.
    Num(String),
    /// `true` or `false`.
    Bool(bool),
    /// `null`.
    Null,
}

impl JsonValue {
    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a `u64`, if it is a non-negative integer literal.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::Num(n) => n.parse().ok(),
            _ => None,
        }
    }

    /// The value as an `i64`, if it is an integer literal.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            JsonValue::Num(n) => n.parse().ok(),
            _ => None,
        }
    }

    /// The value as an `f64`, if it is any numeric literal.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Num(n) => n.parse().ok(),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }
}

/// A parsed flat JSON object: fields in source order.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct JsonObject {
    fields: Vec<(String, JsonValue)>,
}

impl JsonObject {
    /// The value of field `key` (first occurrence), if present.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        self.fields.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// All fields in source order.
    pub fn fields(&self) -> &[(String, JsonValue)] {
        &self.fields
    }

    /// The string field `key`, or a typed error naming the field.
    ///
    /// # Errors
    ///
    /// [`PsiError::Syntax`] if the field is missing or not a string.
    pub fn str_field(&self, key: &str) -> Result<&str> {
        self.get(key)
            .and_then(JsonValue::as_str)
            .ok_or_else(|| field_err(key, "a string"))
    }

    /// The unsigned-integer field `key`, or a typed error.
    ///
    /// # Errors
    ///
    /// [`PsiError::Syntax`] if the field is missing or not a
    /// non-negative integer.
    pub fn u64_field(&self, key: &str) -> Result<u64> {
        self.get(key)
            .and_then(JsonValue::as_u64)
            .ok_or_else(|| field_err(key, "a non-negative integer"))
    }
}

fn field_err(key: &str, expected: &str) -> PsiError {
    PsiError::Syntax {
        line: 1,
        column: 1,
        detail: format!("field \"{key}\" missing or not {expected}"),
    }
}

/// Parses one flat JSON object from `line`.
///
/// Strict by intent — wire input is untrusted: unterminated strings,
/// bad escapes, lone surrogates, nested objects/arrays, duplicate
/// garbage after the closing brace and non-string keys all produce a
/// typed [`PsiError::Syntax`] whose column points at the offending
/// character. Never panics.
///
/// ```
/// use psi_tools::json::parse_object;
/// let obj = parse_object(r#"{"cmd":"solve","goal":"p(X)","max":4}"#)?;
/// assert_eq!(obj.str_field("cmd")?, "solve");
/// assert_eq!(obj.u64_field("max")?, 4);
/// # Ok::<(), psi_core::PsiError>(())
/// ```
pub fn parse_object(line: &str) -> Result<JsonObject> {
    let mut p = Scanner {
        chars: line.chars().collect(),
        pos: 0,
    };
    p.skip_ws();
    p.expect('{')?;
    let mut fields = Vec::new();
    p.skip_ws();
    if p.peek() == Some('}') {
        p.pos += 1;
    } else {
        loop {
            p.skip_ws();
            let key = p.parse_string()?;
            p.skip_ws();
            p.expect(':')?;
            p.skip_ws();
            let value = p.parse_value()?;
            fields.push((key, value));
            p.skip_ws();
            match p.next() {
                Some(',') => continue,
                Some('}') => break,
                _ => return Err(p.err("expected ',' or '}'")),
            }
        }
    }
    p.skip_ws();
    if p.peek().is_some() {
        return Err(p.err("trailing characters after object"));
    }
    Ok(JsonObject { fields })
}

struct Scanner {
    chars: Vec<char>,
    pos: usize,
}

impl Scanner {
    fn peek(&self) -> Option<char> {
        self.chars.get(self.pos).copied()
    }

    fn next(&mut self) -> Option<char> {
        let c = self.peek();
        if c.is_some() {
            self.pos += 1;
        }
        c
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(' ' | '\t' | '\r' | '\n')) {
            self.pos += 1;
        }
    }

    fn err(&self, detail: impl Into<String>) -> PsiError {
        PsiError::Syntax {
            line: 1,
            column: self.pos.min(self.chars.len()) as u32 + 1,
            detail: detail.into(),
        }
    }

    fn expect(&mut self, want: char) -> Result<()> {
        match self.next() {
            Some(c) if c == want => Ok(()),
            _ => Err(self.err(format!("expected '{want}'"))),
        }
    }

    fn parse_value(&mut self) -> Result<JsonValue> {
        match self.peek() {
            Some('"') => Ok(JsonValue::Str(self.parse_string()?)),
            Some('t') => self.parse_word("true", JsonValue::Bool(true)),
            Some('f') => self.parse_word("false", JsonValue::Bool(false)),
            Some('n') => self.parse_word("null", JsonValue::Null),
            Some(c) if c == '-' || c.is_ascii_digit() => self.parse_number(),
            Some('{') | Some('[') => {
                Err(self.err("nested objects and arrays are not part of this flat format"))
            }
            _ => Err(self.err("expected a value")),
        }
    }

    fn parse_word(&mut self, word: &str, value: JsonValue) -> Result<JsonValue> {
        for want in word.chars() {
            if self.next() != Some(want) {
                return Err(self.err(format!("expected '{word}'")));
            }
        }
        Ok(value)
    }

    fn parse_number(&mut self) -> Result<JsonValue> {
        let start = self.pos;
        if self.peek() == Some('-') {
            self.pos += 1;
        }
        let digits_from = self.pos;
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.pos == digits_from {
            return Err(self.err("expected digits"));
        }
        if self.peek() == Some('.') {
            self.pos += 1;
            let frac_from = self.pos;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
            if self.pos == frac_from {
                return Err(self.err("expected digits after '.'"));
            }
        }
        if matches!(self.peek(), Some('e' | 'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some('+' | '-')) {
                self.pos += 1;
            }
            let exp_from = self.pos;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
            if self.pos == exp_from {
                return Err(self.err("expected digits in exponent"));
            }
        }
        Ok(JsonValue::Num(self.chars[start..self.pos].iter().collect()))
    }

    fn parse_string(&mut self) -> Result<String> {
        self.expect('"')?;
        let mut out = String::new();
        loop {
            match self.next() {
                None => return Err(self.err("unterminated string")),
                Some('"') => return Ok(out),
                Some('\\') => match self.next() {
                    Some('"') => out.push('"'),
                    Some('\\') => out.push('\\'),
                    Some('/') => out.push('/'),
                    Some('b') => out.push('\u{8}'),
                    Some('f') => out.push('\u{c}'),
                    Some('n') => out.push('\n'),
                    Some('r') => out.push('\r'),
                    Some('t') => out.push('\t'),
                    Some('u') => {
                        let hi = self.parse_hex4()?;
                        let c = if (0xd800..0xdc00).contains(&hi) {
                            // High surrogate: a low surrogate must
                            // follow as another \uXXXX escape.
                            if self.next() != Some('\\') || self.next() != Some('u') {
                                return Err(self.err("lone high surrogate"));
                            }
                            let lo = self.parse_hex4()?;
                            if !(0xdc00..0xe000).contains(&lo) {
                                return Err(self.err("invalid low surrogate"));
                            }
                            let cp = 0x10000 + ((hi - 0xd800) << 10) + (lo - 0xdc00);
                            char::from_u32(cp).ok_or_else(|| self.err("invalid code point"))?
                        } else {
                            char::from_u32(hi)
                                .ok_or_else(|| self.err("lone surrogate in \\u escape"))?
                        };
                        out.push(c);
                    }
                    _ => return Err(self.err("invalid escape sequence")),
                },
                Some(c) if (c as u32) < 0x20 => {
                    return Err(self.err("raw control character in string"));
                }
                Some(c) => out.push(c),
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32> {
        let mut v = 0u32;
        for _ in 0..4 {
            let d = self
                .next()
                .and_then(|c| c.to_digit(16))
                .ok_or_else(|| self.err("expected four hex digits after \\u"))?;
            v = (v << 4) | d;
        }
        Ok(v)
    }
}

/// Builds one flat JSON object as a single line (no trailing newline).
///
/// ```
/// use psi_tools::json::ObjectBuilder;
/// let line = ObjectBuilder::new()
///     .str("event", "solution")
///     .u64("index", 1)
///     .bool("ok", true)
///     .finish();
/// assert_eq!(line, r#"{"event":"solution","index":1,"ok":true}"#);
/// ```
#[derive(Debug, Clone, Default)]
pub struct ObjectBuilder {
    buf: String,
}

impl ObjectBuilder {
    /// Starts an empty object.
    pub fn new() -> ObjectBuilder {
        ObjectBuilder { buf: String::new() }
    }

    fn key(&mut self, key: &str) {
        self.buf.push(if self.buf.is_empty() { '{' } else { ',' });
        self.buf.push('"');
        self.buf.push_str(&escape(key));
        self.buf.push_str("\":");
    }

    /// Appends a string field (value escaped).
    pub fn str(mut self, key: &str, value: &str) -> ObjectBuilder {
        self.key(key);
        self.buf.push('"');
        self.buf.push_str(&escape(value));
        self.buf.push('"');
        self
    }

    /// Appends an unsigned-integer field.
    pub fn u64(mut self, key: &str, value: u64) -> ObjectBuilder {
        self.key(key);
        let _ = write!(self.buf, "{value}");
        self
    }

    /// Appends a float field (`Display` rendering, `null` for
    /// non-finite values, which JSON cannot carry).
    pub fn f64(mut self, key: &str, value: f64) -> ObjectBuilder {
        self.key(key);
        if value.is_finite() {
            let _ = write!(self.buf, "{value}");
        } else {
            self.buf.push_str("null");
        }
        self
    }

    /// Appends a boolean field.
    pub fn bool(mut self, key: &str, value: bool) -> ObjectBuilder {
        self.key(key);
        self.buf.push_str(if value { "true" } else { "false" });
        self
    }

    /// Finishes the object.
    pub fn finish(mut self) -> String {
        if self.buf.is_empty() {
            self.buf.push('{');
        }
        self.buf.push('}');
        self.buf
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_and_parser_round_trip() {
        let line = ObjectBuilder::new()
            .str("src", "p('a,b\"c').\nq(X) :- p(X).")
            .str("unicode", "λ→\u{1}\u{1F600}")
            .u64("max", u64::MAX)
            .f64("p50", 1.25)
            .bool("quick", false)
            .finish();
        let obj = parse_object(&line).unwrap();
        assert_eq!(obj.str_field("src").unwrap(), "p('a,b\"c').\nq(X) :- p(X).");
        assert_eq!(obj.str_field("unicode").unwrap(), "λ→\u{1}\u{1F600}");
        assert_eq!(obj.u64_field("max").unwrap(), u64::MAX);
        assert_eq!(obj.get("p50").unwrap().as_f64(), Some(1.25));
        assert_eq!(obj.get("quick").unwrap().as_bool(), Some(false));
    }

    #[test]
    fn unicode_escapes_decode_with_surrogate_pairs() {
        let obj = parse_object(r#"{"s":"\u0041\u00e9\ud83d\ude00\\\" \/ \n"}"#).unwrap();
        assert_eq!(obj.str_field("s").unwrap(), "Aé\u{1F600}\\\" / \n");
    }

    #[test]
    fn hostile_lines_produce_typed_errors() {
        let bad = [
            "",
            "{",
            "}",
            "{}x",
            "{\"a\"}",
            "{\"a\":}",
            "{\"a\":1,}",
            "{'a':1}",
            "{\"a\":\"unterminated",
            "{\"a\":\"bad \\q escape\"}",
            "{\"a\":\"\\u12\"}",
            "{\"a\":\"\\ud800\"}",
            "{\"a\":\"\\ud800\\u0041\"}",
            "{\"a\":--1}",
            "{\"a\":1.}",
            "{\"a\":1e}",
            "{\"a\":{\"nested\":1}}",
            "{\"a\":[1,2]}",
            "{\"a\":tru}",
            "{\"a\":\u{1}\"x\"}",
        ];
        for line in bad {
            match parse_object(line) {
                Err(PsiError::Syntax { .. }) => {}
                other => panic!("{line:?}: expected a syntax error, got {other:?}"),
            }
        }
    }

    #[test]
    fn empty_object_and_whitespace_are_fine() {
        assert!(parse_object("{}").unwrap().fields().is_empty());
        let obj = parse_object("  { \"a\" : 1 , \"b\" : null }  ").unwrap();
        assert_eq!(obj.u64_field("a").unwrap(), 1);
        assert_eq!(obj.get("b"), Some(&JsonValue::Null));
    }

    #[test]
    fn missing_and_mistyped_fields_are_typed_errors() {
        let obj = parse_object(r#"{"a":"x","b":-3}"#).unwrap();
        assert!(obj.str_field("missing").is_err());
        assert!(obj.u64_field("a").is_err());
        assert!(obj.u64_field("b").is_err(), "negative is not u64");
        assert_eq!(obj.get("b").unwrap().as_i64(), Some(-3));
    }
}
