//! Latency/wall-time percentile estimation, shared by the serving
//! benchmarks (`psi-server`'s load driver) and the sweep engine's
//! per-cell wall-time summaries (`psi-bench`).
//!
//! One shared, documented estimator instead of ad-hoc helpers in each
//! binary. The original `load-driver` implementation used
//! nearest-rank with `round()`, which has two defects this module
//! fixes:
//!
//! * **p99 collapsed onto the maximum for every n < 100**: with
//!   `rank = round((n−1)·0.99)`, any sample count below 100 rounds to
//!   `n−1`, so the reported "p99" was just the worst outlier. A quick
//!   run with 50 queries per row reported max as p99, overstating
//!   tail latency by whatever one cold load or scheduler hiccup cost.
//! * **It sorted the caller's buffer in place**, silently reordering
//!   `RowStats::latencies_ns` as a side effect of rendering a report.

/// The `q`-quantile (`0.0 ≤ q ≤ 1.0`) of `samples` in nanoseconds,
/// by linear interpolation between closest ranks.
///
/// The estimator is the standard "type 7" definition (the default in
/// NumPy and R): on the sorted samples, the quantile sits at
/// fractional position `h = q·(n−1)` and interpolates between
/// `sorted[⌊h⌋]` and `sorted[⌈h⌉]`. Unlike nearest-rank it is exact
/// at `q = 0`/`q = 1`, monotone in `q`, and does not degenerate to
/// the maximum for small `n` — `percentile(&s, 0.99)` with `n = 50`
/// interpolates 49/100 of the way from the second-largest sample to
/// the largest rather than reporting the largest outright.
///
/// The input need not be sorted and is not modified; an empty slice
/// yields 0. Interpolation is computed in `f64` and rounded, which is
/// exact for latencies up to 2⁵³ ns (≈ 104 days).
///
/// ```
/// use psi_tools::quantile::percentile;
/// let samples = [40, 10, 30, 20];
/// assert_eq!(percentile(&samples, 0.0), 10);
/// assert_eq!(percentile(&samples, 0.5), 25); // between 20 and 30
/// assert_eq!(percentile(&samples, 1.0), 40);
/// ```
pub fn percentile(samples: &[u64], q: f64) -> u64 {
    if samples.is_empty() {
        return 0;
    }
    let mut sorted = samples.to_vec();
    sorted.sort_unstable();
    let q = q.clamp(0.0, 1.0);
    let h = q * (sorted.len() - 1) as f64;
    let lo = h.floor() as usize;
    let hi = h.ceil() as usize;
    let frac = h - lo as f64;
    let (a, b) = (sorted[lo] as f64, sorted[hi] as f64);
    (a + (b - a) * frac).round() as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn n1_every_quantile_is_the_sample() {
        for q in [0.0, 0.5, 0.99, 1.0] {
            assert_eq!(percentile(&[7], q), 7, "q={q}");
        }
    }

    #[test]
    fn n2_interpolates_between_the_pair() {
        let s = [100, 200];
        assert_eq!(percentile(&s, 0.0), 100);
        assert_eq!(percentile(&s, 0.5), 150);
        assert_eq!(percentile(&s, 0.99), 199);
        assert_eq!(percentile(&s, 1.0), 200);
    }

    /// The regression this module exists for: at n = 50 the old
    /// nearest-rank estimator reported p99 == max.
    #[test]
    fn n50_p99_is_not_the_maximum() {
        // 49 well-behaved samples and one huge outlier.
        let mut s: Vec<u64> = (1..=49).map(|i| i * 1_000).collect();
        s.push(10_000_000);
        let p99 = percentile(&s, 0.99);
        assert!(p99 < 10_000_000, "p99 {p99} must not collapse onto max");
        assert!(p99 > 49_000, "p99 {p99} must exceed the bulk");
        // h = 0.99·49 = 48.51 → ~51% of the way from s[48] to s[49].
        let expected = 49_000.0 + (10_000_000.0 - 49_000.0) * 0.51;
        assert!(
            (p99 as f64 - expected).abs() < 2.0,
            "p99 {p99} should interpolate near {expected}"
        );
    }

    #[test]
    fn n100_and_n101_hit_exact_and_interpolated_ranks() {
        let s100: Vec<u64> = (1..=100).collect();
        // h = 0.99·99 = 98.01 → barely above sorted[98] = 99.
        assert_eq!(percentile(&s100, 0.99), 99);
        assert_eq!(percentile(&s100, 0.5), 51); // h = 49.5 → 50.5 → rounds half-up
        let s101: Vec<u64> = (1..=101).collect();
        // h = 0.99·100 = 99 exactly → sorted[99] = 100, no interpolation.
        assert_eq!(percentile(&s101, 0.99), 100);
        assert_eq!(percentile(&s101, 0.5), 51); // h = 50 exactly
    }

    #[test]
    fn input_is_left_untouched_and_unsorted() {
        let s = vec![5, 1, 4, 2, 3];
        let _ = percentile(&s, 0.9);
        assert_eq!(s, vec![5, 1, 4, 2, 3]);
    }

    #[test]
    fn empty_is_zero_and_q_is_clamped() {
        assert_eq!(percentile(&[], 0.5), 0);
        assert_eq!(percentile(&[3, 9], -1.0), 3);
        assert_eq!(percentile(&[3, 9], 2.0), 9);
    }

    #[test]
    fn monotone_in_q() {
        let s: Vec<u64> = (0..57).map(|i| (i * 7919) % 1000).collect();
        let mut prev = 0;
        for i in 0..=100 {
            let v = percentile(&s, i as f64 / 100.0);
            assert!(v >= prev, "q={} went backwards", i);
            prev = v;
        }
    }
}
