//! Observability-event export: JSON-lines persistence for
//! [`psi_core::ObsEvent`] streams.
//!
//! Events come out of the machine's bounded ring
//! (`Machine::take_events`) and are persisted one JSON object per
//! line, so exports can be streamed, concatenated and grepped. The
//! codec is hand-rolled like the trace codec in [`crate::collect`]:
//! the objects are flat, the fields are integers, and the `kind`
//! field is the stable wire code of [`psi_core::EventKind`].

use crate::json::parse_object;
use psi_core::{EventKind, ObsEvent, PsiError, Result};
use std::io::{Read, Write};

fn io_err(e: std::io::Error) -> PsiError {
    PsiError::Compile {
        detail: format!("event serialization failed: {e}"),
    }
}

fn parse_err(detail: impl Into<String>) -> PsiError {
    PsiError::Compile {
        detail: format!("event deserialization failed: {}", detail.into()),
    }
}

/// Serializes events as JSON lines: each event becomes one line
/// `{"step":N,"kind":K,"a":A,"b":B,"c":C}` where `K` is the stable
/// [`EventKind::code`].
///
/// # Errors
///
/// Returns [`PsiError::Compile`] wrapping write failures.
pub fn save_events<W: Write>(events: &[ObsEvent], mut writer: W) -> Result<()> {
    let mut out = String::with_capacity(events.len() * 48);
    for e in events {
        out.push_str(&format!(
            "{{\"step\":{},\"kind\":{},\"a\":{},\"b\":{},\"c\":{}}}\n",
            e.step,
            e.kind.code(),
            e.a,
            e.b,
            e.c
        ));
    }
    writer.write_all(out.as_bytes()).map_err(io_err)
}

/// Deserializes events from the JSON-lines format [`save_events`]
/// produces. Blank lines are skipped.
///
/// # Errors
///
/// Returns [`PsiError::Compile`] on malformed lines or unknown event
/// kinds.
pub fn load_events<R: Read>(mut reader: R) -> Result<Vec<ObsEvent>> {
    let mut text = String::new();
    reader
        .read_to_string(&mut text)
        .map_err(|e| parse_err(e.to_string()))?;
    let mut events = Vec::new();
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        // The shared strict scanner (`crate::json`) replaces the old
        // comma-splitting field walk, so malformed lines fail with a
        // typed error pointing at the offending character.
        let obj = parse_object(line).map_err(|e| parse_err(e.to_string()))?;
        let mut step = None;
        let mut kind = None;
        let mut a = None;
        let mut b = None;
        let mut c = None;
        let int = |key: &str| -> Result<u32> {
            let v = obj.u64_field(key).map_err(|e| parse_err(e.to_string()))?;
            u32::try_from(v).map_err(|_| parse_err(format!("field \"{key}\" out of range")))
        };
        for (key, _) in obj.fields() {
            match key.as_str() {
                "step" => {
                    step = Some(
                        obj.u64_field("step")
                            .map_err(|e| parse_err(e.to_string()))?,
                    )
                }
                "kind" => {
                    let code = int("kind")?;
                    let code = u8::try_from(code)
                        .map_err(|_| parse_err(format!("unknown event kind {code}")))?;
                    kind = Some(
                        EventKind::from_code(code)
                            .ok_or_else(|| parse_err(format!("unknown event kind {code}")))?,
                    );
                }
                "a" => a = Some(int("a")?),
                "b" => b = Some(int("b")?),
                "c" => c = Some(int("c")?),
                other => return Err(parse_err(format!("unknown key `{other}`"))),
            }
        }
        events.push(ObsEvent {
            step: step.ok_or_else(|| parse_err("missing step"))?,
            kind: kind.ok_or_else(|| parse_err("missing kind"))?,
            a: a.ok_or_else(|| parse_err("missing a"))?,
            b: b.ok_or_else(|| parse_err("missing b"))?,
            c: c.ok_or_else(|| parse_err("missing c"))?,
        });
    }
    Ok(events)
}

/// Summary statistics of an event stream: per-kind counts plus the
/// cache hit/miss split.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EventSummary {
    /// Events in the stream.
    pub events: usize,
    /// Steps spanned (last step − first step).
    pub steps_spanned: u64,
    /// Goal dispatches.
    pub dispatches: usize,
    /// Cache accesses.
    pub cache_accesses: usize,
    /// Cache accesses that hit.
    pub cache_hits: usize,
    /// Backtracks.
    pub backtracks: usize,
    /// Governor budget checks.
    pub governor_checks: usize,
    /// Governor budget trips.
    pub governor_trips: usize,
    /// First-argument index lookups.
    pub index_lookups: usize,
    /// Index lookups that entered a single candidate directly (no
    /// choice point).
    pub index_direct_entries: usize,
}

/// Summarizes an event stream.
pub fn summarize_events(events: &[ObsEvent]) -> EventSummary {
    let mut s = EventSummary {
        events: events.len(),
        ..EventSummary::default()
    };
    if let (Some(first), Some(last)) = (events.first(), events.last()) {
        s.steps_spanned = last.step.saturating_sub(first.step);
    }
    for e in events {
        match e.kind {
            EventKind::Dispatch => s.dispatches += 1,
            EventKind::CacheAccess => {
                s.cache_accesses += 1;
                if e.c == 1 {
                    s.cache_hits += 1;
                }
            }
            EventKind::Backtrack => s.backtracks += 1,
            EventKind::GovernorCheck => s.governor_checks += 1,
            EventKind::GovernorTrip => s.governor_trips += 1,
            EventKind::IndexLookup => {
                s.index_lookups += 1;
                if e.c == 1 {
                    s.index_direct_entries += 1;
                }
            }
        }
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<ObsEvent> {
        vec![
            ObsEvent::dispatch(1, 0x40),
            ObsEvent::cache_access(1, 0, 0, true),
            ObsEvent::cache_access(2, 2, 1, false),
            ObsEvent::backtrack(3, 2),
            ObsEvent::governor_check(4),
            ObsEvent::governor_trip(5, 0),
            ObsEvent::index_lookup(6, 1, 3, true),
        ]
    }

    #[test]
    fn events_round_trip_bit_identically() {
        let events = sample();
        let mut buf = Vec::new();
        save_events(&events, &mut buf).unwrap();
        let loaded = load_events(buf.as_slice()).unwrap();
        assert_eq!(events, loaded);
        assert_eq!(summarize_events(&events), summarize_events(&loaded));
    }

    #[test]
    fn summary_counts_kinds_and_hits() {
        let s = summarize_events(&sample());
        assert_eq!(s.events, 7);
        assert_eq!(s.steps_spanned, 5);
        assert_eq!(s.dispatches, 1);
        assert_eq!(s.cache_accesses, 2);
        assert_eq!(s.cache_hits, 1);
        assert_eq!(s.backtracks, 1);
        assert_eq!(s.governor_checks, 1);
        assert_eq!(s.governor_trips, 1);
        assert_eq!(s.index_lookups, 1);
        assert_eq!(s.index_direct_entries, 1);
    }

    #[test]
    fn empty_stream_loads_and_summarizes() {
        assert!(load_events(&b""[..]).unwrap().is_empty());
        assert_eq!(summarize_events(&[]), EventSummary::default());
    }

    #[test]
    fn malformed_lines_are_rejected() {
        assert!(load_events(&b"not json\n"[..]).is_err());
        assert!(
            load_events(&b"{\"step\":1}\n"[..]).is_err(),
            "missing fields"
        );
        let unknown_kind = b"{\"step\":1,\"kind\":99,\"a\":0,\"b\":0,\"c\":0}\n";
        let err = load_events(&unknown_kind[..]).unwrap_err();
        assert!(err.to_string().contains("unknown event kind"), "{err}");
    }
}
