//! MAP: microinstruction pattern analysis.
//!
//! "Using an address pattern of microinstructions traced by COLLECT,
//! MAP counts the number of specific pattern appears in a specific
//! microinstruction field" (§4.1). Our machine aggregates the same
//! field information online ([`WfStats`], [`BranchTally`]); MAP turns
//! those tallies into the paper's Table 6 and Table 7 layouts.

use psi_machine::{BranchOp, BranchTally, WfField, WfMode, WfStats};

/// One Table 6 row: a WF addressing mode with, per field, its share
/// of that field's accesses (`†`) and its rate against total steps
/// (`‡`). `None` = the mode is not available in that field.
#[derive(Debug, Clone, PartialEq)]
pub struct WfModeRow {
    /// Row label.
    pub mode: WfMode,
    /// `(share_pct, rate_pct)` per field (source 1, source 2,
    /// destination).
    pub fields: [Option<(f64, f64)>; 3],
}

/// Builds the Table 6 rows from WF statistics and the total step
/// count.
pub fn wf_mode_table(stats: &WfStats, steps: u64) -> Vec<WfModeRow> {
    WfMode::ALL
        .iter()
        .map(|&mode| {
            let fields = [WfField::Source1, WfField::Source2, WfField::Destination].map(|field| {
                // Source 2 only reaches the dual-port area; other
                // impossible combinations simply never occur.
                let available = !(field == WfField::Source2 && mode != WfMode::Direct00);
                if !available {
                    return None;
                }
                let share = stats.mode_share_pct(field, mode);
                let rate = stats.count(field, mode) as f64 * 100.0 / steps.max(1) as f64;
                Some((share, rate))
            });
            WfModeRow { mode, fields }
        })
        .collect()
}

/// The Table 6 "total" row: per-field access rates against steps.
pub fn wf_field_rates(stats: &WfStats, steps: u64) -> [f64; 3] {
    [WfField::Source1, WfField::Source2, WfField::Destination]
        .map(|f| stats.field_rate_pct(f, steps))
}

/// One Table 7 row.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BranchRow {
    /// The branch operation.
    pub op: BranchOp,
    /// Its share of all steps, percent.
    pub share_pct: f64,
}

/// Builds the Table 7 rows from a branch tally.
pub fn branch_table(tally: &BranchTally) -> Vec<BranchRow> {
    let pct = tally.percentages();
    BranchOp::ALL
        .iter()
        .map(|&op| BranchRow {
            op,
            share_pct: pct[op.index()],
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use psi_machine::WorkFile;

    #[test]
    fn wf_table_has_seven_rows_and_consistent_shares() {
        let mut wf = WorkFile::new();
        for _ in 0..6 {
            wf.touch_read(WfField::Source1, WfMode::Direct10);
        }
        wf.touch_read(WfField::Source1, WfMode::Constant);
        wf.touch_read(WfField::Source2, WfMode::Direct00);
        wf.touch_write(WfMode::Direct10);
        let rows = wf_mode_table(wf.stats(), 10);
        assert_eq!(rows.len(), 7);
        // source-1 shares sum to 100
        let sum: f64 = rows
            .iter()
            .filter_map(|r| r.fields[0].map(|(s, _)| s))
            .sum();
        assert!((sum - 100.0).abs() < 1e-9, "{sum}");
        // source 2 restricted to WF00-0F
        assert!(rows[0].fields[1].is_some());
        assert!(rows[1].fields[1].is_none());
        let rates = wf_field_rates(wf.stats(), 10);
        assert!((rates[0] - 70.0).abs() < 1e-9);
        assert!((rates[1] - 10.0).abs() < 1e-9);
        assert!((rates[2] - 10.0).abs() < 1e-9);
    }

    #[test]
    fn branch_table_sums_to_100() {
        let mut t = psi_machine::MicroTally::new();
        for op in BranchOp::ALL {
            t.step(psi_machine::InterpModule::Control, op, false);
        }
        let rows = branch_table(&t.branches);
        assert_eq!(rows.len(), 16);
        let sum: f64 = rows.iter().map(|r| r.share_pct).sum();
        assert!((sum - 100.0).abs() < 1e-9);
    }
}
