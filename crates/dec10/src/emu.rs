//! The WAM emulator and its cost accounting.

use crate::compile::{CompiledProgram, DecQuery};
use crate::cost::DecConfig;
use crate::instr::{Builtin, CompareOp, ConstKey, FunctorId, Instr};
use kl0::{LoweredProgram, Program, Term};
use psi_core::{PsiError, Result, SymbolId};
use std::fmt;

/// A heap cell of the WAM store.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Cell {
    /// Reference; a self-reference is an unbound variable.
    Ref(u32),
    /// Structure pointer (to a `Fun` cell).
    Str(u32),
    /// List pointer (to two consecutive cells).
    Lis(u32),
    /// Functor cell heading a structure.
    Fun(FunctorId),
    /// An atom.
    Atom(u32),
    /// An integer.
    Int(i32),
    /// The empty list.
    Nil,
}

#[derive(Debug, Clone)]
struct Env {
    ce: Option<usize>,
    cp_code: usize,
    b0: usize,
    ybase: u32,
}

#[derive(Debug, Clone)]
struct Cp {
    args: Vec<Cell>,
    e: Option<usize>,
    cp_code: usize,
    b0: usize,
    heap_top: u32,
    trail_top: usize,
    envs_len: usize,
    alt: usize,
}

/// Execution statistics of the baseline machine.
#[derive(Debug, Clone, Copy, Default)]
pub struct DecStats {
    /// WAM instructions executed.
    pub instructions: u64,
    /// Cost-model cycles consumed.
    pub cycles: u64,
    /// User predicate calls (logical inferences).
    pub calls: u64,
    /// Choice points created.
    pub choice_points: u64,
    /// Node pairs visited by general unification.
    pub unify_nodes: u64,
    /// Built-in invocations.
    pub builtin_calls: u64,
}

impl DecStats {
    /// Simulated time in nanoseconds under `unit_ns`.
    pub fn time_ns(&self, unit_ns: f64) -> u64 {
        (self.cycles as f64 * unit_ns) as u64
    }

    /// Logical inferences per second.
    pub fn lips(&self, unit_ns: f64) -> f64 {
        let t = self.time_ns(unit_ns);
        if t == 0 {
            return 0.0;
        }
        self.calls as f64 / (t as f64 / 1e9)
    }
}

/// One solution: variable bindings in source order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecSolution {
    bindings: Vec<(String, Term)>,
}

impl DecSolution {
    /// The binding of `name`, if present.
    pub fn binding(&self, name: &str) -> Option<&Term> {
        self.bindings
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, t)| t)
    }

    /// All bindings.
    pub fn bindings(&self) -> &[(String, Term)] {
        &self.bindings
    }
}

impl fmt::Display for DecSolution {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.bindings.is_empty() {
            return f.write_str("true");
        }
        for (i, (name, term)) in self.bindings.iter().enumerate() {
            if i > 0 {
                f.write_str(", ")?;
            }
            write!(f, "{name} = {term}")?;
        }
        Ok(())
    }
}

/// Interned arithmetic functor ids.
#[derive(Debug, Clone, Copy)]
struct ArithSyms {
    plus: u32,
    minus: u32,
    star: u32,
    int_div: u32,
    modulo: u32,
    abs: u32,
    min: u32,
    max: u32,
}

/// The DEC-10 Prolog baseline machine.
///
/// See the [crate documentation](crate) for an example.
#[derive(Debug, Clone)]
pub struct DecMachine {
    config: DecConfig,
    program: CompiledProgram,
    halt_addr: usize,
    heap: Vec<Cell>,
    x: Vec<Cell>,
    envs: Vec<Env>,
    cps: Vec<Cp>,
    trail: Vec<u32>,
    pc: usize,
    cont: usize,
    cur_env: Option<usize>,
    b0: usize,
    num_args: u8,
    mode_write: bool,
    s: u32,
    stats: DecStats,
    output: String,
    arith: ArithSyms,
    query: Option<(Vec<u32>, Vec<String>)>,
}

impl DecMachine {
    /// Compiles and loads `program`.
    ///
    /// # Errors
    ///
    /// Propagates lowering/compilation errors.
    pub fn load(program: &Program, config: DecConfig) -> Result<DecMachine> {
        let lowered = LoweredProgram::lower(program)?;
        let mut compiled = crate::compile::compile(&lowered)?;
        let halt_addr = compiled.code.len();
        compiled.code.push(Instr::HaltSuccess);
        let arith = ArithSyms {
            plus: compiled.symbols_mut().intern("+").get(),
            minus: compiled.symbols_mut().intern("-").get(),
            star: compiled.symbols_mut().intern("*").get(),
            int_div: compiled.symbols_mut().intern("//").get(),
            modulo: compiled.symbols_mut().intern("mod").get(),
            abs: compiled.symbols_mut().intern("abs").get(),
            min: compiled.symbols_mut().intern("min").get(),
            max: compiled.symbols_mut().intern("max").get(),
        };
        Ok(DecMachine {
            config,
            program: compiled,
            halt_addr,
            heap: Vec::new(),
            x: vec![Cell::Nil; 64],
            envs: Vec::new(),
            cps: Vec::new(),
            trail: Vec::new(),
            pc: 0,
            cont: 0,
            cur_env: None,
            b0: 0,
            num_args: 0,
            mode_write: false,
            s: 0,
            stats: DecStats::default(),
            output: String::new(),
            arith,
            query: None,
        })
    }

    /// Solves `goal_src`, returning up to `max_solutions` solutions.
    ///
    /// # Errors
    ///
    /// Propagates syntax, undefined-predicate and budget errors.
    pub fn solve(&mut self, goal_src: &str, max_solutions: usize) -> Result<Vec<DecSolution>> {
        let goal = kl0::parser::parse_term(goal_src)?;
        self.solve_term(&goal, max_solutions)
    }

    /// Like [`DecMachine::solve`] but takes a parsed term.
    ///
    /// # Errors
    ///
    /// See [`DecMachine::solve`].
    pub fn solve_term(&mut self, goal: &Term, max_solutions: usize) -> Result<Vec<DecSolution>> {
        let q = self.program.compile_query(goal)?;
        self.start(&q)?;
        self.run(max_solutions)
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> DecStats {
        self.stats
    }

    /// Simulated execution time in nanoseconds.
    pub fn time_ns(&self) -> u64 {
        self.stats.time_ns(self.config.unit_ns)
    }

    /// Text written by `write/1` and friends.
    pub fn output(&self) -> &str {
        &self.output
    }

    /// The machine configuration.
    pub fn config(&self) -> &DecConfig {
        &self.config
    }

    /// Resets statistics (not loaded code).
    pub fn reset_measurement(&mut self) {
        self.stats = DecStats::default();
        self.output.clear();
    }

    fn start(&mut self, q: &DecQuery) -> Result<()> {
        self.heap.clear();
        self.envs.clear();
        self.cps.clear();
        self.trail.clear();
        self.cur_env = None;
        self.b0 = 0;
        self.cont = self.halt_addr;
        let mut cells = Vec::new();
        for (i, _) in q.vars.iter().enumerate() {
            let a = self.push_fresh();
            self.ensure_x(i);
            self.x[i] = Cell::Ref(a);
            cells.push(a);
        }
        self.query = Some((cells, q.vars.clone()));
        self.num_args = q.vars.len() as u8;
        let entry = self.entry_of(q.pred)?;
        self.pc = entry;
        Ok(())
    }

    fn entry_of(&self, pred: u32) -> Result<usize> {
        let p = self.program.predicate(pred);
        p.entry.ok_or_else(|| PsiError::UndefinedPredicate {
            name: format!("{}/{}", p.name, p.arity),
        })
    }

    fn push_fresh(&mut self) -> u32 {
        let a = self.heap.len() as u32;
        self.heap.push(Cell::Ref(a));
        a
    }

    fn ensure_x(&mut self, i: usize) {
        if i >= self.x.len() {
            self.x.resize(i + 1, Cell::Nil);
        }
    }

    // ------------------------------------------------------- main loop

    fn run(&mut self, max_solutions: usize) -> Result<Vec<DecSolution>> {
        let mut out = Vec::new();
        if max_solutions == 0 {
            return Ok(out);
        }
        loop {
            if self.stats.instructions > self.config.instruction_budget {
                return Err(PsiError::ResourceExhausted {
                    resource: psi_core::Resource::Steps,
                    limit: self.config.instruction_budget,
                    consumed: self.stats.instructions,
                });
            }
            self.stats.instructions += 1;
            let instr = self.program.code[self.pc].clone();
            self.stats.cycles += self.config.costs.cycles(&instr);
            self.pc += 1;
            let ok = self.step(&instr)?;
            match ok {
                Step::Ok => {}
                Step::Fail => {
                    if !self.backtrack() {
                        return Ok(out);
                    }
                }
                Step::Solution => {
                    out.push(self.capture()?);
                    if out.len() >= max_solutions || !self.backtrack() {
                        return Ok(out);
                    }
                }
            }
        }
    }

    fn step(&mut self, instr: &Instr) -> Result<Step> {
        use Instr::*;
        Ok(match *instr {
            GetVariableX(n, i) => {
                self.ensure_x(n as usize);
                self.x[n as usize] = self.x[i as usize];
                Step::Ok
            }
            GetVariableY(y, i) => {
                let a = self.yaddr(y);
                let v = self.x[i as usize];
                self.heap[a as usize] = v;
                Step::Ok
            }
            GetValueX(n, i) => {
                let a = self.x[n as usize];
                let b = self.x[i as usize];
                let ok = self.unify(a, b);
                self.ok_if(ok)
            }
            GetValueY(y, i) => {
                let a = self.yaddr(y);
                let v = self.x[i as usize];
                let ok = self.unify(Cell::Ref(a), v);
                self.ok_if(ok)
            }
            GetConstant(c, i) => self.get_const(Cell::Atom(c), i),
            GetInteger(v, i) => self.get_const(Cell::Int(v), i),
            GetNil(i) => self.get_const(Cell::Nil, i),
            GetList(i) => {
                let d = self.deref(self.x[i as usize]);
                match d {
                    Cell::Ref(a) => {
                        let top = self.heap.len() as u32;
                        self.bind(a, Cell::Lis(top));
                        self.mode_write = true;
                        Step::Ok
                    }
                    Cell::Lis(p) => {
                        self.s = p;
                        self.mode_write = false;
                        Step::Ok
                    }
                    _ => Step::Fail,
                }
            }
            GetStructure(f, i) => {
                let d = self.deref(self.x[i as usize]);
                match d {
                    Cell::Ref(a) => {
                        let fun_at = self.heap.len() as u32;
                        self.heap.push(Cell::Fun(f));
                        self.bind(a, Cell::Str(fun_at));
                        self.mode_write = true;
                        Step::Ok
                    }
                    Cell::Str(p) => {
                        if self.heap[p as usize] == Cell::Fun(f) {
                            self.s = p + 1;
                            self.mode_write = false;
                            Step::Ok
                        } else {
                            Step::Fail
                        }
                    }
                    _ => Step::Fail,
                }
            }
            UnifyVariableX(n) => {
                self.ensure_x(n as usize);
                if self.mode_write {
                    let a = self.push_fresh();
                    self.x[n as usize] = Cell::Ref(a);
                } else {
                    self.x[n as usize] = Cell::Ref(self.s);
                    self.s += 1;
                }
                Step::Ok
            }
            UnifyVariableY(y) => {
                let a = self.yaddr(y);
                if self.mode_write {
                    let c = self.push_fresh();
                    self.heap[a as usize] = Cell::Ref(c);
                } else {
                    self.heap[a as usize] = Cell::Ref(self.s);
                    self.s += 1;
                }
                Step::Ok
            }
            UnifyValueX(n) => {
                if self.mode_write {
                    let v = self.x[n as usize];
                    self.heap.push(v);
                    Step::Ok
                } else {
                    let s = self.s;
                    self.s += 1;
                    let v = self.x[n as usize];
                    let ok = self.unify(v, Cell::Ref(s));
                    self.ok_if(ok)
                }
            }
            UnifyValueY(y) => {
                let a = self.yaddr(y);
                if self.mode_write {
                    self.heap.push(Cell::Ref(a));
                    Step::Ok
                } else {
                    let s = self.s;
                    self.s += 1;
                    let ok = self.unify(Cell::Ref(a), Cell::Ref(s));
                    self.ok_if(ok)
                }
            }
            UnifyConstant(c) => self.unify_const(Cell::Atom(c)),
            UnifyInteger(v) => self.unify_const(Cell::Int(v)),
            UnifyNil => self.unify_const(Cell::Nil),
            UnifyVoid(n) => {
                if self.mode_write {
                    for _ in 0..n {
                        self.push_fresh();
                    }
                } else {
                    self.s += n as u32;
                }
                Step::Ok
            }
            PutVariableX(n, i) => {
                self.ensure_x(n.max(i) as usize);
                let a = self.push_fresh();
                self.x[n as usize] = Cell::Ref(a);
                self.x[i as usize] = Cell::Ref(a);
                Step::Ok
            }
            PutVariableY(y, i) => {
                let a = self.yaddr(y);
                self.ensure_x(i as usize);
                self.x[i as usize] = Cell::Ref(a);
                Step::Ok
            }
            PutValueX(n, i) => {
                self.ensure_x(n.max(i) as usize);
                self.x[i as usize] = self.x[n as usize];
                Step::Ok
            }
            PutValueY(y, i) => {
                let a = self.yaddr(y);
                self.ensure_x(i as usize);
                self.x[i as usize] = Cell::Ref(a);
                Step::Ok
            }
            PutConstant(c, i) => {
                self.ensure_x(i as usize);
                self.x[i as usize] = Cell::Atom(c);
                Step::Ok
            }
            PutInteger(v, i) => {
                self.ensure_x(i as usize);
                self.x[i as usize] = Cell::Int(v);
                Step::Ok
            }
            PutNil(i) => {
                self.ensure_x(i as usize);
                self.x[i as usize] = Cell::Nil;
                Step::Ok
            }
            PutList(i) => {
                self.ensure_x(i as usize);
                let top = self.heap.len() as u32;
                self.x[i as usize] = Cell::Lis(top);
                self.mode_write = true;
                Step::Ok
            }
            PutStructure(f, i) => {
                self.ensure_x(i as usize);
                let fun_at = self.heap.len() as u32;
                self.heap.push(Cell::Fun(f));
                self.x[i as usize] = Cell::Str(fun_at);
                self.mode_write = true;
                Step::Ok
            }
            Call(p, n) => {
                self.stats.calls += 1;
                self.cont = self.pc;
                self.num_args = n;
                self.b0 = self.cps.len();
                self.pc = self.entry_of(p)?;
                Step::Ok
            }
            Execute(p) => {
                self.stats.calls += 1;
                self.num_args = self.program.predicate(p).arity;
                self.b0 = self.cps.len();
                self.pc = self.entry_of(p)?;
                Step::Ok
            }
            Proceed => {
                self.pc = self.cont;
                Step::Ok
            }
            Allocate(n) => {
                let ybase = self.heap.len() as u32;
                for _ in 0..n {
                    self.push_fresh();
                }
                self.envs.push(Env {
                    ce: self.cur_env,
                    cp_code: self.cont,
                    b0: self.b0,
                    ybase,
                });
                self.cur_env = Some(self.envs.len() - 1);
                Step::Ok
            }
            Deallocate => {
                let idx = self.cur_env.expect("deallocate without environment");
                let env = self.envs[idx].clone();
                self.cont = env.cp_code;
                self.cur_env = env.ce;
                // Reclaim the arena slot when nothing can reach it.
                let protected = self.cps.last().map(|cp| cp.envs_len > idx).unwrap_or(false);
                if idx + 1 == self.envs.len() && !protected {
                    self.envs.pop();
                }
                Step::Ok
            }
            TryMeElse(alt) => {
                self.stats.choice_points += 1;
                self.stats.cycles += self.num_args as u64 * self.config.costs.try_per_arg;
                let cp = Cp {
                    args: self.x[..self.num_args as usize].to_vec(),
                    e: self.cur_env,
                    cp_code: self.cont,
                    b0: self.b0,
                    heap_top: self.heap.len() as u32,
                    trail_top: self.trail.len(),
                    envs_len: self.envs.len(),
                    alt,
                };
                self.cps.push(cp);
                Step::Ok
            }
            RetryMeElse(alt) => {
                let cp = self.cps.last_mut().expect("retry without choice point");
                cp.alt = alt;
                Step::Ok
            }
            TrustMe => {
                self.cps.pop().expect("trust without choice point");
                Step::Ok
            }
            SwitchOnTerm {
                var,
                constant,
                nil,
                list,
                structure,
            } => {
                let d = self.deref(self.x[0]);
                self.pc = match d {
                    Cell::Ref(_) => var,
                    Cell::Atom(_) | Cell::Int(_) => constant,
                    Cell::Nil => nil,
                    Cell::Lis(_) => list,
                    Cell::Str(_) | Cell::Fun(_) => structure,
                };
                Step::Ok
            }
            SwitchOnConstant(ref pairs) => {
                let d = self.deref(self.x[0]);
                let key = match d {
                    Cell::Atom(a) => ConstKey::Atom(a),
                    Cell::Int(v) => ConstKey::Int(v),
                    Cell::Nil => ConstKey::Nil,
                    _ => return Ok(Step::Fail),
                };
                match pairs.iter().find(|(k, _)| *k == key) {
                    Some((_, at)) => {
                        self.pc = *at;
                        Step::Ok
                    }
                    None => Step::Fail,
                }
            }
            Cut => {
                let b0 = match self.cur_env {
                    Some(e) => self.envs[e].b0,
                    None => self.b0,
                };
                self.stats.cycles += self.cps.len().saturating_sub(b0) as u64;
                self.cps.truncate(b0);
                Step::Ok
            }
            CallBuiltin(b, n) => {
                self.stats.builtin_calls += 1;
                self.exec_builtin(b, n)?
            }
            Jump(a) => {
                self.pc = a;
                Step::Ok
            }
            Fail => Step::Fail,
            HaltSuccess => Step::Solution,
        })
    }

    fn yaddr(&self, y: u16) -> u32 {
        let e = self.cur_env.expect("Y access without environment");
        self.envs[e].ybase + y as u32
    }

    fn ok_if(&self, ok: bool) -> Step {
        if ok {
            Step::Ok
        } else {
            Step::Fail
        }
    }

    fn get_const(&mut self, c: Cell, i: u16) -> Step {
        let d = self.deref(self.x[i as usize]);
        match d {
            Cell::Ref(a) => {
                self.bind(a, c);
                Step::Ok
            }
            other => self.ok_if(other == c),
        }
    }

    fn unify_const(&mut self, c: Cell) -> Step {
        if self.mode_write {
            self.heap.push(c);
            return Step::Ok;
        }
        let s = self.s;
        self.s += 1;
        let d = self.deref(Cell::Ref(s));
        match d {
            Cell::Ref(a) => {
                self.bind(a, c);
                Step::Ok
            }
            other => self.ok_if(other == c),
        }
    }

    // ---------------------------------------------------- unification

    fn deref(&self, mut c: Cell) -> Cell {
        loop {
            match c {
                Cell::Ref(a) => {
                    let h = self.heap[a as usize];
                    if h == Cell::Ref(a) {
                        return c;
                    }
                    c = h;
                }
                other => return other,
            }
        }
    }

    fn bind(&mut self, addr: u32, cell: Cell) {
        let hb = self.cps.last().map(|cp| cp.heap_top).unwrap_or(0);
        if addr < hb {
            self.trail.push(addr);
        }
        self.heap[addr as usize] = cell;
    }

    /// General unification with binding and trailing.
    fn unify(&mut self, a: Cell, b: Cell) -> bool {
        let mut work = vec![(a, b)];
        while let Some((a, b)) = work.pop() {
            self.stats.unify_nodes += 1;
            self.stats.cycles += self.config.costs.unify_node;
            let da = self.deref(a);
            let db = self.deref(b);
            match (da, db) {
                (Cell::Ref(x), Cell::Ref(y)) => {
                    if x != y {
                        if x < y {
                            self.bind(y, Cell::Ref(x));
                        } else {
                            self.bind(x, Cell::Ref(y));
                        }
                    }
                }
                (Cell::Ref(x), other) => self.bind(x, other),
                (other, Cell::Ref(y)) => self.bind(y, other),
                (Cell::Atom(p), Cell::Atom(q)) => {
                    if p != q {
                        return false;
                    }
                }
                (Cell::Int(p), Cell::Int(q)) => {
                    if p != q {
                        return false;
                    }
                }
                (Cell::Nil, Cell::Nil) => {}
                (Cell::Lis(p), Cell::Lis(q)) => {
                    if p != q {
                        work.push((self.heap[p as usize + 1], self.heap[q as usize + 1]));
                        work.push((self.heap[p as usize], self.heap[q as usize]));
                    }
                }
                (Cell::Str(p), Cell::Str(q)) => {
                    if p != q {
                        let (Cell::Fun(fp), Cell::Fun(fq)) =
                            (self.heap[p as usize], self.heap[q as usize])
                        else {
                            return false;
                        };
                        if fp != fq {
                            return false;
                        }
                        for i in (1..=fp.arity as u32).rev() {
                            work.push((self.heap[(p + i) as usize], self.heap[(q + i) as usize]));
                        }
                    }
                }
                _ => return false,
            }
        }
        true
    }

    // ------------------------------------------------------ backtrack

    fn backtrack(&mut self) -> bool {
        let Some(cp) = self.cps.last() else {
            return false;
        };
        let cp = cp.clone();
        while self.trail.len() > cp.trail_top {
            let a = self.trail.pop().expect("nonempty");
            self.heap[a as usize] = Cell::Ref(a);
            self.stats.cycles += self.config.costs.unwind_per_entry;
        }
        self.heap.truncate(cp.heap_top as usize);
        for (i, c) in cp.args.iter().enumerate() {
            self.ensure_x(i);
            self.x[i] = *c;
        }
        self.num_args = cp.args.len() as u8;
        self.cont = cp.cp_code;
        self.cur_env = cp.e;
        self.b0 = cp.b0;
        self.envs.truncate(cp.envs_len);
        self.pc = cp.alt;
        true
    }

    // -------------------------------------------------------- builtins

    fn exec_builtin(&mut self, b: Builtin, _n: u8) -> Result<Step> {
        let ok = match b {
            Builtin::True => true,
            Builtin::Fail => false,
            Builtin::Unify => {
                let (a, b2) = (self.x[0], self.x[1]);
                self.unify(a, b2)
            }
            Builtin::NotUnify => {
                // Trial unification under a sentinel choice point so
                // every binding is trailed, then undo.
                let sentinel = Cp {
                    args: Vec::new(),
                    e: self.cur_env,
                    cp_code: self.cont,
                    b0: self.b0,
                    heap_top: 0, // trail everything
                    trail_top: self.trail.len(),
                    envs_len: self.envs.len(),
                    alt: self.pc,
                };
                let mark = self.trail.len();
                let heap_mark = self.heap.len();
                self.cps.push(sentinel);
                let (a, b2) = (self.x[0], self.x[1]);
                let unified = self.unify(a, b2);
                self.cps.pop();
                while self.trail.len() > mark {
                    let a = self.trail.pop().expect("nonempty");
                    self.heap[a as usize] = Cell::Ref(a);
                }
                self.heap.truncate(heap_mark);
                !unified
            }
            Builtin::Is => {
                let v = self.eval(self.x[1])?;
                let a = self.x[0];
                self.unify(a, Cell::Int(v))
            }
            Builtin::Compare(op) => {
                let a = self.eval(self.x[0])?;
                let b2 = self.eval(self.x[1])?;
                match op {
                    CompareOp::Lt => a < b2,
                    CompareOp::Gt => a > b2,
                    CompareOp::Le => a <= b2,
                    CompareOp::Ge => a >= b2,
                    CompareOp::Eq => a == b2,
                    CompareOp::Ne => a != b2,
                }
            }
            Builtin::TermEq => self.identical(self.x[0], self.x[1]),
            Builtin::TermNe => !self.identical(self.x[0], self.x[1]),
            Builtin::Var => matches!(self.deref(self.x[0]), Cell::Ref(_)),
            Builtin::Nonvar => !matches!(self.deref(self.x[0]), Cell::Ref(_)),
            Builtin::Atom => {
                matches!(self.deref(self.x[0]), Cell::Atom(_) | Cell::Nil)
            }
            Builtin::Atomic => matches!(
                self.deref(self.x[0]),
                Cell::Atom(_) | Cell::Int(_) | Cell::Nil
            ),
            Builtin::Integer => matches!(self.deref(self.x[0]), Cell::Int(_)),
            Builtin::Functor => return self.builtin_functor(),
            Builtin::Arg => return self.builtin_arg(),
            Builtin::Write => {
                let t = self.decode(self.x[0], 0)?;
                self.output.push_str(&t.to_string());
                true
            }
            Builtin::Nl => {
                self.output.push('\n');
                true
            }
            Builtin::Tab => {
                let n = self.eval(self.x[0])?;
                for _ in 0..n.clamp(0, 80) {
                    self.output.push(' ');
                }
                true
            }
        };
        Ok(if ok { Step::Ok } else { Step::Fail })
    }

    fn builtin_functor(&mut self) -> Result<Step> {
        let d = self.deref(self.x[0]);
        match d {
            Cell::Ref(_) => {
                let name = self.deref(self.x[1]);
                let arity = self.eval(self.x[2])?;
                if !(0..=255).contains(&arity) {
                    return Err(PsiError::TypeError {
                        builtin: "functor/3".into(),
                        expected: "arity in 0..=255",
                    });
                }
                if arity == 0 {
                    let t = self.x[0];
                    return Ok(self.ok_if_mut(t, name));
                }
                let Cell::Atom(atom) = name else {
                    return Err(PsiError::TypeError {
                        builtin: "functor/3".into(),
                        expected: "atom name",
                    });
                };
                let fun_at = self.heap.len() as u32;
                self.heap.push(Cell::Fun(FunctorId {
                    atom,
                    arity: arity as u8,
                }));
                for _ in 0..arity {
                    self.push_fresh();
                }
                let t = self.x[0];
                Ok(self.ok_if_mut(t, Cell::Str(fun_at)))
            }
            Cell::Atom(_) | Cell::Int(_) | Cell::Nil => {
                let a1 = self.x[1];
                let a2 = self.x[2];
                let ok = self.unify(a1, d) && self.unify(a2, Cell::Int(0));
                Ok(self.ok_if(ok))
            }
            Cell::Lis(_) => {
                let dot = self.program.symbols_mut().intern(".").get();
                let a1 = self.x[1];
                let a2 = self.x[2];
                let ok = self.unify(a1, Cell::Atom(dot)) && self.unify(a2, Cell::Int(2));
                Ok(self.ok_if(ok))
            }
            Cell::Str(p) => {
                let Cell::Fun(f) = self.heap[p as usize] else {
                    return Err(PsiError::EvalError {
                        detail: "corrupt structure".into(),
                    });
                };
                let a1 = self.x[1];
                let a2 = self.x[2];
                let ok =
                    self.unify(a1, Cell::Atom(f.atom)) && self.unify(a2, Cell::Int(f.arity as i32));
                Ok(self.ok_if(ok))
            }
            Cell::Fun(_) => Err(PsiError::EvalError {
                detail: "corrupt term".into(),
            }),
        }
    }

    fn ok_if_mut(&mut self, a: Cell, b: Cell) -> Step {
        if self.unify(a, b) {
            Step::Ok
        } else {
            Step::Fail
        }
    }

    fn builtin_arg(&mut self) -> Result<Step> {
        let n = self.eval(self.x[0])?;
        let d = self.deref(self.x[1]);
        match d {
            Cell::Str(p) => {
                let Cell::Fun(f) = self.heap[p as usize] else {
                    return Err(PsiError::EvalError {
                        detail: "corrupt structure".into(),
                    });
                };
                if n < 1 || n > f.arity as i32 {
                    return Ok(Step::Fail);
                }
                let v = self.heap[(p + n as u32) as usize];
                let a2 = self.x[2];
                Ok(self.ok_if_mut(a2, v))
            }
            Cell::Lis(p) => {
                if !(1..=2).contains(&n) {
                    return Ok(Step::Fail);
                }
                let v = self.heap[(p + n as u32 - 1) as usize];
                let a2 = self.x[2];
                Ok(self.ok_if_mut(a2, v))
            }
            _ => Ok(Step::Fail),
        }
    }

    fn identical(&mut self, a: Cell, b: Cell) -> bool {
        let mut work = vec![(a, b)];
        while let Some((a, b)) = work.pop() {
            let da = self.deref(a);
            let db = self.deref(b);
            match (da, db) {
                (Cell::Ref(x), Cell::Ref(y)) => {
                    if x != y {
                        return false;
                    }
                }
                (Cell::Lis(p), Cell::Lis(q)) => {
                    if p != q {
                        work.push((self.heap[p as usize + 1], self.heap[q as usize + 1]));
                        work.push((self.heap[p as usize], self.heap[q as usize]));
                    }
                }
                (Cell::Str(p), Cell::Str(q)) => {
                    if p != q {
                        let (Cell::Fun(fp), Cell::Fun(fq)) =
                            (self.heap[p as usize], self.heap[q as usize])
                        else {
                            return false;
                        };
                        if fp != fq {
                            return false;
                        }
                        for i in (1..=fp.arity as u32).rev() {
                            work.push((self.heap[(p + i) as usize], self.heap[(q + i) as usize]));
                        }
                    }
                }
                (x, y) => {
                    if x != y {
                        return false;
                    }
                }
            }
        }
        true
    }

    fn eval(&mut self, c: Cell) -> Result<i32> {
        self.stats.cycles += self.config.costs.arith_node;
        let d = self.deref(c);
        match d {
            Cell::Int(v) => Ok(v),
            Cell::Str(p) => {
                let Cell::Fun(f) = self.heap[p as usize] else {
                    return Err(PsiError::EvalError {
                        detail: "corrupt arithmetic term".into(),
                    });
                };
                let x = self.eval(self.heap[p as usize + 1])?;
                if f.arity == 1 {
                    if f.atom == self.arith.minus {
                        return Ok(x.wrapping_neg());
                    }
                    if f.atom == self.arith.abs {
                        return Ok(x.wrapping_abs());
                    }
                    return Err(PsiError::EvalError {
                        detail: "unknown arithmetic functor".into(),
                    });
                }
                if f.arity != 2 {
                    return Err(PsiError::EvalError {
                        detail: "unknown arithmetic functor".into(),
                    });
                }
                let y = self.eval(self.heap[p as usize + 2])?;
                let a = f.atom;
                if a == self.arith.plus {
                    Ok(x.wrapping_add(y))
                } else if a == self.arith.minus {
                    Ok(x.wrapping_sub(y))
                } else if a == self.arith.star {
                    Ok(x.wrapping_mul(y))
                } else if a == self.arith.int_div {
                    if y == 0 {
                        Err(PsiError::EvalError {
                            detail: "division by zero".into(),
                        })
                    } else {
                        Ok(x.wrapping_div(y))
                    }
                } else if a == self.arith.modulo {
                    if y == 0 {
                        Err(PsiError::EvalError {
                            detail: "division by zero".into(),
                        })
                    } else {
                        Ok(x.rem_euclid(y))
                    }
                } else if a == self.arith.min {
                    Ok(x.min(y))
                } else if a == self.arith.max {
                    Ok(x.max(y))
                } else {
                    Err(PsiError::EvalError {
                        detail: "unknown arithmetic functor".into(),
                    })
                }
            }
            Cell::Ref(_) => Err(PsiError::EvalError {
                detail: "unbound variable in arithmetic".into(),
            }),
            _ => Err(PsiError::EvalError {
                detail: "non-arithmetic term".into(),
            }),
        }
    }

    // --------------------------------------------------------- decode

    fn capture(&mut self) -> Result<DecSolution> {
        let (cells, vars) = self.query.clone().expect("query in progress");
        let mut bindings = Vec::new();
        for (name, cell) in vars.iter().zip(&cells) {
            if name.starts_with('_') {
                continue;
            }
            let term = self.decode(Cell::Ref(*cell), 0)?;
            bindings.push((name.clone(), term));
        }
        Ok(DecSolution { bindings })
    }

    fn decode(&self, c: Cell, depth: u32) -> Result<Term> {
        if depth > 100_000 {
            return Err(PsiError::EvalError {
                detail: "term too deep to decode".into(),
            });
        }
        let d = self.deref(c);
        Ok(match d {
            Cell::Ref(a) => Term::Var(format!("_G{a}")),
            Cell::Int(v) => Term::Int(v),
            Cell::Nil => Term::nil(),
            Cell::Atom(a) => Term::atom(self.program.symbols().name(SymbolId::from_raw(a))),
            Cell::Lis(_) => {
                let mut elems = Vec::new();
                let mut cur = d;
                loop {
                    match cur {
                        Cell::Lis(p) => {
                            elems.push(self.decode(self.heap[p as usize], depth + 1)?);
                            cur = self.deref(self.heap[p as usize + 1]);
                        }
                        Cell::Nil => return Ok(Term::list(elems)),
                        other => {
                            let tail = self.decode(other, depth + 1)?;
                            return Ok(elems.into_iter().rev().fold(tail, |t, h| Term::cons(h, t)));
                        }
                    }
                    if elems.len() > 100_000 {
                        return Err(PsiError::EvalError {
                            detail: "list too long to decode".into(),
                        });
                    }
                }
            }
            Cell::Str(p) => {
                let Cell::Fun(f) = self.heap[p as usize] else {
                    return Err(PsiError::EvalError {
                        detail: "corrupt structure".into(),
                    });
                };
                let name = self
                    .program
                    .symbols()
                    .name(SymbolId::from_raw(f.atom))
                    .to_owned();
                let mut args = Vec::with_capacity(f.arity as usize);
                for i in 1..=f.arity as u32 {
                    args.push(self.decode(self.heap[(p + i) as usize], depth + 1)?);
                }
                Term::compound(&name, args)
            }
            Cell::Fun(_) => {
                return Err(PsiError::EvalError {
                    detail: "cannot decode a bare functor cell".into(),
                })
            }
        })
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Step {
    Ok,
    Fail,
    Solution,
}
