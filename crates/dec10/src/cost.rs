//! The DEC-2060 cost model.
//!
//! Table 1's DEC column is wall-clock time of compiled DEC-10 Prolog
//! on a DEC-2060. We model it as instruction counts × per-class cycle
//! weights × one scalar (`unit_ns`). The weights encode the *relative*
//! cost structure of Warren's compiled code (cheap deterministic
//! get/put sequences, expensive choice-point creation); `unit_ns` is
//! the single absolute calibration constant, fitted once so that the
//! overall DEC/PSI scale of Table 1 is in range (see EXPERIMENTS.md),
//! and never tuned per benchmark.

use crate::instr::Instr;

/// Per-instruction-class cycle weights.
#[derive(Debug, Clone)]
pub struct CostModel {
    /// Simple register/constant get and put instructions.
    pub get_put: u64,
    /// get_list / get_structure / put_list / put_structure.
    pub get_compound: u64,
    /// unify_* instructions (either mode).
    pub unify_instr: u64,
    /// Extra cycles per node pair visited by general unification
    /// (get_value, `=`/2).
    pub unify_node: u64,
    /// call.
    pub call: u64,
    /// execute.
    pub execute: u64,
    /// proceed.
    pub proceed: u64,
    /// allocate base cost.
    pub allocate: u64,
    /// extra allocate cost per permanent slot.
    pub allocate_per_slot: u64,
    /// deallocate.
    pub deallocate: u64,
    /// try_me_else (choice-point creation).
    pub try_me: u64,
    /// extra try cost per saved argument register.
    pub try_per_arg: u64,
    /// retry_me_else.
    pub retry_me: u64,
    /// trust_me.
    pub trust_me: u64,
    /// switch_on_term dispatch.
    pub switch: u64,
    /// cut base cost.
    pub cut: u64,
    /// jump / fail glue.
    pub glue: u64,
    /// built-in base cost.
    pub builtin: u64,
    /// extra cost per arithmetic node evaluated.
    pub arith_node: u64,
    /// trail unwind cost per entry on backtracking.
    pub unwind_per_entry: u64,
}

impl CostModel {
    /// The DEC-10 Prolog compiled-code weights.
    pub fn dec10() -> CostModel {
        CostModel {
            get_put: 2,
            get_compound: 3,
            unify_instr: 2,
            unify_node: 16,
            call: 6,
            execute: 3,
            proceed: 3,
            allocate: 4,
            allocate_per_slot: 1,
            deallocate: 3,
            try_me: 14,
            try_per_arg: 2,
            retry_me: 12,
            trust_me: 10,
            switch: 3,
            cut: 4,
            glue: 1,
            builtin: 6,
            arith_node: 2,
            unwind_per_entry: 5,
        }
    }

    /// Static cycles of one instruction (dynamic extras like unify
    /// node visits are charged separately by the emulator).
    pub fn cycles(&self, instr: &Instr) -> u64 {
        match instr {
            Instr::GetVariableX(..)
            | Instr::GetVariableY(..)
            | Instr::GetConstant(..)
            | Instr::GetInteger(..)
            | Instr::GetNil(..)
            | Instr::PutVariableX(..)
            | Instr::PutVariableY(..)
            | Instr::PutValueX(..)
            | Instr::PutValueY(..)
            | Instr::PutConstant(..)
            | Instr::PutInteger(..)
            | Instr::PutNil(..) => self.get_put,
            Instr::GetValueX(..) | Instr::GetValueY(..) => self.get_put,
            Instr::GetList(..)
            | Instr::GetStructure(..)
            | Instr::PutList(..)
            | Instr::PutStructure(..) => self.get_compound,
            Instr::UnifyVariableX(..)
            | Instr::UnifyVariableY(..)
            | Instr::UnifyValueX(..)
            | Instr::UnifyValueY(..)
            | Instr::UnifyConstant(..)
            | Instr::UnifyInteger(..)
            | Instr::UnifyNil
            | Instr::UnifyVoid(..) => self.unify_instr,
            Instr::Call(..) => self.call,
            Instr::Execute(..) => self.execute,
            Instr::Proceed => self.proceed,
            Instr::Allocate(n) => self.allocate + *n as u64 * self.allocate_per_slot,
            Instr::Deallocate => self.deallocate,
            Instr::TryMeElse(..) => self.try_me,
            Instr::RetryMeElse(..) => self.retry_me,
            Instr::TrustMe => self.trust_me,
            Instr::SwitchOnTerm { .. } | Instr::SwitchOnConstant(_) => self.switch,
            Instr::Cut => self.cut,
            Instr::CallBuiltin(..) => self.builtin,
            Instr::Jump(..) | Instr::Fail | Instr::HaltSuccess => self.glue,
        }
    }
}

impl Default for CostModel {
    fn default() -> CostModel {
        CostModel::dec10()
    }
}

/// Configuration of the DEC-10 baseline machine.
#[derive(Debug, Clone)]
pub struct DecConfig {
    /// Cost weights.
    pub costs: CostModel,
    /// Nanoseconds per cycle unit — the single absolute calibration
    /// constant (see EXPERIMENTS.md).
    pub unit_ns: f64,
    /// Abort execution after this many instructions.
    pub instruction_budget: u64,
}

impl DecConfig {
    /// The calibrated DEC-2060 configuration.
    pub fn dec2060() -> DecConfig {
        DecConfig {
            costs: CostModel::dec10(),
            unit_ns: 460.0,
            instruction_budget: 4_000_000_000,
        }
    }
}

impl Default for DecConfig {
    fn default() -> DecConfig {
        DecConfig::dec2060()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn choice_points_cost_more_than_gets() {
        let c = CostModel::dec10();
        assert!(c.cycles(&Instr::TryMeElse(0)) > 4 * c.cycles(&Instr::GetNil(0)));
    }

    #[test]
    fn allocate_scales_with_slots() {
        let c = CostModel::dec10();
        assert!(c.cycles(&Instr::Allocate(10)) > c.cycles(&Instr::Allocate(1)));
    }
}
