//! DEC-10 Prolog baseline.
//!
//! Table 1 of the paper compares the PSI against "DEC-10 Prolog
//! compiled code on the DEC-2060" — D.H.D. Warren's compiler, the
//! direct ancestor of the WAM. This crate provides that baseline: a
//! WAM-style compiler ([`compile`]) and emulator ([`DecMachine`]) with
//! the two properties the paper credits for DEC's wins on simple
//! programs (§3.1):
//!
//! * **clause indexing** — `switch_on_term` on the first argument
//!   removes nondeterminacy ("the close indexing method"), so
//!   deterministic list code never creates choice points, and
//! * **compiled unification** — head unification is specialized
//!   get/unify instruction sequences instead of a general
//!   interpretive routine.
//!
//! Execution time comes from a per-instruction-class cycle cost model
//! scaled by a single calibration constant (see `EXPERIMENTS.md`);
//! relative behaviour — who wins on which workload — is determined by
//! instruction counts, not by tuning.
//!
//! # Example
//!
//! ```
//! use kl0::Program;
//! use dec10::{DecConfig, DecMachine};
//!
//! let program = Program::parse(
//!     "app([], L, L).\n\
//!      app([H|T], L, [H|R]) :- app(T, L, R).",
//! )?;
//! let mut machine = DecMachine::load(&program, DecConfig::dec2060())?;
//! let solutions = machine.solve("app([1,2], [3], X)", 1)?;
//! assert_eq!(solutions[0].binding("X").unwrap().to_string(), "[1,2,3]");
//! # Ok::<(), psi_core::PsiError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod compile;
mod cost;
mod emu;
mod instr;

pub use compile::{compile, CompiledProgram};
pub use cost::{CostModel, DecConfig};
pub use emu::{DecMachine, DecSolution, DecStats};
pub use instr::{Builtin, Instr};
