//! The WAM-style instruction set of the DEC-10 Prolog baseline.

use std::fmt;

/// A register index. `A`/`X` registers are one flat array; argument
/// `i` of a call is register `i` (0-based).
pub type Reg = u16;

/// A permanent (environment) variable slot.
pub type YSlot = u16;

/// An interned constant (atom symbol id).
pub type AtomId = u32;

/// A functor: atom id and arity packed by the compiler.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FunctorId {
    /// Interned name.
    pub atom: AtomId,
    /// Number of arguments.
    pub arity: u8,
}

/// Built-in predicates of the baseline system (the same KL0 subset the
/// PSI implements, minus the PSI-only heap vectors and process
/// switch).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Builtin {
    /// `true/0`.
    True,
    /// `fail/0`.
    Fail,
    /// `=/2`.
    Unify,
    /// `\=/2`.
    NotUnify,
    /// `is/2`.
    Is,
    /// `</2`, `>/2`, `=</2`, `>=/2`, `=:=/2`, `=\=/2` with a
    /// comparison code.
    Compare(CompareOp),
    /// `==/2`.
    TermEq,
    /// `\==/2`.
    TermNe,
    /// `var/1`.
    Var,
    /// `nonvar/1`.
    Nonvar,
    /// `atom/1`.
    Atom,
    /// `atomic/1`.
    Atomic,
    /// `integer/1`.
    Integer,
    /// `functor/3`.
    Functor,
    /// `arg/3`.
    Arg,
    /// `write/1`.
    Write,
    /// `nl/0`.
    Nl,
    /// `tab/1`.
    Tab,
}

/// A constant key for second-level indexing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ConstKey {
    /// An atom (interned id).
    Atom(AtomId),
    /// An integer value.
    Int(i32),
    /// The empty list.
    Nil,
}

/// Arithmetic comparison operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CompareOp {
    /// `<`
    Lt,
    /// `>`
    Gt,
    /// `=<`
    Le,
    /// `>=`
    Ge,
    /// `=:=`
    Eq,
    /// `=\=`
    Ne,
}

impl Builtin {
    /// Resolves a `name/arity` pair.
    pub fn lookup(name: &str, arity: usize) -> Option<Builtin> {
        Some(match (name, arity) {
            ("true", 0) => Builtin::True,
            ("fail", 0) | ("false", 0) => Builtin::Fail,
            ("=", 2) => Builtin::Unify,
            ("\\=", 2) => Builtin::NotUnify,
            ("is", 2) => Builtin::Is,
            ("<", 2) => Builtin::Compare(CompareOp::Lt),
            (">", 2) => Builtin::Compare(CompareOp::Gt),
            ("=<", 2) => Builtin::Compare(CompareOp::Le),
            (">=", 2) => Builtin::Compare(CompareOp::Ge),
            ("=:=", 2) => Builtin::Compare(CompareOp::Eq),
            ("=\\=", 2) => Builtin::Compare(CompareOp::Ne),
            ("==", 2) => Builtin::TermEq,
            ("\\==", 2) => Builtin::TermNe,
            ("var", 1) => Builtin::Var,
            ("nonvar", 1) => Builtin::Nonvar,
            ("atom", 1) => Builtin::Atom,
            ("atomic", 1) => Builtin::Atomic,
            ("integer", 1) => Builtin::Integer,
            ("functor", 3) => Builtin::Functor,
            ("arg", 3) => Builtin::Arg,
            ("write", 1) => Builtin::Write,
            ("nl", 0) => Builtin::Nl,
            ("tab", 1) => Builtin::Tab,
            _ => return None,
        })
    }
}

/// One WAM instruction. Code addresses are indices into the flat
/// instruction vector.
#[derive(Debug, Clone, PartialEq)]
pub enum Instr {
    // ------------------------------------------------------------- get
    /// Bind head argument `Ai` into a fresh register/slot.
    GetVariableX(Reg, Reg),
    /// Bind head argument `Ai` into environment slot `Yn`.
    GetVariableY(YSlot, Reg),
    /// Unify head argument `Ai` with register `Xn`.
    GetValueX(Reg, Reg),
    /// Unify head argument `Ai` with environment slot `Yn`.
    GetValueY(YSlot, Reg),
    /// Unify head argument `Ai` with an atom.
    GetConstant(AtomId, Reg),
    /// Unify head argument `Ai` with an integer.
    GetInteger(i32, Reg),
    /// Unify head argument `Ai` with `[]`.
    GetNil(Reg),
    /// Unify head argument `Ai` with a list cell; enters read or write
    /// mode.
    GetList(Reg),
    /// Unify head argument `Ai` with a structure; enters read or write
    /// mode.
    GetStructure(FunctorId, Reg),

    // ----------------------------------------------------------- unify
    /// Unify the next subterm into register `Xn`.
    UnifyVariableX(Reg),
    /// Unify the next subterm into slot `Yn`.
    UnifyVariableY(YSlot),
    /// Unify the next subterm with register `Xn`.
    UnifyValueX(Reg),
    /// Unify the next subterm with slot `Yn`.
    UnifyValueY(YSlot),
    /// Unify the next subterm with an atom.
    UnifyConstant(AtomId),
    /// Unify the next subterm with an integer.
    UnifyInteger(i32),
    /// Unify the next subterm with `[]`.
    UnifyNil,
    /// Skip `n` anonymous subterms.
    UnifyVoid(u16),

    // ------------------------------------------------------------- put
    /// Fresh variable into `Xn` and `Ai`.
    PutVariableX(Reg, Reg),
    /// Fresh (or existing) slot `Yn` into `Ai`.
    PutVariableY(YSlot, Reg),
    /// Copy register `Xn` to `Ai`.
    PutValueX(Reg, Reg),
    /// Copy slot `Yn` to `Ai`.
    PutValueY(YSlot, Reg),
    /// Atom into `Ai`.
    PutConstant(AtomId, Reg),
    /// Integer into `Ai`.
    PutInteger(i32, Reg),
    /// `[]` into `Ai`.
    PutNil(Reg),
    /// New list cell into `Ai` (write mode for the next two unify
    /// instructions).
    PutList(Reg),
    /// New structure into `Ai` (write mode for the next `arity` unify
    /// instructions).
    PutStructure(FunctorId, Reg),

    // --------------------------------------------------------- control
    /// Call a user predicate with `nargs` arguments.
    Call(u32, u8),
    /// Last-call transfer to a user predicate.
    Execute(u32),
    /// Return from a fact or a clause without an environment.
    Proceed,
    /// Push an environment with `n` permanent slots.
    Allocate(u16),
    /// Pop the current environment (before `Execute`).
    Deallocate,

    // -------------------------------------------------------- indexing
    /// First-arg dispatch: targets for variable, constant, `[]`, list
    /// and structure. `usize::MAX` means fail.
    SwitchOnTerm {
        /// Target when the first argument is unbound.
        var: usize,
        /// Target when it is an atom or integer.
        constant: usize,
        /// Target when it is `[]`.
        nil: usize,
        /// Target when it is a list cell.
        list: usize,
        /// Target when it is a structure.
        structure: usize,
    },
    /// Second-level dispatch on the first argument's constant value
    /// (atom id or integer); pairs are searched in order, no match
    /// fails. This is the "close indexing" the paper credits for
    /// DEC's nreverse win.
    SwitchOnConstant(Vec<(ConstKey, usize)>),
    /// Create a choice point; on failure resume at `alt`.
    TryMeElse(usize),
    /// Update the choice point; on failure resume at `alt`.
    RetryMeElse(usize),
    /// Discard the choice point.
    TrustMe,

    // ------------------------------------------------------------ misc
    /// Cut back to the choice-point count captured at clause entry.
    Cut,
    /// Invoke a built-in with arguments in `A1..An`.
    CallBuiltin(Builtin, u8),
    /// Unconditional jump (chain trampolines).
    Jump(usize),
    /// Unconditional failure (empty indexing bucket).
    Fail,
    /// End of a query: report success.
    HaltSuccess,
}

impl fmt::Display for Instr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self:?}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builtin_lookup() {
        assert_eq!(Builtin::lookup("is", 2), Some(Builtin::Is));
        assert_eq!(
            Builtin::lookup("=<", 2),
            Some(Builtin::Compare(CompareOp::Le))
        );
        assert_eq!(
            Builtin::lookup("vget", 3),
            None,
            "heap vectors are PSI-only"
        );
        assert_eq!(Builtin::lookup("yield", 0), None, "processes are PSI-only");
    }

    #[test]
    fn instr_display_is_nonempty() {
        assert!(!Instr::Proceed.to_string().is_empty());
    }
}
