//! The WAM compiler: lowered clauses → instruction vector with
//! first-argument indexing.

use crate::instr::{Builtin, ConstKey, FunctorId, Instr, Reg, YSlot};
use kl0::{FlatClause, FlatGoal, LoweredProgram, PredicateKey, Program, Term};
use psi_core::{PsiError, Result, SymbolTable};
use std::collections::HashMap;

/// A predicate table entry.
#[derive(Debug, Clone)]
pub struct PredEntry {
    /// Predicate name.
    pub name: String,
    /// Arity.
    pub arity: u8,
    /// Entry address in the code vector, or `None` if called but
    /// never defined.
    pub entry: Option<usize>,
}

/// A compiled query: entry predicate plus variable names.
#[derive(Debug, Clone)]
pub struct DecQuery {
    /// Predicate-table index of the generated entry point.
    pub pred: u32,
    /// Query variable names in argument order.
    pub vars: Vec<String>,
}

/// The compiled program: flat code vector plus predicate and symbol
/// tables.
#[derive(Debug, Clone)]
pub struct CompiledProgram {
    /// The instruction vector.
    pub code: Vec<Instr>,
    preds: Vec<PredEntry>,
    index: HashMap<PredicateKey, u32>,
    symbols: SymbolTable,
    query_counter: u32,
}

/// Compiles a lowered program.
///
/// # Errors
///
/// Returns [`PsiError::Compile`] for clauses that redefine built-ins
/// or exceed encoding limits.
pub fn compile(lowered: &LoweredProgram) -> Result<CompiledProgram> {
    let mut cp = CompiledProgram::new();
    cp.add_program(lowered)?;
    Ok(cp)
}

impl CompiledProgram {
    /// Creates an empty program.
    pub fn new() -> CompiledProgram {
        CompiledProgram {
            code: Vec::new(),
            preds: Vec::new(),
            index: HashMap::new(),
            symbols: SymbolTable::new(),
            query_counter: 0,
        }
    }

    /// The predicate table.
    pub fn predicates(&self) -> &[PredEntry] {
        &self.preds
    }

    /// Looks up a predicate index.
    pub fn lookup(&self, key: &PredicateKey) -> Option<u32> {
        self.index.get(key).copied()
    }

    /// The predicate at `idx`.
    pub fn predicate(&self, idx: u32) -> &PredEntry {
        &self.preds[idx as usize]
    }

    /// The symbol table.
    pub fn symbols(&self) -> &SymbolTable {
        &self.symbols
    }

    /// Mutable symbol table access (for the emulator's arithmetic
    /// functor resolution).
    pub fn symbols_mut(&mut self) -> &mut SymbolTable {
        &mut self.symbols
    }

    /// Adds all predicates of a lowered program.
    ///
    /// # Errors
    ///
    /// See [`compile`].
    pub fn add_program(&mut self, lowered: &LoweredProgram) -> Result<()> {
        for key in lowered.predicates() {
            if Builtin::lookup(&key.0, key.1).is_some() {
                return Err(PsiError::Compile {
                    detail: format!("cannot redefine built-in {}/{}", key.0, key.1),
                });
            }
            self.pred_index(key)?;
        }
        for key in lowered.predicates() {
            let clauses = lowered.clauses_for(key).to_vec();
            let entry = self.compile_predicate(&clauses)?;
            let idx = self.pred_index(key)?;
            self.preds[idx as usize].entry = Some(entry);
        }
        Ok(())
    }

    /// Compiles `goal` as a query entry point.
    ///
    /// # Errors
    ///
    /// See [`compile`].
    pub fn compile_query(&mut self, goal: &Term) -> Result<DecQuery> {
        self.query_counter += 1;
        let name = format!("$query{}", self.query_counter);
        let vars: Vec<String> = goal.variables().into_iter().map(str::to_owned).collect();
        if vars.len() > 255 {
            return Err(PsiError::Compile {
                detail: "query has more than 255 variables".into(),
            });
        }
        let head = Term::compound(&name, vars.iter().map(|v| Term::var(v)).collect());
        let mut program = Program::new();
        program.add_clause(kl0::Clause {
            head,
            body: Some(goal.clone()),
        })?;
        let lowered = LoweredProgram::lower(&program)?;
        self.add_program(&lowered)?;
        let pred = self.lookup(&(name, vars.len())).expect("just compiled");
        Ok(DecQuery { pred, vars })
    }

    fn pred_index(&mut self, key: &PredicateKey) -> Result<u32> {
        if let Some(&idx) = self.index.get(key) {
            return Ok(idx);
        }
        if key.1 > 255 {
            return Err(PsiError::Compile {
                detail: format!("predicate {}/{} exceeds 255 arguments", key.0, key.1),
            });
        }
        let idx = self.preds.len() as u32;
        self.preds.push(PredEntry {
            name: key.0.clone(),
            arity: key.1 as u8,
            entry: None,
        });
        self.index.insert(key.clone(), idx);
        Ok(idx)
    }

    // ------------------------------------------------------- indexing

    /// Compiles all clauses of a predicate with first-argument
    /// indexing and returns the entry address.
    fn compile_predicate(&mut self, clauses: &[FlatClause]) -> Result<usize> {
        let addrs: Vec<usize> = clauses
            .iter()
            .map(|c| self.compile_clause(c))
            .collect::<Result<_>>()?;
        if addrs.is_empty() {
            let entry = self.code.len();
            self.code.push(Instr::Fail);
            return Ok(entry);
        }
        if addrs.len() == 1 {
            return Ok(addrs[0]);
        }
        let arity = clauses[0].head.functor().map(|(_, a)| a).unwrap_or(0);
        if arity == 0 {
            // Nothing to index on.
            return Ok(self.emit_chain(&addrs));
        }

        // Bucket clauses by the shape of their first head argument.
        let first_arg = |c: &FlatClause| match &c.head {
            Term::Struct(_, args) => Some(args[0].clone()),
            _ => None,
        };
        let mut var_bucket = Vec::new(); // everything (var entry)
        let mut const_bucket = Vec::new();
        let mut nil_bucket = Vec::new();
        let mut list_bucket = Vec::new();
        let mut struct_bucket = Vec::new();
        for (i, c) in clauses.iter().enumerate() {
            let a = addrs[i];
            var_bucket.push(a);
            match first_arg(c) {
                Some(Term::Var(_)) | None => {
                    const_bucket.push(a);
                    nil_bucket.push(a);
                    list_bucket.push(a);
                    struct_bucket.push(a);
                }
                Some(Term::Atom(ref at)) if at == "[]" => nil_bucket.push(a),
                Some(Term::Atom(_)) | Some(Term::Int(_)) => const_bucket.push(a),
                Some(Term::Struct(ref f, ref args)) if f == "." && args.len() == 2 => {
                    list_bucket.push(a)
                }
                Some(Term::Struct(..)) => struct_bucket.push(a),
            }
        }

        let fail_at = self.code.len();
        self.code.push(Instr::Fail);
        let target = |cp: &mut CompiledProgram, bucket: &[usize]| -> usize {
            match bucket.len() {
                0 => fail_at,
                1 => bucket[0],
                _ => cp.emit_chain(bucket),
            }
        };
        let var = target(self, &var_bucket);
        // Second-level dispatch by constant value when the bucket has
        // no variable-headed clauses (the common fact-table case).
        let const_keys: Vec<Option<ConstKey>> = clauses
            .iter()
            .map(|c| match first_arg(c) {
                Some(Term::Atom(ref a)) if a == "[]" => Some(ConstKey::Nil),
                Some(Term::Atom(ref a)) => Some(ConstKey::Atom(self.symbols.intern(a).get())),
                Some(Term::Int(i)) => Some(ConstKey::Int(i)),
                _ => None,
            })
            .collect();
        let all_consts = clauses
            .iter()
            .zip(&const_keys)
            .all(|(c, k)| k.is_some() || !matches!(first_arg(c), Some(Term::Var(_)) | None));
        let constant = if all_consts && const_bucket.len() > 1 {
            // Group clause addresses by constant value, in order.
            let mut groups: Vec<(ConstKey, Vec<usize>)> = Vec::new();
            for (i, key) in const_keys.iter().enumerate() {
                if let Some(k) = key {
                    match groups.iter_mut().find(|(g, _)| g == k) {
                        Some((_, v)) => v.push(addrs[i]),
                        None => groups.push((*k, vec![addrs[i]])),
                    }
                }
            }
            let pairs: Vec<(ConstKey, usize)> = groups
                .into_iter()
                .map(|(k, bucket)| (k, target(self, &bucket)))
                .collect();
            let at = self.code.len();
            self.code.push(Instr::SwitchOnConstant(pairs));
            at
        } else {
            target(self, &const_bucket)
        };
        let nil = target(self, &nil_bucket);
        let list = target(self, &list_bucket);
        let structure = target(self, &struct_bucket);
        let entry = self.code.len();
        self.code.push(Instr::SwitchOnTerm {
            var,
            constant,
            nil,
            list,
            structure,
        });
        Ok(entry)
    }

    /// Emits a try/retry/trust chain over clause addresses.
    fn emit_chain(&mut self, addrs: &[usize]) -> usize {
        debug_assert!(addrs.len() >= 2);
        // Layout: [try_me_else B2; jump C1] [B2: retry_me_else B3;
        // jump C2] ... [Bn: trust_me; jump Cn], where the clause
        // bodies Ci were already emitted elsewhere.
        let mut entry = 0usize;
        let mut blocks = Vec::new();
        for (i, &addr) in addrs.iter().enumerate() {
            let at = self.code.len();
            if i == 0 {
                entry = at;
                self.code.push(Instr::TryMeElse(usize::MAX)); // patched
            } else if i + 1 == addrs.len() {
                self.code.push(Instr::TrustMe);
            } else {
                self.code.push(Instr::RetryMeElse(usize::MAX)); // patched
            }
            self.code.push(Instr::Jump(addr));
            blocks.push(at);
        }
        // Patch alternatives to point at the following block.
        for i in 0..blocks.len() - 1 {
            let next = blocks[i + 1];
            match &mut self.code[blocks[i]] {
                Instr::TryMeElse(alt) | Instr::RetryMeElse(alt) => *alt = next,
                Instr::TrustMe => {}
                other => unreachable!("chain block head {other:?}"),
            }
        }
        entry
    }

    // ---------------------------------------------------- clause body

    fn compile_clause(&mut self, clause: &FlatClause) -> Result<usize> {
        let addr = self.code.len();
        let mut ctx = ClauseCtx::new(clause);
        let arity = clause.head.functor().map(|(_, a)| a).unwrap_or(0) as Reg;

        let allocate_at = if ctx.needs_env {
            self.code.push(Instr::Allocate(0)); // slot count patched below
            Some(self.code.len() - 1)
        } else {
            None
        };

        // Head.
        if let Term::Struct(_, args) = &clause.head {
            let mut queue: Vec<(Reg, Term)> = Vec::new();
            for (i, arg) in args.iter().enumerate() {
                self.compile_head_arg(arg, i as Reg, &mut ctx, &mut queue)?;
            }
            while !queue.is_empty() {
                let (reg, term) = queue.remove(0);
                self.compile_head_compound(&term, reg, &mut ctx, &mut queue)?;
            }
        }

        // Body.
        let ngoals = clause.goals.len();
        for (gi, goal) in clause.goals.iter().enumerate() {
            let last = gi + 1 == ngoals;
            match goal {
                FlatGoal::Cut => self.code.push(Instr::Cut),
                FlatGoal::Call(term) => {
                    let (name, nargs) = term.functor().ok_or_else(|| PsiError::Compile {
                        detail: format!("goal is not callable: {term}"),
                    })?;
                    let args: &[Term] = match term {
                        Term::Struct(_, a) => a,
                        _ => &[],
                    };
                    for (j, a) in args.iter().enumerate() {
                        self.compile_put(a, j as Reg, &mut ctx)?;
                    }
                    if let Some(b) = Builtin::lookup(name, nargs) {
                        self.code.push(Instr::CallBuiltin(b, nargs as u8));
                    } else {
                        let idx = self.pred_index(&(name.to_owned(), nargs))?;
                        if last && ctx.needs_env {
                            self.code.push(Instr::Deallocate);
                            self.code.push(Instr::Execute(idx));
                            if let Some(at) = allocate_at {
                                self.code[at] = Instr::Allocate(ctx.nslots);
                            }
                            return Ok(addr);
                        }
                        self.code.push(Instr::Call(idx, nargs as u8));
                    }
                }
            }
        }
        // Fall-through return (facts, or bodies ending in builtins or
        // cut).
        if ctx.needs_env {
            self.code.push(Instr::Deallocate);
        }
        self.code.push(Instr::Proceed);
        if let Some(at) = allocate_at {
            self.code[at] = Instr::Allocate(ctx.nslots);
        }
        let _ = arity;
        Ok(addr)
    }

    fn compile_head_arg(
        &mut self,
        arg: &Term,
        ai: Reg,
        ctx: &mut ClauseCtx,
        queue: &mut Vec<(Reg, Term)>,
    ) -> Result<()> {
        match arg {
            Term::Var(v) => {
                if ctx.is_singleton(v) {
                    return Ok(()); // nothing to do: argument ignored
                }
                match ctx.var_ref(v) {
                    (VarLoc::Y(y), true) => self.code.push(Instr::GetVariableY(y, ai)),
                    (VarLoc::Y(y), false) => self.code.push(Instr::GetValueY(y, ai)),
                    (VarLoc::X(x), true) => self.code.push(Instr::GetVariableX(x, ai)),
                    (VarLoc::X(x), false) => self.code.push(Instr::GetValueX(x, ai)),
                }
            }
            Term::Atom(a) if a == "[]" => self.code.push(Instr::GetNil(ai)),
            Term::Atom(a) => {
                let id = self.symbols.intern(a).get();
                self.code.push(Instr::GetConstant(id, ai));
            }
            Term::Int(i) => self.code.push(Instr::GetInteger(*i, ai)),
            Term::Struct(..) => {
                self.compile_head_compound(arg, ai, ctx, queue)?;
            }
        }
        Ok(())
    }

    /// Emits get_list/get_structure plus its unify sequence; nested
    /// compounds go through fresh temporaries and the work queue.
    fn compile_head_compound(
        &mut self,
        term: &Term,
        reg: Reg,
        ctx: &mut ClauseCtx,
        queue: &mut Vec<(Reg, Term)>,
    ) -> Result<()> {
        let (name, args) = match term {
            Term::Struct(f, a) => (f.as_str(), a),
            _ => unreachable!("compound head arg"),
        };
        if name == "." && args.len() == 2 {
            self.code.push(Instr::GetList(reg));
        } else {
            let atom = self.symbols.intern(name).get();
            self.code.push(Instr::GetStructure(
                FunctorId {
                    atom,
                    arity: args.len() as u8,
                },
                reg,
            ));
        }
        for sub in args {
            self.compile_unify_item(sub, ctx, queue)?;
        }
        Ok(())
    }

    fn compile_unify_item(
        &mut self,
        sub: &Term,
        ctx: &mut ClauseCtx,
        queue: &mut Vec<(Reg, Term)>,
    ) -> Result<()> {
        match sub {
            Term::Var(v) => {
                if ctx.is_singleton(v) {
                    self.code.push(Instr::UnifyVoid(1));
                    return Ok(());
                }
                match ctx.var_ref(v) {
                    (VarLoc::Y(y), true) => self.code.push(Instr::UnifyVariableY(y)),
                    (VarLoc::Y(y), false) => self.code.push(Instr::UnifyValueY(y)),
                    (VarLoc::X(x), true) => self.code.push(Instr::UnifyVariableX(x)),
                    (VarLoc::X(x), false) => self.code.push(Instr::UnifyValueX(x)),
                }
            }
            Term::Atom(a) if a == "[]" => self.code.push(Instr::UnifyNil),
            Term::Atom(a) => {
                let id = self.symbols.intern(a).get();
                self.code.push(Instr::UnifyConstant(id));
            }
            Term::Int(i) => self.code.push(Instr::UnifyInteger(*i)),
            Term::Struct(..) => {
                let tmp = ctx.fresh_temp();
                self.code.push(Instr::UnifyVariableX(tmp));
                queue.push((tmp, sub.clone()));
            }
        }
        Ok(())
    }

    // ----------------------------------------------------------- puts

    fn compile_put(&mut self, arg: &Term, ai: Reg, ctx: &mut ClauseCtx) -> Result<()> {
        match arg {
            Term::Var(v) => {
                if ctx.is_singleton(v) {
                    let tmp = ctx.fresh_temp();
                    self.code.push(Instr::PutVariableX(tmp, ai));
                    return Ok(());
                }
                match ctx.var_ref(v) {
                    (VarLoc::Y(y), true) => self.code.push(Instr::PutVariableY(y, ai)),
                    (VarLoc::Y(y), false) => self.code.push(Instr::PutValueY(y, ai)),
                    (VarLoc::X(x), true) => self.code.push(Instr::PutVariableX(x, ai)),
                    (VarLoc::X(x), false) => self.code.push(Instr::PutValueX(x, ai)),
                }
            }
            Term::Atom(a) if a == "[]" => self.code.push(Instr::PutNil(ai)),
            Term::Atom(a) => {
                let id = self.symbols.intern(a).get();
                self.code.push(Instr::PutConstant(id, ai));
            }
            Term::Int(i) => self.code.push(Instr::PutInteger(*i, ai)),
            Term::Struct(..) => {
                self.compile_put_compound(arg, ai, ctx)?;
            }
        }
        Ok(())
    }

    /// Builds a compound bottom-up: nested compounds land in
    /// temporaries first, then the outer cell references them.
    fn compile_put_compound(&mut self, term: &Term, reg: Reg, ctx: &mut ClauseCtx) -> Result<()> {
        let (name, args) = match term {
            Term::Struct(f, a) => (f.as_str(), a),
            _ => unreachable!("compound put arg"),
        };
        // Children first.
        let mut child_regs: Vec<Option<Reg>> = Vec::with_capacity(args.len());
        for sub in args {
            if matches!(sub, Term::Struct(..)) {
                let tmp = ctx.fresh_temp();
                self.compile_put_compound(sub, tmp, ctx)?;
                child_regs.push(Some(tmp));
            } else {
                child_regs.push(None);
            }
        }
        if name == "." && args.len() == 2 {
            self.code.push(Instr::PutList(reg));
        } else {
            let atom = self.symbols.intern(name).get();
            self.code.push(Instr::PutStructure(
                FunctorId {
                    atom,
                    arity: args.len() as u8,
                },
                reg,
            ));
        }
        for (sub, child) in args.iter().zip(child_regs) {
            if let Some(tmp) = child {
                self.code.push(Instr::UnifyValueX(tmp));
                continue;
            }
            match sub {
                Term::Var(v) => {
                    if ctx.is_singleton(v) {
                        self.code.push(Instr::UnifyVoid(1));
                        continue;
                    }
                    match ctx.var_ref(v) {
                        (VarLoc::Y(y), true) => self.code.push(Instr::UnifyVariableY(y)),
                        (VarLoc::Y(y), false) => self.code.push(Instr::UnifyValueY(y)),
                        (VarLoc::X(x), true) => self.code.push(Instr::UnifyVariableX(x)),
                        (VarLoc::X(x), false) => self.code.push(Instr::UnifyValueX(x)),
                    }
                }
                Term::Atom(a) if a == "[]" => self.code.push(Instr::UnifyNil),
                Term::Atom(a) => {
                    let id = self.symbols.intern(a).get();
                    self.code.push(Instr::UnifyConstant(id));
                }
                Term::Int(i) => self.code.push(Instr::UnifyInteger(*i)),
                Term::Struct(..) => unreachable!("handled via child_regs"),
            }
        }
        Ok(())
    }
}

impl Default for CompiledProgram {
    fn default() -> CompiledProgram {
        CompiledProgram::new()
    }
}

#[derive(Debug, Clone, Copy)]
enum VarLoc {
    X(Reg),
    Y(YSlot),
}

/// Per-clause variable allocation.
struct ClauseCtx {
    needs_env: bool,
    slots: HashMap<String, VarLoc>,
    seen: HashMap<String, bool>,
    occurrences: HashMap<String, u32>,
    nslots: u16,
    next_x: Reg,
}

impl ClauseCtx {
    fn new(clause: &FlatClause) -> ClauseCtx {
        let mut occurrences: HashMap<String, u32> = HashMap::new();
        fn walk(t: &Term, counts: &mut HashMap<String, u32>) {
            match t {
                Term::Var(v) => *counts.entry(v.clone()).or_default() += 1,
                Term::Struct(_, args) => {
                    for a in args {
                        walk(a, counts);
                    }
                }
                _ => {}
            }
        }
        walk(&clause.head, &mut occurrences);
        let mut max_goal_arity = 0usize;
        for g in &clause.goals {
            if let FlatGoal::Call(t) = g {
                walk(t, &mut occurrences);
                if let Some((_, a)) = t.functor() {
                    max_goal_arity = max_goal_arity.max(a);
                }
            }
        }
        let arity = clause.head.functor().map(|(_, a)| a).unwrap_or(0);
        let needs_env = !clause.goals.is_empty();
        ClauseCtx {
            needs_env,
            slots: HashMap::new(),
            seen: HashMap::new(),
            occurrences,
            nslots: 0,
            next_x: arity.max(max_goal_arity) as Reg,
        }
    }

    fn is_singleton(&self, v: &str) -> bool {
        self.occurrences.get(v).copied().unwrap_or(0) <= 1
    }

    fn fresh_temp(&mut self) -> Reg {
        let r = self.next_x;
        self.next_x += 1;
        r
    }

    /// Returns the variable's location and whether this is its first
    /// occurrence.
    fn var_ref(&mut self, v: &str) -> (VarLoc, bool) {
        if let Some(&loc) = self.slots.get(v) {
            let first = !self.seen.get(v).copied().unwrap_or(false);
            self.seen.insert(v.to_owned(), true);
            return (loc, first);
        }
        let loc = if self.needs_env {
            let y = self.nslots;
            self.nslots += 1;
            VarLoc::Y(y)
        } else {
            VarLoc::X(self.fresh_temp())
        };
        self.slots.insert(v.to_owned(), loc);
        self.seen.insert(v.to_owned(), true);
        (loc, true)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn compiled(src: &str) -> CompiledProgram {
        let p = Program::parse(src).unwrap();
        let lp = LoweredProgram::lower(&p).unwrap();
        compile(&lp).unwrap()
    }

    #[test]
    fn fact_compiles_to_gets_and_proceed() {
        let cp = compiled("p(a, 42, []).");
        let entry = cp
            .predicate(cp.lookup(&("p".into(), 3)).unwrap())
            .entry
            .unwrap();
        assert!(matches!(cp.code[entry], Instr::GetConstant(..)));
        assert!(matches!(cp.code[entry + 1], Instr::GetInteger(42, 1)));
        assert!(matches!(cp.code[entry + 2], Instr::GetNil(2)));
        assert!(matches!(cp.code[entry + 3], Instr::Proceed));
    }

    #[test]
    fn two_clause_list_predicate_gets_switch() {
        let cp = compiled("app([], L, L). app([H|T], L, [H|R]) :- app(T, L, R).");
        let entry = cp
            .predicate(cp.lookup(&("app".into(), 3)).unwrap())
            .entry
            .unwrap();
        match cp.code[entry] {
            Instr::SwitchOnTerm { nil, list, var, .. } => {
                // Nil and list buckets are singletons: straight to the
                // clause, no choice point.
                assert!(
                    matches!(cp.code[nil], Instr::GetNil(_) | Instr::GetVariableY(..)),
                    "nil target: {:?}",
                    cp.code[nil]
                );
                assert!(
                    matches!(cp.code[list], Instr::Allocate(_)),
                    "list target: {:?}",
                    cp.code[list]
                );
                // Var bucket tries both.
                assert!(matches!(cp.code[var], Instr::TryMeElse(_)));
            }
            ref other => panic!("expected switch, got {other:?}"),
        }
    }

    #[test]
    fn last_call_is_execute() {
        let cp = compiled("p(X) :- q(X), r(X). q(1). r(1).");
        let entry = cp
            .predicate(cp.lookup(&("p".into(), 1)).unwrap())
            .entry
            .unwrap();
        let mut saw_call = false;
        let mut saw_execute_after_deallocate = false;
        let mut prev_dealloc = false;
        for i in entry..cp.code.len() {
            match &cp.code[i] {
                Instr::Call(..) => saw_call = true,
                Instr::Deallocate => prev_dealloc = true,
                Instr::Execute(_) if prev_dealloc => {
                    saw_execute_after_deallocate = true;
                    break;
                }
                _ => prev_dealloc = false,
            }
        }
        assert!(saw_call);
        assert!(saw_execute_after_deallocate);
    }

    #[test]
    fn nested_structures_flatten() {
        let cp = compiled("p(f(g(X), X)).");
        let entry = cp
            .predicate(cp.lookup(&("p".into(), 1)).unwrap())
            .entry
            .unwrap();
        assert!(matches!(cp.code[entry], Instr::GetStructure(..)));
        // f's unify sequence has a temp for g(X), then the queue emits
        // get_structure for g.
        let has_second_get = cp.code[entry..]
            .iter()
            .filter(|i| matches!(i, Instr::GetStructure(..)))
            .count();
        assert_eq!(has_second_get, 2);
    }

    #[test]
    fn singleton_head_vars_cost_nothing() {
        let cp = compiled("p(X, Y) :- q(X). q(1).");
        let entry = cp
            .predicate(cp.lookup(&("p".into(), 2)).unwrap())
            .entry
            .unwrap();
        // Y is a singleton: no get instruction for A2.
        let gets = cp.code[entry..]
            .iter()
            .take_while(|i| !matches!(i, Instr::Proceed | Instr::Execute(_)))
            .filter(|i| matches!(i, Instr::GetVariableY(..) | Instr::GetValueY(..)))
            .count();
        assert_eq!(gets, 1);
    }

    #[test]
    fn builtins_compile_to_call_builtin() {
        let cp = compiled("p(X, Y) :- Y is X + 1.");
        let entry = cp
            .predicate(cp.lookup(&("p".into(), 2)).unwrap())
            .entry
            .unwrap();
        assert!(cp.code[entry..]
            .iter()
            .any(|i| matches!(i, Instr::CallBuiltin(Builtin::Is, 2))));
    }

    #[test]
    fn redefining_builtin_fails() {
        let p = Program::parse("is(X, X).").unwrap();
        let lp = LoweredProgram::lower(&p).unwrap();
        assert!(compile(&lp).is_err());
    }
}
