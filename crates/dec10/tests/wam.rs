//! End-to-end tests of the DEC-10 baseline: Prolog semantics and the
//! properties the paper attributes to compiled code (indexing removes
//! nondeterminacy).

use dec10::{DecConfig, DecMachine};
use kl0::Program;
use psi_core::PsiError;

fn machine(src: &str) -> DecMachine {
    let program = Program::parse(src).expect("parse");
    DecMachine::load(&program, DecConfig::dec2060()).expect("load")
}

fn first(src: &str, goal: &str) -> Option<String> {
    let mut m = machine(src);
    let sols = m.solve(goal, 1).expect("solve");
    sols.first().map(|s| s.to_string())
}

fn all(src: &str, goal: &str, max: usize) -> Vec<String> {
    let mut m = machine(src);
    m.solve(goal, max)
        .expect("solve")
        .into_iter()
        .map(|s| s.to_string())
        .collect()
}

const APPEND: &str = "
app([], L, L).
app([H|T], L, [H|R]) :- app(T, L, R).
";

#[test]
fn facts_and_unification() {
    assert_eq!(first("p(1).", "p(X)"), Some("X = 1".into()));
    assert_eq!(first("p(1).", "p(2)"), None);
    assert_eq!(
        first("p(f(g(1), h)).", "p(f(X, h))"),
        Some("X = g(1)".into())
    );
}

#[test]
fn append_both_directions() {
    assert_eq!(
        first(APPEND, "app([1,2], [3,4], X)"),
        Some("X = [1,2,3,4]".into())
    );
    assert_eq!(
        first(APPEND, "app(X, [3], [1,2,3])"),
        Some("X = [1,2]".into())
    );
    let splits = all(APPEND, "app(X, Y, [1,2])", 10);
    assert_eq!(
        splits,
        vec!["X = [], Y = [1,2]", "X = [1], Y = [2]", "X = [1,2], Y = []",]
    );
}

#[test]
fn indexing_removes_choice_points_on_bound_lists() {
    // The paper (§3.1): DEC wins on nreverse because "the compiler can
    // remove the nondeterminacy applying the close indexing method".
    let mut m = machine(APPEND);
    m.solve("app([1,2,3,4,5,6,7,8], [9], X)", 1).unwrap();
    assert_eq!(
        m.stats().choice_points,
        0,
        "first-argument indexing must make bound-list append deterministic"
    );
    // Unbound first argument does need choice points.
    let mut m2 = machine(APPEND);
    m2.solve("app(X, Y, [1,2])", 3).unwrap();
    assert!(m2.stats().choice_points > 0);
}

#[test]
fn naive_reverse() {
    let src = "
app([], L, L).
app([H|T], L, [H|R]) :- app(T, L, R).
nrev([], []).
nrev([H|T], R) :- nrev(T, RT), app(RT, [H], R).
";
    assert_eq!(
        first(src, "nrev([1,2,3,4,5], X)"),
        Some("X = [5,4,3,2,1]".into())
    );
}

#[test]
fn arithmetic() {
    assert_eq!(first("", "X is 3 + 4 * 2"), Some("X = 11".into()));
    assert_eq!(first("", "X is 10 // 3"), Some("X = 3".into()));
    assert_eq!(first("", "X is 10 mod 3"), Some("X = 1".into()));
    assert_eq!(first("", "3 < 4"), Some("true".into()));
    assert_eq!(first("", "4 < 3"), None);
    assert_eq!(first("", "2 + 2 =:= 4"), Some("true".into()));
}

#[test]
fn fib_recursion() {
    let src = "
fib(0, 0).
fib(1, 1).
fib(N, F) :- N > 1, N1 is N - 1, N2 is N - 2, fib(N1, F1), fib(N2, F2),
             F is F1 + F2.
";
    assert_eq!(first(src, "fib(12, X)"), Some("X = 144".into()));
}

#[test]
fn cut_semantics() {
    let src = "
max(X, Y, X) :- X >= Y, !.
max(_, Y, Y).
member(X, [X|_]).
member(X, [_|T]) :- member(X, T).
once(X) :- member(X, [1,2,3]), !.
";
    assert_eq!(first(src, "max(3, 5, M)"), Some("M = 5".into()));
    assert_eq!(first(src, "max(5, 3, M)"), Some("M = 5".into()));
    assert_eq!(all(src, "once(X)", 10), vec!["X = 1"]);
}

#[test]
fn member_enumeration() {
    let src = "
member(X, [X|_]).
member(X, [_|T]) :- member(X, T).
";
    assert_eq!(
        all(src, "member(X, [a,b,c])", 10),
        vec!["X = a", "X = b", "X = c"]
    );
}

#[test]
fn control_constructs() {
    let src = "
classify(X, neg) :- (X < 0 -> true ; fail).
classify(X, pos) :- \\+ X < 0.
color(X) :- (X = red ; X = blue).
";
    assert_eq!(first(src, "classify(-3, C)"), Some("C = neg".into()));
    assert_eq!(first(src, "classify(3, C)"), Some("C = pos".into()));
    assert_eq!(all(src, "color(C)", 10), vec!["C = red", "C = blue"]);
}

#[test]
fn structure_building_and_matching() {
    let src = "
mk(0, leaf).
mk(N, node(L, N, R)) :- N > 0, N1 is N - 1, mk(N1, L), mk(N1, R).
sum(leaf, 0).
sum(node(L, V, R), S) :- sum(L, SL), sum(R, SR), S is SL + V + SR.
";
    assert_eq!(
        first(src, "mk(2, T), sum(T, S)"),
        Some("T = node(node(leaf,1,leaf),2,node(leaf,1,leaf)), S = 4".into())
    );
}

#[test]
fn builtins() {
    assert_eq!(
        first("", "functor(f(a,b,c), N, A)"),
        Some("N = f, A = 3".into())
    );
    assert_eq!(first("", "arg(2, f(a,b), X)"), Some("X = b".into()));
    assert_eq!(first("", "f(a) \\== f(b)"), Some("true".into()));
    assert_eq!(first("", "f(a) \\= f(b)"), Some("true".into()));
    assert_eq!(first("", "X \\= X"), None);
    assert_eq!(
        first("", "atom(foo), integer(3), atomic([])"),
        Some("true".into())
    );
}

#[test]
fn write_output() {
    let mut m = machine("greet :- write(hello), nl, write([1,2]).");
    m.solve("greet", 1).unwrap();
    assert_eq!(m.output(), "hello\n[1,2]");
}

#[test]
fn undefined_predicate() {
    let mut m = machine("p :- q.");
    assert!(matches!(
        m.solve("p", 1),
        Err(PsiError::UndefinedPredicate { .. })
    ));
}

#[test]
fn instruction_budget() {
    let program = Program::parse("loop :- loop.").unwrap();
    let mut config = DecConfig::dec2060();
    config.instruction_budget = 10_000;
    let mut m = DecMachine::load(&program, config).unwrap();
    assert!(matches!(
        m.solve("loop", 1),
        Err(PsiError::ResourceExhausted { .. })
    ));
}

#[test]
fn queens_six() {
    let src = "
queens(N, Qs) :- range(1, N, Ns), place(Ns, [], Qs).
range(L, H, [L|T]) :- L < H, L1 is L + 1, range(L1, H, T).
range(H, H, [H]).
place([], Qs, Qs).
place(Un, Placed, Qs) :-
    select(Q, Un, Rest), safe(Q, 1, Placed), place(Rest, [Q|Placed], Qs).
select(X, [X|T], T).
select(X, [H|T], [H|R]) :- select(X, T, R).
safe(_, _, []).
safe(Q, D, [P|Ps]) :-
    Q =\\= P + D, Q =\\= P - D, D1 is D + 1, safe(Q, D1, Ps).
";
    let sols = all(src, "queens(6, Qs)", 1);
    assert_eq!(sols.len(), 1);
}

#[test]
fn stats_accumulate() {
    let mut m = machine(APPEND);
    m.solve("app([1,2,3], [4], X)", 1).unwrap();
    let s = m.stats();
    assert!(s.instructions > 10);
    assert!(s.cycles > s.instructions, "weights are > 1");
    assert_eq!(
        s.calls, 4,
        "one inference per list element plus the base case"
    );
    assert!(m.time_ns() > 0);
}

#[test]
fn trail_restores_on_backtracking() {
    let src = "
p(X, Y) :- q(X), r(X, Y).
q(1).
q(2).
r(2, found).
";
    assert_eq!(first(src, "p(X, Y)"), Some("X = 2, Y = found".into()));
}

#[test]
fn deep_structures_roundtrip() {
    let src = "wrap(0, base). wrap(N, w(I)) :- N > 0, N1 is N - 1, wrap(N1, I).";
    assert_eq!(
        first(src, "wrap(4, T)"),
        Some("T = w(w(w(w(base))))".into())
    );
}

#[test]
fn multiple_queries() {
    let mut m = machine(APPEND);
    assert_eq!(
        m.solve("app([1], [2], X)", 1).unwrap()[0].to_string(),
        "X = [1,2]"
    );
    assert_eq!(
        m.solve("app([9], [8], Y)", 1).unwrap()[0].to_string(),
        "Y = [9,8]"
    );
}

#[test]
fn constant_indexing_dispatches() {
    // Distinct constants in the first argument: indexing narrows the
    // candidate set (only the const bucket is chained, but the head
    // unification filters; a fully bound call must not leave a wrong
    // answer).
    let src = "
value(a, 1).
value(b, 2).
value(c, 3).
";
    assert_eq!(first(src, "value(b, X)"), Some("X = 2".into()));
    assert_eq!(first(src, "value(z, X)"), None);
    let sols = all(src, "value(K, V)", 10);
    assert_eq!(sols.len(), 3);
}
