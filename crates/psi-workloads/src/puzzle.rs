//! 8-PUZZLE (§3.2, Table 2 row 2): a search problem that "contains
//! much backtracking".
//!
//! Iterative-deepening depth-first search over the 3×3 sliding
//! puzzle, with move generation by list surgery. No visited set —
//! exactly the naive search shape that makes the trail and
//! choice-point machinery work hard (Table 2 shows 8-PUZZLE with the
//! highest trail share, 7.5%).

use crate::Workload;

fn puzzle_source() -> String {
    String::from(
        "
% States are 9-element lists, 0 is the blank.
% swap(I, J, State0, State) swaps positions I < J.
swap(0, 1, [A,B|T], [B,A|T]).
swap(0, 3, [A,B,C,D|T], [D,B,C,A|T]).
swap(1, 2, [A,B,C|T], [A,C,B|T]).
swap(1, 4, [A,B,C,D,E|T], [A,E,C,D,B|T]).
swap(2, 5, [A,B,C,D,E,F|T], [A,B,F,D,E,C|T]).
swap(3, 4, [A,B,C,D,E|T], [A,B,C,E,D|T]).
swap(3, 6, [A,B,C,D,E,F,G|T], [A,B,C,G,E,F,D|T]).
swap(4, 5, [A,B,C,D,E,F|T], [A,B,C,D,F,E|T]).
swap(4, 7, [A,B,C,D,E,F,G,H|T], [A,B,C,D,H,F,G,E|T]).
swap(5, 8, [A,B,C,D,E,F,G,H,I], [A,B,C,D,E,I,G,H,F]).
swap(6, 7, [A,B,C,D,E,F,G,H|T], [A,B,C,D,E,F,H,G|T]).
swap(7, 8, [A,B,C,D,E,F,G,H,I], [A,B,C,D,E,F,G,I,H]).

% blank position
blank(S, P) :- blank_at(S, 0, P).
blank_at([0|_], P, P) :- !.
blank_at([_|T], I, P) :- I1 is I + 1, blank_at(T, I1, P).

% A move swaps the blank with a neighbour (either direction).
move(S0, S) :- blank(S0, B), adj(B, O), order2(B, O, I, J), swap(I, J, S0, S).
order2(B, O, B, O) :- B < O.
order2(B, O, O, B) :- O < B.
adj(0, 1). adj(0, 3). adj(1, 0). adj(1, 2). adj(1, 4).
adj(2, 1). adj(2, 5). adj(3, 0). adj(3, 4). adj(3, 6).
adj(4, 1). adj(4, 3). adj(4, 5). adj(4, 7).
adj(5, 2). adj(5, 4). adj(5, 8).
adj(6, 3). adj(6, 7). adj(7, 4). adj(7, 6). adj(7, 8).
adj(8, 5). adj(8, 7).

goal_state([1,2,3,4,5,6,7,8,0]).

% Depth-bounded DFS.
dfs(S, _, S, []) :- goal_state(S).
dfs(S0, D, G, [S1|Path]) :-
    D > 0,
    move(S0, S1),
    D1 is D - 1,
    dfs(S1, D1, G, Path).

% Iterative deepening.
iddfs(S, MaxD, Path) :- between(0, MaxD, D), dfs(S, D, _, Path).
between(L, _, L).
between(L, H, X) :- L < H, L1 is L + 1, between(L1, H, X).

solve_puzzle(S, Path) :- iddfs(S, 9, Path).
",
    )
}

/// The 8-puzzle workload: a start state the given number of moves
/// from the goal.
pub fn eight_puzzle(difficulty: u32) -> Workload {
    // States at increasing scrambles of the goal.
    let start = match difficulty {
        1 => "[1,2,3,4,5,6,7,0,8]", // 1 move
        2 => "[1,2,3,4,0,6,7,5,8]", // 2 moves
        3 => "[1,2,3,0,4,6,7,5,8]", // 3 moves
        4 => "[0,2,3,1,4,6,7,5,8]", // 4 moves
        5 => "[2,0,3,1,4,6,7,5,8]", // 5 moves
        6 => "[2,3,0,1,4,6,7,5,8]", // 6 moves
        _ => "[2,3,6,1,4,0,7,5,8]", // 7 moves
    };
    Workload::new(
        "8 puzzle",
        puzzle_source(),
        format!("solve_puzzle({start}, Path)"),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use kl0::Program;

    #[test]
    fn source_parses() {
        Program::parse(&puzzle_source()).unwrap();
        assert!(eight_puzzle(3).runs_on_dec());
    }
}
