//! Benchmarks (1)–(10) of Table 1: the first Prolog contest of Japan
//! set — "small-scale programs that contain frequent list
//! processing".

use crate::library::{int_list, iota, lcg_sequence};
use crate::Workload;

/// (1) `nreverse (30)` — naive reverse of an n-element list.
pub fn nreverse(n: i32) -> Workload {
    let source = "
app([], L, L).
app([H|T], L, [H|R]) :- app(T, L, R).
nrev([], []).
nrev([H|T], R) :- nrev(T, RT), app(RT, [H], R).
"
    .to_owned();
    Workload::new("nreverse", source, format!("nrev({}, R)", iota(n)))
}

/// (2) `quick sort (50)` — quicksort of n pseudo-random integers.
pub fn quick_sort(n: usize) -> Workload {
    let source = "
qsort([], []).
qsort([P|T], S) :-
    partition(T, P, Lo, Hi),
    qsort(Lo, SLo),
    qsort(Hi, SHi),
    app(SLo, [P|SHi], S).
partition([], _, [], []).
partition([X|T], P, [X|Lo], Hi) :- X =< P, partition(T, P, Lo, Hi).
partition([X|T], P, Lo, [X|Hi]) :- X > P, partition(T, P, Lo, Hi).
app([], L, L).
app([H|T], L, [H|R]) :- app(T, L, R).
"
    .to_owned();
    let data = int_list(&lcg_sequence(n, 1000));
    Workload::new("quick sort", source, format!("qsort({data}, S)"))
}

/// (3) `tree traversing` — build a complete binary tree and traverse
/// it in-order, collecting the labels.
pub fn tree_traversing(depth: i32) -> Workload {
    let source = "
mktree(0, _, leaf).
mktree(D, N, node(L, N, R)) :-
    D > 0, D1 is D - 1,
    NL is N * 2, NR is N * 2 + 1,
    mktree(D1, NL, L), mktree(D1, NR, R).
inorder(leaf, A, A).
inorder(node(L, N, R), A0, A) :-
    inorder(L, A0, A1),
    inorder(R, [N|A1], A).
traverse(D, Xs) :- mktree(D, 1, T), inorder(T, [], Xs).
"
    .to_owned();
    Workload::new("tree traversing", source, format!("traverse({depth}, Xs)"))
}

/// The mini-Lisp interpreter written in Prolog that benchmarks (4)–(6)
/// run. Lisp data is encoded as Prolog terms: `n(I)` numbers, `v(S)`
/// variable references, `c(H,T)`/`nil` conses, and application nodes.
const LISP: &str = "
evl(n(X), _, n(X)).
evl(v(S), Env, V) :- lkp(S, Env, V).
evl(nl, _, nl).
evl(add(A, B), E, n(V)) :- evl(A, E, n(X)), evl(B, E, n(Y)), V is X + Y.
evl(sub(A, B), E, n(V)) :- evl(A, E, n(X)), evl(B, E, n(Y)), V is X - Y.
evl(lt(A, B), E, R) :- evl(A, E, n(X)), evl(B, E, n(Y)),
    (X < Y -> R = tt ; R = ff).
evl(lte(A, B), E, R) :- evl(A, E, n(X)), evl(B, E, n(Y)),
    (X =< Y -> R = tt ; R = ff).
evl(ite(C, T, _), E, V) :- evl(C, E, tt), !, evl(T, E, V).
evl(ite(_, _, El), E, V) :- evl(El, E, V).
evl(cons(A, B), E, c(X, Y)) :- evl(A, E, X), evl(B, E, Y).
evl(car(A), E, X) :- evl(A, E, c(X, _)).
evl(cdr(A), E, Y) :- evl(A, E, c(_, Y)).
evl(isnl(A), E, R) :- evl(A, E, V), (V = nl -> R = tt ; R = ff).
evl(ap(F, Args), E, V) :-
    evlis(Args, E, Vs),
    def(F, Params, Body),
    bindargs(Params, Vs, NewE),
    evl(Body, NewE, V).

evlis([], _, []).
evlis([A|As], E, [V|Vs]) :- evl(A, E, V), evlis(As, E, Vs).

bindargs([], [], []).
bindargs([P|Ps], [V|Vs], [b(P, V)|E]) :- bindargs(Ps, Vs, E).

lkp(S, [b(S, V)|_], V) :- !.
lkp(S, [_|E], V) :- lkp(S, E, V).
";

/// (4) `lisp (tarai3)` — the tak/tarai function interpreted by the
/// mini-Lisp. `tarai(x, y, z)` with the classic recursion.
pub fn lisp_tarai(x: i32, y: i32, z: i32) -> Workload {
    let mut source = LISP.to_owned();
    source.push_str(
        "
def(tak, [x, y, z],
    ite(lt(v(y), v(x)),
        ap(tak, [ap(tak, [sub(v(x), n(1)), v(y), v(z)]),
                 ap(tak, [sub(v(y), n(1)), v(z), v(x)]),
                 ap(tak, [sub(v(z), n(1)), v(x), v(y)])]),
        v(z))).
",
    );
    Workload::new(
        "lisp (tarai3)",
        source,
        format!("evl(ap(tak, [n({x}), n({y}), n({z})]), [], V)"),
    )
}

/// (5) `lisp (fib10)` — Fibonacci interpreted by the mini-Lisp.
pub fn lisp_fib(n: i32) -> Workload {
    let mut source = LISP.to_owned();
    source.push_str(
        "
def(fib, [n],
    ite(lte(v(n), n(1)),
        v(n),
        add(ap(fib, [sub(v(n), n(1))]),
            ap(fib, [sub(v(n), n(2))])))).
",
    );
    Workload::new(
        "lisp (fib10)",
        source,
        format!("evl(ap(fib, [n({n})]), [], V)"),
    )
}

/// (6) `lisp (nreverse)` — naive reverse interpreted by the
/// mini-Lisp, on an n-element list.
pub fn lisp_nreverse(n: i32) -> Workload {
    let mut source = LISP.to_owned();
    source.push_str(
        "
def(apnd, [a, b],
    ite(isnl(v(a)),
        v(b),
        cons(car(v(a)), ap(apnd, [cdr(v(a)), v(b)])))).
def(nrev, [l],
    ite(isnl(v(l)),
        nl,
        ap(apnd, [ap(nrev, [cdr(v(l))]), cons(car(v(l)), nl)]))).
mklisp(0, nl).
mklisp(N, cons(n(N), T)) :- N > 0, N1 is N - 1, mklisp(N1, T).
run_lnrev(N, V) :- mklisp(N, L), evl(ap(nrev, [L]), [], V).
",
    );
    Workload::new("lisp (nreverse)", source, format!("run_lnrev({n}, V)"))
}

const QUEENS: &str = "
queens(N, Qs) :- range(1, N, Ns), place(Ns, [], Qs).
range(L, H, [L|T]) :- L < H, L1 is L + 1, range(L1, H, T).
range(H, H, [H]).
place([], Qs, Qs).
place(Un, Placed, Qs) :-
    sel(Q, Un, Rest), safe(Q, 1, Placed), place(Rest, [Q|Placed], Qs).
sel(X, [X|T], T).
sel(X, [H|T], [H|R]) :- sel(X, T, R).
safe(_, _, []).
safe(Q, D, [P|Ps]) :-
    Q =\\= P + D, Q =\\= P - D, D1 is D + 1, safe(Q, D1, Ps).
";

/// (7) `8 queens (1)` — first solution.
pub fn queens_first(n: i32) -> Workload {
    Workload::new(
        "8 queens (1)",
        QUEENS.to_owned(),
        format!("queens({n}, Qs)"),
    )
}

/// (8) `8 queens (all)` — all solutions (92 for n = 8).
pub fn queens_all(n: i32) -> Workload {
    Workload::new(
        "8 queens (all)",
        QUEENS.to_owned(),
        format!("queens({n}, Qs)"),
    )
    .exhaustive()
}

/// (9) `reverse function` — accumulator ("function-style") reverse,
/// applied repeatedly so the run is comparable to (1).
pub fn reverse_function(n: i32, rounds: i32) -> Workload {
    let source = "
rev(L, R) :- rev_acc(L, [], R).
rev_acc([], A, A).
rev_acc([H|T], A, R) :- rev_acc(T, [H|A], R).
times(0, _).
times(N, L) :- N > 0, rev(L, R), rev(R, _), N1 is N - 1, times(N1, L).
"
    .to_owned();
    Workload::new(
        "reverse function",
        source,
        format!("times({rounds}, {})", iota(n)),
    )
}

/// (10) `slow reverse (6)` — reverse by repeatedly extracting the
/// last element (quadratic, choice-point heavy).
pub fn slow_reverse(n: i32) -> Workload {
    let source = "
last_of([X], X, []).
last_of([H|T], X, [H|R]) :- last_of(T, X, R).
srev([], []).
srev(L, [X|R]) :- last_of(L, X, Rest), srev(Rest, R).
"
    .to_owned();
    Workload::new("slow reverse", source, format!("srev({}, R)", iota(n)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use kl0::Program;

    #[test]
    fn all_contest_sources_parse() {
        for w in [
            nreverse(5),
            quick_sort(8),
            tree_traversing(3),
            lisp_tarai(4, 2, 0),
            lisp_fib(6),
            lisp_nreverse(5),
            queens_first(4),
            queens_all(4),
            reverse_function(5, 2),
            slow_reverse(4),
        ] {
            Program::parse(&w.source).unwrap_or_else(|e| panic!("{}: {e}", w.name));
            assert!(w.runs_on_dec(), "{} must run on both engines", w.name);
        }
    }
}
