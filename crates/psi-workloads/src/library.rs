//! Shared KL0 library predicates used by several workloads.

/// List utilities: append, member, select, length, range.
pub const LISTS: &str = "
append([], L, L).
append([H|T], L, [H|R]) :- append(T, L, R).

member(X, [X|_]).
member(X, [_|T]) :- member(X, T).

memberchk(X, L) :- member(X, L), !.

select(X, [X|T], T).
select(X, [H|T], [H|R]) :- select(X, T, R).

len([], 0).
len([_|T], N) :- len(T, N1), N is N1 + 1.

range(L, H, []) :- L > H.
range(L, H, [L|T]) :- L =< H, L1 is L + 1, range(L1, H, T).

nth0(0, [X|_], X) :- !.
nth0(N, [_|T], X) :- N > 0, N1 is N - 1, nth0(N1, T, X).

rev_acc([], A, A).
rev_acc([H|T], A, R) :- rev_acc(T, [H|A], R).
";

/// Builds the textual representation of a Prolog integer list.
pub fn int_list(items: &[i32]) -> String {
    let body: Vec<String> = items.iter().map(|i| i.to_string()).collect();
    format!("[{}]", body.join(","))
}

/// Builds `[1, 2, .., n]`.
pub fn iota(n: i32) -> String {
    int_list(&(1..=n).collect::<Vec<_>>())
}

/// A deterministic pseudo-random permutation-ish sequence (linear
/// congruential, fixed seed) so every run and both engines see the
/// same input data.
pub fn lcg_sequence(n: usize, modulus: i32) -> Vec<i32> {
    let mut x: i64 = 12345;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        x = (x * 1103515245 + 12345) % (1 << 31);
        out.push((x % modulus as i64) as i32);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use kl0::Program;

    #[test]
    fn library_parses() {
        let p = Program::parse(LISTS).unwrap();
        assert!(p.clause_count() >= 12);
    }

    #[test]
    fn int_list_format() {
        assert_eq!(int_list(&[1, 2, 3]), "[1,2,3]");
        assert_eq!(int_list(&[]), "[]");
        assert_eq!(iota(3), "[1,2,3]");
    }

    #[test]
    fn lcg_is_deterministic() {
        assert_eq!(lcg_sequence(5, 100), lcg_sequence(5, 100));
        assert!(lcg_sequence(50, 100).iter().all(|&x| (0..100).contains(&x)));
    }
}
