//! Seeded workload-corpus generator.
//!
//! The 19 Table 1 rows are a fixed scenario set; this module grows
//! the suite to arbitrarily many *generated* scenarios. A small
//! deterministic xorshift64* PRNG (the same discipline as
//! `tests/properties.rs` — no external crates, every program
//! replayable from its seed) drives a handful of parameterized
//! program families:
//!
//! * [`fact_db`] — a database of K keyed facts plus a conjunctive
//!   lookup/arithmetic query mix,
//! * [`chain`] — a deep arithmetic recursion chain,
//! * [`disjunction`] — one predicate whose body is a wide `;` chain
//!   (lowered to aux predicates, enumerated exhaustively),
//! * [`churn`] — an `assert`/`retract` churn loop that must leave the
//!   dynamic database empty,
//! * [`fill`] — an `assert`-or-`asserta` fill loop whose enumeration
//!   order proves clause ordering,
//! * [`negation`] — negation-as-failure over a generated fact set,
//! * [`arith`] — random expression trees over the full evaluable
//!   operator set.
//!
//! Each generated program carries an *expected-solution oracle*
//! computed host-side, so a corpus run verifies behavior, not just
//! liveness. Programs are plain [`Workload`]s and run under
//! [`crate::runner::run_suite_governed`] with per-row fault
//! isolation, or on a bare machine:
//!
//! ```
//! use psi_workloads::corpus;
//!
//! let p = corpus::arith(7, 3);
//! let program = kl0::Program::parse(&p.workload.source)?;
//! let mut m = psi_machine::Machine::load(&program, psi_machine::MachineConfig::psi())?;
//! let sols: Vec<String> = m
//!     .solve(&p.workload.goal, p.workload.max_solutions)?
//!     .iter()
//!     .map(|s| s.to_string())
//!     .collect();
//! assert_eq!(sols, p.expected);
//! # Ok::<(), psi_core::PsiError>(())
//! ```

use crate::Workload;

/// xorshift64* — tiny, deterministic, good enough for program
/// generation (same generator as `tests/properties.rs`).
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Rng {
        Rng(seed.wrapping_mul(2685821657736338717).max(1))
    }

    fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(2685821657736338717)
    }

    /// Uniform value in `lo..hi`.
    fn range_i32(&mut self, lo: i32, hi: i32) -> i32 {
        let span = (hi - lo) as u64;
        lo + (self.next_u64() % span) as i32
    }

    fn range_usize(&mut self, lo: usize, hi: usize) -> usize {
        lo + (self.next_u64() % (hi - lo) as u64) as usize
    }
}

/// One generated corpus scenario: a runnable [`Workload`] plus the
/// family it came from, the seed that replays it, and the exact
/// solution strings the machine must produce.
#[derive(Debug, Clone)]
pub struct CorpusProgram {
    /// The runnable program/goal pair.
    pub workload: Workload,
    /// Generator family name (`"fact_db"`, `"chain"`, ...).
    pub family: &'static str,
    /// The per-program seed (replay with the family constructor).
    pub seed: u64,
    /// Expected solutions, rendered exactly as
    /// [`psi_machine::Solution`] renders them, in order.
    pub expected: Vec<String>,
}

/// Parameters for [`generate`]: the master seed, how many programs,
/// and the size caps that keep a quick run quick.
#[derive(Debug, Clone)]
pub struct CorpusSpec {
    /// Master seed; per-program seeds derive from it.
    pub seed: u64,
    /// Number of programs to generate (round-robin over families).
    pub count: usize,
    /// Cap on fact-database size K.
    pub max_facts: usize,
    /// Cap on recursion/churn depth.
    pub max_depth: usize,
}

impl CorpusSpec {
    /// A full-size spec: K ≤ 40, depth ≤ 120.
    pub fn new(seed: u64, count: usize) -> CorpusSpec {
        CorpusSpec {
            seed,
            count,
            max_facts: 40,
            max_depth: 120,
        }
    }

    /// A CI-friendly spec with small caps (K ≤ 12, depth ≤ 30).
    pub fn quick(seed: u64, count: usize) -> CorpusSpec {
        CorpusSpec {
            seed,
            count,
            max_facts: 12,
            max_depth: 30,
        }
    }
}

/// Generates `spec.count` programs, round-robin over the families,
/// each from a seed derived deterministically from `spec.seed`.
///
/// ```
/// use psi_workloads::corpus::{generate, CorpusSpec};
///
/// let a = generate(&CorpusSpec::quick(42, 14));
/// let b = generate(&CorpusSpec::quick(42, 14));
/// assert_eq!(a.len(), 14);
/// // Same spec, same corpus — bit-identical sources and oracles.
/// for (x, y) in a.iter().zip(&b) {
///     assert_eq!(x.workload.source, y.workload.source);
///     assert_eq!(x.expected, y.expected);
/// }
/// ```
pub fn generate(spec: &CorpusSpec) -> Vec<CorpusProgram> {
    (0..spec.count)
        .map(|i| {
            let seed = spec
                .seed
                .wrapping_add((i as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15));
            let mut rng = Rng::new(seed);
            match i % 7 {
                0 => fact_db(seed, 2 + rng.range_usize(0, spec.max_facts.max(3) - 2)),
                1 => chain(seed, 1 + rng.range_usize(0, spec.max_depth.max(2) - 1)),
                2 => disjunction(seed, 2 + rng.range_usize(0, 30)),
                3 => churn(seed, 1 + rng.range_usize(0, spec.max_depth.max(2) - 1)),
                4 => fill(
                    seed,
                    1 + rng.range_usize(0, spec.max_facts.max(2) - 1),
                    rng.next_u64().is_multiple_of(2),
                ),
                5 => negation(seed, 2 + rng.range_usize(0, spec.max_facts.max(3) - 2)),
                _ => arith(seed, 1 + rng.range_usize(0, 4)),
            }
        })
        .collect()
}

/// A database of `k` uniquely keyed facts `item(Key, Value)` plus a
/// query mix: two lookups and an arithmetic combination of the
/// looked-up values.
///
/// ```
/// let p = psi_workloads::corpus::fact_db(3, 8);
/// assert_eq!(p.family, "fact_db");
/// assert_eq!(p.expected.len(), 1);
/// ```
pub fn fact_db(seed: u64, k: usize) -> CorpusProgram {
    let mut rng = Rng::new(seed);
    let k = k.max(2);
    let values: Vec<i32> = (0..k).map(|_| rng.range_i32(-50, 50)).collect();
    let mut source = String::new();
    for (key, v) in values.iter().enumerate() {
        source.push_str(&format!("item(k{key}, {v}).\n"));
    }
    let a = rng.range_usize(0, k);
    let b = rng.range_usize(0, k);
    let goal = format!("item(k{a}, V1), item(k{b}, V2), V3 is V1 + V2");
    let expected = vec![format!(
        "V1 = {}, V2 = {}, V3 = {}",
        values[a],
        values[b],
        values[a].wrapping_add(values[b])
    )];
    CorpusProgram {
        workload: Workload::new(&format!("corpus/fact_db/{seed:x}"), source, goal),
        family: "fact_db",
        seed,
        expected,
    }
}

/// A recursion chain `chain(N) :- N > 0, M is N - 1, chain(M).`
/// driven to depth `depth`.
///
/// ```
/// let p = psi_workloads::corpus::chain(5, 50);
/// assert_eq!(p.expected, vec!["true".to_string()]);
/// ```
pub fn chain(seed: u64, depth: usize) -> CorpusProgram {
    let source = "chain(0).\nchain(N) :- N > 0, M is N - 1, chain(M).\n".to_owned();
    let goal = format!("chain({depth})");
    CorpusProgram {
        workload: Workload::new(&format!("corpus/chain/{seed:x}"), source, goal),
        family: "chain",
        seed,
        expected: vec!["true".to_owned()],
    }
}

/// One predicate whose body is a `width`-wide disjunction, enumerated
/// exhaustively; the oracle is the disjunct values in source order
/// (duplicates included — `;` does not deduplicate).
///
/// ```
/// let p = psi_workloads::corpus::disjunction(11, 6);
/// assert_eq!(p.expected.len(), 6);
/// ```
pub fn disjunction(seed: u64, width: usize) -> CorpusProgram {
    let mut rng = Rng::new(seed);
    let width = width.clamp(2, 48);
    let values: Vec<i32> = (0..width).map(|_| rng.range_i32(0, 100)).collect();
    let body = values
        .iter()
        .map(|v| format!("X = {v}"))
        .collect::<Vec<_>>()
        .join(" ; ");
    let source = format!("pick(X) :- {body}.\n");
    let expected = values.iter().map(|v| format!("X = {v}")).collect();
    CorpusProgram {
        workload: Workload::new(
            &format!("corpus/disjunction/{seed:x}"),
            source,
            "pick(X)".into(),
        )
        .exhaustive(),
        family: "disjunction",
        seed,
        expected,
    }
}

/// An `assert`/`retract` churn loop of `n` rounds; afterwards the
/// dynamic predicate must be empty (verified by negation-as-failure
/// in the goal itself).
///
/// ```
/// let p = psi_workloads::corpus::churn(9, 12);
/// assert_eq!(p.expected, vec!["true".to_string()]);
/// ```
pub fn churn(seed: u64, n: usize) -> CorpusProgram {
    let n = n.max(1);
    let source = "churn(0).\nchurn(N) :- N > 0, assert(tmp(N)), retract(tmp(N)), \
                  M is N - 1, churn(M).\n"
        .to_owned();
    let goal = format!("churn({n}), \\+ tmp(_)");
    CorpusProgram {
        workload: Workload::new(&format!("corpus/churn/{seed:x}"), source, goal),
        family: "churn",
        seed,
        expected: vec!["true".to_owned()],
    }
}

/// An `assert` (append, `front == false`) or `asserta` (prepend,
/// `front == true`) fill loop of `n` facts, then an exhaustive
/// enumeration whose order is the oracle: the loop asserts `n` down
/// to `1`, so appending enumerates `n..1` and prepending `1..n`.
///
/// ```
/// let append = psi_workloads::corpus::fill(1, 3, false);
/// assert_eq!(append.expected, vec!["X = 3", "X = 2", "X = 1"]);
/// let prepend = psi_workloads::corpus::fill(1, 3, true);
/// assert_eq!(prepend.expected, vec!["X = 1", "X = 2", "X = 3"]);
/// ```
pub fn fill(seed: u64, n: usize, front: bool) -> CorpusProgram {
    let n = n.max(1);
    let op = if front { "asserta" } else { "assert" };
    let source = format!("fill(0).\nfill(N) :- N > 0, {op}(slot(N)), M is N - 1, fill(M).\n");
    let goal = format!("fill({n}), slot(X)");
    let order: Vec<usize> = if front {
        (1..=n).collect()
    } else {
        (1..=n).rev().collect()
    };
    let expected = order.iter().map(|i| format!("X = {i}")).collect();
    CorpusProgram {
        workload: Workload::new(&format!("corpus/fill/{seed:x}"), source, goal).exhaustive(),
        family: "fill",
        seed,
        expected,
    }
}

/// A fact set over `0..m` with roughly half the keys present; the
/// goal checks one present key positively and one absent key through
/// `\+`.
///
/// ```
/// let p = psi_workloads::corpus::negation(13, 9);
/// assert_eq!(p.expected, vec!["true".to_string()]);
/// ```
pub fn negation(seed: u64, m: usize) -> CorpusProgram {
    let mut rng = Rng::new(seed);
    let m = m.max(2);
    // Alternate membership with a random phase so both a member and a
    // non-member always exist.
    let phase = rng.next_u64() % 2;
    let members: Vec<usize> = (0..m).filter(|i| (*i as u64) % 2 == phase).collect();
    let absent: Vec<usize> = (0..m).filter(|i| (*i as u64) % 2 != phase).collect();
    let mut source = String::new();
    for i in &members {
        source.push_str(&format!("n({i}).\n"));
    }
    let hit = members[rng.range_usize(0, members.len())];
    let miss = absent[rng.range_usize(0, absent.len())];
    let goal = format!("n({hit}), \\+ n({miss})");
    CorpusProgram {
        workload: Workload::new(&format!("corpus/negation/{seed:x}"), source, goal),
        family: "negation",
        seed,
        expected: vec!["true".to_owned()],
    }
}

/// A random expression tree of the given depth over the evaluable
/// operators, host-evaluated with the machine's exact wrapping
/// semantics as the oracle.
///
/// ```
/// let p = psi_workloads::corpus::arith(21, 3);
/// assert!(p.expected[0].starts_with("X = "));
/// ```
pub fn arith(seed: u64, depth: usize) -> CorpusProgram {
    let mut rng = Rng::new(seed);
    let (text, value) = arith_expr(&mut rng, depth);
    CorpusProgram {
        workload: Workload::new(
            &format!("corpus/arith/{seed:x}"),
            "seed(0).\n".to_owned(),
            format!("X is {text}"),
        ),
        family: "arith",
        seed,
        expected: vec![format!("X = {value}")],
    }
}

/// Builds one random expression node, returning its KL0 text and its
/// value under the machine's evaluation rules (`eval_arith`):
/// wrapping add/sub/mul/neg, truncating `/` and `//`, euclidean
/// `mod`, truncating `rem`, masked shifts.
fn arith_expr(rng: &mut Rng, depth: usize) -> (String, i32) {
    if depth == 0 {
        let v = rng.range_i32(-99, 100);
        // Parenthesize negatives so they can sit inside any operator.
        return (
            if v < 0 {
                format!("({v})")
            } else {
                v.to_string()
            },
            v,
        );
    }
    let (lt, lv) = arith_expr(rng, depth - 1);
    match rng.range_usize(0, 12) {
        0 => (format!("(- {lt})"), lv.wrapping_neg()),
        1 => (format!("abs({lt})"), lv.wrapping_abs()),
        op => {
            let (rt, rv) = arith_expr(rng, depth - 1);
            match op {
                2 => (format!("({lt} + {rt})"), lv.wrapping_add(rv)),
                3 => (format!("({lt} - {rt})"), lv.wrapping_sub(rv)),
                4 => (format!("({lt} * {rt})"), lv.wrapping_mul(rv)),
                5 => {
                    // Divisors are nonzero literals by construction.
                    let d = nonzero_literal(rng);
                    (format!("({lt} // {d})"), lv.wrapping_div(d))
                }
                6 => {
                    let d = nonzero_literal(rng);
                    (format!("({lt} mod {d})"), lv.rem_euclid(d))
                }
                7 => {
                    let d = nonzero_literal(rng);
                    (format!("({lt} rem {d})"), lv.wrapping_rem(d))
                }
                8 => {
                    let s = rng.range_i32(0, 8);
                    (format!("({lt} << {s})"), lv.wrapping_shl(s as u32))
                }
                9 => {
                    let s = rng.range_i32(0, 8);
                    (format!("({lt} >> {s})"), lv.wrapping_shr(s as u32))
                }
                10 => (format!("({lt} /\\ {rt})"), lv & rv),
                11 => (format!("({lt} \\/ {rt})"), lv | rv),
                _ => (format!("({lt} xor {rt})"), lv ^ rv),
            }
        }
    }
}

fn nonzero_literal(rng: &mut Rng) -> i32 {
    let d = rng.range_i32(1, 12);
    if rng.next_u64().is_multiple_of(2) {
        d
    } else {
        -d
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let a = generate(&CorpusSpec::new(7, 21));
        let b = generate(&CorpusSpec::new(7, 21));
        assert_eq!(a.len(), 21);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.workload.source, y.workload.source);
            assert_eq!(x.workload.goal, y.workload.goal);
            assert_eq!(x.expected, y.expected);
        }
        // A different seed produces a different corpus.
        let c = generate(&CorpusSpec::new(8, 21));
        assert!(a
            .iter()
            .zip(&c)
            .any(|(x, y)| x.workload.goal != y.workload.goal));
    }

    #[test]
    fn every_family_appears() {
        let corpus = generate(&CorpusSpec::quick(1, 14));
        let mut families: Vec<&str> = corpus.iter().map(|p| p.family).collect();
        families.sort_unstable();
        families.dedup();
        assert_eq!(
            families,
            vec![
                "arith",
                "chain",
                "churn",
                "disjunction",
                "fact_db",
                "fill",
                "negation"
            ]
        );
    }

    #[test]
    fn negative_arith_literals_parse() {
        // Regression guard for the parenthesized-negative encoding.
        for seed in 0..50 {
            let p = arith(seed, 4);
            kl0::parser::parse_term(&p.workload.goal.replace("X is ", "")).expect("parse");
        }
    }
}
