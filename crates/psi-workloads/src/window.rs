//! WINDOW (§3.2, §4): a slice of the PSI operating system's window
//! manager, written in the object-styled fashion of ESP (the PSI's
//! system description language).
//!
//! The paper's characterization: WINDOW "treats few unifications of
//! structure data and less backtracking... rarely uses the functions
//! of Prolog"; 82% of its calls are built-ins; it is the only program
//! using *heap vector* data; and WINDOW-2/3 "contained process
//! switching for I/O services several times", which lowers its cache
//! hit ratio (Table 5). This re-implementation has all four
//! properties: method dispatch across many small "class" predicates,
//! heavy arithmetic and vector built-ins, destructive heap-vector
//! screen updates, and cooperative background service processes.

use crate::Workload;

fn window_source() -> String {
    String::from(
        "
% ----------------------------------------------------------- screen
% The screen is a heap vector of W*H cells (§4.2 heap vector data).
mkscreen(W, H, S) :- N is W * H, vector(S, N).

pset(S, W, X, Y, V) :- I is Y * W + X, vset(S, I, V).
pget(S, W, X, Y, V) :- I is Y * W + X, vget(S, I, V).

% ------------------------------------------------- window 'objects'
% A window is a heap vector: [x, y, w, h, id].
mkwindow(Id, X, Y, W, H, Win) :-
    vector(Win, 5),
    vset(Win, 0, X), vset(Win, 1, Y),
    vset(Win, 2, W), vset(Win, 3, H),
    vset(Win, 4, Id).

% Method dispatch across class predicates: each message is its own
% small predicate, as ESP method calls across 'the class'.
send(move(DX, DY), Win) :- !, method_move(Win, DX, DY).
send(resize(W, H), Win) :- !, method_resize(Win, W, H).
send(draw(S, SW), Win) :- !, method_draw(Win, S, SW).
send(clear(S, SW), Win) :- !, method_clear(Win, S, SW).
send(raise, Win) :- method_raise(Win).

method_move(Win, DX, DY) :-
    vget(Win, 0, X), vget(Win, 1, Y),
    vget(Win, 2, W), vget(Win, 3, H),
    X1 is X + DX, Y1 is Y + DY,
    XMax is 16 - W, YMax is 12 - H,
    X2 is min(XMax, max(0, X1)), Y2 is min(YMax, max(0, Y1)),
    vset(Win, 0, X2), vset(Win, 1, Y2).

method_resize(Win, W, H) :-
    W1 is max(1, W), H1 is max(1, H),
    vset(Win, 2, W1), vset(Win, 3, H1).

method_raise(Win) :- vget(Win, 4, _).

% Fill the window rectangle into the screen vector.
method_draw(Win, S, SW) :-
    vget(Win, 0, X), vget(Win, 1, Y),
    vget(Win, 2, W), vget(Win, 3, H),
    vget(Win, 4, Id),
    Y2 is Y + H - 1,
    fill_rows(Y, Y2, X, W, Id, S, SW).

method_clear(Win, S, SW) :-
    vget(Win, 0, X), vget(Win, 1, Y),
    vget(Win, 2, W), vget(Win, 3, H),
    Y2 is Y + H - 1,
    fill_rows(Y, Y2, X, W, 0, S, SW).

fill_rows(Y, Y2, _, _, _, _, _) :- Y > Y2, !.
fill_rows(Y, Y2, X, W, V, S, SW) :-
    X2 is X + W - 1,
    fill_cols(X, X2, Y, V, S, SW),
    Y1 is Y + 1,
    fill_rows(Y1, Y2, X, W, V, S, SW).

fill_cols(X, X2, _, _, _, _) :- X > X2, !.
fill_cols(X, X2, Y, V, S, SW) :-
    XX is X mod SW,
    pset(S, SW, XX, Y, V),
    X1 is X + 1,
    fill_cols(X1, X2, Y, V, S, SW).

% ------------------------------------------------------ event loop
% A scripted event stream, dispatched window by window.
run_events(0, _, _, _, _) :- !.
run_events(N, Win1, Win2, S, SW) :-
    E is N mod 7,
    dispatch(E, Win1, Win2, S, SW),
    N1 is N - 1,
    run_events(N1, Win1, Win2, S, SW).

dispatch(0, W1, _, S, SW) :- !, send(draw(S, SW), W1).
dispatch(1, W1, _, _, _)  :- !, send(move(1, 1), W1).
dispatch(2, _, W2, S, SW) :- !, send(clear(S, SW), W2), send(draw(S, SW), W2).
dispatch(3, _, W2, _, _)  :- !, send(resize(4, 3), W2).
dispatch(4, W1, _, _, _)  :- !, send(raise, W1).
dispatch(5, _, W2, _, _)  :- !, send(move(2, 0), W2).
dispatch(6, W1, _, S, SW) :- send(clear(S, SW), W1).

% Variant with a cooperative yield every event, so I/O service
% processes run interleaved (WINDOW-2/3).
run_events_mp(0, _, _, _, _) :- !.
run_events_mp(N, Win1, Win2, S, SW) :-
    E is N mod 7,
    dispatch(E, Win1, Win2, S, SW),
    yield,
    N1 is N - 1,
    run_events_mp(N1, Win1, Win2, S, SW).

window_main(Events) :-
    mkscreen(16, 12, S),
    mkwindow(1, 1, 1, 6, 4, W1),
    mkwindow(2, 4, 3, 5, 5, W2),
    run_events(Events, W1, W2, S, 16).

window_main_mp(Events) :-
    mkscreen(16, 12, S),
    mkwindow(1, 1, 1, 6, 4, W1),
    mkwindow(2, 4, 3, 5, 5, W2),
    run_events_mp(Events, W1, W2, S, 16).

% ------------------------------------------- I/O service process
% A background process polling a device queue: pure built-in churn.
io_service(0) :- !.
io_service(N) :-
    vector(Buf, 8),
    fill_io(Buf, 7),
    yield,
    N1 is N - 1,
    io_service(N1).

fill_io(_, I) :- I < 0, !.
fill_io(Buf, I) :-
    V is I * 3 mod 8,
    vset(Buf, I, V),
    vget(Buf, I, _),
    I1 is I - 1,
    fill_io(Buf, I1).
",
    )
}

/// `window-n` (Tables 2–5 row 1–3): -1 is single-process; -2 and -3
/// add one and two background I/O service processes with cooperative
/// switching.
pub fn window(level: u32) -> Workload {
    let events = match level {
        1 => 40,
        2 => 40,
        _ => 60,
    };
    let mut w = if level == 1 {
        Workload::new(
            "window-1",
            window_source(),
            format!("window_main({events})"),
        )
    } else {
        let mut w = Workload::new(
            &format!("window-{level}"),
            window_source(),
            format!("window_main_mp({events})"),
        );
        w.background.push(format!("io_service({events})"));
        if level >= 3 {
            w.background.push(format!("io_service({events})"));
        }
        w
    };
    w.max_solutions = 1;
    w
}

#[cfg(test)]
mod tests {
    use super::*;
    use kl0::Program;

    #[test]
    fn source_parses() {
        Program::parse(&window_source()).unwrap();
    }

    #[test]
    fn window_is_psi_only() {
        assert!(!window(1).runs_on_dec(), "heap vectors are PSI-only");
        assert_eq!(window(2).background.len(), 1);
        assert_eq!(window(3).background.len(), 2);
    }
}
