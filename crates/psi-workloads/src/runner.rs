//! Engine glue: run any [`Workload`] on the PSI simulator or the
//! DEC-10 baseline and collect comparable results.

use crate::Workload;
use dec10::{DecConfig, DecMachine, DecStats};
use kl0::Program;
use psi_core::Result;
use psi_machine::{Machine, MachineConfig, MachineStats};

/// Result of a PSI run.
#[derive(Debug, Clone)]
pub struct PsiRun {
    /// Solutions rendered to text (engine-neutral comparison form).
    pub solutions: Vec<String>,
    /// Full machine statistics.
    pub stats: MachineStats,
}

/// Result of a DEC-10 baseline run.
#[derive(Debug, Clone)]
pub struct DecRun {
    /// Solutions rendered to text.
    pub solutions: Vec<String>,
    /// Instruction statistics.
    pub stats: DecStats,
    /// Simulated time in nanoseconds.
    pub time_ns: u64,
}

/// Runs a workload on the PSI simulator.
///
/// # Errors
///
/// Propagates parse and execution errors.
pub fn run_on_psi(w: &Workload, config: MachineConfig) -> Result<PsiRun> {
    let program = Program::parse(&w.source)?;
    let mut machine = Machine::load(&program, config)?;
    let solutions = if w.background.is_empty() {
        machine.solve(&w.goal, w.max_solutions)?
    } else {
        let bg: Vec<&str> = w.background.iter().map(String::as_str).collect();
        machine.run_session(&w.goal, &bg)?
    };
    Ok(PsiRun {
        solutions: solutions.iter().map(|s| s.to_string()).collect(),
        stats: machine.stats(),
    })
}

/// Runs a workload on the PSI simulator and returns the machine too
/// (for trace collection).
///
/// # Errors
///
/// Propagates parse and execution errors.
pub fn run_on_psi_machine(w: &Workload, config: MachineConfig) -> Result<(PsiRun, Machine)> {
    let program = Program::parse(&w.source)?;
    let mut machine = Machine::load(&program, config)?;
    let solutions = if w.background.is_empty() {
        machine.solve(&w.goal, w.max_solutions)?
    } else {
        let bg: Vec<&str> = w.background.iter().map(String::as_str).collect();
        machine.run_session(&w.goal, &bg)?
    };
    let run = PsiRun {
        solutions: solutions.iter().map(|s| s.to_string()).collect(),
        stats: machine.stats(),
    };
    Ok((run, machine))
}

/// Runs a workload on the DEC-10 baseline.
///
/// # Errors
///
/// Propagates parse and execution errors. Workloads using PSI-only
/// built-ins fail with an undefined-predicate error; check
/// [`Workload::runs_on_dec`] first.
pub fn run_on_dec(w: &Workload) -> Result<DecRun> {
    let program = Program::parse(&w.source)?;
    let mut machine = DecMachine::load(&program, DecConfig::dec2060())?;
    let solutions = machine.solve(&w.goal, w.max_solutions)?;
    Ok(DecRun {
        solutions: solutions.iter().map(|s| s.to_string()).collect(),
        stats: machine.stats(),
        time_ns: machine.time_ns(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::contest;

    #[test]
    fn both_engines_agree_on_nreverse() {
        let w = contest::nreverse(8);
        let psi = run_on_psi(&w, MachineConfig::psi()).unwrap();
        let dec = run_on_dec(&w).unwrap();
        assert_eq!(psi.solutions, dec.solutions);
        assert_eq!(psi.solutions[0], "R = [8,7,6,5,4,3,2,1]");
    }

    #[test]
    fn exhaustive_workloads_enumerate() {
        let w = contest::queens_all(5);
        let psi = run_on_psi(&w, MachineConfig::psi()).unwrap();
        let dec = run_on_dec(&w).unwrap();
        assert_eq!(psi.solutions.len(), 10, "5-queens has 10 solutions");
        assert_eq!(psi.solutions, dec.solutions);
    }
}
