//! Engine glue: run any [`Workload`] on the PSI simulator or the
//! DEC-10 baseline and collect comparable results.
//!
//! Beyond the one-shot runners this module provides the
//! fault-isolated suite layer: [`par_map`]/[`par_map_catch`] contain
//! worker panics per item, and [`run_suite_governed`] turns a whole
//! suite into a [`SuiteReport`] in which every workload lands in
//! exactly one [`Outcome`] — ok, resource-exhausted, timed out,
//! failed, or panicked — so one bad row can never poison the rest.

use crate::Workload;
use dec10::{DecConfig, DecMachine, DecStats};
use kl0::Program;
use psi_core::{Measurement, PsiError, Resource, Result};
use psi_machine::{Machine, MachineConfig, MachineStats};
use std::panic::{self, AssertUnwindSafe};
use std::time::Duration;

/// Result of a PSI run.
#[derive(Debug, Clone)]
pub struct PsiRun {
    /// Solutions rendered to text (engine-neutral comparison form).
    pub solutions: Vec<String>,
    /// Full machine statistics.
    pub stats: MachineStats,
}

/// Result of a DEC-10 baseline run.
#[derive(Debug, Clone)]
pub struct DecRun {
    /// Solutions rendered to text.
    pub solutions: Vec<String>,
    /// Instruction statistics.
    pub stats: DecStats,
    /// Simulated time in nanoseconds.
    pub time_ns: u64,
}

/// Runs a workload on the PSI simulator.
///
/// # Errors
///
/// Propagates parse and execution errors.
pub fn run_on_psi(w: &Workload, config: MachineConfig) -> Result<PsiRun> {
    let program = Program::parse(&w.source)?;
    let mut machine = Machine::load(&program, config)?;
    let solutions = if w.background.is_empty() {
        machine.solve(&w.goal, w.max_solutions)?
    } else {
        let bg: Vec<&str> = w.background.iter().map(String::as_str).collect();
        machine.run_session(&w.goal, &bg)?
    };
    Ok(PsiRun {
        solutions: solutions.iter().map(|s| s.to_string()).collect(),
        stats: machine.stats(),
    })
}

/// Runs a workload on the PSI simulator and returns the machine too
/// (for trace collection).
///
/// # Errors
///
/// Propagates parse and execution errors.
pub fn run_on_psi_machine(w: &Workload, config: MachineConfig) -> Result<(PsiRun, Machine)> {
    let program = Program::parse(&w.source)?;
    let mut machine = Machine::load(&program, config)?;
    let solutions = if w.background.is_empty() {
        machine.solve(&w.goal, w.max_solutions)?
    } else {
        let bg: Vec<&str> = w.background.iter().map(String::as_str).collect();
        machine.run_session(&w.goal, &bg)?
    };
    let run = PsiRun {
        solutions: solutions.iter().map(|s| s.to_string()).collect(),
        stats: machine.stats(),
    };
    Ok((run, machine))
}

/// Default worker count for [`run_suite_parallel`]: the machine's
/// available parallelism, or 1 if it cannot be determined.
pub fn default_parallelism() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// Renders a caught panic payload to text (the common `&str`/`String`
/// payloads verbatim, anything else as a placeholder).
fn panic_detail(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_owned()
    }
}

/// Applies `f` to every item on a pool of scoped worker threads and
/// returns the results **in input order** — the output is
/// deterministic regardless of scheduling. Work is handed out through
/// a shared atomic cursor, so long items do not serialize behind short
/// ones.
///
/// Edge cases are explicit: an empty slice returns an empty vector
/// without spawning anything, and `threads <= 1` maps the items
/// directly on the calling thread with none of the slot scaffolding.
///
/// # Panics
///
/// A panic in `f` is contained per item — every other item still
/// completes — and then re-raised from the calling thread with the
/// failing item's index and panic message. Use [`par_map_catch`] to
/// receive per-item errors instead.
pub fn par_map<T, U, F>(items: &[T], threads: usize, f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(usize, &T) -> U + Sync,
{
    par_map_catch(items, threads, f)
        .into_iter()
        .enumerate()
        .map(|(i, r)| r.unwrap_or_else(|msg| panic!("worker for item {i} panicked: {msg}")))
        .collect()
}

/// [`par_map`] with per-item panic containment: each result is `Ok`
/// with the mapped value or `Err` with the rendered panic message.
/// One panicking item never aborts the others — the suite layer's
/// fault isolation is built on this.
pub fn par_map_catch<T, U, F>(
    items: &[T],
    threads: usize,
    f: F,
) -> Vec<std::result::Result<U, String>>
where
    T: Sync,
    U: Send,
    F: Fn(usize, &T) -> U + Sync,
{
    use std::sync::atomic::{AtomicUsize, Ordering};
    let n = items.len();
    if n == 0 {
        return Vec::new();
    }
    // The closure's captured state survives an unwind only to be
    // reported, never reused for further mapping of the same item, so
    // the AssertUnwindSafe is sound for any `f` that is.
    let run_one =
        |i: usize| panic::catch_unwind(AssertUnwindSafe(|| f(i, &items[i]))).map_err(panic_detail);
    let threads = threads.clamp(1, n);
    if threads == 1 {
        return (0..n).map(run_one).collect();
    }
    let cursor = AtomicUsize::new(0);
    let mut slots: Vec<Option<std::result::Result<U, String>>> = (0..n).map(|_| None).collect();
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                scope.spawn(|| {
                    let mut done = Vec::new();
                    loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            return done;
                        }
                        done.push((i, run_one(i)));
                    }
                })
            })
            .collect();
        for handle in handles {
            // Workers catch panics per item, so a join failure can
            // only be a non-unwinding abort — nothing to contain.
            for (i, value) in handle.join().expect("worker panics are caught per item") {
                debug_assert!(slots[i].is_none(), "cursor produced index {i} twice");
                slots[i] = Some(value);
            }
        }
    });
    slots
        .into_iter()
        .map(|slot| slot.expect("every index computed"))
        .collect()
}

// ------------------------------------------------------------------
// governed suite execution
// ------------------------------------------------------------------

/// Isolation policy for [`run_suite_governed`]: worker count, an
/// optional per-workload wall-clock deadline (a cooperative watchdog
/// enforced by the machine's own resource governor), and a bounded
/// retry budget for transient outcomes (panics and timeouts — typed
/// engine errors are deterministic and never retried).
#[derive(Debug, Clone)]
pub struct SuiteOptions {
    /// Worker threads (1 = serial).
    pub threads: usize,
    /// Per-workload wall-clock deadline; tightens (never loosens) any
    /// deadline already present in the machine config.
    pub deadline: Option<Duration>,
    /// How many times a panicked or timed-out workload is retried
    /// before its outcome is recorded (0 = no retries).
    pub max_retries: u32,
}

impl Default for SuiteOptions {
    fn default() -> SuiteOptions {
        SuiteOptions {
            threads: default_parallelism(),
            deadline: None,
            max_retries: 0,
        }
    }
}

/// Terminal outcome of one workload in a governed suite run.
#[derive(Debug, Clone)]
pub enum Outcome {
    /// The workload completed; stats are bit-identical to a serial
    /// run (boxed: a run is large next to the error variants).
    Ok(Box<PsiRun>),
    /// A step/word budget ran out ([`PsiError::ResourceExhausted`],
    /// any resource except the wall clock).
    Exhausted {
        /// The exhaustion error, with limit and consumed counts.
        error: PsiError,
    },
    /// The per-workload deadline fired (wall-clock exhaustion).
    TimedOut {
        /// The effective deadline that fired.
        deadline: Duration,
        /// The underlying wall-clock exhaustion error.
        error: PsiError,
    },
    /// Any other engine error (syntax, undefined predicate, type
    /// error, ...).
    Failed {
        /// The engine error.
        error: PsiError,
    },
    /// The worker panicked; the panic was contained to this row.
    Panicked {
        /// Workload context plus the rendered panic payload.
        detail: String,
    },
}

impl Outcome {
    /// Short lowercase label for summaries.
    pub fn label(&self) -> &'static str {
        match self {
            Outcome::Ok(_) => "ok",
            Outcome::Exhausted { .. } => "exhausted",
            Outcome::TimedOut { .. } => "timed out",
            Outcome::Failed { .. } => "failed",
            Outcome::Panicked { .. } => "panicked",
        }
    }
}

/// One row of a [`SuiteReport`].
#[derive(Debug, Clone)]
pub struct WorkloadReport {
    /// Position in the input suite.
    pub index: usize,
    /// Workload name.
    pub name: String,
    /// The driving goal.
    pub goal: String,
    /// Attempts taken (1 unless retries were configured and used).
    pub attempts: u32,
    /// How the workload ended.
    pub outcome: Outcome,
}

impl WorkloadReport {
    /// The successful run, if the workload completed.
    pub fn run(&self) -> Option<&PsiRun> {
        match &self.outcome {
            Outcome::Ok(run) => Some(run.as_ref()),
            _ => None,
        }
    }

    /// One-line description of a non-ok outcome (the successful case
    /// describes itself through the run's stats).
    pub fn describe(&self) -> String {
        match &self.outcome {
            Outcome::Ok(run) => format!("ok ({} solutions)", run.solutions.len()),
            Outcome::Exhausted { error } | Outcome::Failed { error } => error.to_string(),
            Outcome::TimedOut { deadline, error } => {
                format!("deadline {deadline:?} exceeded: {error}")
            }
            Outcome::Panicked { detail } => format!("panicked: {detail}"),
        }
    }
}

/// Fault-isolated result of a whole suite: one [`WorkloadReport`] per
/// input workload, in input order, each with its own terminal
/// [`Outcome`]. Consumers (the table/figure regenerators) render the
/// ok rows normally and annotate the rest, so a single bad workload
/// degrades one row instead of the whole report.
#[derive(Debug, Clone)]
pub struct SuiteReport {
    /// Per-workload reports, ordered by input index.
    pub rows: Vec<WorkloadReport>,
}

impl SuiteReport {
    fn count(&self, label: &str) -> usize {
        self.rows
            .iter()
            .filter(|r| r.outcome.label() == label)
            .count()
    }

    /// Workloads that completed.
    pub fn ok_count(&self) -> usize {
        self.count("ok")
    }

    /// Workloads that ran out of a step/word budget.
    pub fn exhausted_count(&self) -> usize {
        self.count("exhausted")
    }

    /// Workloads that hit the per-workload deadline.
    pub fn timed_out_count(&self) -> usize {
        self.count("timed out")
    }

    /// Workloads that failed with any other engine error.
    pub fn failed_count(&self) -> usize {
        self.count("failed")
    }

    /// Workloads whose worker panicked.
    pub fn panicked_count(&self) -> usize {
        self.count("panicked")
    }

    /// Did every workload complete?
    pub fn all_ok(&self) -> bool {
        self.ok_count() == self.rows.len()
    }

    /// One-line summary, e.g. `19 ok, 0 exhausted, 0 timed out, 0
    /// failed, 0 panicked`.
    pub fn summary(&self) -> String {
        format!(
            "{} ok, {} exhausted, {} timed out, {} failed, {} panicked",
            self.ok_count(),
            self.exhausted_count(),
            self.timed_out_count(),
            self.failed_count(),
            self.panicked_count(),
        )
    }

    /// The suite outcomes as an observability snapshot: one
    /// [`psi_obs::Counter`] per [`Outcome`] class, plus the retries
    /// spent on transient outcomes. Mergeable with machine snapshots
    /// through the shared counter index space.
    pub fn metrics(&self) -> psi_obs::MetricsSnapshot {
        use psi_obs::Counter;
        let mut reg = psi_obs::MetricsRegistry::new();
        reg.add(Counter::SuiteOk, self.ok_count() as u64);
        reg.add(Counter::SuiteExhausted, self.exhausted_count() as u64);
        reg.add(Counter::SuiteTimedOut, self.timed_out_count() as u64);
        reg.add(Counter::SuiteFailed, self.failed_count() as u64);
        reg.add(Counter::SuitePanicked, self.panicked_count() as u64);
        let retries: u64 = self
            .rows
            .iter()
            .map(|r| r.attempts.saturating_sub(1) as u64)
            .sum();
        reg.add(Counter::SuiteRetries, retries);
        reg.snapshot()
    }
}

/// Runs a suite on the PSI simulator under the given isolation policy
/// and reports every workload's outcome. Panics are contained per
/// row, budgets and deadlines come back as typed outcomes, and the
/// ok rows' stats are bit-identical to a serial [`run_on_psi`] run.
pub fn run_suite_governed(
    workloads: &[Workload],
    config: &MachineConfig,
    options: &SuiteOptions,
) -> SuiteReport {
    run_suite_governed_with_runner(workloads, config, options, run_on_psi)
}

/// [`run_suite_governed`] with an injectable runner — the containment
/// layer itself is workload-agnostic, which the fault-injection tests
/// use to exercise panic and timeout paths deterministically.
pub fn run_suite_governed_with_runner<R>(
    workloads: &[Workload],
    config: &MachineConfig,
    options: &SuiteOptions,
    runner: R,
) -> SuiteReport
where
    R: Fn(&Workload, MachineConfig) -> Result<PsiRun> + Sync,
{
    let mut run_config = config.clone();
    if let Some(d) = options.deadline {
        run_config.limits.deadline = Some(match run_config.limits.deadline {
            Some(existing) => existing.min(d),
            None => d,
        });
    }
    let effective_deadline = run_config.limits.deadline;
    let attempts_allowed = options.max_retries.saturating_add(1);
    let rows = par_map(workloads, options.threads, |index, w| {
        let mut attempts = 0u32;
        let outcome = loop {
            attempts += 1;
            let result = panic::catch_unwind(AssertUnwindSafe(|| runner(w, run_config.clone())));
            let outcome = match result {
                Ok(Ok(run)) => Outcome::Ok(Box::new(run)),
                Ok(Err(error)) => match &error {
                    PsiError::ResourceExhausted {
                        resource: Resource::WallClockMs,
                        ..
                    } => Outcome::TimedOut {
                        deadline: effective_deadline.unwrap_or_default(),
                        error,
                    },
                    PsiError::ResourceExhausted { .. } => Outcome::Exhausted { error },
                    _ => Outcome::Failed { error },
                },
                Err(payload) => Outcome::Panicked {
                    detail: format!(
                        "workload '{}' (goal {}): {}",
                        w.name,
                        w.goal,
                        panic_detail(payload)
                    ),
                },
            };
            // Only transient classes are worth retrying: a typed
            // engine error is deterministic and would fail again.
            let transient = matches!(outcome, Outcome::Panicked { .. } | Outcome::TimedOut { .. });
            if !transient || attempts >= attempts_allowed {
                break outcome;
            }
        };
        WorkloadReport {
            index,
            name: w.name.clone(),
            goal: w.goal.clone(),
            attempts,
            outcome,
        }
    });
    SuiteReport { rows }
}

/// Runs a whole suite on the PSI simulator in parallel, one fresh
/// [`Machine`] per workload, with [`default_parallelism`] workers.
///
/// `lane` selects the execution lane for every machine in the suite
/// (overriding `config.measurement`): [`Measurement::Full`] is the
/// fidelity lane whose measurements feed Tables 2–7,
/// [`Measurement::Off`] is the throughput lane — same solutions and
/// step totals, no cache/trace/event machinery.
///
/// Results come back ordered by workload index and are bit-identical
/// to running each workload serially through [`run_on_psi`]: every
/// workload gets its own machine, so no simulator state is shared
/// between threads and the event counts feeding Tables 2–7 are
/// unaffected by the parallelism. A panicking workload yields an
/// `Err` with [`PsiError::WorkerPanic`] for its own row only; every
/// other row still completes.
pub fn run_suite_parallel(
    workloads: &[Workload],
    config: &MachineConfig,
    lane: Measurement,
) -> Vec<Result<PsiRun>> {
    run_suite_parallel_with(workloads, config, lane, default_parallelism())
}

/// [`run_suite_parallel`] with an explicit worker count (1 = serial).
pub fn run_suite_parallel_with(
    workloads: &[Workload],
    config: &MachineConfig,
    lane: Measurement,
    threads: usize,
) -> Vec<Result<PsiRun>> {
    let mut config = config.clone();
    config.measurement = lane;
    par_map_catch(workloads, threads, |_, w| run_on_psi(w, config.clone()))
        .into_iter()
        .zip(workloads)
        .map(|(slot, w)| match slot {
            Ok(result) => result,
            Err(detail) => Err(PsiError::WorkerPanic {
                context: format!("workload '{}' (goal {})", w.name, w.goal),
                detail,
            }),
        })
        .collect()
}

/// Runs a workload on the DEC-10 baseline.
///
/// # Errors
///
/// Propagates parse and execution errors. Workloads using PSI-only
/// built-ins fail with an undefined-predicate error; check
/// [`Workload::runs_on_dec`] first.
pub fn run_on_dec(w: &Workload) -> Result<DecRun> {
    let program = Program::parse(&w.source)?;
    let mut machine = DecMachine::load(&program, DecConfig::dec2060())?;
    let solutions = machine.solve(&w.goal, w.max_solutions)?;
    Ok(DecRun {
        solutions: solutions.iter().map(|s| s.to_string()).collect(),
        stats: machine.stats(),
        time_ns: machine.time_ns(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::contest;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn both_engines_agree_on_nreverse() {
        let w = contest::nreverse(8);
        let psi = run_on_psi(&w, MachineConfig::psi()).unwrap();
        let dec = run_on_dec(&w).unwrap();
        assert_eq!(psi.solutions, dec.solutions);
        assert_eq!(psi.solutions[0], "R = [8,7,6,5,4,3,2,1]");
    }

    #[test]
    fn exhaustive_workloads_enumerate() {
        let w = contest::queens_all(5);
        let psi = run_on_psi(&w, MachineConfig::psi()).unwrap();
        let dec = run_on_dec(&w).unwrap();
        assert_eq!(psi.solutions.len(), 10, "5-queens has 10 solutions");
        assert_eq!(psi.solutions, dec.solutions);
    }

    #[test]
    fn par_map_empty_input_spawns_nothing() {
        let items: [u32; 0] = [];
        for threads in [0, 1, 8] {
            let out = par_map(&items, threads, |_, x| *x);
            assert!(out.is_empty());
        }
    }

    /// The work-stealing cursor must hand out every index exactly
    /// once, for any thread count (including more threads than
    /// items), and the merge must preserve input order.
    #[test]
    fn par_map_cursor_covers_every_index_exactly_once() {
        let items: Vec<usize> = (0..37).collect();
        let hits: Vec<AtomicUsize> = (0..items.len()).map(|_| AtomicUsize::new(0)).collect();
        for threads in [1, 2, 3, 8, 64] {
            for h in &hits {
                h.store(0, Ordering::SeqCst);
            }
            let out = par_map(&items, threads, |i, x| {
                hits[i].fetch_add(1, Ordering::SeqCst);
                assert_eq!(i, *x, "index must match the item it maps");
                x * 2
            });
            let expect: Vec<usize> = items.iter().map(|x| x * 2).collect();
            assert_eq!(out, expect, "threads={threads}: order must be preserved");
            for (i, h) in hits.iter().enumerate() {
                assert_eq!(
                    h.load(Ordering::SeqCst),
                    1,
                    "threads={threads}: index {i} not computed exactly once"
                );
            }
        }
    }

    #[test]
    fn par_map_catch_contains_one_panicking_item() {
        let items: Vec<u32> = (0..10).collect();
        for threads in [1, 4] {
            let out = par_map_catch(&items, threads, |_, x| {
                if *x == 3 {
                    panic!("injected failure on {x}");
                }
                x + 100
            });
            assert_eq!(out.len(), 10);
            for (i, slot) in out.iter().enumerate() {
                if i == 3 {
                    let msg = slot.as_ref().unwrap_err();
                    assert!(msg.contains("injected failure on 3"), "{msg}");
                } else {
                    assert_eq!(*slot.as_ref().unwrap(), i as u32 + 100);
                }
            }
        }
    }

    #[test]
    fn suite_runner_contains_panics_per_row() {
        let workloads = vec![contest::nreverse(6), contest::quick_sort(8)];
        let config = MachineConfig::psi();
        let options = SuiteOptions {
            threads: 2,
            ..SuiteOptions::default()
        };
        let report = run_suite_governed_with_runner(&workloads, &config, &options, |w, c| {
            if w.name == "nreverse" {
                panic!("injected workload panic");
            }
            run_on_psi(w, c)
        });
        assert_eq!(report.rows.len(), 2);
        assert_eq!(report.panicked_count(), 1);
        assert_eq!(report.ok_count(), 1);
        let bad = &report.rows[0];
        assert_eq!(bad.outcome.label(), "panicked");
        let detail = bad.describe();
        assert!(detail.contains("nreverse"), "{detail}");
        assert!(detail.contains("injected workload panic"), "{detail}");
        assert!(report.rows[1].run().is_some());
        assert!(report.summary().contains("1 ok"));
    }

    #[test]
    fn suite_retry_policy_is_bounded_and_counted() {
        let workloads = vec![contest::nreverse(5)];
        let config = MachineConfig::psi();
        let options = SuiteOptions {
            threads: 1,
            max_retries: 2,
            ..SuiteOptions::default()
        };
        let calls = AtomicUsize::new(0);
        let report = run_suite_governed_with_runner(&workloads, &config, &options, |_, _| {
            calls.fetch_add(1, Ordering::SeqCst);
            panic!("always panics");
        });
        assert_eq!(report.rows[0].attempts, 3, "1 attempt + 2 retries");
        assert_eq!(calls.load(Ordering::SeqCst), 3);
        assert_eq!(report.panicked_count(), 1);
    }

    #[test]
    fn suite_metrics_snapshot_counts_outcomes_and_retries() {
        use psi_obs::Counter;
        let workloads = vec![contest::nreverse(6), contest::quick_sort(8)];
        let config = MachineConfig::psi();
        let options = SuiteOptions {
            threads: 1,
            max_retries: 1,
            ..SuiteOptions::default()
        };
        let report = run_suite_governed_with_runner(&workloads, &config, &options, |w, c| {
            if w.name == "nreverse" {
                panic!("injected workload panic");
            }
            run_on_psi(w, c)
        });
        let m = report.metrics();
        assert_eq!(m.get(Counter::SuiteOk), 1);
        assert_eq!(m.get(Counter::SuitePanicked), 1);
        assert_eq!(m.get(Counter::SuiteExhausted), 0);
        assert_eq!(m.get(Counter::SuiteTimedOut), 0);
        assert_eq!(m.get(Counter::SuiteFailed), 0);
        assert_eq!(m.get(Counter::SuiteRetries), 1, "one retry on the panic");
    }

    #[test]
    fn suite_engine_errors_are_not_retried() {
        let workloads = vec![Workload::new(
            "undefined",
            "p(1).".to_owned(),
            "missing(X)".to_owned(),
        )];
        let config = MachineConfig::psi();
        let options = SuiteOptions {
            threads: 1,
            max_retries: 5,
            ..SuiteOptions::default()
        };
        let report = run_suite_governed(&workloads, &config, &options);
        assert_eq!(
            report.rows[0].attempts, 1,
            "deterministic errors retry 0 times"
        );
        assert_eq!(report.failed_count(), 1);
    }
}
