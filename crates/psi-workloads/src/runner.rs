//! Engine glue: run any [`Workload`] on the PSI simulator or the
//! DEC-10 baseline and collect comparable results.

use crate::Workload;
use dec10::{DecConfig, DecMachine, DecStats};
use kl0::Program;
use psi_core::Result;
use psi_machine::{Machine, MachineConfig, MachineStats};

/// Result of a PSI run.
#[derive(Debug, Clone)]
pub struct PsiRun {
    /// Solutions rendered to text (engine-neutral comparison form).
    pub solutions: Vec<String>,
    /// Full machine statistics.
    pub stats: MachineStats,
}

/// Result of a DEC-10 baseline run.
#[derive(Debug, Clone)]
pub struct DecRun {
    /// Solutions rendered to text.
    pub solutions: Vec<String>,
    /// Instruction statistics.
    pub stats: DecStats,
    /// Simulated time in nanoseconds.
    pub time_ns: u64,
}

/// Runs a workload on the PSI simulator.
///
/// # Errors
///
/// Propagates parse and execution errors.
pub fn run_on_psi(w: &Workload, config: MachineConfig) -> Result<PsiRun> {
    let program = Program::parse(&w.source)?;
    let mut machine = Machine::load(&program, config)?;
    let solutions = if w.background.is_empty() {
        machine.solve(&w.goal, w.max_solutions)?
    } else {
        let bg: Vec<&str> = w.background.iter().map(String::as_str).collect();
        machine.run_session(&w.goal, &bg)?
    };
    Ok(PsiRun {
        solutions: solutions.iter().map(|s| s.to_string()).collect(),
        stats: machine.stats(),
    })
}

/// Runs a workload on the PSI simulator and returns the machine too
/// (for trace collection).
///
/// # Errors
///
/// Propagates parse and execution errors.
pub fn run_on_psi_machine(w: &Workload, config: MachineConfig) -> Result<(PsiRun, Machine)> {
    let program = Program::parse(&w.source)?;
    let mut machine = Machine::load(&program, config)?;
    let solutions = if w.background.is_empty() {
        machine.solve(&w.goal, w.max_solutions)?
    } else {
        let bg: Vec<&str> = w.background.iter().map(String::as_str).collect();
        machine.run_session(&w.goal, &bg)?
    };
    let run = PsiRun {
        solutions: solutions.iter().map(|s| s.to_string()).collect(),
        stats: machine.stats(),
    };
    Ok((run, machine))
}

/// Default worker count for [`run_suite_parallel`]: the machine's
/// available parallelism, or 1 if it cannot be determined.
pub fn default_parallelism() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// Applies `f` to every item on a pool of scoped worker threads and
/// returns the results **in input order** — the output is
/// deterministic regardless of scheduling. Work is handed out through
/// a shared atomic cursor, so long items do not serialize behind short
/// ones.
///
/// # Panics
///
/// Propagates a panic from any worker.
pub fn par_map<T, U, F>(items: &[T], threads: usize, f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(usize, &T) -> U + Sync,
{
    use std::sync::atomic::{AtomicUsize, Ordering};
    let n = items.len();
    let threads = threads.clamp(1, n.max(1));
    let mut slots: Vec<Option<U>> = (0..n).map(|_| None).collect();
    if threads <= 1 {
        for (i, (slot, item)) in slots.iter_mut().zip(items).enumerate() {
            *slot = Some(f(i, item));
        }
    } else {
        let cursor = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..threads)
                .map(|_| {
                    scope.spawn(|| {
                        let mut done = Vec::new();
                        loop {
                            let i = cursor.fetch_add(1, Ordering::Relaxed);
                            if i >= n {
                                return done;
                            }
                            done.push((i, f(i, &items[i])));
                        }
                    })
                })
                .collect();
            for handle in handles {
                for (i, value) in handle.join().expect("suite worker panicked") {
                    slots[i] = Some(value);
                }
            }
        });
    }
    slots
        .into_iter()
        .map(|slot| slot.expect("every index computed"))
        .collect()
}

/// Runs a whole suite on the PSI simulator in parallel, one fresh
/// [`Machine`] per workload, with [`default_parallelism`] workers.
///
/// Results come back ordered by workload index and are bit-identical
/// to running each workload serially through [`run_on_psi`]: every
/// workload gets its own machine, so no simulator state is shared
/// between threads and the event counts feeding Tables 2–7 are
/// unaffected by the parallelism.
pub fn run_suite_parallel(workloads: &[Workload], config: &MachineConfig) -> Vec<Result<PsiRun>> {
    run_suite_parallel_with(workloads, config, default_parallelism())
}

/// [`run_suite_parallel`] with an explicit worker count (1 = serial).
pub fn run_suite_parallel_with(
    workloads: &[Workload],
    config: &MachineConfig,
    threads: usize,
) -> Vec<Result<PsiRun>> {
    par_map(workloads, threads, |_, w| run_on_psi(w, config.clone()))
}

/// Runs a workload on the DEC-10 baseline.
///
/// # Errors
///
/// Propagates parse and execution errors. Workloads using PSI-only
/// built-ins fail with an undefined-predicate error; check
/// [`Workload::runs_on_dec`] first.
pub fn run_on_dec(w: &Workload) -> Result<DecRun> {
    let program = Program::parse(&w.source)?;
    let mut machine = DecMachine::load(&program, DecConfig::dec2060())?;
    let solutions = machine.solve(&w.goal, w.max_solutions)?;
    Ok(DecRun {
        solutions: solutions.iter().map(|s| s.to_string()).collect(),
        stats: machine.stats(),
        time_ns: machine.time_ns(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::contest;

    #[test]
    fn both_engines_agree_on_nreverse() {
        let w = contest::nreverse(8);
        let psi = run_on_psi(&w, MachineConfig::psi()).unwrap();
        let dec = run_on_dec(&w).unwrap();
        assert_eq!(psi.solutions, dec.solutions);
        assert_eq!(psi.solutions[0], "R = [8,7,6,5,4,3,2,1]");
    }

    #[test]
    fn exhaustive_workloads_enumerate() {
        let w = contest::queens_all(5);
        let psi = run_on_psi(&w, MachineConfig::psi()).unwrap();
        let dec = run_on_dec(&w).unwrap();
        assert_eq!(psi.solutions.len(), 10, "5-queens has 10 solutions");
        assert_eq!(psi.solutions, dec.solutions);
    }
}
