//! The two natural-language parsers of Table 1.
//!
//! The paper: "BUP and LCP are parsers using different methods for
//! natural language processing... BUP treats structures larger than
//! eight elements and nested structures" and BUP/harmonizer-style
//! programs "have much unification between structural data and
//! involve frequent backtracking", while LCP was written by F. Pereira
//! with "thorough knowledge of the [DEC-10] system's advantages" — it
//! is deterministic, shallow and indexing-friendly, which is why DEC
//! beats PSI on it (Table 1 rows 17–19).

use crate::Workload;

/// BUP: a backtracking shift-reduce bottom-up parser over *feature
/// structures*. Stack items are `cat(Name, Number, Tree)` terms;
/// reductions unify whole feature structures (repeated variables →
/// general unification), carry number agreement (det–noun and
/// subject–verb), and build nested parse trees — the paper's BUP
/// "treats structures larger than eight elements and nested
/// structures" and drives the unify module to 43% of steps
/// (Table 2). Word positions are counted arithmetically, giving BUP
/// its built-in call traffic (§3.2: 65%).
fn bup_source() -> String {
    String::from(
        "
% Lexicon with number agreement; 'the' and most verbs are ambiguous
% in number, which multiplies the search.
wd(det, sg, the). wd(det, pl, the). wd(det, sg, a).
wd(n, sg, man). wd(n, pl, men). wd(n, sg, woman).
wd(n, sg, telescope). wd(n, sg, park). wd(n, sg, dog).
wd(n, pl, dogs). wd(n, sg, cat). wd(n, sg, hill). wd(n, sg, stick).
wd(v, sg, saw). wd(v, pl, saw). wd(v, sg, liked). wd(v, pl, liked).
wd(v, sg, chased). wd(v, pl, chased). wd(v, sg, found).
wd(p, sg, with). wd(p, sg, in). wd(p, sg, on).
wd(adj, sg, old). wd(adj, pl, old). wd(adj, sg, young).
wd(adj, pl, young). wd(adj, sg, small). wd(adj, pl, small).

% Grammar rules with right-hand sides reversed for stack matching.
% Feature structures share agreement variables across elements.
rrule(cat(s, Num, s(NPT, VPT)),
      [cat(vp, Num, VPT), cat(np, Num, NPT)]).
rrule(cat(np, Num, np(D, N)),
      [cat(n, Num, N), cat(det, Num, D)]).
rrule(cat(np, Num, np(D, A, N)),
      [cat(n, Num, N), cat(adj, Num, A), cat(det, Num, D)]).
rrule(cat(np, Num, np(NPT, PPT)),
      [cat(pp, _, PPT), cat(np, Num, NPT)]).
rrule(cat(vp, Num, vp(V)),
      [cat(v, Num, V)]).
rrule(cat(vp, Num, vp(V, NPT)),
      [cat(np, _, NPT), cat(v, Num, V)]).
rrule(cat(vp, Num, vp(V, NPT, PPT)),
      [cat(pp, _, PPT), cat(np, _, NPT), cat(v, Num, V)]).
rrule(cat(pp, Num, pp(P, NPT)),
      [cat(np, Num, NPT), cat(p, _, P)]).

% Shift-reduce with full backtracking; N counts word positions.
bup(Words, Tree) :- sr([], Words, 0, Tree).

sr([cat(s, Num, T)], [], _, cat(s, Num, T)).
sr(Stack, [W|Ws], N, Tree) :-
    wd(C, Num, W),
    N1 is N + 1,
    sr([cat(C, Num, w(W, N))|Stack], Ws, N1, Tree).
sr(Stack, Ws, N, Tree) :-
    N > 0,
    reduce(Stack, NewStack),
    sr(NewStack, Ws, N, Tree).

reduce(Stack, [Cat|Rest]) :-
    rrule(Cat, RevRhs),
    match_rhs(RevRhs, Stack, Rest).

% The repeated variable C forces a full feature-structure
% unification per matched stack element.
match_rhs([], Rest, Rest).
match_rhs([C|Cs], [C|Stack], Rest) :-
    match_rhs(Cs, Stack, Rest).
",
    )
}

/// LCP: a left-corner parser with a pre-computed link (left-corner
/// reachability) table — the Pereira style. First arguments are bound
/// atoms everywhere (indexing-friendly), structures are shallow
/// difference lists, and the link table prunes almost all
/// backtracking.
fn lcp_source() -> String {
    // Note the Pereira signature the paper alludes to: every table is
    // keyed on a *bound* first argument (word → category, corner →
    // links, first child → rules), so DEC-10's clause indexing
    // dispatches each lookup directly — no choice points on the happy
    // path. This is what "thorough knowledge of the system's
    // advantages" buys (§3.1).
    String::from(
        "
% Lexicon keyed by the word.
wcat(the, det). wcat(a, det).
wcat(man, n). wcat(woman, n). wcat(telescope, n). wcat(park, n).
wcat(dog, n). wcat(cat, n). wcat(hill, n). wcat(stick, n).
wcat(saw, v). wcat(liked, v). wcat(chased, v). wcat(found, v).
wcat(with, p). wcat(in, p). wcat(on, p).
wcat(old, adj). wcat(young, adj). wcat(small, adj).

% Left-corner reachability, fully enumerated (no variable clause).
lc(det, np). lc(det, s). lc(det, det).
lc(np, s). lc(np, np).
lc(v, vp). lc(v, v).
lc(p, pp). lc(p, p).
lc(adj, adj). lc(adj, np).
lc(n, n). lc(s, s). lc(vp, vp). lc(pp, pp).

% Rules keyed by the (bound) first child.
rule(np, s, [vp]).
rule(det, np, [n]).
rule(det, np, [adj, n]).
rule(np, np, [pp]).
rule(v, vp, []).
rule(v, vp, [np]).
rule(v, vp, [np, pp]).
rule(p, pp, [np]).

% parse(Cat, Words0, Words)
lcp(Words, t(s)) :- parse(s, Words, []).

parse(C, [W|Ws0], Ws) :-
    wcat(W, PreC),
    lc(PreC, C),
    complete(PreC, C, Ws0, Ws).

complete(C, C, Ws, Ws).
complete(Sub, C, Ws0, Ws) :-
    rule(Sub, Parent, Rest),
    lc(Parent, C),
    parse_list(Rest, Ws0, Ws1),
    complete(Parent, C, Ws1, Ws).

parse_list([], Ws, Ws).
parse_list([C|Cs], Ws0, Ws) :-
    parse(C, Ws0, Ws1),
    parse_list(Cs, Ws1, Ws).
",
    )
}

/// Sentences of increasing length for the -1/-2/-3 variants.
pub fn sentence(level: u32) -> &'static str {
    match level {
        1 => "[the, man, saw, the, dog]",
        2 => "[the, old, man, saw, the, dog, in, the, park]",
        _ => {
            "[the, old, man, saw, the, small, dog, in, the, park, \
             with, the, telescope, on, the, hill]"
        }
    }
}

/// `BUP-n` (Table 1 rows 11–13).
pub fn bup(level: u32) -> Workload {
    Workload::new(
        &format!("BUP-{level}"),
        bup_source(),
        format!("bup({}, T)", sentence(level)),
    )
}

/// `LCP-n` (Table 1 rows 17–19).
pub fn lcp(level: u32) -> Workload {
    Workload::new(
        &format!("LCP-{level}"),
        lcp_source(),
        format!("lcp({}, T)", sentence(level)),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use kl0::Program;

    #[test]
    fn parser_sources_parse() {
        Program::parse(&bup_source()).unwrap();
        Program::parse(&lcp_source()).unwrap();
        assert!(bup(1).runs_on_dec());
        assert!(lcp(3).runs_on_dec());
    }

    #[test]
    fn sentences_grow() {
        assert!(sentence(1).len() < sentence(2).len());
        assert!(sentence(2).len() < sentence(3).len());
    }
}
