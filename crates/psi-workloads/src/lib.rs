//! The paper's benchmark suite.
//!
//! Section 3.1 measures nineteen programs: ten small list-processing
//! programs from the first Prolog contest of Japan, and nine
//! practical-scale runs of three applications (the BUP and LCP
//! natural-language parsers and the HARMONIZER music system). Section
//! 3.2/4 adds the WINDOW system (built-in heavy, heap vectors,
//! process switching) and 8-PUZZLE (search with backtracking).
//!
//! The original sources are lost; these re-implementations follow the
//! paper's characterization of each program (size, structure depth,
//! backtracking rate, built-in rate — see DESIGN.md). Every workload
//! is expressed in the KL0 subset both engines execute, so the same
//! source runs on the PSI simulator and the DEC-10 baseline.
//!
//! # Example
//!
//! ```
//! use psi_workloads::{contest, runner};
//!
//! let w = contest::nreverse(10);
//! let psi = runner::run_on_psi(&w, psi_machine::MachineConfig::psi())?;
//! let dec = runner::run_on_dec(&w)?;
//! assert_eq!(psi.solutions, dec.solutions);
//! # Ok::<(), psi_core::PsiError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod contest;
pub mod corpus;
pub mod harmonizer;
pub mod library;
pub mod parsers;
pub mod puzzle;
pub mod runner;
pub mod suite;
pub mod window;

/// A benchmark workload: a KL0 program plus the query that drives it.
#[derive(Debug, Clone)]
pub struct Workload {
    /// Display name (matches the paper's Table 1 row labels).
    pub name: String,
    /// Program source text.
    pub source: String,
    /// The driving query.
    pub goal: String,
    /// How many solutions to request (`usize::MAX` = exhaust the
    /// search space, as in "8 queens (all)").
    pub max_solutions: usize,
    /// Background process goals (WINDOW-2/3 only; PSI-only feature).
    pub background: Vec<String>,
}

impl Workload {
    /// Creates a single-solution workload.
    pub fn new(name: &str, source: String, goal: String) -> Workload {
        Workload {
            name: name.to_owned(),
            source,
            goal,
            max_solutions: 1,
            background: Vec::new(),
        }
    }

    /// Requests exhaustive solution enumeration.
    pub fn exhaustive(mut self) -> Workload {
        self.max_solutions = usize::MAX;
        self
    }

    /// Can this workload run on the DEC-10 baseline? (WINDOW uses the
    /// PSI-only heap vectors and process switching.)
    pub fn runs_on_dec(&self) -> bool {
        self.background.is_empty()
            && !self.source.contains("vector(")
            && !self.source.contains("yield")
    }
}
