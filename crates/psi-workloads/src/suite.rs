//! The assembled measurement suites and the paper's reported values,
//! used by the table generators in `psi-bench` and recorded against
//! our measurements in EXPERIMENTS.md.

use crate::{contest, harmonizer, parsers, puzzle, window, Workload};

/// One Table 1 row: workload plus the paper's measured milliseconds.
#[derive(Debug, Clone)]
pub struct Table1Entry {
    /// Row number in Table 1 (1-based).
    pub index: usize,
    /// The workload.
    pub workload: Workload,
    /// Paper's PSI time (ms).
    pub paper_psi_ms: f64,
    /// Paper's DEC-2060 time (ms).
    pub paper_dec_ms: f64,
}

impl Table1Entry {
    /// Paper's DEC/PSI ratio.
    pub fn paper_ratio(&self) -> f64 {
        self.paper_dec_ms / self.paper_psi_ms
    }
}

/// All nineteen Table 1 rows.
///
/// Input sizes are scaled to simulator-friendly magnitudes (the paper
/// ran on real hardware); the *ratios* between engines are the
/// reproduction target, not absolute milliseconds — see
/// EXPERIMENTS.md.
pub fn table1_suite() -> Vec<Table1Entry> {
    let rows: Vec<(Workload, f64, f64)> = vec![
        (contest::nreverse(30), 13.6, 9.48),
        (contest::quick_sort(50), 15.2, 14.6),
        (contest::tree_traversing(7), 51.7, 61.1),
        (contest::lisp_tarai(7, 4, 0), 4024.0, 4360.0),
        (contest::lisp_fib(10), 369.0, 402.0),
        (contest::lisp_nreverse(14), 173.0, 194.0),
        (contest::queens_first(8), 96.9, 97.5),
        (contest::queens_all(7), 1570.0, 1580.0),
        (contest::reverse_function(30, 8), 38.2, 41.7),
        (contest::slow_reverse(13), 99.4, 89.0),
        (parsers::bup(1), 43.0, 52.0),
        (parsers::bup(2), 139.0, 194.0),
        (parsers::bup(3), 309.0, 424.0),
        (harmonizer::harmonizer(1), 657.0, 1040.0),
        (harmonizer::harmonizer(2), 1879.0, 2670.0),
        (harmonizer::harmonizer(3), 24119.0, 31390.0),
        (parsers::lcp(1), 379.0, 295.0),
        (parsers::lcp(2), 1387.0, 1071.0),
        (parsers::lcp(3), 2130.0, 1656.0),
    ];
    rows.into_iter()
        .enumerate()
        .map(|(i, (workload, psi, dec))| Table1Entry {
            index: i + 1,
            workload,
            paper_psi_ms: psi,
            paper_dec_ms: dec,
        })
        .collect()
}

/// The seven programs of the hardware evaluation (Tables 3–5 rows).
pub fn hardware_suite() -> Vec<Workload> {
    vec![
        window::window(1),
        window::window(2),
        window::window(3),
        puzzle::eight_puzzle(6),
        parsers::bup(3),
        harmonizer::harmonizer(2),
        parsers::lcp(3),
    ]
}

/// The four programs of Table 2 (interpreter module ratios).
pub fn table2_suite() -> Vec<Workload> {
    vec![
        window::window(1),
        puzzle::eight_puzzle(6),
        parsers::bup(3),
        harmonizer::harmonizer(2),
    ]
}

/// The paper's reported values, verbatim from the tables.
pub mod paper {
    /// Table 2: execution step ratios (%) — rows window, 8 puzzle,
    /// BUP, harmonizer; columns control, unify, trail, get_arg, cut,
    /// built.
    pub const TABLE2: [(&str, [f64; 6]); 4] = [
        ("window", [31.1, 17.1, 2.0, 13.6, 10.0, 26.2]),
        ("8 puzzle", [27.5, 11.0, 7.5, 22.7, 0.0, 31.3]),
        ("BUP", [22.3, 43.0, 4.7, 5.2, 5.6, 19.2]),
        ("harmonizer", [25.5, 46.4, 5.4, 7.3, 4.0, 11.0]),
    ];

    /// Table 3: cache command rate per microstep (%) — columns read,
    /// write-stack, write, write-total, total.
    pub const TABLE3: [(&str, [f64; 5]); 7] = [
        ("window-1", [15.2, 3.5, 1.2, 4.7, 19.9]),
        ("window-2", [15.2, 3.0, 1.1, 4.1, 19.7]),
        ("window-3", [17.6, 3.9, 1.4, 5.3, 22.8]),
        ("8 puzzle", [9.9, 3.2, 2.8, 6.1, 16.0]),
        ("BUP", [15.6, 3.5, 2.2, 5.7, 21.3]),
        ("harmonizer", [15.3, 4.6, 2.2, 6.8, 22.1]),
        ("LCP", [17.0, 3.9, 2.2, 6.1, 23.1]),
    ];

    /// Table 4: access frequency per area (%) — columns heap, global,
    /// local, control, trail.
    pub const TABLE4: [(&str, [f64; 5]); 7] = [
        ("window-1", [49.6, 4.6, 16.5, 26.7, 2.6]),
        ("window-2", [56.6, 4.4, 12.7, 26.3, 0.1]),
        ("window-3", [52.7, 6.2, 12.1, 28.2, 0.8]),
        ("8 puzzle", [31.3, 14.3, 33.9, 14.1, 6.4]),
        ("BUP", [39.0, 29.9, 17.3, 12.0, 1.8]),
        ("harmonizer", [35.2, 17.7, 30.3, 12.8, 3.8]),
        ("LCP", [44.7, 22.3, 14.1, 17.4, 1.4]),
    ];

    /// Table 5: cache hit ratios per area (%) — columns heap, global,
    /// local, control, trail, total.
    pub const TABLE5: [(&str, [f64; 6]); 7] = [
        ("window-1", [96.1, 92.8, 98.9, 99.4, 99.6, 96.4]),
        ("window-2", [87.2, 90.0, 98.5, 99.3, 95.2, 91.9]),
        ("window-3", [84.5, 92.8, 97.4, 98.6, 98.7, 90.7]),
        ("8 puzzle", [99.2, 99.4, 99.6, 99.2, 97.7, 99.3]),
        ("BUP", [98.2, 96.8, 99.0, 93.2, 99.7, 98.0]),
        ("harmonizer", [98.4, 98.4, 99.4, 98.2, 97.9, 98.4]),
        ("LCP", [96.2, 93.8, 99.2, 99.1, 98.6, 96.2]),
    ];

    /// Table 6: WF access-mode shares for BUP (%), the `†` values —
    /// rows WF00-0F, WF10-3F, constant, @PDR/CDR, @WFAR1, @WFAR2,
    /// @WFCBR; columns source-1, source-2, destination (`-1.0` =
    /// mode unavailable in that field).
    pub const TABLE6_SHARES: [(&str, [f64; 3]); 7] = [
        ("WF00-0F", [12.2, 100.0, 33.0]),
        ("WF10-3F", [58.5, -1.0, 63.6]),
        ("constant", [23.0, -1.0, -1.0]),
        ("@PDR/CDR", [1.3, -1.0, 0.3]),
        ("@WFAR1", [4.6, -1.0, 2.8]),
        ("@WFAR2", [0.07, -1.0, 0.3]),
        ("@WFCBR", [0.3, -1.0, 0.0]),
    ];

    /// Table 6 `‡` totals: field access rate per microstep (%).
    pub const TABLE6_FIELD_RATES: [f64; 3] = [56.4, 29.1, 36.6];

    /// Table 7: branch-operation frequencies (%) for BUP, window and
    /// 8 puzzle, rows (1)–(16).
    pub const TABLE7: [(&str, [f64; 3]); 16] = [
        ("no operation (t1)", [7.2, 6.7, 4.8]),
        ("if (cond) then", [16.0, 16.5, 12.1]),
        ("if (not(cond)) then", [19.2, 17.0, 20.3]),
        ("if tag(src2) then", [2.7, 5.2, 3.1]),
        ("case (tag(n,P/CDR))", [10.9, 8.6, 9.1]),
        ("case (irn)", [2.8, 4.6, 4.9]),
        ("case (ir-opcode)", [0.5, 1.4, 1.5]),
        ("goto (t1)", [3.7, 1.4, 2.7]),
        ("gosub", [4.0, 5.7, 6.5]),
        ("return", [3.8, 5.4, 6.5]),
        ("load-jr", [0.8, 0.4, 0.7]),
        ("goto @jr (t1)", [1.4, 0.6, 0.7]),
        ("no operation (t2)", [9.6, 7.8, 7.7]),
        ("goto (t2)", [10.9, 11.7, 15.2]),
        ("no operation (t3)", [6.5, 7.0, 4.2]),
        ("goto @jr (t3)", [0.0, 0.04, 0.05]),
    ];

    /// §3.2: built-in call share of all calls (%).
    pub const BUILTIN_CALL_SHARE: [(&str, f64); 2] = [("window", 82.0), ("BUP", 65.0)];
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_has_nineteen_rows() {
        let suite = table1_suite();
        assert_eq!(suite.len(), 19);
        assert!((suite[0].paper_ratio() - 0.70).abs() < 0.01);
        assert!((suite[13].paper_ratio() - 1.58).abs() < 0.01);
        assert!((suite[16].paper_ratio() - 0.78).abs() < 0.01);
    }

    #[test]
    fn hardware_suite_matches_table_rows() {
        let names: Vec<String> = hardware_suite().iter().map(|w| w.name.clone()).collect();
        assert_eq!(
            names,
            vec![
                "window-1",
                "window-2",
                "window-3",
                "8 puzzle",
                "BUP-3",
                "harmonizer-2",
                "LCP-3"
            ]
        );
    }

    #[test]
    fn paper_table_rows_sum_to_about_100() {
        for (name, row) in super::paper::TABLE2 {
            let sum: f64 = row.iter().sum();
            assert!((sum - 100.0).abs() < 0.5, "{name}: {sum}");
        }
        for (name, row) in super::paper::TABLE4 {
            let sum: f64 = row.iter().sum();
            assert!((sum - 100.0).abs() < 0.5, "{name}: {sum}");
        }
    }
}
