//! HARMONIZER (Table 1 rows 14–16): "a music generation system that
//! attaches harmonies to melodies according to musical knowledge",
//! which "uses frequent backtracking".
//!
//! The re-implementation harmonizes a melody (a list of scale degrees
//! 0–11) with triads, under voice-leading constraints strict enough
//! to force deep backtracking: chord tones must cover the melody
//! note, adjacent chords must share a tone or move by step, parallel
//! repetition is limited, and phrases must end in an authentic
//! cadence.

use crate::library::lcg_sequence;
use crate::Workload;

fn harmonizer_source() -> String {
    String::from(
        "
% chord(Name, Root, Tones) — the diatonic triads of C major.
chord(i,  0, [0, 4, 7]).
chord(ii, 2, [2, 5, 9]).
chord(iii,4, [4, 7, 11]).
chord(iv, 5, [5, 9, 0]).
chord(v,  7, [7, 11, 2]).
chord(vi, 9, [9, 0, 4]).

member(X, [X|_]).
member(X, [_|T]) :- member(X, T).

% A chord harmonizes a note if the note is a chord tone.
covers(Note, Name) :- chord(Name, _, Tones), member(Note, Tones).

% Transitions: share a common tone, or roots a fourth/fifth apart.
shares_tone(A, B) :- chord(A, _, Ta), chord(B, _, Tb),
    member(X, Ta), member(X, Tb), !.
root_step(A, B) :- chord(A, Ra, _), chord(B, Rb, _),
    D is Ra - Rb, member(D, [5, -5, 7, -7, 2, -2]).
good_transition(A, B) :- shares_tone(A, B).
good_transition(A, B) :- root_step(A, B).
% Forbid immediate repetition (forces search).
ok_next(A, B) :- A \\== B, good_transition(A, B).

% Cadence: the phrase must end V -> I.
cadence([i, v|_]).

% harmonize(Melody, ReversedChords)
harmonize([], []).
harmonize([N|Ns], [C|Cs]) :-
    harmonize(Ns, Cs),
    covers(N, C),
    ok_head(C, Cs).
ok_head(_, []).
ok_head(C, [P|_]) :- ok_next(P, C).

% Top level: harmonize and require a cadence (reversed chord list
% starts with the final chord).
harmonize_phrase(Melody, Chords) :-
    harmonize(Melody, Chords),
    cadence(Chords).
",
    )
}

/// A melody of the requested length whose notes are all diatonic
/// chord tones, ending on the tonic so a cadence exists.
pub fn melody(len: usize) -> Vec<i32> {
    // Use only pitches that at least one triad covers.
    let palette = [0, 2, 4, 5, 7, 9, 11];
    let mut notes: Vec<i32> = lcg_sequence(len, palette.len() as i32)
        .into_iter()
        .map(|i| palette[i as usize])
        .collect();
    let n = notes.len();
    if n >= 2 {
        notes[n - 2] = 7; // leading V chord tone
        notes[n - 1] = 0; // tonic
    }
    notes
}

/// `harmonizer-n` (Table 1 rows 14–16): melodies of growing length.
pub fn harmonizer(level: u32) -> Workload {
    let len = match level {
        1 => 8,
        2 => 11,
        _ => 16,
    };
    let m = melody(len);
    let m_text: Vec<String> = m.iter().map(|n| n.to_string()).collect();
    Workload::new(
        &format!("harmonizer-{level}"),
        harmonizer_source(),
        format!("harmonize_phrase([{}], Chords)", m_text.join(",")),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use kl0::Program;

    #[test]
    fn source_parses() {
        Program::parse(&harmonizer_source()).unwrap();
        assert!(harmonizer(1).runs_on_dec());
    }

    #[test]
    fn melody_ends_with_cadence_tones() {
        let m = melody(8);
        assert_eq!(m[6], 7);
        assert_eq!(m[7], 0);
    }

    #[test]
    fn levels_grow() {
        assert!(harmonizer(1).goal.len() < harmonizer(3).goal.len());
    }
}
