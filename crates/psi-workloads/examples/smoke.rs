use psi_machine::MachineConfig;
use psi_workloads::{runner, suite};
use std::time::Instant;

fn main() {
    println!(
        "{:<18} {:>12} {:>10} {:>10} {:>8} {:>8} {:>8}  wall",
        "name", "steps", "psi_ms", "dec_ms", "ratio", "paper", "acc%"
    );
    for e in suite::table1_suite() {
        let t0 = Instant::now();
        let psi = match runner::run_on_psi(&e.workload, MachineConfig::psi()) {
            Ok(r) => r,
            Err(err) => {
                println!("{:<18} PSI ERR {err}", e.workload.name);
                continue;
            }
        };
        let dec = match runner::run_on_dec(&e.workload) {
            Ok(r) => r,
            Err(err) => {
                println!("{:<18} DEC ERR {err}", e.workload.name);
                continue;
            }
        };
        let agree = psi.solutions == dec.solutions;
        let psi_ms = psi.stats.time_ms();
        let dec_ms = dec.time_ns as f64 / 1e6;
        println!(
            "{:<18} {:>12} {:>10.2} {:>10.2} {:>8.2} {:>8.2} {:>8.1}  {:?} agree={}",
            e.workload.name,
            psi.stats.steps,
            psi_ms,
            dec_ms,
            dec_ms / psi_ms,
            e.paper_ratio(),
            psi.stats.memory_access_rate_pct(),
            t0.elapsed(),
            agree
        );
    }
    println!("--- hardware suite (PSI only) ---");
    for w in suite::hardware_suite() {
        let t0 = Instant::now();
        match runner::run_on_psi(&w, MachineConfig::psi()) {
            Ok(r) => {
                let s = &r.stats;
                println!(
                    "{:<14} steps={:<10} hit={:.1}% access={:.1}% builtin_share={:.1}% {:?}",
                    w.name,
                    s.steps,
                    s.cache.hit_ratio_pct().unwrap_or(0.0),
                    s.memory_access_rate_pct(),
                    s.builtin_call_share_pct(),
                    t0.elapsed()
                );
            }
            Err(err) => println!("{:<14} ERR {err}", w.name),
        }
    }
}
