//! Observability layer of the PSI machine reproduction.
//!
//! The paper is an instrumentation exercise: Tables 2–7 are dynamic
//! profiles of the firmware interpreter. This crate gives the
//! simulator one typed, low-overhead layer those numbers flow
//! through:
//!
//! * [`MetricsRegistry`] — a zero-allocation registry of typed
//!   counters ([`Counter`]), per-module step mirrors and log₂
//!   [`Histogram`]s, backed entirely by fixed-size arrays. A
//!   [`MetricsRegistry::snapshot`] is a bit copy ([`MetricsSnapshot`]
//!   is `Copy`), never a heap clone.
//! * [`EventRing`] — a bounded ring buffer of
//!   [`psi_core::ObsEvent`]s that overwrites its oldest entry when
//!   full and counts what it dropped, so tracing can stay on
//!   indefinitely without growing.
//!
//! With the `noop` feature every recording method compiles to an
//! empty inline function: the registry stays constructible and
//! snapshotable (all zeros) but vanishes from the hot path.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use psi_core::ObsEvent;

// ------------------------------------------------------------------
// counters
// ------------------------------------------------------------------

/// Typed counter identities of the [`MetricsRegistry`].
///
/// Cache counters mirror `CacheStats`, machine counters are recorded
/// live by the interpreter's hooks, and suite counters aggregate
/// workload outcomes. The enum is the registry's index space: adding
/// a variant to [`Counter::ALL`] adds a slot, nothing else changes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Counter {
    /// Counted memory accesses that hit the cache.
    CacheHits,
    /// Counted memory accesses that missed.
    CacheMisses,
    /// Read commands issued.
    CacheReads,
    /// Ordinary write commands issued.
    CacheWrites,
    /// Write-stack commands issued.
    CacheWriteStacks,
    /// Dirty blocks written back to memory (store-in).
    Writebacks,
    /// Blocks fetched from memory.
    BlockFetches,
    /// Words sent to memory by store-through writes.
    ThroughWrites,
    /// Goal dispatches in the interpreter main loop.
    Dispatches,
    /// Backtracks (choice point retried or discarded).
    Backtracks,
    /// Solutions captured.
    Solutions,
    /// Periodic governor budget checks.
    GovernorChecks,
    /// Governor budget trips.
    GovernorTrips,
    /// Suite rows that completed cleanly.
    SuiteOk,
    /// Suite rows that exhausted a resource budget.
    SuiteExhausted,
    /// Suite rows that hit the wall-clock watchdog.
    SuiteTimedOut,
    /// Suite rows that returned an error.
    SuiteFailed,
    /// Suite rows whose worker panicked.
    SuitePanicked,
    /// Bounded retries spent on transient suite outcomes.
    SuiteRetries,
    /// Events overwritten by a full [`EventRing`].
    EventsDropped,
    /// Choice points pushed by the interpreter.
    ChoicePoints,
    /// Calls filtered through the first-argument clause index.
    IndexedCalls,
    /// Indexed calls whose single surviving candidate was entered
    /// directly, without pushing a choice point.
    IndexDirectEntries,
    /// Throughput-lane dispatches served from the predecoded code
    /// cache (zero in the fidelity lane, which never consults it).
    PredecodeHits,
    /// Throughput-lane dispatches that decoded their code word and
    /// filled the cache entry.
    PredecodeMisses,
    /// Compiled-lane dispatches served from the fused op array (zero
    /// off the compiled lane).
    FusedDispatches,
    /// Compiled-lane superinstruction chain continuations: fused ops
    /// executed directly from a predecessor's dispatch, without a
    /// run-loop round trip.
    FusionHits,
}

impl Counter {
    /// Every counter, in index order.
    pub const ALL: [Counter; 27] = [
        Counter::CacheHits,
        Counter::CacheMisses,
        Counter::CacheReads,
        Counter::CacheWrites,
        Counter::CacheWriteStacks,
        Counter::Writebacks,
        Counter::BlockFetches,
        Counter::ThroughWrites,
        Counter::Dispatches,
        Counter::Backtracks,
        Counter::Solutions,
        Counter::GovernorChecks,
        Counter::GovernorTrips,
        Counter::SuiteOk,
        Counter::SuiteExhausted,
        Counter::SuiteTimedOut,
        Counter::SuiteFailed,
        Counter::SuitePanicked,
        Counter::SuiteRetries,
        Counter::EventsDropped,
        Counter::ChoicePoints,
        Counter::IndexedCalls,
        Counter::IndexDirectEntries,
        Counter::PredecodeHits,
        Counter::PredecodeMisses,
        Counter::FusedDispatches,
        Counter::FusionHits,
    ];

    /// Number of counters (the registry's array length).
    pub const COUNT: usize = Counter::ALL.len();

    /// The registry array index of this counter.
    pub fn index(self) -> usize {
        self as usize
    }

    /// A short stable label (used by exports and reports).
    pub fn label(self) -> &'static str {
        match self {
            Counter::CacheHits => "cache_hits",
            Counter::CacheMisses => "cache_misses",
            Counter::CacheReads => "cache_reads",
            Counter::CacheWrites => "cache_writes",
            Counter::CacheWriteStacks => "cache_write_stacks",
            Counter::Writebacks => "writebacks",
            Counter::BlockFetches => "block_fetches",
            Counter::ThroughWrites => "through_writes",
            Counter::Dispatches => "dispatches",
            Counter::Backtracks => "backtracks",
            Counter::Solutions => "solutions",
            Counter::GovernorChecks => "governor_checks",
            Counter::GovernorTrips => "governor_trips",
            Counter::SuiteOk => "suite_ok",
            Counter::SuiteExhausted => "suite_exhausted",
            Counter::SuiteTimedOut => "suite_timed_out",
            Counter::SuiteFailed => "suite_failed",
            Counter::SuitePanicked => "suite_panicked",
            Counter::SuiteRetries => "suite_retries",
            Counter::EventsDropped => "events_dropped",
            Counter::ChoicePoints => "choice_points",
            Counter::IndexedCalls => "indexed_calls",
            Counter::IndexDirectEntries => "index_direct_entries",
            Counter::PredecodeHits => "predecode_hits",
            Counter::PredecodeMisses => "predecode_misses",
            Counter::FusedDispatches => "fused_dispatches",
            Counter::FusionHits => "fusion_hits",
        }
    }
}

// ------------------------------------------------------------------
// histograms
// ------------------------------------------------------------------

/// Number of log₂ buckets per histogram: bucket `i` holds values `v`
/// with `floor(log2(v)) == i - 1` (bucket 0 holds zero), and the last
/// bucket saturates.
pub const HISTOGRAM_BUCKETS: usize = 32;

/// A fixed-size log₂ histogram. `Copy`, allocation-free, mergeable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Histogram {
    buckets: [u64; HISTOGRAM_BUCKETS],
    count: u64,
    sum: u64,
}

impl Histogram {
    /// An empty histogram.
    pub const fn new() -> Histogram {
        Histogram {
            buckets: [0; HISTOGRAM_BUCKETS],
            count: 0,
            sum: 0,
        }
    }

    /// The bucket index `value` falls into.
    pub fn bucket_of(value: u64) -> usize {
        match value {
            0 => 0,
            v => ((64 - v.leading_zeros()) as usize).min(HISTOGRAM_BUCKETS - 1),
        }
    }

    /// Records one observation.
    pub fn record(&mut self, value: u64) {
        self.buckets[Histogram::bucket_of(value)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all observations (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Mean observation, or `None` if empty (no 0/0).
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum as f64 / self.count as f64)
    }

    /// The raw bucket counts.
    pub fn buckets(&self) -> &[u64; HISTOGRAM_BUCKETS] {
        &self.buckets
    }

    /// Adds another histogram's observations into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (b, o) in self.buckets.iter_mut().zip(&other.buckets) {
            *b += o;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
    }
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram::new()
    }
}

/// Histogram identities of the [`MetricsRegistry`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Histo {
    /// Live choice points remaining after each backtrack.
    BacktrackDepth,
    /// Microsteps per run (one observation per solve).
    RunSteps,
    /// Cache stall nanoseconds per run.
    RunStallNs,
}

impl Histo {
    /// Every histogram, in index order.
    pub const ALL: [Histo; 3] = [Histo::BacktrackDepth, Histo::RunSteps, Histo::RunStallNs];

    /// Number of histograms in the registry.
    pub const COUNT: usize = Histo::ALL.len();

    /// The registry array index of this histogram.
    pub fn index(self) -> usize {
        self as usize
    }

    /// A short stable label.
    pub fn label(self) -> &'static str {
        match self {
            Histo::BacktrackDepth => "backtrack_depth",
            Histo::RunSteps => "run_steps",
            Histo::RunStallNs => "run_stall_ns",
        }
    }
}

// ------------------------------------------------------------------
// registry
// ------------------------------------------------------------------

/// Upper bound on interpreter modules mirrored into the registry
/// (the PSI firmware has six; two slots are headroom).
pub const MAX_MODULES: usize = 8;

/// A frozen, `Copy` view of a [`MetricsRegistry`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MetricsSnapshot {
    counters: [u64; Counter::COUNT],
    module_steps: [u64; MAX_MODULES],
    histograms: [Histogram; Histo::COUNT],
}

impl MetricsSnapshot {
    /// The value of `counter`.
    pub fn get(&self, counter: Counter) -> u64 {
        self.counters[counter.index()]
    }

    /// Steps attributed to interpreter module `index`
    /// (`InterpModule::index()` order in `psi-machine`).
    pub fn module_steps(&self, index: usize) -> u64 {
        self.module_steps[index]
    }

    /// Steps summed over all modules.
    pub fn total_steps(&self) -> u64 {
        self.module_steps.iter().sum()
    }

    /// The frozen `histo`.
    pub fn histogram(&self, histo: Histo) -> &Histogram {
        &self.histograms[histo.index()]
    }
}

/// A zero-allocation registry of typed counters and histograms.
///
/// Backed entirely by fixed-size arrays: constructing, recording into
/// and snapshotting a registry never touches the heap. With the crate
/// feature `noop` every recording method is an empty inline function.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MetricsRegistry {
    counters: [u64; Counter::COUNT],
    module_steps: [u64; MAX_MODULES],
    histograms: [Histogram; Histo::COUNT],
}

impl MetricsRegistry {
    /// A zeroed registry.
    pub const fn new() -> MetricsRegistry {
        MetricsRegistry {
            counters: [0; Counter::COUNT],
            module_steps: [0; MAX_MODULES],
            histograms: [Histogram::new(); Histo::COUNT],
        }
    }

    /// Increments `counter` by one.
    #[inline]
    pub fn incr(&mut self, counter: Counter) {
        self.add(counter, 1);
    }

    /// Adds `n` to `counter`.
    #[inline]
    pub fn add(&mut self, counter: Counter, n: u64) {
        #[cfg(not(feature = "noop"))]
        {
            self.counters[counter.index()] += n;
        }
        #[cfg(feature = "noop")]
        {
            let _ = (counter, n);
        }
    }

    /// Adds `n` steps to interpreter module `index`.
    #[inline]
    pub fn add_module_steps(&mut self, index: usize, n: u64) {
        #[cfg(not(feature = "noop"))]
        {
            self.module_steps[index] += n;
        }
        #[cfg(feature = "noop")]
        {
            let _ = (index, n);
        }
    }

    /// Records one observation into `histo`.
    #[inline]
    pub fn observe(&mut self, histo: Histo, value: u64) {
        #[cfg(not(feature = "noop"))]
        {
            self.histograms[histo.index()].record(value);
        }
        #[cfg(feature = "noop")]
        {
            let _ = (histo, value);
        }
    }

    /// The current value of `counter`.
    pub fn get(&self, counter: Counter) -> u64 {
        self.counters[counter.index()]
    }

    /// Freezes the registry into a `Copy` snapshot (a bit copy).
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            counters: self.counters,
            module_steps: self.module_steps,
            histograms: self.histograms,
        }
    }

    /// Zeroes every counter and histogram.
    pub fn reset(&mut self) {
        *self = MetricsRegistry::new();
    }

    /// Merges another registry's counts into this one.
    pub fn merge(&mut self, other: &MetricsRegistry) {
        for (c, o) in self.counters.iter_mut().zip(&other.counters) {
            *c += o;
        }
        for (m, o) in self.module_steps.iter_mut().zip(&other.module_steps) {
            *m += o;
        }
        for (h, o) in self.histograms.iter_mut().zip(&other.histograms) {
            h.merge(o);
        }
    }
}

impl Default for MetricsRegistry {
    fn default() -> MetricsRegistry {
        MetricsRegistry::new()
    }
}

// ------------------------------------------------------------------
// event ring
// ------------------------------------------------------------------

/// Default [`EventRing`] capacity: recent-history window big enough
/// for any of the paper's workload tails at ~24 bytes per event.
pub const DEFAULT_EVENT_CAPACITY: usize = 16 * 1024;

/// A bounded ring buffer of [`ObsEvent`]s.
///
/// The ring allocates its storage once, up front; pushing is a bit
/// copy. When full, a push overwrites the oldest event and the
/// [`EventRing::dropped`] counter records the loss, so long traces
/// degrade to a recent-history window instead of growing without
/// bound.
#[derive(Debug, Clone)]
pub struct EventRing {
    buf: Vec<ObsEvent>,
    capacity: usize,
    /// Index of the oldest event once the ring has wrapped.
    start: usize,
    dropped: u64,
}

impl EventRing {
    /// A ring holding at most `capacity` events (at least one).
    pub fn with_capacity(capacity: usize) -> EventRing {
        let capacity = capacity.max(1);
        EventRing {
            buf: Vec::with_capacity(capacity),
            capacity,
            start: 0,
            dropped: 0,
        }
    }

    /// A ring with [`DEFAULT_EVENT_CAPACITY`].
    pub fn new() -> EventRing {
        EventRing::with_capacity(DEFAULT_EVENT_CAPACITY)
    }

    /// Appends an event, overwriting the oldest when full.
    #[inline]
    pub fn push(&mut self, event: ObsEvent) {
        if self.buf.len() < self.capacity {
            self.buf.push(event);
        } else {
            self.buf[self.start] = event;
            self.start = (self.start + 1) % self.capacity;
            self.dropped += 1;
        }
    }

    /// Events currently held.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether the ring holds no events.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Maximum events held before overwriting begins.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Events overwritten since construction or the last
    /// [`EventRing::clear`].
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// The held events in chronological order (oldest first).
    pub fn iter(&self) -> impl Iterator<Item = &ObsEvent> {
        let (newer, older) = self.buf.split_at(self.start);
        older.iter().chain(newer.iter())
    }

    /// Copies the held events out in chronological order.
    pub fn to_vec(&self) -> Vec<ObsEvent> {
        self.iter().copied().collect()
    }

    /// Removes all events and zeroes the dropped counter. Storage is
    /// retained.
    pub fn clear(&mut self) {
        self.buf.clear();
        self.start = 0;
        self.dropped = 0;
    }
}

impl Default for EventRing {
    fn default() -> EventRing {
        EventRing::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_indices_are_dense_and_labels_distinct() {
        for (i, c) in Counter::ALL.iter().enumerate() {
            assert_eq!(c.index(), i);
        }
        for (i, a) in Counter::ALL.iter().enumerate() {
            for b in &Counter::ALL[i + 1..] {
                assert_ne!(a.label(), b.label());
            }
        }
        for (i, h) in Histo::ALL.iter().enumerate() {
            assert_eq!(h.index(), i);
        }
    }

    #[cfg(not(feature = "noop"))]
    #[test]
    fn registry_records_and_snapshots() {
        let mut r = MetricsRegistry::new();
        r.incr(Counter::Backtracks);
        r.add(Counter::CacheHits, 41);
        r.incr(Counter::CacheHits);
        r.add_module_steps(2, 100);
        r.observe(Histo::BacktrackDepth, 3);
        r.observe(Histo::BacktrackDepth, 0);
        let s = r.snapshot();
        assert_eq!(s.get(Counter::Backtracks), 1);
        assert_eq!(s.get(Counter::CacheHits), 42);
        assert_eq!(s.get(Counter::Solutions), 0);
        assert_eq!(s.module_steps(2), 100);
        assert_eq!(s.total_steps(), 100);
        let h = s.histogram(Histo::BacktrackDepth);
        assert_eq!(h.count(), 2);
        assert_eq!(h.sum(), 3);
        assert_eq!(h.mean(), Some(1.5));
        r.reset();
        assert_eq!(r.snapshot().get(Counter::CacheHits), 0);
    }

    #[cfg(not(feature = "noop"))]
    #[test]
    fn registry_merge_adds_everything() {
        let mut a = MetricsRegistry::new();
        a.add(Counter::Dispatches, 10);
        a.observe(Histo::RunSteps, 8);
        let mut b = MetricsRegistry::new();
        b.add(Counter::Dispatches, 5);
        b.add_module_steps(0, 7);
        b.observe(Histo::RunSteps, 16);
        a.merge(&b);
        let s = a.snapshot();
        assert_eq!(s.get(Counter::Dispatches), 15);
        assert_eq!(s.module_steps(0), 7);
        assert_eq!(s.histogram(Histo::RunSteps).count(), 2);
        assert_eq!(s.histogram(Histo::RunSteps).sum(), 24);
    }

    #[cfg(feature = "noop")]
    #[test]
    fn noop_registry_snapshots_all_zero() {
        let mut r = MetricsRegistry::new();
        r.incr(Counter::Backtracks);
        r.add_module_steps(0, 100);
        r.observe(Histo::RunSteps, 5);
        let s = r.snapshot();
        assert_eq!(s.get(Counter::Backtracks), 0);
        assert_eq!(s.total_steps(), 0);
        assert_eq!(s.histogram(Histo::RunSteps).count(), 0);
    }

    #[test]
    fn histogram_buckets_by_log2() {
        assert_eq!(Histogram::bucket_of(0), 0);
        assert_eq!(Histogram::bucket_of(1), 1);
        assert_eq!(Histogram::bucket_of(2), 2);
        assert_eq!(Histogram::bucket_of(3), 2);
        assert_eq!(Histogram::bucket_of(4), 3);
        assert_eq!(Histogram::bucket_of(1024), 11);
        assert_eq!(Histogram::bucket_of(u64::MAX), HISTOGRAM_BUCKETS - 1);
    }

    #[test]
    fn ring_preserves_order_and_counts_drops() {
        use psi_core::ObsEvent;
        let mut ring = EventRing::with_capacity(4);
        for step in 0..6 {
            ring.push(ObsEvent::dispatch(step, step as u32));
        }
        assert_eq!(ring.len(), 4);
        assert_eq!(ring.dropped(), 2);
        let steps: Vec<u64> = ring.iter().map(|e| e.step).collect();
        assert_eq!(steps, vec![2, 3, 4, 5], "oldest first, oldest two dropped");
        assert_eq!(ring.to_vec().len(), 4);
        ring.clear();
        assert!(ring.is_empty());
        assert_eq!(ring.dropped(), 0);
    }

    #[test]
    fn ring_below_capacity_drops_nothing() {
        use psi_core::ObsEvent;
        let mut ring = EventRing::with_capacity(8);
        ring.push(ObsEvent::governor_check(1));
        ring.push(ObsEvent::backtrack(2, 0));
        assert_eq!(ring.len(), 2);
        assert_eq!(ring.dropped(), 0);
        let kinds: Vec<_> = ring.iter().map(|e| e.kind).collect();
        assert_eq!(
            kinds,
            vec![
                psi_core::EventKind::GovernorCheck,
                psi_core::EventKind::Backtrack
            ]
        );
    }
}
