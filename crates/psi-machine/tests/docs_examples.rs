//! The worked examples of docs/KL0.md, executed. If one of these
//! fails, the language reference is lying — fix the document in the
//! same commit.

use kl0::Program;
use psi_machine::{Machine, MachineConfig};

fn machine(src: &str) -> Machine {
    let program = Program::parse(src).expect("parse");
    Machine::load(&program, MachineConfig::psi()).expect("load")
}

fn solutions(m: &mut Machine, goal: &str, max: usize) -> Vec<String> {
    m.solve(goal, max)
        .expect("solve")
        .into_iter()
        .map(|s| s.to_string())
        .collect()
}

#[test]
fn append_example() {
    let mut m = machine(
        "append([], Ys, Ys).
         append([X | Xs], Ys, [X | Zs]) :- append(Xs, Ys, Zs).",
    );
    assert_eq!(
        solutions(&mut m, "append([1, 2], [3], Zs)", 5),
        vec!["Zs = [1,2,3]"]
    );
    assert_eq!(solutions(&mut m, "append(As, Bs, [1, 2])", 10).len(), 3);
}

#[test]
fn classify_and_negation_example() {
    let mut m = machine(
        "classify(X, neg)  :- X < 0, !.
         classify(0, zero) :- !.
         classify(_, pos).
         safe_div(X, Y, Z) :- \\+ Y =:= 0, Z is X // Y.",
    );
    assert_eq!(solutions(&mut m, "classify(-3, C)", 5), vec!["C = neg"]);
    assert_eq!(solutions(&mut m, "classify(0, C)", 5), vec!["C = zero"]);
    assert_eq!(solutions(&mut m, "classify(7, C)", 5), vec!["C = pos"]);
    assert_eq!(solutions(&mut m, "safe_div(7, 2, Z)", 5), vec!["Z = 3"]);
    assert_eq!(
        solutions(&mut m, "safe_div(7, 0, _Z)", 5),
        Vec::<String>::new()
    );
}

#[test]
fn bump_counter_example() {
    let mut m = machine(
        "seen(0).
         bump(N) :- retract(seen(M)), N is M + 1, assert(seen(N)).",
    );
    assert_eq!(
        solutions(&mut m, "bump(A), bump(B), bump(C)", 5),
        vec!["A = 1, B = 2, C = 3"]
    );
}

#[test]
fn extended_arithmetic_examples() {
    let mut m = machine("seed(0).");
    assert_eq!(
        solutions(&mut m, "X is (1 << 10) + 7 // 2 - 5 xor 3", 1),
        vec!["X = 1021"]
    );
    assert_eq!(solutions(&mut m, "X is -7 mod 2", 1), vec!["X = 1"]);
    assert_eq!(solutions(&mut m, "X is -7 rem 2", 1), vec!["X = -1"]);
    // The shift count is masked to 5 bits (barrel shifter).
    assert_eq!(solutions(&mut m, "X is 1 << 33", 1), vec!["X = 2"]);
}
