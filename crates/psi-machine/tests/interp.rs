//! End-to-end interpreter tests: Prolog semantics on the simulated
//! PSI, plus sanity checks on the measured statistics.

use kl0::Program;
use psi_core::{PsiError, Resource};
use psi_machine::{Machine, MachineConfig};

fn machine(src: &str) -> Machine {
    let program = Program::parse(src).expect("parse");
    Machine::load(&program, MachineConfig::psi()).expect("load")
}

fn first(src: &str, goal: &str) -> Option<String> {
    let mut m = machine(src);
    let sols = m.solve(goal, 1).expect("solve");
    sols.first().map(|s| s.to_string())
}

fn all(src: &str, goal: &str, max: usize) -> Vec<String> {
    let mut m = machine(src);
    m.solve(goal, max)
        .expect("solve")
        .into_iter()
        .map(|s| s.to_string())
        .collect()
}

const APPEND: &str = "
app([], L, L).
app([H|T], L, [H|R]) :- app(T, L, R).
";

#[test]
fn facts_and_unification() {
    assert_eq!(first("p(1).", "p(X)"), Some("X = 1".into()));
    assert_eq!(first("p(1).", "p(2)"), None);
    assert_eq!(first("p(a, b).", "p(a, X)"), Some("X = b".into()));
    assert_eq!(
        first("p(f(g(1), h)).", "p(f(X, h))"),
        Some("X = g(1)".into())
    );
}

#[test]
fn append_forward_and_backward() {
    assert_eq!(
        first(APPEND, "app([1,2], [3,4], X)"),
        Some("X = [1,2,3,4]".into())
    );
    assert_eq!(
        first(APPEND, "app(X, [3], [1,2,3])"),
        Some("X = [1,2]".into())
    );
    // Nondeterministic splits.
    let splits = all(APPEND, "app(X, Y, [1,2])", 10);
    assert_eq!(
        splits,
        vec!["X = [], Y = [1,2]", "X = [1], Y = [2]", "X = [1,2], Y = []",]
    );
}

#[test]
fn naive_reverse() {
    let src = "
app([], L, L).
app([H|T], L, [H|R]) :- app(T, L, R).
nrev([], []).
nrev([H|T], R) :- nrev(T, RT), app(RT, [H], R).
";
    assert_eq!(
        first(src, "nrev([1,2,3,4,5], X)"),
        Some("X = [5,4,3,2,1]".into())
    );
}

#[test]
fn arithmetic_and_comparison() {
    assert_eq!(first("", "X is 3 + 4 * 2"), Some("X = 11".into()));
    assert_eq!(first("", "X is (3 + 4) * 2"), Some("X = 14".into()));
    assert_eq!(first("", "X is 10 // 3"), Some("X = 3".into()));
    assert_eq!(first("", "X is 10 mod 3"), Some("X = 1".into()));
    assert_eq!(first("", "X is -5 + 2"), Some("X = -3".into()));
    assert_eq!(first("", "3 < 4"), Some("true".into()));
    assert_eq!(first("", "4 < 3"), None);
    assert_eq!(first("", "2 + 2 =:= 4"), Some("true".into()));
    assert_eq!(first("", "2 + 2 =\\= 4"), None);
}

#[test]
fn fib_recursion() {
    let src = "
fib(0, 0).
fib(1, 1).
fib(N, F) :- N > 1, N1 is N - 1, N2 is N - 2, fib(N1, F1), fib(N2, F2),
             F is F1 + F2.
";
    assert_eq!(first(src, "fib(12, X)"), Some("X = 144".into()));
}

#[test]
fn cut_prunes_alternatives() {
    let src = "
max(X, Y, X) :- X >= Y, !.
max(_, Y, Y).
once(X) :- member(X, [1,2,3]), !.
member(X, [X|_]).
member(X, [_|T]) :- member(X, T).
";
    assert_eq!(first(src, "max(3, 5, M)"), Some("M = 5".into()));
    assert_eq!(first(src, "max(5, 3, M)"), Some("M = 5".into()));
    let sols = all(src, "once(X)", 10);
    assert_eq!(sols, vec!["X = 1"]);
}

#[test]
fn member_backtracking() {
    let src = "
member(X, [X|_]).
member(X, [_|T]) :- member(X, T).
";
    let sols = all(src, "member(X, [a,b,c])", 10);
    assert_eq!(sols, vec!["X = a", "X = b", "X = c"]);
    // Bounded solutions.
    let two = all(src, "member(X, [a,b,c])", 2);
    assert_eq!(two.len(), 2);
}

#[test]
fn if_then_else_and_negation() {
    let src = "
classify(X, neg) :- (X < 0 -> true ; fail).
classify(X, pos) :- \\+ X < 0.
";
    assert_eq!(first(src, "classify(-3, C)"), Some("C = neg".into()));
    assert_eq!(first(src, "classify(3, C)"), Some("C = pos".into()));
}

#[test]
fn disjunction() {
    let src = "color(X) :- (X = red ; X = blue).";
    let sols = all(src, "color(C)", 10);
    assert_eq!(sols, vec!["C = red", "C = blue"]);
}

#[test]
fn structure_copying_deep() {
    let src = "
mk(0, leaf).
mk(N, node(L, N, R)) :- N > 0, N1 is N - 1, mk(N1, L), mk(N1, R).
sum(leaf, 0).
sum(node(L, V, R), S) :- sum(L, SL), sum(R, SR), S is SL + V + SR.
";
    assert_eq!(first(src, "mk(3, T), sum(T, S)"), Some(
        "T = node(node(node(leaf,1,leaf),2,node(leaf,1,leaf)),3,node(node(leaf,1,leaf),2,node(leaf,1,leaf))), S = 11"
            .into(),
    ));
}

#[test]
fn type_test_builtins() {
    assert!(first("", "var(X)").is_some(), "unbound X is a variable");
    assert_eq!(first("", "X = 1, integer(X)"), Some("X = 1".into()));
    assert_eq!(first("", "atom(foo)"), Some("true".into()));
    assert_eq!(first("", "atom(1)"), None);
    assert_eq!(first("", "atomic([])"), Some("true".into()));
    assert!(first("", "nonvar(f(X))").is_some());
    assert_eq!(first("", "X = f(a), var(X)"), None);
}

#[test]
fn structural_equality() {
    assert!(first("", "f(X) == f(X)").is_some());
    assert_eq!(first("", "f(X) == f(Y)"), None);
    assert_eq!(first("", "f(a) \\== f(b)"), Some("true".into()));
    assert_eq!(first("", "X \\= X"), None);
    assert_eq!(first("", "f(a) \\= f(b)"), Some("true".into()));
}

#[test]
fn functor_and_arg() {
    assert_eq!(
        first("", "functor(f(a,b,c), N, A)"),
        Some("N = f, A = 3".into())
    );
    let s = first("", "functor(T, g, 2), arg(1, T, x)").unwrap();
    assert!(s.starts_with("T = g(x,"), "{s}");
    assert_eq!(first("", "arg(2, f(a,b), X)"), Some("X = b".into()));
    assert_eq!(first("", "arg(5, f(a,b), X)"), None);
}

#[test]
fn heap_vectors() {
    let goal = "vector(V, 4), vset(V, 0, 42), vset(V, 3, 9), vget(V, 0, A), vget(V, 3, B)";
    let s = first("", goal).unwrap();
    assert!(s.contains("A = 42"), "{s}");
    assert!(s.contains("B = 9"), "{s}");
    assert_eq!(first("", "vector(V, 2), vget(V, 5, X)"), None);
}

#[test]
fn write_builtin_captures_output() {
    let mut m = machine("greet :- write(hello), nl, write([1,2,3]).");
    m.solve("greet", 1).unwrap();
    assert_eq!(m.output(), "hello\n[1,2,3]");
}

#[test]
fn undefined_predicate_is_an_error() {
    let mut m = machine("p :- q.");
    match m.solve("p", 1) {
        Err(PsiError::UndefinedPredicate { name }) => assert_eq!(name, "q/0"),
        other => panic!("expected undefined predicate, got {other:?}"),
    }
}

#[test]
fn step_budget_is_enforced() {
    let program = Program::parse("loop :- loop.").unwrap();
    let mut config = MachineConfig::psi();
    config.limits.max_steps = Some(10_000);
    let mut m = Machine::load(&program, config).unwrap();
    match m.solve("loop", 1) {
        Err(PsiError::ResourceExhausted {
            resource: Resource::Steps,
            limit,
            consumed,
        }) => {
            assert_eq!(limit, 10_000);
            assert!(consumed > limit, "consumed {consumed} <= limit {limit}");
        }
        other => panic!("expected step exhaustion, got {other:?}"),
    }
}

/// Budgets meter each run separately: a second solve on the same
/// machine gets a fresh step allowance instead of inheriting the
/// consumption of the first.
#[test]
fn step_budget_is_per_run() {
    let program = Program::parse(APPEND).unwrap();
    let mut config = MachineConfig::psi();
    config.limits.max_steps = Some(100_000);
    let mut m = Machine::load(&program, config).unwrap();
    for _ in 0..8 {
        let sols = m.solve("app([1,2,3], [4], X)", 1).expect("within budget");
        assert_eq!(sols[0].to_string(), "X = [1,2,3,4]");
    }
}

#[test]
fn zero_solutions_requested_returns_immediately() {
    let mut m = machine(APPEND);
    let before = m.stats();
    let sols = m.solve("app([1,2], [3], X)", 0).expect("no-op solve");
    assert!(sols.is_empty());
    assert_eq!(
        m.stats().steps,
        before.steps,
        "a zero-solution request must charge zero microsteps"
    );
    // Still a syntax check: a malformed goal errors even with 0.
    assert!(m.solve("app([1,", 0).is_err());
    // And the machine is untouched: a real solve still works.
    let sols = m.solve("app([1], [2], X)", 1).expect("solve");
    assert_eq!(sols[0].to_string(), "X = [1,2]");
}

#[test]
fn eight_queens_first_solution() {
    let src = "
queens(N, Qs) :- range(1, N, Ns), place(Ns, [], Qs).
range(L, H, [L|T]) :- L < H, L1 is L + 1, range(L1, H, T).
range(H, H, [H]).
place([], Qs, Qs).
place(Un, Placed, Qs) :-
    select(Q, Un, Rest), safe(Q, 1, Placed), place(Rest, [Q|Placed], Qs).
select(X, [X|T], T).
select(X, [H|T], [H|R]) :- select(X, T, R).
safe(_, _, []).
safe(Q, D, [P|Ps]) :-
    Q =\\= P + D, Q =\\= P - D, D1 is D + 1, safe(Q, D1, Ps).
";
    let mut m = machine(src);
    let sols = m.solve("queens(6, Qs)", 1).unwrap();
    assert_eq!(sols.len(), 1);
    // Verify it is a valid placement (a permutation of 1..6).
    let s = sols[0].to_string();
    for d in 1..=6 {
        assert!(s.contains(&d.to_string()), "{s}");
    }
}

#[test]
fn multiple_queries_on_one_machine() {
    let mut m = machine(APPEND);
    let a = m.solve("app([1], [2], X)", 1).unwrap();
    assert_eq!(a[0].to_string(), "X = [1,2]");
    let b = m.solve("app([9], [8], Y)", 1).unwrap();
    assert_eq!(b[0].to_string(), "Y = [9,8]");
}

#[test]
fn stats_are_consistent() {
    let mut m = machine(APPEND);
    m.solve("app([1,2,3,4,5,6,7,8], [9], X)", 1).unwrap();
    let s = m.stats();
    assert!(s.steps > 100, "steps = {}", s.steps);
    assert_eq!(s.modules.total(), s.steps);
    assert_eq!(s.branches.total(), s.steps);
    assert!(s.time_ns >= s.steps * 200);
    assert!(s.user_calls >= 9, "one call per list element");
    // Table invariants.
    let mod_sum: f64 = s.modules.percentages().iter().sum();
    assert!((mod_sum - 100.0).abs() < 1e-6);
    let br_sum: f64 = s.branches.percentages().iter().sum();
    assert!((br_sum - 100.0).abs() < 1e-6);
    // Roughly one in five steps issues a cache command (§4.2 finds
    // 16-23%); allow a generous band.
    let rate = s.memory_access_rate_pct();
    assert!(rate > 8.0 && rate < 45.0, "access rate {rate}");
}

#[test]
fn deterministic_recursion_stays_in_frame_buffers() {
    // Tail-recursive deterministic code: with TRO + frame buffering,
    // local stack traffic should be rare.
    let src = "
count(0).
count(N) :- N > 0, N1 is N - 1, count(N1).
";
    let mut m = machine(src);
    m.solve("count(200)", 1).unwrap();
    let s = m.stats();
    let local = s.cache.area(psi_core::Area::LocalStack).accesses();
    let total = s.cache.total().accesses();
    assert!(
        (local as f64) < (total as f64) * 0.40,
        "local {local} of {total}"
    );
}

#[test]
fn trail_restores_bindings_across_backtracking() {
    let src = "
p(X, Y) :- q(X), r(X, Y).
q(1).
q(2).
r(2, found).
";
    // q(1) binds X=1, r(1, Y) fails, backtracking must unbind X.
    assert_eq!(first(src, "p(X, Y)"), Some("X = 2, Y = found".into()));
}

#[test]
fn deep_backtracking_search() {
    let src = "
color(r). color(g). color(b).
ok(A, B) :- color(A), color(B), A \\== B.
all4(A, B, C, D) :-
    ok(A, B), ok(B, C), ok(C, D), ok(D, A).
";
    // Proper 3-colorings of a 4-cycle: 3 * 2 * 2 * ... = 18 in total.
    let sols = all(src, "all4(A, B, C, D)", 100);
    assert_eq!(sols.len(), 18);
    for s in &sols {
        let vals: Vec<&str> = s.split(", ").map(|b| &b[4..]).collect();
        assert_ne!(vals[0], vals[1], "{s}");
        assert_ne!(vals[1], vals[2], "{s}");
        assert_ne!(vals[2], vals[3], "{s}");
        assert_ne!(vals[3], vals[0], "{s}");
    }
    // The 4-clique variant needs four colors, so three must fail.
    let clique = all(src, "all4(A, B, C, D), A \\== C, B \\== D", 100);
    assert!(clique.is_empty());
}

#[test]
fn background_process_yield() {
    let src = "
tick(0).
tick(N) :- N > 0, yield, N1 is N - 1, tick(N1).
main(X) :- yield, yield, X = done.
";
    let mut m = machine(src);
    let sols = m.run_session("main(X)", &["tick(5)"]).unwrap();
    assert_eq!(sols[0].to_string(), "X = done");
}

#[test]
fn packed_arguments_execute_correctly() {
    // q(X, 3, []) packs all three args; verify values arrive intact.
    let src = "
p(R) :- q(R, 3, []).
q(X, Y, Z) :- R is Y + 1, X = f(R, Z).
";
    assert_eq!(first(src, "p(V)"), Some("V = f(4,[])".into()));
}

#[test]
fn uncached_machine_runs_slower() {
    let program = Program::parse(APPEND).unwrap();
    let mut cached = Machine::load(&program, MachineConfig::psi()).unwrap();
    let mut uncached = Machine::load(&program, MachineConfig::psi_uncached()).unwrap();
    cached
        .solve("app([1,2,3,4,5,6,7,8,9,10], [11], X)", 1)
        .unwrap();
    uncached
        .solve("app([1,2,3,4,5,6,7,8,9,10], [11], X)", 1)
        .unwrap();
    let tc = cached.stats();
    let tn = uncached.stats();
    assert_eq!(tc.steps, tn.steps, "same computation");
    assert!(tn.time_ns > tc.time_ns, "cache must help");
}

#[test]
fn trace_collection_works() {
    let program = Program::parse(APPEND).unwrap();
    let mut config = MachineConfig::psi();
    config.trace_memory = true;
    let mut m = Machine::load(&program, config).unwrap();
    m.solve("app([1,2], [3], X)", 1).unwrap();
    let trace = m.take_trace();
    assert!(!trace.is_empty());
    let accesses = m.stats().cache.total().accesses();
    assert_eq!(trace.len() as u64, accesses);
}
