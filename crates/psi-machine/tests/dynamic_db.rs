//! Dynamic clause database: `assert/1`, `asserta/1`, `retract/1`,
//! their interaction with the first-argument clause index, and the
//! extended arithmetic evaluation they ride in with.

use kl0::Program;
use psi_core::PsiError;
use psi_machine::{Machine, MachineConfig};

fn machine(src: &str) -> Machine {
    let program = Program::parse(src).expect("parse");
    Machine::load(&program, MachineConfig::psi()).expect("load")
}

fn indexed_machine(src: &str) -> Machine {
    let program = Program::parse(src).expect("parse");
    let mut config = MachineConfig::psi();
    config.clause_indexing = true;
    Machine::load(&program, config).expect("load")
}

fn solutions(m: &mut Machine, goal: &str, max: usize) -> Vec<String> {
    m.solve(goal, max)
        .expect("solve")
        .into_iter()
        .map(|s| s.to_string())
        .collect()
}

#[test]
fn assert_appends_clauses_in_order() {
    let mut m = machine("seed(0).");
    assert_eq!(
        solutions(
            &mut m,
            "assert(item(1)), assert(item(2)), assert(item(3))",
            1
        ),
        vec!["true"]
    );
    assert_eq!(
        solutions(&mut m, "item(X)", 10),
        vec!["X = 1", "X = 2", "X = 3"]
    );
}

#[test]
fn asserta_prepends_clauses() {
    let mut m = machine("seed(0).");
    assert_eq!(
        solutions(
            &mut m,
            "asserta(item(1)), asserta(item(2)), asserta(item(3))",
            1
        ),
        vec!["true"]
    );
    assert_eq!(
        solutions(&mut m, "item(X)", 10),
        vec!["X = 3", "X = 2", "X = 1"]
    );
}

#[test]
fn assert_rule_with_body_executes() {
    let mut m = machine("base(10). base(20).");
    assert_eq!(
        solutions(
            &mut m,
            "assert((double(_X, _Y) :- base(_X), _Y is _X * 2))",
            1
        ),
        vec!["true"]
    );
    assert_eq!(
        solutions(&mut m, "double(A, B)", 10),
        vec!["A = 10, B = 20", "A = 20, B = 40"]
    );
}

#[test]
fn assert_copies_unbound_variables_fresh() {
    let mut m = machine("seed(0).");
    // The asserted clause gets a fresh variable, not a link to _X.
    assert_eq!(solutions(&mut m, "assert(pair(_X, _X))", 1), vec!["true"]);
    assert_eq!(solutions(&mut m, "pair(7, Y)", 5), vec!["Y = 7"]);
    assert_eq!(solutions(&mut m, "pair(8, Z)", 5), vec!["Z = 8"]);
}

#[test]
fn retract_removes_first_matching_fact_and_binds() {
    let mut m = machine("item(1). item(2). item(3).");
    assert_eq!(solutions(&mut m, "retract(item(X))", 5), vec!["X = 1"]);
    assert_eq!(solutions(&mut m, "item(Y)", 10), vec!["Y = 2", "Y = 3"]);
    assert_eq!(solutions(&mut m, "retract(item(3))", 5), vec!["true"]);
    assert_eq!(solutions(&mut m, "item(Y)", 10), vec!["Y = 2"]);
}

#[test]
fn retract_head_only_skips_bodied_clauses() {
    let mut m = machine("p(1) :- fail. p(2).");
    // retract(p(X)) abbreviates retract((p(X) :- true)): only the
    // fact matches.
    assert_eq!(solutions(&mut m, "retract(p(X))", 5), vec!["X = 2"]);
    // The bodied clause is still there (and fails).
    assert_eq!(solutions(&mut m, "p(Y)", 10), Vec::<String>::new());
}

#[test]
fn retract_with_body_template_matches_rules() {
    let mut m = machine("p(1) :- fail. p(2).");
    assert_eq!(
        solutions(&mut m, "retract((p(X) :- fail))", 5),
        vec!["X = 1"]
    );
    assert_eq!(solutions(&mut m, "p(Y)", 10), vec!["Y = 2"]);
}

#[test]
fn retract_fails_when_nothing_matches() {
    let mut m = machine("item(1).");
    assert_eq!(
        solutions(&mut m, "retract(item(2))", 5),
        Vec::<String>::new()
    );
    assert_eq!(
        solutions(&mut m, "retract(missing(1))", 5),
        Vec::<String>::new()
    );
    // The failed retracts disturbed nothing.
    assert_eq!(solutions(&mut m, "item(X)", 5), vec!["X = 1"]);
}

#[test]
fn fully_retracted_dynamic_predicate_fails_instead_of_erroring() {
    let mut m = machine("seed(0).");
    assert_eq!(
        solutions(&mut m, "assert(item(1)), retract(item(1))", 1),
        vec!["true"]
    );
    assert_eq!(solutions(&mut m, "item(X)", 5), Vec::<String>::new());
    // Negation-as-failure over the emptied predicate.
    assert_eq!(solutions(&mut m, "\\+ item(_)", 1), vec!["true"]);
    // A never-asserted predicate is still an undefined-predicate error.
    assert!(matches!(
        m.solve("ghost(X)", 1),
        Err(PsiError::UndefinedPredicate { .. })
    ));
}

#[test]
fn assert_retract_churn_loop() {
    let mut m = machine(
        "churn(0).
         churn(N) :- N > 0, assert(item(N)), retract(item(N)), M is N - 1, churn(M).",
    );
    assert_eq!(solutions(&mut m, "churn(25), \\+ item(_)", 1), vec!["true"]);
}

#[test]
fn retracted_var_headed_clause_is_unreachable_via_every_key() {
    // Regression: under clause_indexing a var-headed clause joins
    // every bucket plus var_only; retract must remove it from all of
    // them, not just the bucket that found it.
    let src = "p(a). p(X) :- q(X). p(b). q(c). q(a).";
    for cfg in [machine(src), indexed_machine(src)] {
        let mut m = cfg;
        assert_eq!(
            solutions(&mut m, "retract((p(_X) :- q(_X)))", 5),
            vec!["true"]
        );
        // Matched constant buckets no longer reach the var clause.
        assert_eq!(solutions(&mut m, "p(a)", 5), vec!["true"]);
        assert_eq!(solutions(&mut m, "p(b)", 5), vec!["true"]);
        // An unmatched key used to fall back to var_only — now empty.
        assert_eq!(solutions(&mut m, "p(c)", 5), Vec::<String>::new());
        // Enumeration sees exactly the two remaining facts.
        assert_eq!(solutions(&mut m, "p(Y)", 10), vec!["Y = a", "Y = b"]);
    }
}

#[test]
fn retract_under_live_choice_point_is_safe() {
    // A choice point over item/1 is live while retract shrinks the
    // clause list (and, on the indexed profile, its buckets). The
    // stale choice point must degrade into plain failure, never a
    // panic or a wrong clause.
    let src = "item(1). item(2). item(3).";
    for cfg in [machine(src), indexed_machine(src)] {
        let mut m = cfg;
        let sols = solutions(&mut m, "item(X), retract(item(3)), X > 1", 10);
        // X=1: retract(3) succeeds once, X>1 fails; X=2: retract(3)
        // now fails (already gone) -> backtrack; X=3's clause was
        // retracted while the choice point was live.
        assert_eq!(sols, Vec::<String>::new());
        assert_eq!(solutions(&mut m, "item(Y)", 10), vec!["Y = 1", "Y = 2"]);
    }
}

#[test]
fn asserted_clauses_join_the_clause_index() {
    let mut m = indexed_machine("p(a, 1).");
    assert_eq!(
        solutions(
            &mut m,
            "assert(p(b, 2)), assert(p(a, 3)), asserta(p(b, 0))",
            1
        ),
        vec!["true"]
    );
    assert_eq!(solutions(&mut m, "p(b, N)", 10), vec!["N = 0", "N = 2"]);
    assert_eq!(solutions(&mut m, "p(a, N)", 10), vec!["N = 1", "N = 3"]);
    assert_eq!(
        solutions(&mut m, "p(K, N), N > 1", 10),
        vec!["K = b, N = 2", "K = a, N = 3"]
    );
}

#[test]
fn extended_arithmetic_operators_evaluate() {
    let mut m = machine("seed(0).");
    assert_eq!(solutions(&mut m, "X is 7 / 2", 1), vec!["X = 3"]);
    assert_eq!(solutions(&mut m, "X is -7 rem 2", 1), vec!["X = -1"]);
    assert_eq!(solutions(&mut m, "X is -7 mod 2", 1), vec!["X = 1"]);
    assert_eq!(solutions(&mut m, "X is 3 << 4", 1), vec!["X = 48"]);
    assert_eq!(solutions(&mut m, "X is 48 >> 2", 1), vec!["X = 12"]);
    assert_eq!(solutions(&mut m, "X is 12 /\\ 10", 1), vec!["X = 8"]);
    assert_eq!(solutions(&mut m, "X is 12 \\/ 10", 1), vec!["X = 14"]);
    assert_eq!(solutions(&mut m, "X is 12 xor 10", 1), vec!["X = 6"]);
    assert_eq!(
        solutions(&mut m, "X is (1 << 10) + 7 // 2 - 5 xor 3", 1),
        vec![format!("X = {}", ((1i32 << 10) + 7 / 2 - 5) ^ 3)]
    );
    assert!(matches!(
        m.solve("X is 1 rem 0", 1),
        Err(PsiError::EvalError { .. })
    ));
    assert!(matches!(
        m.solve("X is 1 / 0", 1),
        Err(PsiError::EvalError { .. })
    ));
}

#[test]
fn assert_charges_microsteps() {
    let mut m = machine("seed(0).");
    let before = m.stats().steps;
    m.solve("assert(fact(1))", 1).expect("solve");
    let mid = m.stats().steps;
    assert!(mid > before, "assert charges steps");
    m.solve("seed(X)", 1).expect("solve");
    let after = m.stats().steps;
    assert!(after > mid);
}

#[test]
fn retract_on_builtin_is_a_type_error() {
    let mut m = machine("seed(0).");
    assert!(matches!(
        m.solve("retract(true)", 1),
        Err(PsiError::TypeError { .. })
    ));
    assert!(matches!(
        m.solve("assert(X)", 1),
        Err(PsiError::Compile { .. })
    ));
}

#[test]
fn dynamic_database_is_lane_invariant() {
    let goal = "churn(12), assert(left(over)), retract(left(over)), \\+ left(_), \
                X is (5 << 3) xor 9, item(Y)";
    let src = "churn(0) :- assert(item(done)).
               churn(N) :- N > 0, assert(item(N)), retract(item(N)), M is N - 1, churn(M).";
    // Solutions must agree across all six cells; step counts must
    // agree across lanes *within* an indexing profile (indexing
    // itself legitimately changes the step count).
    let mut ref_sols: Option<Vec<String>> = None;
    let mut ref_steps: [Option<u64>; 2] = [None, None];
    for (lane, config) in [
        ("fidelity", MachineConfig::psi()),
        ("throughput", MachineConfig::psi_throughput()),
        ("compiled", MachineConfig::psi_compiled()),
    ] {
        for indexing in [false, true] {
            let mut config = config.clone();
            config.clause_indexing = indexing;
            let program = Program::parse(src).expect("parse");
            let mut m = Machine::load(&program, config).expect("load");
            let sols: Vec<String> = m
                .solve(goal, 10)
                .expect("solve")
                .into_iter()
                .map(|s| s.to_string())
                .collect();
            let steps = m.stats().steps;
            match &ref_sols {
                None => ref_sols = Some(sols),
                Some(r) => assert_eq!(&sols, r, "{lane}/indexing={indexing} solutions"),
            }
            match ref_steps[indexing as usize] {
                None => ref_steps[indexing as usize] = Some(steps),
                Some(r) => assert_eq!(steps, r, "{lane}/indexing={indexing} steps"),
            }
        }
    }
}
