//! The work file (WF): the PSI's 1K-word multi-function register file.
//!
//! §2.2: the WF holds the interpreter's registers, a 64-word constant
//! area, and a *pair of frame buffers* which cache the local variables
//! of the current execution so that, under tail recursion
//! optimization, "local stack accesses are reduced into the work file
//! access". Every microinstruction can address the WF from three
//! fields — Source 1 (ALU input 1), Source 2 (ALU input 2, dual-port
//! area only) and Destination (ALU output) — in seven addressing
//! modes. Table 6 of the paper is the dynamic frequency of those
//! modes, which [`WfStats`] accumulates.

use psi_core::Word;
use std::fmt;

/// Total WF capacity in words.
pub const WF_WORDS: usize = 1024;
/// Word offsets of the two 64-word local frame buffers.
pub const FRAME_BUFFER_BASE: [u32; 2] = [0x40, 0x80];
/// Size of each frame buffer in words.
pub const FRAME_BUFFER_WORDS: u32 = 64;
/// Base of the trail buffer addressed through WFAR2.
pub const TRAIL_BUFFER_BASE: u32 = 0xC0;
/// Base of the 64-word constant area (last 64 words, §2.2).
pub const CONSTANT_BASE: u32 = 0x3C0;

/// A WF addressing mode (Table 6 rows).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum WfMode {
    /// (1) Direct access to WF00–0F, the dual-port first 16 words.
    Direct00 = 0,
    /// (2) Direct access to WF10–3F.
    Direct10 = 1,
    /// (3) The constant storage area.
    Constant = 2,
    /// (4) Base-relative through the low 5 bits of PDR or CDR.
    BasePdrCdr = 3,
    /// (5) Indirect through WFAR1 (with auto increment/decrement);
    /// used for the local frame buffer.
    IndWfar1 = 4,
    /// (6) Indirect through WFAR2; used for the trail buffer.
    IndWfar2 = 5,
    /// (7) Base-relative through WFCBR (general purpose).
    BaseWfcbr = 6,
}

impl WfMode {
    /// All modes in Table 6 row order.
    pub const ALL: [WfMode; 7] = [
        WfMode::Direct00,
        WfMode::Direct10,
        WfMode::Constant,
        WfMode::BasePdrCdr,
        WfMode::IndWfar1,
        WfMode::IndWfar2,
        WfMode::BaseWfcbr,
    ];

    /// Dense index.
    pub fn index(self) -> usize {
        self as usize
    }

    /// Table 6 row label.
    pub fn label(self) -> &'static str {
        match self {
            WfMode::Direct00 => "WF00-0F",
            WfMode::Direct10 => "WF10-3F",
            WfMode::Constant => "constant",
            WfMode::BasePdrCdr => "@PDR/CDR",
            WfMode::IndWfar1 => "@WFAR1",
            WfMode::IndWfar2 => "@WFAR2",
            WfMode::BaseWfcbr => "@WFCBR",
        }
    }

    /// Is this one of the three direct addressing variants? The paper
    /// finds these cover 90%+ of accesses.
    pub fn is_direct(self) -> bool {
        matches!(self, WfMode::Direct00 | WfMode::Direct10 | WfMode::Constant)
    }
}

impl fmt::Display for WfMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Which microinstruction field performed the access (Table 6
/// columns).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum WfField {
    /// Source 1 — controls ALU input 1; all seven modes available.
    Source1 = 0,
    /// Source 2 — controls ALU input 2; restricted to the dual-port
    /// WF00–0F area.
    Source2 = 1,
    /// Destination — controls the ALU output bus.
    Destination = 2,
}

impl WfField {
    /// All fields in Table 6 column order.
    pub const ALL: [WfField; 3] = [WfField::Source1, WfField::Source2, WfField::Destination];

    /// Dense index.
    pub fn index(self) -> usize {
        self as usize
    }

    /// Table 6 column label.
    pub fn label(self) -> &'static str {
        match self {
            WfField::Source1 => "source 1",
            WfField::Source2 => "source 2",
            WfField::Destination => "destination",
        }
    }
}

/// Dynamic frequency of WF access modes per field (Table 6).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WfStats {
    counts: [[u64; 7]; 3],
    wfar1_auto: u64,
    wfar1_manual: u64,
}

impl WfStats {
    /// Accesses by `field` in `mode`.
    pub fn count(&self, field: WfField, mode: WfMode) -> u64 {
        self.counts[field.index()][mode.index()]
    }

    /// Total accesses by `field`.
    pub fn field_total(&self, field: WfField) -> u64 {
        self.counts[field.index()].iter().sum()
    }

    /// Total WF accesses over all fields.
    pub fn total(&self) -> u64 {
        WfField::ALL.iter().map(|f| self.field_total(*f)).sum()
    }

    /// Mode share within a field, percent (the `†` figures of
    /// Table 6).
    pub fn mode_share_pct(&self, field: WfField, mode: WfMode) -> f64 {
        let t = self.field_total(field).max(1) as f64;
        self.count(field, mode) as f64 * 100.0 / t
    }

    /// Field access rate against a step count, percent (the `‡`
    /// figures of Table 6).
    pub fn field_rate_pct(&self, field: WfField, steps: u64) -> f64 {
        self.field_total(field) as f64 * 100.0 / steps.max(1) as f64
    }

    /// Share of all accesses using the directly addressable areas and
    /// the frame buffers (the paper reports > 99%).
    pub fn coverage_direct_and_buffers_pct(&self) -> f64 {
        let t = self.total().max(1) as f64;
        let covered: u64 = WfField::ALL
            .iter()
            .flat_map(|f| {
                WfMode::ALL
                    .iter()
                    .filter(|m| {
                        m.is_direct() || **m == WfMode::IndWfar1 || **m == WfMode::BasePdrCdr
                    })
                    .map(move |m| self.count(*f, *m))
            })
            .sum();
        covered as f64 * 100.0 / t
    }

    /// Share of WFAR1 indirect accesses that used auto
    /// increment/decrement (the paper reports ≥ 90%).
    pub fn wfar1_auto_share_pct(&self) -> f64 {
        let t = (self.wfar1_auto + self.wfar1_manual).max(1) as f64;
        self.wfar1_auto as f64 * 100.0 / t
    }

    fn record(&mut self, field: WfField, mode: WfMode) {
        self.counts[field.index()][mode.index()] += 1;
    }

    /// Merges another run's statistics.
    pub fn merge(&mut self, other: &WfStats) {
        for f in 0..3 {
            for m in 0..7 {
                self.counts[f][m] += other.counts[f][m];
            }
        }
        self.wfar1_auto += other.wfar1_auto;
        self.wfar1_manual += other.wfar1_manual;
    }
}

/// The work file: 1K words of storage plus access statistics.
///
/// The interpreter reads and writes registers, constants, the frame
/// buffers and the trail buffer through the typed accessors, each of
/// which records the (field, mode) pair for Table 6.
#[derive(Debug, Clone)]
pub struct WorkFile {
    words: Vec<Word>,
    stats: WfStats,
    /// Fidelity lane: record every (field, mode) access for Table 6.
    /// The throughput lane clears this once at load — the reference
    /// counters are pure measurement (storage semantics are
    /// unaffected), so skipping them cannot change solutions, steps
    /// or module tallies.
    measured: bool,
}

impl WorkFile {
    /// Creates a zeroed work file (fidelity lane by default).
    pub fn new() -> WorkFile {
        WorkFile {
            words: vec![Word::undef(); WF_WORDS],
            stats: WfStats::default(),
            measured: true,
        }
    }

    /// Selects the measurement lane (see [`psi_core::Measurement`]):
    /// `Full` records Table 6 reference counts, `Off` skips them.
    pub fn set_measurement(&mut self, lane: psi_core::Measurement) {
        self.measured = lane.is_full();
    }

    /// The accumulated statistics.
    pub fn stats(&self) -> &WfStats {
        &self.stats
    }

    /// Resets statistics (not contents).
    pub fn reset_stats(&mut self) {
        self.stats = WfStats::default();
    }

    /// Merge-friendly access to statistics for process aggregation.
    pub fn stats_mut(&mut self) -> &mut WfStats {
        &mut self.stats
    }

    /// Records a register read (no storage semantics needed — the
    /// interpreter's registers live in machine state; only the access
    /// pattern matters).
    #[inline]
    pub fn touch_read(&mut self, field: WfField, mode: WfMode) {
        if self.measured {
            self.stats.record(field, mode);
        }
    }

    /// Records a register write.
    #[inline]
    pub fn touch_write(&mut self, mode: WfMode) {
        if self.measured {
            self.stats.record(WfField::Destination, mode);
        }
    }

    /// Reads a frame-buffer word through WFAR1 (or PDR/CDR
    /// base-relative when `base_relative`).
    pub fn read_buffer(
        &mut self,
        buffer: usize,
        slot: u32,
        base_relative: bool,
        auto_increment: bool,
    ) -> Word {
        if self.measured {
            let mode = if base_relative {
                WfMode::BasePdrCdr
            } else {
                WfMode::IndWfar1
            };
            self.stats.record(WfField::Source1, mode);
            if mode == WfMode::IndWfar1 {
                if auto_increment {
                    self.stats.wfar1_auto += 1;
                } else {
                    self.stats.wfar1_manual += 1;
                }
            }
        }
        self.words[(FRAME_BUFFER_BASE[buffer] + slot) as usize]
    }

    /// Writes a frame-buffer word through WFAR1 (or PDR/CDR
    /// base-relative).
    pub fn write_buffer(
        &mut self,
        buffer: usize,
        slot: u32,
        word: Word,
        base_relative: bool,
        auto_increment: bool,
    ) {
        if self.measured {
            let mode = if base_relative {
                WfMode::BasePdrCdr
            } else {
                WfMode::IndWfar1
            };
            self.stats.record(WfField::Destination, mode);
            if mode == WfMode::IndWfar1 {
                if auto_increment {
                    self.stats.wfar1_auto += 1;
                } else {
                    self.stats.wfar1_manual += 1;
                }
            }
        }
        self.words[(FRAME_BUFFER_BASE[buffer] + slot) as usize] = word;
    }

    /// Records a trail-buffer access through WFAR2.
    #[inline]
    pub fn touch_trail_buffer(&mut self, write: bool) {
        if !self.measured {
            return;
        }
        if write {
            self.stats.record(WfField::Destination, WfMode::IndWfar2);
        } else {
            self.stats.record(WfField::Source1, WfMode::IndWfar2);
        }
    }

    /// Records a general-purpose WFCBR base-relative access.
    #[inline]
    pub fn touch_wfcbr(&mut self) {
        if self.measured {
            self.stats.record(WfField::Source1, WfMode::BaseWfcbr);
        }
    }
}

impl Default for WorkFile {
    fn default() -> WorkFile {
        WorkFile::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use psi_core::Word;

    #[test]
    fn buffer_storage_roundtrip() {
        let mut wf = WorkFile::new();
        wf.write_buffer(0, 3, Word::int(7), false, true);
        wf.write_buffer(1, 3, Word::int(8), false, true);
        assert_eq!(wf.read_buffer(0, 3, false, true).int_value(), Some(7));
        assert_eq!(wf.read_buffer(1, 3, false, true).int_value(), Some(8));
    }

    #[test]
    fn stats_track_fields_and_modes() {
        let mut wf = WorkFile::new();
        wf.touch_read(WfField::Source1, WfMode::Direct10);
        wf.touch_read(WfField::Source1, WfMode::Constant);
        wf.touch_read(WfField::Source2, WfMode::Direct00);
        wf.touch_write(WfMode::Direct10);
        wf.read_buffer(0, 0, false, true);
        let s = wf.stats();
        assert_eq!(s.field_total(WfField::Source1), 3);
        assert_eq!(s.field_total(WfField::Source2), 1);
        assert_eq!(s.field_total(WfField::Destination), 1);
        assert_eq!(s.count(WfField::Source1, WfMode::IndWfar1), 1);
        assert_eq!(s.total(), 5);
    }

    #[test]
    fn mode_share_and_rates() {
        let mut wf = WorkFile::new();
        for _ in 0..3 {
            wf.touch_read(WfField::Source1, WfMode::Direct10);
        }
        wf.touch_read(WfField::Source1, WfMode::Constant);
        let s = wf.stats();
        assert!((s.mode_share_pct(WfField::Source1, WfMode::Direct10) - 75.0).abs() < 1e-9);
        assert!((s.field_rate_pct(WfField::Source1, 8) - 50.0).abs() < 1e-9);
    }

    #[test]
    fn wfar1_auto_share() {
        let mut wf = WorkFile::new();
        for _ in 0..9 {
            wf.read_buffer(0, 0, false, true);
        }
        wf.read_buffer(0, 0, false, false);
        assert!((wf.stats().wfar1_auto_share_pct() - 90.0).abs() < 1e-9);
    }

    #[test]
    fn coverage_counts_direct_and_buffer_modes() {
        let mut wf = WorkFile::new();
        wf.touch_read(WfField::Source1, WfMode::Direct00);
        wf.read_buffer(0, 0, false, true);
        wf.touch_trail_buffer(true); // not covered
        let cov = wf.stats().coverage_direct_and_buffers_pct();
        assert!((cov - 200.0 / 3.0).abs() < 1e-6, "cov = {cov}");
    }
}
