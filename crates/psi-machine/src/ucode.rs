//! Microinstruction step accounting.
//!
//! The PSI interpreter is a microprogram; the paper's measurements are
//! all phrased in *microinstruction execution steps*. Every primitive
//! operation of our simulated interpreter charges steps through
//! [`MicroTally`], attributing each step to:
//!
//! * an interpreter **module** (Table 2: control / unify / trail /
//!   get_arg / cut / built),
//! * one of the 16 **branch-field operations** (Table 7),
//! * whether the step also performed **data manipulation** (§4.4
//!   reports ≈50% of branching steps manipulate data).

use std::fmt;

/// The component modules of the firmware interpreter (Table 2
/// columns).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum InterpModule {
    /// Call/return management, frame handling, clause selection.
    Control = 0,
    /// Head unification and structure copying.
    Unify = 1,
    /// Trail pushes and trail unwinding.
    Trail = 2,
    /// Fetching and decoding arguments for built-in predicates.
    GetArg = 3,
    /// Cut processing.
    Cut = 4,
    /// Built-in predicate bodies.
    Builtin = 5,
}

impl InterpModule {
    /// All modules, in Table 2 column order.
    pub const ALL: [InterpModule; 6] = [
        InterpModule::Control,
        InterpModule::Unify,
        InterpModule::Trail,
        InterpModule::GetArg,
        InterpModule::Cut,
        InterpModule::Builtin,
    ];

    /// Dense index.
    pub fn index(self) -> usize {
        self as usize
    }

    /// Table 2 column label.
    pub fn label(self) -> &'static str {
        match self {
            InterpModule::Control => "control",
            InterpModule::Unify => "unify",
            InterpModule::Trail => "trail",
            InterpModule::GetArg => "get_arg",
            InterpModule::Cut => "cut",
            InterpModule::Builtin => "built",
        }
    }
}

impl fmt::Display for InterpModule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// The 16 branch-field operations of Table 7, three instruction
/// types (§4.4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum BranchOp {
    /// (1) Type 1, no operation.
    Nop1 = 0,
    /// (2) `if (cond) then`.
    IfCond = 1,
    /// (3) `if (not(cond)) then`.
    IfNotCond = 2,
    /// (4) `if tag(src2) then` — compare against a given tag value.
    IfTag = 3,
    /// (5) `case (tag(n, P/CDR))` — the tag-dispatch multi-way branch.
    CaseTag = 4,
    /// (6) `case (irn)` — multi-way branch on a packed operand's 3-bit
    /// tag.
    CaseIrn = 5,
    /// (7) `case (ir-opcode)` — dispatch on an instruction opcode.
    CaseOpcode = 6,
    /// (8) Type 1 `goto`.
    Goto1 = 7,
    /// (9) `gosub` — microsubroutine call.
    Gosub = 8,
    /// (10) `return` from microsubroutine.
    Return = 9,
    /// (11) `load-jr` — load the jump register (used as loop counter).
    LoadJr = 10,
    /// (12) `goto @jr` — indirect branch through JR.
    GotoJr1 = 11,
    /// (13) Type 2, no operation.
    Nop2 = 12,
    /// (14) Type 2 `goto`.
    Goto2 = 13,
    /// (15) Type 3, no operation.
    Nop3 = 14,
    /// (16) Type 3 `goto @jr`.
    GotoJr3 = 15,
}

impl BranchOp {
    /// All operations in Table 7 row order.
    pub const ALL: [BranchOp; 16] = [
        BranchOp::Nop1,
        BranchOp::IfCond,
        BranchOp::IfNotCond,
        BranchOp::IfTag,
        BranchOp::CaseTag,
        BranchOp::CaseIrn,
        BranchOp::CaseOpcode,
        BranchOp::Goto1,
        BranchOp::Gosub,
        BranchOp::Return,
        BranchOp::LoadJr,
        BranchOp::GotoJr1,
        BranchOp::Nop2,
        BranchOp::Goto2,
        BranchOp::Nop3,
        BranchOp::GotoJr3,
    ];

    /// Dense index (Table 7 row number minus one).
    pub fn index(self) -> usize {
        self as usize
    }

    /// Is this one of the three no-operation rows?
    pub fn is_nop(self) -> bool {
        matches!(self, BranchOp::Nop1 | BranchOp::Nop2 | BranchOp::Nop3)
    }

    /// Table 7 row label.
    pub fn label(self) -> &'static str {
        match self {
            BranchOp::Nop1 => "no operation (t1)",
            BranchOp::IfCond => "if (cond) then",
            BranchOp::IfNotCond => "if (not(cond)) then",
            BranchOp::IfTag => "if tag(src2) then",
            BranchOp::CaseTag => "case (tag(n,P/CDR))",
            BranchOp::CaseIrn => "case (irn)",
            BranchOp::CaseOpcode => "case (ir-opcode)",
            BranchOp::Goto1 => "goto (t1)",
            BranchOp::Gosub => "gosub",
            BranchOp::Return => "return",
            BranchOp::LoadJr => "load-jr",
            BranchOp::GotoJr1 => "goto @jr (t1)",
            BranchOp::Nop2 => "no operation (t2)",
            BranchOp::Goto2 => "goto (t2)",
            BranchOp::Nop3 => "no operation (t3)",
            BranchOp::GotoJr3 => "goto @jr (t3)",
        }
    }
}

impl fmt::Display for BranchOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

// ------------------------------------------------------------------
// predecoded dispatch ops (throughput lane)
// ------------------------------------------------------------------

/// What a dispatched code word does, extracted once by the predecode
/// cache (see [`DecodedOp`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum OpKind {
    /// Sentinel: this code word has not been dispatched yet.
    NotDecoded = 0,
    /// A user-predicate call (`Tag::Goal`).
    UserGoal = 1,
    /// A built-in call (`Tag::BuiltinGoal`).
    BuiltinGoal = 2,
    /// A cut (`Tag::CutGoal`).
    Cut = 3,
    /// The end-of-body sentinel (`Tag::EndBody`).
    Return = 4,
    /// Any other tag: not a dispatchable goal word. Dispatching it is
    /// the corrupt-code error path.
    Invalid = 5,
}

/// One predecoded dispatch micro-op, packed into eight bytes.
///
/// The fidelity lane re-fetches and re-decodes every goal word through
/// simulated memory on each dispatch — that *is* the measured
/// behaviour (six microsteps and a counted heap read per fetch). The
/// throughput lane charges the identical microsteps but dispatches
/// from a dense array of these, filled lazily on first execution: the
/// tag match and operand extraction (`Word::goal_value`) happen once
/// per code word instead of once per dispatch.
///
/// The array is grown (never rewritten) on incremental consult, in
/// the same append-only pass that grows the first-argument
/// `ClauseIndex`, so entries can never go stale: code words are
/// immutable once loaded.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DecodedOp {
    kind: OpKind,
    /// Argument count for goal kinds.
    nargs: u8,
    /// Predicate index (`UserGoal`) or builtin id (`BuiltinGoal`).
    operand: u32,
}

impl DecodedOp {
    /// The undecoded sentinel the cache is initialized with.
    pub const fn not_decoded() -> DecodedOp {
        DecodedOp {
            kind: OpKind::NotDecoded,
            nargs: 0,
            operand: 0,
        }
    }

    /// Decodes one fetched code word (the work the fidelity lane
    /// repeats on every dispatch).
    pub fn decode(w: psi_core::Word) -> DecodedOp {
        use psi_core::Tag;
        match w.tag() {
            Tag::Goal | Tag::BuiltinGoal => {
                let (operand, nargs) = w.goal_value().expect("goal word");
                let kind = if w.tag() == Tag::Goal {
                    OpKind::UserGoal
                } else {
                    OpKind::BuiltinGoal
                };
                DecodedOp {
                    kind,
                    nargs,
                    operand,
                }
            }
            Tag::CutGoal => DecodedOp {
                kind: OpKind::Cut,
                nargs: 0,
                operand: 0,
            },
            Tag::EndBody => DecodedOp {
                kind: OpKind::Return,
                nargs: 0,
                operand: 0,
            },
            _ => DecodedOp {
                kind: OpKind::Invalid,
                nargs: 0,
                operand: 0,
            },
        }
    }

    /// Has this entry been decoded?
    pub fn is_decoded(self) -> bool {
        self.kind != OpKind::NotDecoded
    }

    /// The dispatch kind.
    pub fn kind(self) -> OpKind {
        self.kind
    }

    /// Predicate index or builtin id (goal kinds only).
    pub fn operand(self) -> u32 {
        self.operand
    }

    /// Argument count (goal kinds only).
    pub fn nargs(self) -> u8 {
        self.nargs
    }
}

/// Per-module step counts (Table 2).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ModuleTally {
    counts: [u64; 6],
}

impl ModuleTally {
    /// Steps charged to `module`.
    pub fn count(&self, module: InterpModule) -> u64 {
        self.counts[module.index()]
    }

    /// Total steps.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Percentages in Table 2 column order.
    pub fn percentages(&self) -> [f64; 6] {
        let total = self.total().max(1) as f64;
        let mut out = [0.0; 6];
        for m in InterpModule::ALL {
            out[m.index()] = self.counts[m.index()] as f64 * 100.0 / total;
        }
        out
    }
}

/// Per-operation branch-field counts (Table 7).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BranchTally {
    counts: [u64; 16],
    with_data: u64,
}

impl BranchTally {
    /// Steps whose branch field held `op`.
    pub fn count(&self, op: BranchOp) -> u64 {
        self.counts[op.index()]
    }

    /// Total steps recorded.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Percentages in Table 7 row order.
    pub fn percentages(&self) -> [f64; 16] {
        let total = self.total().max(1) as f64;
        let mut out = [0.0; 16];
        for op in BranchOp::ALL {
            out[op.index()] = self.counts[op.index()] as f64 * 100.0 / total;
        }
        out
    }

    /// Share of steps carrying a real branch operation (the paper
    /// reports 77–83%).
    pub fn branch_share_pct(&self) -> f64 {
        let total = self.total().max(1) as f64;
        let nops: u64 = BranchOp::ALL
            .iter()
            .filter(|op| op.is_nop())
            .map(|op| self.counts[op.index()])
            .sum();
        (self.total() - nops) as f64 * 100.0 / total
    }

    /// Share of *branching* steps that also manipulated data (§4.4
    /// reports ≈50% with, ≈30% without, of all steps).
    pub fn with_data_share_pct(&self) -> f64 {
        let total = self.total().max(1) as f64;
        self.with_data as f64 * 100.0 / total
    }
}

/// The combined microstep tally the machine updates on every step.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MicroTally {
    /// Per-module counts (Table 2).
    pub modules: ModuleTally,
    /// Per-branch-op counts (Table 7).
    pub branches: BranchTally,
    /// Joint rotor phase, stored packed as `((nop * 4) + goto) * 2 +
    /// cond` — the same index [`MicroTally::phase_index`] exposes.
    /// One byte instead of three separate rotors keeps the compiled
    /// lane's deferred charge (one load, one table store) minimal;
    /// the eager `step_*` rotors unpack and repack their own field.
    phase: u8,
}

impl MicroTally {
    /// Creates a zeroed tally.
    pub fn new() -> MicroTally {
        MicroTally::default()
    }

    /// Total microinstruction steps.
    pub fn steps(&self) -> u64 {
        self.modules.total()
    }

    /// Charges one step with an explicit branch operation.
    /// `with_data` notes whether the step also moved/combined data.
    pub fn step(&mut self, module: InterpModule, op: BranchOp, with_data: bool) {
        self.modules.counts[module.index()] += 1;
        self.branches.counts[op.index()] += 1;
        if with_data && !op.is_nop() {
            self.branches.with_data += 1;
        }
    }

    /// Charges a sequential (non-branching) step. The no-op rows of
    /// Table 7 are spread over the three instruction types; real
    /// microcode alternates among them depending on which fields the
    /// instruction needs, which we model with a rotor.
    pub fn step_seq(&mut self, module: InterpModule, with_data: bool) {
        let nop = (self.phase >> 3) + 1;
        let nop = if nop == 3 { 0 } else { nop };
        self.phase = (self.phase & 0b111) | (nop << 3);
        let op = match nop {
            0 => BranchOp::Nop1,
            1 => BranchOp::Nop2,
            _ => BranchOp::Nop3,
        };
        self.step(module, op, with_data);
    }

    /// Charges an unconditional-branch step. The paper shows Type 2
    /// `goto` about three times as frequent as Type 1 (Table 7 rows 8
    /// and 14), because the Type 2 field coexists with more data
    /// operations; the rotor reproduces that mix.
    pub fn step_goto(&mut self, module: InterpModule, with_data: bool) {
        let goto = ((self.phase >> 1) + 1) & 0b11;
        self.phase = (self.phase & 0b11001) | (goto << 1);
        let op = if goto == 0 {
            BranchOp::Goto1
        } else {
            BranchOp::Goto2
        };
        self.step(module, op, with_data);
    }

    /// Charges a conditional-branch step. Microcode uses `if (cond)`
    /// and `if (not(cond))` about equally (Table 7 rows 2 and 3); the
    /// rotor alternates.
    pub fn step_cond(&mut self, module: InterpModule, with_data: bool) {
        self.phase ^= 1;
        let op = if self.phase & 1 == 0 {
            BranchOp::IfCond
        } else {
            BranchOp::IfNotCond
        };
        self.step(module, op, with_data);
    }

    /// Merges another tally (for cross-process aggregation).
    pub fn merge(&mut self, other: &MicroTally) {
        for i in 0..6 {
            self.modules.counts[i] += other.modules.counts[i];
        }
        for i in 0..16 {
            self.branches.counts[i] += other.branches.counts[i];
        }
        self.branches.with_data += other.branches.with_data;
    }

    /// The tally's rotor phase: which of the 3 × 4 × 2 = 24 joint
    /// rotor states it is in. A fixed charge sequence replayed from a
    /// given phase always lands in the same successor phase with the
    /// same per-op deltas, which is what lets [`ChargePacket`] replace
    /// a whole sequence of `step_*` calls with one table lookup.
    pub(crate) fn phase_index(&self) -> usize {
        self.phase as usize
    }

    /// Places the rotors into joint phase `idx` (inverse of
    /// [`MicroTally::phase_index`]; used when recording packets).
    pub(crate) fn set_phase(&mut self, idx: usize) {
        debug_assert!(idx < CHARGE_PHASES);
        self.phase = idx as u8;
    }
}

// ------------------------------------------------------------------
// charge packets (compiled lane)
// ------------------------------------------------------------------

/// Joint rotor states of a [`MicroTally`] (3 nop × 4 goto × 2 cond).
pub(crate) const CHARGE_PHASES: usize = 24;

/// Dense tally delta of one charge sequence replayed from one rotor
/// phase: per-module and per-branch-op increments, the `with_data`
/// increment, the step total, and the successor rotor phase. The
/// counter deltas are full-width (all 6 modules, all 16 branch ops)
/// so applying one is a fixed run of branchless widening adds the
/// compiler can unroll and vectorize — no data-dependent loop bounds
/// on the hot path.
#[derive(Debug, Clone, Copy, Default)]
struct PhaseDelta {
    modules: [u8; 6],
    branches: [u8; 16],
    with_data: u8,
    steps: u8,
    phase_after: u8,
}

/// A pre-recorded microstep charge sequence, one [`PhaseDelta`] per
/// rotor phase.
///
/// The compiled lane (Lane C) charges its fixed interpreter sequences
/// — code fetches, memory-access cycles, frame saves, call overheads —
/// through these instead of replaying each `step_seq`/`step_goto`/
/// `step_cond` call. A packet is *recorded* by running the real
/// charging closure against a zeroed tally from each of the 24
/// phases, so the deltas cannot drift from the fidelity lane's
/// sequences: bit-identity of module tallies, branch tallies (with
/// `with_data`), step totals and rotor state is by construction, and
/// `tests` below assert it for every phase.
#[derive(Debug, Clone)]
pub(crate) struct ChargePacket {
    phases: [PhaseDelta; CHARGE_PHASES],
    /// Step count of the sequence — phase-independent (a fixed
    /// sequence has a fixed length), asserted during recording.
    steps: u8,
    /// Successor rotor phase per start phase: the only part of a
    /// charge that must be applied *eagerly* (direct `step_*` calls
    /// interleave with packet charges and read the rotors), kept as a
    /// one-byte table so the eager path touches a single cache line.
    phase_after: [u8; CHARGE_PHASES],
    /// Slot in the machine's deferred-count array (see
    /// [`ChargePacket::charge_deferred`]); assigned by
    /// `ChargeTable::finalize_ids`.
    pub(crate) id: u8,
}

impl ChargePacket {
    /// Records the charge sequence `f` (a closure calling only
    /// `MicroTally::step*`) from every rotor phase.
    pub(crate) fn record(f: impl Fn(&mut MicroTally)) -> ChargePacket {
        let mut phases = [PhaseDelta::default(); CHARGE_PHASES];
        let mut phase_after = [0u8; CHARGE_PHASES];
        let mut steps = None;
        for (phase, delta) in phases.iter_mut().enumerate() {
            let mut t = MicroTally::new();
            t.set_phase(phase);
            f(&mut t);
            let mut d = PhaseDelta {
                phase_after: t.phase_index() as u8,
                ..PhaseDelta::default()
            };
            for (i, &c) in t.modules.counts.iter().enumerate() {
                assert!(c <= u8::MAX as u64, "charge sequence too long for a packet");
                d.modules[i] = c as u8;
            }
            for (i, &c) in t.branches.counts.iter().enumerate() {
                assert!(c <= u8::MAX as u64, "charge sequence too long for a packet");
                d.branches[i] = c as u8;
            }
            assert!(t.branches.with_data <= u8::MAX as u64);
            assert!(t.steps() <= u8::MAX as u64);
            d.with_data = t.branches.with_data as u8;
            d.steps = t.steps() as u8;
            assert_eq!(
                *steps.get_or_insert(d.steps),
                d.steps,
                "a fixed sequence must charge a phase-independent step count"
            );
            phase_after[phase] = t.phase_index() as u8;
            *delta = d;
        }
        ChargePacket {
            phases,
            steps: steps.unwrap_or(0),
            phase_after,
            id: 0,
        }
    }

    /// Applies the packet to `t` (deltas of the phase `t` is in) and
    /// returns the number of microsteps charged, for the caller to
    /// advance the bus step counter by.
    ///
    /// The hot path uses [`ChargePacket::charge_deferred`] instead;
    /// this eager form is the reference the unit tests below hold the
    /// deferred split (and packet recording itself) against.
    #[allow(dead_code)]
    #[inline]
    pub(crate) fn charge(&self, t: &mut MicroTally) -> u64 {
        // `% CHARGE_PHASES` costs a multiply-shift and lets the
        // compiler drop the bounds-check branch (the rotors keep the
        // index in range by construction, but it cannot see that).
        let d = &self.phases[t.phase_index() % CHARGE_PHASES];
        for (c, &a) in t.modules.counts.iter_mut().zip(&d.modules) {
            *c += a as u64;
        }
        for (c, &a) in t.branches.counts.iter_mut().zip(&d.branches) {
            *c += a as u64;
        }
        t.branches.with_data += d.with_data as u64;
        t.phase = d.phase_after;
        d.steps as u64
    }

    /// Deferred charge: the compiled lane's hot path. Counter deltas
    /// commute (they are pure adds), so instead of applying ~22
    /// widening adds per charge this only bumps the packet's
    /// per-start-phase count in `counts` and advances the rotors —
    /// [`ChargeTable::apply_deferred`] materializes `count × delta`
    /// into the tally when it is actually observed. Returns the step
    /// count for the caller's bus advance (and running step total,
    /// which budget checks need without a flush).
    #[inline]
    pub(crate) fn charge_deferred(&self, t: &mut MicroTally, counts: &mut [u64]) -> u64 {
        let ph = t.phase_index() % CHARGE_PHASES;
        counts[self.id as usize * CHARGE_PHASES + ph] += 1;
        t.set_phase(self.phase_after[ph] as usize);
        self.steps as u64
    }

    /// Flush half of [`ChargePacket::charge_deferred`]: folds this
    /// packet's pending counts into `t`. Rotors are untouched — they
    /// were advanced eagerly.
    fn apply_counts(&self, t: &mut MicroTally, counts: &[u64]) {
        for (ph, d) in self.phases.iter().enumerate() {
            let n = counts[self.id as usize * CHARGE_PHASES + ph];
            if n == 0 {
                continue;
            }
            for (c, &a) in t.modules.counts.iter_mut().zip(&d.modules) {
                *c += a as u64 * n;
            }
            for (c, &a) in t.branches.counts.iter_mut().zip(&d.branches) {
                *c += a as u64 * n;
            }
            t.branches.with_data += d.with_data as u64 * n;
        }
    }
}

/// The compiled lane's table of pre-recorded charge sequences, one
/// per fixed interpreter sequence. Built once per process (see
/// `exec::charge_table`) from the same `step_*` calls the fidelity
/// lane makes, so the two lanes cannot diverge.
#[derive(Debug)]
pub(crate) struct ChargeTable {
    /// One code-word fetch (`fetch_code`'s five steps), per module ×
    /// fetch op (`[0]` = `CaseOpcode`, `[1]` = `CaseTag`).
    pub(crate) code_fetch: [[ChargePacket; 2]; 6],
    /// Address generation + access cycle, per module — the charge
    /// shape shared by `mem_read`, `mem_write` and `mem_push`.
    pub(crate) addr_cycle: [ChargePacket; 6],
    /// Tag-dispatching read (`mem_read_dispatch`), per module.
    pub(crate) read_dispatch: [ChargePacket; 6],
    /// `materialize_env`: load-jr plus the 10-word frame burst.
    pub(crate) env_save: ChargePacket,
    /// `push_choice_point`: load-jr, two ALU steps, 10-word burst.
    pub(crate) cp_save: ChargePacket,
    /// `handle_user_call` overhead after argument build: two ALU
    /// steps, a condition, the predicate-table indirect jump.
    pub(crate) call_overhead: ChargePacket,
    /// `enter_clause` entry overhead: gosub, header fetch, two ALU
    /// steps, frame setup.
    pub(crate) enter_clause: ChargePacket,
    /// `backtrack_loop` iteration head: goto, two ALU steps, a
    /// condition.
    pub(crate) backtrack_head: ChargePacket,
    /// One trail unwind of a bound cell: tag-dispatch read plus the
    /// cell reset write.
    pub(crate) trail_undo: ChargePacket,
    /// `unify`'s gosub/return bracket.
    pub(crate) unify_frame: ChargePacket,
    /// One `unify_inner` pair dispatch with no arm charges.
    pub(crate) unify_case: ChargePacket,
    /// Pair dispatch + constant compare (atom/int arm).
    pub(crate) unify_const: ChargePacket,
    /// Pair dispatch + four element reads (list/list arm).
    pub(crate) unify_list: ChargePacket,
    /// Pair dispatch + two functor reads + compare (vect/vect arm).
    pub(crate) unify_vect_head: ChargePacket,
    /// One element-pair read of the vect/vect arm.
    pub(crate) unify_pair_read: ChargePacket,
    /// `bind` without a trail entry: trail test + cell write.
    pub(crate) bind_plain: ChargePacket,
    /// `bind` with a trail entry: test + trail push + cell write.
    pub(crate) bind_trailed: ChargePacket,
    /// `handle_return` through a materialized caller frame: three
    /// frame-word reads, the register reload ALU step, the
    /// continuation test and the return op.
    pub(crate) ret_frame: ChargePacket,
    /// `handle_return` with the caller's registers still in the WF:
    /// reload, test, return — no frame reads.
    pub(crate) ret_quick: ChargePacket,
    /// One skeleton element cycle: code-word fetch plus the paired
    /// memory access (the element read when matching, the global-stack
    /// push when copying — both charge the `addr_cycle` shape).
    pub(crate) skel_fetch_cycle: ChargePacket,
    /// `unify_skeleton`'s list head: the skeleton-kind dispatch folded
    /// onto the first element cycle.
    pub(crate) skel_head: ChargePacket,
    /// `unify_skeleton`'s vector head: kind dispatch, functor fetch,
    /// functor read, functor compare.
    pub(crate) skel_vect_test: ChargePacket,
    /// `copy_skeleton`'s vector head: functor fetch, functor push and
    /// the arity load-jr.
    pub(crate) skel_vect_copy_head: ChargePacket,
    /// One head-argument cycle ending in a buffered slot access: code
    /// fetch + the WF frame-buffer read/write step.
    pub(crate) head_slot_buf: ChargePacket,
    /// One constant head argument: code fetch + the unify
    /// microsubroutine bracket (the arm's own charges follow).
    pub(crate) head_const: ChargePacket,
    /// One copied slot-variable skeleton element, slot still
    /// buffered: fetch + buffer read + global-stack push.
    pub(crate) skel_var_buf: ChargePacket,
    /// One copied slot-variable skeleton element, slot flushed:
    /// fetch + local-stack read + global-stack push.
    pub(crate) skel_var_mem: ChargePacket,
    /// One skeleton head argument whose value derefs in a single
    /// hop (the dominant case): code fetch + the dispatch read.
    pub(crate) head_skel_ref: ChargePacket,
    /// `backtrack_loop` retry resume with a remaining alternative:
    /// the state-restore step + the alternative-advance frame write.
    pub(crate) bt_resume: ChargePacket,
}

impl ChargeTable {
    /// Total number of packets in the table — the stride of the
    /// machine's deferred-count array.
    pub(crate) const PACKETS: usize = 6 * 2 + 6 + 6 + 6 + 8 + 6 + 6;

    fn for_each(&self, mut f: impl FnMut(&ChargePacket)) {
        for pair in &self.code_fetch {
            f(&pair[0]);
            f(&pair[1]);
        }
        for p in &self.addr_cycle {
            f(p);
        }
        for p in &self.read_dispatch {
            f(p);
        }
        f(&self.env_save);
        f(&self.cp_save);
        f(&self.call_overhead);
        f(&self.enter_clause);
        f(&self.backtrack_head);
        f(&self.trail_undo);
        f(&self.unify_frame);
        f(&self.unify_case);
        f(&self.unify_const);
        f(&self.unify_list);
        f(&self.unify_vect_head);
        f(&self.unify_pair_read);
        f(&self.bind_plain);
        f(&self.bind_trailed);
        f(&self.ret_frame);
        f(&self.ret_quick);
        f(&self.skel_fetch_cycle);
        f(&self.skel_head);
        f(&self.skel_vect_test);
        f(&self.skel_vect_copy_head);
        f(&self.head_slot_buf);
        f(&self.head_const);
        f(&self.skel_var_buf);
        f(&self.skel_var_mem);
        f(&self.head_skel_ref);
        f(&self.bt_resume);
    }

    /// Assigns every packet its slot in the deferred-count array.
    /// Called once at table construction.
    pub(crate) fn finalize_ids(&mut self) {
        let mut next = 0u8;
        let mut assign = |p: &mut ChargePacket| {
            p.id = next;
            next += 1;
        };
        for pair in &mut self.code_fetch {
            assign(&mut pair[0]);
            assign(&mut pair[1]);
        }
        for p in &mut self.addr_cycle {
            assign(p);
        }
        for p in &mut self.read_dispatch {
            assign(p);
        }
        assign(&mut self.env_save);
        assign(&mut self.cp_save);
        assign(&mut self.call_overhead);
        assign(&mut self.enter_clause);
        assign(&mut self.backtrack_head);
        assign(&mut self.trail_undo);
        assign(&mut self.unify_frame);
        assign(&mut self.unify_case);
        assign(&mut self.unify_const);
        assign(&mut self.unify_list);
        assign(&mut self.unify_vect_head);
        assign(&mut self.unify_pair_read);
        assign(&mut self.bind_plain);
        assign(&mut self.bind_trailed);
        assign(&mut self.ret_frame);
        assign(&mut self.ret_quick);
        assign(&mut self.skel_fetch_cycle);
        assign(&mut self.skel_head);
        assign(&mut self.skel_vect_test);
        assign(&mut self.skel_vect_copy_head);
        assign(&mut self.head_slot_buf);
        assign(&mut self.head_const);
        assign(&mut self.skel_var_buf);
        assign(&mut self.skel_var_mem);
        assign(&mut self.head_skel_ref);
        assign(&mut self.bt_resume);
        debug_assert_eq!(next as usize, Self::PACKETS);
    }

    /// Materializes all pending deferred charges into `t`. Pure adds
    /// — order-independent, rotors untouched — so this is exact
    /// regardless of how packet charges interleaved with direct
    /// `step_*` calls.
    pub(crate) fn apply_deferred(&self, t: &mut MicroTally, counts: &[u64]) {
        self.for_each(|p| p.apply_counts(t, counts));
    }
}

// ------------------------------------------------------------------
// fused program (compiled lane)
// ------------------------------------------------------------------

/// Post-processed dispatch kind of a fused op (compiled lane). Unlike
/// [`OpKind`] there is no lazy sentinel: the whole program is fused
/// eagerly when code is loaded, and non-dispatch positions (argument
/// words, clause headers, skeletons) are [`FusedKind::NotOp`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub(crate) enum FusedKind {
    /// Not a dispatchable goal word; dispatching here is the
    /// corrupt-code error path.
    NotOp = 0,
    /// A user-predicate call with pre-classified arguments.
    Goal = 1,
    /// A built-in call with pre-classified arguments.
    Builtin = 2,
    /// A cut.
    Cut = 3,
    /// The end-of-body sentinel.
    Return = 4,
}

/// Flag: this op's continuation (at [`FusedOp::next`]) is itself a
/// dispatchable op, so the fused dispatch loop executes it without
/// returning to the outer run loop (the superinstruction chain:
/// builtin→goal, builtin→builtin, builtin→return, cut→goal,
/// cut→return).
pub(crate) const FUSE_NEXT: u8 = 1 << 0;
/// Flag: the goal's arguments came as one `Tag::Packed` word; charge
/// one fetch plus per-operand `case (irn)` steps and use the
/// base-relative slot path, as `build_args` does.
pub(crate) const ARGS_PACKED: u8 = 1 << 1;
/// Flag: the argument words did not all pre-classify (corrupt or
/// exotic input); fall back to the generic `build_args` path so error
/// behaviour stays identical to the other lanes.
pub(crate) const ARGS_GENERIC: u8 = 1 << 2;

/// One fused dispatch op: kind, argument-packing flags, operand, the
/// continuation offset past the goal's argument words, and the extent
/// of its pre-classified arguments in [`FusedProgram::args`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct FusedOp {
    pub(crate) kind: FusedKind,
    pub(crate) flags: u8,
    pub(crate) nargs: u8,
    pub(crate) operand: u32,
    pub(crate) args_at: u32,
    pub(crate) next: u32,
}

impl FusedOp {
    /// The non-dispatch filler every non-goal position holds.
    pub(crate) const NOT_OP: FusedOp = FusedOp {
        kind: FusedKind::NotOp,
        flags: 0,
        nargs: 0,
        operand: 0,
        args_at: 0,
        next: 0,
    };
}

/// A goal argument pre-classified by the fusion pass. Mirrors the
/// cases of `build_arg`/`build_packed_arg`; under [`ARGS_PACKED`] the
/// variable variants use the base-relative slot path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum PackedArg {
    /// An immediate word (atom, int, nil — packed ints and nils are
    /// pre-materialized to full words).
    Const(Word),
    /// First occurrence of a local variable: bind slot to a fresh
    /// global cell.
    FirstVar(u16),
    /// Subsequent occurrence: read the slot.
    LocalVar(u16),
    /// Singleton variable: fresh global cell, no slot.
    Void,
    /// Static list/structure skeleton: copy to the global stack.
    Skeleton(Word),
}

use psi_core::Word;

/// The compiled lane's dense fused program: one [`FusedOp`] per loaded
/// code word, plus a side array of pre-classified goal arguments.
///
/// Built eagerly by the same append-only `sync_code` pass that grows
/// the predecode cache, and shared copy-on-write with forks behind an
/// `Arc` exactly like it — so the two caches are invalidated (i.e.
/// extended; loaded code is immutable) on the same events. The
/// classification is sound because goal tags (`Goal`, `BuiltinGoal`,
/// `CutGoal`, `EndBody`) never occur in argument, header or skeleton
/// positions: every position holding one *is* a dispatchable op.
#[derive(Debug, Clone, Default)]
pub(crate) struct FusedProgram {
    pub(crate) ops: Vec<FusedOp>,
    pub(crate) args: Vec<PackedArg>,
}

impl FusedProgram {
    /// The pre-classified arguments of `op` (not valid for
    /// [`ARGS_GENERIC`] ops, which fall back to the code words).
    #[inline]
    pub(crate) fn args_of(&self, op: FusedOp) -> &[PackedArg] {
        debug_assert_eq!(op.flags & ARGS_GENERIC, 0);
        &self.args[op.args_at as usize..op.args_at as usize + op.nargs as usize]
    }

    /// Extends the fused program over newly appended code words
    /// (`heap` is the full code image; everything before `self.ops.
    /// len()` is already fused and immutable).
    pub(crate) fn extend(&mut self, heap: &[Word]) {
        use psi_core::Tag;
        let from = self.ops.len();
        self.ops.resize(heap.len(), FusedOp::NOT_OP);
        for off in from..heap.len() {
            let w = heap[off];
            self.ops[off] = match w.tag() {
                Tag::Goal | Tag::BuiltinGoal => {
                    let (operand, nargs) = w.goal_value().expect("goal word");
                    let kind = if w.tag() == Tag::Goal {
                        FusedKind::Goal
                    } else {
                        FusedKind::Builtin
                    };
                    self.classify_goal(heap, off, kind, operand, nargs)
                }
                Tag::CutGoal => FusedOp {
                    kind: FusedKind::Cut,
                    next: off as u32 + 1,
                    ..FusedOp::NOT_OP
                },
                Tag::EndBody => FusedOp {
                    kind: FusedKind::Return,
                    next: off as u32 + 1,
                    ..FusedOp::NOT_OP
                },
                _ => FusedOp::NOT_OP,
            };
        }
        // Superinstruction marking, after all kinds are known: a cut
        // or builtin whose continuation is itself a dispatchable op
        // chains into it without a run-loop round trip. Goals and
        // returns transfer control dynamically, so they never chain
        // statically.
        for off in from..self.ops.len() {
            let op = self.ops[off];
            if !matches!(op.kind, FusedKind::Builtin | FusedKind::Cut) {
                continue;
            }
            if let Some(next) = self.ops.get(op.next as usize) {
                if next.kind != FusedKind::NotOp {
                    self.ops[off].flags |= FUSE_NEXT;
                }
            }
        }
    }

    /// Classifies a goal's argument words. Anything that does not
    /// pre-classify (truncated tail, corrupt word, unexpected packed
    /// tag) produces an [`ARGS_GENERIC`] op so runtime behaviour —
    /// including error behaviour — matches the generic path exactly.
    fn classify_goal(
        &mut self,
        heap: &[Word],
        off: usize,
        kind: FusedKind,
        operand: u32,
        nargs: u8,
    ) -> FusedOp {
        use psi_core::Tag;
        let generic = |flags: u8, next: u32| FusedOp {
            kind,
            flags: flags | ARGS_GENERIC,
            nargs,
            operand,
            args_at: 0,
            next,
        };
        let args_at = self.args.len() as u32;
        if nargs == 0 {
            return FusedOp {
                kind,
                flags: 0,
                nargs,
                operand,
                args_at,
                next: off as u32 + 1,
            };
        }
        let Some(&first) = heap.get(off + 1) else {
            return generic(0, off as u32 + 1 + nargs as u32);
        };
        if first.tag() == Tag::Packed {
            let next = off as u32 + 2;
            let Some(ops8) = first.packed_operands() else {
                return generic(ARGS_PACKED, next);
            };
            for &p in ops8.iter().take(nargs as usize) {
                let (tag3, payload) = Word::packed_operand(p);
                let pa = if Some(tag3) == Tag::Int.packed_tag() {
                    PackedArg::Const(Word::int(payload as i32))
                } else if Some(tag3) == Tag::Nil.packed_tag() {
                    PackedArg::Const(Word::nil())
                } else if Some(tag3) == Tag::FirstVar.packed_tag() {
                    PackedArg::FirstVar(payload as u16)
                } else if Some(tag3) == Tag::LocalVar.packed_tag() {
                    PackedArg::LocalVar(payload as u16)
                } else if Some(tag3) == Tag::Void.packed_tag() {
                    PackedArg::Void
                } else {
                    self.args.truncate(args_at as usize);
                    return generic(ARGS_PACKED, next);
                };
                self.args.push(pa);
            }
            return FusedOp {
                kind,
                flags: ARGS_PACKED,
                nargs,
                operand,
                args_at,
                next,
            };
        }
        let next = off as u32 + 1 + nargs as u32;
        for i in 0..nargs as usize {
            let Some(&aw) = heap.get(off + 1 + i) else {
                self.args.truncate(args_at as usize);
                return generic(0, next);
            };
            let pa = match (aw.tag(), aw.var_slot()) {
                (Tag::Atom | Tag::Int | Tag::Nil, _) => PackedArg::Const(aw),
                (Tag::FirstVar, Some(slot)) => PackedArg::FirstVar(slot),
                (Tag::LocalVar, Some(slot)) => PackedArg::LocalVar(slot),
                (Tag::Void, _) => PackedArg::Void,
                (Tag::CodeList | Tag::CodeVect, _) => PackedArg::Skeleton(aw),
                _ => {
                    self.args.truncate(args_at as usize);
                    return generic(0, next);
                }
            };
            self.args.push(pa);
        }
        FusedOp {
            kind,
            flags: 0,
            nargs,
            operand,
            args_at,
            next,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn steps_accumulate_per_module() {
        let mut t = MicroTally::new();
        t.step(InterpModule::Unify, BranchOp::CaseTag, true);
        t.step(InterpModule::Unify, BranchOp::CaseTag, false);
        t.step(InterpModule::Control, BranchOp::Gosub, false);
        assert_eq!(t.steps(), 3);
        assert_eq!(t.modules.count(InterpModule::Unify), 2);
        let pct = t.modules.percentages();
        assert!((pct[InterpModule::Unify.index()] - 66.666).abs() < 0.01);
    }

    #[test]
    fn branch_share_excludes_nops() {
        let mut t = MicroTally::new();
        for _ in 0..6 {
            t.step_seq(InterpModule::Control, false);
        }
        for _ in 0..4 {
            t.step(InterpModule::Unify, BranchOp::CaseTag, true);
        }
        assert!((t.branches.branch_share_pct() - 40.0).abs() < 1e-9);
        assert!((t.branches.with_data_share_pct() - 40.0).abs() < 1e-9);
    }

    #[test]
    fn rotors_spread_over_types() {
        let mut t = MicroTally::new();
        for _ in 0..30 {
            t.step_seq(InterpModule::Control, false);
        }
        assert_eq!(t.branches.count(BranchOp::Nop1), 10);
        assert_eq!(t.branches.count(BranchOp::Nop2), 10);
        assert_eq!(t.branches.count(BranchOp::Nop3), 10);
        for _ in 0..40 {
            t.step_goto(InterpModule::Control, false);
        }
        assert_eq!(t.branches.count(BranchOp::Goto1), 10);
        assert_eq!(t.branches.count(BranchOp::Goto2), 30);
        for _ in 0..10 {
            t.step_cond(InterpModule::Builtin, true);
        }
        assert_eq!(t.branches.count(BranchOp::IfCond), 5);
        assert_eq!(t.branches.count(BranchOp::IfNotCond), 5);
    }

    #[test]
    fn merge_adds_counts() {
        let mut a = MicroTally::new();
        a.step(InterpModule::Cut, BranchOp::Goto2, false);
        let mut b = MicroTally::new();
        b.step(InterpModule::Cut, BranchOp::Goto2, true);
        a.merge(&b);
        assert_eq!(a.modules.count(InterpModule::Cut), 2);
        assert_eq!(a.branches.count(BranchOp::Goto2), 2);
    }

    #[test]
    fn decoded_op_is_packed_to_eight_bytes() {
        assert_eq!(std::mem::size_of::<DecodedOp>(), 8);
        assert!(!DecodedOp::not_decoded().is_decoded());
    }

    #[test]
    fn decode_extracts_goal_operands() {
        use psi_core::Word;
        let d = DecodedOp::decode(Word::goal(1000, 4));
        assert_eq!(d.kind(), OpKind::UserGoal);
        assert_eq!(d.operand(), 1000);
        assert_eq!(d.nargs(), 4);
        let b = DecodedOp::decode(Word::builtin_goal(17, 2));
        assert_eq!(b.kind(), OpKind::BuiltinGoal);
        assert_eq!(b.operand(), 17);
        assert_eq!(b.nargs(), 2);
        assert_eq!(DecodedOp::decode(Word::cut_goal()).kind(), OpKind::Cut);
        assert_eq!(DecodedOp::decode(Word::end_body()).kind(), OpKind::Return);
        assert_eq!(DecodedOp::decode(Word::int(3)).kind(), OpKind::Invalid);
        assert!(DecodedOp::decode(Word::int(3)).is_decoded());
    }

    #[test]
    fn charge_packet_replays_identically_from_every_phase() {
        // A representative mixed sequence: fetch-shaped steps, nops,
        // conditions both ways, gotos, a data-carrying dispatch.
        let seq = |t: &mut MicroTally| {
            t.step(InterpModule::Control, BranchOp::CaseOpcode, true);
            t.step_seq(InterpModule::Control, true);
            t.step_cond(InterpModule::Control, true);
            t.step_cond(InterpModule::Control, false);
            t.step_goto(InterpModule::Control, true);
            t.step(InterpModule::Unify, BranchOp::IfTag, true);
            t.step_seq(InterpModule::Unify, false);
            t.step_goto(InterpModule::Unify, false);
        };
        let packet = ChargePacket::record(seq);
        for phase in 0..CHARGE_PHASES {
            // Direct replay from this rotor phase, over pre-existing
            // counts so the delta (not just the end state) must match.
            let mut direct = MicroTally::new();
            direct.step(InterpModule::Cut, BranchOp::Gosub, false);
            direct.set_phase(phase);
            let before = direct.steps();
            seq(&mut direct);

            let mut charged = MicroTally::new();
            charged.step(InterpModule::Cut, BranchOp::Gosub, false);
            charged.set_phase(phase);
            let n = packet.charge(&mut charged);

            assert_eq!(n, direct.steps() - before, "step count, phase {phase}");
            assert_eq!(charged, direct, "tally divergence from phase {phase}");
        }
    }

    #[test]
    fn every_charge_table_packet_charges_a_phase_independent_step_count() {
        let table = crate::exec::charge_table();
        let mut packets: Vec<(&str, &ChargePacket)> = vec![
            ("env_save", &table.env_save),
            ("cp_save", &table.cp_save),
            ("call_overhead", &table.call_overhead),
            ("enter_clause", &table.enter_clause),
            ("backtrack_head", &table.backtrack_head),
            ("trail_undo", &table.trail_undo),
        ];
        for m in 0..6 {
            packets.push(("code_fetch/opcode", &table.code_fetch[m][0]));
            packets.push(("code_fetch/tag", &table.code_fetch[m][1]));
            packets.push(("addr_cycle", &table.addr_cycle[m]));
            packets.push(("read_dispatch", &table.read_dispatch[m]));
        }
        for (name, packet) in packets {
            let mut reference = None;
            for phase in 0..CHARGE_PHASES {
                let mut t = MicroTally::new();
                t.set_phase(phase);
                let n = packet.charge(&mut t);
                assert!(n > 0, "{name}: empty packet");
                assert_eq!(n, t.steps(), "{name}: charge out of step with tally");
                assert_eq!(
                    n,
                    *reference.get_or_insert(n),
                    "{name}: step count depends on rotor phase {phase}"
                );
            }
        }
    }

    #[test]
    fn deferred_charging_matches_eager_charging_exactly() {
        // Charge a mix of table packets eagerly on one tally and
        // deferred on another, interleaving direct `step_*` calls
        // (which read and advance the rotors between packet charges),
        // then flush — the tallies and running step totals must be
        // bit-identical.
        let table = crate::exec::charge_table();
        let mix: [&ChargePacket; 7] = [
            &table.code_fetch[0][0],
            &table.addr_cycle[1],
            &table.enter_clause,
            &table.read_dispatch[2],
            &table.cp_save,
            &table.code_fetch[5][1],
            &table.trail_undo,
        ];
        let mut eager = MicroTally::new();
        let mut deferred = MicroTally::new();
        let mut counts = vec![0u64; ChargeTable::PACKETS * CHARGE_PHASES];
        let mut deferred_steps = 0u64;
        for round in 0..50 {
            let p = mix[round % mix.len()];
            assert_eq!(p.charge(&mut eager), {
                let n = p.charge_deferred(&mut deferred, &mut counts);
                deferred_steps += n;
                n
            });
            // Interleave a direct step so the rotor handoff between
            // eager and deferred paths is exercised, not just the
            // counter adds.
            let m = InterpModule::ALL[round % 6];
            eager.step_goto(m, round % 2 == 0);
            deferred.step_goto(m, round % 2 == 0);
        }
        assert_eq!(
            eager.steps(),
            deferred.steps() + deferred_steps,
            "running step total must not need a flush"
        );
        table.apply_deferred(&mut deferred, &counts);
        assert_eq!(eager, deferred, "flush must reproduce eager tally");
    }

    #[test]
    fn fusion_classifies_goals_and_marks_chains() {
        use psi_core::Word;
        // p(7, X) :- q, !, end  — shaped as raw code words.
        let heap = [
            Word::goal(3, 2),
            Word::int(7),
            Word::first_var(0),
            Word::builtin_goal(5, 0),
            Word::cut_goal(),
            Word::end_body(),
        ];
        let mut fused = FusedProgram::default();
        fused.extend(&heap);
        assert_eq!(fused.ops.len(), heap.len());

        let goal = fused.ops[0];
        assert_eq!(goal.kind, FusedKind::Goal);
        assert_eq!((goal.operand, goal.nargs, goal.next), (3, 2, 3));
        assert_eq!(goal.flags, 0, "goals never chain statically");
        assert_eq!(
            fused.args_of(goal),
            &[PackedArg::Const(Word::int(7)), PackedArg::FirstVar(0)]
        );

        // Argument positions are non-dispatchable filler.
        assert_eq!(fused.ops[1], FusedOp::NOT_OP);
        assert_eq!(fused.ops[2], FusedOp::NOT_OP);

        // builtin → cut → return all chain via FUSE_NEXT.
        let builtin = fused.ops[3];
        assert_eq!(builtin.kind, FusedKind::Builtin);
        assert_eq!(builtin.flags & FUSE_NEXT, FUSE_NEXT);
        let cut = fused.ops[4];
        assert_eq!(cut.kind, FusedKind::Cut);
        assert_eq!(cut.flags & FUSE_NEXT, FUSE_NEXT);
        let ret = fused.ops[5];
        assert_eq!(ret.kind, FusedKind::Return);
        assert_eq!(ret.flags, 0, "returns transfer control dynamically");
    }

    #[test]
    fn fusion_classifies_packed_arguments() {
        use psi_core::{Tag, Word};
        let enc = |tag: Tag, payload: u8| (tag.packed_tag().unwrap() << 5) | payload;
        let heap = [
            Word::goal(1, 4),
            Word::packed([
                enc(Tag::Int, 9),
                enc(Tag::Nil, 0),
                enc(Tag::LocalVar, 3),
                enc(Tag::Void, 0),
            ]),
            Word::end_body(),
        ];
        let mut fused = FusedProgram::default();
        fused.extend(&heap);
        let goal = fused.ops[0];
        assert_eq!(goal.flags & ARGS_PACKED, ARGS_PACKED);
        assert_eq!(goal.flags & ARGS_GENERIC, 0);
        assert_eq!(goal.next, 2, "packed goal spans exactly two words");
        assert_eq!(
            fused.args_of(goal),
            &[
                PackedArg::Const(Word::int(9)),
                PackedArg::Const(Word::nil()),
                PackedArg::LocalVar(3),
                PackedArg::Void,
            ]
        );
    }

    #[test]
    fn unclassifiable_arguments_fall_back_to_the_generic_path() {
        use psi_core::Word;
        // A goal whose declared arity extends past the loaded image:
        // the generic path must handle it (and reproduce the fidelity
        // lane's error), so classification abstains.
        let heap = [Word::goal(2, 2), Word::int(1)];
        let mut fused = FusedProgram::default();
        fused.extend(&heap);
        let truncated = fused.ops[0];
        assert_eq!(truncated.flags & ARGS_GENERIC, ARGS_GENERIC);
        assert_eq!(truncated.next, 3);
        assert!(fused.args.is_empty(), "abstained args must be rolled back");

        // A dispatch tag in argument position does not pre-classify.
        let heap = [Word::goal(2, 1), Word::cut_goal(), Word::end_body()];
        let mut fused = FusedProgram::default();
        fused.extend(&heap);
        assert_eq!(fused.ops[0].flags & ARGS_GENERIC, ARGS_GENERIC);
    }

    #[test]
    fn extend_is_append_only_and_chains_across_the_boundary() {
        use psi_core::Word;
        let first = [Word::builtin_goal(4, 0)];
        let mut fused = FusedProgram::default();
        fused.extend(&first);
        // Nothing follows yet: the builtin cannot chain.
        assert_eq!(fused.ops[0].flags & FUSE_NEXT, 0);
        let frozen = fused.ops[0];

        let both = [Word::builtin_goal(4, 0), Word::end_body()];
        fused.extend(&both);
        assert_eq!(fused.ops.len(), 2);
        assert_eq!(fused.ops[1].kind, FusedKind::Return);
        // The already-fused prefix is immutable — the old op keeps its
        // flags even though a chain target now exists (chains are an
        // optimisation, never a correctness requirement).
        assert_eq!(fused.ops[0], frozen);
    }

    #[test]
    fn percentages_sum_to_100() {
        let mut t = MicroTally::new();
        for (i, op) in BranchOp::ALL.iter().enumerate() {
            for _ in 0..=i {
                t.step(InterpModule::Control, *op, false);
            }
        }
        let sum: f64 = t.branches.percentages().iter().sum();
        assert!((sum - 100.0).abs() < 1e-9);
    }
}
