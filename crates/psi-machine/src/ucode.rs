//! Microinstruction step accounting.
//!
//! The PSI interpreter is a microprogram; the paper's measurements are
//! all phrased in *microinstruction execution steps*. Every primitive
//! operation of our simulated interpreter charges steps through
//! [`MicroTally`], attributing each step to:
//!
//! * an interpreter **module** (Table 2: control / unify / trail /
//!   get_arg / cut / built),
//! * one of the 16 **branch-field operations** (Table 7),
//! * whether the step also performed **data manipulation** (§4.4
//!   reports ≈50% of branching steps manipulate data).

use std::fmt;

/// The component modules of the firmware interpreter (Table 2
/// columns).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum InterpModule {
    /// Call/return management, frame handling, clause selection.
    Control = 0,
    /// Head unification and structure copying.
    Unify = 1,
    /// Trail pushes and trail unwinding.
    Trail = 2,
    /// Fetching and decoding arguments for built-in predicates.
    GetArg = 3,
    /// Cut processing.
    Cut = 4,
    /// Built-in predicate bodies.
    Builtin = 5,
}

impl InterpModule {
    /// All modules, in Table 2 column order.
    pub const ALL: [InterpModule; 6] = [
        InterpModule::Control,
        InterpModule::Unify,
        InterpModule::Trail,
        InterpModule::GetArg,
        InterpModule::Cut,
        InterpModule::Builtin,
    ];

    /// Dense index.
    pub fn index(self) -> usize {
        self as usize
    }

    /// Table 2 column label.
    pub fn label(self) -> &'static str {
        match self {
            InterpModule::Control => "control",
            InterpModule::Unify => "unify",
            InterpModule::Trail => "trail",
            InterpModule::GetArg => "get_arg",
            InterpModule::Cut => "cut",
            InterpModule::Builtin => "built",
        }
    }
}

impl fmt::Display for InterpModule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// The 16 branch-field operations of Table 7, three instruction
/// types (§4.4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum BranchOp {
    /// (1) Type 1, no operation.
    Nop1 = 0,
    /// (2) `if (cond) then`.
    IfCond = 1,
    /// (3) `if (not(cond)) then`.
    IfNotCond = 2,
    /// (4) `if tag(src2) then` — compare against a given tag value.
    IfTag = 3,
    /// (5) `case (tag(n, P/CDR))` — the tag-dispatch multi-way branch.
    CaseTag = 4,
    /// (6) `case (irn)` — multi-way branch on a packed operand's 3-bit
    /// tag.
    CaseIrn = 5,
    /// (7) `case (ir-opcode)` — dispatch on an instruction opcode.
    CaseOpcode = 6,
    /// (8) Type 1 `goto`.
    Goto1 = 7,
    /// (9) `gosub` — microsubroutine call.
    Gosub = 8,
    /// (10) `return` from microsubroutine.
    Return = 9,
    /// (11) `load-jr` — load the jump register (used as loop counter).
    LoadJr = 10,
    /// (12) `goto @jr` — indirect branch through JR.
    GotoJr1 = 11,
    /// (13) Type 2, no operation.
    Nop2 = 12,
    /// (14) Type 2 `goto`.
    Goto2 = 13,
    /// (15) Type 3, no operation.
    Nop3 = 14,
    /// (16) Type 3 `goto @jr`.
    GotoJr3 = 15,
}

impl BranchOp {
    /// All operations in Table 7 row order.
    pub const ALL: [BranchOp; 16] = [
        BranchOp::Nop1,
        BranchOp::IfCond,
        BranchOp::IfNotCond,
        BranchOp::IfTag,
        BranchOp::CaseTag,
        BranchOp::CaseIrn,
        BranchOp::CaseOpcode,
        BranchOp::Goto1,
        BranchOp::Gosub,
        BranchOp::Return,
        BranchOp::LoadJr,
        BranchOp::GotoJr1,
        BranchOp::Nop2,
        BranchOp::Goto2,
        BranchOp::Nop3,
        BranchOp::GotoJr3,
    ];

    /// Dense index (Table 7 row number minus one).
    pub fn index(self) -> usize {
        self as usize
    }

    /// Is this one of the three no-operation rows?
    pub fn is_nop(self) -> bool {
        matches!(self, BranchOp::Nop1 | BranchOp::Nop2 | BranchOp::Nop3)
    }

    /// Table 7 row label.
    pub fn label(self) -> &'static str {
        match self {
            BranchOp::Nop1 => "no operation (t1)",
            BranchOp::IfCond => "if (cond) then",
            BranchOp::IfNotCond => "if (not(cond)) then",
            BranchOp::IfTag => "if tag(src2) then",
            BranchOp::CaseTag => "case (tag(n,P/CDR))",
            BranchOp::CaseIrn => "case (irn)",
            BranchOp::CaseOpcode => "case (ir-opcode)",
            BranchOp::Goto1 => "goto (t1)",
            BranchOp::Gosub => "gosub",
            BranchOp::Return => "return",
            BranchOp::LoadJr => "load-jr",
            BranchOp::GotoJr1 => "goto @jr (t1)",
            BranchOp::Nop2 => "no operation (t2)",
            BranchOp::Goto2 => "goto (t2)",
            BranchOp::Nop3 => "no operation (t3)",
            BranchOp::GotoJr3 => "goto @jr (t3)",
        }
    }
}

impl fmt::Display for BranchOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

// ------------------------------------------------------------------
// predecoded dispatch ops (throughput lane)
// ------------------------------------------------------------------

/// What a dispatched code word does, extracted once by the predecode
/// cache (see [`DecodedOp`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum OpKind {
    /// Sentinel: this code word has not been dispatched yet.
    NotDecoded = 0,
    /// A user-predicate call (`Tag::Goal`).
    UserGoal = 1,
    /// A built-in call (`Tag::BuiltinGoal`).
    BuiltinGoal = 2,
    /// A cut (`Tag::CutGoal`).
    Cut = 3,
    /// The end-of-body sentinel (`Tag::EndBody`).
    Return = 4,
    /// Any other tag: not a dispatchable goal word. Dispatching it is
    /// the corrupt-code error path.
    Invalid = 5,
}

/// One predecoded dispatch micro-op, packed into eight bytes.
///
/// The fidelity lane re-fetches and re-decodes every goal word through
/// simulated memory on each dispatch — that *is* the measured
/// behaviour (six microsteps and a counted heap read per fetch). The
/// throughput lane charges the identical microsteps but dispatches
/// from a dense array of these, filled lazily on first execution: the
/// tag match and operand extraction (`Word::goal_value`) happen once
/// per code word instead of once per dispatch.
///
/// The array is grown (never rewritten) on incremental consult, in
/// the same append-only pass that grows the first-argument
/// `ClauseIndex`, so entries can never go stale: code words are
/// immutable once loaded.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DecodedOp {
    kind: OpKind,
    /// Argument count for goal kinds.
    nargs: u8,
    /// Predicate index (`UserGoal`) or builtin id (`BuiltinGoal`).
    operand: u32,
}

impl DecodedOp {
    /// The undecoded sentinel the cache is initialized with.
    pub const fn not_decoded() -> DecodedOp {
        DecodedOp {
            kind: OpKind::NotDecoded,
            nargs: 0,
            operand: 0,
        }
    }

    /// Decodes one fetched code word (the work the fidelity lane
    /// repeats on every dispatch).
    pub fn decode(w: psi_core::Word) -> DecodedOp {
        use psi_core::Tag;
        match w.tag() {
            Tag::Goal | Tag::BuiltinGoal => {
                let (operand, nargs) = w.goal_value().expect("goal word");
                let kind = if w.tag() == Tag::Goal {
                    OpKind::UserGoal
                } else {
                    OpKind::BuiltinGoal
                };
                DecodedOp {
                    kind,
                    nargs,
                    operand,
                }
            }
            Tag::CutGoal => DecodedOp {
                kind: OpKind::Cut,
                nargs: 0,
                operand: 0,
            },
            Tag::EndBody => DecodedOp {
                kind: OpKind::Return,
                nargs: 0,
                operand: 0,
            },
            _ => DecodedOp {
                kind: OpKind::Invalid,
                nargs: 0,
                operand: 0,
            },
        }
    }

    /// Has this entry been decoded?
    pub fn is_decoded(self) -> bool {
        self.kind != OpKind::NotDecoded
    }

    /// The dispatch kind.
    pub fn kind(self) -> OpKind {
        self.kind
    }

    /// Predicate index or builtin id (goal kinds only).
    pub fn operand(self) -> u32 {
        self.operand
    }

    /// Argument count (goal kinds only).
    pub fn nargs(self) -> u8 {
        self.nargs
    }
}

/// Per-module step counts (Table 2).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ModuleTally {
    counts: [u64; 6],
}

impl ModuleTally {
    /// Steps charged to `module`.
    pub fn count(&self, module: InterpModule) -> u64 {
        self.counts[module.index()]
    }

    /// Total steps.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Percentages in Table 2 column order.
    pub fn percentages(&self) -> [f64; 6] {
        let total = self.total().max(1) as f64;
        let mut out = [0.0; 6];
        for m in InterpModule::ALL {
            out[m.index()] = self.counts[m.index()] as f64 * 100.0 / total;
        }
        out
    }
}

/// Per-operation branch-field counts (Table 7).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BranchTally {
    counts: [u64; 16],
    with_data: u64,
}

impl BranchTally {
    /// Steps whose branch field held `op`.
    pub fn count(&self, op: BranchOp) -> u64 {
        self.counts[op.index()]
    }

    /// Total steps recorded.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Percentages in Table 7 row order.
    pub fn percentages(&self) -> [f64; 16] {
        let total = self.total().max(1) as f64;
        let mut out = [0.0; 16];
        for op in BranchOp::ALL {
            out[op.index()] = self.counts[op.index()] as f64 * 100.0 / total;
        }
        out
    }

    /// Share of steps carrying a real branch operation (the paper
    /// reports 77–83%).
    pub fn branch_share_pct(&self) -> f64 {
        let total = self.total().max(1) as f64;
        let nops: u64 = BranchOp::ALL
            .iter()
            .filter(|op| op.is_nop())
            .map(|op| self.counts[op.index()])
            .sum();
        (self.total() - nops) as f64 * 100.0 / total
    }

    /// Share of *branching* steps that also manipulated data (§4.4
    /// reports ≈50% with, ≈30% without, of all steps).
    pub fn with_data_share_pct(&self) -> f64 {
        let total = self.total().max(1) as f64;
        self.with_data as f64 * 100.0 / total
    }
}

/// The combined microstep tally the machine updates on every step.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MicroTally {
    /// Per-module counts (Table 2).
    pub modules: ModuleTally,
    /// Per-branch-op counts (Table 7).
    pub branches: BranchTally,
    nop_rotor: u8,
    goto_rotor: u8,
    cond_rotor: u8,
}

impl MicroTally {
    /// Creates a zeroed tally.
    pub fn new() -> MicroTally {
        MicroTally::default()
    }

    /// Total microinstruction steps.
    pub fn steps(&self) -> u64 {
        self.modules.total()
    }

    /// Charges one step with an explicit branch operation.
    /// `with_data` notes whether the step also moved/combined data.
    pub fn step(&mut self, module: InterpModule, op: BranchOp, with_data: bool) {
        self.modules.counts[module.index()] += 1;
        self.branches.counts[op.index()] += 1;
        if with_data && !op.is_nop() {
            self.branches.with_data += 1;
        }
    }

    /// Charges a sequential (non-branching) step. The no-op rows of
    /// Table 7 are spread over the three instruction types; real
    /// microcode alternates among them depending on which fields the
    /// instruction needs, which we model with a rotor.
    pub fn step_seq(&mut self, module: InterpModule, with_data: bool) {
        self.nop_rotor = (self.nop_rotor + 1) % 3;
        let op = match self.nop_rotor {
            0 => BranchOp::Nop1,
            1 => BranchOp::Nop2,
            _ => BranchOp::Nop3,
        };
        self.step(module, op, with_data);
    }

    /// Charges an unconditional-branch step. The paper shows Type 2
    /// `goto` about three times as frequent as Type 1 (Table 7 rows 8
    /// and 14), because the Type 2 field coexists with more data
    /// operations; the rotor reproduces that mix.
    pub fn step_goto(&mut self, module: InterpModule, with_data: bool) {
        self.goto_rotor = (self.goto_rotor + 1) % 4;
        let op = if self.goto_rotor == 0 {
            BranchOp::Goto1
        } else {
            BranchOp::Goto2
        };
        self.step(module, op, with_data);
    }

    /// Charges a conditional-branch step. Microcode uses `if (cond)`
    /// and `if (not(cond))` about equally (Table 7 rows 2 and 3); the
    /// rotor alternates.
    pub fn step_cond(&mut self, module: InterpModule, with_data: bool) {
        self.cond_rotor = (self.cond_rotor + 1) % 2;
        let op = if self.cond_rotor == 0 {
            BranchOp::IfCond
        } else {
            BranchOp::IfNotCond
        };
        self.step(module, op, with_data);
    }

    /// Merges another tally (for cross-process aggregation).
    pub fn merge(&mut self, other: &MicroTally) {
        for i in 0..6 {
            self.modules.counts[i] += other.modules.counts[i];
        }
        for i in 0..16 {
            self.branches.counts[i] += other.branches.counts[i];
        }
        self.branches.with_data += other.branches.with_data;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn steps_accumulate_per_module() {
        let mut t = MicroTally::new();
        t.step(InterpModule::Unify, BranchOp::CaseTag, true);
        t.step(InterpModule::Unify, BranchOp::CaseTag, false);
        t.step(InterpModule::Control, BranchOp::Gosub, false);
        assert_eq!(t.steps(), 3);
        assert_eq!(t.modules.count(InterpModule::Unify), 2);
        let pct = t.modules.percentages();
        assert!((pct[InterpModule::Unify.index()] - 66.666).abs() < 0.01);
    }

    #[test]
    fn branch_share_excludes_nops() {
        let mut t = MicroTally::new();
        for _ in 0..6 {
            t.step_seq(InterpModule::Control, false);
        }
        for _ in 0..4 {
            t.step(InterpModule::Unify, BranchOp::CaseTag, true);
        }
        assert!((t.branches.branch_share_pct() - 40.0).abs() < 1e-9);
        assert!((t.branches.with_data_share_pct() - 40.0).abs() < 1e-9);
    }

    #[test]
    fn rotors_spread_over_types() {
        let mut t = MicroTally::new();
        for _ in 0..30 {
            t.step_seq(InterpModule::Control, false);
        }
        assert_eq!(t.branches.count(BranchOp::Nop1), 10);
        assert_eq!(t.branches.count(BranchOp::Nop2), 10);
        assert_eq!(t.branches.count(BranchOp::Nop3), 10);
        for _ in 0..40 {
            t.step_goto(InterpModule::Control, false);
        }
        assert_eq!(t.branches.count(BranchOp::Goto1), 10);
        assert_eq!(t.branches.count(BranchOp::Goto2), 30);
        for _ in 0..10 {
            t.step_cond(InterpModule::Builtin, true);
        }
        assert_eq!(t.branches.count(BranchOp::IfCond), 5);
        assert_eq!(t.branches.count(BranchOp::IfNotCond), 5);
    }

    #[test]
    fn merge_adds_counts() {
        let mut a = MicroTally::new();
        a.step(InterpModule::Cut, BranchOp::Goto2, false);
        let mut b = MicroTally::new();
        b.step(InterpModule::Cut, BranchOp::Goto2, true);
        a.merge(&b);
        assert_eq!(a.modules.count(InterpModule::Cut), 2);
        assert_eq!(a.branches.count(BranchOp::Goto2), 2);
    }

    #[test]
    fn decoded_op_is_packed_to_eight_bytes() {
        assert_eq!(std::mem::size_of::<DecodedOp>(), 8);
        assert!(!DecodedOp::not_decoded().is_decoded());
    }

    #[test]
    fn decode_extracts_goal_operands() {
        use psi_core::Word;
        let d = DecodedOp::decode(Word::goal(1000, 4));
        assert_eq!(d.kind(), OpKind::UserGoal);
        assert_eq!(d.operand(), 1000);
        assert_eq!(d.nargs(), 4);
        let b = DecodedOp::decode(Word::builtin_goal(17, 2));
        assert_eq!(b.kind(), OpKind::BuiltinGoal);
        assert_eq!(b.operand(), 17);
        assert_eq!(b.nargs(), 2);
        assert_eq!(DecodedOp::decode(Word::cut_goal()).kind(), OpKind::Cut);
        assert_eq!(DecodedOp::decode(Word::end_body()).kind(), OpKind::Return);
        assert_eq!(DecodedOp::decode(Word::int(3)).kind(), OpKind::Invalid);
        assert!(DecodedOp::decode(Word::int(3)).is_decoded());
    }

    #[test]
    fn percentages_sum_to_100() {
        let mut t = MicroTally::new();
        for (i, op) in BranchOp::ALL.iter().enumerate() {
            for _ in 0..=i {
                t.step(InterpModule::Control, *op, false);
            }
        }
        let sum: f64 = t.branches.percentages().iter().sum();
        assert!((sum - 100.0).abs() < 1e-9);
    }
}
