//! Compilation of lowered KL0 clauses into PSI machine-resident
//! instruction code.
//!
//! §2.1: "a microprogrammed interpreter interprets and executes
//! machine-resident expressions of KL0 programs (instruction code)...
//! each atom, predicate name and variable is mainly expressed in a
//! word containing the corresponding tags. If arguments for a
//! predicate don't require one-word length expressions, up to four
//! 8-bit arguments are packed into one word."
//!
//! A clause compiles to a contiguous block in the heap area:
//!
//! ```text
//! ClauseHead(arity, nlocals)
//! <arity head argument words>
//! { Goal|BuiltinGoal(id, nargs)  <argument words | one Packed word> }*
//! { CutGoal }*
//! EndBody
//! ```
//!
//! Static list/structure skeletons are emitted as separate heap blocks
//! referenced by `CodeList`/`CodeVect` words. Local variables are
//! numbered in the exact order the interpreter traverses the clause,
//! so a `FirstVar` word always precedes any `LocalVar` for the same
//! slot at run time.

use crate::Builtin;
use kl0::{ArgShape, FlatGoal, LoweredProgram, PredicateKey, Program, Term};
use psi_core::{Functor, PsiError, Result, SymbolTable, Tag, Word};
use std::collections::HashMap;

/// Compiled code for one clause.
#[derive(Debug, Clone, Copy)]
pub struct ClauseCode {
    /// Heap offset of the `ClauseHead` word.
    pub addr: u32,
    /// Head arity.
    pub arity: u8,
    /// Number of local variable slots.
    pub nlocals: u16,
}

/// Sentinel bucket id: no index filtering — the candidate list is
/// every clause in source order, and candidate positions are clause
/// indices directly. This is the only bucket the paper-faithful
/// profile ([`crate::MachineConfig::clause_indexing`] off) ever uses.
pub const BUCKET_LINEAR: u32 = u32::MAX;

/// Sentinel bucket id: only the clauses whose first head argument is
/// a variable. Selected when the dereferenced call key matches no
/// constant bucket (so every constant-headed clause is guaranteed to
/// fail head unification).
pub const BUCKET_VAR_ONLY: u32 = u32::MAX - 1;

/// Key of a first-argument index bucket — the compile-time analogue
/// of the runtime tag dispatch in WAM-style switch-on-term.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IndexKey {
    /// A non-`[]` atom, keyed by interned symbol.
    Atom(psi_core::SymbolId),
    /// An integer, keyed by value.
    Int(i32),
    /// The empty list.
    Nil,
    /// Any cons cell (all lists share one bucket).
    List,
    /// A compound term, keyed by functor symbol and arity.
    Struct(Functor),
}

/// Per-predicate first-argument clause index, built at compile time.
///
/// Each bucket holds, in source order, the clause positions whose
/// first head argument either matches the bucket's key or is a
/// variable (variables unify with anything). `var_only` holds just
/// the var-headed clauses — the candidate list for runtime keys that
/// match no bucket. Lists are immutable at run time, so candidate
/// iteration never allocates on the interpreter hot path.
#[derive(Debug, Clone, Default)]
pub struct ClauseIndex {
    map: HashMap<IndexKey, u32>,
    buckets: Vec<Vec<u32>>,
    var_only: Vec<u32>,
}

impl ClauseIndex {
    /// Records clause `pos` (a position into `Predicate::clauses`)
    /// under `key`; `None` marks a var-headed clause, which joins
    /// every bucket. Clauses must be added in source order.
    fn push(&mut self, pos: u32, key: Option<IndexKey>) {
        match key {
            None => {
                self.var_only.push(pos);
                for bucket in &mut self.buckets {
                    bucket.push(pos);
                }
            }
            Some(k) => {
                let b = match self.map.get(&k) {
                    Some(&b) => b,
                    None => {
                        let b = self.buckets.len() as u32;
                        // A new bucket starts with the var-headed
                        // clauses seen so far (all precede `pos`).
                        self.buckets.push(self.var_only.clone());
                        self.map.insert(k, b);
                        b
                    }
                };
                self.buckets[b as usize].push(pos);
            }
        }
    }

    /// Number of distinct constant keys.
    pub fn key_count(&self) -> usize {
        self.map.len()
    }

    /// Removes clause position `pos` from every bucket it joined (a
    /// var-headed clause joined all of them plus `var_only`) and
    /// shifts the higher positions down. Bucket ids are stable across
    /// removal — a bucket chosen by a live choice point keeps meaning
    /// the same key, its candidate list merely shrinks.
    fn remove(&mut self, pos: u32) {
        fn fix(v: &mut Vec<u32>, pos: u32) {
            v.retain(|&p| p != pos);
            for p in v.iter_mut() {
                if *p > pos {
                    *p -= 1;
                }
            }
        }
        for bucket in &mut self.buckets {
            fix(bucket, pos);
        }
        fix(&mut self.var_only, pos);
    }

    /// Inserts a new clause at position 0 (`asserta`), shifting every
    /// recorded position up. As with [`ClauseIndex::remove`], bucket
    /// ids stay stable.
    fn insert_front(&mut self, key: Option<IndexKey>) {
        for bucket in &mut self.buckets {
            for p in bucket.iter_mut() {
                *p += 1;
            }
        }
        for p in self.var_only.iter_mut() {
            *p += 1;
        }
        match key {
            None => {
                self.var_only.insert(0, 0);
                for bucket in &mut self.buckets {
                    bucket.insert(0, 0);
                }
            }
            Some(k) => {
                let b = match self.map.get(&k) {
                    Some(&b) => b,
                    None => {
                        let b = self.buckets.len() as u32;
                        // All var-headed positions were just shifted
                        // past 0, so seeding + front insertion keeps
                        // source order.
                        self.buckets.push(self.var_only.clone());
                        self.map.insert(k, b);
                        b
                    }
                };
                self.buckets[b as usize].insert(0, 0);
            }
        }
    }
}

/// The source form of a compiled clause, retained so `retract` can
/// trial-unify against it and report the clause it removed. Control
/// constructs (`;`, `->`, `\+`) have already been lowered away, so
/// `body` is a plain conjunction of calls, `!`, or `true`.
#[derive(Debug, Clone)]
pub struct ClauseSource {
    /// The clause head.
    pub head: Term,
    /// The (lowered) clause body; the atom `true` for facts.
    pub body: Term,
}

/// A predicate table entry.
#[derive(Debug, Clone)]
pub struct Predicate {
    /// Predicate name.
    pub name: String,
    /// Arity.
    pub arity: u8,
    /// Clauses in source order. Empty means "called but never
    /// defined" (a runtime error, as on the real system) — unless the
    /// predicate is `dynamic`, in which case the call just fails.
    pub clauses: Vec<ClauseCode>,
    /// Source form of each clause, parallel to `clauses` (used by
    /// `retract` for trial unification).
    pub sources: Vec<ClauseSource>,
    /// First-argument index over `clauses` (consulted only when
    /// [`crate::MachineConfig::clause_indexing`] is on).
    pub index: ClauseIndex,
    /// Has this predicate been touched by `assert`/`retract`? A
    /// dynamic predicate with no clauses fails cleanly instead of
    /// raising an undefined-predicate error.
    pub dynamic: bool,
}

impl Predicate {
    /// `name/arity` for error messages.
    pub fn indicator(&self) -> String {
        format!("{}/{}", self.name, self.arity)
    }

    /// The bucket to try for a dereferenced, bound first-argument
    /// key: the key's own bucket if any clause mentions the constant,
    /// otherwise only the var-headed clauses can match.
    pub fn bucket_for(&self, key: IndexKey) -> u32 {
        match self.index.map.get(&key) {
            Some(&b) => b,
            None => BUCKET_VAR_ONLY,
        }
    }

    /// Number of candidate clauses in `bucket`. A bucket id the index
    /// does not know (possible only for a stale choice point over a
    /// dynamic predicate) has zero candidates.
    pub fn candidate_count(&self, bucket: u32) -> usize {
        match bucket {
            BUCKET_LINEAR => self.clauses.len(),
            BUCKET_VAR_ONLY => self.index.var_only.len(),
            b => self.index.buckets.get(b as usize).map_or(0, Vec::len),
        }
    }

    /// The clause index of candidate `pos` in `bucket`.
    pub fn candidate(&self, bucket: u32, pos: usize) -> usize {
        match bucket {
            BUCKET_LINEAR => pos,
            BUCKET_VAR_ONLY => self.index.var_only[pos] as usize,
            b => self.index.buckets[b as usize][pos] as usize,
        }
    }
}

/// A compiled query: entry predicate plus its variable names in
/// argument order.
#[derive(Debug, Clone)]
pub struct QueryCode {
    /// Index of the generated `$query` predicate.
    pub pred: u32,
    /// The query's variable names, one per argument.
    pub vars: Vec<String>,
}

/// The machine-resident code image: heap words plus the predicate
/// table and symbol table.
#[derive(Debug, Clone)]
pub struct CodeImage {
    heap: Vec<Word>,
    preds: Vec<Predicate>,
    index: HashMap<PredicateKey, u32>,
    symbols: SymbolTable,
    query_counter: u32,
    aux_counter: u32,
}

impl CodeImage {
    /// Creates an empty image.
    pub fn new() -> CodeImage {
        CodeImage {
            heap: Vec::new(),
            preds: Vec::new(),
            index: HashMap::new(),
            symbols: SymbolTable::new(),
            query_counter: 0,
            aux_counter: 0,
        }
    }

    /// Compiles a whole lowered program.
    ///
    /// # Errors
    ///
    /// Returns [`PsiError::Compile`] for clauses that redefine
    /// built-ins or exceed encoding limits (255 arguments, 65535
    /// locals).
    pub fn compile(program: &LoweredProgram) -> Result<CodeImage> {
        let mut image = CodeImage::new();
        image.add_program(program)?;
        Ok(image)
    }

    /// Adds a lowered program to the image (incremental consult).
    ///
    /// # Errors
    ///
    /// See [`CodeImage::compile`].
    pub fn add_program(&mut self, program: &LoweredProgram) -> Result<()> {
        // Pass 1: ensure predicate entries exist so calls can resolve
        // forward references.
        for key in program.predicates() {
            if Builtin::lookup(&key.0, key.1).is_some() {
                return Err(PsiError::Compile {
                    detail: format!("cannot redefine built-in {}/{}", key.0, key.1),
                });
            }
            self.pred_index(key)?;
        }
        // Pass 2: compile clauses, growing each predicate's
        // first-argument index as its clauses are appended
        // (incremental consult keeps the index current).
        for key in program.predicates() {
            for clause in program.clauses_for(key) {
                let code = self.compile_clause(&clause.head, &clause.goals)?;
                let index_key = self.first_arg_key(&clause.head);
                let idx = self.pred_index(key)? as usize;
                let pos = self.preds[idx].clauses.len() as u32;
                self.preds[idx].clauses.push(code);
                self.preds[idx].sources.push(ClauseSource {
                    head: clause.head.clone(),
                    body: goals_to_term(&clause.goals),
                });
                self.preds[idx].index.push(pos, index_key);
            }
        }
        self.aux_counter = self.aux_counter.max(program.aux_counter());
        Ok(())
    }

    /// The aux-predicate counter to seed [`kl0::LoweredProgram::lower_from`]
    /// with, so `$auxN` names stay unique across incremental batches
    /// (consult, queries, asserted clauses).
    pub fn aux_base(&self) -> u32 {
        self.aux_counter
    }

    /// Compiles and appends (`front == false`) or prepends
    /// (`front == true`) the clause `head :- body` to its predicate,
    /// marking it dynamic. This is the database half of
    /// `assert`/`asserta`; the machine charges for it and re-syncs
    /// its decode/fused views afterwards.
    ///
    /// # Errors
    ///
    /// Returns [`PsiError::Compile`] if the clause redefines a
    /// built-in, is not callable, or exceeds encoding limits.
    pub fn assert_clause(&mut self, head: &Term, body: &Term, front: bool) -> Result<()> {
        let (name, arity) = head.functor().ok_or_else(|| PsiError::Compile {
            detail: format!("asserted clause head is not callable: {head}"),
        })?;
        let key: PredicateKey = (name.to_owned(), arity);
        let mut program = Program::new();
        program.add_clause(kl0::Clause {
            head: head.clone(),
            body: (body.functor() != Some(("true", 0))).then(|| body.clone()),
        })?;
        let lowered = LoweredProgram::lower_from(&program, self.aux_counter)?;
        self.add_program(&lowered)?;
        let idx = self.lookup(&key).ok_or_else(|| PsiError::Compile {
            detail: format!("asserted predicate {name}/{arity} missing after compilation"),
        })? as usize;
        if front && self.preds[idx].clauses.len() > 1 {
            let index_key = self.first_arg_key(head);
            let pred = &mut self.preds[idx];
            let last = pred.clauses.len() - 1;
            pred.index.remove(last as u32);
            let code = pred.clauses.remove(last);
            let source = pred.sources.remove(last);
            pred.clauses.insert(0, code);
            pred.sources.insert(0, source);
            pred.index.insert_front(index_key);
        }
        self.preds[idx].dynamic = true;
        Ok(())
    }

    /// Removes clause `pos` of predicate `idx` from the clause list,
    /// its source record, and every index bucket it joined, marking
    /// the predicate dynamic. The compiled words stay in the heap
    /// (code addresses never move), so the predecoded and fused views
    /// remain valid byte-for-byte.
    pub fn retract_clause(&mut self, idx: u32, pos: usize) {
        let pred = &mut self.preds[idx as usize];
        pred.clauses.remove(pos);
        pred.sources.remove(pos);
        pred.index.remove(pos as u32);
        pred.dynamic = true;
    }

    /// The index key of a clause head's first argument, interning
    /// symbols as needed. `None` for var-headed clauses and for
    /// zero-arity predicates (which are never indexed).
    fn first_arg_key(&mut self, head: &Term) -> Option<IndexKey> {
        let first = match head {
            Term::Struct(_, args) => args.first()?,
            _ => return None,
        };
        match first.arg_shape() {
            ArgShape::Var => None,
            ArgShape::Nil => Some(IndexKey::Nil),
            ArgShape::Atom(a) => Some(IndexKey::Atom(self.symbols.intern(a))),
            ArgShape::Int(i) => Some(IndexKey::Int(i)),
            ArgShape::List => Some(IndexKey::List),
            ArgShape::Struct(f, n) => {
                // Structures beyond 255 arguments are rejected by
                // `compile_clause` before indexing is reached.
                let id = self.symbols.intern(f);
                Some(IndexKey::Struct(Functor::new(id, n as u8)))
            }
        }
    }

    /// Compiles `goal` as a query, producing a fresh entry predicate
    /// whose arguments are the goal's variables.
    ///
    /// # Errors
    ///
    /// Returns [`PsiError::Compile`] if the goal has more than 255
    /// variables or contains unsupported constructs.
    pub fn compile_query(&mut self, goal: &Term) -> Result<QueryCode> {
        self.query_counter += 1;
        let name = format!("$query{}", self.query_counter);
        let vars: Vec<String> = goal.variables().into_iter().map(str::to_owned).collect();
        if vars.len() > 255 {
            return Err(PsiError::Compile {
                detail: "query has more than 255 variables".into(),
            });
        }
        let head = Term::compound(&name, vars.iter().map(|v| Term::var(v)).collect());
        let mut program = Program::new();
        program.add_clause(kl0::Clause {
            head,
            body: Some(goal.clone()),
        })?;
        let lowered = LoweredProgram::lower_from(&program, self.aux_counter)?;
        self.add_program(&lowered)?;
        // The lookup follows a successful `add_program` for this very
        // predicate, so a miss means the image's predicate table is
        // inconsistent — surface it as a typed error rather than a
        // panic, since this path runs on every user query.
        let arity = vars.len();
        let pred = self
            .lookup(&(name.clone(), arity))
            .ok_or_else(|| PsiError::Compile {
                detail: format!("query entry predicate {name}/{arity} missing after compilation"),
            })?;
        Ok(QueryCode { pred, vars })
    }

    /// The compiled heap image.
    pub fn heap(&self) -> &[Word] {
        &self.heap
    }

    /// How many queries have been compiled into this image. Each
    /// `compile_query` appends a `$queryN` entry predicate, so a
    /// nonzero count means the image is no longer the pristine result
    /// of consulting program text — the gate `Machine::fork` checks.
    pub fn query_count(&self) -> u32 {
        self.query_counter
    }

    /// The predicate table.
    pub fn predicates(&self) -> &[Predicate] {
        &self.preds
    }

    /// Looks up a predicate index.
    pub fn lookup(&self, key: &PredicateKey) -> Option<u32> {
        self.index.get(key).copied()
    }

    /// The predicate at `idx`.
    pub fn predicate(&self, idx: u32) -> &Predicate {
        &self.preds[idx as usize]
    }

    /// The symbol table (shared with the machine for decoding).
    pub fn symbols(&self) -> &SymbolTable {
        &self.symbols
    }

    /// Mutable symbol table access.
    pub fn symbols_mut(&mut self) -> &mut SymbolTable {
        &mut self.symbols
    }

    fn pred_index(&mut self, key: &PredicateKey) -> Result<u32> {
        if let Some(&idx) = self.index.get(key) {
            return Ok(idx);
        }
        if key.1 > 255 {
            return Err(PsiError::Compile {
                detail: format!("predicate {}/{} exceeds 255 arguments", key.0, key.1),
            });
        }
        let idx = self.preds.len() as u32;
        self.preds.push(Predicate {
            name: key.0.clone(),
            arity: key.1 as u8,
            clauses: Vec::new(),
            sources: Vec::new(),
            index: ClauseIndex::default(),
            dynamic: false,
        });
        self.index.insert(key.clone(), idx);
        Ok(idx)
    }

    fn compile_clause(&mut self, head: &Term, goals: &[FlatGoal]) -> Result<ClauseCode> {
        let (_, arity) = head.functor().ok_or_else(|| PsiError::Compile {
            detail: format!("clause head is not callable: {head}"),
        })?;
        let mut ctx = ClauseCtx::new(head, goals);
        let mut body = Vec::new();

        // Head arguments (never packed; head unification examines each
        // word's full tag).
        if let Term::Struct(_, args) = head {
            for arg in args {
                let w = self.encode_term(arg, &mut ctx)?;
                body.push(w);
            }
        }

        // Body goals.
        for goal in goals {
            match goal {
                FlatGoal::Cut => body.push(Word::cut_goal()),
                FlatGoal::Call(term) => self.encode_goal(term, &mut ctx, &mut body)?,
            }
        }
        body.push(Word::end_body());

        if ctx.next_slot > u16::MAX as u32 {
            return Err(PsiError::Compile {
                detail: "clause exceeds 65535 local variables".into(),
            });
        }

        // The skeletons were appended during encoding; the clause block
        // goes after them.
        let addr = self.heap.len() as u32;
        self.heap
            .push(Word::clause_head(arity as u8, ctx.next_slot as u16));
        self.heap.extend_from_slice(&body);
        Ok(ClauseCode {
            addr,
            arity: arity as u8,
            nlocals: ctx.next_slot as u16,
        })
    }

    fn encode_goal(
        &mut self,
        term: &Term,
        ctx: &mut ClauseCtx,
        body: &mut Vec<Word>,
    ) -> Result<()> {
        let (name, nargs) = term.functor().ok_or_else(|| PsiError::Compile {
            detail: format!("goal is not callable: {term}"),
        })?;
        let header = if let Some(b) = Builtin::lookup(name, nargs) {
            Word::builtin_goal(b.id(), nargs as u8)
        } else {
            let idx = self.pred_index(&(name.to_owned(), nargs))?;
            Word::goal(idx, nargs as u8)
        };
        body.push(header);
        let args: &[Term] = match term {
            Term::Struct(_, args) => args,
            _ => &[],
        };
        // §2.1 packing: up to four 8-bit arguments in one word.
        if !args.is_empty() && args.len() <= 4 && ctx.all_packable(args) {
            let mut ops = [0u8; 4];
            for (i, arg) in args.iter().enumerate() {
                ops[i] = ctx.pack(arg);
            }
            body.push(Word::packed(ops));
            return Ok(());
        }
        for arg in args {
            let w = self.encode_term(arg, ctx)?;
            body.push(w);
        }
        Ok(())
    }

    fn encode_term(&mut self, term: &Term, ctx: &mut ClauseCtx) -> Result<Word> {
        Ok(match term {
            Term::Atom(a) if a == "[]" => Word::nil(),
            Term::Atom(a) => {
                let id = self.symbols.intern(a);
                Word::atom(id)
            }
            Term::Int(i) => Word::int(*i),
            Term::Var(v) => ctx.encode_var(v),
            Term::Struct(f, args) if f == "." && args.len() == 2 => {
                // Reserve the two cons words, then fill them in
                // traversal order so slot numbering matches execution.
                let base = self.heap.len();
                self.heap.push(Word::undef());
                self.heap.push(Word::undef());
                let car = self.encode_term(&args[0], ctx)?;
                self.heap[base] = car;
                let cdr = self.encode_term(&args[1], ctx)?;
                self.heap[base + 1] = cdr;
                Word::code_list(base as u32)
            }
            Term::Struct(f, args) => {
                if args.len() > 255 {
                    return Err(PsiError::Compile {
                        detail: format!("structure {f} exceeds 255 arguments"),
                    });
                }
                let id = self.symbols.intern(f);
                let base = self.heap.len();
                self.heap
                    .push(Word::functor(psi_core::Functor::new(id, args.len() as u8)));
                for _ in args {
                    self.heap.push(Word::undef());
                }
                for (i, arg) in args.iter().enumerate() {
                    let w = self.encode_term(arg, ctx)?;
                    self.heap[base + 1 + i] = w;
                }
                Word::code_vect(base as u32)
            }
        })
    }
}

impl Default for CodeImage {
    fn default() -> CodeImage {
        CodeImage::new()
    }
}

/// Rebuilds a body term from flattened goals: `!` for cuts, goals
/// joined right-associatively with `,`, the atom `true` when empty.
fn goals_to_term(goals: &[FlatGoal]) -> Term {
    let mut parts: Vec<Term> = goals
        .iter()
        .map(|g| match g {
            FlatGoal::Cut => Term::atom("!"),
            FlatGoal::Call(t) => t.clone(),
        })
        .collect();
    match parts.pop() {
        None => Term::atom("true"),
        Some(last) => parts
            .into_iter()
            .rev()
            .fold(last, |acc, t| Term::Struct(",".to_owned(), vec![t, acc])),
    }
}

/// Per-clause compilation context: variable slot assignment and
/// singleton detection.
struct ClauseCtx {
    slots: HashMap<String, u32>,
    occurrences: HashMap<String, u32>,
    next_slot: u32,
}

impl ClauseCtx {
    fn new(head: &Term, goals: &[FlatGoal]) -> ClauseCtx {
        let mut true_counts: HashMap<String, u32> = HashMap::new();
        fn walk(t: &Term, counts: &mut HashMap<String, u32>) {
            match t {
                Term::Var(v) => *counts.entry(v.clone()).or_default() += 1,
                Term::Struct(_, args) => {
                    for a in args {
                        walk(a, counts);
                    }
                }
                _ => {}
            }
        }
        walk(head, &mut true_counts);
        for g in goals {
            if let FlatGoal::Call(t) = g {
                walk(t, &mut true_counts);
            }
        }
        ClauseCtx {
            slots: HashMap::new(),
            occurrences: true_counts,
            next_slot: 0,
        }
    }

    fn is_singleton(&self, v: &str) -> bool {
        self.occurrences.get(v).copied().unwrap_or(0) <= 1
    }

    fn encode_var(&mut self, v: &str) -> Word {
        if self.is_singleton(v) {
            return Word::void();
        }
        if let Some(&slot) = self.slots.get(v) {
            Word::local_var(slot as u16)
        } else {
            let slot = self.next_slot;
            self.slots.insert(v.to_owned(), slot);
            self.next_slot += 1;
            Word::first_var(slot as u16)
        }
    }

    /// Can every argument be expressed as a packed 8-bit operand
    /// (3-bit tag + 5-bit payload)?
    fn all_packable(&self, args: &[Term]) -> bool {
        let mut pending_new = 0u32;
        args.iter().all(|a| match a {
            Term::Int(i) => (0..32).contains(i),
            Term::Atom(a) => a == "[]",
            Term::Var(v) => {
                if self.is_singleton(v) {
                    true
                } else if let Some(&slot) = self.slots.get(v) {
                    slot < 32
                } else {
                    pending_new += 1;
                    self.next_slot + pending_new - 1 < 32
                }
            }
            Term::Struct(..) => false,
        })
    }

    /// Packs one argument (must have been vetted by
    /// [`ClauseCtx::all_packable`]).
    fn pack(&mut self, arg: &Term) -> u8 {
        match arg {
            Term::Int(i) => {
                Word::make_packed_operand(Tag::Int.packed_tag().expect("int packs"), *i as u8)
            }
            Term::Atom(_) => {
                Word::make_packed_operand(Tag::Nil.packed_tag().expect("nil packs"), 0)
            }
            Term::Var(v) => {
                if self.is_singleton(v) {
                    Word::make_packed_operand(Tag::Void.packed_tag().expect("void packs"), 0)
                } else if let Some(&slot) = self.slots.get(v) {
                    Word::make_packed_operand(
                        Tag::LocalVar.packed_tag().expect("local packs"),
                        slot as u8,
                    )
                } else {
                    let slot = self.next_slot;
                    self.slots.insert(v.clone(), slot);
                    self.next_slot += 1;
                    Word::make_packed_operand(
                        Tag::FirstVar.packed_tag().expect("first packs"),
                        slot as u8,
                    )
                }
            }
            Term::Struct(..) => unreachable!("structures are never packable"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kl0::Program;

    fn image(src: &str) -> CodeImage {
        let p = Program::parse(src).unwrap();
        let lp = LoweredProgram::lower(&p).unwrap();
        CodeImage::compile(&lp).unwrap()
    }

    #[test]
    fn fact_layout() {
        let img = image("p(a, 1, []).");
        let pred = img.lookup(&("p".into(), 3)).unwrap();
        let clause = img.predicate(pred).clauses[0];
        assert_eq!(clause.arity, 3);
        assert_eq!(clause.nlocals, 0);
        let h = img.heap();
        let (arity, nlocals) = h[clause.addr as usize].clause_head_value().unwrap();
        assert_eq!((arity, nlocals), (3, 0));
        assert_eq!(h[clause.addr as usize + 1].tag(), Tag::Atom);
        assert_eq!(h[clause.addr as usize + 2].int_value(), Some(1));
        assert_eq!(h[clause.addr as usize + 3].tag(), Tag::Nil);
        assert_eq!(h[clause.addr as usize + 4].tag(), Tag::EndBody);
    }

    #[test]
    fn variables_get_slots_in_traversal_order() {
        let img = image("p(X, Y, X, Y).");
        let pred = img.lookup(&("p".into(), 4)).unwrap();
        let c = img.predicate(pred).clauses[0];
        let h = img.heap();
        let a = c.addr as usize;
        assert_eq!(h[a + 1], Word::first_var(0)); // X
        assert_eq!(h[a + 2], Word::first_var(1)); // Y
        assert_eq!(h[a + 3], Word::local_var(0)); // X again
        assert_eq!(h[a + 4], Word::local_var(1)); // Y again
        assert_eq!(c.nlocals, 2);
    }

    #[test]
    fn singletons_become_void() {
        let img = image("p(X, Y) :- q(X).");
        let pred = img.lookup(&("p".into(), 2)).unwrap();
        let c = img.predicate(pred).clauses[0];
        let h = img.heap();
        assert_eq!(h[c.addr as usize + 1], Word::first_var(0)); // X used twice
        assert_eq!(h[c.addr as usize + 2], Word::void()); // Y singleton
        assert_eq!(c.nlocals, 1);
    }

    #[test]
    fn list_skeletons_are_emitted_before_the_clause() {
        let img = image("p([H|T]) :- p(T), q(H).");
        let pred = img.lookup(&("p".into(), 1)).unwrap();
        let c = img.predicate(pred).clauses[0];
        let h = img.heap();
        let arg = h[c.addr as usize + 1];
        assert_eq!(arg.tag(), Tag::CodeList);
        let skel = arg.data() as usize;
        assert!(skel < c.addr as usize, "skeleton precedes clause block");
        assert_eq!(h[skel], Word::first_var(0)); // H
        assert_eq!(h[skel + 1], Word::first_var(1)); // T
    }

    #[test]
    fn structure_skeleton_layout() {
        let img = image("p(f(a, g(X), X)).");
        let pred = img.lookup(&("p".into(), 1)).unwrap();
        let c = img.predicate(pred).clauses[0];
        let h = img.heap();
        let arg = h[c.addr as usize + 1];
        assert_eq!(arg.tag(), Tag::CodeVect);
        let base = arg.data() as usize;
        let f = h[base].functor_value().unwrap();
        assert_eq!(f.arity, 3);
        assert_eq!(img.symbols().name(f.symbol), "f");
        assert_eq!(h[base + 1].tag(), Tag::Atom);
        assert_eq!(h[base + 2].tag(), Tag::CodeVect);
        assert_eq!(h[base + 3], Word::local_var(0)); // X first occurs inside g(X)
        let inner = h[base + 2].data() as usize;
        assert_eq!(h[inner + 1], Word::first_var(0));
    }

    #[test]
    fn small_goal_args_are_packed() {
        let img = image("p(X) :- q(X, 3, []).");
        let q = img.lookup(&("q".into(), 3)).unwrap();
        assert!(img.predicate(q).clauses.is_empty(), "q is undefined");
        let pred = img.lookup(&("p".into(), 1)).unwrap();
        let c = img.predicate(pred).clauses[0];
        let h = img.heap();
        // header, head arg X, goal word, packed word, endbody
        let goal = h[c.addr as usize + 2];
        assert_eq!(goal.tag(), Tag::Goal);
        let packed = h[c.addr as usize + 3];
        assert_eq!(packed.tag(), Tag::Packed);
        let ops = packed.packed_operands().unwrap();
        let (t0, p0) = Word::packed_operand(ops[0]);
        assert_eq!(t0, Tag::LocalVar.packed_tag().unwrap());
        assert_eq!(p0, 0);
        let (t1, p1) = Word::packed_operand(ops[1]);
        assert_eq!(t1, Tag::Int.packed_tag().unwrap());
        assert_eq!(p1, 3);
        let (t2, _) = Word::packed_operand(ops[2]);
        assert_eq!(t2, Tag::Nil.packed_tag().unwrap());
    }

    #[test]
    fn atoms_and_structures_are_not_packed() {
        let img = image("p :- q(foo, 3).");
        let pred = img.lookup(&("p".into(), 0)).unwrap();
        let c = img.predicate(pred).clauses[0];
        let h = img.heap();
        let goal = h[c.addr as usize + 1];
        assert_eq!(goal.tag(), Tag::Goal);
        assert_eq!(h[c.addr as usize + 2].tag(), Tag::Atom);
        assert_eq!(h[c.addr as usize + 3].tag(), Tag::Int);
    }

    #[test]
    fn builtins_are_resolved() {
        let img = image("p(X, Y) :- X is Y + 1.");
        let pred = img.lookup(&("p".into(), 2)).unwrap();
        let c = img.predicate(pred).clauses[0];
        let h = img.heap();
        let goal = h[c.addr as usize + 3];
        assert_eq!(goal.tag(), Tag::BuiltinGoal);
        let (id, nargs) = goal.goal_value().unwrap();
        assert_eq!(Builtin::from_id(id), Some(Builtin::Is));
        assert_eq!(nargs, 2);
    }

    #[test]
    fn redefining_builtins_is_rejected() {
        let p = Program::parse("is(X, X).").unwrap();
        let lp = LoweredProgram::lower(&p).unwrap();
        assert!(CodeImage::compile(&lp).is_err());
    }

    #[test]
    fn query_compilation() {
        let mut img = image("p(1). p(2).");
        let q = img
            .compile_query(&kl0::parser::parse_term("p(X), p(Y)").unwrap())
            .unwrap();
        assert_eq!(q.vars, vec!["X".to_owned(), "Y".to_owned()]);
        let pred = img.predicate(q.pred);
        assert_eq!(pred.arity, 2);
        assert_eq!(pred.clauses.len(), 1);
    }

    #[test]
    fn index_buckets_group_clauses_by_first_argument() {
        let img = image("p(a, 1). p(b, 2). p(a, 3). p([], 4). p([_|_], 5). p(f(_), 6). p(7, 8).");
        let pred = img.predicate(img.lookup(&("p".into(), 2)).unwrap());
        assert_eq!(pred.index.key_count(), 6);
        let sym = |n: &str| img.symbols().lookup(n).unwrap();
        let candidates = |key: IndexKey| {
            let b = pred.bucket_for(key);
            (0..pred.candidate_count(b))
                .map(|i| pred.candidate(b, i))
                .collect::<Vec<_>>()
        };
        assert_eq!(candidates(IndexKey::Atom(sym("a"))), vec![0, 2]);
        assert_eq!(candidates(IndexKey::Atom(sym("b"))), vec![1]);
        assert_eq!(candidates(IndexKey::Nil), vec![3]);
        assert_eq!(candidates(IndexKey::List), vec![4]);
        assert_eq!(
            candidates(IndexKey::Struct(Functor::new(sym("f"), 1))),
            vec![5]
        );
        assert_eq!(candidates(IndexKey::Int(7)), vec![6]);
        // A key no clause mentions falls back to var-headed clauses
        // only — here there are none.
        assert_eq!(candidates(IndexKey::Int(99)), Vec::<usize>::new());
    }

    #[test]
    fn var_headed_clauses_join_every_bucket() {
        let img = image("p(a). p(X) :- q(X). p(b). q(_).");
        let pred = img.predicate(img.lookup(&("p".into(), 1)).unwrap());
        let sym = |n: &str| img.symbols().lookup(n).unwrap();
        let candidates = |key: IndexKey| {
            let b = pred.bucket_for(key);
            (0..pred.candidate_count(b))
                .map(|i| pred.candidate(b, i))
                .collect::<Vec<_>>()
        };
        // Bucket order preserves source order even when the var clause
        // joins a bucket created before (a) or after (b) it.
        assert_eq!(candidates(IndexKey::Atom(sym("a"))), vec![0, 1]);
        assert_eq!(candidates(IndexKey::Atom(sym("b"))), vec![1, 2]);
        // Unmatched constants still reach the var-headed clause.
        assert_eq!(candidates(IndexKey::Int(0)), vec![1]);
    }

    #[test]
    fn linear_bucket_is_identity() {
        let img = image("p(a). p(b). p(c).");
        let pred = img.predicate(img.lookup(&("p".into(), 1)).unwrap());
        assert_eq!(pred.candidate_count(BUCKET_LINEAR), 3);
        for i in 0..3 {
            assert_eq!(pred.candidate(BUCKET_LINEAR, i), i);
        }
    }

    #[test]
    fn zero_arity_predicates_are_never_indexed() {
        let img = image("p. p :- q. q.");
        let pred = img.predicate(img.lookup(&("p".into(), 0)).unwrap());
        assert_eq!(pred.index.key_count(), 0);
        // Both clauses are var-only (match any call).
        assert_eq!(pred.candidate_count(BUCKET_VAR_ONLY), 2);
    }

    #[test]
    fn incremental_consult_extends_the_index() {
        let p1 = Program::parse("p(a, 1).").unwrap();
        let mut img = CodeImage::compile(&LoweredProgram::lower(&p1).unwrap()).unwrap();
        let p2 = Program::parse("p(a, 2). p(b, 3).").unwrap();
        img.add_program(&LoweredProgram::lower(&p2).unwrap())
            .unwrap();
        let pred = img.predicate(img.lookup(&("p".into(), 2)).unwrap());
        let a = img.symbols().lookup("a").unwrap();
        let b = pred.bucket_for(IndexKey::Atom(a));
        assert_eq!(pred.candidate_count(b), 2);
        assert_eq!(pred.candidate(b, 0), 0);
        assert_eq!(pred.candidate(b, 1), 1);
    }

    #[test]
    fn retract_removes_var_headed_clause_from_every_bucket() {
        // The var-headed clause (pos 1) joined the `a`, `b`, `[]`
        // and int buckets plus var_only; removing it must purge all
        // of them and renumber the later positions.
        let mut img = image("p(a). p(X) :- q(X). p(b). p([]). p(7). q(_).");
        let idx = img.lookup(&("p".into(), 1)).unwrap();
        img.retract_clause(idx, 1);
        let pred = img.predicate(idx);
        assert!(pred.dynamic);
        assert_eq!(pred.clauses.len(), 4);
        assert_eq!(pred.sources.len(), 4);
        let sym = |n: &str| img.symbols().lookup(n).unwrap();
        let candidates = |key: IndexKey| {
            let b = pred.bucket_for(key);
            (0..pred.candidate_count(b))
                .map(|i| pred.candidate(b, i))
                .collect::<Vec<_>>()
        };
        assert_eq!(candidates(IndexKey::Atom(sym("a"))), vec![0]);
        assert_eq!(candidates(IndexKey::Atom(sym("b"))), vec![1]);
        assert_eq!(candidates(IndexKey::Nil), vec![2]);
        assert_eq!(candidates(IndexKey::Int(7)), vec![3]);
        // Unmatched keys fell back to the var clause; now nothing.
        assert_eq!(candidates(IndexKey::Int(99)), Vec::<usize>::new());
        assert_eq!(pred.candidate_count(BUCKET_VAR_ONLY), 0);
    }

    #[test]
    fn assert_clause_front_and_back_maintain_the_index() {
        let mut img = image("p(a, 1).");
        let a1 = kl0::parser::parse_term("p(a, 2)").unwrap();
        let a2 = kl0::parser::parse_term("p(b, 3)").unwrap();
        let a3 = kl0::parser::parse_term("p(a, 0)").unwrap();
        let truth = Term::atom("true");
        img.assert_clause(&a1, &truth, false).unwrap();
        img.assert_clause(&a2, &truth, false).unwrap();
        img.assert_clause(&a3, &truth, true).unwrap();
        let idx = img.lookup(&("p".into(), 2)).unwrap();
        let pred = img.predicate(idx);
        assert!(pred.dynamic);
        // Source order is now: p(a,0), p(a,1), p(a,2), p(b,3).
        assert_eq!(pred.sources[0].head.to_string(), "p(a,0)");
        assert_eq!(pred.sources[3].head.to_string(), "p(b,3)");
        let sym = |n: &str| img.symbols().lookup(n).unwrap();
        let candidates = |key: IndexKey| {
            let b = pred.bucket_for(key);
            (0..pred.candidate_count(b))
                .map(|i| pred.candidate(b, i))
                .collect::<Vec<_>>()
        };
        assert_eq!(candidates(IndexKey::Atom(sym("a"))), vec![0, 1, 2]);
        assert_eq!(candidates(IndexKey::Atom(sym("b"))), vec![3]);
    }

    #[test]
    fn assert_clause_with_control_body_gets_fresh_aux_names() {
        // The asserted body's `;` lowers to an aux predicate whose
        // name must not collide with the aux of the consulted source.
        let mut img = image("p(X) :- (X = 1 ; X = 2).");
        let head = kl0::parser::parse_term("p(X)").unwrap();
        let body = kl0::parser::parse_term("(X = 3 ; X = 4)").unwrap();
        img.assert_clause(&head, &body, false).unwrap();
        let aux_count = img
            .predicates()
            .iter()
            .filter(|p| p.name.starts_with("$aux"))
            .count();
        assert_eq!(aux_count, 2, "each batch gets its own aux predicate");
    }

    #[test]
    fn cut_compiles_to_cut_goal() {
        let img = image("p :- q, !, r. q. r.");
        let pred = img.lookup(&("p".into(), 0)).unwrap();
        let c = img.predicate(pred).clauses[0];
        let h = img.heap();
        // header, goal q, cut, goal r, endbody
        assert_eq!(h[c.addr as usize + 1].tag(), Tag::Goal);
        assert_eq!(h[c.addr as usize + 2].tag(), Tag::CutGoal);
        assert_eq!(h[c.addr as usize + 3].tag(), Tag::Goal);
        assert_eq!(h[c.addr as usize + 4].tag(), Tag::EndBody);
    }
}
