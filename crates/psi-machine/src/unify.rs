//! Unification, structure copying, binding and the trail.
//!
//! The PSI unifies caller argument values against machine-resident
//! head code, copying static skeletons to the global stack when the
//! target is unbound (the structure-copy execution model of §2.1).
//! Binding records trail entries so backtracking can restore the
//! state; conditional trailing only trails cells older than the
//! newest choice point.

use crate::machine::Machine;
use crate::ucode::{BranchOp, InterpModule};
use psi_core::{Address, PsiError, Result, Tag, Word};

impl Machine {
    /// Dereferences a value word: follows `Ref` chains until reaching
    /// either a value (returned with `None`) or an unbound cell
    /// (returns the `Ref` and `Some(cell address)`).
    pub(crate) fn deref(&mut self, m: InterpModule, w: Word) -> Result<(Word, Option<Address>)> {
        let mut cur = w;
        loop {
            if cur.tag() != Tag::Ref {
                return Ok((cur, None));
            }
            let addr = cur.address_value().ok_or_else(|| PsiError::EvalError {
                detail: "corrupt reference word".into(),
            })?;
            let content = self.mem_read_dispatch(m, addr)?;
            match content.tag() {
                Tag::Undef => return Ok((cur, Some(addr))),
                Tag::Ref => cur = content,
                _ => return Ok((content, None)),
            }
        }
    }

    /// Binds the unbound cell at `addr` to `value`, trailing it when a
    /// choice point could need it restored.
    pub(crate) fn bind(&mut self, addr: Address, value: Word) -> Result<()> {
        // Conditional trailing: only cells older than the newest
        // choice point need a trail entry.
        let needs_trail = match self.procs[self.cur].cps.last() {
            Some(cp) => match addr.area() {
                psi_core::Area::GlobalStack => addr.offset() < cp.saved_global_top,
                psi_core::Area::Heap => false, // heap vectors are destructive
                _ => addr.offset() < cp.saved_local_top,
            },
            None => false,
        };
        self.micro_cond(InterpModule::Trail, false);
        if needs_trail {
            let t = self.procs[self.cur].trail_top;
            self.wf.touch_trail_buffer(true);
            let taddr = self.trail_addr(t);
            self.mem_push(InterpModule::Trail, taddr, Word::trail_ref(addr))?;
            self.procs[self.cur].trail_top = t + 1;
        }
        self.mem_write(InterpModule::Unify, addr, value)
    }

    /// General unification of two runtime values. Returns whether it
    /// succeeded; bindings stand either way (failure is followed by
    /// backtracking, which unwinds them).
    pub(crate) fn unify(&mut self, a: Word, b: Word) -> Result<bool> {
        // The unify microsubroutine (gosub/return, Table 7 rows 9/10).
        self.micro(InterpModule::Unify, BranchOp::Gosub, false);
        let r = self.unify_inner(a, b);
        self.micro(InterpModule::Unify, BranchOp::Return, false);
        r
    }

    fn unify_inner(&mut self, a: Word, b: Word) -> Result<bool> {
        let mut work = vec![(a, b)];
        while let Some((a, b)) = work.pop() {
            let (av, acell) = self.deref(InterpModule::Unify, a)?;
            let (bv, bcell) = self.deref(InterpModule::Unify, b)?;
            self.micro(InterpModule::Unify, BranchOp::CaseTag, true);
            self.wf
                .touch_read(crate::wf::WfField::Source1, crate::wf::WfMode::Direct00);
            self.wf
                .touch_read(crate::wf::WfField::Source2, crate::wf::WfMode::Direct00);
            match (acell, bcell) {
                (Some(ac), Some(bc)) => {
                    if ac == bc {
                        continue;
                    }
                    // Bind the younger cell to the older to keep
                    // reference chains pointing down the stack.
                    if ac.raw() < bc.raw() {
                        self.bind(bc, Word::reference(ac))?;
                    } else {
                        self.bind(ac, Word::reference(bc))?;
                    }
                }
                (Some(ac), None) => self.bind(ac, bv)?,
                (None, Some(bc)) => self.bind(bc, av)?,
                (None, None) => match (av.tag(), bv.tag()) {
                    (Tag::Int, Tag::Int) | (Tag::Atom, Tag::Atom) => {
                        self.test_const_step(InterpModule::Unify);
                        if av.data() != bv.data() {
                            return Ok(false);
                        }
                    }
                    (Tag::Nil, Tag::Nil) => {}
                    (Tag::List, Tag::List) => {
                        let ap = av.address_value().expect("List");
                        let bp = bv.address_value().expect("List");
                        if ap != bp {
                            let acar = self.read_value(InterpModule::Unify, ap)?;
                            let bcar = self.read_value(InterpModule::Unify, bp)?;
                            let acdr = self.read_value(InterpModule::Unify, ap.offset_by(1))?;
                            let bcdr = self.read_value(InterpModule::Unify, bp.offset_by(1))?;
                            work.push((acdr, bcdr));
                            work.push((acar, bcar));
                        }
                    }
                    (Tag::Vect, Tag::Vect) => {
                        let ap = av.address_value().expect("Vect");
                        let bp = bv.address_value().expect("Vect");
                        if ap != bp {
                            let af = self.mem_read(InterpModule::Unify, ap)?;
                            let bf = self.mem_read(InterpModule::Unify, bp)?;
                            self.test_const_step(InterpModule::Unify);
                            if af != bf {
                                return Ok(false);
                            }
                            let arity = af.functor_value().map(|f| f.arity).unwrap_or(0);
                            for i in (1..=arity as u32).rev() {
                                let aa = self.read_value(InterpModule::Unify, ap.offset_by(i))?;
                                let ba = self.read_value(InterpModule::Unify, bp.offset_by(i))?;
                                work.push((aa, ba));
                            }
                        }
                    }
                    (Tag::HeapVect, Tag::HeapVect) => {
                        if av.data() != bv.data() {
                            return Ok(false);
                        }
                    }
                    _ => return Ok(false),
                },
            }
        }
        Ok(true)
    }

    /// Structural identity (`==/2`) without binding.
    pub(crate) fn term_identical(&mut self, a: Word, b: Word) -> Result<bool> {
        let mut work = vec![(a, b)];
        while let Some((a, b)) = work.pop() {
            let (av, acell) = self.deref(InterpModule::Builtin, a)?;
            let (bv, bcell) = self.deref(InterpModule::Builtin, b)?;
            self.micro(InterpModule::Builtin, BranchOp::CaseTag, true);
            match (acell, bcell) {
                (Some(ac), Some(bc)) => {
                    if ac != bc {
                        return Ok(false);
                    }
                }
                (None, None) => match (av.tag(), bv.tag()) {
                    (Tag::Int, Tag::Int) | (Tag::Atom, Tag::Atom) => {
                        if av.data() != bv.data() {
                            return Ok(false);
                        }
                    }
                    (Tag::Nil, Tag::Nil) => {}
                    (Tag::List, Tag::List) => {
                        let ap = av.address_value().expect("List");
                        let bp = bv.address_value().expect("List");
                        if ap != bp {
                            let acar = self.read_value(InterpModule::Builtin, ap)?;
                            let bcar = self.read_value(InterpModule::Builtin, bp)?;
                            let acdr = self.read_value(InterpModule::Builtin, ap.offset_by(1))?;
                            let bcdr = self.read_value(InterpModule::Builtin, bp.offset_by(1))?;
                            work.push((acdr, bcdr));
                            work.push((acar, bcar));
                        }
                    }
                    (Tag::Vect, Tag::Vect) => {
                        let ap = av.address_value().expect("Vect");
                        let bp = bv.address_value().expect("Vect");
                        if ap != bp {
                            let af = self.mem_read(InterpModule::Builtin, ap)?;
                            let bf = self.mem_read(InterpModule::Builtin, bp)?;
                            if af != bf {
                                return Ok(false);
                            }
                            let arity = af.functor_value().map(|f| f.arity).unwrap_or(0);
                            for i in (1..=arity as u32).rev() {
                                let aa = self.read_value(InterpModule::Builtin, ap.offset_by(i))?;
                                let ba = self.read_value(InterpModule::Builtin, bp.offset_by(i))?;
                                work.push((aa, ba));
                            }
                        }
                    }
                    (Tag::HeapVect, Tag::HeapVect) => {
                        if av.data() != bv.data() {
                            return Ok(false);
                        }
                    }
                    _ => return Ok(false),
                },
                _ => return Ok(false),
            }
        }
        Ok(true)
    }

    /// Unifies one head argument word against a caller argument value.
    pub(crate) fn unify_head_arg(&mut self, code_word: Word, arg: Word) -> Result<bool> {
        match code_word.tag() {
            Tag::FirstVar => {
                let slot = code_word.var_slot().expect("FirstVar");
                self.write_slot(InterpModule::Unify, slot, arg, true)?;
                Ok(true)
            }
            Tag::Void => Ok(true),
            Tag::LocalVar => {
                let slot = code_word.var_slot().expect("LocalVar");
                let v = self.read_slot(InterpModule::Unify, slot, true)?;
                self.unify(v, arg)
            }
            Tag::Atom | Tag::Int | Tag::Nil => self.unify(code_word, arg),
            Tag::CodeList | Tag::CodeVect => self.unify_skeleton(code_word, arg),
            other => Err(PsiError::EvalError {
                detail: format!("corrupt head argument word ({other})"),
            }),
        }
    }

    /// Unifies a static code skeleton against a runtime value: match
    /// element-wise if bound, copy to the global stack if unbound.
    pub(crate) fn unify_skeleton(&mut self, code_word: Word, value: Word) -> Result<bool> {
        let (v, cell) = self.deref(InterpModule::Unify, value)?;
        if let Some(addr) = cell {
            let copied = self.copy_skeleton(code_word)?;
            self.bind(addr, copied)?;
            return Ok(true);
        }
        let off = code_word.data();
        self.micro(InterpModule::Unify, BranchOp::CaseTag, true);
        match (code_word.tag(), v.tag()) {
            (Tag::CodeList, Tag::List) => {
                let ptr = v.address_value().expect("List");
                for i in 0..2 {
                    let cw = self.fetch_code(InterpModule::Unify, BranchOp::CaseTag, off + i)?;
                    let mv = self.read_value(InterpModule::Unify, ptr.offset_by(i))?;
                    if !self.unify_code_arg(cw, mv)? {
                        return Ok(false);
                    }
                }
                Ok(true)
            }
            (Tag::CodeVect, Tag::Vect) => {
                let ptr = v.address_value().expect("Vect");
                let cf = self.fetch_code(InterpModule::Unify, BranchOp::CaseTag, off)?;
                let mf = self.mem_read(InterpModule::Unify, ptr)?;
                self.micro_cond(InterpModule::Unify, true);
                if cf != mf {
                    return Ok(false);
                }
                let arity = cf.functor_value().map(|f| f.arity).unwrap_or(0);
                self.micro(InterpModule::Unify, BranchOp::LoadJr, true);
                for i in 1..=arity as u32 {
                    let cw = self.fetch_code(InterpModule::Unify, BranchOp::CaseTag, off + i)?;
                    let mv = self.read_value(InterpModule::Unify, ptr.offset_by(i))?;
                    if !self.unify_code_arg(cw, mv)? {
                        return Ok(false);
                    }
                }
                Ok(true)
            }
            _ => Ok(false),
        }
    }

    /// Unifies one skeleton element word against a runtime value.
    fn unify_code_arg(&mut self, code_word: Word, value: Word) -> Result<bool> {
        match code_word.tag() {
            Tag::Atom | Tag::Int | Tag::Nil => self.unify(code_word, value),
            Tag::FirstVar => {
                let slot = code_word.var_slot().expect("FirstVar");
                self.write_slot(InterpModule::Unify, slot, value, true)?;
                Ok(true)
            }
            Tag::LocalVar => {
                let slot = code_word.var_slot().expect("LocalVar");
                let v = self.read_slot(InterpModule::Unify, slot, true)?;
                self.unify(v, value)
            }
            Tag::Void => Ok(true),
            Tag::CodeList | Tag::CodeVect => self.unify_skeleton(code_word, value),
            other => Err(PsiError::EvalError {
                detail: format!("corrupt skeleton word ({other})"),
            }),
        }
    }

    /// Copies a static skeleton to the global stack, creating fresh
    /// cells for first-occurrence variables, and returns the value
    /// word for the copy.
    pub(crate) fn copy_skeleton(&mut self, code_word: Word) -> Result<Word> {
        self.micro(InterpModule::Unify, BranchOp::Gosub, false);
        let r = self.copy_skeleton_inner(code_word);
        self.micro(InterpModule::Unify, BranchOp::Return, false);
        r
    }

    fn copy_skeleton_inner(&mut self, code_word: Word) -> Result<Word> {
        let off = code_word.data();
        match code_word.tag() {
            Tag::CodeList => {
                let base = self.procs[self.cur].global_top;
                self.procs[self.cur].global_top = base + 2;
                for i in 0..2 {
                    let cw = self.fetch_code(InterpModule::Unify, BranchOp::CaseTag, off + i)?;
                    let w = self.copy_code_arg(cw)?;
                    self.mem_push(InterpModule::Unify, self.global_addr(base + i), w)?;
                }
                Ok(Word::list(self.global_addr(base)))
            }
            Tag::CodeVect => {
                let cf = self.fetch_code(InterpModule::Unify, BranchOp::CaseTag, off)?;
                let arity = cf.functor_value().map(|f| f.arity).unwrap_or(0) as u32;
                let base = self.procs[self.cur].global_top;
                self.procs[self.cur].global_top = base + 1 + arity;
                self.mem_push(InterpModule::Unify, self.global_addr(base), cf)?;
                self.micro(InterpModule::Unify, BranchOp::LoadJr, true);
                for i in 1..=arity {
                    let cw = self.fetch_code(InterpModule::Unify, BranchOp::CaseTag, off + i)?;
                    let w = self.copy_code_arg(cw)?;
                    self.mem_push(InterpModule::Unify, self.global_addr(base + i), w)?;
                }
                Ok(Word::vect(self.global_addr(base)))
            }
            other => Err(PsiError::EvalError {
                detail: format!("not a skeleton word ({other})"),
            }),
        }
    }

    /// Copies one skeleton element into a runtime value word.
    fn copy_code_arg(&mut self, code_word: Word) -> Result<Word> {
        match code_word.tag() {
            Tag::Atom | Tag::Int | Tag::Nil => Ok(code_word),
            Tag::FirstVar => {
                let slot = code_word.var_slot().expect("FirstVar");
                let cell = self.new_global_cell(InterpModule::Unify)?;
                self.write_slot(InterpModule::Unify, slot, Word::reference(cell), true)?;
                Ok(Word::reference(cell))
            }
            Tag::LocalVar => {
                let slot = code_word.var_slot().expect("LocalVar");
                self.read_slot(InterpModule::Unify, slot, true)
            }
            Tag::Void => {
                let cell = self.new_global_cell(InterpModule::Unify)?;
                Ok(Word::reference(cell))
            }
            Tag::CodeList | Tag::CodeVect => self.copy_skeleton_inner(code_word),
            other => Err(PsiError::EvalError {
                detail: format!("corrupt skeleton element ({other})"),
            }),
        }
    }
}
