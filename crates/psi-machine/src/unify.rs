//! Unification, structure copying, binding and the trail.
//!
//! The PSI unifies caller argument values against machine-resident
//! head code, copying static skeletons to the global stack when the
//! target is unbound (the structure-copy execution model of §2.1).
//! Binding records trail entries so backtracking can restore the
//! state; conditional trailing only trails cells older than the
//! newest choice point.

use crate::machine::Machine;
use crate::ucode::{BranchOp, InterpModule};
use psi_core::{Address, PsiError, Result, Tag, Word};

impl Machine {
    /// Dereferences a value word: follows `Ref` chains until reaching
    /// either a value (returned with `None`) or an unbound cell
    /// (returns the `Ref` and `Some(cell address)`).
    pub(crate) fn deref(&mut self, m: InterpModule, w: Word) -> Result<(Word, Option<Address>)> {
        let mut cur = w;
        loop {
            if cur.tag() != Tag::Ref {
                return Ok((cur, None));
            }
            let addr = cur.address_value().ok_or_else(|| PsiError::EvalError {
                detail: "corrupt reference word".into(),
            })?;
            let content = self.mem_read_dispatch(m, addr)?;
            match content.tag() {
                Tag::Undef => return Ok((cur, Some(addr))),
                Tag::Ref => cur = content,
                _ => return Ok((content, None)),
            }
        }
    }

    /// Binds the unbound cell at `addr` to `value`, trailing it when a
    /// choice point could need it restored.
    pub(crate) fn bind(&mut self, addr: Address, value: Word) -> Result<()> {
        // Conditional trailing: only cells older than the newest
        // choice point need a trail entry — unless a trial
        // unification (`retract/1`) asked for every binding to be
        // trailed so a failed trial can be undone even with no choice
        // point below it.
        let needs_trail = self.force_trail
            || match self.procs[self.cur].cps.last() {
                Some(cp) => match addr.area() {
                    psi_core::Area::GlobalStack => addr.offset() < cp.saved_global_top,
                    psi_core::Area::Heap => false, // heap vectors are destructive
                    _ => addr.offset() < cp.saved_local_top,
                },
                None => false,
            };
        if self.lane_compiled {
            // Compiled lane: one fused packet for the whole bind
            // (trail test + optional trail push + cell write), with
            // the trail entry kept host-side (see `Proc::trail`).
            if needs_trail {
                let t = self.procs[self.cur].trail_top;
                self.charge_packet(&self.charges.bind_trailed);
                self.procs[self.cur].trail.push(Word::trail_ref(addr));
                self.procs[self.cur].trail_top = t + 1;
            } else {
                self.charge_packet(&self.charges.bind_plain);
            }
            return self.bus.write(addr, value);
        }
        self.micro_cond(InterpModule::Trail, false);
        if needs_trail {
            let t = self.procs[self.cur].trail_top;
            self.wf.touch_trail_buffer(true);
            let taddr = self.trail_addr(t);
            self.mem_push(InterpModule::Trail, taddr, Word::trail_ref(addr))?;
            self.procs[self.cur].trail_top = t + 1;
        }
        self.mem_write(InterpModule::Unify, addr, value)
    }

    /// General unification of two runtime values. Returns whether it
    /// succeeded; bindings stand either way (failure is followed by
    /// backtracking, which unwinds them).
    pub(crate) fn unify(&mut self, a: Word, b: Word) -> Result<bool> {
        if self.lane_compiled {
            // Gosub and return are rotor-independent, so the fused
            // bracket packet commutes with the body's charges.
            self.charge_packet(&self.charges.unify_frame);
            return self.unify_inner(a, b);
        }
        // The unify microsubroutine (gosub/return, Table 7 rows 9/10).
        self.micro(InterpModule::Unify, BranchOp::Gosub, false);
        let r = self.unify_inner(a, b);
        self.micro(InterpModule::Unify, BranchOp::Return, false);
        r
    }

    pub(crate) fn unify_inner(&mut self, a: Word, b: Word) -> Result<bool> {
        // The work stack is a machine-owned scratch buffer: unification
        // runs once per head argument, so a fresh `Vec` here would put
        // a malloc/free pair on the hottest path of every lane.
        let mut work = std::mem::take(&mut self.scratch_unify);
        work.clear();
        work.push((a, b));
        let r = if self.lane_compiled {
            self.unify_work_compiled(&mut work)
        } else {
            self.unify_work(&mut work)
        };
        work.clear();
        self.scratch_unify = work;
        r
    }

    /// Compiled-lane twin of [`Machine::unify_work`]: identical host
    /// semantics and identical charges, but each pair's eager
    /// microstep sequence is one fused packet per case arm (the
    /// packets are recorded from the same `step_*` calls the eager
    /// loop makes, so the lanes cannot diverge).
    fn unify_work_compiled(&mut self, work: &mut Vec<(Word, Word)>) -> Result<bool> {
        while let Some((a, b)) = work.pop() {
            let (av, acell) = self.deref(InterpModule::Unify, a)?;
            let (bv, bcell) = self.deref(InterpModule::Unify, b)?;
            match (acell, bcell) {
                (Some(ac), Some(bc)) => {
                    self.charge_packet(&self.charges.unify_case);
                    if ac == bc {
                        continue;
                    }
                    if ac.raw() < bc.raw() {
                        self.bind(bc, Word::reference(ac))?;
                    } else {
                        self.bind(ac, Word::reference(bc))?;
                    }
                }
                (Some(ac), None) => {
                    self.charge_packet(&self.charges.unify_case);
                    self.bind(ac, bv)?;
                }
                (None, Some(bc)) => {
                    self.charge_packet(&self.charges.unify_case);
                    self.bind(bc, av)?;
                }
                (None, None) => match (av.tag(), bv.tag()) {
                    (Tag::Int, Tag::Int) | (Tag::Atom, Tag::Atom) => {
                        self.charge_packet(&self.charges.unify_const);
                        if av.data() != bv.data() {
                            return Ok(false);
                        }
                    }
                    (Tag::Nil, Tag::Nil) => self.charge_packet(&self.charges.unify_case),
                    (Tag::List, Tag::List) => {
                        let ap = av.address_value().expect("List");
                        let bp = bv.address_value().expect("List");
                        if ap == bp {
                            self.charge_packet(&self.charges.unify_case);
                        } else {
                            self.charge_packet(&self.charges.unify_list);
                            let acar = self.read_value_uncharged(ap)?;
                            let bcar = self.read_value_uncharged(bp)?;
                            let acdr = self.read_value_uncharged(ap.offset_by(1))?;
                            let bcdr = self.read_value_uncharged(bp.offset_by(1))?;
                            work.push((acdr, bcdr));
                            work.push((acar, bcar));
                        }
                    }
                    (Tag::Vect, Tag::Vect) => {
                        let ap = av.address_value().expect("Vect");
                        let bp = bv.address_value().expect("Vect");
                        if ap == bp {
                            self.charge_packet(&self.charges.unify_case);
                        } else {
                            self.charge_packet(&self.charges.unify_vect_head);
                            let af = self.bus.read(ap)?;
                            let bf = self.bus.read(bp)?;
                            if af != bf {
                                return Ok(false);
                            }
                            let arity = af.functor_value().map(|f| f.arity).unwrap_or(0);
                            for i in (1..=arity as u32).rev() {
                                self.charge_packet(&self.charges.unify_pair_read);
                                let aa = self.read_value_uncharged(ap.offset_by(i))?;
                                let ba = self.read_value_uncharged(bp.offset_by(i))?;
                                work.push((aa, ba));
                            }
                        }
                    }
                    (Tag::HeapVect, Tag::HeapVect) => {
                        self.charge_packet(&self.charges.unify_case);
                        if av.data() != bv.data() {
                            return Ok(false);
                        }
                    }
                    _ => {
                        self.charge_packet(&self.charges.unify_case);
                        return Ok(false);
                    }
                },
            }
        }
        Ok(true)
    }

    /// A value read whose memory charges are already covered by the
    /// caller's fused packet (compiled lane only).
    fn read_value_uncharged(&mut self, addr: Address) -> Result<Word> {
        let w = self.bus.read(addr)?;
        Ok(if w.is_undef() {
            Word::reference(addr)
        } else {
            w
        })
    }

    fn unify_work(&mut self, work: &mut Vec<(Word, Word)>) -> Result<bool> {
        while let Some((a, b)) = work.pop() {
            let (av, acell) = self.deref(InterpModule::Unify, a)?;
            let (bv, bcell) = self.deref(InterpModule::Unify, b)?;
            self.micro(InterpModule::Unify, BranchOp::CaseTag, true);
            self.wf
                .touch_read(crate::wf::WfField::Source1, crate::wf::WfMode::Direct00);
            self.wf
                .touch_read(crate::wf::WfField::Source2, crate::wf::WfMode::Direct00);
            match (acell, bcell) {
                (Some(ac), Some(bc)) => {
                    if ac == bc {
                        continue;
                    }
                    // Bind the younger cell to the older to keep
                    // reference chains pointing down the stack.
                    if ac.raw() < bc.raw() {
                        self.bind(bc, Word::reference(ac))?;
                    } else {
                        self.bind(ac, Word::reference(bc))?;
                    }
                }
                (Some(ac), None) => self.bind(ac, bv)?,
                (None, Some(bc)) => self.bind(bc, av)?,
                (None, None) => match (av.tag(), bv.tag()) {
                    (Tag::Int, Tag::Int) | (Tag::Atom, Tag::Atom) => {
                        self.test_const_step(InterpModule::Unify);
                        if av.data() != bv.data() {
                            return Ok(false);
                        }
                    }
                    (Tag::Nil, Tag::Nil) => {}
                    (Tag::List, Tag::List) => {
                        let ap = av.address_value().expect("List");
                        let bp = bv.address_value().expect("List");
                        if ap != bp {
                            let acar = self.read_value(InterpModule::Unify, ap)?;
                            let bcar = self.read_value(InterpModule::Unify, bp)?;
                            let acdr = self.read_value(InterpModule::Unify, ap.offset_by(1))?;
                            let bcdr = self.read_value(InterpModule::Unify, bp.offset_by(1))?;
                            work.push((acdr, bcdr));
                            work.push((acar, bcar));
                        }
                    }
                    (Tag::Vect, Tag::Vect) => {
                        let ap = av.address_value().expect("Vect");
                        let bp = bv.address_value().expect("Vect");
                        if ap != bp {
                            let af = self.mem_read(InterpModule::Unify, ap)?;
                            let bf = self.mem_read(InterpModule::Unify, bp)?;
                            self.test_const_step(InterpModule::Unify);
                            if af != bf {
                                return Ok(false);
                            }
                            let arity = af.functor_value().map(|f| f.arity).unwrap_or(0);
                            for i in (1..=arity as u32).rev() {
                                let aa = self.read_value(InterpModule::Unify, ap.offset_by(i))?;
                                let ba = self.read_value(InterpModule::Unify, bp.offset_by(i))?;
                                work.push((aa, ba));
                            }
                        }
                    }
                    (Tag::HeapVect, Tag::HeapVect) => {
                        if av.data() != bv.data() {
                            return Ok(false);
                        }
                    }
                    _ => return Ok(false),
                },
            }
        }
        Ok(true)
    }

    /// Structural identity (`==/2`) without binding.
    pub(crate) fn term_identical(&mut self, a: Word, b: Word) -> Result<bool> {
        let mut work = std::mem::take(&mut self.scratch_unify);
        work.clear();
        work.push((a, b));
        let r = self.term_identical_work(&mut work);
        work.clear();
        self.scratch_unify = work;
        r
    }

    fn term_identical_work(&mut self, work: &mut Vec<(Word, Word)>) -> Result<bool> {
        while let Some((a, b)) = work.pop() {
            let (av, acell) = self.deref(InterpModule::Builtin, a)?;
            let (bv, bcell) = self.deref(InterpModule::Builtin, b)?;
            self.micro(InterpModule::Builtin, BranchOp::CaseTag, true);
            match (acell, bcell) {
                (Some(ac), Some(bc)) => {
                    if ac != bc {
                        return Ok(false);
                    }
                }
                (None, None) => match (av.tag(), bv.tag()) {
                    (Tag::Int, Tag::Int) | (Tag::Atom, Tag::Atom) => {
                        if av.data() != bv.data() {
                            return Ok(false);
                        }
                    }
                    (Tag::Nil, Tag::Nil) => {}
                    (Tag::List, Tag::List) => {
                        let ap = av.address_value().expect("List");
                        let bp = bv.address_value().expect("List");
                        if ap != bp {
                            let acar = self.read_value(InterpModule::Builtin, ap)?;
                            let bcar = self.read_value(InterpModule::Builtin, bp)?;
                            let acdr = self.read_value(InterpModule::Builtin, ap.offset_by(1))?;
                            let bcdr = self.read_value(InterpModule::Builtin, bp.offset_by(1))?;
                            work.push((acdr, bcdr));
                            work.push((acar, bcar));
                        }
                    }
                    (Tag::Vect, Tag::Vect) => {
                        let ap = av.address_value().expect("Vect");
                        let bp = bv.address_value().expect("Vect");
                        if ap != bp {
                            let af = self.mem_read(InterpModule::Builtin, ap)?;
                            let bf = self.mem_read(InterpModule::Builtin, bp)?;
                            if af != bf {
                                return Ok(false);
                            }
                            let arity = af.functor_value().map(|f| f.arity).unwrap_or(0);
                            for i in (1..=arity as u32).rev() {
                                let aa = self.read_value(InterpModule::Builtin, ap.offset_by(i))?;
                                let ba = self.read_value(InterpModule::Builtin, bp.offset_by(i))?;
                                work.push((aa, ba));
                            }
                        }
                    }
                    (Tag::HeapVect, Tag::HeapVect) => {
                        if av.data() != bv.data() {
                            return Ok(false);
                        }
                    }
                    _ => return Ok(false),
                },
                _ => return Ok(false),
            }
        }
        Ok(true)
    }

    /// Unifies one head argument word against a caller argument value.
    pub(crate) fn unify_head_arg(&mut self, code_word: Word, arg: Word) -> Result<bool> {
        match code_word.tag() {
            Tag::FirstVar => {
                let slot = code_word.var_slot().expect("FirstVar");
                self.write_slot(InterpModule::Unify, slot, arg, true)?;
                Ok(true)
            }
            Tag::Void => Ok(true),
            Tag::LocalVar => {
                let slot = code_word.var_slot().expect("LocalVar");
                let v = self.read_slot(InterpModule::Unify, slot, true)?;
                self.unify(v, arg)
            }
            Tag::Atom | Tag::Int | Tag::Nil => self.unify(code_word, arg),
            Tag::CodeList | Tag::CodeVect => self.unify_skeleton(code_word, arg),
            other => Err(PsiError::EvalError {
                detail: format!("corrupt head argument word ({other})"),
            }),
        }
    }

    /// Unifies a static code skeleton against a runtime value: match
    /// element-wise if bound, copy to the global stack if unbound.
    pub(crate) fn unify_skeleton(&mut self, code_word: Word, value: Word) -> Result<bool> {
        let (v, cell) = self.deref(InterpModule::Unify, value)?;
        if let Some(addr) = cell {
            let copied = self.copy_skeleton(code_word)?;
            self.bind(addr, copied)?;
            return Ok(true);
        }
        if self.lane_compiled {
            return self.unify_skeleton_compiled(code_word, v);
        }
        let off = code_word.data();
        self.micro(InterpModule::Unify, BranchOp::CaseTag, true);
        match (code_word.tag(), v.tag()) {
            (Tag::CodeList, Tag::List) => {
                let ptr = v.address_value().expect("List");
                for i in 0..2 {
                    let cw = self.fetch_code(InterpModule::Unify, BranchOp::CaseTag, off + i)?;
                    let mv = self.read_value(InterpModule::Unify, ptr.offset_by(i))?;
                    if !self.unify_code_arg(cw, mv)? {
                        return Ok(false);
                    }
                }
                Ok(true)
            }
            (Tag::CodeVect, Tag::Vect) => {
                let ptr = v.address_value().expect("Vect");
                let cf = self.fetch_code(InterpModule::Unify, BranchOp::CaseTag, off)?;
                let mf = self.mem_read(InterpModule::Unify, ptr)?;
                self.micro_cond(InterpModule::Unify, true);
                if cf != mf {
                    return Ok(false);
                }
                let arity = cf.functor_value().map(|f| f.arity).unwrap_or(0);
                self.micro(InterpModule::Unify, BranchOp::LoadJr, true);
                for i in 1..=arity as u32 {
                    let cw = self.fetch_code(InterpModule::Unify, BranchOp::CaseTag, off + i)?;
                    let mv = self.read_value(InterpModule::Unify, ptr.offset_by(i))?;
                    if !self.unify_code_arg(cw, mv)? {
                        return Ok(false);
                    }
                }
                Ok(true)
            }
            _ => Ok(false),
        }
    }

    /// Compiled-lane twin of the bound-value half of
    /// [`Machine::unify_skeleton`]: the skeleton-kind dispatch and
    /// each element's fetch + read are fused into one packet per
    /// element (recorded from the eager lane's exact step sequence —
    /// nothing charges between a fetch and its paired read there).
    pub(crate) fn unify_skeleton_compiled(&mut self, code_word: Word, v: Word) -> Result<bool> {
        let off = code_word.data();
        match (code_word.tag(), v.tag()) {
            (Tag::CodeList, Tag::List) => {
                let ptr = v.address_value().expect("List");
                self.charge_packet(&self.charges.skel_head);
                let cw = self.fetch_code_uncharged(off)?;
                let mv = self.read_value_uncharged(ptr)?;
                if !self.unify_code_arg(cw, mv)? {
                    return Ok(false);
                }
                self.charge_packet(&self.charges.skel_fetch_cycle);
                let cw = self.fetch_code_uncharged(off + 1)?;
                let mv = self.read_value_uncharged(ptr.offset_by(1))?;
                self.unify_code_arg(cw, mv)
            }
            (Tag::CodeVect, Tag::Vect) => {
                let ptr = v.address_value().expect("Vect");
                self.charge_packet(&self.charges.skel_vect_test);
                let cf = self.fetch_code_uncharged(off)?;
                let mf = self.bus.read(ptr)?;
                if cf != mf {
                    return Ok(false);
                }
                let arity = cf.functor_value().map(|f| f.arity).unwrap_or(0);
                // The fidelity lane charges the arity load-jr only
                // after the functor compare passes, so it stays out of
                // the head packet. It is a fixed (rotor-independent)
                // op, and a one-step eager micro is cheaper than a
                // packet charge anyway.
                self.micro(InterpModule::Unify, BranchOp::LoadJr, true);
                for i in 1..=arity as u32 {
                    self.charge_packet(&self.charges.skel_fetch_cycle);
                    let cw = self.fetch_code_uncharged(off + i)?;
                    let mv = self.read_value_uncharged(ptr.offset_by(i))?;
                    if !self.unify_code_arg(cw, mv)? {
                        return Ok(false);
                    }
                }
                Ok(true)
            }
            _ => {
                // Kind-mismatch arm: just the dispatch (same shape as
                // a bare unify pair dispatch).
                self.charge_packet(&self.charges.unify_case);
                Ok(false)
            }
        }
    }

    /// Unifies one skeleton element word against a runtime value.
    fn unify_code_arg(&mut self, code_word: Word, value: Word) -> Result<bool> {
        match code_word.tag() {
            Tag::Atom | Tag::Int | Tag::Nil => self.unify(code_word, value),
            Tag::FirstVar => {
                let slot = code_word.var_slot().expect("FirstVar");
                self.write_slot(InterpModule::Unify, slot, value, true)?;
                Ok(true)
            }
            Tag::LocalVar => {
                let slot = code_word.var_slot().expect("LocalVar");
                let v = self.read_slot(InterpModule::Unify, slot, true)?;
                self.unify(v, value)
            }
            Tag::Void => Ok(true),
            Tag::CodeList | Tag::CodeVect => self.unify_skeleton(code_word, value),
            other => Err(PsiError::EvalError {
                detail: format!("corrupt skeleton word ({other})"),
            }),
        }
    }

    /// Copies a static skeleton to the global stack, creating fresh
    /// cells for first-occurrence variables, and returns the value
    /// word for the copy.
    pub(crate) fn copy_skeleton(&mut self, code_word: Word) -> Result<Word> {
        if self.lane_compiled {
            // Same rotor-independent gosub/return bracket as `unify`.
            self.charge_packet(&self.charges.unify_frame);
            return self.copy_skeleton_inner(code_word);
        }
        self.micro(InterpModule::Unify, BranchOp::Gosub, false);
        let r = self.copy_skeleton_inner(code_word);
        self.micro(InterpModule::Unify, BranchOp::Return, false);
        r
    }

    fn copy_skeleton_inner(&mut self, code_word: Word) -> Result<Word> {
        if self.lane_compiled {
            return self.copy_skeleton_inner_compiled(code_word);
        }
        let off = code_word.data();
        match code_word.tag() {
            Tag::CodeList => {
                let base = self.procs[self.cur].global_top;
                self.procs[self.cur].global_top = base + 2;
                for i in 0..2 {
                    let cw = self.fetch_code(InterpModule::Unify, BranchOp::CaseTag, off + i)?;
                    let w = self.copy_code_arg(cw)?;
                    self.mem_push(InterpModule::Unify, self.global_addr(base + i), w)?;
                }
                Ok(Word::list(self.global_addr(base)))
            }
            Tag::CodeVect => {
                let cf = self.fetch_code(InterpModule::Unify, BranchOp::CaseTag, off)?;
                let arity = cf.functor_value().map(|f| f.arity).unwrap_or(0) as u32;
                let base = self.procs[self.cur].global_top;
                self.procs[self.cur].global_top = base + 1 + arity;
                self.mem_push(InterpModule::Unify, self.global_addr(base), cf)?;
                self.micro(InterpModule::Unify, BranchOp::LoadJr, true);
                for i in 1..=arity {
                    let cw = self.fetch_code(InterpModule::Unify, BranchOp::CaseTag, off + i)?;
                    let w = self.copy_code_arg(cw)?;
                    self.mem_push(InterpModule::Unify, self.global_addr(base + i), w)?;
                }
                Ok(Word::vect(self.global_addr(base)))
            }
            other => Err(PsiError::EvalError {
                detail: format!("not a skeleton word ({other})"),
            }),
        }
    }

    /// Compiled-lane twin of [`Machine::copy_skeleton_inner`]. A
    /// constant element's fetch and push are consecutive charges in
    /// the eager lane, so they fuse into one packet; a variable or
    /// nested element charges between its fetch and its push
    /// (`copy_code_arg`), so those stay split.
    fn copy_skeleton_inner_compiled(&mut self, code_word: Word) -> Result<Word> {
        let off = code_word.data();
        match code_word.tag() {
            Tag::CodeList => {
                let base = self.procs[self.cur].global_top;
                self.procs[self.cur].global_top = base + 2;
                for i in 0..2 {
                    self.copy_skel_elem(off + i, base + i)?;
                }
                Ok(Word::list(self.global_addr(base)))
            }
            Tag::CodeVect => {
                self.charge_packet(&self.charges.skel_vect_copy_head);
                let cf = self.fetch_code_uncharged(off)?;
                let arity = cf.functor_value().map(|f| f.arity).unwrap_or(0) as u32;
                let base = self.procs[self.cur].global_top;
                self.procs[self.cur].global_top = base + 1 + arity;
                self.bus.write_stack(self.global_addr(base), cf)?;
                for i in 1..=arity {
                    self.copy_skel_elem(off + i, base + i)?;
                }
                Ok(Word::vect(self.global_addr(base)))
            }
            other => Err(PsiError::EvalError {
                detail: format!("not a skeleton word ({other})"),
            }),
        }
    }

    /// Copies one skeleton element (code offset `off`) to global-stack
    /// offset `dst` — compiled lane only; picks the fused or the split
    /// charge shape by the element's kind.
    fn copy_skel_elem(&mut self, off: u32, dst: u32) -> Result<()> {
        use crate::exec::SlotPlace;
        let cw = self.fetch_code_uncharged(off)?;
        let w = match cw.tag() {
            Tag::Atom | Tag::Int | Tag::Nil => {
                self.charge_packet(&self.charges.skel_fetch_cycle);
                cw
            }
            Tag::LocalVar => {
                let slot = cw.var_slot().expect("LocalVar");
                match self.slot_place(slot) {
                    SlotPlace::Buffered(buf) => {
                        self.charge_packet(&self.charges.skel_var_buf);
                        self.wf.read_buffer(buf, slot as u32, false, true)
                    }
                    SlotPlace::Flushed(addr) => {
                        self.charge_packet(&self.charges.skel_var_mem);
                        self.bus.read(addr)?
                    }
                }
            }
            _ => {
                self.charge_packet(&self.charges.code_fetch[InterpModule::Unify.index()][1]);
                let w = self.copy_code_arg(cw)?;
                self.charge_packet(&self.charges.addr_cycle[InterpModule::Unify.index()]);
                w
            }
        };
        self.bus.write_stack(self.global_addr(dst), w)
    }

    /// Copies one skeleton element into a runtime value word.
    fn copy_code_arg(&mut self, code_word: Word) -> Result<Word> {
        match code_word.tag() {
            Tag::Atom | Tag::Int | Tag::Nil => Ok(code_word),
            Tag::FirstVar => {
                let slot = code_word.var_slot().expect("FirstVar");
                let cell = self.new_global_cell(InterpModule::Unify)?;
                self.write_slot(InterpModule::Unify, slot, Word::reference(cell), true)?;
                Ok(Word::reference(cell))
            }
            Tag::LocalVar => {
                let slot = code_word.var_slot().expect("LocalVar");
                self.read_slot(InterpModule::Unify, slot, true)
            }
            Tag::Void => {
                let cell = self.new_global_cell(InterpModule::Unify)?;
                Ok(Word::reference(cell))
            }
            Tag::CodeList | Tag::CodeVect => self.copy_skeleton_inner(code_word),
            other => Err(PsiError::EvalError {
                detail: format!("corrupt skeleton element ({other})"),
            }),
        }
    }
}
