//! Instruction-level simulator of the PSI firmware interpreter.
//!
//! This crate is the heart of the reproduction: a simulator of the
//! Personal Sequential Inference machine's microprogrammed KL0
//! interpreter (§2 of the paper), built so that every dynamic
//! characteristic the paper measures falls out of execution:
//!
//! * **microinstruction steps** attributed to interpreter modules
//!   (Table 2) — [`ucode::MicroTally`];
//! * **cache commands and per-area traffic** (Tables 3–5) — every
//!   memory access goes through the `psi-mem` bus and `psi-cache`
//!   model, including the write-stack command for stack pushes;
//! * **work file access modes** (Table 6) — [`wf::WorkFile`] with the
//!   two 64-word frame buffers of the tail-recursion optimization;
//! * **branch-field operations** (Table 7) — one of the 16 ops per
//!   microstep, with tag-dispatch everywhere the interpreter switches
//!   on a tag.
//!
//! The execution model follows §2.1: four stacks (local, global,
//! control, trail) in independent logical areas, 10-word control
//! frames, structure-copying unification against machine-resident
//! clause code in the heap, sequential (non-indexed) clause selection,
//! tail recursion optimization with alternating WF frame buffers, and
//! cooperative multi-process execution.
//!
//! On top of the paper-faithful model the crate offers an opt-in
//! performance profile: [`MachineConfig::clause_indexing`] filters
//! candidate clauses through a compile-time first-argument index
//! (WAM-style switch-on-term) and enters a single surviving candidate
//! with no choice point. It is off by default because Tables 2–7
//! derive from the firmware's linear clause selection; see
//! ARCHITECTURE.md ("Indexing fast path vs. the paper-faithful
//! profile") for the trade-off.
//!
//! # Example
//!
//! ```
//! use kl0::Program;
//! use psi_machine::{Machine, MachineConfig};
//!
//! let program = Program::parse(
//!     "app([], L, L).\n\
//!      app([H|T], L, [H|R]) :- app(T, L, R).",
//! )?;
//! let mut machine = Machine::load(&program, MachineConfig::psi())?;
//! let solutions = machine.solve("app([1,2], [3], X)", 1)?;
//! assert_eq!(solutions[0].binding("X").unwrap().to_string(), "[1,2,3]");
//! # Ok::<(), psi_core::PsiError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod builtins;
mod codegen;
mod exec;
mod heapterm;
mod machine;
pub mod ucode;
mod unify;
pub mod wf;

pub use builtins::Builtin;
pub use codegen::{
    ClauseCode, ClauseIndex, CodeImage, IndexKey, Predicate, QueryCode, BUCKET_LINEAR,
    BUCKET_VAR_ONLY,
};
pub use machine::{
    Machine, MachineConfig, MachineStats, ResourceLimits, Solution, GOVERNOR_INTERVAL,
};
pub use ucode::{BranchOp, BranchTally, InterpModule, MicroTally, ModuleTally};
pub use wf::{WfField, WfMode, WfStats, WorkFile};
