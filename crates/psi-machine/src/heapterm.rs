//! Decoding runtime heap/stack representations back into [`Term`]s
//! (solution reporting and `write/1`).

use crate::machine::Machine;
use crate::ucode::InterpModule;
use kl0::Term;
use psi_core::{Address, PsiError, Result, Tag, Word};

/// Decoding depth limit — deep enough for every workload, shallow
/// enough to catch accidental cyclic terms during development.
const MAX_DEPTH: u32 = 100_000;

impl Machine {
    /// Decodes the value stored in a cell (uncounted; used for
    /// solution capture, like reading memory through the console
    /// processor).
    pub(crate) fn decode_cell(&self, cell: Address) -> Result<Term> {
        let w = self.bus.peek(cell)?;
        self.decode_quiet(w, 0)
    }

    /// Decodes a value word without counting accesses.
    pub fn decode_quiet(&self, w: Word, depth: u32) -> Result<Term> {
        if depth > MAX_DEPTH {
            return Err(PsiError::EvalError {
                detail: "term too deep to decode".into(),
            });
        }
        match w.tag() {
            Tag::Undef => Ok(Term::Var("_".into())),
            Tag::Ref => {
                let addr = w.address_value().expect("Ref");
                let content = self.bus.peek(addr)?;
                if content.is_undef() {
                    Ok(Term::Var(format!("_G{}", addr.raw())))
                } else {
                    self.decode_quiet(content, depth + 1)
                }
            }
            Tag::Int => Ok(Term::Int(w.int_value().expect("Int"))),
            Tag::Nil => Ok(Term::nil()),
            Tag::Atom => {
                let sym = w.atom_value().expect("Atom");
                Ok(Term::atom(self.image.symbols().name(sym)))
            }
            Tag::List => {
                // Iterate the spine to avoid deep recursion on long
                // lists.
                let mut elems = Vec::new();
                let mut cur = w;
                loop {
                    match cur.tag() {
                        Tag::List => {
                            let ptr = cur.address_value().expect("List");
                            let car = self.bus.peek(ptr)?;
                            elems.push(self.decode_quiet(car, depth + 1)?);
                            let cdr = self.bus.peek(ptr.offset_by(1))?;
                            cur = self.skip_refs(cdr)?;
                        }
                        Tag::Nil => {
                            return Ok(Term::list(elems));
                        }
                        _ => {
                            let tail = self.decode_quiet(cur, depth + 1)?;
                            return Ok(elems.into_iter().rev().fold(tail, |t, h| Term::cons(h, t)));
                        }
                    }
                    if elems.len() as u32 > MAX_DEPTH {
                        return Err(PsiError::EvalError {
                            detail: "list too long to decode".into(),
                        });
                    }
                }
            }
            Tag::Vect => {
                let ptr = w.address_value().expect("Vect");
                let f = self.bus.peek(ptr)?;
                let f = f.functor_value().ok_or_else(|| PsiError::EvalError {
                    detail: "corrupt structure header".into(),
                })?;
                let name = self.image.symbols().name(f.symbol).to_owned();
                let mut args = Vec::with_capacity(f.arity as usize);
                for i in 1..=f.arity as u32 {
                    let a = self.bus.peek(ptr.offset_by(i))?;
                    args.push(self.decode_quiet(a, depth + 1)?);
                }
                Ok(Term::compound(&name, args))
            }
            Tag::HeapVect => {
                let ptr = w.address_value().expect("HeapVect");
                let size = self.bus.peek(ptr)?.int_value().unwrap_or(0);
                Ok(Term::compound(
                    "$vector",
                    vec![Term::Int(size), Term::Int(ptr.raw() as i32)],
                ))
            }
            other => Err(PsiError::EvalError {
                detail: format!("cannot decode word with tag {other}"),
            }),
        }
    }

    fn skip_refs(&self, w: Word) -> Result<Word> {
        let mut cur = w;
        let mut hops = 0;
        while cur.tag() == Tag::Ref {
            let addr = cur.address_value().expect("Ref");
            let content = self.bus.peek(addr)?;
            if content.is_undef() {
                return Ok(cur);
            }
            cur = content;
            hops += 1;
            if hops > MAX_DEPTH {
                return Err(PsiError::EvalError {
                    detail: "reference chain too long".into(),
                });
            }
        }
        Ok(cur)
    }

    /// Decodes a value word with counted memory reads (used by
    /// `write/1`, whose traversal is real machine work).
    pub(crate) fn decode_counted(&mut self, m: InterpModule, w: Word) -> Result<Term> {
        // Walk once with counted reads to model the traffic, then
        // decode quietly for the actual text.
        self.walk_counted(m, w, 0)?;
        self.decode_quiet(w, 0)
    }

    fn walk_counted(&mut self, m: InterpModule, w: Word, depth: u32) -> Result<()> {
        if depth > 10_000 {
            return Ok(());
        }
        let (v, _) = self.deref(m, w)?;
        match v.tag() {
            Tag::List => {
                let ptr = v.address_value().expect("List");
                let car = self.mem_read(m, ptr)?;
                self.walk_counted(m, car, depth + 1)?;
                let cdr = self.mem_read(m, ptr.offset_by(1))?;
                self.walk_counted(m, cdr, depth + 1)
            }
            Tag::Vect => {
                let ptr = v.address_value().expect("Vect");
                let f = self.mem_read(m, ptr)?;
                let arity = f.functor_value().map(|f| f.arity).unwrap_or(0);
                for i in 1..=arity as u32 {
                    let a = self.mem_read(m, ptr.offset_by(i))?;
                    self.walk_counted(m, a, depth + 1)?;
                }
                Ok(())
            }
            _ => {
                self.micro_seq(m, true);
                Ok(())
            }
        }
    }
}
