//! Machine state, configuration, and the public API.

use crate::codegen::{CodeImage, QueryCode};
use crate::exec::charge_table;
use crate::ucode::{
    BranchOp, BranchTally, ChargeTable, DecodedOp, FusedKind, FusedProgram, InterpModule,
    MicroTally, ModuleTally, OpKind, PackedArg, CHARGE_PHASES, FUSE_NEXT,
};
use crate::wf::{WfStats, WorkFile};
use kl0::{LoweredProgram, Program, Term};
use psi_cache::{CacheConfig, CacheStats};
use psi_core::{
    Address, Area, Measurement, ObsEvent, ProcessId, PsiError, Resource, Result, SymbolId, Word,
};
use psi_mem::{MemBus, TraceEntry};
use psi_obs::{Counter, Histo, MetricsRegistry, MetricsSnapshot};
use std::fmt;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Per-run resource budgets, all unlimited by default.
///
/// The paper's 1985 measurements ran unbounded, so the default
/// (`ResourceLimits::unlimited`) reproduces Tables 1–7 verbatim: no
/// budget ever fires and the event counters are untouched. A
/// long-lived engine sets limits so a nonterminating or runaway query
/// returns a typed [`psi_core::PsiError::ResourceExhausted`] instead
/// of spinning forever — and the machine stays loaded and reusable
/// afterwards (the next solve starts from a clean run state).
///
/// Budgets are enforced by the dispatch loop's periodic governor
/// (every [`GOVERNOR_INTERVAL`] goal dispatches), so the hot path pays
/// only a counter decrement per dispatch and exhaustion may be
/// detected up to one interval late; the error's `consumed` field
/// reports the exact count. Word budgets apply to each process's own
/// stack areas; the heap budget covers the shared heap (loaded code
/// plus runtime heap vectors). Setup work outside the dispatch loop
/// (loading, query compilation, [`Machine::spawn_background`]) is
/// bounded by program size and is not metered.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ResourceLimits {
    /// Maximum microinstruction steps per run (one `solve` or
    /// `run_session` call).
    pub max_steps: Option<u64>,
    /// Maximum heap-area words (includes the loaded code image).
    pub max_heap_words: Option<u32>,
    /// Maximum local-stack words of any one process.
    pub max_local_words: Option<u32>,
    /// Maximum global-stack words of any one process.
    pub max_global_words: Option<u32>,
    /// Maximum control-stack words of any one process.
    pub max_control_words: Option<u32>,
    /// Maximum trail words of any one process.
    pub max_trail_words: Option<u32>,
    /// Wall-clock deadline per run, measured from the start of the
    /// solve (a per-workload watchdog when set by the suite runner).
    pub deadline: Option<Duration>,
}

impl ResourceLimits {
    /// No budgets at all — the paper's unbounded configuration.
    pub fn unlimited() -> ResourceLimits {
        ResourceLimits::default()
    }

    /// Is any budget configured?
    pub fn any_set(&self) -> bool {
        self.max_steps.is_some()
            || self.max_heap_words.is_some()
            || self.max_local_words.is_some()
            || self.max_global_words.is_some()
            || self.max_control_words.is_some()
            || self.max_trail_words.is_some()
            || self.deadline.is_some()
    }

    /// Sets the per-run step budget.
    pub fn with_max_steps(mut self, steps: u64) -> ResourceLimits {
        self.max_steps = Some(steps);
        self
    }

    /// Sets the per-run wall-clock deadline.
    ///
    /// # Overshoot guarantee
    ///
    /// An expired deadline is detected at the earliest of (a) the next
    /// periodic governor check, at most [`GOVERNOR_INTERVAL`] goal
    /// dispatches away, (b) the next backtrack, or (c) the next
    /// captured solution. A run therefore never overshoots its
    /// deadline by more than one governor interval's worth of
    /// *forward* execution — in particular it cannot sit in a long
    /// backtrack-heavy search segment (where dispatches are sparse but
    /// host work is not) without noticing. `psi-server` relies on this
    /// bound for per-session QoS. One exception, by design: a run that
    /// has already captured every requested solution returns them
    /// normally even if the deadline lapsed while decoding the last
    /// one — completed work is never discarded.
    pub fn with_deadline(mut self, deadline: Duration) -> ResourceLimits {
        self.deadline = Some(deadline);
        self
    }
}

/// Goal dispatches between two governor checks. Small enough that a
/// tight `loop :- loop.` is caught within a few thousand microsteps,
/// large enough that the per-dispatch cost is one counter decrement
/// and a never-taken branch.
pub const GOVERNOR_INTERVAL: u32 = 256;

/// Configuration of the simulated machine.
#[derive(Debug, Clone)]
pub struct MachineConfig {
    /// Cache configuration; `None` simulates the cache-less machine
    /// (the `Tnc` baseline of Figure 1).
    pub cache: Option<CacheConfig>,
    /// Microinstruction cycle time in nanoseconds (§2.3: 200 ns).
    pub cycle_ns: u64,
    /// Per-run resource budgets (default: unlimited, as in the paper).
    pub limits: ResourceLimits,
    /// Enable the WF frame-buffer pair (§2.2). Disable for ablation.
    pub frame_buffering: bool,
    /// Enable tail recursion optimization (§2.2). Disable for
    /// ablation.
    pub tail_recursion_opt: bool,
    /// Record a memory trace (COLLECT mode) for PMMS replay.
    pub trace_memory: bool,
    /// Record observability events (dispatch, cache, backtrack,
    /// governor) into the bounded event ring. Off by default; while
    /// off, every emission site pays only a branch.
    pub trace_events: bool,
    /// Filter candidate clauses through the compile-time
    /// first-argument index at each call, entering a single surviving
    /// candidate directly with no choice point.
    ///
    /// Off by default — the paper's firmware tries clauses linearly,
    /// and Tables 2–7 are derived from those dynamic microstep
    /// frequencies, so the paper-faithful profile must not reorder or
    /// skip any head unification. With indexing on, solutions are
    /// identical but microstep counts, choice points and cache
    /// traffic all shrink (see the "Indexing ablation" section of
    /// EXPERIMENTS.md).
    pub clause_indexing: bool,
    /// Which execution lane the machine runs in.
    ///
    /// [`Measurement::Full`] (the default) is the fidelity lane: every
    /// memory access drives the cache-occupancy model and the other
    /// measurement hooks, exactly as the paper measured. With
    /// [`Measurement::Off`] (the throughput lane) the memory bus skips
    /// the cache simulator, address tracing and event recording, and
    /// the dispatch loop runs from the predecoded code cache —
    /// solutions, microstep totals and per-module tallies stay
    /// bit-identical to the fidelity lane (step accounting is charged
    /// identically), while cache statistics and stall time read zero.
    pub measurement: Measurement,
    /// Run the compiled lane (Lane C): fuse the loaded code into a
    /// dense program of pre-classified ops at load/consult time and
    /// dispatch over it with pre-recorded microstep charge packets and
    /// superinstruction chaining. Only honored together with
    /// [`Measurement::Off`] — the fidelity lane must drive the cache
    /// model access by access, which the batched charging elides.
    /// Solutions, microstep totals, per-module/branch tallies and
    /// budget-exhaustion behaviour stay bit-identical to the other
    /// lanes (see `tests/three_lane.rs`); only host wall time changes.
    pub compiled: bool,
}

impl MachineConfig {
    /// The machine as shipped: PSI cache, 200 ns cycle, TRO and frame
    /// buffering on, no resource budgets, linear clause selection.
    pub fn psi() -> MachineConfig {
        MachineConfig {
            cache: Some(CacheConfig::psi()),
            cycle_ns: 200,
            limits: ResourceLimits::unlimited(),
            frame_buffering: true,
            tail_recursion_opt: true,
            trace_memory: false,
            trace_events: false,
            clause_indexing: false,
            measurement: Measurement::Full,
            compiled: false,
        }
    }

    /// The cache-less machine (every access pays full memory latency).
    pub fn psi_uncached() -> MachineConfig {
        MachineConfig {
            cache: None,
            ..MachineConfig::psi()
        }
    }

    /// The shipped machine with first-argument clause indexing on —
    /// the performance profile. Solutions are identical to
    /// [`MachineConfig::psi`]; dynamic statistics are not (that is
    /// the point), so use the default profile when reproducing the
    /// paper's tables.
    ///
    /// ```
    /// use kl0::Program;
    /// use psi_machine::{Machine, MachineConfig};
    ///
    /// let src = "color(red). color(green). color(blue).";
    /// let program = Program::parse(src)?;
    /// let mut m = Machine::load(&program, MachineConfig::psi_indexed())?;
    /// // The atom key selects one clause: entered with no choice
    /// // point, so the whole solve backtracks exactly once (for the
    /// // second solution request) — and still allocates nothing.
    /// let solutions = m.solve("color(green)", 2)?;
    /// assert_eq!(solutions.len(), 1);
    /// assert_eq!(m.stats().choice_points, 0);
    /// assert_eq!(m.hot_path_alloc_count(), 0);
    /// # Ok::<(), psi_core::PsiError>(())
    /// ```
    pub fn psi_indexed() -> MachineConfig {
        MachineConfig {
            clause_indexing: true,
            ..MachineConfig::psi()
        }
    }

    /// The shipped machine in the throughput lane
    /// ([`MachineConfig::measurement`] off): solutions and microstep
    /// accounting are bit-identical to [`MachineConfig::psi`], but the
    /// cache simulator, memory tracing and event recording are
    /// skipped, so the host runs the same program substantially
    /// faster. Use for serving-style solve traffic; use the default
    /// profile when reproducing the paper's tables.
    ///
    /// ```
    /// use kl0::Program;
    /// use psi_machine::{Machine, MachineConfig};
    ///
    /// let src = "p(1). p(2).";
    /// let program = Program::parse(src)?;
    /// let mut fid = Machine::load(&program, MachineConfig::psi())?;
    /// let mut thr = Machine::load(&program, MachineConfig::psi_throughput())?;
    /// assert_eq!(fid.solve("p(X)", 2)?, thr.solve("p(X)", 2)?);
    /// let (f, t) = (fid.stats(), thr.stats());
    /// assert_eq!(f.steps, t.steps);
    /// assert_eq!(f.modules, t.modules);
    /// // Only the measurement-side numbers differ: no cache model ran.
    /// assert_eq!(t.stall_ns, 0);
    /// assert_eq!(t.cache.total().accesses(), 0);
    /// # Ok::<(), psi_core::PsiError>(())
    /// ```
    pub fn psi_throughput() -> MachineConfig {
        MachineConfig {
            measurement: Measurement::Off,
            ..MachineConfig::psi()
        }
    }

    /// The compiled lane (Lane C): [`MachineConfig::psi_throughput`]
    /// plus [`MachineConfig::compiled`] — the loaded code is fused into
    /// a dense pre-classified op array and dispatched with
    /// superinstruction chaining and packetized microstep charging.
    /// Observable behaviour (solutions, step totals, module and branch
    /// tallies, resource-budget errors) is bit-identical to both other
    /// lanes; the host just gets there faster.
    ///
    /// ```
    /// use kl0::Program;
    /// use psi_machine::{Machine, MachineConfig};
    ///
    /// let src = "app([], L, L). app([H|T], L, [H|R]) :- app(T, L, R).";
    /// let program = Program::parse(src)?;
    /// let mut fid = Machine::load(&program, MachineConfig::psi())?;
    /// let mut cmp = Machine::load(&program, MachineConfig::psi_compiled())?;
    /// let goal = "app([1,2,3], [4], X)";
    /// assert_eq!(fid.solve(goal, 2)?, cmp.solve(goal, 2)?);
    /// let (f, c) = (fid.stats(), cmp.stats());
    /// assert_eq!(f.steps, c.steps);
    /// assert_eq!(f.modules, c.modules);
    /// assert_eq!(f.branches, c.branches);
    /// # Ok::<(), psi_core::PsiError>(())
    /// ```
    pub fn psi_compiled() -> MachineConfig {
        MachineConfig {
            measurement: Measurement::Off,
            compiled: true,
            ..MachineConfig::psi()
        }
    }
}

impl Default for MachineConfig {
    fn default() -> MachineConfig {
        MachineConfig::psi()
    }
}

/// One solution of a query: variable bindings in source order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Solution {
    bindings: Vec<(String, Term)>,
}

impl Solution {
    pub(crate) fn new(bindings: Vec<(String, Term)>) -> Solution {
        Solution { bindings }
    }

    /// The binding of variable `name`, if the query mentioned it.
    pub fn binding(&self, name: &str) -> Option<&Term> {
        self.bindings
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, t)| t)
    }

    /// All bindings in source order.
    pub fn bindings(&self) -> &[(String, Term)] {
        &self.bindings
    }
}

impl fmt::Display for Solution {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.bindings.is_empty() {
            return f.write_str("true");
        }
        for (i, (name, term)) in self.bindings.iter().enumerate() {
            if i > 0 {
                f.write_str(", ")?;
            }
            write!(f, "{name} = {term}")?;
        }
        Ok(())
    }
}

/// A snapshot of every measured quantity after a run — the raw
/// material for all of the paper's tables.
///
/// Every field is an exact event counter (no floats), so two runs can
/// be compared for bit-identity with `==` — the parallel suite runner
/// relies on this to prove it changes nothing in Tables 2–7.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MachineStats {
    /// Total microinstruction steps.
    pub steps: u64,
    /// Simulated execution time in nanoseconds (steps × cycle +
    /// cache stalls).
    pub time_ns: u64,
    /// Cache stall portion of the time.
    pub stall_ns: u64,
    /// Per-module step counts (Table 2).
    pub modules: ModuleTally,
    /// Branch-field operation counts (Table 7).
    pub branches: BranchTally,
    /// Work-file access statistics (Table 6).
    pub wf: WfStats,
    /// Cache statistics (Tables 3–5).
    pub cache: CacheStats,
    /// User-defined predicate calls (logical inferences).
    pub user_calls: u64,
    /// Built-in predicate calls.
    pub builtin_calls: u64,
    /// Choice points pushed.
    pub choice_points: u64,
    /// Calls filtered through the first-argument clause index (zero
    /// unless [`MachineConfig::clause_indexing`] is on).
    pub indexed_calls: u64,
    /// Indexed calls whose single surviving candidate was entered
    /// directly, without pushing a choice point.
    pub index_direct_entries: u64,
}

impl MachineStats {
    /// Simulated time in milliseconds.
    ///
    /// ```
    /// use kl0::Program;
    /// use psi_machine::{Machine, MachineConfig};
    ///
    /// let program = Program::parse("p(1).")?;
    /// let mut m = Machine::load(&program, MachineConfig::psi())?;
    /// m.solve("p(X)", 1)?;
    /// let stats = m.stats();
    /// // 200 ns per microstep plus cache stalls.
    /// assert_eq!(
    ///     stats.time_ns,
    ///     stats.steps * 200 + stats.stall_ns,
    /// );
    /// assert!(stats.time_ms() > 0.0);
    /// # Ok::<(), psi_core::PsiError>(())
    /// ```
    pub fn time_ms(&self) -> f64 {
        self.time_ns as f64 / 1e6
    }

    /// Logical inferences per second (user calls over time), the
    /// paper's KLIPS metric (§2.3 targets 30K LIPS).
    pub fn lips(&self) -> f64 {
        if self.time_ns == 0 {
            return 0.0;
        }
        self.user_calls as f64 / (self.time_ns as f64 / 1e9)
    }

    /// Built-in share of all predicate calls, percent (§3.2 reports
    /// 82% for WINDOW, 65% for BUP).
    pub fn builtin_call_share_pct(&self) -> f64 {
        let total = (self.user_calls + self.builtin_calls).max(1) as f64;
        self.builtin_calls as f64 * 100.0 / total
    }

    /// Cache-command rate per microstep, percent (Table 3 "total").
    pub fn memory_access_rate_pct(&self) -> f64 {
        self.cache.total().accesses() as f64 * 100.0 / self.steps.max(1) as f64
    }
}

// ------------------------------------------------------------------
// internal state
// ------------------------------------------------------------------

/// Execution status of a simulated process.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum ProcStatus {
    Runnable,
    Done,
}

#[derive(Debug, Clone, Copy)]
pub(crate) struct Regs {
    pub code_ptr: u32,
    pub env: usize,
}

/// A clause activation (the PSI keeps the current one in the WF and
/// saves it to the control stack as necessary, §2.1).
///
/// All fields are scalar, so the struct is `Copy`: the execution
/// engine snapshots activations by value instead of heap-cloning them
/// on every call, return and backtrack.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Activation {
    pub locals_base: u32,
    pub nlocals: u16,
    /// WF frame buffer index while the locals are buffered.
    pub buffer: Option<usize>,
    /// Control-stack offset of the 10-word environment frame, once
    /// saved.
    pub materialized: Option<u32>,
    pub cont_code: u32,
    pub cont_env: Option<usize>,
    /// `cps.len()` before this predicate's own choice point — the
    /// barrier cut restores.
    pub cut_barrier: usize,
    /// `cps.len()` at activation entry (after the own choice point,
    /// if any) — newer choice points protect the activation.
    pub entry_cps: usize,
}

/// A choice point (10-word control frame on the real machine).
///
/// The goal arguments live in the per-process [`Proc::arg_arena`]
/// (copy-on-backtrack arena): the choice point records only their
/// `(start, len)` extent, which keeps the struct `Copy` and the hot
/// loop free of per-choice-point heap allocation. Arena space is
/// reclaimed exactly when the choice point is popped (cut, trust, or
/// exhaustion), mirroring the machine's own control-stack discipline.
#[derive(Debug, Clone, Copy)]
pub(crate) struct ChoicePoint {
    pub pred: u32,
    /// Candidate bucket this choice point iterates:
    /// [`crate::codegen::BUCKET_LINEAR`] (all clauses, the
    /// paper-faithful profile), [`crate::codegen::BUCKET_VAR_ONLY`],
    /// or a constant-key bucket id. `next_clause` is a position into
    /// the bucket's candidate list (equal to the clause index for the
    /// linear bucket).
    pub bucket: u32,
    pub next_clause: usize,
    /// First argument word in the owning process's `arg_arena`.
    pub args_start: u32,
    /// Number of argument words (predicate arity fits in a byte).
    pub args_len: u8,
    pub cont_code: u32,
    pub cont_env: Option<usize>,
    pub barrier: usize,
    pub saved_local_top: u32,
    pub saved_global_top: u32,
    pub saved_trail_top: u32,
    pub saved_envs_len: usize,
    pub ctl_addr: u32,
}

#[derive(Debug, Clone)]
pub(crate) struct QueryState {
    pub cells: Vec<Address>,
    pub vars: Vec<String>,
}

#[derive(Debug, Clone)]
pub(crate) struct Proc {
    pub pid: ProcessId,
    pub status: ProcStatus,
    pub regs: Regs,
    pub envs: Vec<Activation>,
    pub cps: Vec<ChoicePoint>,
    pub local_top: u32,
    pub global_top: u32,
    pub ctl_top: u32,
    pub trail_top: u32,
    /// Env ids currently holding a WF frame buffer, oldest first.
    pub buffered: Vec<usize>,
    /// Saved goal arguments of all live choice points, in stack
    /// order. Each [`ChoicePoint`] owns the `args_start..+args_len`
    /// slice; the arena is truncated back whenever its choice point is
    /// popped.
    pub arg_arena: Vec<Word>,
    /// Environment frames saved to the control stack, as `(frame
    /// base, env id)` in push order (bases strictly increasing). Lets
    /// backtracking clear the saved-frame marks of discarded frames by
    /// popping entries at or above the restored control top, instead
    /// of rescanning every live activation — the rescan was O(depth)
    /// per backtrack and dominated deep-recursion workloads. Entries
    /// whose activation died without its frame being reclaimed go
    /// stale; consumers verify `envs[id].materialized == Some(base)`
    /// before clearing.
    pub mat_stack: Vec<(u32, u32)>,
    /// Host-side trail image, used only by the compiled lane. The
    /// interpreter lanes keep the trail in simulated `TrailStack`
    /// memory; the compiled lane charges the same trail microsteps
    /// (via packets) but stores entries here, since nothing in the
    /// deterministic view ever observes trail *memory* contents —
    /// only the restores it drives. Invariant while compiled:
    /// `trail.len() == trail_top as usize`.
    pub trail: Vec<Word>,
    pub query: Option<QueryState>,
}

/// Pre-reserved capacities for the per-process control structures.
/// Generous enough that none of the paper's workloads ever grows them
/// mid-run — the hot loop then performs zero host heap allocation
/// (asserted by [`Machine::hot_path_alloc_count`] in tests). Growth
/// past a reservation still works; it is merely counted.
/// Sized for the deepest Table 1 row (the Lisp interpreter running
/// tarai3 keeps thousands of activations, saved frames and choice
/// points live at once); `tests/two_lane.rs` asserts zero growth
/// across the whole suite.
const ENVS_RESERVE: usize = 8192;
const CPS_RESERVE: usize = 8192;
const BUFFERED_RESERVE: usize = 8;
const ARG_ARENA_RESERVE: usize = 32768;
const TRAIL_RESERVE: usize = 32768;
/// Scratch argument buffers: predicate arity fits in a `u8`, so 256
/// words can never be outgrown.
const ARGS_RESERVE: usize = 256;

impl Proc {
    fn new(pid: ProcessId) -> Proc {
        Proc {
            pid,
            status: ProcStatus::Done,
            regs: Regs {
                code_ptr: 0,
                env: 0,
            },
            envs: Vec::with_capacity(ENVS_RESERVE),
            cps: Vec::with_capacity(CPS_RESERVE),
            local_top: 0,
            global_top: 0,
            ctl_top: 0,
            trail_top: 0,
            buffered: Vec::with_capacity(BUFFERED_RESERVE),
            arg_arena: Vec::with_capacity(ARG_ARENA_RESERVE),
            mat_stack: Vec::with_capacity(ENVS_RESERVE),
            trail: Vec::with_capacity(TRAIL_RESERVE),
            query: None,
        }
    }
}

/// Interned symbol ids for arithmetic functors (plus the list functor
/// `.` used by `functor/3`), resolved at load time so the interpreter
/// never interns — and therefore never mutates a possibly-shared
/// code image — at run time.
#[derive(Debug, Clone, Copy)]
pub(crate) struct ArithSyms {
    pub plus: SymbolId,
    pub minus: SymbolId,
    pub star: SymbolId,
    pub int_div: SymbolId,
    pub slash: SymbolId,
    pub modulo: SymbolId,
    pub rem: SymbolId,
    pub shl: SymbolId,
    pub shr: SymbolId,
    pub band: SymbolId,
    pub bor: SymbolId,
    pub bxor: SymbolId,
    pub abs: SymbolId,
    pub min: SymbolId,
    pub max: SymbolId,
    pub dot: SymbolId,
}

/// The simulated PSI machine.
///
/// See the [crate-level documentation](crate) for the model and an
/// example.
#[derive(Debug, Clone)]
pub struct Machine {
    pub(crate) config: MachineConfig,
    /// The compiled code image, shared copy-on-write between a
    /// template machine and its forks ([`Machine::fork`]). Immutable
    /// while shared; the mutation sites (query compilation,
    /// incremental consult) go through [`Arc::make_mut`], so the
    /// first mutation after a fork detaches a private copy and
    /// earlier sharers are never disturbed.
    pub(crate) image: Arc<CodeImage>,
    pub(crate) loaded_words: u32,
    pub(crate) bus: MemBus,
    pub(crate) wf: WorkFile,
    pub(crate) tally: MicroTally,
    /// Deferred charge-packet counts, one `u64` per (packet, phase)
    /// pair (compiled lane). A packet charge bumps one counter here
    /// instead of applying the packet's tally deltas eagerly; the
    /// deltas are materialized lazily by [`Machine::effective_tally`]
    /// whenever the tally is observed. Exact because the per-phase
    /// counter additions commute — only the rotor phases are order
    /// sensitive, and those stay live in `tally` itself.
    pub(crate) charge_counts: Box<[u64]>,
    /// Steps represented in `charge_counts` but not yet folded into
    /// `tally`, kept as a running scalar so step budgets and
    /// `total_steps` never need a flush.
    pub(crate) deferred_steps: u64,
    /// The process-wide charge-packet table, hoisted out of its
    /// `OnceLock` at load so the hot charge sites pay a plain field
    /// read instead of an atomic-ordered initialization check.
    pub(crate) charges: &'static ChargeTable,
    pub(crate) heap_top: u32,
    pub(crate) procs: Vec<Proc>,
    pub(crate) cur: usize,
    pub(crate) output: String,
    pub(crate) user_calls: u64,
    pub(crate) builtin_calls: u64,
    /// Choice points pushed (host-side counter; never charges
    /// microsteps, so the paper-faithful profile is unaffected).
    pub(crate) cp_pushed: u64,
    /// Calls that consulted the first-argument index.
    pub(crate) indexed_calls: u64,
    /// Indexed calls entered directly (single candidate, no choice
    /// point).
    pub(crate) index_direct: u64,
    pub(crate) arith: ArithSyms,
    /// Reusable buffer for goal-argument construction (taken with
    /// `mem::take` around calls that need `&mut self`).
    pub(crate) scratch_args: Vec<Word>,
    /// Reusable buffer for replaying choice-point arguments out of the
    /// argument arena on backtracking.
    pub(crate) scratch_cp_args: Vec<Word>,
    /// Reusable buffer for copying a fused op's pre-classified
    /// arguments out of the shared [`FusedProgram`] (compiled lane) —
    /// see `build_args_fused`.
    pub(crate) scratch_pargs: Vec<PackedArg>,
    /// Reusable work stack for iterative unification and `==/2`
    /// structural comparison — one unification runs per head argument,
    /// so a fresh `Vec` there would malloc on every dispatch.
    pub(crate) scratch_unify: Vec<(Word, Word)>,
    /// Host heap (re)allocations taken by the interpreter hot path —
    /// see [`Machine::hot_path_alloc_count`].
    pub(crate) hot_allocs: u64,
    /// Step count at the start of the current run; budgets meter the
    /// delta, not the machine-lifetime total.
    pub(crate) run_base_steps: u64,
    /// When the current run started (armed only when a wall-clock
    /// deadline is configured, so unlimited runs never read the
    /// clock).
    pub(crate) run_started: Option<Instant>,
    /// Dispatches left until the next governor check.
    pub(crate) governor_countdown: u32,
    /// Live observability counters/histograms. Fixed-size arrays, so
    /// recording never allocates; module steps and cache counters are
    /// mirrored in at snapshot time ([`Machine::metrics_snapshot`])
    /// instead of being double-counted on the hot path.
    pub(crate) metrics: MetricsRegistry,
    /// Stall time at the start of the current run (for the per-run
    /// stall histogram).
    pub(crate) run_base_stall_ns: u64,
    /// Predecoded dispatch cache, one entry per loaded code word
    /// (dense, lazily filled). Consulted only in the throughput lane;
    /// grown with undecoded sentinels by [`Machine::sync_code`] on
    /// incremental consult, alongside the `ClauseIndex`. Shared
    /// copy-on-write with forks, like the image: the fill sites go
    /// through [`Arc::make_mut`], which is a refcount check once the
    /// fork has detached its own copy.
    pub(crate) decode: Arc<Vec<DecodedOp>>,
    /// The resource limits the machine was loaded with (the pool /
    /// server defaults). [`Machine::recycle`] restores these, so
    /// per-session budgets tightened via [`Machine::set_limits`] can
    /// never leak into the next session of a pooled machine.
    pub(crate) base_limits: ResourceLimits,
    /// Lane flag hoisted from `config.measurement` at load, so the
    /// dispatch loop and code fetch pay one predictable branch.
    pub(crate) lane_fast: bool,
    /// Compiled-lane flag, resolved at load from
    /// [`MachineConfig::compiled`] gated on the throughput lane.
    pub(crate) lane_compiled: bool,
    /// The compiled lane's fused program: one pre-classified op per
    /// loaded code word plus the side array of pre-classified goal
    /// arguments. Grown append-only by [`Machine::sync_code`] in
    /// lockstep with the predecode cache (same events, same
    /// append-only discipline) and shared copy-on-write with forks
    /// behind an [`Arc`], exactly like `decode`. Empty off the
    /// compiled lane.
    pub(crate) fused: Arc<FusedProgram>,
    /// When set, [`Machine::bind`] trails every binding regardless of
    /// choice-point age. `retract/1` raises it around its trial
    /// unifications, which must be undoable even when no choice point
    /// guards the bound cells. Always lowered again before the
    /// builtin returns.
    pub(crate) force_trail: bool,
}

/// Internal control-flow outcome of dispatching one goal.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Flow {
    Continue,
    Backtrack,
    Solution,
    Yield,
}

impl Machine {
    /// Loads a program into a fresh machine.
    ///
    /// # Errors
    ///
    /// Propagates parser/lowering/compilation errors.
    pub fn load(program: &Program, config: MachineConfig) -> Result<Machine> {
        let lowered = LoweredProgram::lower(program)?;
        let mut image = CodeImage::compile(&lowered)?;
        let arith = ArithSyms {
            plus: image.symbols_mut().intern("+"),
            minus: image.symbols_mut().intern("-"),
            star: image.symbols_mut().intern("*"),
            int_div: image.symbols_mut().intern("//"),
            slash: image.symbols_mut().intern("/"),
            modulo: image.symbols_mut().intern("mod"),
            rem: image.symbols_mut().intern("rem"),
            shl: image.symbols_mut().intern("<<"),
            shr: image.symbols_mut().intern(">>"),
            band: image.symbols_mut().intern("/\\"),
            bor: image.symbols_mut().intern("\\/"),
            bxor: image.symbols_mut().intern("xor"),
            abs: image.symbols_mut().intern("abs"),
            min: image.symbols_mut().intern("min"),
            max: image.symbols_mut().intern("max"),
            dot: image.symbols_mut().intern("."),
        };
        let mut bus = match &config.cache {
            Some(c) => MemBus::with_cache(*c),
            None => MemBus::without_cache(),
        };
        if config.trace_memory {
            bus.enable_trace();
        }
        if config.trace_events {
            bus.set_events_enabled(true);
        }
        // Lane selection happens exactly once, here: the bus, the work
        // file and the dispatch loop all read a pre-resolved flag
        // afterwards.
        bus.set_measurement(config.measurement);
        let mut wf = WorkFile::new();
        wf.set_measurement(config.measurement);
        let lane_fast = !config.measurement.is_full();
        let lane_compiled = lane_fast && config.compiled;
        let base_limits = config.limits.clone();
        let mut machine = Machine {
            config,
            image: Arc::new(image),
            loaded_words: 0,
            bus,
            wf,
            tally: MicroTally::new(),
            charge_counts: vec![0; ChargeTable::PACKETS * CHARGE_PHASES].into_boxed_slice(),
            deferred_steps: 0,
            charges: charge_table(),
            heap_top: 0,
            procs: vec![Proc::new(ProcessId::ZERO)],
            cur: 0,
            output: String::new(),
            user_calls: 0,
            builtin_calls: 0,
            cp_pushed: 0,
            indexed_calls: 0,
            index_direct: 0,
            arith,
            scratch_args: Vec::with_capacity(ARGS_RESERVE),
            scratch_cp_args: Vec::with_capacity(ARGS_RESERVE),
            scratch_pargs: Vec::with_capacity(ARGS_RESERVE),
            scratch_unify: Vec::with_capacity(ARGS_RESERVE),
            hot_allocs: 0,
            run_base_steps: 0,
            run_started: None,
            governor_countdown: GOVERNOR_INTERVAL,
            metrics: MetricsRegistry::new(),
            run_base_stall_ns: 0,
            decode: Arc::new(Vec::new()),
            base_limits,
            lane_fast,
            lane_compiled,
            fused: Arc::new(FusedProgram::default()),
            force_trail: false,
        };
        machine.sync_code()?;
        Ok(machine)
    }

    /// Forks a consulted, never-run machine: the compiled code image
    /// (heap words, predicate table, clause index, symbols) and the
    /// predecode cache are shared immutably behind [`Arc`]s, while the
    /// run state — simulated memory, work file, stacks, registers,
    /// counters, governor budgets — is copied or created fresh. The
    /// fork solves bit-identically to a machine freshly loaded from
    /// the same source with the same configuration (regression-tested
    /// across all Table 1 rows, both lanes and both indexing
    /// profiles), and keeps the hot path allocation-free: its
    /// per-process structures are built with the same reservations as
    /// a fresh load.
    ///
    /// Forking is restricted to *templates*: machines that have been
    /// consulted but never compiled or run a query. Query compilation
    /// appends a `$queryN` entry stub to the image, so a machine that
    /// has solved (even a recycled one) is no longer a pristine image
    /// and forking it would not be bit-identical to a fresh consult.
    ///
    /// # Errors
    ///
    /// [`psi_core::PsiError::ForkAfterRun`] when the machine has
    /// compiled a query or executed any microsteps.
    ///
    /// ```
    /// use kl0::Program;
    /// use psi_machine::{Machine, MachineConfig};
    ///
    /// let program = Program::parse("p(1). p(2).")?;
    /// let template = Machine::load(&program, MachineConfig::psi())?;
    /// let mut fork = template.fork()?;
    /// assert_eq!(fork.solve("p(X)", 9)?.len(), 2);
    /// // The template is still pristine and can keep forking.
    /// assert_eq!(template.fork()?.solve("p(X)", 9)?.len(), 2);
    /// // The run machine itself is no longer forkable.
    /// assert!(fork.fork().is_err());
    /// # Ok::<(), psi_core::PsiError>(())
    /// ```
    pub fn fork(&self) -> Result<Machine> {
        if !self.is_pristine() {
            return Err(PsiError::ForkAfterRun {
                detail: format!(
                    "machine has compiled {} queries and executed {} steps; \
                     fork from a consulted, never-run template",
                    self.image.query_count(),
                    self.total_steps(),
                ),
            });
        }
        Ok(Machine {
            config: self.config.clone(),
            image: Arc::clone(&self.image),
            loaded_words: self.loaded_words,
            bus: self.bus.clone(),
            wf: self.wf.clone(),
            tally: MicroTally::new(),
            charge_counts: vec![0; ChargeTable::PACKETS * CHARGE_PHASES].into_boxed_slice(),
            deferred_steps: 0,
            charges: self.charges,
            heap_top: self.heap_top,
            // Fresh processes, not clones: cloning a `Vec` keeps only
            // its length, and a pristine template's stacks are empty —
            // a clone would silently drop the capacity reservations
            // that keep `hot_path_alloc_count` at zero.
            procs: vec![Proc::new(ProcessId::ZERO)],
            cur: 0,
            output: String::new(),
            user_calls: 0,
            builtin_calls: 0,
            cp_pushed: 0,
            indexed_calls: 0,
            index_direct: 0,
            arith: self.arith,
            scratch_args: Vec::with_capacity(ARGS_RESERVE),
            scratch_cp_args: Vec::with_capacity(ARGS_RESERVE),
            scratch_pargs: Vec::with_capacity(ARGS_RESERVE),
            scratch_unify: Vec::with_capacity(ARGS_RESERVE),
            hot_allocs: 0,
            run_base_steps: 0,
            run_started: None,
            governor_countdown: GOVERNOR_INTERVAL,
            metrics: MetricsRegistry::new(),
            run_base_stall_ns: 0,
            decode: Arc::clone(&self.decode),
            base_limits: self.base_limits.clone(),
            lane_fast: self.lane_fast,
            lane_compiled: self.lane_compiled,
            fused: Arc::clone(&self.fused),
            force_trail: false,
        })
    }

    /// [`Machine::fork`] with a different cache attachment: the fork
    /// keeps the shared code image and copied run state but drives its
    /// memory accesses through `cache` (`None` = the cache-less `Tnc`
    /// baseline). This is the sweep-cell primitive: consult a workload
    /// once, then fork it under every cache geometry instead of
    /// re-consulting per cell. Only meaningful in the fidelity lane —
    /// the throughput lane never drives the cache model.
    ///
    /// # Errors
    ///
    /// See [`Machine::fork`].
    pub fn fork_with_cache(&self, cache: Option<CacheConfig>) -> Result<Machine> {
        let mut fork = self.fork()?;
        fork.config.cache = cache;
        fork.bus.set_cache(cache);
        Ok(fork)
    }

    /// Is this machine a consulted-but-never-run template — eligible
    /// for [`Machine::fork`] and for snapshotting? True after `load`
    /// and after incremental [`Machine::consult`]s; false once any
    /// query has been compiled (query entry stubs make the image
    /// diverge from a fresh consult) or any microstep has executed.
    /// [`Machine::recycle`] does *not* restore pristineness.
    pub fn is_pristine(&self) -> bool {
        self.image.query_count() == 0 && self.total_steps() == 0
    }

    pub(crate) fn total_steps(&self) -> u64 {
        self.tally.steps() + self.deferred_steps
    }

    /// The tally with all deferred charge-packet counts materialized —
    /// the observation point of the compiled lane's lazy accounting.
    /// Off the compiled lane `charge_counts` stays all-zero and this
    /// is a plain clone.
    pub(crate) fn effective_tally(&self) -> MicroTally {
        let mut t = self.tally.clone();
        if self.deferred_steps > 0 {
            self.charges.apply_deferred(&mut t, &self.charge_counts);
        }
        t
    }

    /// Copies newly compiled code words into the simulated heap and
    /// extends the predecode cache over them. Incremental consult only
    /// ever appends code (the same append-only pass that grows the
    /// first-argument `ClauseIndex`), so existing decoded entries stay
    /// valid; the new words start at the undecoded sentinel and are
    /// decoded on first dispatch.
    pub(crate) fn sync_code(&mut self) -> Result<()> {
        let len = self.image.heap().len() as u32;
        for off in self.loaded_words..len {
            let w = self.image.heap()[off as usize];
            self.bus.poke(Address::heap(off), w)?;
        }
        if self.decode.len() != len as usize {
            Arc::make_mut(&mut self.decode).resize(len as usize, DecodedOp::not_decoded());
        }
        // The fused program rides the same append-only pass: it is
        // (re)extended on exactly the events that grow the predecode
        // cache, so the two can never disagree about the code extent.
        // Copy-on-write like `decode` — the first consult after a fork
        // detaches a private copy.
        if self.lane_compiled && self.fused.ops.len() != len as usize {
            Arc::make_mut(&mut self.fused).extend(self.image.heap());
        }
        self.loaded_words = len;
        self.heap_top = self.heap_top.max(len);
        Ok(())
    }

    /// Solves `goal_src`, returning up to `max_solutions` solutions.
    /// Prior run state (stacks) is discarded; loaded code and
    /// accumulated statistics are kept.
    ///
    /// `max_solutions == 0` requests nothing and does nothing: the
    /// goal is still parsed and compiled (so syntax and compile errors
    /// surface), but no execution happens — zero microsteps are
    /// charged, prior run state is left untouched, and the result is
    /// an empty solution list. Runtime conditions (undefined
    /// predicates, budget exhaustion) are therefore *not* detected
    /// with a zero request.
    ///
    /// A [`psi_core::PsiError::ResourceExhausted`] return (when
    /// [`MachineConfig::limits`] sets budgets) leaves the machine
    /// reusable: the next solve starts from a clean run state.
    ///
    /// # Errors
    ///
    /// Propagates syntax errors in the goal, undefined-predicate and
    /// resource-budget errors during execution.
    pub fn solve(&mut self, goal_src: &str, max_solutions: usize) -> Result<Vec<Solution>> {
        let goal = kl0::parser::parse_term(goal_src)?;
        self.solve_term(&goal, max_solutions)
    }

    /// Like [`Machine::solve`] but takes a parsed term.
    ///
    /// # Errors
    ///
    /// See [`Machine::solve`].
    pub fn solve_term(&mut self, goal: &Term, max_solutions: usize) -> Result<Vec<Solution>> {
        let qc = Arc::make_mut(&mut self.image).compile_query(goal)?;
        self.sync_code()?;
        if max_solutions == 0 {
            // Zero solutions requested: validated above, nothing to
            // execute (see the `solve` contract).
            return Ok(Vec::new());
        }
        self.reset_run_state();
        self.start_query(0, &qc)?;
        let out = self.run(max_solutions);
        self.record_run_metrics();
        out
    }

    /// Spawns a background process executing `goal_src`. Background
    /// processes run only when some process executes the `yield/0`
    /// built-in (§2.1's cooperative multi-process model). Call before
    /// [`Machine::solve`]: solving resets run state, so spawn order is
    /// spawn-then-solve within one [`Machine::run_session`].
    ///
    /// # Errors
    ///
    /// Fails if four processes already exist or the goal is malformed.
    pub fn spawn_background(&mut self, goal_src: &str) -> Result<()> {
        if self.procs.len() >= ProcessId::MAX_PROCESSES {
            return Err(PsiError::Compile {
                detail: "too many processes (max 4)".into(),
            });
        }
        let goal = kl0::parser::parse_term(goal_src)?;
        let qc = Arc::make_mut(&mut self.image).compile_query(&goal)?;
        self.sync_code()?;
        let pid = ProcessId::new(self.procs.len() as u8);
        self.procs.push(Proc::new(pid));
        let idx = self.procs.len() - 1;
        self.start_query(idx, &qc)?;
        Ok(())
    }

    /// Runs a whole session: spawns the given background goals, then
    /// solves `main_goal`. This is the WINDOW-style workload driver.
    ///
    /// # Errors
    ///
    /// See [`Machine::solve`] and [`Machine::spawn_background`].
    pub fn run_session(
        &mut self,
        main_goal: &str,
        background_goals: &[&str],
    ) -> Result<Vec<Solution>> {
        let goal = kl0::parser::parse_term(main_goal)?;
        let qc = Arc::make_mut(&mut self.image).compile_query(&goal)?;
        self.sync_code()?;
        self.reset_run_state();
        for bg in background_goals {
            self.spawn_background(bg)?;
        }
        self.start_query(0, &qc)?;
        let out = self.run(1);
        self.record_run_metrics();
        out
    }

    fn reset_run_state(&mut self) {
        // A fresh run records a fresh trace: drop entries left over
        // from a previous query so a PMMS replay sees one monotonic
        // run instead of an ever-growing concatenation. The
        // observability event ring gets the same treatment — a pooled
        // machine must hand its next session zero stale events.
        let _ = self.bus.take_trace();
        let _ = self.bus.take_events();
        for p in 0..self.procs.len() {
            let pid = self.procs[p].pid;
            for area in [
                Area::LocalStack,
                Area::GlobalStack,
                Area::ControlStack,
                Area::TrailStack,
            ] {
                self.bus.memory_mut().truncate(pid, area, 0);
            }
        }
        self.procs.truncate(1);
        self.procs[0] = Proc::new(ProcessId::ZERO);
        self.cur = 0;
        // Arm the resource governor for the new run: budgets meter
        // this run only, and the clock is read only when a deadline is
        // actually configured.
        self.run_base_steps = self.total_steps();
        self.run_base_stall_ns = self.bus.stall_ns();
        self.run_started = self.config.limits.deadline.map(|_| Instant::now());
        self.governor_countdown = GOVERNOR_INTERVAL;
    }

    /// Folds the finished (or aborted) run into the per-run metrics
    /// histograms.
    fn record_run_metrics(&mut self) {
        let steps = self.total_steps().saturating_sub(self.run_base_steps);
        let stall = self.bus.stall_ns().saturating_sub(self.run_base_stall_ns);
        self.metrics.observe(Histo::RunSteps, steps);
        self.metrics.observe(Histo::RunStallNs, stall);
    }

    /// Resets all measurement state (step tallies, WF stats, cache
    /// stats, stall time, call counters, output) without touching
    /// loaded code — like the paper's breakpoint-delimited
    /// measurements.
    pub fn reset_measurement(&mut self) {
        self.tally = MicroTally::new();
        self.charge_counts.fill(0);
        self.deferred_steps = 0;
        self.wf.reset_stats();
        self.bus.reset_measurement();
        self.user_calls = 0;
        self.builtin_calls = 0;
        self.cp_pushed = 0;
        self.indexed_calls = 0;
        self.index_direct = 0;
        self.output.clear();
        self.metrics.reset();
        // The step counters restart from zero; rebase the step budget
        // so a mid-run reset cannot underflow the consumed delta.
        self.run_base_steps = 0;
        self.run_base_stall_ns = 0;
    }

    // ------------------------------------------------ session lifecycle

    /// Adds the clauses of `src` to the loaded image (incremental
    /// consult). Compilation is append-only: existing code words,
    /// predecode entries and clause-index buckets stay valid, new
    /// clauses append after earlier clauses of the same predicates.
    /// This is the `psi-server` consult path, so malformed input must
    /// (and does) surface as typed errors — see the malformed-input
    /// property tests.
    ///
    /// # Errors
    ///
    /// [`psi_core::PsiError::Syntax`] and
    /// [`psi_core::PsiError::Compile`] on malformed input, including
    /// redefinition of a built-in predicate.
    ///
    /// ```
    /// use kl0::Program;
    /// use psi_machine::{Machine, MachineConfig};
    ///
    /// let mut m = Machine::load(&Program::parse("p(1).")?, MachineConfig::psi())?;
    /// m.consult("p(2). q(X) :- p(X).")?;
    /// assert_eq!(m.solve("q(X)", 5)?.len(), 2);
    /// # Ok::<(), psi_core::PsiError>(())
    /// ```
    pub fn consult(&mut self, src: &str) -> Result<()> {
        let program = Program::parse(src)?;
        let lowered = LoweredProgram::lower_from(&program, self.image.aux_base())?;
        Arc::make_mut(&mut self.image).add_program(&lowered)?;
        self.sync_code()
    }

    /// Returns the machine to a like-fresh state for its next session
    /// while keeping the expensive parts warm: loaded code, the
    /// predecode cache and the clause index survive; run state,
    /// measurement state, metrics, buffered output, memory-trace
    /// entries and observability events are all dropped. After
    /// `recycle`, solving a goal yields bit-identical solutions and
    /// statistics to a freshly loaded machine — the warm-pool contract
    /// `psi-server` relies on (and a regression test asserts).
    pub fn recycle(&mut self) {
        self.reset_run_state();
        self.reset_measurement();
        self.hot_allocs = 0;
        // Per-session budgets must not outlive the session: restore
        // the limits the machine was loaded with (the pool / server
        // defaults), so a tightened budget can never leak into the
        // next tenant's first run.
        self.config.limits = self.base_limits.clone();
    }

    /// Replaces the per-run resource budgets. Takes effect at the next
    /// run boundary (the budgets of a run are armed when it starts),
    /// so a server can re-tier a pooled machine per session without
    /// reloading it. The replacement lasts until the next
    /// [`Machine::recycle`], which restores the load-time limits.
    pub fn set_limits(&mut self, limits: ResourceLimits) {
        self.config.limits = limits;
    }

    /// A snapshot of all measured quantities.
    ///
    /// Cheap (`MachineStats` is `Copy`, no heap clone) and callable
    /// at any point; solving again resets the counters first, so a
    /// snapshot describes the most recent solve only.
    ///
    /// ```
    /// use kl0::Program;
    /// use psi_machine::{Machine, MachineConfig};
    ///
    /// let program = Program::parse("p(1). p(2).")?;
    /// let mut m = Machine::load(&program, MachineConfig::psi())?;
    /// m.solve("p(X)", 2)?;
    /// let stats = m.stats();
    /// assert!(stats.steps > 0);
    /// assert_eq!(stats.user_calls, 1);
    /// assert_eq!(stats.choice_points, 1); // p/2 has two clauses
    /// assert_eq!(stats.indexed_calls, 0); // indexing is off by default
    /// # Ok::<(), psi_core::PsiError>(())
    /// ```
    pub fn stats(&self) -> MachineStats {
        let tally = self.effective_tally();
        let steps = tally.steps();
        let stall = self.bus.stall_ns();
        MachineStats {
            steps,
            time_ns: steps * self.config.cycle_ns + stall,
            stall_ns: stall,
            modules: tally.modules,
            branches: tally.branches,
            wf: *self.wf.stats(),
            // `CacheStats` is `Copy` (fixed per-area arrays), so the
            // snapshot is a plain bit copy — no per-run heap clone.
            cache: *self.bus.cache_stats(),
            user_calls: self.user_calls,
            builtin_calls: self.builtin_calls,
            choice_points: self.cp_pushed,
            indexed_calls: self.indexed_calls,
            index_direct_entries: self.index_direct,
        }
    }

    /// Host heap (re)allocations performed by the interpreter hot path
    /// since load: growth of the activation stack, the choice-point
    /// stack, the argument arena, or the argument scratch buffers.
    /// Stays zero on the paper's workloads because those structures
    /// are pre-reserved — the regression tests assert exactly that.
    pub fn hot_path_alloc_count(&self) -> u64 {
        self.hot_allocs
    }

    /// Text written by `write/1`, `nl/0` and `tab/1`.
    pub fn output(&self) -> &str {
        &self.output
    }

    /// Takes the recorded memory trace (requires
    /// [`MachineConfig::trace_memory`] or
    /// [`Machine::set_trace_memory`]). Returns an empty vector when
    /// tracing is disabled — non-tracing runs buffer nothing.
    pub fn take_trace(&mut self) -> Vec<TraceEntry> {
        self.bus.take_trace()
    }

    /// Enables or disables COLLECT-style memory tracing at runtime.
    /// Tracing is off by default ([`MachineConfig::psi`]); while off,
    /// the memory bus records nothing and pays only a branch per
    /// access. Disabling discards any recorded entries.
    pub fn set_trace_memory(&mut self, enabled: bool) {
        self.config.trace_memory = enabled;
        self.bus.set_trace_enabled(enabled);
    }

    /// The live observability registry: counters recorded by the
    /// interpreter's hooks so far (dispatches, backtracks, solutions,
    /// governor activity). Module steps and cache counters are *not*
    /// in here — they stay in their single-source tallies and are
    /// mirrored in by [`Machine::metrics_snapshot`].
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.metrics
    }

    /// Freezes a complete metrics snapshot: the live registry plus
    /// mirrors of the per-module step tally (Table 2 raw counts) and
    /// the cache statistics (Tables 3–5 raw counts), so one `Copy`
    /// struct carries every measured quantity. With the `psi-obs`
    /// crate feature `noop` the snapshot is all zeros.
    ///
    /// ```
    /// use kl0::Program;
    /// use psi_machine::{Machine, MachineConfig};
    /// use psi_obs::Counter;
    ///
    /// let program = Program::parse("p(1). p(2).")?;
    /// let mut m = Machine::load(&program, MachineConfig::psi())?;
    /// m.solve("p(X)", 2)?;
    /// let snap = m.metrics_snapshot();
    /// assert_eq!(snap.get(Counter::Solutions), 2);
    /// assert_eq!(snap.get(Counter::ChoicePoints), m.stats().choice_points);
    /// # Ok::<(), psi_core::PsiError>(())
    /// ```
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        let mut reg = self.metrics;
        let tally = self.effective_tally();
        for m in InterpModule::ALL {
            reg.add_module_steps(m.index(), tally.modules.count(m));
        }
        let cache = self.bus.cache_stats();
        let t = cache.total();
        reg.add(Counter::CacheHits, t.hits());
        reg.add(Counter::CacheMisses, t.misses());
        reg.add(Counter::CacheReads, t.reads);
        reg.add(Counter::CacheWrites, t.writes);
        reg.add(Counter::CacheWriteStacks, t.write_stacks);
        reg.add(Counter::Writebacks, cache.writebacks);
        reg.add(Counter::BlockFetches, cache.block_fetches);
        reg.add(Counter::ThroughWrites, cache.through_writes);
        reg.add(Counter::EventsDropped, self.bus.events_dropped());
        reg.add(Counter::ChoicePoints, self.cp_pushed);
        reg.add(Counter::IndexedCalls, self.indexed_calls);
        reg.add(Counter::IndexDirectEntries, self.index_direct);
        reg.snapshot()
    }

    /// Enables or disables observability event tracing at runtime.
    /// Off by default; while off, every emission site (dispatch loop,
    /// memory bus, governor) pays only a branch. Disabling discards
    /// recorded events.
    pub fn set_event_trace(&mut self, enabled: bool) {
        self.config.trace_events = enabled;
        self.bus.set_events_enabled(enabled);
    }

    /// Copies out the recorded observability events in chronological
    /// order and clears the ring. Empty while event tracing is off.
    pub fn take_events(&mut self) -> Vec<ObsEvent> {
        self.bus.take_events()
    }

    /// Events lost to ring overwrite since tracing was enabled or
    /// events were last taken.
    pub fn events_dropped(&self) -> u64 {
        self.bus.events_dropped()
    }

    /// The compiled code image (for inspection and tooling).
    pub fn image(&self) -> &CodeImage {
        &self.image
    }

    /// The machine configuration.
    pub fn config(&self) -> &MachineConfig {
        &self.config
    }

    // ----------------------------------------------------------- query

    pub(crate) fn start_query(&mut self, proc_idx: usize, qc: &QueryCode) -> Result<()> {
        let prev = self.cur;
        self.cur = proc_idx;
        self.procs[proc_idx].status = ProcStatus::Runnable;
        let mut cells = Vec::with_capacity(qc.vars.len());
        let mut args = Vec::with_capacity(qc.vars.len());
        for _ in &qc.vars {
            let cell = self.new_global_cell(InterpModule::Control)?;
            args.push(Word::reference(cell));
            cells.push(cell);
        }
        self.procs[proc_idx].query = Some(QueryState {
            cells,
            vars: qc.vars.clone(),
        });
        let entered = self.enter_clause(qc.pred, 0, &args, 0, None, 0)?;
        debug_assert!(entered, "query head has only fresh variables");
        if proc_idx != prev {
            // The process starts suspended: its frame buffers must not
            // stay in the WF, which belongs to the running process.
            self.flush_all_buffers()?;
        }
        self.cur = prev;
        Ok(())
    }

    fn capture_solution(&mut self) -> Result<Solution> {
        // Take the query state out instead of cloning it (decoding
        // needs `&mut self`); put it back before returning.
        let q = self.procs[self.cur]
            .query
            .take()
            .expect("solution only arises from a query");
        let mut bindings = Vec::new();
        let mut failed = None;
        for (name, cell) in q.vars.iter().zip(&q.cells) {
            if name.starts_with('_') {
                continue;
            }
            match self.decode_cell(*cell) {
                Ok(term) => bindings.push((name.clone(), term)),
                Err(e) => {
                    failed = Some(e);
                    break;
                }
            }
        }
        self.procs[self.cur].query = Some(q);
        match failed {
            Some(e) => Err(e),
            None => Ok(Solution::new(bindings)),
        }
    }

    // -------------------------------------------------------- main loop

    pub(crate) fn run(&mut self, max_solutions: usize) -> Result<Vec<Solution>> {
        let mut solutions = Vec::new();
        if max_solutions == 0 {
            return Ok(solutions);
        }
        self.cur = 0;
        loop {
            let flow = self.dispatch()?;
            match flow {
                Flow::Continue => {}
                Flow::Backtrack => {
                    // Deadline boundary check (see
                    // [`ResourceLimits::with_deadline`]): backtracking
                    // can dominate wall time with few dispatches in
                    // between, so the governor interval alone would
                    // not bound the overshoot here.
                    self.check_deadline_boundary()?;
                    if !self.backtrack()? {
                        // current process exhausted
                        if self.cur == 0 {
                            return Ok(solutions);
                        }
                        self.procs[self.cur].status = ProcStatus::Done;
                        self.schedule()?;
                    }
                }
                Flow::Solution => {
                    if self.cur == 0 {
                        solutions.push(self.capture_solution()?);
                        self.metrics.incr(Counter::Solutions);
                        if solutions.len() >= max_solutions {
                            return Ok(solutions);
                        }
                        // Solution boundary: a completed solution is
                        // kept (checked above), but the search for the
                        // next one does not start past the deadline.
                        self.check_deadline_boundary()?;
                        if !self.backtrack()? {
                            return Ok(solutions);
                        }
                    } else {
                        self.procs[self.cur].status = ProcStatus::Done;
                        self.schedule()?;
                    }
                }
                Flow::Yield => {
                    self.schedule()?;
                }
            }
        }
    }

    /// Cooperative scheduler: flush WF state and rotate to the next
    /// runnable process (§2.1 multi-process support).
    fn schedule(&mut self) -> Result<()> {
        // The WF belongs to the running process; switching saves the
        // buffered frames to the local stack.
        self.flush_all_buffers()?;
        let n = self.procs.len();
        for i in 1..=n {
            let cand = (self.cur + i) % n;
            if self.procs[cand].status == ProcStatus::Runnable {
                self.cur = cand;
                // Context switch overhead: reload control registers.
                for _ in 0..6 {
                    self.tally.step_seq(InterpModule::Control, true);
                    self.bus.tick(self.config.cycle_ns);
                }
                return Ok(());
            }
        }
        // No other runnable process: keep running the current one if
        // it is runnable; otherwise we are deadlocked, which cannot
        // happen because the main process drives the session.
        Ok(())
    }

    /// Fetches and dispatches the goal word at the current code
    /// pointer.
    fn dispatch(&mut self) -> Result<Flow> {
        self.governor_tick()?;
        self.metrics.incr(Counter::Dispatches);
        let code_ptr = self.procs[self.cur].regs.code_ptr;
        if self.bus.events_enabled() {
            let dispatch_ev = ObsEvent::dispatch(self.bus.step(), code_ptr);
            self.bus.record_event(dispatch_ev);
        }
        if self.lane_compiled {
            return self.dispatch_fused(code_ptr);
        }
        if self.lane_fast {
            return self.dispatch_decoded(code_ptr);
        }
        let w = self.fetch_code(InterpModule::Control, BranchOp::CaseOpcode, code_ptr)?;
        match w.tag() {
            psi_core::Tag::Goal => {
                let (pred, nargs) = w.goal_value().expect("Goal word");
                self.handle_user_call(pred, nargs, code_ptr)
            }
            psi_core::Tag::BuiltinGoal => {
                let (id, nargs) = w.goal_value().expect("BuiltinGoal word");
                self.handle_builtin_call(id, nargs, code_ptr)
            }
            psi_core::Tag::CutGoal => self.handle_cut(code_ptr),
            psi_core::Tag::EndBody => self.handle_return(),
            other => Err(PsiError::EvalError {
                detail: format!("corrupt code word ({other}) at heap:{code_ptr:#x}"),
            }),
        }
    }

    /// Resource governor, off the hot path: one decrement and a
    /// predictable branch per dispatch; the actual budget comparisons
    /// (and the clock read, when a deadline is armed) run once every
    /// [`GOVERNOR_INTERVAL`] dispatches. The compiled lane runs this
    /// once per *constituent* of a fused chain — each constituent's
    /// charges land before its own tick — so `ResourceExhausted`'s
    /// `consumed` count and the deadline-overshoot bound are identical
    /// across all three lanes.
    #[inline]
    fn governor_tick(&mut self) -> Result<()> {
        self.governor_countdown -= 1;
        if self.governor_countdown == 0 {
            self.governor_slow_check()?;
        }
        Ok(())
    }

    /// The every-[`GOVERNOR_INTERVAL`] half of [`Machine::governor_tick`].
    #[cold]
    fn governor_slow_check(&mut self) -> Result<()> {
        self.governor_countdown = GOVERNOR_INTERVAL;
        self.metrics.incr(Counter::GovernorChecks);
        let check_ev = ObsEvent::governor_check(self.bus.step());
        self.bus.record_event(check_ev);
        if let Err(e) = self.check_budgets() {
            if let PsiError::ResourceExhausted { resource, .. } = &e {
                self.metrics.incr(Counter::GovernorTrips);
                let trip_ev = ObsEvent::governor_trip(self.bus.step(), resource.code());
                self.bus.record_event(trip_ev);
            }
            return Err(e);
        }
        Ok(())
    }

    /// Compiled-lane dispatch: runs over the fused op array,
    /// executing superinstruction chains (builtin→next, cut→next)
    /// without returning to the run loop between constituents. Every
    /// constituent still pays the full per-dispatch protocol — governor
    /// tick, dispatch counter, dispatch event, the five fetch
    /// microsteps — so all deterministic statistics stay bit-identical
    /// to the other lanes; only the host-side loop overhead is fused
    /// away.
    fn dispatch_fused(&mut self, mut code_ptr: u32) -> Result<Flow> {
        loop {
            let Some(&op) = self.fused.ops.get(code_ptr as usize) else {
                // Past the fused extent (a runtime heap-vector address
                // or a corrupt code pointer): fall back to the decoded
                // path, which reproduces the fidelity lane's errors.
                self.metrics.incr(psi_obs::Counter::FusedDispatches);
                return self.dispatch_decoded(code_ptr);
            };
            self.metrics.incr(psi_obs::Counter::FusedDispatches);
            let flow = match op.kind {
                FusedKind::Goal => self.exec_goal_fused(op)?,
                FusedKind::Builtin => self.exec_builtin_fused(op)?,
                FusedKind::Cut => {
                    self.charge_packet(&self.charges.code_fetch[InterpModule::Control.index()][0]);
                    self.handle_cut(code_ptr)?
                }
                FusedKind::Return => {
                    self.charge_packet(&self.charges.code_fetch[InterpModule::Control.index()][0]);
                    self.handle_return()?
                }
                FusedKind::NotOp => {
                    self.charge_packet(&self.charges.code_fetch[InterpModule::Control.index()][0]);
                    return self.corrupt_code(code_ptr);
                }
            };
            if flow != Flow::Continue || op.flags & FUSE_NEXT == 0 {
                return Ok(flow);
            }
            // Chain into the statically fused continuation: repeat the
            // per-dispatch protocol the run loop would have performed.
            self.metrics.incr(psi_obs::Counter::FusionHits);
            self.governor_tick()?;
            self.metrics.incr(Counter::Dispatches);
            code_ptr = self.procs[self.cur].regs.code_ptr;
            if self.bus.events_enabled() {
                let dispatch_ev = ObsEvent::dispatch(self.bus.step(), code_ptr);
                self.bus.record_event(dispatch_ev);
            }
        }
    }

    /// Throughput-lane dispatch: runs from the predecoded micro-op
    /// array instead of re-fetching and re-decoding the goal word
    /// through simulated memory, while charging exactly the
    /// microsteps the fidelity lane's fetch-and-decode charges (so
    /// step totals and module tallies stay bit-identical).
    fn dispatch_decoded(&mut self, code_ptr: u32) -> Result<Flow> {
        let fetched = match self.decode.get(code_ptr as usize) {
            Some(d) if d.is_decoded() => {
                self.metrics.incr(Counter::PredecodeHits);
                Ok(*d)
            }
            _ => self.predecode_miss(code_ptr),
        };
        // Charged before the fetch result is inspected, mirroring the
        // fidelity lane: `fetch_code` charges all six steps even when
        // the heap read itself fails.
        self.charge_code_fetch(InterpModule::Control, BranchOp::CaseOpcode);
        let d = fetched?;
        match d.kind() {
            OpKind::UserGoal => self.handle_user_call(d.operand(), d.nargs(), code_ptr),
            OpKind::BuiltinGoal => self.handle_builtin_call(d.operand(), d.nargs(), code_ptr),
            OpKind::Cut => self.handle_cut(code_ptr),
            OpKind::Return => self.handle_return(),
            OpKind::NotDecoded | OpKind::Invalid => self.corrupt_code(code_ptr),
        }
    }

    /// Cold path: first dispatch of a code word — decode it once and
    /// fill its cache entry.
    #[cold]
    fn predecode_miss(&mut self, code_ptr: u32) -> Result<DecodedOp> {
        self.metrics.incr(Counter::PredecodeMisses);
        let idx = code_ptr as usize;
        let w = match self.image.heap().get(idx) {
            Some(&w) => w,
            // Beyond the loaded image — never valid code. Read through
            // the bus so an out-of-extent code pointer produces the
            // same error as the fidelity lane.
            None => self.bus.read(Address::heap(code_ptr))?,
        };
        let d = DecodedOp::decode(w);
        // Copy-on-write: the first miss after a fork detaches this
        // machine's own predecode vector (one cold memcpy of sentinel
        // entries); after that `make_mut` is a refcount check.
        if let Some(slot) = Arc::make_mut(&mut self.decode).get_mut(idx) {
            *slot = d;
        }
        Ok(d)
    }

    /// Reproduces the fidelity lane's corrupt-code-word error for a
    /// word the predecoder classified as non-dispatchable.
    #[cold]
    fn corrupt_code(&mut self, code_ptr: u32) -> Result<Flow> {
        let w = match self.image.heap().get(code_ptr as usize) {
            Some(&w) => w,
            None => self.bus.peek(Address::heap(code_ptr))?,
        };
        Err(PsiError::EvalError {
            detail: format!("corrupt code word ({}) at heap:{code_ptr:#x}", w.tag()),
        })
    }

    /// Compares every configured budget against current consumption.
    /// Cold: called once per [`GOVERNOR_INTERVAL`] dispatches. With
    /// the default unlimited config every comparison is a `None`
    /// check and the wall clock is never read.
    #[cold]
    fn check_budgets(&self) -> Result<()> {
        let limits = &self.config.limits;
        let exhausted = |resource, limit: u64, consumed: u64| {
            Err(PsiError::ResourceExhausted {
                resource,
                limit,
                consumed,
            })
        };
        if let Some(max) = limits.max_steps {
            let consumed = self.total_steps().saturating_sub(self.run_base_steps);
            if consumed > max {
                return exhausted(Resource::Steps, max, consumed);
            }
        }
        if let Some(max) = limits.max_heap_words {
            if self.heap_top > max {
                return exhausted(Resource::HeapWords, max as u64, self.heap_top as u64);
            }
        }
        for p in &self.procs {
            let areas = [
                (limits.max_local_words, p.local_top, Resource::LocalWords),
                (limits.max_global_words, p.global_top, Resource::GlobalWords),
                (limits.max_control_words, p.ctl_top, Resource::ControlWords),
                (limits.max_trail_words, p.trail_top, Resource::TrailWords),
            ];
            for (limit, top, resource) in areas {
                if let Some(max) = limit {
                    if top > max {
                        return exhausted(resource, max as u64, top as u64);
                    }
                }
            }
        }
        if let (Some(deadline), Some(started)) = (limits.deadline, self.run_started) {
            let elapsed = started.elapsed();
            if elapsed >= deadline {
                return exhausted(
                    Resource::WallClockMs,
                    deadline.as_millis() as u64,
                    elapsed.as_millis() as u64,
                );
            }
        }
        Ok(())
    }

    /// Deadline-only governor check, run at solution and backtrack
    /// boundaries in addition to the periodic per-dispatch check, so
    /// the overshoot bound of [`ResourceLimits::with_deadline`] holds
    /// even in execution segments where dispatches are sparse. With no
    /// deadline configured this is two `Option` loads and a branch —
    /// the clock is never read. Charges no microsteps: the deadline is
    /// a host-side budget, so simulated step totals stay bit-identical
    /// whether or not a deadline is armed.
    fn check_deadline_boundary(&mut self) -> Result<()> {
        let (Some(deadline), Some(started)) = (self.config.limits.deadline, self.run_started)
        else {
            return Ok(());
        };
        let elapsed = started.elapsed();
        if elapsed < deadline {
            return Ok(());
        }
        self.metrics.incr(Counter::GovernorTrips);
        let trip_ev = ObsEvent::governor_trip(self.bus.step(), Resource::WallClockMs.code());
        self.bus.record_event(trip_ev);
        Err(PsiError::ResourceExhausted {
            resource: Resource::WallClockMs,
            limit: deadline.as_millis() as u64,
            consumed: elapsed.as_millis() as u64,
        })
    }
}
