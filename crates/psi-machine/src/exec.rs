//! Execution engine: micro-op primitives, call/return/backtrack/cut,
//! frame buffers, and built-in predicates.

use crate::codegen::{IndexKey, BUCKET_LINEAR, BUCKET_VAR_ONLY};
use crate::machine::{Activation, ChoicePoint, Flow, Machine, ProcStatus};
use crate::ucode::{
    BranchOp, ChargePacket, ChargeTable, FusedOp, InterpModule, PackedArg, ARGS_GENERIC,
    ARGS_PACKED,
};
use crate::wf::{WfField, WfMode};
use crate::Builtin;
use psi_core::{Address, Area, PsiError, Result, Tag, Word};
use std::sync::OnceLock;

/// Words in a control frame (environment or choice point), §2.1:
/// "The control stack contains 10-word control frames".
pub(crate) const CONTROL_FRAME_WORDS: u32 = 10;

static CHARGE_TABLE: OnceLock<ChargeTable> = OnceLock::new();

/// The compiled lane's charge table, recorded once per process. Lives
/// here, next to the microstep sequences it mirrors: every packet is
/// recorded by replaying the corresponding `Machine` sequence's
/// `step_*` calls (same branch ops, same order, same data flags), so
/// the packets cannot drift from the fidelity lane without the
/// equivalence tests catching it.
pub(crate) fn charge_table() -> &'static ChargeTable {
    CHARGE_TABLE.get_or_init(|| {
        let mut t = ChargeTable::build();
        t.finalize_ids();
        t
    })
}

impl ChargeTable {
    /// Records every packet. Each closure mirrors one named sequence
    /// below — the comments say which.
    fn build() -> ChargeTable {
        use InterpModule as M;
        // `fetch_code` / `charge_code_fetch`: fetch, decode+advance,
        // two tag tests, dispatch.
        let fetch = |m: InterpModule, op: BranchOp| {
            ChargePacket::record(move |t| {
                t.step(m, op, true);
                t.step_seq(m, true);
                t.step_cond(m, true);
                t.step_cond(m, false);
                t.step_goto(m, true);
            })
        };
        ChargeTable {
            code_fetch: std::array::from_fn(|mi| {
                let m = M::ALL[mi];
                [fetch(m, BranchOp::CaseOpcode), fetch(m, BranchOp::CaseTag)]
            }),
            // `mem_read` / `mem_write` / `mem_push`: address
            // generation (bounds or permission test), access cycle.
            addr_cycle: std::array::from_fn(|mi| {
                let m = M::ALL[mi];
                ChargePacket::record(move |t| {
                    t.step_cond(m, true);
                    t.step_seq(m, true);
                })
            }),
            // `mem_read_dispatch`: tag test, tag dispatch.
            read_dispatch: std::array::from_fn(|mi| {
                let m = M::ALL[mi];
                ChargePacket::record(move |t| {
                    t.step(m, BranchOp::IfTag, true);
                    t.step(m, BranchOp::CaseTag, true);
                })
            }),
            // `materialize_env`: load-jr, 10-word burst.
            env_save: ChargePacket::record(|t| {
                t.step(M::Control, BranchOp::LoadJr, true);
                for _ in 0..CONTROL_FRAME_WORDS {
                    t.step_goto(M::Control, true);
                }
            }),
            // `push_choice_point`: load-jr, two ALU steps, 10-word
            // burst.
            cp_save: ChargePacket::record(|t| {
                t.step(M::Control, BranchOp::LoadJr, true);
                t.step_seq(M::Control, true);
                t.step_seq(M::Control, true);
                for _ in 0..CONTROL_FRAME_WORDS {
                    t.step_goto(M::Control, true);
                }
            }),
            // `handle_user_call` post-argument overhead: two ALU
            // steps, a condition, the predicate-table indirect jump.
            call_overhead: ChargePacket::record(|t| {
                t.step_seq(M::Control, true);
                t.step_seq(M::Control, true);
                t.step_cond(M::Control, true);
                t.step(M::Control, BranchOp::GotoJr1, false);
            }),
            // `enter_clause` entry: gosub, header fetch (the five
            // fetch steps), two ALU steps, frame setup.
            enter_clause: ChargePacket::record(|t| {
                t.step(M::Control, BranchOp::Gosub, false);
                t.step(M::Control, BranchOp::CaseOpcode, true);
                t.step_seq(M::Control, true);
                t.step_cond(M::Control, true);
                t.step_cond(M::Control, false);
                t.step_goto(M::Control, true);
                t.step_seq(M::Control, true);
                t.step_seq(M::Control, true);
                t.step_seq(M::Control, true);
            }),
            // `backtrack_loop` iteration head: goto, two ALU steps, a
            // condition, then the clause-alternative word read (the
            // host copies the rest of the frame out of the choice
            // point, which charges nothing in between).
            backtrack_head: ChargePacket::record(|t| {
                t.step_goto(M::Control, false);
                t.step_seq(M::Control, true);
                t.step_seq(M::Control, true);
                t.step_cond(M::Control, true);
                t.step_cond(M::Control, true);
                t.step_seq(M::Control, true);
            }),
            // One trail unwind of a bound cell: the dispatch read plus
            // the reset write's address and write cycles.
            trail_undo: ChargePacket::record(|t| {
                t.step(M::Trail, BranchOp::IfTag, true);
                t.step(M::Trail, BranchOp::CaseTag, true);
                t.step_cond(M::Trail, true);
                t.step_seq(M::Trail, true);
            }),
            // `unify`'s microsubroutine bracket (gosub + return). Both
            // ops are rotor-independent, so charging the pair up front
            // commutes with everything the body charges.
            unify_frame: ChargePacket::record(|t| {
                t.step(M::Unify, BranchOp::Gosub, false);
                t.step(M::Unify, BranchOp::Return, false);
            }),
            // One `unify_inner` pair dispatch (the tag-pair case
            // branch) with no further charges in its arm.
            unify_case: ChargePacket::record(|t| {
                t.step(M::Unify, BranchOp::CaseTag, true);
            }),
            // Pair dispatch + the constant-compare test
            // (`test_const_step`) of the atom/int arm.
            unify_const: ChargePacket::record(|t| {
                t.step(M::Unify, BranchOp::CaseTag, true);
                t.step_cond(M::Unify, true);
            }),
            // Pair dispatch + the four element reads of the list/list
            // arm (two cars, two cdrs — `mem_read` each).
            unify_list: ChargePacket::record(|t| {
                t.step(M::Unify, BranchOp::CaseTag, true);
                for _ in 0..4 {
                    t.step_cond(M::Unify, true);
                    t.step_seq(M::Unify, true);
                }
            }),
            // Pair dispatch + the two functor reads and the functor
            // compare of the vect/vect arm.
            unify_vect_head: ChargePacket::record(|t| {
                t.step(M::Unify, BranchOp::CaseTag, true);
                for _ in 0..2 {
                    t.step_cond(M::Unify, true);
                    t.step_seq(M::Unify, true);
                }
                t.step_cond(M::Unify, true);
            }),
            // One element-pair read of the vect/vect arm (two
            // `mem_read`s).
            unify_pair_read: ChargePacket::record(|t| {
                for _ in 0..2 {
                    t.step_cond(M::Unify, true);
                    t.step_seq(M::Unify, true);
                }
            }),
            // `bind` without a trail entry: the conditional-trailing
            // test plus the cell write.
            bind_plain: ChargePacket::record(|t| {
                t.step_cond(M::Trail, false);
                t.step_cond(M::Unify, true);
                t.step_seq(M::Unify, true);
            }),
            // `bind` with a trail entry: the test, the trail push,
            // the cell write.
            bind_trailed: ChargePacket::record(|t| {
                t.step_cond(M::Trail, false);
                t.step_cond(M::Trail, true);
                t.step_seq(M::Trail, true);
                t.step_cond(M::Unify, true);
                t.step_seq(M::Unify, true);
            }),
            // `handle_return` through a materialized frame: three
            // frame-word reads, register reload, continuation test,
            // return op (reclaim between them is host-only).
            ret_frame: ChargePacket::record(|t| {
                for _ in 0..3 {
                    t.step_cond(M::Control, true);
                    t.step_seq(M::Control, true);
                }
                t.step_seq(M::Control, true);
                t.step_cond(M::Control, true);
                t.step(M::Control, BranchOp::Return, false);
            }),
            // `handle_return` from the WF-resident registers.
            ret_quick: ChargePacket::record(|t| {
                t.step_seq(M::Control, true);
                t.step_cond(M::Control, true);
                t.step(M::Control, BranchOp::Return, false);
            }),
            // One skeleton element: code fetch + element read/push.
            skel_fetch_cycle: ChargePacket::record(|t| {
                t.step(M::Unify, BranchOp::CaseTag, true);
                t.step_seq(M::Unify, true);
                t.step_cond(M::Unify, true);
                t.step_cond(M::Unify, false);
                t.step_goto(M::Unify, true);
                t.step_cond(M::Unify, true);
                t.step_seq(M::Unify, true);
            }),
            // `unify_skeleton` list head: skeleton-kind dispatch +
            // first element cycle.
            skel_head: ChargePacket::record(|t| {
                t.step(M::Unify, BranchOp::CaseTag, true);
                t.step(M::Unify, BranchOp::CaseTag, true);
                t.step_seq(M::Unify, true);
                t.step_cond(M::Unify, true);
                t.step_cond(M::Unify, false);
                t.step_goto(M::Unify, true);
                t.step_cond(M::Unify, true);
                t.step_seq(M::Unify, true);
            }),
            // `unify_skeleton` vector head: kind dispatch, functor
            // fetch, functor read, functor compare. The arity load-jr
            // stays eager — the fidelity lane only charges it after
            // the compare passes.
            skel_vect_test: ChargePacket::record(|t| {
                t.step(M::Unify, BranchOp::CaseTag, true);
                t.step(M::Unify, BranchOp::CaseTag, true);
                t.step_seq(M::Unify, true);
                t.step_cond(M::Unify, true);
                t.step_cond(M::Unify, false);
                t.step_goto(M::Unify, true);
                t.step_cond(M::Unify, true);
                t.step_seq(M::Unify, true);
                t.step_cond(M::Unify, true);
            }),
            // `copy_skeleton` vector head: functor fetch, functor
            // push, arity load-jr (charged unconditionally there).
            skel_vect_copy_head: ChargePacket::record(|t| {
                t.step(M::Unify, BranchOp::CaseTag, true);
                t.step_seq(M::Unify, true);
                t.step_cond(M::Unify, true);
                t.step_cond(M::Unify, false);
                t.step_goto(M::Unify, true);
                t.step_cond(M::Unify, true);
                t.step_seq(M::Unify, true);
                t.step(M::Unify, BranchOp::LoadJr, true);
            }),
            // One head-argument cycle ending in a buffered slot
            // access: code fetch + the frame-buffer access step.
            head_slot_buf: ChargePacket::record(|t| {
                t.step(M::Unify, BranchOp::CaseTag, true);
                t.step_seq(M::Unify, true);
                t.step_cond(M::Unify, true);
                t.step_cond(M::Unify, false);
                t.step_goto(M::Unify, true);
                t.step_seq(M::Unify, true);
            }),
            // One constant head argument: code fetch + the unify
            // gosub/return bracket (rotor-independent, so it commutes
            // with the unify body's own charges).
            head_const: ChargePacket::record(|t| {
                t.step(M::Unify, BranchOp::CaseTag, true);
                t.step_seq(M::Unify, true);
                t.step_cond(M::Unify, true);
                t.step_cond(M::Unify, false);
                t.step_goto(M::Unify, true);
                t.step(M::Unify, BranchOp::Gosub, false);
                t.step(M::Unify, BranchOp::Return, false);
            }),
            // One copied slot-variable element, slot buffered: fetch,
            // frame-buffer read, push.
            skel_var_buf: ChargePacket::record(|t| {
                t.step(M::Unify, BranchOp::CaseTag, true);
                t.step_seq(M::Unify, true);
                t.step_cond(M::Unify, true);
                t.step_cond(M::Unify, false);
                t.step_goto(M::Unify, true);
                t.step_seq(M::Unify, true);
                t.step_cond(M::Unify, true);
                t.step_seq(M::Unify, true);
            }),
            // One copied slot-variable element, slot flushed: fetch,
            // local-stack read, push.
            skel_var_mem: ChargePacket::record(|t| {
                t.step(M::Unify, BranchOp::CaseTag, true);
                t.step_seq(M::Unify, true);
                t.step_cond(M::Unify, true);
                t.step_cond(M::Unify, false);
                t.step_goto(M::Unify, true);
                t.step_cond(M::Unify, true);
                t.step_seq(M::Unify, true);
                t.step_cond(M::Unify, true);
                t.step_seq(M::Unify, true);
            }),
            // One skeleton head argument derefing in a single hop:
            // code fetch + the dispatch read (both dispatch ops are
            // fixed, so the fused position is exact).
            head_skel_ref: ChargePacket::record(|t| {
                t.step(M::Unify, BranchOp::CaseTag, true);
                t.step_seq(M::Unify, true);
                t.step_cond(M::Unify, true);
                t.step_cond(M::Unify, false);
                t.step_goto(M::Unify, true);
                t.step(M::Unify, BranchOp::IfTag, true);
                t.step(M::Unify, BranchOp::CaseTag, true);
            }),
            // `backtrack_loop` resume with a remaining alternative:
            // restore step + the in-place alternative-advance write.
            bt_resume: ChargePacket::record(|t| {
                t.step_seq(M::Control, true);
                t.step_cond(M::Control, true);
                t.step_seq(M::Control, true);
            }),
        }
    }
}

/// Resolved location of a local-variable slot (see
/// [`Machine::slot_place`]).
pub(crate) enum SlotPlace {
    /// Still in WF frame buffer `0` or `1`.
    Buffered(usize),
    /// Flushed to the local stack at this address.
    Flushed(Address),
}

impl Machine {
    // ------------------------------------------------- micro primitives

    pub(crate) fn micro(&mut self, m: InterpModule, op: BranchOp, data: bool) {
        self.tally.step(m, op, data);
        self.bus.tick(self.config.cycle_ns);
    }

    pub(crate) fn micro_seq(&mut self, m: InterpModule, data: bool) {
        self.tally.step_seq(m, data);
        self.bus.tick(self.config.cycle_ns);
    }

    pub(crate) fn micro_cond(&mut self, m: InterpModule, data: bool) {
        self.tally.step_cond(m, data);
        self.bus.tick(self.config.cycle_ns);
    }

    pub(crate) fn micro_goto(&mut self, m: InterpModule, data: bool) {
        self.tally.step_goto(m, data);
        self.bus.tick(self.config.cycle_ns);
    }

    /// Applies one pre-recorded charge packet (compiled lane): the
    /// tally deltas of the whole sequence in one lookup, plus a batch
    /// bus-step advance standing in for the sequence's ticks.
    #[inline]
    pub(crate) fn charge_packet(&mut self, p: &ChargePacket) {
        let steps = p.charge_deferred(&mut self.tally, &mut self.charge_counts);
        self.deferred_steps += steps;
        self.bus.advance(steps);
    }

    /// An ALU step combining two registers into a third.
    pub(crate) fn alu_step(&mut self, m: InterpModule) {
        self.micro_seq(m, true);
        self.wf.touch_read(WfField::Source1, WfMode::Direct10);
        self.wf.touch_read(WfField::Source2, WfMode::Direct00);
        self.wf.touch_write(WfMode::Direct10);
    }

    /// A comparison against a constant from the WF constant area.
    pub(crate) fn test_const_step(&mut self, m: InterpModule) {
        self.micro_cond(m, true);
        self.wf.touch_read(WfField::Source1, WfMode::Constant);
        self.wf.touch_read(WfField::Source2, WfMode::Direct00);
    }

    // -------------------------------------------------- memory accesses

    pub(crate) fn heap_addr(&self, off: u32) -> Address {
        Address::heap(off)
    }

    pub(crate) fn local_addr(&self, off: u32) -> Address {
        Address::new(self.procs[self.cur].pid, Area::LocalStack, off)
    }

    pub(crate) fn global_addr(&self, off: u32) -> Address {
        Address::new(self.procs[self.cur].pid, Area::GlobalStack, off)
    }

    pub(crate) fn ctl_addr(&self, off: u32) -> Address {
        Address::new(self.procs[self.cur].pid, Area::ControlStack, off)
    }

    pub(crate) fn trail_addr(&self, off: u32) -> Address {
        Address::new(self.procs[self.cur].pid, Area::TrailStack, off)
    }

    /// Instruction fetch from the heap area (the dominant heap traffic
    /// of Table 4).
    #[inline]
    pub(crate) fn fetch_code(&mut self, m: InterpModule, op: BranchOp, off: u32) -> Result<Word> {
        if self.lane_fast {
            return self.fetch_code_fast(m, op, off);
        }
        self.micro(m, op, true);
        self.wf.touch_read(WfField::Source1, WfMode::Direct10);
        let w = self.bus.read(self.heap_addr(off));
        // Decode the fetched word and advance the code pointer: the
        // real microcode spends extra cycles per fetched word (tag
        // extraction, pointer increment, field moves).
        self.micro_seq(m, true);
        self.wf.touch_read(WfField::Source1, WfMode::Direct00);
        self.wf.touch_write(WfMode::Direct10);
        self.micro_cond(m, true);
        self.micro_cond(m, false);
        self.micro_goto(m, true);
        w
    }

    /// The microstep and WF charges of one code-word fetch, kept in
    /// step with [`Machine::fetch_code`]'s sequence (same branch ops,
    /// same rotor order, same WF touches). The throughput lane charges
    /// these without the simulated-memory round trip.
    pub(crate) fn charge_code_fetch(&mut self, m: InterpModule, op: BranchOp) {
        self.micro(m, op, true);
        self.wf.touch_read(WfField::Source1, WfMode::Direct10);
        self.micro_seq(m, true);
        self.wf.touch_read(WfField::Source1, WfMode::Direct00);
        self.wf.touch_write(WfMode::Direct10);
        self.micro_cond(m, true);
        self.micro_cond(m, false);
        self.micro_goto(m, true);
    }

    /// Throughput-lane code fetch: identical microstep and WF charges,
    /// with the simulated-memory round trip replaced by a direct read
    /// of the host-side code image. This is sound because `sync_code`
    /// copies the image verbatim into the simulated heap and code is
    /// immutable once loaded; an offset beyond the image falls back to
    /// the bus so error behaviour matches the fidelity lane.
    #[inline]
    fn fetch_code_fast(&mut self, m: InterpModule, op: BranchOp, off: u32) -> Result<Word> {
        let w = match self.image.heap().get(off as usize) {
            Some(&w) => Ok(w),
            None => self.bus.read(self.heap_addr(off)),
        };
        if self.lane_compiled {
            // The compiled lane fetches only through the two fetch
            // ops; charge the matching pre-recorded packet.
            let oi = match op {
                BranchOp::CaseOpcode => 0,
                BranchOp::CaseTag => 1,
                _ => {
                    self.charge_code_fetch(m, op);
                    return w;
                }
            };
            self.charge_packet(&self.charges.code_fetch[m.index()][oi]);
        } else {
            self.charge_code_fetch(m, op);
        }
        w
    }

    /// The host-side read of [`Machine::fetch_code_fast`] without its
    /// charge — for compiled-lane callers whose fused packet already
    /// covers the fetch.
    #[inline]
    pub(crate) fn fetch_code_uncharged(&mut self, off: u32) -> Result<Word> {
        match self.image.heap().get(off as usize) {
            Some(&w) => Ok(w),
            None => self.bus.read(self.heap_addr(off)),
        }
    }

    /// Reads a cell that may hold a raw unbound marker, converting it
    /// to a reference to the cell itself so the caller can bind it.
    pub(crate) fn read_value(&mut self, m: InterpModule, addr: Address) -> Result<Word> {
        let w = self.mem_read(m, addr)?;
        Ok(if w.is_undef() {
            Word::reference(addr)
        } else {
            w
        })
    }

    pub(crate) fn mem_read(&mut self, m: InterpModule, addr: Address) -> Result<Word> {
        if self.lane_compiled {
            self.charge_packet(&self.charges.addr_cycle[m.index()]);
            return self.bus.read(addr);
        }
        // Address generation (with an area bounds test), then the
        // access cycle.
        self.micro_cond(m, true);
        self.wf.touch_read(WfField::Source1, WfMode::Direct10);
        self.wf.touch_write(WfMode::Direct00);
        self.micro_seq(m, true);
        self.wf.touch_read(WfField::Source1, WfMode::Direct10);
        self.bus.read(addr)
    }

    /// A read that dispatches on the tag of the fetched word.
    pub(crate) fn mem_read_dispatch(&mut self, m: InterpModule, addr: Address) -> Result<Word> {
        if self.lane_compiled {
            self.charge_packet(&self.charges.read_dispatch[m.index()]);
            return self.bus.read(addr);
        }
        self.micro(m, BranchOp::IfTag, true);
        self.wf.touch_read(WfField::Source1, WfMode::Direct10);
        self.wf.touch_read(WfField::Source2, WfMode::Direct00);
        self.wf.touch_write(WfMode::Direct00);
        self.micro(m, BranchOp::CaseTag, true);
        self.wf.touch_read(WfField::Source1, WfMode::Direct10);
        self.bus.read(addr)
    }

    pub(crate) fn mem_write(&mut self, m: InterpModule, addr: Address, w: Word) -> Result<()> {
        if self.lane_compiled {
            self.charge_packet(&self.charges.addr_cycle[m.index()]);
            return self.bus.write(addr, w);
        }
        // Address generation (write-permission test), then the write
        // cycle.
        self.micro_cond(m, true);
        self.wf.touch_read(WfField::Source1, WfMode::Direct00);
        self.micro_seq(m, true);
        self.wf.touch_read(WfField::Source1, WfMode::Direct10);
        self.wf.touch_read(WfField::Source2, WfMode::Direct00);
        self.bus.write(addr, w)
    }

    /// A burst push (one word per cycle): frame writes stream through
    /// WFAR1 auto-increment straight into write-stack commands, so no
    /// separate address-generation cycle is needed.
    pub(crate) fn mem_push_burst(&mut self, m: InterpModule, addr: Address, w: Word) -> Result<()> {
        self.micro_goto(m, true);
        self.wf.touch_read(WfField::Source1, WfMode::IndWfar1);
        self.wf.touch_read(WfField::Source2, WfMode::Direct00);
        self.bus.write_stack(addr, w)
    }

    /// A push to a stack top, using the specialized write-stack cache
    /// command (cache spec item (g)).
    pub(crate) fn mem_push(&mut self, m: InterpModule, addr: Address, w: Word) -> Result<()> {
        if self.lane_compiled {
            self.charge_packet(&self.charges.addr_cycle[m.index()]);
            return self.bus.write_stack(addr, w);
        }
        // Top-of-stack pointer update with overflow test, then the
        // push cycle.
        self.micro_cond(m, true);
        self.wf.touch_read(WfField::Source1, WfMode::Direct10);
        self.wf.touch_write(WfMode::Direct10);
        self.micro_seq(m, true);
        self.wf.touch_read(WfField::Source1, WfMode::Direct10);
        self.wf.touch_read(WfField::Source2, WfMode::Direct00);
        self.bus.write_stack(addr, w)
    }

    // ------------------------------------------------------ local slots

    /// Where slot `slot` of the current activation lives right now:
    /// its WF frame buffer while buffered, its local-stack address
    /// once flushed. The single place the buffered-vs-flushed decision
    /// is made — all four slot accessors go through it.
    pub(crate) fn slot_place(&self, slot: u16) -> SlotPlace {
        let env = self.procs[self.cur].regs.env;
        let act = &self.procs[self.cur].envs[env];
        match act.buffer {
            Some(buf) => SlotPlace::Buffered(buf),
            None => SlotPlace::Flushed(self.local_addr(act.locals_base + slot as u32)),
        }
    }

    /// Reads local variable slot `slot` of the current activation —
    /// from the WF frame buffer while buffered, from the local stack
    /// once flushed.
    pub(crate) fn read_slot(&mut self, m: InterpModule, slot: u16, auto: bool) -> Result<Word> {
        self.read_slot_with(m, slot, false, auto)
    }

    fn read_slot_with(
        &mut self,
        m: InterpModule,
        slot: u16,
        base_relative: bool,
        auto: bool,
    ) -> Result<Word> {
        match self.slot_place(slot) {
            SlotPlace::Buffered(buf) => {
                self.micro_seq(m, true);
                Ok(self.wf.read_buffer(buf, slot as u32, base_relative, auto))
            }
            SlotPlace::Flushed(addr) => self.mem_read(m, addr),
        }
    }

    /// Writes local variable slot `slot` of the current activation.
    pub(crate) fn write_slot(
        &mut self,
        m: InterpModule,
        slot: u16,
        w: Word,
        auto: bool,
    ) -> Result<()> {
        self.write_slot_with(m, slot, w, false, auto)
    }

    fn write_slot_with(
        &mut self,
        m: InterpModule,
        slot: u16,
        w: Word,
        base_relative: bool,
        auto: bool,
    ) -> Result<()> {
        match self.slot_place(slot) {
            SlotPlace::Buffered(buf) => {
                self.micro_seq(m, true);
                if !base_relative {
                    // Direct slot addressing routes the source operand
                    // through the WF Source2 port; the PDR/CDR
                    // base-relative path does not (§4.3 function (4)).
                    self.wf.touch_read(WfField::Source2, WfMode::Direct00);
                }
                self.wf
                    .write_buffer(buf, slot as u32, w, base_relative, auto);
                Ok(())
            }
            SlotPlace::Flushed(addr) => self.mem_write(m, addr, w),
        }
    }

    // ---------------------------------------------------- frame buffers

    /// Acquires a WF frame buffer for a new activation of `nlocals`
    /// slots, flushing the oldest buffered frame if both buffers are
    /// taken (§2.2: "Two buffers are used alternately").
    pub(crate) fn acquire_buffer(&mut self, nlocals: u16) -> Result<Option<usize>> {
        if !self.config.frame_buffering || nlocals as u32 > crate::wf::FRAME_BUFFER_WORDS {
            return Ok(None);
        }
        if self.procs[self.cur].buffered.len() >= 2 {
            let oldest = self.procs[self.cur].buffered[0];
            self.flush_env_buffer(oldest)?;
        }
        let used: Vec<usize> = self.procs[self.cur]
            .buffered
            .iter()
            .filter_map(|&e| self.procs[self.cur].envs[e].buffer)
            .collect();
        let buf = (0..2)
            .find(|b| !used.contains(b))
            .expect("a buffer is free");
        Ok(Some(buf))
    }

    /// Writes a buffered activation's locals to the local stack and
    /// releases its buffer.
    pub(crate) fn flush_env_buffer(&mut self, env_id: usize) -> Result<()> {
        let (buf, base, n) = {
            let act = &self.procs[self.cur].envs[env_id];
            match act.buffer {
                Some(b) => (b, act.locals_base, act.nlocals),
                None => return Ok(()),
            }
        };
        let at_top = base + n as u32 == self.procs[self.cur].local_top;
        for slot in 0..n {
            self.micro_seq(InterpModule::Control, true);
            let w = self.wf.read_buffer(buf, slot as u32, false, true);
            let addr = self.local_addr(base + slot as u32);
            self.wf.touch_read(WfField::Source2, WfMode::Direct00);
            if at_top {
                self.bus.write_stack(addr, w)?;
            } else {
                self.bus.write(addr, w)?;
            }
        }
        self.procs[self.cur].envs[env_id].buffer = None;
        self.procs[self.cur].buffered.retain(|&e| e != env_id);
        Ok(())
    }

    /// Flushes every buffered frame (choice-point creation and process
    /// switches).
    pub(crate) fn flush_all_buffers(&mut self) -> Result<()> {
        while let Some(&oldest) = self.procs[self.cur].buffered.first() {
            self.flush_env_buffer(oldest)?;
        }
        Ok(())
    }

    // ------------------------------------------------------ allocation

    /// Allocates one fresh unbound cell on the global stack.
    pub(crate) fn new_global_cell(&mut self, m: InterpModule) -> Result<Address> {
        let off = self.procs[self.cur].global_top;
        let addr = self.global_addr(off);
        self.mem_push(m, addr, Word::undef())?;
        self.procs[self.cur].global_top = off + 1;
        Ok(addr)
    }

    // ------------------------------------------------------- user calls

    /// Calls user predicate `pred` with `nargs` arguments encoded at
    /// `code_ptr + 1`. Both lanes land here: the fidelity lane passes
    /// the operands it just decoded from the fetched goal word, the
    /// throughput lane passes them from its predecode cache.
    pub(crate) fn handle_user_call(&mut self, pred: u32, nargs: u8, code_ptr: u32) -> Result<Flow> {
        // Build the arguments into the reusable scratch buffer (taken
        // out of `self` so `build_args` can borrow `self` mutably, put
        // back on every exit path).
        let mut args = std::mem::take(&mut self.scratch_args);
        args.clear();
        let flow = (|| {
            let next_off =
                self.build_args(InterpModule::Control, code_ptr + 1, nargs, &mut args)?;
            self.user_calls += 1;
            // Predicate-table lookup and register save: the call overhead
            // the paper blames for PSI's slowness on simple programs
            // (§3.1: "more execution management information to be
            // stacked").
            self.alu_step(InterpModule::Control);
            self.alu_step(InterpModule::Control);
            self.micro_cond(InterpModule::Control, true);
            // Dispatch through the predicate table (indirect jump).
            self.micro(InterpModule::Control, BranchOp::GotoJr1, false);
            self.wf.touch_read(WfField::Source1, WfMode::Direct10);
            self.call_predicate(pred, &args, next_off)
        })();
        self.scratch_args = args;
        flow
    }

    /// Calls `pred` with `args`; `next_off` is the caller's resume
    /// point.
    pub(crate) fn call_predicate(
        &mut self,
        pred: u32,
        args: &[Word],
        next_off: u32,
    ) -> Result<Flow> {
        let nclauses = self.image.predicate(pred).clauses.len();
        if nclauses == 0 {
            if self.image.predicate(pred).dynamic {
                // A dynamic predicate whose clauses were all
                // retracted: the call fails cleanly, it is not an
                // undefined-predicate error.
                self.micro_cond(InterpModule::Control, false);
                return Ok(Flow::Backtrack);
            }
            return Err(PsiError::UndefinedPredicate {
                name: self.image.predicate(pred).indicator(),
            });
        }

        // First-argument indexing (opt-in performance profile): pick
        // the candidate bucket for the dereferenced first argument.
        // The paper-faithful default keeps the linear bucket and runs
        // through this block untouched — no deref, no extra
        // microsteps, bit-identical dynamic statistics.
        let bucket = if self.config.clause_indexing && nclauses > 1 {
            self.indexed_calls += 1;
            let b = self.select_bucket(pred, args)?;
            let ncand = self.image.predicate(pred).candidate_count(b);
            let direct = ncand == 1;
            if direct {
                self.index_direct += 1;
            }
            let ev = psi_core::ObsEvent::index_lookup(
                self.bus.step(),
                ncand as u32,
                nclauses as u32,
                direct,
            );
            self.bus.record_event(ev);
            if ncand == 0 {
                // Every clause head is guaranteed to fail on the
                // first argument: the call fails cleanly without
                // entering any clause or pushing a choice point.
                self.micro_cond(InterpModule::Control, false);
                return Ok(Flow::Backtrack);
            }
            b
        } else {
            BUCKET_LINEAR
        };
        let ncand = self.image.predicate(pred).candidate_count(bucket);

        let cur_env = self.procs[self.cur].regs.env;
        let barrier = self.procs[self.cur].cps.len();

        // Continuation: last-call optimization passes the caller's own
        // continuation through when the environment is not protected
        // by newer choice points (§2.2 tail recursion optimization).
        let is_last = self.peek_is_end_body(next_off);
        let act = self.procs[self.cur].envs[cur_env];
        let (cont_code, cont_env) = if is_last
            && self.config.tail_recursion_opt
            && self.procs[self.cur].cps.len() == act.entry_cps
        {
            self.micro_goto(InterpModule::Control, false);
            self.discard_env(cur_env)?;
            (act.cont_code, act.cont_env)
        } else {
            self.materialize_env(cur_env)?;
            (next_off, Some(cur_env))
        };

        if ncand > 1 {
            self.push_choice_point(pred, bucket, args, cont_code, cont_env, barrier)?;
        }
        let first = self.image.predicate(pred).candidate(bucket, 0);
        if self.enter_clause(pred, first, args, cont_code, cont_env, barrier)? {
            Ok(Flow::Continue)
        } else {
            Ok(Flow::Backtrack)
        }
    }

    /// Maps the dereferenced first call argument to a candidate
    /// bucket of `pred`. Only called on the indexing profile, so the
    /// probe's microstep charges (the deref walk, a tag dispatch and
    /// an ALU step for the table lookup) never touch the
    /// paper-faithful statistics.
    fn select_bucket(&mut self, pred: u32, args: &[Word]) -> Result<u32> {
        let Some(&first) = args.first() else {
            // Zero-arity predicates have nothing to index on.
            return Ok(BUCKET_LINEAR);
        };
        self.micro(InterpModule::Control, BranchOp::CaseTag, true);
        let (v, unbound) = self.deref(InterpModule::Control, first)?;
        if unbound.is_some() {
            // An unbound key matches every clause head.
            return Ok(BUCKET_LINEAR);
        }
        let key = match v.tag() {
            Tag::Atom => IndexKey::Atom(v.atom_value().expect("Atom")),
            Tag::Int => IndexKey::Int(v.int_value().expect("Int")),
            Tag::Nil => IndexKey::Nil,
            Tag::List => IndexKey::List,
            Tag::Vect => {
                let ptr = v.address_value().expect("Vect");
                let f = self.mem_read(InterpModule::Control, ptr)?;
                match f.functor_value() {
                    Some(f) => IndexKey::Struct(f),
                    None => {
                        return Err(PsiError::EvalError {
                            detail: "corrupt structure header".into(),
                        })
                    }
                }
            }
            // Anything else (heap vectors) unifies with no constant
            // head, so only var-headed clauses can match.
            _ => return Ok(BUCKET_VAR_ONLY),
        };
        self.alu_step(InterpModule::Control);
        Ok(self.image.predicate(pred).bucket_for(key))
    }

    /// Is the code word at `off` the end-of-body sentinel? (The
    /// microcode knows this statically from the instruction stream;
    /// no counted fetch.)
    fn peek_is_end_body(&self, off: u32) -> bool {
        self.image
            .heap()
            .get(off as usize)
            .map(|w| w.tag() == Tag::EndBody)
            .unwrap_or(false)
    }

    /// Discards an activation at a deterministic last call: frees its
    /// buffer and reclaims its stack space when it sits on top.
    fn discard_env(&mut self, env_id: usize) -> Result<()> {
        let act = self.procs[self.cur].envs[env_id];
        if act.buffer.is_some() {
            // The locals die with the activation; the buffer is simply
            // released — this is exactly the saving TRO buys.
            self.procs[self.cur].envs[env_id].buffer = None;
            self.procs[self.cur].buffered.retain(|&e| e != env_id);
        }
        if env_id + 1 == self.procs[self.cur].envs.len() {
            self.procs[self.cur].envs.pop();
            let p = &mut self.procs[self.cur];
            if act.locals_base + act.nlocals as u32 == p.local_top {
                p.local_top = act.locals_base;
            }
            if let Some(ctl) = act.materialized {
                if ctl + CONTROL_FRAME_WORDS == p.ctl_top {
                    p.ctl_top = ctl;
                    Self::drop_saved_frames_from(p, ctl);
                }
            }
        }
        Ok(())
    }

    /// Saves the activation's environment frame to the control stack
    /// if not already saved (§2.1: control information "saved to the
    /// control stack as necessary").
    fn materialize_env(&mut self, env_id: usize) -> Result<()> {
        if self.procs[self.cur].envs[env_id].materialized.is_some() {
            return Ok(());
        }
        let base = self.procs[self.cur].ctl_top;
        if self.lane_compiled {
            // Charge the frame burst but skip the simulated-memory
            // image: the compiled lane never reads control frames back
            // (returns and retries reload from the host-side
            // activation and choice-point structs), so the words would
            // be write-only.
            self.charge_packet(&self.charges.env_save);
        } else {
            let act = self.procs[self.cur].envs[env_id];
            let payloads = [
                0, // kind = environment
                act.cont_code,
                act.cont_env.map(|e| e as u32 + 1).unwrap_or(0),
                act.locals_base,
                act.nlocals as u32,
                act.cut_barrier as u32,
                act.entry_cps as u32,
                self.procs[self.cur].pid.get() as u32,
                0,
                0,
            ];
            self.micro(InterpModule::Control, BranchOp::LoadJr, true);
            for (i, p) in payloads.iter().enumerate() {
                let addr = self.ctl_addr(base + i as u32);
                self.mem_push_burst(InterpModule::Control, addr, Word::ctl(*p))?;
            }
        }
        self.procs[self.cur].ctl_top = base + CONTROL_FRAME_WORDS;
        self.procs[self.cur].envs[env_id].materialized = Some(base);
        if self.procs[self.cur].mat_stack.len() == self.procs[self.cur].mat_stack.capacity() {
            // Stale entries (frames whose activation has returned, or
            // whose env id was recycled) accumulate until a backtrack
            // drops below their base; compact them away in place
            // before conceding a reallocation. Only a stack full of
            // *live* saved frames forces growth.
            Self::compact_mat_stack(&mut self.procs[self.cur]);
            if self.procs[self.cur].mat_stack.len() == self.procs[self.cur].mat_stack.capacity() {
                self.hot_allocs += 1;
            }
        }
        self.procs[self.cur].mat_stack.push((base, env_id as u32));
        Ok(())
    }

    /// Drops materialization-stack entries whose activation no longer
    /// carries the matching saved-frame mark — exactly the entries
    /// `drop_saved_frames_from` would skip over. Preserves order, so
    /// the strictly-increasing-base invariant survives. In place: no
    /// allocation.
    fn compact_mat_stack(p: &mut crate::machine::Proc) {
        let envs = &p.envs;
        p.mat_stack.retain(|&(base, env_id)| {
            envs.get(env_id as usize)
                .is_some_and(|act| act.materialized == Some(base))
        });
    }

    /// Pops materialization-stack entries whose frame base is at or
    /// above the (just lowered) control top `ct`, clearing the
    /// saved-frame mark of any still-live activation among them. Call
    /// after every `ctl_top` decrease; the base guard makes stale
    /// entries (dead activations, recycled env ids) harmless.
    fn drop_saved_frames_from(p: &mut crate::machine::Proc, ct: u32) {
        while let Some(&(base, env_id)) = p.mat_stack.last() {
            if base < ct {
                break;
            }
            p.mat_stack.pop();
            if let Some(act) = p.envs.get_mut(env_id as usize) {
                if act.materialized == Some(base) {
                    act.materialized = None;
                }
            }
        }
    }

    fn push_choice_point(
        &mut self,
        pred: u32,
        bucket: u32,
        args: &[Word],
        cont_code: u32,
        cont_env: Option<usize>,
        barrier: usize,
    ) -> Result<()> {
        // A fresh choice point always resumes at the second candidate
        // of its bucket (the first is entered directly).
        let next_clause = 1;
        // Host-side count only; `metrics_snapshot` mirrors it into
        // the registry (like module steps), so no live incr here.
        self.cp_pushed += 1;
        // A pending alternative forces the buffered frames to the
        // local stack (§2.2: buffers are used "when no local frame
        // have to be saved into the local stack").
        self.flush_all_buffers()?;
        // Park the goal arguments in the copy-on-backtrack arena; the
        // choice point records only their extent. The arena is
        // truncated back when the choice point is popped.
        let arena_grows = {
            let p = &self.procs[self.cur];
            p.arg_arena.len() + args.len() > p.arg_arena.capacity()
        };
        if arena_grows {
            self.hot_allocs += 1;
        }
        let cps_grow = self.procs[self.cur].cps.len() == self.procs[self.cur].cps.capacity();
        if cps_grow {
            self.hot_allocs += 1;
        }
        let p = &mut self.procs[self.cur];
        let args_start = p.arg_arena.len() as u32;
        p.arg_arena.extend_from_slice(args);
        let cp = ChoicePoint {
            pred,
            bucket,
            next_clause,
            args_start,
            args_len: args.len() as u8,
            cont_code,
            cont_env,
            barrier,
            saved_local_top: p.local_top,
            saved_global_top: p.global_top,
            saved_trail_top: p.trail_top,
            saved_envs_len: p.envs.len(),
            ctl_addr: p.ctl_top,
        };
        let base = cp.ctl_addr;
        if self.lane_compiled {
            // Same write-only elision as `materialize_env`: the charge
            // stands in for the burst, the host-side `ChoicePoint` is
            // the live copy.
            self.charge_packet(&self.charges.cp_save);
        } else {
            let payloads = [
                1, // kind = choice point
                pred,
                next_clause as u32,
                cont_code,
                cp.saved_local_top,
                cp.saved_global_top,
                cp.saved_trail_top,
                cp.saved_envs_len as u32,
                cp.barrier as u32,
                cp.cont_env.map(|e| e as u32 + 1).unwrap_or(0),
            ];
            self.micro(InterpModule::Control, BranchOp::LoadJr, true);
            self.alu_step(InterpModule::Control);
            self.alu_step(InterpModule::Control);
            for (i, p) in payloads.iter().enumerate() {
                let addr = self.ctl_addr(base + i as u32);
                self.mem_push_burst(InterpModule::Control, addr, Word::ctl(*p))?;
            }
        }
        self.procs[self.cur].ctl_top = base + CONTROL_FRAME_WORDS;
        self.procs[self.cur].cps.push(cp);
        Ok(())
    }

    /// Enters clause `clause_idx` of `pred`. Returns `false` if head
    /// unification fails.
    pub(crate) fn enter_clause(
        &mut self,
        pred: u32,
        clause_idx: usize,
        args: &[Word],
        cont_code: u32,
        cont_env: Option<usize>,
        barrier: usize,
    ) -> Result<bool> {
        let cc = self.image.predicate(pred).clauses[clause_idx];
        // Clause entry microsubroutine: header decode, local frame
        // allocation, WF buffer setup.
        if self.lane_compiled {
            // One packet for the whole entry sequence (gosub, header
            // fetch, frame setup). The header word is known valid at
            // fuse time, so the image read is elided with it.
            self.charge_packet(&self.charges.enter_clause);
        } else {
            self.micro(InterpModule::Control, BranchOp::Gosub, false);
            let header = self.fetch_code(InterpModule::Control, BranchOp::CaseOpcode, cc.addr)?;
            debug_assert_eq!(header.tag(), Tag::ClauseHead);
            self.alu_step(InterpModule::Control);
            self.alu_step(InterpModule::Control);
            self.micro_seq(InterpModule::Control, true);
            self.wf.touch_read(WfField::Source1, WfMode::Direct10);
            self.wf.touch_write(WfMode::Direct10);
        }

        let buffer = self.acquire_buffer(cc.nlocals)?;
        let locals_base = self.procs[self.cur].local_top;
        let act = Activation {
            locals_base,
            nlocals: cc.nlocals,
            buffer,
            materialized: None,
            cont_code,
            cont_env,
            cut_barrier: barrier,
            entry_cps: self.procs[self.cur].cps.len(),
        };
        if self.procs[self.cur].envs.len() == self.procs[self.cur].envs.capacity() {
            self.hot_allocs += 1;
        }
        {
            let p = &mut self.procs[self.cur];
            p.local_top += cc.nlocals as u32;
            p.envs.push(act);
            let env_id = p.envs.len() - 1;
            p.regs.env = env_id;
            if buffer.is_some() {
                p.buffered.push(env_id);
            }
        }
        // Unbuffered activations reserve their local-stack extent
        // immediately (the area grows by write, so touch the last
        // slot).
        if buffer.is_none() && cc.nlocals > 0 {
            let addr = self.local_addr(locals_base + cc.nlocals as u32 - 1);
            self.bus.poke(addr, Word::undef())?;
        }

        // Head unification, argument by argument.
        for (i, &arg) in args.iter().enumerate().take(cc.arity as usize) {
            let off = cc.addr + 1 + i as u32;
            let ok = if self.lane_compiled {
                self.unify_head_arg_compiled(off, arg)?
            } else {
                let w = self.fetch_code(InterpModule::Unify, BranchOp::CaseTag, off)?;
                self.unify_head_arg(w, arg)?
            };
            if !ok {
                return Ok(false);
            }
        }
        self.procs[self.cur].regs.code_ptr = cc.addr + 1 + cc.arity as u32;
        Ok(true)
    }

    /// Compiled-lane head-argument step, the twin of one
    /// `fetch_code` + [`Machine::unify_head_arg`] iteration: the code
    /// fetch is fused with the arm's first charge (the slot access,
    /// the unify bracket, or nothing), one packet per arm kind.
    fn unify_head_arg_compiled(&mut self, off: u32, arg: Word) -> Result<bool> {
        let w = self.fetch_code_uncharged(off)?;
        match w.tag() {
            Tag::FirstVar => {
                let slot = w.var_slot().expect("FirstVar");
                match self.slot_place(slot) {
                    SlotPlace::Buffered(buf) => {
                        self.charge_packet(&self.charges.head_slot_buf);
                        self.wf.write_buffer(buf, slot as u32, arg, false, true);
                    }
                    SlotPlace::Flushed(addr) => {
                        // Fetch + address generation + write — the
                        // same shape as a skeleton element cycle.
                        self.charge_packet(&self.charges.skel_fetch_cycle);
                        self.bus.write(addr, arg)?;
                    }
                }
                Ok(true)
            }
            Tag::Void => {
                self.charge_packet(&self.charges.code_fetch[InterpModule::Unify.index()][1]);
                Ok(true)
            }
            Tag::LocalVar => {
                let slot = w.var_slot().expect("LocalVar");
                let v = match self.slot_place(slot) {
                    SlotPlace::Buffered(buf) => {
                        self.charge_packet(&self.charges.head_slot_buf);
                        self.wf.read_buffer(buf, slot as u32, false, true)
                    }
                    SlotPlace::Flushed(addr) => {
                        self.charge_packet(&self.charges.skel_fetch_cycle);
                        self.bus.read(addr)?
                    }
                };
                self.charge_packet(&self.charges.unify_frame);
                self.unify_inner(v, arg)
            }
            Tag::Atom | Tag::Int | Tag::Nil => {
                self.charge_packet(&self.charges.head_const);
                self.unify_inner(w, arg)
            }
            Tag::CodeList | Tag::CodeVect => {
                // Walk the reference chain host-side first, then
                // charge by hop count: the dominant single-hop case
                // fuses the fetch with the dispatch read. The
                // dispatch ops are fixed, so hop charges commute and
                // the multi-hop split stays exact.
                let mut hops = 0u32;
                let mut cur = arg;
                let (v, cell) = loop {
                    if cur.tag() != Tag::Ref {
                        break (cur, None);
                    }
                    let addr = cur.address_value().ok_or_else(|| PsiError::EvalError {
                        detail: "corrupt reference word".into(),
                    })?;
                    let content = self.bus.read(addr)?;
                    hops += 1;
                    match content.tag() {
                        Tag::Undef => break (cur, Some(addr)),
                        Tag::Ref => cur = content,
                        _ => break (content, None),
                    }
                };
                if hops == 1 {
                    self.charge_packet(&self.charges.head_skel_ref);
                } else {
                    self.charge_packet(&self.charges.code_fetch[InterpModule::Unify.index()][1]);
                    for _ in 0..hops {
                        self.charge_packet(
                            &self.charges.read_dispatch[InterpModule::Unify.index()],
                        );
                    }
                }
                match cell {
                    Some(addr) => {
                        let copied = self.copy_skeleton(w)?;
                        self.bind(addr, copied)?;
                        Ok(true)
                    }
                    None => self.unify_skeleton_compiled(w, v),
                }
            }
            other => Err(PsiError::EvalError {
                detail: format!("corrupt head argument word ({other})"),
            }),
        }
    }

    // -------------------------------------------------------- backtrack

    /// Restores the newest choice point and retries its next clause.
    /// Returns `false` when the process has no alternatives left.
    pub(crate) fn backtrack(&mut self) -> Result<bool> {
        // The retried clause's arguments are replayed out of the
        // argument arena through a reusable scratch buffer (the arena
        // itself may shrink while the clause is entered).
        let mut cp_args = std::mem::take(&mut self.scratch_cp_args);
        let result = self.backtrack_loop(&mut cp_args);
        cp_args.clear();
        self.scratch_cp_args = cp_args;
        let remaining = self.procs[self.cur].cps.len() as u32;
        self.metrics.incr(psi_obs::Counter::Backtracks);
        self.metrics
            .observe(psi_obs::Histo::BacktrackDepth, remaining as u64);
        if self.bus.events_enabled() {
            let ev = psi_core::ObsEvent::backtrack(self.bus.step(), remaining);
            self.bus.record_event(ev);
        }
        result
    }

    fn backtrack_loop(&mut self, cp_args: &mut Vec<Word>) -> Result<bool> {
        loop {
            if self.procs[self.cur].cps.is_empty() {
                return Ok(false);
            }
            if self.lane_compiled {
                self.charge_packet(&self.charges.backtrack_head);
            } else {
                self.micro_goto(InterpModule::Control, false);
                self.alu_step(InterpModule::Control);
                self.alu_step(InterpModule::Control);
                self.micro_cond(InterpModule::Control, true);
            }

            // Restore machine state from the choice point. The newest
            // choice point's registers are held in the WF (§2.1:
            // "Control information for the current execution is held
            // in a register file"), so shallow backtracking re-reads
            // only the clause-alternative word from memory.
            let cp = *self.procs[self.cur].cps.last().expect("nonempty");
            {
                let p = &self.procs[self.cur];
                let start = cp.args_start as usize;
                cp_args.clear();
                cp_args.extend_from_slice(&p.arg_arena[start..start + cp.args_len as usize]);
            }
            if !self.lane_compiled {
                // (The compiled lane's `backtrack_head` packet already
                // covers this read — the alternative word lives in the
                // host `ChoicePoint`, so the memory access is dead.)
                self.mem_read(InterpModule::Control, self.ctl_addr(cp.ctl_addr + 2))?;
            }
            self.wf.touch_read(WfField::Source1, WfMode::Direct00);
            // Unwind the trail (Table 2 "trail" module).
            if self.lane_compiled {
                // Fused unwind: one packet per bound entry (dispatch
                // read + reset write), one per plain entry. The tally
                // totals and rotor state are order-insensitive, so
                // charging after the read is equivalent.
                while self.procs[self.cur].trail_top > cp.saved_trail_top {
                    let t = self.procs[self.cur].trail_top - 1;
                    self.procs[self.cur].trail_top = t;
                    let entry = self.procs[self.cur]
                        .trail
                        .pop()
                        .expect("host trail underflow");
                    if let Some(cell) = entry.address_value() {
                        self.charge_packet(&self.charges.trail_undo);
                        self.bus.write(cell, Word::undef())?;
                    } else {
                        self.charge_packet(
                            &self.charges.read_dispatch[InterpModule::Trail.index()],
                        );
                    }
                }
            } else {
                while self.procs[self.cur].trail_top > cp.saved_trail_top {
                    let t = self.procs[self.cur].trail_top - 1;
                    self.procs[self.cur].trail_top = t;
                    self.wf.touch_trail_buffer(false);
                    let entry = self.mem_read_dispatch(InterpModule::Trail, self.trail_addr(t))?;
                    if let Some(cell) = entry.address_value() {
                        self.mem_write(InterpModule::Trail, cell, Word::undef())?;
                    }
                }
            }
            // Restore stack tops and the activation arena.
            {
                let pid = self.procs[self.cur].pid;
                let p = &mut self.procs[self.cur];
                p.local_top = cp.saved_local_top;
                p.global_top = cp.saved_global_top;
                // Control frames created after this choice point are
                // dead; the choice point's own frame stays.
                p.ctl_top = cp.ctl_addr + CONTROL_FRAME_WORDS;
                p.envs.truncate(cp.saved_envs_len);
                let envs_len = p.envs.len();
                p.buffered.retain(|&e| e < envs_len);
                // A surviving environment may have been saved to the
                // control stack *after* this choice point was pushed
                // (a non-TRO last call); its frame is gone now, so it
                // must be re-saved if needed again.
                let ct = p.ctl_top;
                Self::drop_saved_frames_from(p, ct);
                // Keep the backing store honest: discarded cells must
                // not be readable.
                let (lt, gt, ct, tt) = (p.local_top, p.global_top, p.ctl_top, p.trail_top);
                self.bus.memory_mut().truncate(pid, Area::LocalStack, lt);
                self.bus.memory_mut().truncate(pid, Area::GlobalStack, gt);
                self.bus.memory_mut().truncate(pid, Area::ControlStack, ct);
                self.bus.memory_mut().truncate(pid, Area::TrailStack, tt);
            }
            // Resolve the retried position through the choice point's
            // candidate bucket. The linear bucket (the only one the
            // default profile creates) maps positions to clause
            // indices one-to-one, so this is pure host-side
            // arithmetic — no extra microsteps on either profile.
            let ncand = self.image.predicate(cp.pred).candidate_count(cp.bucket);
            if cp.next_clause >= ncand {
                // The candidate list shrank underneath this choice
                // point (`retract/1` on the predicate while it was
                // live): no alternatives remain, discard the choice
                // point and keep backtracking.
                self.micro_cond(InterpModule::Control, false);
                let p = &mut self.procs[self.cur];
                p.cps.pop();
                p.arg_arena.truncate(cp.args_start as usize);
                if cp.ctl_addr + CONTROL_FRAME_WORDS == p.ctl_top {
                    p.ctl_top = cp.ctl_addr;
                    Self::drop_saved_frames_from(p, cp.ctl_addr);
                }
                let ct = p.ctl_top;
                let pid = p.pid;
                self.bus.memory_mut().truncate(pid, Area::ControlStack, ct);
                continue;
            }
            let clause_idx = self
                .image
                .predicate(cp.pred)
                .candidate(cp.bucket, cp.next_clause);
            if cp.next_clause + 1 >= ncand {
                // Last alternative: the restore step, then pop the
                // choice point (trust) and give its arena extent back.
                self.micro_seq(InterpModule::Control, true);
                let p = &mut self.procs[self.cur];
                p.cps.pop();
                p.arg_arena.truncate(cp.args_start as usize);
                if cp.ctl_addr + CONTROL_FRAME_WORDS == p.ctl_top {
                    p.ctl_top = cp.ctl_addr;
                    Self::drop_saved_frames_from(p, cp.ctl_addr);
                }
                let ct = p.ctl_top;
                let pid = p.pid;
                self.bus.memory_mut().truncate(pid, Area::ControlStack, ct);
            } else {
                // The restore step, then advance the alternative in
                // place (one frame write). The compiled lane fuses
                // both into one packet — nothing charges in between.
                let idx = self.procs[self.cur].cps.len() - 1;
                self.procs[self.cur].cps[idx].next_clause += 1;
                if self.lane_compiled {
                    self.charge_packet(&self.charges.bt_resume);
                } else {
                    self.micro_seq(InterpModule::Control, true);
                    let addr = self.ctl_addr(cp.ctl_addr + 2);
                    self.mem_write(
                        InterpModule::Control,
                        addr,
                        Word::ctl(cp.next_clause as u32 + 1),
                    )?;
                }
            }

            if self.enter_clause(
                cp.pred,
                clause_idx,
                cp_args,
                cp.cont_code,
                cp.cont_env,
                cp.barrier,
            )? {
                return Ok(true);
            }
        }
    }

    // -------------------------------------------------------------- cut

    pub(crate) fn handle_cut(&mut self, code_ptr: u32) -> Result<Flow> {
        let env = self.procs[self.cur].regs.env;
        let barrier = self.procs[self.cur].envs[env].cut_barrier;
        while self.procs[self.cur].cps.len() > barrier {
            self.micro(InterpModule::Cut, BranchOp::IfCond, true);
            let cp = self.procs[self.cur].cps.pop().expect("nonempty");
            let p = &mut self.procs[self.cur];
            p.arg_arena.truncate(cp.args_start as usize);
            if cp.ctl_addr + CONTROL_FRAME_WORDS == p.ctl_top {
                p.ctl_top = cp.ctl_addr;
                Self::drop_saved_frames_from(p, cp.ctl_addr);
            }
        }
        self.micro_seq(InterpModule::Cut, false);
        self.procs[self.cur].regs.code_ptr = code_ptr + 1;
        Ok(Flow::Continue)
    }

    // ----------------------------------------------------------- return

    pub(crate) fn handle_return(&mut self) -> Result<Flow> {
        let env = self.procs[self.cur].regs.env;
        let act = self.procs[self.cur].envs[env];
        let Some(cont_env) = act.cont_env else {
            // The query activation finished: a solution.
            self.micro(InterpModule::Control, BranchOp::Return, false);
            return Ok(Flow::Solution);
        };
        // Reload the caller's control registers from its saved frame.
        let materialized = self.procs[self.cur].envs[cont_env].materialized;
        if self.lane_compiled {
            // One packet for the whole return: the three frame-word
            // reads (when the frame was materialized — without
            // touching the write-only, elided simulated frame image),
            // the register reload, the continuation test and the
            // return op. Reclaim between them is host-only.
            self.charge_packet(if materialized.is_some() {
                &self.charges.ret_frame
            } else {
                &self.charges.ret_quick
            });
            self.try_reclaim(env);
        } else {
            if let Some(frame) = materialized {
                for i in 0..3 {
                    let addr = self.ctl_addr(frame + i);
                    self.mem_read(InterpModule::Control, addr)?;
                }
            }
            self.try_reclaim(env);
            self.alu_step(InterpModule::Control);
            self.micro_cond(InterpModule::Control, true);
            self.micro(InterpModule::Control, BranchOp::Return, false);
        }
        let p = &mut self.procs[self.cur];
        p.regs.env = cont_env;
        p.regs.code_ptr = act.cont_code;
        Ok(Flow::Continue)
    }

    /// Pops a returning activation when nothing can reference it
    /// anymore: it is the newest activation and no choice point was
    /// created after its entry.
    fn try_reclaim(&mut self, env_id: usize) {
        let p = &mut self.procs[self.cur];
        if env_id + 1 != p.envs.len() {
            return;
        }
        let act = &p.envs[env_id];
        if p.cps.len() > act.entry_cps {
            return;
        }
        let act = p.envs.pop().expect("nonempty");
        if let Some(_buf) = act.buffer {
            p.buffered.retain(|&e| e != env_id);
        }
        if act.locals_base + act.nlocals as u32 == p.local_top {
            p.local_top = act.locals_base;
        }
        if let Some(ctl) = act.materialized {
            if ctl + CONTROL_FRAME_WORDS == p.ctl_top {
                p.ctl_top = ctl;
                Self::drop_saved_frames_from(p, ctl);
            }
        }
    }

    // ------------------------------------------------------- arguments

    /// Builds the argument vector of a goal whose argument words start
    /// at `off` into `args` (cleared first — normally one of the
    /// machine's reusable scratch buffers). Returns the offset just
    /// past the arguments.
    pub(crate) fn build_args(
        &mut self,
        m: InterpModule,
        off: u32,
        nargs: u8,
        args: &mut Vec<Word>,
    ) -> Result<u32> {
        args.clear();
        if nargs == 0 {
            return Ok(off);
        }
        let first = self.fetch_code(m, BranchOp::CaseTag, off)?;
        if first.tag() == Tag::Packed {
            // §2.1 packed arguments: decode each 8-bit operand with a
            // case-irn multi-way branch (Table 7 row 6).
            let ops = first.packed_operands().expect("Packed word");
            for &op in ops.iter().take(nargs as usize) {
                self.micro(m, BranchOp::CaseIrn, true);
                let (tag3, payload) = Word::packed_operand(op);
                let w = self.build_packed_arg(m, tag3, payload)?;
                args.push(w);
            }
            return Ok(off + 1);
        }
        let w = self.build_arg(m, first)?;
        args.push(w);
        for i in 1..nargs as u32 {
            let word = self.fetch_code(m, BranchOp::CaseTag, off + i)?;
            let w = self.build_arg(m, word)?;
            args.push(w);
        }
        Ok(off + nargs as u32)
    }

    fn build_packed_arg(&mut self, m: InterpModule, tag3: u8, payload: u8) -> Result<Word> {
        if Some(tag3) == Tag::Int.packed_tag() {
            Ok(Word::int(payload as i32))
        } else if Some(tag3) == Tag::Nil.packed_tag() {
            Ok(Word::nil())
        } else if Some(tag3) == Tag::FirstVar.packed_tag() {
            let cell = self.new_global_cell(m)?;
            // Packed operands address the frame buffer base-relative
            // through PDR/CDR (§4.3 function (4)).
            self.write_slot_base_relative(m, payload as u16, Word::reference(cell))?;
            Ok(Word::reference(cell))
        } else if Some(tag3) == Tag::LocalVar.packed_tag() {
            self.read_slot_base_relative(m, payload as u16)
        } else if Some(tag3) == Tag::Void.packed_tag() {
            let cell = self.new_global_cell(m)?;
            Ok(Word::reference(cell))
        } else {
            Err(PsiError::EvalError {
                detail: format!("corrupt packed operand tag {tag3}"),
            })
        }
    }

    /// Slot access through the PDR/CDR base-relative WF path (used for
    /// packed operands).
    fn read_slot_base_relative(&mut self, m: InterpModule, slot: u16) -> Result<Word> {
        self.read_slot_with(m, slot, true, false)
    }

    fn write_slot_base_relative(&mut self, m: InterpModule, slot: u16, w: Word) -> Result<()> {
        self.write_slot_with(m, slot, w, true, false)
    }

    /// Materializes one argument word into a runtime value.
    pub(crate) fn build_arg(&mut self, m: InterpModule, word: Word) -> Result<Word> {
        match word.tag() {
            Tag::Atom | Tag::Int | Tag::Nil => Ok(word),
            Tag::FirstVar => {
                let slot = word.var_slot().expect("FirstVar");
                let cell = self.new_global_cell(m)?;
                self.write_slot(m, slot, Word::reference(cell), true)?;
                Ok(Word::reference(cell))
            }
            Tag::LocalVar => {
                let slot = word.var_slot().expect("LocalVar");
                self.read_slot(m, slot, true)
            }
            Tag::Void => {
                let cell = self.new_global_cell(m)?;
                Ok(Word::reference(cell))
            }
            Tag::CodeList | Tag::CodeVect => self.copy_skeleton(word),
            other => Err(PsiError::EvalError {
                detail: format!("corrupt argument word ({other})"),
            }),
        }
    }

    // --------------------------------------------------------- builtins

    pub(crate) fn handle_builtin_call(
        &mut self,
        id: u32,
        nargs: u8,
        code_ptr: u32,
    ) -> Result<Flow> {
        let b = Builtin::from_id(id).ok_or_else(|| PsiError::EvalError {
            detail: format!("corrupt builtin id {id}"),
        })?;
        // Argument fetching for built-ins is the paper's get_arg
        // module (Table 2). Arguments go through the same reusable
        // scratch buffer as user calls (the two never nest).
        let mut args = std::mem::take(&mut self.scratch_args);
        let flow = (|| {
            let next_off = self.build_args(InterpModule::GetArg, code_ptr + 1, nargs, &mut args)?;
            self.builtin_calls += 1;
            self.procs[self.cur].regs.code_ptr = next_off;
            // Built-in dispatch: microsubroutine call through the builtin
            // jump table.
            self.micro(InterpModule::GetArg, BranchOp::CaseOpcode, true);
            self.micro(InterpModule::Builtin, BranchOp::Gosub, false);
            let flow = self.exec_builtin(b, &args)?;
            self.micro(InterpModule::Builtin, BranchOp::Return, false);
            Ok(flow)
        })();
        self.scratch_args = args;
        flow
    }

    // ------------------------------------------------ fused dispatch

    /// Executes a fused user-predicate call (compiled lane). Charges
    /// the same microsteps as the decoded path — one dispatch fetch,
    /// the argument build, the call overhead — through packets, with
    /// the argument classification already done at fuse time.
    pub(crate) fn exec_goal_fused(&mut self, op: FusedOp) -> Result<Flow> {
        self.charge_packet(&self.charges.code_fetch[InterpModule::Control.index()][0]);
        if op.flags & ARGS_GENERIC != 0 {
            let code_ptr = self.procs[self.cur].regs.code_ptr;
            return self.handle_user_call(op.operand, op.nargs, code_ptr);
        }
        let mut args = std::mem::take(&mut self.scratch_args);
        let flow = (|| {
            self.build_args_fused(op, InterpModule::Control, &mut args)?;
            self.user_calls += 1;
            self.charge_packet(&self.charges.call_overhead);
            self.call_predicate(op.operand, &args, op.next)
        })();
        self.scratch_args = args;
        flow
    }

    /// Executes a fused built-in call (compiled lane); mirrors
    /// [`Machine::handle_builtin_call`] charge for charge.
    pub(crate) fn exec_builtin_fused(&mut self, op: FusedOp) -> Result<Flow> {
        self.charge_packet(&self.charges.code_fetch[InterpModule::Control.index()][0]);
        if op.flags & ARGS_GENERIC != 0 {
            let code_ptr = self.procs[self.cur].regs.code_ptr;
            return self.handle_builtin_call(op.operand, op.nargs, code_ptr);
        }
        let b = Builtin::from_id(op.operand).ok_or_else(|| PsiError::EvalError {
            detail: format!("corrupt builtin id {}", op.operand),
        })?;
        let mut args = std::mem::take(&mut self.scratch_args);
        let flow = (|| {
            self.build_args_fused(op, InterpModule::GetArg, &mut args)?;
            self.builtin_calls += 1;
            self.procs[self.cur].regs.code_ptr = op.next;
            self.micro(InterpModule::GetArg, BranchOp::CaseOpcode, true);
            self.micro(InterpModule::Builtin, BranchOp::Gosub, false);
            let flow = self.exec_builtin(b, &args)?;
            self.micro(InterpModule::Builtin, BranchOp::Return, false);
            Ok(flow)
        })();
        self.scratch_args = args;
        flow
    }

    /// Builds a fused goal's argument vector from its pre-classified
    /// [`PackedArg`]s, charging exactly what `build_args` charges for
    /// the same words: one fetch packet per argument word (one total
    /// for a packed word, plus a `case (irn)` per operand), and the
    /// same allocation/slot charges per argument kind.
    fn build_args_fused(
        &mut self,
        op: FusedOp,
        m: InterpModule,
        args: &mut Vec<Word>,
    ) -> Result<()> {
        args.clear();
        if op.nargs == 0 {
            return Ok(());
        }
        // Copy the pre-classified arguments out of the shared fused
        // program (a few `Copy` words) so no borrow of `self.fused`
        // is held across the `&mut self` build calls — this keeps the
        // dispatch loop free of per-call `Arc` refcount traffic.
        let mut pargs = std::mem::take(&mut self.scratch_pargs);
        pargs.clear();
        pargs.extend_from_slice(self.fused.args_of(op));
        let table = self.charges;
        let flow = (|| {
            if op.flags & ARGS_PACKED != 0 {
                self.charge_packet(&table.code_fetch[m.index()][1]);
                for &pa in &pargs {
                    self.micro(m, BranchOp::CaseIrn, true);
                    let w = self.build_arg_fused(m, pa, true)?;
                    args.push(w);
                }
                return Ok(());
            }
            for &pa in &pargs {
                self.charge_packet(&table.code_fetch[m.index()][1]);
                let w = self.build_arg_fused(m, pa, false)?;
                args.push(w);
            }
            Ok(())
        })();
        self.scratch_pargs = pargs;
        flow
    }

    /// Materializes one pre-classified argument. `base_relative`
    /// selects the packed-operand PDR/CDR slot path, exactly as
    /// `build_packed_arg` vs `build_arg` do.
    fn build_arg_fused(
        &mut self,
        m: InterpModule,
        pa: PackedArg,
        base_relative: bool,
    ) -> Result<Word> {
        match pa {
            PackedArg::Const(w) => Ok(w),
            PackedArg::FirstVar(slot) => {
                let cell = self.new_global_cell(m)?;
                let w = Word::reference(cell);
                if base_relative {
                    self.write_slot_base_relative(m, slot, w)?;
                } else {
                    self.write_slot(m, slot, w, true)?;
                }
                Ok(w)
            }
            PackedArg::LocalVar(slot) => {
                if base_relative {
                    self.read_slot_base_relative(m, slot)
                } else {
                    self.read_slot(m, slot, true)
                }
            }
            PackedArg::Void => {
                let cell = self.new_global_cell(m)?;
                Ok(Word::reference(cell))
            }
            PackedArg::Skeleton(w) => self.copy_skeleton(w),
        }
    }

    fn exec_builtin(&mut self, b: Builtin, args: &[Word]) -> Result<Flow> {
        let ok = match b {
            Builtin::True => {
                self.micro_seq(InterpModule::Builtin, false);
                true
            }
            Builtin::Fail => {
                self.micro_seq(InterpModule::Builtin, false);
                false
            }
            Builtin::Unify => self.unify(args[0], args[1])?,
            Builtin::NotUnify => {
                // Trial unification with trail mark and undo.
                let mark = self.procs[self.cur].trail_top;
                let saved_global = self.procs[self.cur].global_top;
                let unified = self.unify(args[0], args[1])?;
                self.undo_trail_to(mark)?;
                self.procs[self.cur].global_top = saved_global;
                !unified
            }
            Builtin::Is => {
                let v = self.eval_arith(args[1])?;
                self.micro_seq(InterpModule::Builtin, true);
                self.unify(args[0], Word::int(v))?
            }
            Builtin::Lt
            | Builtin::Gt
            | Builtin::Le
            | Builtin::Ge
            | Builtin::ArithEq
            | Builtin::ArithNe => {
                let a = self.eval_arith(args[0])?;
                let bv = self.eval_arith(args[1])?;
                self.micro_cond(InterpModule::Builtin, true);
                self.wf.touch_read(WfField::Source1, WfMode::Direct10);
                self.wf.touch_read(WfField::Source2, WfMode::Direct00);
                match b {
                    Builtin::Lt => a < bv,
                    Builtin::Gt => a > bv,
                    Builtin::Le => a <= bv,
                    Builtin::Ge => a >= bv,
                    Builtin::ArithEq => a == bv,
                    _ => a != bv,
                }
            }
            Builtin::TermEq => self.term_identical(args[0], args[1])?,
            Builtin::TermNe => !self.term_identical(args[0], args[1])?,
            Builtin::Var | Builtin::Nonvar | Builtin::Atom | Builtin::Atomic | Builtin::Integer => {
                let (v, unbound) = self.deref(InterpModule::Builtin, args[0])?;
                self.micro(InterpModule::Builtin, BranchOp::IfTag, true);
                self.wf.touch_read(WfField::Source2, WfMode::Direct00);
                let is_var = unbound.is_some();
                match b {
                    Builtin::Var => is_var,
                    Builtin::Nonvar => !is_var,
                    Builtin::Atom => !is_var && matches!(v.tag(), Tag::Atom | Tag::Nil),
                    Builtin::Atomic => !is_var && v.tag().is_atomic_value(),
                    _ => !is_var && v.tag() == Tag::Int,
                }
            }
            Builtin::Functor => self.builtin_functor(args)?,
            Builtin::Arg => self.builtin_arg(args)?,
            Builtin::Write => {
                let term = self.decode_counted(InterpModule::Builtin, args[0])?;
                self.output.push_str(&term.to_string());
                true
            }
            Builtin::Nl => {
                self.micro_seq(InterpModule::Builtin, false);
                self.output.push('\n');
                true
            }
            Builtin::Tab => {
                let n = self.eval_arith(args[0])?;
                self.micro_seq(InterpModule::Builtin, false);
                for _ in 0..n.clamp(0, 80) {
                    self.output.push(' ');
                }
                true
            }
            Builtin::VectorNew => self.builtin_vector_new(args)?,
            Builtin::VectorGet => self.builtin_vector_get(args)?,
            Builtin::VectorSet => self.builtin_vector_set(args)?,
            Builtin::Yield => {
                self.micro_seq(InterpModule::Builtin, false);
                return Ok(Flow::Yield);
            }
            Builtin::Halt => {
                self.micro_seq(InterpModule::Builtin, false);
                self.procs[self.cur].status = ProcStatus::Done;
                return Ok(Flow::Solution);
            }
            Builtin::Assert => self.builtin_assert(args, false)?,
            Builtin::Asserta => self.builtin_assert(args, true)?,
            Builtin::Retract => self.builtin_retract(args)?,
        };
        Ok(if ok { Flow::Continue } else { Flow::Backtrack })
    }

    fn builtin_functor(&mut self, args: &[Word]) -> Result<bool> {
        let (t, unbound) = self.deref(InterpModule::Builtin, args[0])?;
        self.micro(InterpModule::Builtin, BranchOp::CaseTag, true);
        if unbound.is_none() {
            // Decompose.
            let (name_w, arity) = match t.tag() {
                Tag::Atom | Tag::Int | Tag::Nil => (t, 0u8),
                Tag::List => (Word::atom(self.arith.dot), 2),
                Tag::Vect => {
                    let ptr = t.address_value().expect("Vect");
                    let f = self.mem_read(InterpModule::Builtin, ptr)?;
                    let f = f.functor_value().ok_or_else(|| PsiError::EvalError {
                        detail: "corrupt structure header".into(),
                    })?;
                    (Word::atom(f.symbol), f.arity)
                }
                _ => {
                    return Err(PsiError::TypeError {
                        builtin: "functor/3".into(),
                        expected: "callable or atomic",
                    })
                }
            };
            return Ok(
                self.unify(args[1], name_w)? && self.unify(args[2], Word::int(arity as i32))?
            );
        }
        // Construct.
        let (name, _) = self.deref(InterpModule::Builtin, args[1])?;
        let arity = self.eval_arith(args[2])?;
        if !(0..=255).contains(&arity) {
            return Err(PsiError::TypeError {
                builtin: "functor/3".into(),
                expected: "arity in 0..=255",
            });
        }
        if arity == 0 {
            return self.unify(args[0], name);
        }
        let sym = name.atom_value().ok_or(PsiError::TypeError {
            builtin: "functor/3".into(),
            expected: "atom name",
        })?;
        let base = self.procs[self.cur].global_top;
        let f = Word::functor(psi_core::Functor::new(sym, arity as u8));
        self.mem_push(InterpModule::Builtin, self.global_addr(base), f)?;
        for i in 0..arity as u32 {
            let cell = self.global_addr(base + 1 + i);
            self.mem_push(InterpModule::Builtin, cell, Word::undef())?;
        }
        self.procs[self.cur].global_top = base + 1 + arity as u32;
        self.unify(args[0], Word::vect(self.global_addr(base)))
    }

    fn builtin_arg(&mut self, args: &[Word]) -> Result<bool> {
        let n = self.eval_arith(args[0])?;
        let (t, _) = self.deref(InterpModule::Builtin, args[1])?;
        self.micro(InterpModule::Builtin, BranchOp::CaseTag, true);
        match t.tag() {
            Tag::Vect => {
                let ptr = t.address_value().expect("Vect");
                let f = self.mem_read(InterpModule::Builtin, ptr)?;
                let f = f.functor_value().ok_or_else(|| PsiError::EvalError {
                    detail: "corrupt structure header".into(),
                })?;
                if n < 1 || n > f.arity as i32 {
                    return Ok(false);
                }
                let v = self.read_value(InterpModule::Builtin, ptr.offset_by(n as u32))?;
                self.unify(args[2], v)
            }
            Tag::List => {
                let ptr = t.address_value().expect("List");
                if !(1..=2).contains(&n) {
                    return Ok(false);
                }
                let v = self.read_value(InterpModule::Builtin, ptr.offset_by(n as u32 - 1))?;
                self.unify(args[2], v)
            }
            _ => Ok(false),
        }
    }

    fn builtin_vector_new(&mut self, args: &[Word]) -> Result<bool> {
        let n = self.eval_arith(args[1])?;
        if n < 0 {
            return Err(PsiError::TypeError {
                builtin: "vector/2".into(),
                expected: "non-negative size",
            });
        }
        // Heap vectors live in the shared heap area (§4.2: "Only the
        // program WINDOW uses data of the heap vector type").
        let base = self.heap_top;
        self.mem_write(InterpModule::Builtin, self.heap_addr(base), Word::int(n))?;
        for i in 0..n as u32 {
            self.mem_write(
                InterpModule::Builtin,
                self.heap_addr(base + 1 + i),
                Word::int(0),
            )?;
        }
        self.heap_top = base + 1 + n as u32;
        self.unify(args[0], Word::heap_vect(self.heap_addr(base)))
    }

    fn vector_slot(&mut self, vec: Word, index: Word) -> Result<Option<Address>> {
        let (v, _) = self.deref(InterpModule::Builtin, vec)?;
        if v.tag() != Tag::HeapVect {
            return Err(PsiError::TypeError {
                builtin: "vget/vset".into(),
                expected: "heap vector",
            });
        }
        let ptr = v.address_value().expect("HeapVect");
        let size = self.mem_read(InterpModule::Builtin, ptr)?;
        let size = size.int_value().unwrap_or(0);
        let i = self.eval_arith(index)?;
        self.micro_cond(InterpModule::Builtin, true);
        if i < 0 || i >= size {
            return Ok(None);
        }
        Ok(Some(ptr.offset_by(1 + i as u32)))
    }

    fn builtin_vector_get(&mut self, args: &[Word]) -> Result<bool> {
        match self.vector_slot(args[0], args[1])? {
            Some(cell) => {
                let v = self.read_value(InterpModule::Builtin, cell)?;
                self.unify(args[2], v)
            }
            None => Ok(false),
        }
    }

    fn builtin_vector_set(&mut self, args: &[Word]) -> Result<bool> {
        match self.vector_slot(args[0], args[1])? {
            Some(cell) => {
                // Destructive heap write — the WINDOW workload's heap
                // write traffic (Table 3/4).
                let (v, unbound) = self.deref(InterpModule::Builtin, args[2])?;
                let stored = if unbound.is_some() { Word::int(0) } else { v };
                self.mem_write(InterpModule::Builtin, cell, stored)?;
                Ok(true)
            }
            None => Ok(false),
        }
    }

    // ------------------------------------------------- dynamic database

    /// `assert/1`, `assertz/1` (`front == false`) and `asserta/1`
    /// (`front == true`): decodes the argument (a charged term walk),
    /// compiles it as a clause of its predicate, marks the predicate
    /// dynamic, and re-syncs the simulated heap plus the predecode /
    /// fused views over the appended words. Each loaded word charges
    /// one sequential microstep — the clause-loading work the
    /// firmware would do — through the lane-split primitives, so the
    /// charge is identical in all three lanes.
    fn builtin_assert(&mut self, args: &[Word], front: bool) -> Result<bool> {
        let term = self.decode_counted(InterpModule::Builtin, args[0])?;
        let (head, body) = match &term {
            kl0::Term::Struct(f, hb) if f == ":-" && hb.len() == 2 => {
                (hb[0].clone(), hb[1].clone())
            }
            t => (t.clone(), kl0::Term::atom("true")),
        };
        let before = self.image.heap().len();
        std::sync::Arc::make_mut(&mut self.image).assert_clause(&head, &body, front)?;
        self.sync_code()?;
        let added = self.image.heap().len() - before;
        for _ in 0..added {
            self.micro_seq(InterpModule::Builtin, true);
        }
        Ok(true)
    }

    /// `retract/1`: removes the first clause whose head and body
    /// unify with the argument (`Head` alone abbreviates
    /// `Head :- true`). Semi-deterministic — it commits to the first
    /// match and is not re-satisfiable on backtracking. Bindings made
    /// by the successful trial unification are kept; failed trials
    /// are undone through the trail exactly like `\=`.
    fn builtin_retract(&mut self, args: &[Word]) -> Result<bool> {
        let (t, unbound) = self.deref(InterpModule::Builtin, args[0])?;
        self.micro(InterpModule::Builtin, BranchOp::CaseTag, true);
        if unbound.is_some() {
            return Err(PsiError::TypeError {
                builtin: "retract/1".into(),
                expected: "callable",
            });
        }
        // Split an explicit `Head :- Body` template.
        let neck = self.image.symbols().lookup(":-");
        let (head_w, body_w) = match t.tag() {
            Tag::Vect => {
                let ptr = t.address_value().expect("Vect");
                let f = self.mem_read_dispatch(InterpModule::Builtin, ptr)?;
                let f = f.functor_value().ok_or_else(|| PsiError::EvalError {
                    detail: "corrupt structure header".into(),
                })?;
                if Some(f.symbol) == neck && f.arity == 2 {
                    let h = self.read_value(InterpModule::Builtin, ptr.offset_by(1))?;
                    let b = self.read_value(InterpModule::Builtin, ptr.offset_by(2))?;
                    (h, Some(b))
                } else {
                    (t, None)
                }
            }
            _ => (t, None),
        };
        // Resolve the head to a predicate-table entry.
        let (hd, h_unbound) = self.deref(InterpModule::Builtin, head_w)?;
        self.micro(InterpModule::Builtin, BranchOp::CaseTag, true);
        if h_unbound.is_some() {
            return Err(PsiError::TypeError {
                builtin: "retract/1".into(),
                expected: "callable head",
            });
        }
        let (name_sym, arity) = match hd.tag() {
            Tag::Atom => (hd.atom_value().expect("Atom"), 0u8),
            Tag::Vect => {
                let ptr = hd.address_value().expect("Vect");
                let f = self.mem_read(InterpModule::Builtin, ptr)?;
                let f = f.functor_value().ok_or_else(|| PsiError::EvalError {
                    detail: "corrupt structure header".into(),
                })?;
                (f.symbol, f.arity)
            }
            _ => {
                return Err(PsiError::TypeError {
                    builtin: "retract/1".into(),
                    expected: "callable head",
                })
            }
        };
        let key = (
            self.image.symbols().name(name_sym).to_owned(),
            arity as usize,
        );
        if Builtin::lookup(&key.0, key.1).is_some() {
            return Err(PsiError::TypeError {
                builtin: "retract/1".into(),
                expected: "non-builtin predicate",
            });
        }
        let Some(pred) = self.image.lookup(&key) else {
            // A predicate the database has never seen: nothing to
            // retract, the call just fails.
            self.micro_cond(InterpModule::Builtin, false);
            return Ok(false);
        };
        // Trial-unify against each clause's retained source form, in
        // clause order, committing to the first match. Trials bind
        // cells no choice point guards, so `force_trail` makes every
        // binding undoable; it is lowered again on every exit path.
        self.force_trail = true;
        let result = self.retract_trials(pred, head_w, body_w);
        self.force_trail = false;
        result
    }

    /// The trial loop of [`Machine::builtin_retract`], split out so
    /// the caller can bracket it with `force_trail`.
    fn retract_trials(&mut self, pred: u32, head_w: Word, body_w: Option<Word>) -> Result<bool> {
        let mut pos = 0;
        loop {
            if pos >= self.image.predicate(pred).clauses.len() {
                self.micro_cond(InterpModule::Builtin, false);
                return Ok(false);
            }
            let source = self.image.predicate(pred).sources[pos].clone();
            // `retract(Head)` only ever matches facts; skip bodied
            // clauses without building the trial copy.
            self.micro_cond(InterpModule::Builtin, true);
            if body_w.is_none() && source.body != kl0::Term::atom("true") {
                pos += 1;
                continue;
            }
            let mark = self.procs[self.cur].trail_top;
            let saved_global = self.procs[self.cur].global_top;
            let mut vars = std::collections::HashMap::new();
            let sh = self.push_source_term(&source.head, &mut vars)?;
            let mut matched = self.unify(head_w, sh)?;
            if matched {
                if let Some(bw) = body_w {
                    let sb = self.push_source_term(&source.body, &mut vars)?;
                    matched = self.unify(bw, sb)?;
                }
            }
            if matched {
                std::sync::Arc::make_mut(&mut self.image).retract_clause(pred, pos);
                // Code addresses never move on retract, so the
                // predecode and fused views stay valid; sync_code
                // keeps the extents in lockstep all the same.
                self.sync_code()?;
                return Ok(true);
            }
            self.undo_trail_to(mark)?;
            self.procs[self.cur].global_top = saved_global;
            pos += 1;
        }
    }

    /// Builds a runtime copy of a retained clause-source term on the
    /// global stack (the runtime analogue of `copy_skeleton` for
    /// terms that only exist as AST). Fresh cells are created per
    /// distinct variable name; every push goes through the lane-split
    /// memory primitives, so the charge shape is lane-invariant.
    fn push_source_term(
        &mut self,
        t: &kl0::Term,
        vars: &mut std::collections::HashMap<String, Word>,
    ) -> Result<Word> {
        Ok(match t {
            kl0::Term::Atom(a) if a == "[]" => Word::nil(),
            kl0::Term::Atom(a) => Word::atom(self.runtime_symbol(a)),
            kl0::Term::Int(i) => Word::int(*i),
            kl0::Term::Var(v) => {
                if let Some(&w) = vars.get(v) {
                    w
                } else {
                    let cell = self.new_global_cell(InterpModule::Builtin)?;
                    let w = Word::reference(cell);
                    vars.insert(v.clone(), w);
                    w
                }
            }
            kl0::Term::Struct(f, args) if f == "." && args.len() == 2 => {
                let car = self.push_source_term(&args[0], vars)?;
                let cdr = self.push_source_term(&args[1], vars)?;
                let base = self.procs[self.cur].global_top;
                self.procs[self.cur].global_top = base + 2;
                self.mem_push(InterpModule::Builtin, self.global_addr(base), car)?;
                self.mem_push(InterpModule::Builtin, self.global_addr(base + 1), cdr)?;
                Word::list(self.global_addr(base))
            }
            kl0::Term::Struct(f, args) => {
                let mut arg_words = Vec::with_capacity(args.len());
                for a in args {
                    arg_words.push(self.push_source_term(a, vars)?);
                }
                let sym = self.runtime_symbol(f);
                let fw = Word::functor(psi_core::Functor::new(sym, args.len() as u8));
                let base = self.procs[self.cur].global_top;
                self.procs[self.cur].global_top = base + 1 + args.len() as u32;
                self.mem_push(InterpModule::Builtin, self.global_addr(base), fw)?;
                for (i, w) in arg_words.into_iter().enumerate() {
                    self.mem_push(
                        InterpModule::Builtin,
                        self.global_addr(base + 1 + i as u32),
                        w,
                    )?;
                }
                Word::vect(self.global_addr(base))
            }
        })
    }

    /// Resolves `name` to an interned symbol, interning on demand
    /// (deterministic: the id depends only on the sequence of interns,
    /// which is identical across lanes running the same program).
    fn runtime_symbol(&mut self, name: &str) -> psi_core::SymbolId {
        match self.image.symbols().lookup(name) {
            Some(id) => id,
            None => std::sync::Arc::make_mut(&mut self.image)
                .symbols_mut()
                .intern(name),
        }
    }

    // ------------------------------------------------------- arithmetic

    /// Evaluates an arithmetic expression term (`is/2` and
    /// comparisons).
    pub(crate) fn eval_arith(&mut self, w: Word) -> Result<i32> {
        let (v, unbound) = self.deref(InterpModule::Builtin, w)?;
        if unbound.is_some() {
            return Err(PsiError::EvalError {
                detail: "unbound variable in arithmetic".into(),
            });
        }
        match v.tag() {
            Tag::Int => {
                self.micro_seq(InterpModule::Builtin, true);
                Ok(v.int_value().expect("Int"))
            }
            Tag::Vect => {
                let ptr = v.address_value().expect("Vect");
                let f = self.mem_read_dispatch(InterpModule::Builtin, ptr)?;
                let f = f.functor_value().ok_or_else(|| PsiError::EvalError {
                    detail: "corrupt structure in arithmetic".into(),
                })?;
                let a = self.mem_read(InterpModule::Builtin, ptr.offset_by(1))?;
                let x = self.eval_arith(a)?;
                if f.arity == 1 {
                    self.alu_step(InterpModule::Builtin);
                    if f.symbol == self.arith.minus {
                        return Ok(x.wrapping_neg());
                    }
                    if f.symbol == self.arith.abs {
                        return Ok(x.wrapping_abs());
                    }
                    return Err(self.arith_error(f.symbol, f.arity));
                }
                if f.arity != 2 {
                    return Err(self.arith_error(f.symbol, f.arity));
                }
                let bw = self.mem_read(InterpModule::Builtin, ptr.offset_by(2))?;
                let y = self.eval_arith(bw)?;
                self.alu_step(InterpModule::Builtin);
                let s = f.symbol;
                if s == self.arith.plus {
                    Ok(x.wrapping_add(y))
                } else if s == self.arith.minus {
                    Ok(x.wrapping_sub(y))
                } else if s == self.arith.star {
                    Ok(x.wrapping_mul(y))
                } else if s == self.arith.int_div || s == self.arith.slash {
                    // KL0 has no floats: `/` is integer division,
                    // synonymous with `//`.
                    if y == 0 {
                        Err(PsiError::EvalError {
                            detail: "division by zero".into(),
                        })
                    } else {
                        Ok(x.wrapping_div(y))
                    }
                } else if s == self.arith.modulo {
                    if y == 0 {
                        Err(PsiError::EvalError {
                            detail: "division by zero".into(),
                        })
                    } else {
                        Ok(x.rem_euclid(y))
                    }
                } else if s == self.arith.rem {
                    if y == 0 {
                        Err(PsiError::EvalError {
                            detail: "division by zero".into(),
                        })
                    } else {
                        Ok(x.wrapping_rem(y))
                    }
                } else if s == self.arith.shl {
                    // Shift counts are masked to the word width, like
                    // the 32-bit ALU the tags leave room for.
                    Ok(x.wrapping_shl(y as u32))
                } else if s == self.arith.shr {
                    Ok(x.wrapping_shr(y as u32))
                } else if s == self.arith.band {
                    Ok(x & y)
                } else if s == self.arith.bor {
                    Ok(x | y)
                } else if s == self.arith.bxor {
                    Ok(x ^ y)
                } else if s == self.arith.min {
                    Ok(x.min(y))
                } else if s == self.arith.max {
                    Ok(x.max(y))
                } else {
                    Err(self.arith_error(s, 2))
                }
            }
            _ => Err(PsiError::EvalError {
                detail: format!("non-arithmetic term ({})", v.tag()),
            }),
        }
    }

    fn arith_error(&self, sym: psi_core::SymbolId, arity: u8) -> PsiError {
        PsiError::EvalError {
            detail: format!(
                "unknown arithmetic functor {}/{arity}",
                self.image.symbols().name(sym)
            ),
        }
    }

    /// Undoes trail entries down to `mark` (used by `\=`).
    pub(crate) fn undo_trail_to(&mut self, mark: u32) -> Result<()> {
        while self.procs[self.cur].trail_top > mark {
            let t = self.procs[self.cur].trail_top - 1;
            self.procs[self.cur].trail_top = t;
            let entry = if self.lane_compiled {
                // Compiled lane: the entry lives host-side (see
                // `Proc::trail`); charge the dispatch read it stands for.
                self.charge_packet(&self.charges.read_dispatch[InterpModule::Trail.index()]);
                self.procs[self.cur]
                    .trail
                    .pop()
                    .expect("host trail underflow")
            } else {
                self.mem_read_dispatch(InterpModule::Trail, self.trail_addr(t))?
            };
            if let Some(cell) = entry.address_value() {
                self.mem_write(InterpModule::Trail, cell, Word::undef())?;
            }
        }
        Ok(())
    }
}
