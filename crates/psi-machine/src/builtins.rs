//! Built-in predicate registry.
//!
//! §3.2 of the paper measures built-in call rates of 82% (WINDOW) and
//! 65% (BUP) — built-ins dominate calls but not steps, because they
//! are executed entirely by microcode. This module enumerates the
//! built-ins of our KL0 subset; execution lives in the machine.

use std::fmt;

/// A built-in predicate of the simulated KL0 system.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u32)]
pub enum Builtin {
    /// `true/0`.
    True = 0,
    /// `fail/0` (also `false/0`).
    Fail,
    /// `=/2` — unification.
    Unify,
    /// `\=/2` — non-unifiability test.
    NotUnify,
    /// `is/2` — arithmetic evaluation.
    Is,
    /// `</2`.
    Lt,
    /// `>/2`.
    Gt,
    /// `=</2`.
    Le,
    /// `>=/2`.
    Ge,
    /// `=:=/2` — arithmetic equality.
    ArithEq,
    /// `=\=/2` — arithmetic inequality.
    ArithNe,
    /// `==/2` — structural identity.
    TermEq,
    /// `\==/2` — structural non-identity.
    TermNe,
    /// `var/1`.
    Var,
    /// `nonvar/1`.
    Nonvar,
    /// `atom/1`.
    Atom,
    /// `atomic/1`.
    Atomic,
    /// `integer/1`.
    Integer,
    /// `functor/3`.
    Functor,
    /// `arg/3`.
    Arg,
    /// `write/1` — renders into the machine's output buffer.
    Write,
    /// `nl/0`.
    Nl,
    /// `tab/1`.
    Tab,
    /// `vector/2` — `vector(V, N)` allocates an N-element rewritable
    /// heap vector (the "heap vector" data of §4.2, used by WINDOW).
    VectorNew,
    /// `vget/3` — `vget(V, I, X)` reads element I.
    VectorGet,
    /// `vset/3` — `vset(V, I, X)` destructively writes element I.
    VectorSet,
    /// `yield/0` — cooperative process switch (§2.1 multi-process
    /// support; exercised by WINDOW-2/3).
    Yield,
    /// `halt/0` — terminate the current process successfully.
    Halt,
    /// `assert/1` (also `assertz/1`) — append a clause to the database.
    Assert,
    /// `asserta/1` — prepend a clause to the database.
    Asserta,
    /// `retract/1` — remove the first matching clause.
    Retract,
}

impl Builtin {
    /// All built-ins.
    pub const ALL: [Builtin; 31] = [
        Builtin::True,
        Builtin::Fail,
        Builtin::Unify,
        Builtin::NotUnify,
        Builtin::Is,
        Builtin::Lt,
        Builtin::Gt,
        Builtin::Le,
        Builtin::Ge,
        Builtin::ArithEq,
        Builtin::ArithNe,
        Builtin::TermEq,
        Builtin::TermNe,
        Builtin::Var,
        Builtin::Nonvar,
        Builtin::Atom,
        Builtin::Atomic,
        Builtin::Integer,
        Builtin::Functor,
        Builtin::Arg,
        Builtin::Write,
        Builtin::Nl,
        Builtin::Tab,
        Builtin::VectorNew,
        Builtin::VectorGet,
        Builtin::VectorSet,
        Builtin::Yield,
        Builtin::Halt,
        Builtin::Assert,
        Builtin::Asserta,
        Builtin::Retract,
    ];

    /// Resolves `name/arity` to a built-in.
    pub fn lookup(name: &str, arity: usize) -> Option<Builtin> {
        Some(match (name, arity) {
            ("true", 0) => Builtin::True,
            ("fail", 0) | ("false", 0) => Builtin::Fail,
            ("=", 2) => Builtin::Unify,
            ("\\=", 2) => Builtin::NotUnify,
            ("is", 2) => Builtin::Is,
            ("<", 2) => Builtin::Lt,
            (">", 2) => Builtin::Gt,
            ("=<", 2) => Builtin::Le,
            (">=", 2) => Builtin::Ge,
            ("=:=", 2) => Builtin::ArithEq,
            ("=\\=", 2) => Builtin::ArithNe,
            ("==", 2) => Builtin::TermEq,
            ("\\==", 2) => Builtin::TermNe,
            ("var", 1) => Builtin::Var,
            ("nonvar", 1) => Builtin::Nonvar,
            ("atom", 1) => Builtin::Atom,
            ("atomic", 1) => Builtin::Atomic,
            ("integer", 1) => Builtin::Integer,
            ("functor", 3) => Builtin::Functor,
            ("arg", 3) => Builtin::Arg,
            ("write", 1) => Builtin::Write,
            ("nl", 0) => Builtin::Nl,
            ("tab", 1) => Builtin::Tab,
            ("vector", 2) => Builtin::VectorNew,
            ("vget", 3) => Builtin::VectorGet,
            ("vset", 3) => Builtin::VectorSet,
            ("yield", 0) => Builtin::Yield,
            ("halt", 0) => Builtin::Halt,
            ("assert", 1) | ("assertz", 1) => Builtin::Assert,
            ("asserta", 1) => Builtin::Asserta,
            ("retract", 1) => Builtin::Retract,
            _ => return None,
        })
    }

    /// The identifier encoded in a
    /// [`BuiltinGoal`](psi_core::Tag::BuiltinGoal) word.
    pub fn id(self) -> u32 {
        self as u32
    }

    /// Decodes an id from a `BuiltinGoal` word.
    pub fn from_id(id: u32) -> Option<Builtin> {
        Builtin::ALL.get(id as usize).copied()
    }

    /// The arity of this built-in.
    pub fn arity(self) -> u8 {
        match self {
            Builtin::True | Builtin::Fail | Builtin::Nl | Builtin::Yield | Builtin::Halt => 0,
            Builtin::Var
            | Builtin::Nonvar
            | Builtin::Atom
            | Builtin::Atomic
            | Builtin::Integer
            | Builtin::Write
            | Builtin::Tab
            | Builtin::Assert
            | Builtin::Asserta
            | Builtin::Retract => 1,
            Builtin::Functor | Builtin::Arg | Builtin::VectorGet | Builtin::VectorSet => 3,
            _ => 2,
        }
    }
}

impl fmt::Display for Builtin {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self:?}/{}", self.arity())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn id_roundtrip() {
        for b in Builtin::ALL {
            assert_eq!(Builtin::from_id(b.id()), Some(b), "{b}");
        }
        assert_eq!(Builtin::from_id(9999), None);
    }

    #[test]
    fn lookup_matches_arity() {
        assert_eq!(Builtin::lookup("is", 2), Some(Builtin::Is));
        assert_eq!(Builtin::lookup("is", 3), None);
        assert_eq!(Builtin::lookup("=", 2), Some(Builtin::Unify));
        assert_eq!(Builtin::lookup("frobnicate", 1), None);
        assert_eq!(Builtin::lookup("false", 0), Some(Builtin::Fail));
    }

    #[test]
    fn arities_are_consistent_with_lookup() {
        let names = [
            ("true", 0),
            ("=", 2),
            ("var", 1),
            ("functor", 3),
            ("vset", 3),
            ("yield", 0),
        ];
        for (name, arity) in names {
            let b = Builtin::lookup(name, arity).unwrap();
            assert_eq!(b.arity() as usize, arity, "{name}");
        }
    }
}
