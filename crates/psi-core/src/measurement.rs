//! The measurement lane selector shared by the memory unit and the
//! interpreter.

/// Which execution lane a machine runs in.
///
/// The paper's numbers (Tables 2–7, Figure 1) come from *measured*
/// runs: every memory access drives the cache-occupancy model, can be
/// traced, and can emit observability events. Nothing about the
/// *answers* depends on that bookkeeping, so a caller that only wants
/// solutions can turn it off.
///
/// * [`Measurement::Full`] — the fidelity lane (Lane A, the default).
///   All measurement machinery runs; archived experiment outputs are
///   bit-reproducible.
/// * [`Measurement::Off`] — the throughput lane (Lane B). The memory
///   unit skips the cache simulator, address tracing and event
///   recording, and the interpreter dispatches from its predecoded
///   code cache. Microinstruction *step* accounting is still charged
///   identically — solutions, step totals and per-module tallies are
///   bit-identical to the fidelity lane; only cache statistics and
///   stall time (hence simulated wall time) are zero.
///
/// The lane is selected once, when the machine is loaded; it is not a
/// per-access decision.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub enum Measurement {
    /// Fidelity lane: full cache/trace/event measurement (default).
    #[default]
    Full,
    /// Throughput lane: storage access and step counting only.
    Off,
}

impl Measurement {
    /// Is full measurement on?
    pub fn is_full(self) -> bool {
        matches!(self, Measurement::Full)
    }

    /// Stable short label (used by benchmark reports).
    pub fn label(self) -> &'static str {
        match self {
            Measurement::Full => "fidelity",
            Measurement::Off => "throughput",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_full() {
        assert_eq!(Measurement::default(), Measurement::Full);
        assert!(Measurement::Full.is_full());
        assert!(!Measurement::Off.is_full());
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(Measurement::Full.label(), "fidelity");
        assert_eq!(Measurement::Off.label(), "throughput");
    }
}
