//! The 8-bit tag part of a PSI word.

use std::fmt;

/// The 8-bit tag of a PSI machine word.
///
/// Tags are split in two groups, mirroring the PSI instruction code
/// (§2.1): *runtime* tags describe values living on the stacks and
/// heap vectors, and *code* tags appear only inside machine-resident
/// clause code in the heap area.
///
/// ```
/// use psi_core::Tag;
/// assert!(Tag::List.is_pointer());
/// assert!(Tag::CodeList.is_code());
/// assert!(!Tag::Int.is_pointer());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(u8)]
pub enum Tag {
    // ------------------------------------------------------- runtime tags
    /// Unbound variable cell.
    Undef = 0x00,
    /// Bound reference to another cell.
    Ref = 0x01,
    /// Atom; data part is a [`SymbolId`](crate::SymbolId).
    Atom = 0x02,
    /// 32-bit signed integer.
    Int = 0x03,
    /// The empty list `[]`.
    Nil = 0x04,
    /// Pointer to a two-word cons cell `(car, cdr)`.
    List = 0x05,
    /// Pointer to a structure block: a functor word followed by the
    /// argument words.
    Vect = 0x06,
    /// Functor word heading a structure block: symbol id (24 bits) and
    /// arity (8 bits) packed in the data part.
    Functor = 0x07,
    /// Pointer to a rewritable heap vector (header word + elements),
    /// living in the shared heap area. Only the WINDOW workload uses
    /// these, exactly as the paper notes in §4.2.
    HeapVect = 0x08,

    // ---------------------------------------------------------- code tags
    /// Clause header word (arity + number of local variable slots).
    ClauseHead = 0x10,
    /// First occurrence of a local variable; data = slot index.
    FirstVar = 0x11,
    /// Subsequent occurrence of a local variable; data = slot index.
    LocalVar = 0x12,
    /// Singleton ("void") variable in a clause head.
    Void = 0x13,
    /// Static list skeleton in code; data = heap offset of the two
    /// skeleton words.
    CodeList = 0x14,
    /// Static structure skeleton in code; data = heap offset of the
    /// functor word.
    CodeVect = 0x15,
    /// Up to four 8-bit arguments packed into one word to save memory
    /// (§2.1 "up to four 8-bit arguments are packed into one word").
    Packed = 0x16,
    /// Goal header word; data = predicate table index and argument
    /// count.
    Goal = 0x17,
    /// Built-in predicate goal header; data = builtin id and argument
    /// count.
    BuiltinGoal = 0x18,
    /// Cut goal marker.
    CutGoal = 0x19,
    /// End-of-body sentinel.
    EndBody = 0x1A,

    // ------------------------------------------------------- control tags
    /// Word inside a 10-word control frame (environment or choice
    /// point).
    Ctl = 0x20,
    /// Trail stack entry: address of a cell to reset on backtracking.
    TrailRef = 0x21,
}

impl Tag {
    /// All tags, in declaration order. Useful for exhaustive tests.
    pub const ALL: [Tag; 20] = [
        Tag::Undef,
        Tag::Ref,
        Tag::Atom,
        Tag::Int,
        Tag::Nil,
        Tag::List,
        Tag::Vect,
        Tag::Functor,
        Tag::HeapVect,
        Tag::ClauseHead,
        Tag::FirstVar,
        Tag::LocalVar,
        Tag::Void,
        Tag::CodeList,
        Tag::CodeVect,
        Tag::Packed,
        Tag::Goal,
        Tag::BuiltinGoal,
        Tag::CutGoal,
        Tag::EndBody,
    ];

    /// Decodes a tag from its 8-bit encoding.
    ///
    /// Returns `None` for byte values that do not name a tag.
    pub fn from_u8(byte: u8) -> Option<Tag> {
        Some(match byte {
            0x00 => Tag::Undef,
            0x01 => Tag::Ref,
            0x02 => Tag::Atom,
            0x03 => Tag::Int,
            0x04 => Tag::Nil,
            0x05 => Tag::List,
            0x06 => Tag::Vect,
            0x07 => Tag::Functor,
            0x08 => Tag::HeapVect,
            0x10 => Tag::ClauseHead,
            0x11 => Tag::FirstVar,
            0x12 => Tag::LocalVar,
            0x13 => Tag::Void,
            0x14 => Tag::CodeList,
            0x15 => Tag::CodeVect,
            0x16 => Tag::Packed,
            0x17 => Tag::Goal,
            0x18 => Tag::BuiltinGoal,
            0x19 => Tag::CutGoal,
            0x1A => Tag::EndBody,
            0x20 => Tag::Ctl,
            0x21 => Tag::TrailRef,
            _ => return None,
        })
    }

    /// Returns the 8-bit encoding of the tag.
    pub fn as_u8(self) -> u8 {
        self as u8
    }

    /// Is this tag a pointer into simulated memory (its data part is an
    /// [`Address`](crate::Address))?
    pub fn is_pointer(self) -> bool {
        matches!(
            self,
            Tag::Ref | Tag::List | Tag::Vect | Tag::HeapVect | Tag::TrailRef
        )
    }

    /// Is this a code-only tag (appears only in machine-resident clause
    /// code)?
    pub fn is_code(self) -> bool {
        (self as u8) >= 0x10 && (self as u8) < 0x20
    }

    /// Is this an atom tag?
    pub fn is_atom(self) -> bool {
        self == Tag::Atom
    }

    /// Is this a runtime value tag (could be stored in a variable)?
    pub fn is_value(self) -> bool {
        (self as u8) < 0x10
    }

    /// Is this tag an atomic (non-compound, non-variable) value?
    pub fn is_atomic_value(self) -> bool {
        matches!(self, Tag::Atom | Tag::Int | Tag::Nil)
    }

    /// The 3-bit tag used for *packed* 8-bit operands. The PSI packs a
    /// 3-bit tag inside each 8-bit packed operand (§4.4, branch op
    /// `case (irn)`); we expose the mapping used by the code generator.
    pub fn packed_tag(self) -> Option<u8> {
        Some(match self {
            Tag::Atom => 0,
            Tag::Int => 1,
            Tag::Nil => 2,
            Tag::FirstVar => 3,
            Tag::LocalVar => 4,
            Tag::Void => 5,
            _ => return None,
        })
    }
}

impl fmt::Display for Tag {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            Tag::Undef => "undef",
            Tag::Ref => "ref",
            Tag::Atom => "atom",
            Tag::Int => "int",
            Tag::Nil => "nil",
            Tag::List => "list",
            Tag::Vect => "vect",
            Tag::Functor => "functor",
            Tag::HeapVect => "heap-vect",
            Tag::ClauseHead => "clause-head",
            Tag::FirstVar => "first-var",
            Tag::LocalVar => "local-var",
            Tag::Void => "void",
            Tag::CodeList => "code-list",
            Tag::CodeVect => "code-vect",
            Tag::Packed => "packed",
            Tag::Goal => "goal",
            Tag::BuiltinGoal => "builtin-goal",
            Tag::CutGoal => "cut-goal",
            Tag::EndBody => "end-body",
            Tag::Ctl => "ctl",
            Tag::TrailRef => "trail-ref",
        };
        f.write_str(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_tags() {
        for tag in Tag::ALL {
            assert_eq!(Tag::from_u8(tag.as_u8()), Some(tag), "{tag}");
        }
        // control tags too
        assert_eq!(Tag::from_u8(0x20), Some(Tag::Ctl));
        assert_eq!(Tag::from_u8(0x21), Some(Tag::TrailRef));
    }

    #[test]
    fn unknown_bytes_are_rejected() {
        assert_eq!(Tag::from_u8(0xFF), None);
        assert_eq!(Tag::from_u8(0x0F), None);
        assert_eq!(Tag::from_u8(0x30), None);
    }

    #[test]
    fn pointer_classification() {
        assert!(Tag::Ref.is_pointer());
        assert!(Tag::List.is_pointer());
        assert!(Tag::Vect.is_pointer());
        assert!(Tag::HeapVect.is_pointer());
        assert!(!Tag::Atom.is_pointer());
        assert!(!Tag::Int.is_pointer());
        assert!(!Tag::Undef.is_pointer());
    }

    #[test]
    fn code_classification() {
        for tag in [
            Tag::ClauseHead,
            Tag::FirstVar,
            Tag::LocalVar,
            Tag::Void,
            Tag::CodeList,
            Tag::CodeVect,
            Tag::Packed,
            Tag::Goal,
            Tag::BuiltinGoal,
            Tag::CutGoal,
            Tag::EndBody,
        ] {
            assert!(tag.is_code(), "{tag}");
            assert!(!tag.is_value(), "{tag}");
        }
        for tag in [Tag::Undef, Tag::Ref, Tag::Atom, Tag::Int, Tag::Nil] {
            assert!(!tag.is_code(), "{tag}");
            assert!(tag.is_value(), "{tag}");
        }
    }

    #[test]
    fn packed_tags_are_distinct() {
        let mut seen = std::collections::HashSet::new();
        for tag in Tag::ALL {
            if let Some(p) = tag.packed_tag() {
                assert!(p < 8, "packed tag must fit in 3 bits");
                assert!(seen.insert(p), "duplicate packed tag for {tag}");
            }
        }
        assert_eq!(seen.len(), 6);
    }

    #[test]
    fn display_is_nonempty() {
        for tag in Tag::ALL {
            assert!(!tag.to_string().is_empty());
        }
    }
}
