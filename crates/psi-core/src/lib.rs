//! Core data types of the PSI machine reproduction.
//!
//! The PSI (Personal Sequential Inference machine) is a tagged
//! architecture: every machine word is an 8-bit tag plus a 32-bit data
//! part (§2.1 of the paper). This crate defines that word format
//! ([`Word`], [`Tag`]), the machine's logical memory areas
//! ([`Area`], [`Address`]) and the symbol (atom / functor name)
//! interner shared by the KL0 front end and both execution engines.
//!
//! # Example
//!
//! ```
//! use psi_core::{Address, Area, ProcessId, SymbolTable, Word};
//!
//! let mut symbols = SymbolTable::new();
//! let foo = symbols.intern("foo");
//! let w = Word::atom(foo);
//! assert!(w.tag().is_atom());
//! assert_eq!(w.atom_value(), Some(foo));
//!
//! let a = Address::new(ProcessId::ZERO, Area::GlobalStack, 42);
//! let p = Word::list(a);
//! assert_eq!(p.address_value(), Some(a));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod address;
mod error;
mod event;
mod measurement;
mod symbol;
mod tag;
mod word;

pub use address::{Address, Area, ProcessId, AREA_COUNT};
pub use error::{PsiError, Resource, Result};
pub use event::{EventKind, ObsEvent};
pub use measurement::Measurement;
pub use symbol::{SymbolId, SymbolTable};
pub use tag::Tag;
pub use word::{Functor, Word};
