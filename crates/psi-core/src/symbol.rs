//! Interned atom and functor names.

use std::collections::HashMap;
use std::fmt;

/// Identifier of an interned symbol (atom or functor name).
///
/// The data part of an `Atom` word carries a `SymbolId`; a `Functor`
/// word packs a `SymbolId` (24 bits) with an arity (8 bits), so symbol
/// ids are limited to 24 bits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SymbolId(u32);

impl SymbolId {
    /// Maximum representable symbol id (24 bits, see [`SymbolId`]).
    pub const MAX: u32 = (1 << 24) - 1;

    /// The raw id.
    pub fn get(self) -> u32 {
        self.0
    }

    /// Rebuilds a symbol id from a raw value.
    ///
    /// # Panics
    ///
    /// Panics if `raw` exceeds [`SymbolId::MAX`].
    pub fn from_raw(raw: u32) -> SymbolId {
        assert!(raw <= Self::MAX, "symbol id {raw} out of range");
        SymbolId(raw)
    }
}

impl fmt::Display for SymbolId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{}", self.0)
    }
}

/// Interner mapping atom names to dense [`SymbolId`]s and back.
///
/// ```
/// use psi_core::SymbolTable;
/// let mut t = SymbolTable::new();
/// let a = t.intern("append");
/// let b = t.intern("append");
/// assert_eq!(a, b);
/// assert_eq!(t.name(a), "append");
/// ```
#[derive(Debug, Clone, Default)]
pub struct SymbolTable {
    names: Vec<String>,
    ids: HashMap<String, SymbolId>,
}

impl SymbolTable {
    /// Creates an empty symbol table.
    pub fn new() -> SymbolTable {
        SymbolTable::default()
    }

    /// Interns `name`, returning its id. Idempotent.
    ///
    /// # Panics
    ///
    /// Panics if more than 2^24 distinct symbols are interned.
    pub fn intern(&mut self, name: &str) -> SymbolId {
        if let Some(&id) = self.ids.get(name) {
            return id;
        }
        let raw = u32::try_from(self.names.len()).expect("symbol table overflow");
        assert!(raw <= SymbolId::MAX, "symbol table overflow");
        let id = SymbolId(raw);
        self.names.push(name.to_owned());
        self.ids.insert(name.to_owned(), id);
        id
    }

    /// Looks up an already-interned name.
    pub fn lookup(&self, name: &str) -> Option<SymbolId> {
        self.ids.get(name).copied()
    }

    /// The name of `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` was not produced by this table.
    pub fn name(&self, id: SymbolId) -> &str {
        &self.names[id.0 as usize]
    }

    /// Number of interned symbols.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Is the table empty?
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Iterates over `(id, name)` pairs in interning order.
    pub fn iter(&self) -> impl Iterator<Item = (SymbolId, &str)> {
        self.names
            .iter()
            .enumerate()
            .map(|(i, n)| (SymbolId(i as u32), n.as_str()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_idempotent() {
        let mut t = SymbolTable::new();
        let a = t.intern("foo");
        let b = t.intern("bar");
        assert_ne!(a, b);
        assert_eq!(t.intern("foo"), a);
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn lookup_and_name() {
        let mut t = SymbolTable::new();
        assert_eq!(t.lookup("x"), None);
        let id = t.intern("x");
        assert_eq!(t.lookup("x"), Some(id));
        assert_eq!(t.name(id), "x");
    }

    #[test]
    fn iter_preserves_order() {
        let mut t = SymbolTable::new();
        let ids: Vec<_> = ["a", "b", "c"].iter().map(|s| t.intern(s)).collect();
        let seen: Vec<_> = t.iter().map(|(id, _)| id).collect();
        assert_eq!(ids, seen);
    }

    #[test]
    fn empty_table() {
        let t = SymbolTable::new();
        assert!(t.is_empty());
        assert_eq!(t.len(), 0);
    }
}
