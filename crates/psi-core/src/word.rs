//! The 40-bit PSI machine word: 8-bit tag + 32-bit data, packed into a
//! `u64` (§2.1: "A word format of the PSI consists of an 8-bit tag
//! part and a 32-bit data part").

use crate::{Address, SymbolId, Tag};
use std::fmt;

/// A functor: an interned name plus an arity.
///
/// Packed into the data part of a [`Tag::Functor`] word as
/// symbol-id (24 bits) | arity (8 bits).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Functor {
    /// The functor name.
    pub symbol: SymbolId,
    /// The number of arguments.
    pub arity: u8,
}

impl Functor {
    /// Creates a functor.
    pub fn new(symbol: SymbolId, arity: u8) -> Functor {
        Functor { symbol, arity }
    }
}

impl fmt::Display for Functor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.symbol, self.arity)
    }
}

/// A PSI machine word: 8-bit [`Tag`] plus 32-bit data.
///
/// ```
/// use psi_core::{Tag, Word};
/// let w = Word::int(-5);
/// assert_eq!(w.tag(), Tag::Int);
/// assert_eq!(w.int_value(), Some(-5));
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Word(u64);

impl Word {
    // ------------------------------------------------------ constructors

    /// Raw constructor from a tag and a 32-bit data part.
    pub fn new(tag: Tag, data: u32) -> Word {
        Word(((tag.as_u8() as u64) << 32) | data as u64)
    }

    /// An unbound variable cell.
    pub fn undef() -> Word {
        Word::new(Tag::Undef, 0)
    }

    /// A bound reference to `addr`.
    pub fn reference(addr: Address) -> Word {
        Word::new(Tag::Ref, addr.raw())
    }

    /// An atom.
    pub fn atom(symbol: SymbolId) -> Word {
        Word::new(Tag::Atom, symbol.get())
    }

    /// A 32-bit integer.
    pub fn int(value: i32) -> Word {
        Word::new(Tag::Int, value as u32)
    }

    /// The empty list.
    pub fn nil() -> Word {
        Word::new(Tag::Nil, 0)
    }

    /// A pointer to a cons cell at `addr`.
    pub fn list(addr: Address) -> Word {
        Word::new(Tag::List, addr.raw())
    }

    /// A pointer to a structure block at `addr`.
    pub fn vect(addr: Address) -> Word {
        Word::new(Tag::Vect, addr.raw())
    }

    /// A pointer to a rewritable heap vector at `addr`.
    pub fn heap_vect(addr: Address) -> Word {
        Word::new(Tag::HeapVect, addr.raw())
    }

    /// A functor word heading a structure block.
    pub fn functor(f: Functor) -> Word {
        Word::new(Tag::Functor, (f.symbol.get() << 8) | f.arity as u32)
    }

    /// A trail entry recording that the cell at `addr` must be reset.
    pub fn trail_ref(addr: Address) -> Word {
        Word::new(Tag::TrailRef, addr.raw())
    }

    /// A control-frame word carrying a raw payload.
    pub fn ctl(payload: u32) -> Word {
        Word::new(Tag::Ctl, payload)
    }

    // ------------------------------------------------------- code words

    /// Clause header: `arity` argument words follow, the clause uses
    /// `nlocals` local variable slots.
    pub fn clause_head(arity: u8, nlocals: u16) -> Word {
        Word::new(Tag::ClauseHead, ((nlocals as u32) << 8) | arity as u32)
    }

    /// First occurrence of local variable slot `slot`.
    pub fn first_var(slot: u16) -> Word {
        Word::new(Tag::FirstVar, slot as u32)
    }

    /// Subsequent occurrence of local variable slot `slot`.
    pub fn local_var(slot: u16) -> Word {
        Word::new(Tag::LocalVar, slot as u32)
    }

    /// A singleton variable in a clause head.
    pub fn void() -> Word {
        Word::new(Tag::Void, 0)
    }

    /// A static list skeleton whose two cells live at heap offset
    /// `heap_offset`.
    pub fn code_list(heap_offset: u32) -> Word {
        Word::new(Tag::CodeList, heap_offset)
    }

    /// A static structure skeleton whose functor word lives at heap
    /// offset `heap_offset`.
    pub fn code_vect(heap_offset: u32) -> Word {
        Word::new(Tag::CodeVect, heap_offset)
    }

    /// Four packed 8-bit operands (§2.1). Each operand is a 3-bit
    /// packed tag plus a 5-bit payload; see [`Word::packed_operand`].
    pub fn packed(operands: [u8; 4]) -> Word {
        Word::new(Tag::Packed, u32::from_le_bytes(operands))
    }

    /// A user-predicate goal header: predicate-table index (24 bits)
    /// and argument count (8 bits).
    pub fn goal(pred_index: u32, nargs: u8) -> Word {
        debug_assert!(pred_index <= SymbolId::MAX);
        Word::new(Tag::Goal, (pred_index << 8) | nargs as u32)
    }

    /// A built-in goal header: builtin id (24 bits) and argument count
    /// (8 bits).
    pub fn builtin_goal(builtin_id: u32, nargs: u8) -> Word {
        debug_assert!(builtin_id <= SymbolId::MAX);
        Word::new(Tag::BuiltinGoal, (builtin_id << 8) | nargs as u32)
    }

    /// A cut goal.
    pub fn cut_goal() -> Word {
        Word::new(Tag::CutGoal, 0)
    }

    /// The end-of-body sentinel.
    pub fn end_body() -> Word {
        Word::new(Tag::EndBody, 0)
    }

    // -------------------------------------------------------- accessors

    /// The tag part.
    ///
    /// # Panics
    ///
    /// Panics if the word was built through [`Word::from_raw`] with an
    /// invalid tag byte; words built through the typed constructors
    /// always carry valid tags.
    pub fn tag(self) -> Tag {
        Tag::from_u8((self.0 >> 32) as u8).expect("word carries a valid tag")
    }

    /// The raw 32-bit data part.
    pub fn data(self) -> u32 {
        self.0 as u32
    }

    /// The raw 40-bit encoding.
    pub fn raw(self) -> u64 {
        self.0
    }

    /// Rebuilds a word from its raw encoding.
    ///
    /// Returns `None` if the tag byte is invalid.
    pub fn from_raw(raw: u64) -> Option<Word> {
        Tag::from_u8((raw >> 32) as u8)?;
        Some(Word(raw))
    }

    /// The integer value, if this is an `Int` word.
    pub fn int_value(self) -> Option<i32> {
        (self.tag() == Tag::Int).then(|| self.data() as i32)
    }

    /// The symbol, if this is an `Atom` word.
    pub fn atom_value(self) -> Option<SymbolId> {
        (self.tag() == Tag::Atom).then(|| SymbolId::from_raw(self.data()))
    }

    /// The address, if this word's tag is a pointer tag.
    pub fn address_value(self) -> Option<Address> {
        if self.tag().is_pointer() {
            Address::from_raw(self.data())
        } else {
            None
        }
    }

    /// The functor, if this is a `Functor` word.
    pub fn functor_value(self) -> Option<Functor> {
        (self.tag() == Tag::Functor).then(|| Functor {
            symbol: SymbolId::from_raw(self.data() >> 8),
            arity: (self.data() & 0xFF) as u8,
        })
    }

    /// `(arity, nlocals)` of a clause header word.
    pub fn clause_head_value(self) -> Option<(u8, u16)> {
        (self.tag() == Tag::ClauseHead)
            .then(|| ((self.data() & 0xFF) as u8, (self.data() >> 8) as u16))
    }

    /// The local-variable slot of a `FirstVar` or `LocalVar` word.
    pub fn var_slot(self) -> Option<u16> {
        matches!(self.tag(), Tag::FirstVar | Tag::LocalVar).then(|| self.data() as u16)
    }

    /// `(index, nargs)` of a `Goal` or `BuiltinGoal` header.
    pub fn goal_value(self) -> Option<(u32, u8)> {
        matches!(self.tag(), Tag::Goal | Tag::BuiltinGoal)
            .then(|| (self.data() >> 8, (self.data() & 0xFF) as u8))
    }

    /// The four packed operands of a `Packed` word.
    pub fn packed_operands(self) -> Option<[u8; 4]> {
        (self.tag() == Tag::Packed).then(|| self.data().to_le_bytes())
    }

    /// Splits a packed 8-bit operand into its 3-bit tag and 5-bit
    /// payload (§4.4: "3-bit tags in 8-bit packed operand").
    pub fn packed_operand(op: u8) -> (u8, u8) {
        (op >> 5, op & 0x1F)
    }

    /// Builds a packed 8-bit operand from a 3-bit tag and 5-bit
    /// payload.
    ///
    /// # Panics
    ///
    /// Panics if the tag exceeds 3 bits or the payload exceeds 5 bits.
    pub fn make_packed_operand(tag3: u8, payload5: u8) -> u8 {
        assert!(tag3 < 8, "packed tag must fit in 3 bits");
        assert!(payload5 < 32, "packed payload must fit in 5 bits");
        (tag3 << 5) | payload5
    }

    /// Is this word an unbound-variable cell?
    pub fn is_undef(self) -> bool {
        self.tag() == Tag::Undef
    }
}

impl fmt::Debug for Word {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "<{} {:#010x}>", self.tag(), self.data())
    }
}

impl fmt::Display for Word {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

impl fmt::LowerHex for Word {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::LowerHex::fmt(&self.0, f)
    }
}

impl fmt::UpperHex for Word {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::UpperHex::fmt(&self.0, f)
    }
}

impl fmt::Binary for Word {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Binary::fmt(&self.0, f)
    }
}

impl Default for Word {
    /// The default word is an unbound variable cell.
    fn default() -> Word {
        Word::undef()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Area, ProcessId};

    #[test]
    fn int_roundtrip_including_negatives() {
        for v in [0, 1, -1, i32::MAX, i32::MIN, 123456789, -987654321] {
            let w = Word::int(v);
            assert_eq!(w.tag(), Tag::Int);
            assert_eq!(w.int_value(), Some(v));
        }
    }

    #[test]
    fn atom_roundtrip() {
        let id = SymbolId::from_raw(777);
        let w = Word::atom(id);
        assert_eq!(w.atom_value(), Some(id));
        assert_eq!(w.int_value(), None);
    }

    #[test]
    fn pointer_roundtrip() {
        let a = Address::new(ProcessId::new(2), Area::GlobalStack, 555);
        for w in [
            Word::reference(a),
            Word::list(a),
            Word::vect(a),
            Word::heap_vect(a),
        ] {
            assert_eq!(w.address_value(), Some(a), "{w:?}");
        }
        assert_eq!(Word::int(5).address_value(), None);
    }

    #[test]
    fn functor_roundtrip() {
        let f = Functor::new(SymbolId::from_raw(4242), 7);
        let w = Word::functor(f);
        assert_eq!(w.functor_value(), Some(f));
    }

    #[test]
    fn clause_head_roundtrip() {
        let w = Word::clause_head(3, 12);
        assert_eq!(w.clause_head_value(), Some((3, 12)));
    }

    #[test]
    fn goal_roundtrip() {
        let w = Word::goal(1000, 4);
        assert_eq!(w.tag(), Tag::Goal);
        assert_eq!(w.goal_value(), Some((1000, 4)));
        let b = Word::builtin_goal(17, 2);
        assert_eq!(b.tag(), Tag::BuiltinGoal);
        assert_eq!(b.goal_value(), Some((17, 2)));
    }

    #[test]
    fn packed_operands_roundtrip() {
        let ops = [
            Word::make_packed_operand(1, 5),
            Word::make_packed_operand(3, 31),
            Word::make_packed_operand(0, 0),
            Word::make_packed_operand(7, 1),
        ];
        let w = Word::packed(ops);
        assert_eq!(w.packed_operands(), Some(ops));
        assert_eq!(Word::packed_operand(ops[1]), (3, 31));
    }

    #[test]
    fn var_slots() {
        assert_eq!(Word::first_var(9).var_slot(), Some(9));
        assert_eq!(Word::local_var(9).var_slot(), Some(9));
        assert_eq!(Word::int(9).var_slot(), None);
    }

    #[test]
    fn raw_roundtrip_rejects_bad_tags() {
        let w = Word::int(-1);
        assert_eq!(Word::from_raw(w.raw()), Some(w));
        assert_eq!(Word::from_raw(0xFF_0000_0000), None);
    }

    #[test]
    fn default_is_undef() {
        assert!(Word::default().is_undef());
    }

    #[test]
    fn debug_is_never_empty() {
        assert!(!format!("{:?}", Word::undef()).is_empty());
        assert!(format!("{:x}", Word::int(15)).ends_with('f'));
    }
}
