//! Error type shared across the PSI reproduction crates.

use std::fmt;

/// Convenience alias for results carrying a [`PsiError`].
pub type Result<T> = std::result::Result<T, PsiError>;

/// Errors raised by the simulated machines and their front ends.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum PsiError {
    /// A simulated memory access fell outside the allocated area.
    OutOfArea {
        /// A human-readable description of the access.
        access: String,
    },
    /// A stack area exceeded its configured limit.
    StackOverflow {
        /// The label of the overflowing area.
        area: &'static str,
        /// The configured limit in words.
        limit: usize,
    },
    /// A predicate was called but never defined.
    UndefinedPredicate {
        /// `name/arity` of the missing predicate.
        name: String,
    },
    /// A built-in received an argument of the wrong type.
    TypeError {
        /// The built-in that failed.
        builtin: String,
        /// What was expected.
        expected: &'static str,
    },
    /// Arithmetic evaluation failed (unbound variable, bad functor,
    /// division by zero).
    EvalError {
        /// A description of the failure.
        detail: String,
    },
    /// The execution exceeded the configured step budget.
    StepBudgetExceeded {
        /// The budget that was exceeded, in microinstruction steps.
        budget: u64,
    },
    /// A syntax error from the KL0 reader.
    Syntax {
        /// Line number (1-based).
        line: u32,
        /// Column number (1-based).
        column: u32,
        /// What went wrong.
        detail: String,
    },
    /// A program was malformed at compile time.
    Compile {
        /// What went wrong.
        detail: String,
    },
}

impl fmt::Display for PsiError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PsiError::OutOfArea { access } => {
                write!(f, "memory access out of area: {access}")
            }
            PsiError::StackOverflow { area, limit } => {
                write!(f, "{area} stack overflow (limit {limit} words)")
            }
            PsiError::UndefinedPredicate { name } => {
                write!(f, "undefined predicate {name}")
            }
            PsiError::TypeError { builtin, expected } => {
                write!(f, "type error in {builtin}: expected {expected}")
            }
            PsiError::EvalError { detail } => {
                write!(f, "arithmetic evaluation error: {detail}")
            }
            PsiError::StepBudgetExceeded { budget } => {
                write!(f, "execution exceeded step budget of {budget}")
            }
            PsiError::Syntax {
                line,
                column,
                detail,
            } => write!(f, "syntax error at {line}:{column}: {detail}"),
            PsiError::Compile { detail } => write!(f, "compile error: {detail}"),
        }
    }
}

impl std::error::Error for PsiError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_display_lowercase_without_period() {
        let errors = [
            PsiError::OutOfArea {
                access: "read p0:heap:0x10".into(),
            },
            PsiError::StackOverflow {
                area: "local",
                limit: 4096,
            },
            PsiError::UndefinedPredicate {
                name: "foo/3".into(),
            },
            PsiError::TypeError {
                builtin: "is/2".into(),
                expected: "integer",
            },
            PsiError::EvalError {
                detail: "division by zero".into(),
            },
            PsiError::StepBudgetExceeded { budget: 10 },
            PsiError::Syntax {
                line: 3,
                column: 7,
                detail: "unexpected token".into(),
            },
            PsiError::Compile {
                detail: "head is not callable".into(),
            },
        ];
        for e in errors {
            let msg = e.to_string();
            assert!(!msg.is_empty());
            assert!(!msg.ends_with('.'), "{msg}");
            assert!(msg.chars().next().unwrap().is_lowercase(), "{msg}");
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_bounds<T: std::error::Error + Send + Sync + 'static>() {}
        assert_bounds::<PsiError>();
    }
}
