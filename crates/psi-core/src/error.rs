//! Error type shared across the PSI reproduction crates.

use std::fmt;

/// Convenience alias for results carrying a [`PsiError`].
pub type Result<T> = std::result::Result<T, PsiError>;

/// A governed resource that a budget can exhaust during execution.
///
/// Budgets are configured per machine (see `MachineConfig::limits` in
/// `psi-machine`) and checked periodically by the dispatch loop, so an
/// exhausted run stops with a typed, recoverable error instead of
/// spinning forever.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum Resource {
    /// Microinstruction steps (PSI) or emulated instructions (DEC-10).
    Steps,
    /// Heap-area words (loaded code plus runtime heap vectors).
    HeapWords,
    /// Local-stack words of one process.
    LocalWords,
    /// Global-stack words of one process.
    GlobalWords,
    /// Control-stack words of one process.
    ControlWords,
    /// Trail words of one process.
    TrailWords,
    /// Wall-clock milliseconds since the run started.
    WallClockMs,
}

impl Resource {
    /// Every resource, in code order.
    pub const ALL: [Resource; 7] = [
        Resource::Steps,
        Resource::HeapWords,
        Resource::LocalWords,
        Resource::GlobalWords,
        Resource::ControlWords,
        Resource::TrailWords,
        Resource::WallClockMs,
    ];

    /// A stable numeric code, used as the payload of governor-trip
    /// observability events (see [`crate::ObsEvent::governor_trip`]).
    pub fn code(self) -> u32 {
        Resource::ALL
            .iter()
            .position(|r| *r == self)
            .expect("every resource is in ALL") as u32
    }

    /// Decodes a [`Resource::code`]; `None` for unknown codes.
    pub fn from_code(code: u32) -> Option<Resource> {
        Resource::ALL.get(code as usize).copied()
    }
}

impl fmt::Display for Resource {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Resource::Steps => "steps",
            Resource::HeapWords => "heap words",
            Resource::LocalWords => "local-stack words",
            Resource::GlobalWords => "global-stack words",
            Resource::ControlWords => "control-stack words",
            Resource::TrailWords => "trail words",
            Resource::WallClockMs => "wall-clock ms",
        })
    }
}

/// Errors raised by the simulated machines and their front ends.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum PsiError {
    /// A simulated memory access fell outside the allocated area.
    OutOfArea {
        /// A human-readable description of the access.
        access: String,
    },
    /// A stack area exceeded its configured limit.
    StackOverflow {
        /// The label of the overflowing area.
        area: &'static str,
        /// The configured limit in words.
        limit: usize,
    },
    /// A predicate was called but never defined.
    UndefinedPredicate {
        /// `name/arity` of the missing predicate.
        name: String,
    },
    /// A built-in received an argument of the wrong type.
    TypeError {
        /// The built-in that failed.
        builtin: String,
        /// What was expected.
        expected: &'static str,
    },
    /// Arithmetic evaluation failed (unbound variable, bad functor,
    /// division by zero).
    EvalError {
        /// A description of the failure.
        detail: String,
    },
    /// A configured resource budget was exhausted. This error is
    /// recoverable by design: the machine that raised it remains
    /// loaded and reusable, and the next `solve` starts from a clean
    /// run state.
    ResourceExhausted {
        /// The budget that ran out.
        resource: Resource,
        /// The configured limit.
        limit: u64,
        /// The amount actually consumed when the governor noticed
        /// (may exceed `limit` by up to one check interval).
        consumed: u64,
    },
    /// A worker thread panicked while running an isolated task; the
    /// panic was contained by the suite runner and surfaced as this
    /// per-task error instead of aborting the whole suite.
    WorkerPanic {
        /// What the worker was doing (workload name and goal).
        context: String,
        /// The panic payload, rendered to text.
        detail: String,
    },
    /// A syntax error from the KL0 reader.
    Syntax {
        /// Line number (1-based).
        line: u32,
        /// Column number (1-based).
        column: u32,
        /// What went wrong.
        detail: String,
    },
    /// A program was malformed at compile time.
    Compile {
        /// What went wrong.
        detail: String,
    },
    /// `Machine::fork` was asked to duplicate a machine that has
    /// already compiled or run a query. Forking shares the immutable
    /// code image, so only a consulted-but-never-run template is
    /// eligible; recycling does not restore eligibility (the image
    /// keeps its per-query entry stubs).
    ForkAfterRun {
        /// Why the machine is not forkable.
        detail: String,
    },
    /// A machine snapshot could not be produced or restored: wrong
    /// schema version, a corrupt field, or an image mismatch between
    /// the snapshotting and restoring builds.
    Snapshot {
        /// What went wrong.
        detail: String,
    },
}

impl PsiError {
    /// A stable numeric code identifying the error variant on the
    /// wire. `psi-server` maps every error onto its JSON-lines
    /// protocol through this code (see PROTOCOL.md), so the values
    /// are append-only: new variants take new codes, existing codes
    /// never change meaning.
    pub fn wire_code(&self) -> u32 {
        match self {
            PsiError::OutOfArea { .. } => 1,
            PsiError::StackOverflow { .. } => 2,
            PsiError::UndefinedPredicate { .. } => 3,
            PsiError::TypeError { .. } => 4,
            PsiError::EvalError { .. } => 5,
            PsiError::ResourceExhausted { .. } => 6,
            PsiError::WorkerPanic { .. } => 7,
            PsiError::Syntax { .. } => 8,
            PsiError::Compile { .. } => 9,
            PsiError::ForkAfterRun { .. } => 10,
            PsiError::Snapshot { .. } => 11,
        }
    }

    /// A stable lowercase label for the error variant, paired with
    /// [`PsiError::wire_code`] in wire responses so clients can match
    /// on either form.
    pub fn wire_kind(&self) -> &'static str {
        match self {
            PsiError::OutOfArea { .. } => "out_of_area",
            PsiError::StackOverflow { .. } => "stack_overflow",
            PsiError::UndefinedPredicate { .. } => "undefined_predicate",
            PsiError::TypeError { .. } => "type_error",
            PsiError::EvalError { .. } => "eval_error",
            PsiError::ResourceExhausted { .. } => "resource_exhausted",
            PsiError::WorkerPanic { .. } => "worker_panic",
            PsiError::Syntax { .. } => "syntax",
            PsiError::Compile { .. } => "compile",
            PsiError::ForkAfterRun { .. } => "fork_after_run",
            PsiError::Snapshot { .. } => "snapshot",
        }
    }
}

impl fmt::Display for PsiError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PsiError::OutOfArea { access } => {
                write!(f, "memory access out of area: {access}")
            }
            PsiError::StackOverflow { area, limit } => {
                write!(f, "{area} stack overflow (limit {limit} words)")
            }
            PsiError::UndefinedPredicate { name } => {
                write!(f, "undefined predicate {name}")
            }
            PsiError::TypeError { builtin, expected } => {
                write!(f, "type error in {builtin}: expected {expected}")
            }
            PsiError::EvalError { detail } => {
                write!(f, "arithmetic evaluation error: {detail}")
            }
            PsiError::ResourceExhausted {
                resource,
                limit,
                consumed,
            } => write!(
                f,
                "resource budget exhausted: {consumed} {resource} consumed (limit {limit})"
            ),
            PsiError::WorkerPanic { context, detail } => {
                write!(f, "worker panicked running {context}: {detail}")
            }
            PsiError::Syntax {
                line,
                column,
                detail,
            } => write!(f, "syntax error at {line}:{column}: {detail}"),
            PsiError::Compile { detail } => write!(f, "compile error: {detail}"),
            PsiError::ForkAfterRun { detail } => {
                write!(f, "machine is not forkable: {detail}")
            }
            PsiError::Snapshot { detail } => write!(f, "snapshot error: {detail}"),
        }
    }
}

impl std::error::Error for PsiError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_display_lowercase_without_period() {
        let errors = [
            PsiError::OutOfArea {
                access: "read p0:heap:0x10".into(),
            },
            PsiError::StackOverflow {
                area: "local",
                limit: 4096,
            },
            PsiError::UndefinedPredicate {
                name: "foo/3".into(),
            },
            PsiError::TypeError {
                builtin: "is/2".into(),
                expected: "integer",
            },
            PsiError::EvalError {
                detail: "division by zero".into(),
            },
            PsiError::ResourceExhausted {
                resource: Resource::Steps,
                limit: 10,
                consumed: 12,
            },
            PsiError::WorkerPanic {
                context: "workload 'nreverse' (goal nrev([1], R))".into(),
                detail: "index out of bounds".into(),
            },
            PsiError::Syntax {
                line: 3,
                column: 7,
                detail: "unexpected token".into(),
            },
            PsiError::Compile {
                detail: "head is not callable".into(),
            },
            PsiError::ForkAfterRun {
                detail: "machine has compiled 3 queries".into(),
            },
            PsiError::Snapshot {
                detail: "unsupported schema psi-snapshot-v9".into(),
            },
        ];
        for e in errors {
            let msg = e.to_string();
            assert!(!msg.is_empty());
            assert!(!msg.ends_with('.'), "{msg}");
            assert!(msg.chars().next().unwrap().is_lowercase(), "{msg}");
        }
    }

    #[test]
    fn every_resource_displays_distinctly() {
        let all = [
            Resource::Steps,
            Resource::HeapWords,
            Resource::LocalWords,
            Resource::GlobalWords,
            Resource::ControlWords,
            Resource::TrailWords,
            Resource::WallClockMs,
        ];
        let labels: Vec<String> = all.iter().map(|r| r.to_string()).collect();
        for (i, a) in labels.iter().enumerate() {
            for b in &labels[i + 1..] {
                assert_ne!(a, b);
            }
        }
    }

    #[test]
    fn wire_codes_are_distinct_nonzero_and_labelled() {
        let errors = [
            PsiError::OutOfArea { access: "x".into() },
            PsiError::StackOverflow {
                area: "local",
                limit: 1,
            },
            PsiError::UndefinedPredicate { name: "f/1".into() },
            PsiError::TypeError {
                builtin: "is/2".into(),
                expected: "integer",
            },
            PsiError::EvalError { detail: "x".into() },
            PsiError::ResourceExhausted {
                resource: Resource::Steps,
                limit: 1,
                consumed: 2,
            },
            PsiError::WorkerPanic {
                context: "x".into(),
                detail: "y".into(),
            },
            PsiError::Syntax {
                line: 1,
                column: 1,
                detail: "x".into(),
            },
            PsiError::Compile { detail: "x".into() },
            PsiError::ForkAfterRun { detail: "x".into() },
            PsiError::Snapshot { detail: "x".into() },
        ];
        let mut seen = std::collections::HashSet::new();
        for e in &errors {
            let code = e.wire_code();
            assert!(code > 0, "{e}");
            assert!(seen.insert(code), "duplicate wire code {code}");
            let kind = e.wire_kind();
            assert!(!kind.is_empty());
            assert!(kind.chars().all(|c| c.is_ascii_lowercase() || c == '_'));
        }
        // Codes 1..=11 are claimed, in variant declaration order.
        assert_eq!(errors[0].wire_code(), 1);
        assert_eq!(errors[8].wire_code(), 9);
        assert_eq!(errors[9].wire_code(), 10);
        assert_eq!(errors[10].wire_code(), 11);
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_bounds<T: std::error::Error + Send + Sync + 'static>() {}
        assert_bounds::<PsiError>();
    }
}
