//! Logical memory areas and addresses.
//!
//! The PSI allocates its four stacks and the heap to *independent
//! logical address spaces* called areas (§2.1). A logical address is
//! therefore (process, area, offset); the memory unit translates it to
//! a physical location through a hardware translation table
//! (modelled in `psi-mem`).

use std::fmt;

/// Number of distinct memory areas.
pub const AREA_COUNT: usize = 5;

/// One of the PSI's five logical memory areas (§2.1).
///
/// The heap holds instruction code and rewritable heap vectors and is
/// shared by all processes; the four stacks are per process.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(u8)]
pub enum Area {
    /// Instruction code and heap vectors; shared by all processes.
    Heap = 0,
    /// Local variables of clause activations.
    LocalStack = 1,
    /// Variables appearing in compound terms (structure-copy target).
    GlobalStack = 2,
    /// 10-word control frames: environments and choice points.
    ControlStack = 3,
    /// Addresses of variables to unbind on backtracking.
    TrailStack = 4,
}

impl Area {
    /// All areas in index order.
    pub const ALL: [Area; AREA_COUNT] = [
        Area::Heap,
        Area::LocalStack,
        Area::GlobalStack,
        Area::ControlStack,
        Area::TrailStack,
    ];

    /// The dense index of the area (0..[`AREA_COUNT`]).
    pub fn index(self) -> usize {
        self as usize
    }

    /// Decodes an area from its dense index.
    pub fn from_index(index: usize) -> Option<Area> {
        Area::ALL.get(index).copied()
    }

    /// Short column label used by the table generators.
    pub fn label(self) -> &'static str {
        match self {
            Area::Heap => "heap",
            Area::LocalStack => "local",
            Area::GlobalStack => "global",
            Area::ControlStack => "control",
            Area::TrailStack => "trail",
        }
    }

    /// Is this one of the four stack areas?
    pub fn is_stack(self) -> bool {
        self != Area::Heap
    }
}

impl fmt::Display for Area {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Identifier of a PSI process (§2.1: "concurrent execution of
/// multiple processes ... stack areas for each program are allocated
/// to independent logical spaces").
///
/// Two bits of the logical address select the process, so at most four
/// processes exist simultaneously; this matches what the WINDOW
/// workload needs (user process + I/O service processes).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ProcessId(u8);

impl ProcessId {
    /// The initial user process.
    pub const ZERO: ProcessId = ProcessId(0);
    /// Maximum number of simultaneous processes.
    pub const MAX_PROCESSES: usize = 4;

    /// Creates a process id.
    ///
    /// # Panics
    ///
    /// Panics if `id >= 4` (the address format reserves two bits).
    pub fn new(id: u8) -> ProcessId {
        assert!(
            (id as usize) < Self::MAX_PROCESSES,
            "process id {id} out of range"
        );
        ProcessId(id)
    }

    /// The raw id.
    pub fn get(self) -> u8 {
        self.0
    }

    /// Dense index, for per-process tables.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for ProcessId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

/// A 32-bit logical address: process (2 bits) | area (3 bits) |
/// word offset (27 bits).
///
/// ```
/// use psi_core::{Address, Area, ProcessId};
/// let a = Address::new(ProcessId::new(1), Area::TrailStack, 123);
/// assert_eq!(a.area(), Area::TrailStack);
/// assert_eq!(a.offset(), 123);
/// assert_eq!(a.process().get(), 1);
/// assert_eq!(a.offset_by(2).offset(), 125);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Address(u32);

const OFFSET_BITS: u32 = 27;
const OFFSET_MASK: u32 = (1 << OFFSET_BITS) - 1;
const AREA_SHIFT: u32 = OFFSET_BITS;
const PROC_SHIFT: u32 = OFFSET_BITS + 3;

impl Address {
    /// Builds a logical address.
    ///
    /// # Panics
    ///
    /// Panics if `offset` does not fit in 27 bits.
    pub fn new(process: ProcessId, area: Area, offset: u32) -> Address {
        assert!(offset <= OFFSET_MASK, "offset {offset} out of range");
        Address(((process.get() as u32) << PROC_SHIFT) | ((area as u32) << AREA_SHIFT) | offset)
    }

    /// Address in the shared heap area (the heap belongs to process 0's
    /// address space but is shared by convention).
    pub fn heap(offset: u32) -> Address {
        Address::new(ProcessId::ZERO, Area::Heap, offset)
    }

    /// The process field.
    pub fn process(self) -> ProcessId {
        ProcessId((self.0 >> PROC_SHIFT) as u8 & 0b11)
    }

    /// The area field.
    pub fn area(self) -> Area {
        Area::from_index(((self.0 >> AREA_SHIFT) & 0b111) as usize)
            .expect("address encodes a valid area by construction")
    }

    /// The word offset inside the area.
    pub fn offset(self) -> u32 {
        self.0 & OFFSET_MASK
    }

    /// The raw 32-bit encoding (what travels on the simulated address
    /// bus and what the cache indexes on).
    pub fn raw(self) -> u32 {
        self.0
    }

    /// Rebuilds an address from its raw encoding.
    ///
    /// Returns `None` if the area field is invalid.
    pub fn from_raw(raw: u32) -> Option<Address> {
        Area::from_index(((raw >> AREA_SHIFT) & 0b111) as usize)?;
        Some(Address(raw))
    }

    /// The address `delta` words beyond this one (same process, same
    /// area).
    ///
    /// # Panics
    ///
    /// Panics if the result overflows the 27-bit offset.
    pub fn offset_by(self, delta: u32) -> Address {
        Address::new(self.process(), self.area(), self.offset() + delta)
    }

    /// The address `delta` words before this one.
    ///
    /// # Panics
    ///
    /// Panics if the offset would become negative.
    pub fn back_by(self, delta: u32) -> Address {
        Address::new(
            self.process(),
            self.area(),
            self.offset()
                .checked_sub(delta)
                .expect("address offset underflow"),
        )
    }
}

impl fmt::Debug for Address {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}:{:#x}", self.process(), self.area(), self.offset())
    }
}

impl fmt::Display for Address {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn area_index_roundtrip() {
        for area in Area::ALL {
            assert_eq!(Area::from_index(area.index()), Some(area));
        }
        assert_eq!(Area::from_index(5), None);
    }

    #[test]
    fn address_fields_roundtrip() {
        for p in 0..4u8 {
            for area in Area::ALL {
                for offset in [0u32, 1, 7, 1 << 20, OFFSET_MASK] {
                    let a = Address::new(ProcessId::new(p), area, offset);
                    assert_eq!(a.process().get(), p);
                    assert_eq!(a.area(), area);
                    assert_eq!(a.offset(), offset);
                    assert_eq!(Address::from_raw(a.raw()), Some(a));
                }
            }
        }
    }

    /// `from_raw` over the whole 3-bit area field: the five valid
    /// encodings decode to their area, and the three invalid encodings
    /// (5, 6, 7) are rejected — for every process and representative
    /// offset, so a flipped area bit in a persisted trace can never
    /// resurface as a different valid address.
    #[test]
    fn from_raw_covers_all_eight_area_encodings() {
        for p in 0..4u32 {
            for offset in [0u32, 1, OFFSET_MASK] {
                for area_bits in 0..8u32 {
                    let raw = (p << PROC_SHIFT) | (area_bits << AREA_SHIFT) | offset;
                    match Address::from_raw(raw) {
                        Some(a) => {
                            assert!(
                                (area_bits as usize) < AREA_COUNT,
                                "invalid area {area_bits} decoded"
                            );
                            assert_eq!(a.area().index(), area_bits as usize);
                            assert_eq!(a.process().get(), p as u8);
                            assert_eq!(a.offset(), offset);
                            assert_eq!(a.raw(), raw);
                        }
                        None => assert!(
                            (area_bits as usize) >= AREA_COUNT,
                            "valid area {area_bits} rejected"
                        ),
                    }
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn oversized_offset_panics() {
        let _ = Address::new(ProcessId::ZERO, Area::Heap, OFFSET_MASK + 1);
    }

    #[test]
    fn offset_arithmetic() {
        let a = Address::new(ProcessId::ZERO, Area::LocalStack, 100);
        assert_eq!(a.offset_by(5).offset(), 105);
        assert_eq!(a.offset_by(5).back_by(5), a);
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn back_by_underflow_panics() {
        let a = Address::new(ProcessId::ZERO, Area::LocalStack, 1);
        let _ = a.back_by(2);
    }

    #[test]
    fn distinct_areas_have_distinct_raw_spaces() {
        let a = Address::new(ProcessId::ZERO, Area::LocalStack, 0);
        let b = Address::new(ProcessId::ZERO, Area::GlobalStack, 0);
        assert_ne!(a.raw(), b.raw());
        let c = Address::new(ProcessId::new(1), Area::LocalStack, 0);
        assert_ne!(a.raw(), c.raw());
    }
}
