//! Typed observability events.
//!
//! Every instrumented subsystem (the interpreter dispatch loop, the
//! cache-backed memory bus, the resource governor) emits the same
//! fixed-size [`ObsEvent`] record into a bounded ring buffer (the
//! `EventRing` in `psi-obs`). Events are pure `Copy` data: recording
//! one is a bit copy into pre-allocated storage, never a heap
//! allocation, so tracing can be left on around the hot path.
//!
//! The numeric `code` of each [`EventKind`] and the payload layout are
//! stable — they are the wire format of the JSON-lines exporter in
//! `psi-tools` — so add new kinds at the end and never renumber.

use std::fmt;

/// What an [`ObsEvent`] describes. The `u8` code is the stable wire
/// encoding used by the event exporter.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum EventKind {
    /// One goal dispatch in the interpreter main loop.
    /// Payload: `a` = code pointer of the dispatched goal word.
    Dispatch = 0,
    /// One counted memory access. Payload: `a` = cache command code
    /// (0 read, 1 write, 2 write-stack), `b` = memory-area index
    /// ([`crate::Area`] order), `c` = 1 on a cache hit, 0 on a miss.
    CacheAccess = 1,
    /// One backtrack (a choice point was retried or discarded).
    /// Payload: `a` = choice points remaining afterwards.
    Backtrack = 2,
    /// One periodic resource-governor budget check (every
    /// `GOVERNOR_INTERVAL` dispatches). No payload.
    GovernorCheck = 3,
    /// A governor budget trip. Payload: `a` = exhausted resource code
    /// ([`crate::Resource::code`]).
    GovernorTrip = 4,
    /// One first-argument index lookup at a call (only emitted when
    /// clause indexing is enabled). Payload: `a` = surviving candidate
    /// clauses, `b` = the predicate's total clauses, `c` = 1 when the
    /// single surviving candidate was entered without a choice point.
    IndexLookup = 5,
}

impl EventKind {
    /// Every kind, in code order.
    pub const ALL: [EventKind; 6] = [
        EventKind::Dispatch,
        EventKind::CacheAccess,
        EventKind::Backtrack,
        EventKind::GovernorCheck,
        EventKind::GovernorTrip,
        EventKind::IndexLookup,
    ];

    /// The stable wire code.
    pub fn code(self) -> u8 {
        self as u8
    }

    /// Decodes a wire code; `None` for codes this build does not know.
    pub fn from_code(code: u8) -> Option<EventKind> {
        EventKind::ALL.get(code as usize).copied()
    }

    /// A short stable label (used in summaries and exports).
    pub fn label(self) -> &'static str {
        match self {
            EventKind::Dispatch => "dispatch",
            EventKind::CacheAccess => "cache",
            EventKind::Backtrack => "backtrack",
            EventKind::GovernorCheck => "governor_check",
            EventKind::GovernorTrip => "governor_trip",
            EventKind::IndexLookup => "index_lookup",
        }
    }
}

impl fmt::Display for EventKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// One observability event: a timestamped, fixed-size `Copy` record.
///
/// `step` is the microstep counter at the time of the event; the three
/// payload words are interpreted per [`EventKind`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ObsEvent {
    /// Microstep at which the event occurred.
    pub step: u64,
    /// What happened.
    pub kind: EventKind,
    /// First payload word (meaning depends on `kind`).
    pub a: u32,
    /// Second payload word.
    pub b: u32,
    /// Third payload word.
    pub c: u32,
}

impl ObsEvent {
    /// A dispatch event at `step` for the goal word at `code_ptr`.
    pub fn dispatch(step: u64, code_ptr: u32) -> ObsEvent {
        ObsEvent {
            step,
            kind: EventKind::Dispatch,
            a: code_ptr,
            b: 0,
            c: 0,
        }
    }

    /// A cache access event: `command` code, `area` index, hit flag.
    pub fn cache_access(step: u64, command: u32, area: u32, hit: bool) -> ObsEvent {
        ObsEvent {
            step,
            kind: EventKind::CacheAccess,
            a: command,
            b: area,
            c: hit as u32,
        }
    }

    /// A backtrack event with `remaining` live choice points.
    pub fn backtrack(step: u64, remaining: u32) -> ObsEvent {
        ObsEvent {
            step,
            kind: EventKind::Backtrack,
            a: remaining,
            b: 0,
            c: 0,
        }
    }

    /// A periodic governor budget check.
    pub fn governor_check(step: u64) -> ObsEvent {
        ObsEvent {
            step,
            kind: EventKind::GovernorCheck,
            a: 0,
            b: 0,
            c: 0,
        }
    }

    /// A governor budget trip on the resource with code `resource`.
    pub fn governor_trip(step: u64, resource: u32) -> ObsEvent {
        ObsEvent {
            step,
            kind: EventKind::GovernorTrip,
            a: resource,
            b: 0,
            c: 0,
        }
    }

    /// An index lookup that filtered `total` clauses down to
    /// `candidates`; `direct` marks a no-choice-point direct entry.
    pub fn index_lookup(step: u64, candidates: u32, total: u32, direct: bool) -> ObsEvent {
        ObsEvent {
            step,
            kind: EventKind::IndexLookup,
            a: candidates,
            b: total,
            c: direct as u32,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_round_trip_and_unknown_codes_decode_to_none() {
        for kind in EventKind::ALL {
            assert_eq!(EventKind::from_code(kind.code()), Some(kind));
        }
        assert_eq!(EventKind::from_code(EventKind::ALL.len() as u8), None);
        assert_eq!(EventKind::from_code(u8::MAX), None);
    }

    #[test]
    fn labels_are_distinct() {
        for (i, a) in EventKind::ALL.iter().enumerate() {
            for b in &EventKind::ALL[i + 1..] {
                assert_ne!(a.label(), b.label());
            }
        }
    }

    #[test]
    fn constructors_fill_payloads() {
        let e = ObsEvent::cache_access(7, 2, 1, true);
        assert_eq!(e.step, 7);
        assert_eq!(e.kind, EventKind::CacheAccess);
        assert_eq!((e.a, e.b, e.c), (2, 1, 1));
        assert_eq!(ObsEvent::backtrack(1, 3).a, 3);
        assert_eq!(ObsEvent::governor_trip(9, 0).kind, EventKind::GovernorTrip);
    }
}
