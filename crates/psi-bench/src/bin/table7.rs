//! Prints the table7 reproduction report.
fn main() {
    println!("{}", psi_bench::table7_report());
}
