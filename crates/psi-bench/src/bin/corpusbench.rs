//! Generated-corpus equivalence harness: generates a pinned-seed
//! workload corpus (`psi_workloads::corpus`), runs it under the
//! governed suite layer on all six measurement cells — fidelity,
//! throughput and compiled lanes × {linear, indexed} clause lookup —
//! and asserts that every cell reproduces the host-computed oracle
//! solutions bit-identically and that step counts agree across lanes
//! within each indexing profile. Writes a summary report to
//! `BENCH_corpus.json` at the repository root.
//!
//! Usage: `cargo run --release -p psi-bench --bin corpusbench --
//! [--quick] [--seed N] [--count N] [--out PATH]`.
//!
//! `--quick` shrinks the per-program size caps (CI smoke mode); the
//! corpus still spans every family and the default 500 programs.
//!
//! Exits nonzero if any program fails to run, diverges from its
//! oracle, or differs between cells.

use psi_machine::MachineConfig;
use psi_workloads::corpus::{generate, CorpusProgram, CorpusSpec};
use psi_workloads::runner::{run_suite_governed, Outcome, SuiteOptions};
use psi_workloads::Workload;
use std::process::ExitCode;

/// Pinned master seed: the corpus CI runs and EXPERIMENTS.md record.
const PINNED_SEED: u64 = 0x5EED_2026;
const DEFAULT_COUNT: usize = 500;

struct CellResult {
    cell: String,
    indexed: bool,
    solutions: Vec<Vec<String>>,
    steps: Vec<u64>,
    errors: Vec<String>,
}

fn run_cell(name: &str, base: MachineConfig, indexed: bool, workloads: &[Workload]) -> CellResult {
    let mut config = base;
    config.clause_indexing = indexed;
    let report = run_suite_governed(workloads, &config, &SuiteOptions::default());
    let mut solutions = Vec::with_capacity(report.rows.len());
    let mut steps = Vec::with_capacity(report.rows.len());
    let mut errors = Vec::new();
    for row in &report.rows {
        match &row.outcome {
            Outcome::Ok(run) => {
                solutions.push(run.solutions.clone());
                steps.push(run.stats.steps);
            }
            other => {
                errors.push(format!("{}: {:?}", row.name, other));
                solutions.push(Vec::new());
                steps.push(0);
            }
        }
    }
    CellResult {
        cell: name.to_owned(),
        indexed,
        solutions,
        steps,
        errors,
    }
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn main() -> ExitCode {
    let mut seed = PINNED_SEED;
    let mut count = DEFAULT_COUNT;
    let mut quick = false;
    let mut out_path: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => quick = true,
            "--seed" => match args.next().and_then(|v| v.parse().ok()) {
                Some(v) => seed = v,
                None => {
                    eprintln!("corpusbench: --seed requires an integer");
                    return ExitCode::FAILURE;
                }
            },
            "--count" => match args.next().and_then(|v| v.parse().ok()) {
                Some(v) => count = v,
                None => {
                    eprintln!("corpusbench: --count requires an integer");
                    return ExitCode::FAILURE;
                }
            },
            "--out" => match args.next() {
                Some(p) => out_path = Some(p),
                None => {
                    eprintln!("corpusbench: --out requires a path");
                    return ExitCode::FAILURE;
                }
            },
            other => {
                eprintln!("corpusbench: unknown argument `{other}`");
                eprintln!("usage: corpusbench [--quick] [--seed N] [--count N] [--out PATH]");
                return ExitCode::FAILURE;
            }
        }
    }
    let out_path = out_path
        .unwrap_or_else(|| concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_corpus.json").into());

    let spec = if quick {
        CorpusSpec::quick(seed, count)
    } else {
        CorpusSpec::new(seed, count)
    };
    let corpus: Vec<CorpusProgram> = generate(&spec);
    let workloads: Vec<Workload> = corpus.iter().map(|p| p.workload.clone()).collect();
    println!(
        "corpusbench: {} programs, seed {seed:#x}{}",
        corpus.len(),
        if quick { " (quick caps)" } else { "" }
    );

    let cells = [
        ("fidelity/linear", MachineConfig::psi(), false),
        ("fidelity/indexed", MachineConfig::psi(), true),
        ("throughput/linear", MachineConfig::psi_throughput(), false),
        ("throughput/indexed", MachineConfig::psi_throughput(), true),
        ("compiled/linear", MachineConfig::psi_compiled(), false),
        ("compiled/indexed", MachineConfig::psi_compiled(), true),
    ];
    let results: Vec<CellResult> = cells
        .iter()
        .map(|(name, base, indexed)| run_cell(name, base.clone(), *indexed, &workloads))
        .collect();

    let mut mismatches: Vec<String> = Vec::new();
    for r in &results {
        for e in &r.errors {
            mismatches.push(format!("[{}] {}", r.cell, e));
        }
    }
    for (i, p) in corpus.iter().enumerate() {
        // Oracle check on every cell.
        for r in &results {
            if r.solutions[i] != p.expected {
                mismatches.push(format!(
                    "[{}] {} seed {:#x}: solutions diverge from oracle \
                     (got {:?}, want {:?})",
                    r.cell, p.workload.name, p.seed, r.solutions[i], p.expected
                ));
            }
        }
        // Lane invariance: step counts agree within an indexing
        // profile (indexing itself legitimately changes the count).
        for indexed in [false, true] {
            let lane_steps: Vec<(&str, u64)> = results
                .iter()
                .filter(|r| r.indexed == indexed)
                .map(|r| (r.cell.as_str(), r.steps[i]))
                .collect();
            if lane_steps.iter().any(|(_, s)| *s != lane_steps[0].1) {
                mismatches.push(format!(
                    "{} seed {:#x}: step counts diverge across lanes: {lane_steps:?}",
                    p.workload.name, p.seed
                ));
            }
        }
    }

    let mut families: Vec<(&str, usize)> = Vec::new();
    for p in &corpus {
        match families.iter_mut().find(|(f, _)| *f == p.family) {
            Some((_, n)) => *n += 1,
            None => families.push((p.family, 1)),
        }
    }
    families.sort_unstable();
    for (family, n) in &families {
        println!("  {family:<12} {n} programs");
    }
    for m in mismatches.iter().take(20) {
        eprintln!("corpusbench: {m}");
    }
    if mismatches.len() > 20 {
        eprintln!("corpusbench: ... and {} more", mismatches.len() - 20);
    }

    let mut json = String::new();
    json.push_str("{\n  \"schema\": \"psi-bench-corpus-v1\",\n");
    json.push_str(&format!("  \"seed\": {seed},\n"));
    json.push_str(&format!("  \"count\": {},\n", corpus.len()));
    json.push_str(&format!("  \"quick\": {quick},\n"));
    json.push_str("  \"families\": {\n");
    for (j, (family, n)) in families.iter().enumerate() {
        json.push_str(&format!(
            "    \"{family}\": {n}{}\n",
            if j + 1 < families.len() { "," } else { "" }
        ));
    }
    json.push_str("  },\n");
    json.push_str("  \"cells\": [\n");
    for (j, r) in results.iter().enumerate() {
        let total_steps: u64 = r.steps.iter().sum();
        json.push_str(&format!(
            "    {{ \"cell\": \"{}\", \"ok\": {}, \"total_steps\": {} }}{}\n",
            r.cell,
            corpus.len() - r.errors.len(),
            total_steps,
            if j + 1 < results.len() { "," } else { "" }
        ));
    }
    json.push_str("  ],\n");
    json.push_str(&format!("  \"mismatches\": {},\n", mismatches.len()));
    json.push_str("  \"mismatch_detail\": [\n");
    for (j, m) in mismatches.iter().take(20).enumerate() {
        json.push_str(&format!(
            "    \"{}\"{}\n",
            json_escape(m),
            if j + 1 < mismatches.len().min(20) {
                ","
            } else {
                ""
            }
        ));
    }
    json.push_str("  ]\n}\n");
    if let Err(e) = std::fs::write(&out_path, json) {
        eprintln!("corpusbench: cannot write {out_path}: {e}");
        return ExitCode::FAILURE;
    }
    println!("wrote {out_path}");

    if mismatches.is_empty() {
        println!(
            "corpusbench: all {} programs bit-identical across {} cells",
            corpus.len(),
            results.len()
        );
        ExitCode::SUCCESS
    } else {
        eprintln!("corpusbench: {} mismatches", mismatches.len());
        ExitCode::FAILURE
    }
}
