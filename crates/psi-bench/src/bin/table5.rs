//! Prints the table5 reproduction report.
fn main() {
    println!("{}", psi_bench::table5_report());
}
