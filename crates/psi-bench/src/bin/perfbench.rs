//! Microbenchmark harness: runs the Table 1 suite under the
//! paper-faithful (linear) and first-argument-indexing profiles,
//! checks both produce identical solutions, and writes the
//! measurements to `BENCH_psi.json` at the repository root.
//!
//! Usage: `cargo run --release -p psi-bench --bin perfbench --
//! [--quick] [--out PATH]`.
//!
//! `--quick` runs a single repetition with no warmup (CI smoke mode);
//! wall times are then noisy, but the equivalence check and simulator
//! statistics are identical to a full run. Exits nonzero if any
//! workload's solutions differ between profiles.

use psi_bench::perf::{run, PerfOptions};
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut options = PerfOptions::full();
    let mut out_path: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => options = PerfOptions::quick(),
            "--out" => match args.next() {
                Some(p) => out_path = Some(p),
                None => {
                    eprintln!("perfbench: --out requires a path");
                    return ExitCode::FAILURE;
                }
            },
            other => {
                eprintln!("perfbench: unknown argument `{other}`");
                eprintln!("usage: perfbench [--quick] [--out PATH]");
                return ExitCode::FAILURE;
            }
        }
    }
    let out_path = out_path
        .unwrap_or_else(|| concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_psi.json").into());

    let report = match run(options) {
        Ok(report) => report,
        Err(e) => {
            eprintln!("perfbench: suite failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    print!("{}", report.render());

    if let Err(e) = std::fs::write(&out_path, report.to_json()) {
        eprintln!("perfbench: cannot write {out_path}: {e}");
        return ExitCode::FAILURE;
    }
    println!("wrote {out_path}");

    let mismatches = report.mismatches();
    if !mismatches.is_empty() {
        for row in mismatches {
            eprintln!(
                "perfbench: `{}` solutions differ between profiles",
                row.program
            );
        }
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
