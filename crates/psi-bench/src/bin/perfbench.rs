//! Microbenchmark harness: runs the Table 1 suite under the
//! paper-faithful (linear) and first-argument-indexing profiles, in
//! the fidelity, throughput and compiled lanes, checks all six cells
//! produce identical solutions (and the lanes identical step counts),
//! and writes the measurements to `BENCH_psi.json` at the repository
//! root.
//!
//! Usage: `cargo run --release -p psi-bench --bin perfbench --
//! [--quick] [--rows FILTER] [--check-steps] [--out PATH]`.
//!
//! `--quick` runs a single repetition with no warmup (CI smoke mode);
//! wall times are then noisy, but the equivalence checks and
//! simulator statistics are identical to a full run.
//!
//! `--rows FILTER` runs a subset of the 19 programs: comma-separated
//! tokens, each a 1-based row number or a case-insensitive substring
//! of the program name (e.g. `--rows lisp` or `--rows 1,7,qsort`).
//!
//! `--check-steps` compares the fidelity lane's per-program microstep
//! totals against the previously written report at the output path
//! (the microstep-regression gate) before overwriting it.
//!
//! Exits nonzero if any workload's solutions differ between cells,
//! any deterministic counter differs between lanes, or `--check-steps`
//! finds a microstep drift.

use psi_bench::perf::{archived_steps, run_rows, PerfOptions, PerfReport};
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut options = PerfOptions::full();
    let mut out_path: Option<String> = None;
    let mut rows_filter: Option<String> = None;
    let mut check_steps = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => options = PerfOptions::quick(),
            "--check-steps" => check_steps = true,
            "--out" => match args.next() {
                Some(p) => out_path = Some(p),
                None => {
                    eprintln!("perfbench: --out requires a path");
                    return ExitCode::FAILURE;
                }
            },
            "--rows" => match args.next() {
                Some(spec) => rows_filter = Some(spec),
                None => {
                    eprintln!("perfbench: --rows requires a filter (row numbers or name substrings, comma-separated)");
                    return ExitCode::FAILURE;
                }
            },
            other => {
                eprintln!("perfbench: unknown argument `{other}`");
                eprintln!(
                    "usage: perfbench [--quick] [--rows FILTER] [--check-steps] [--out PATH]"
                );
                return ExitCode::FAILURE;
            }
        }
    }
    let out_path = out_path
        .unwrap_or_else(|| concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_psi.json").into());

    // Validate the output location up front: a missing parent
    // directory should be a clear error before minutes of
    // measurement, not an I/O failure after them.
    let path = std::path::Path::new(&out_path);
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() && !parent.is_dir() {
            eprintln!(
                "perfbench: cannot write `{out_path}`: output directory `{}` does not exist \
                 (create it first, or pass a different --out path)",
                parent.display()
            );
            return ExitCode::FAILURE;
        }
    }

    // Read the archived report before overwriting it.
    let archived = if check_steps {
        match std::fs::read_to_string(path) {
            Ok(json) => archived_steps(&json),
            Err(e) => {
                eprintln!("perfbench: --check-steps needs an existing report at `{out_path}`: {e}");
                return ExitCode::FAILURE;
            }
        }
    } else {
        Vec::new()
    };

    let report = match run_rows(options, rows_filter.as_deref()) {
        Ok(report) => report,
        Err(e) => {
            eprintln!("perfbench: suite failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    if report.rows.is_empty() {
        eprintln!(
            "perfbench: --rows `{}` matched no Table 1 programs",
            rows_filter.as_deref().unwrap_or("")
        );
        return ExitCode::FAILURE;
    }
    print!("{}", report.render());

    let mut failed = false;
    if check_steps && !steps_match_archive(&report, &archived) {
        failed = true;
    }

    // A row subset is a spot check, not the archive: only a full run
    // may overwrite the repository's benchmark report.
    if rows_filter.is_none() {
        if let Err(e) = std::fs::write(path, report.to_json()) {
            eprintln!("perfbench: cannot write {out_path}: {e}");
            return ExitCode::FAILURE;
        }
        println!("wrote {out_path}");
    }

    for row in report.mismatches() {
        eprintln!(
            "perfbench: `{}` solutions differ between profiles/lanes",
            row.program
        );
        failed = true;
    }
    for row in report.lane_mismatches() {
        eprintln!(
            "perfbench: `{}` deterministic counters differ between lanes \
             (fidelity steps {}, throughput steps {}, compiled steps {})",
            row.program,
            row.fidelity.linear.steps,
            row.throughput.linear.steps,
            row.compiled.linear.steps
        );
        failed = true;
    }
    if failed {
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

/// The microstep-regression gate: every program present in both the
/// archived report and this run must have identical fidelity-lane
/// linear-profile step totals.
fn steps_match_archive(report: &PerfReport, archived: &[(String, u64)]) -> bool {
    let mut ok = true;
    let mut compared = 0usize;
    for row in &report.rows {
        if let Some((_, old)) = archived.iter().find(|(name, _)| *name == row.program) {
            compared += 1;
            let new = row.fidelity.linear.steps;
            if new != *old {
                eprintln!(
                    "perfbench: microstep regression on `{}`: archived {old} steps, measured {new}",
                    row.program
                );
                ok = false;
            }
        }
    }
    if compared == 0 {
        eprintln!("perfbench: --check-steps found no overlapping programs in the archived report");
        return false;
    }
    println!("check-steps: {compared} programs match the archived microstep totals");
    ok
}
