//! Design-space sweep harness: runs a declarative grid of cache
//! geometries × machine configurations × workloads through the
//! `psi_bench::sweep` engine (Figure 1 at modern scale) and writes
//! the per-cell measurements to `BENCH_sweep.json` at the repository
//! root.
//!
//! Usage: `cargo run --release -p psi-bench --bin sweepbench --
//! [--quick] [--mode fork|replay|fresh] [--threads N] [--shard I/N]
//! [--cells DIR] [--limit N] [--compare-fresh] [--out PATH]`
//!
//! or: `sweepbench diff OLD.json NEW.json` — compare two sweep
//! reports cell by cell on the deterministic fields (steps, simulated
//! time, solutions, hit ratio, improvement ratio; wall times are
//! untracked) and exit nonzero on drift.
//!
//! The default grid is ~600 cells: six capacities × {1,2} ways ×
//! {4,8}-word blocks × both write policies on the fidelity lane, with
//! linear, indexed and governed machine configurations, over four
//! workloads, plus the throughput and compiled lanes on the stock
//! geometry. `--quick` shrinks it to a seconds-scale smoke grid for
//! CI.
//!
//! `--cells DIR` persists every completed cell as one flat-JSON file
//! under its content-addressed key; a restarted sweep with the same
//! directory resumes, skipping completed cells byte-identically.
//! `--shard i/n` runs only the cells whose grid index ≡ i (mod n) —
//! shards are disjoint and union to the full grid. `--limit N` stops
//! after N computed cells (testing aid: simulates a killed run).
//!
//! `--compare-fresh` runs the same grid a second time in `fresh` mode
//! (per-cell re-parse and re-consult — the pre-engine behaviour),
//! verifies both runs agree bit-for-bit on every deterministic field,
//! and archives the wall-time comparison in the report.
//!
//! Exits nonzero if any cell's outcome is not ok, if the
//! `--compare-fresh` cross-check drifts, or on a malformed
//! invocation.

use psi_bench::drift::Tolerance;
use psi_bench::sweep::{
    diff_cells, diff_reports, run_sweep, ConfigPoint, GeometryAxis, Lane, ModeComparison,
    SweepMode, SweepOptions, SweepSpec,
};
use psi_cache::WritePolicy;
use psi_workloads::{contest, parsers, window};
use std::process::ExitCode;
use std::time::Instant;

/// The default grid: Figure 1's capacity axis extended with
/// associativity, block size and write policy, crossed with the three
/// machine-configuration points the repo distinguishes (linear,
/// indexed, governed) and a four-workload mix, plus the fast lanes on
/// the stock geometry.
fn default_spec() -> SweepSpec {
    let (geometries, invalid) = GeometryAxis {
        capacities: vec![32, 64, 256, 1024, 4096, 8192],
        ways: vec![1, 2],
        block_words: vec![4, 8],
        policies: vec![WritePolicy::StoreIn, WritePolicy::StoreThrough],
        write_stack_no_fetch: vec![true],
    }
    .expand();
    assert_eq!(invalid, 0, "default grid must not contain invalid corners");
    SweepSpec {
        name: "default".into(),
        workloads: vec![
            contest::nreverse(30),
            contest::quick_sort(50),
            parsers::bup(1),
            window::window(1),
        ],
        configs: vec![
            ConfigPoint::fidelity("A-linear", false),
            ConfigPoint::fidelity("A-indexed", true),
            // A governed fidelity point with a budget far above any
            // workload in the grid: exercises the governor code path
            // while staying deterministic and completing every cell.
            ConfigPoint {
                name: "A-governed".into(),
                lane: Lane::Fidelity,
                clause_indexing: false,
                max_steps: Some(200_000_000),
            },
            ConfigPoint {
                name: "B-linear".into(),
                lane: Lane::Throughput,
                clause_indexing: false,
                max_steps: None,
            },
            ConfigPoint {
                name: "C-indexed".into(),
                lane: Lane::Compiled,
                clause_indexing: true,
                max_steps: None,
            },
        ],
        geometries,
    }
}

/// The CI smoke grid: two workloads, two configuration points, four
/// geometries — small enough to finish in seconds, wide enough to
/// touch every engine path (fidelity + fast lane, both ways counts).
fn quick_spec() -> SweepSpec {
    let (geometries, invalid) = GeometryAxis {
        capacities: vec![64, 8192],
        ways: vec![1, 2],
        block_words: vec![4],
        policies: vec![WritePolicy::StoreIn],
        write_stack_no_fetch: vec![true],
    }
    .expand();
    assert_eq!(invalid, 0, "quick grid must not contain invalid corners");
    SweepSpec {
        name: "quick".into(),
        workloads: vec![contest::nreverse(20), contest::quick_sort(30)],
        configs: vec![
            ConfigPoint::fidelity("A-linear", false),
            ConfigPoint {
                name: "C-indexed".into(),
                lane: Lane::Compiled,
                clause_indexing: true,
                max_steps: None,
            },
        ],
        geometries,
    }
}

fn run_diff(old_path: &str, new_path: &str) -> ExitCode {
    let read = |p: &str| match std::fs::read_to_string(p) {
        Ok(s) => Some(s),
        Err(e) => {
            eprintln!("sweepbench diff: cannot read `{p}`: {e}");
            None
        }
    };
    let (Some(old), Some(new)) = (read(old_path), read(new_path)) else {
        return ExitCode::FAILURE;
    };
    match diff_reports(&old, &new, Tolerance::EXACT) {
        Ok(diff) => {
            print!("{}", diff.render());
            if diff.has_drift() {
                ExitCode::FAILURE
            } else {
                ExitCode::SUCCESS
            }
        }
        Err(e) => {
            eprintln!("sweepbench diff: {e}");
            ExitCode::FAILURE
        }
    }
}

fn parse_shard(spec: &str) -> Option<(usize, usize)> {
    let (i, n) = spec.split_once('/')?;
    let (i, n) = (i.parse().ok()?, n.parse().ok()?);
    if n == 0 || i >= n {
        return None;
    }
    Some((i, n))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("diff") {
        if args.len() != 3 {
            eprintln!("usage: sweepbench diff OLD.json NEW.json");
            return ExitCode::FAILURE;
        }
        return run_diff(&args[1], &args[2]);
    }

    let mut quick = false;
    let mut options = SweepOptions::default();
    let mut compare_fresh = false;
    let mut out_path: Option<String> = None;
    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--quick" => quick = true,
            "--compare-fresh" => compare_fresh = true,
            "--mode" => match it.next().as_deref() {
                Some("fork") => options.mode = SweepMode::Fork,
                Some("replay") => options.mode = SweepMode::Replay,
                Some("fresh") => options.mode = SweepMode::Fresh,
                other => {
                    eprintln!(
                        "sweepbench: --mode requires fork|replay|fresh (got {})",
                        other.unwrap_or("nothing")
                    );
                    return ExitCode::FAILURE;
                }
            },
            "--threads" => match it.next().and_then(|v| v.parse().ok()) {
                Some(n) if n > 0 => options.threads = n,
                _ => {
                    eprintln!("sweepbench: --threads requires a positive integer");
                    return ExitCode::FAILURE;
                }
            },
            "--shard" => match it.next().as_deref().and_then(parse_shard) {
                Some(s) => options.shard = Some(s),
                None => {
                    eprintln!("sweepbench: --shard requires I/N with I < N (e.g. 0/2)");
                    return ExitCode::FAILURE;
                }
            },
            "--cells" => match it.next() {
                Some(dir) => options.cell_dir = Some(dir.into()),
                None => {
                    eprintln!("sweepbench: --cells requires a directory");
                    return ExitCode::FAILURE;
                }
            },
            "--limit" => match it.next().and_then(|v| v.parse().ok()) {
                Some(n) => options.limit = Some(n),
                None => {
                    eprintln!("sweepbench: --limit requires a cell count");
                    return ExitCode::FAILURE;
                }
            },
            "--out" => match it.next() {
                Some(p) => out_path = Some(p),
                None => {
                    eprintln!("sweepbench: --out requires a path");
                    return ExitCode::FAILURE;
                }
            },
            other => {
                eprintln!("sweepbench: unknown argument `{other}`");
                eprintln!(
                    "usage: sweepbench [--quick] [--mode fork|replay|fresh] [--threads N] \
                     [--shard I/N] [--cells DIR] [--limit N] [--compare-fresh] [--out PATH]\n\
                     \u{20}      sweepbench diff OLD.json NEW.json"
                );
                return ExitCode::FAILURE;
            }
        }
    }
    let out_path = out_path
        .unwrap_or_else(|| concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_sweep.json").into());
    let path = std::path::Path::new(&out_path);
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() && !parent.is_dir() {
            eprintln!(
                "sweepbench: cannot write `{out_path}`: output directory `{}` does not exist",
                parent.display()
            );
            return ExitCode::FAILURE;
        }
    }

    let spec = if quick { quick_spec() } else { default_spec() };
    eprintln!(
        "sweepbench: grid '{}' — {} workloads × {} configs × {} geometries, mode {}, {} threads",
        spec.name,
        spec.workloads.len(),
        spec.configs.len(),
        spec.geometries.len(),
        options.mode.label(),
        options.threads,
    );
    let mut report = run_sweep(&spec, &options);

    if compare_fresh {
        // Engine-vs-baseline timing: interleaved passes (engine,
        // fresh, engine, fresh), minimum wall per mode. Interleaving
        // cancels warm-up drift — a single engine-then-fresh sequence
        // hands the second run a warm process and biases the
        // comparison against the engine — and the minimum is the
        // standard noise-robust statistic for a deterministic
        // workload. Timing passes never touch the cell directory
        // (resume would let the engine skip its own work).
        eprintln!(
            "sweepbench: timing {} vs fresh (2 interleaved passes each)",
            options.mode.label()
        );
        let timed = |mode: SweepMode| -> (u64, psi_bench::sweep::SweepReport) {
            let opts = SweepOptions {
                mode,
                cell_dir: None,
                ..options.clone()
            };
            let t = Instant::now();
            let r = run_sweep(&spec, &opts);
            (t.elapsed().as_nanos() as u64, r)
        };
        let mut engine_wall_ns = u64::MAX;
        let mut fresh_wall_ns = u64::MAX;
        let mut fresh_cells = None;
        for _ in 0..2 {
            let (w, _) = timed(options.mode);
            engine_wall_ns = engine_wall_ns.min(w);
            let (w, fresh) = timed(SweepMode::Fresh);
            fresh_wall_ns = fresh_wall_ns.min(w);
            fresh_cells.get_or_insert(fresh.cells);
        }
        // The baseline must also agree bit-for-bit on every
        // deterministic field — the speed comparison is only valid
        // between runs that compute the same thing.
        let fresh_cells = fresh_cells.expect("two passes ran");
        let diff = diff_cells(&report.cells, &fresh_cells, Tolerance::EXACT);
        if diff.has_drift() {
            eprintln!(
                "sweepbench: {} run disagrees with the fresh baseline:\n{}",
                report.mode,
                diff.render()
            );
            return ExitCode::FAILURE;
        }
        report.comparison = Some(ModeComparison {
            engine_wall_ns,
            fresh_wall_ns,
        });
    }

    print!("{}", report.render());
    if let Err(e) = std::fs::write(path, report.to_json()) {
        eprintln!("sweepbench: cannot write `{out_path}`: {e}");
        return ExitCode::FAILURE;
    }
    eprintln!("sweepbench: wrote {out_path}");
    if report.all_ok() {
        ExitCode::SUCCESS
    } else {
        eprintln!("sweepbench: grid did not complete clean");
        ExitCode::FAILURE
    }
}
