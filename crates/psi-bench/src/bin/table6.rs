//! Prints the table6 reproduction report.
fn main() {
    println!("{}", psi_bench::table6_report());
}
