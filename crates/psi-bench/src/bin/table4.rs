//! Prints the table4 reproduction report.
fn main() {
    println!("{}", psi_bench::table4_report());
}
