//! Prints the figure1 reproduction report.
fn main() {
    println!("{}", psi_bench::figure1_report());
}
