//! Prints the table3 reproduction report.
fn main() {
    println!("{}", psi_bench::table3_report());
}
