//! Regenerates every archived table/figure and diffs it cell-by-cell
//! against EXPERIMENTS.md, exiting nonzero on unexplained drift.
//!
//! Usage: `cargo run --release -p psi-bench --bin drift_report
//! [path-to-EXPERIMENTS.md]`.

use psi_bench::drift::{drift_against, Tolerance};
use std::process::ExitCode;

fn main() -> ExitCode {
    let path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| concat!(env!("CARGO_MANIFEST_DIR"), "/../../EXPERIMENTS.md").into());
    let markdown = match std::fs::read_to_string(&path) {
        Ok(text) => text,
        Err(e) => {
            eprintln!("drift_report: cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let report = drift_against(&markdown, Tolerance::EXACT);
    print!("{}", report.render());
    if report.has_drift() {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
