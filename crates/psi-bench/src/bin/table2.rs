//! Prints the table2 reproduction report.
fn main() {
    println!("{}", psi_bench::table2_report());
}
