//! Prints the table1 reproduction report.
fn main() {
    println!("{}", psi_bench::table1_report());
}
