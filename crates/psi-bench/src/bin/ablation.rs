//! Prints the ablation reproduction report.
fn main() {
    println!("{}", psi_bench::ablation_report());
}
