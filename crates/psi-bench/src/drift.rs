//! Drift detection between the archived reports in EXPERIMENTS.md and
//! freshly regenerated ones.
//!
//! EXPERIMENTS.md stores the verbatim output of every generator binary
//! in a fenced code block under a `## Table N — ...` / `## Figure 1 —
//! ...` / `## Ablation — ...` heading. A byte-compare of those blocks
//! is brittle (one shifted column re-flows a whole row) and
//! uninformative (it cannot say *which* measurement moved). This
//! module instead pairs each archived line with its regenerated
//! counterpart, extracts the numeric cells, and reports **per-cell
//! deltas**: which section, which line, which column, archived vs
//! regenerated value, relative change.
//!
//! The wall-clock "Regeneration performance" section is deliberately
//! not tracked — it measures the host, not the simulator. Everything
//! the simulator produces is deterministic, so the default tolerance
//! is [`Tolerance::EXACT`]: any cell that moves is drift until a
//! change to the model explains it and the archive is regenerated.
//!
//! The `drift_report` binary runs [`drift_against`] on the repo's
//! EXPERIMENTS.md and exits nonzero on drift; CI runs it so an
//! unexplained change to any archived measurement fails the build.

use crate::{
    ablation_report, figure1_report, table1_report, table2_report, table3_report, table4_report,
    table5_report, table6_report, table7_report,
};
use std::fmt::Write as _;

/// A report generator paired with its archive key.
pub type TrackedSection = (&'static str, fn() -> String);

/// The archived sections the drift pass tracks, each with the
/// generator that regenerates it. Keys match the EXPERIMENTS.md
/// heading text before the em dash.
pub const TRACKED_SECTIONS: [TrackedSection; 9] = [
    ("Table 1", table1_report as fn() -> String),
    ("Table 2", table2_report as fn() -> String),
    ("Table 3", table3_report as fn() -> String),
    ("Table 4", table4_report as fn() -> String),
    ("Table 5", table5_report as fn() -> String),
    ("Table 6", table6_report as fn() -> String),
    ("Table 7", table7_report as fn() -> String),
    ("Figure 1", figure1_report as fn() -> String),
    ("Ablation", ablation_report as fn() -> String),
];

/// How far a regenerated cell may sit from its archived value before
/// it counts as drift: `|archived - regenerated| <= abs + rel *
/// |archived|`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Tolerance {
    /// Absolute slack, in the cell's own unit.
    pub abs: f64,
    /// Relative slack, as a fraction of the archived value.
    pub rel: f64,
}

impl Tolerance {
    /// No slack at all — the simulator is deterministic, so the
    /// archives must reproduce to the printed digit.
    pub const EXACT: Tolerance = Tolerance { abs: 0.0, rel: 0.0 };

    /// Does the pair of values sit within this tolerance?
    pub fn allows(self, archived: f64, regenerated: f64) -> bool {
        (archived - regenerated).abs() <= self.abs + self.rel * archived.abs()
    }
}

impl Default for Tolerance {
    fn default() -> Tolerance {
        Tolerance::EXACT
    }
}

/// One numeric cell that moved between the archive and the
/// regenerated report.
#[derive(Debug, Clone, PartialEq)]
pub struct CellDelta {
    /// 1-based line number inside the section's fenced block.
    pub line: usize,
    /// 1-based index of the numeric cell within that line.
    pub cell: usize,
    /// The value the archive records.
    pub archived: f64,
    /// The value the regenerator produces now.
    pub regenerated: f64,
}

impl CellDelta {
    /// Relative change in percent, guarded so a zero archived value
    /// never produces 0/0 = NaN.
    pub fn rel_delta_pct(&self) -> f64 {
        let diff = self.regenerated - self.archived;
        if self.archived != 0.0 {
            diff * 100.0 / self.archived
        } else if diff == 0.0 {
            0.0
        } else {
            f64::INFINITY.copysign(diff)
        }
    }
}

/// The drift findings for one tracked section.
#[derive(Debug, Clone, PartialEq)]
pub struct SectionDrift {
    /// The section key ("Table 1", ..., "Figure 1", "Ablation").
    pub section: String,
    /// How many numeric cells were compared.
    pub cells: usize,
    /// Cells whose values moved beyond the tolerance.
    pub deltas: Vec<CellDelta>,
    /// Structural mismatches: differing line counts, differing cell
    /// counts on a line, or non-numeric text that changed.
    pub shape: Vec<String>,
}

impl SectionDrift {
    /// True when nothing in the section drifted.
    pub fn is_clean(&self) -> bool {
        self.deltas.is_empty() && self.shape.is_empty()
    }
}

/// A whole drift run: one [`SectionDrift`] per tracked section found
/// in the archive, plus the tracked sections the archive is missing.
#[derive(Debug, Clone, PartialEq)]
pub struct DriftReport {
    /// Per-section findings, in [`TRACKED_SECTIONS`] order.
    pub sections: Vec<SectionDrift>,
    /// Tracked sections with no archived block in the document.
    pub missing: Vec<String>,
}

impl DriftReport {
    /// True when any section drifted or is missing from the archive.
    pub fn has_drift(&self) -> bool {
        !self.missing.is_empty() || self.sections.iter().any(|s| !s.is_clean())
    }

    /// Total numeric cells compared across all sections.
    pub fn cells(&self) -> usize {
        self.sections.iter().map(|s| s.cells).sum()
    }

    /// Renders the human-readable drift report.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "drift report: {} sections, {} numeric cells compared",
            self.sections.len(),
            self.cells()
        );
        for s in &self.sections {
            if s.is_clean() {
                let _ = writeln!(out, "  {:<10} ok ({} cells)", s.section, s.cells);
                continue;
            }
            let _ = writeln!(
                out,
                "  {:<10} DRIFT ({} of {} cells, {} shape mismatches)",
                s.section,
                s.deltas.len(),
                s.cells,
                s.shape.len()
            );
            for d in &s.deltas {
                let _ = writeln!(
                    out,
                    "    line {:>3} cell {:>2}: archived {} -> regenerated {} ({:+.2}%)",
                    d.line,
                    d.cell,
                    d.archived,
                    d.regenerated,
                    d.rel_delta_pct()
                );
            }
            for m in &s.shape {
                let _ = writeln!(out, "    {m}");
            }
        }
        for m in &self.missing {
            let _ = writeln!(out, "  {m:<10} MISSING from the archive");
        }
        if self.has_drift() {
            let _ = writeln!(
                out,
                "DRIFT DETECTED — regenerate the archive or explain the change"
            );
        } else {
            let _ = writeln!(out, "no drift: archives match the regenerated reports");
        }
        out
    }
}

/// Extracts every `(heading, first fenced block)` pair from a
/// markdown document. The heading key is the `## ` text up to the em
/// dash, so `## Table 3 — cache command rate` archives under
/// "Table 3". Only the first fenced block after each heading counts;
/// prose and later blocks are ignored.
pub fn archived_blocks(markdown: &str) -> Vec<(String, String)> {
    let mut out = Vec::new();
    let mut current: Option<String> = None;
    let mut block: Option<String> = None;
    for line in markdown.lines() {
        if let Some(buf) = &mut block {
            if line.trim_end() == "```" {
                let body = block.take().expect("block is open");
                if let Some(section) = current.take() {
                    out.push((section, body));
                }
            } else {
                buf.push_str(line);
                buf.push('\n');
            }
        } else if let Some(rest) = line.strip_prefix("## ") {
            current = Some(rest.split(" —").next().unwrap_or(rest).trim().to_string());
        } else if line.trim_end().starts_with("```") {
            block = Some(String::new());
        }
    }
    out
}

/// Splits a report line into its numeric cells and a text skeleton
/// (the line with every numeric cell replaced by `#`, whitespace
/// collapsed). Tokens are trimmed of surrounding punctuation before
/// parsing, so `(19.9)`, `23.1%` and `100.0/` all yield cells while
/// labels, dashes and bar glyphs stay in the skeleton.
fn split_cells(line: &str) -> (Vec<f64>, String) {
    let mut cells = Vec::new();
    let mut skeleton = String::new();
    for token in line.split_whitespace() {
        let trimmed = token.trim_matches(|c: char| !(c.is_ascii_digit() || "+-.".contains(c)));
        let parsed = if trimmed.contains(|c: char| c.is_ascii_digit()) {
            trimmed.parse::<f64>().ok()
        } else {
            None
        };
        if !skeleton.is_empty() {
            skeleton.push(' ');
        }
        match parsed {
            Some(v) => {
                cells.push(v);
                skeleton.push('#');
            }
            None => skeleton.push_str(token),
        }
    }
    (cells, skeleton)
}

/// Compares one archived block against its regenerated report,
/// cell by cell.
pub fn compare_section(
    section: &str,
    archived: &str,
    regenerated: &str,
    tolerance: Tolerance,
) -> SectionDrift {
    let mut drift = SectionDrift {
        section: section.to_string(),
        cells: 0,
        deltas: Vec::new(),
        shape: Vec::new(),
    };
    let old: Vec<&str> = archived.lines().map(str::trim_end).collect();
    let new: Vec<&str> = regenerated.lines().map(str::trim_end).collect();
    if old.len() != new.len() {
        drift.shape.push(format!(
            "line count differs: archived {} lines, regenerated {}",
            old.len(),
            new.len()
        ));
    }
    for (i, (a, r)) in old.iter().zip(&new).enumerate() {
        let line = i + 1;
        let (cells_a, skel_a) = split_cells(a);
        let (cells_r, skel_r) = split_cells(r);
        if skel_a != skel_r {
            drift.shape.push(format!(
                "line {line}: text differs\n      archived:    {a}\n      regenerated: {r}"
            ));
        }
        if cells_a.len() != cells_r.len() {
            drift.shape.push(format!(
                "line {line}: cell count differs ({} vs {})",
                cells_a.len(),
                cells_r.len()
            ));
            continue;
        }
        drift.cells += cells_a.len();
        for (j, (&va, &vr)) in cells_a.iter().zip(&cells_r).enumerate() {
            if !tolerance.allows(va, vr) {
                drift.deltas.push(CellDelta {
                    line,
                    cell: j + 1,
                    archived: va,
                    regenerated: vr,
                });
            }
        }
    }
    drift
}

/// Regenerates every tracked report and diffs it against the archived
/// blocks of `markdown` (an EXPERIMENTS.md document).
pub fn drift_against(markdown: &str, tolerance: Tolerance) -> DriftReport {
    let blocks = archived_blocks(markdown);
    let mut report = DriftReport {
        sections: Vec::new(),
        missing: Vec::new(),
    };
    for (name, regenerate) in TRACKED_SECTIONS {
        match blocks.iter().find(|(key, _)| key == name) {
            Some((_, archived)) => {
                report
                    .sections
                    .push(compare_section(name, archived, &regenerate(), tolerance));
            }
            None => report.missing.push(name.to_string()),
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    const DOC: &str = "# title\n\n## Table 9 — synthetic\n\nprose\n\n```\nTable 9: things (%)\nprogram   a   b\nfoo      1.5  20\nbar      0.0   7\n```\n\n**Assessment.** words.\n\n## Untracked\n\n```\nwall clock 1.23s\n```\n";

    #[test]
    fn archived_blocks_pair_headings_with_their_first_fence() {
        let blocks = archived_blocks(DOC);
        assert_eq!(blocks.len(), 2);
        assert_eq!(blocks[0].0, "Table 9");
        assert!(blocks[0].1.starts_with("Table 9: things"));
        assert!(blocks[0].1.ends_with("bar      0.0   7\n"));
        assert_eq!(blocks[1].0, "Untracked");
    }

    #[test]
    fn identical_blocks_are_clean() {
        let block = &archived_blocks(DOC)[0].1;
        let drift = compare_section("Table 9", block, block, Tolerance::EXACT);
        assert!(drift.is_clean(), "{drift:?}");
        // the header's "9" and "(%)"-free cells: 9, then 1.5 20 0.0 7.
        assert_eq!(drift.cells, 5);
    }

    #[test]
    fn a_perturbed_cell_is_flagged_with_its_delta() {
        let block = archived_blocks(DOC)[0].1.clone();
        let perturbed = block.replace("1.5", "1.8");
        let drift = compare_section("Table 9", &perturbed, &block, Tolerance::EXACT);
        assert_eq!(drift.deltas.len(), 1);
        let d = &drift.deltas[0];
        assert_eq!((d.line, d.cell), (3, 1));
        assert_eq!(d.archived, 1.8);
        assert_eq!(d.regenerated, 1.5);
        assert!((d.rel_delta_pct() - (-16.666_666)).abs() < 1e-3);
        assert!(drift.shape.is_empty(), "numbers moved, text did not");
    }

    #[test]
    fn zero_valued_cells_never_produce_nan_deltas() {
        let d = CellDelta {
            line: 1,
            cell: 1,
            archived: 0.0,
            regenerated: 0.0,
        };
        assert_eq!(d.rel_delta_pct(), 0.0);
        let d = CellDelta {
            archived: 0.0,
            regenerated: 0.5,
            ..d
        };
        assert!(d.rel_delta_pct().is_infinite() && d.rel_delta_pct() > 0.0);
        assert!(!d.rel_delta_pct().is_nan());
    }

    #[test]
    fn textual_and_structural_drift_is_reported_as_shape() {
        let block = archived_blocks(DOC)[0].1.clone();
        let renamed = block.replace("bar", "baz");
        let drift = compare_section("Table 9", &renamed, &block, Tolerance::EXACT);
        assert!(drift.deltas.is_empty());
        assert_eq!(drift.shape.len(), 1, "{:?}", drift.shape);

        let truncated: String = block.lines().take(3).map(|l| format!("{l}\n")).collect();
        let drift = compare_section("Table 9", &truncated, &block, Tolerance::EXACT);
        assert!(!drift.is_clean());
        assert!(drift.shape[0].contains("line count differs"));
    }

    #[test]
    fn tolerance_absorbs_small_drift_only() {
        let tol = Tolerance {
            abs: 0.0,
            rel: 0.01,
        };
        assert!(tol.allows(100.0, 100.9));
        assert!(!tol.allows(100.0, 101.1));
        assert!(Tolerance::EXACT.allows(0.0, 0.0));
        assert!(!Tolerance::EXACT.allows(0.0, f64::EPSILON));
    }

    /// The acceptance test: perturb one cell of a really regenerated
    /// report and the drift pass must flag exactly that cell.
    #[test]
    fn drift_report_flags_a_perturbed_figure1_cell() {
        let fresh = figure1_report();
        let perturbed = fresh.replace("8192", "9192");
        assert_ne!(fresh, perturbed, "the capacity column must be present");
        let drift = compare_section("Figure 1", &perturbed, &fresh, Tolerance::EXACT);
        assert!(
            drift
                .deltas
                .iter()
                .any(|d| d.archived == 9192.0 && d.regenerated == 8192.0),
            "{drift:?}"
        );
        let clean = compare_section("Figure 1", &fresh, &fresh, Tolerance::EXACT);
        assert!(clean.is_clean());
    }

    /// Every tracked section has an archived block in the repo's
    /// EXPERIMENTS.md, so the drift binary really guards them all.
    #[test]
    fn experiments_md_archives_every_tracked_section() {
        let markdown = include_str!("../../../EXPERIMENTS.md");
        let blocks = archived_blocks(markdown);
        for (name, _) in TRACKED_SECTIONS {
            assert!(
                blocks.iter().any(|(key, _)| key == name),
                "{name} has no archived block"
            );
        }
    }
}
