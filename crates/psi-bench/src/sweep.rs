//! The design-space sweep engine: the paper's Figure 1 at grid scale.
//!
//! The ICOT authors explored eleven cache capacities on one workload
//! because every cell cost them a full simulation run. This module
//! generalizes `pmms::capacity_sweep_parallel` into a declarative
//! batch experiment engine: a grid over **cache geometry** (capacity
//! × ways × block × write policy × write-stack handling) × **machine
//! configuration** (clause indexing, execution lane, governor budget)
//! × **workload**, executed in parallel with work stealing over
//! cells, sharded across hosts, and resumable.
//!
//! Three properties make a 500+-cell grid cheap:
//!
//! * **Fork templating** ([`SweepMode::Fork`]) — all cells on the
//!   same (workload, machine-config) *plane* are served by
//!   [`Machine::fork_with_cache`] from one consulted template, so the
//!   program is parsed and compiled once per plane instead of once
//!   per cell.
//! * **Trace replay** ([`SweepMode::Replay`]) — fidelity-lane planes
//!   capture one memory trace and replay it through every geometry
//!   (the trace is a pure function of execution, not of cache
//!   geometry), reusing the PMMS machinery; proven bit-identical to
//!   the live forked path.
//! * **Resume and sharding** — with a cell directory configured,
//!   every completed cell persists as one flat-JSON file under a
//!   content-addressed key derived from the full cell spec; a
//!   restarted sweep skips present cells byte-identically, and
//!   `--shard i/n` splits a grid across hosts with no overlap.
//!
//! Fault isolation rides the same substrate as the suite runner: each
//! cell is contained per item ([`par_map_catch`]), so one exhausted,
//! failing or panicking cell degrades exactly one cell of the report.
//!
//! The [`diff_reports`] pass closes the loop drift-style: two sweep
//! reports are compared per cell and per deterministic field (wall
//! times are explicitly untracked — they measure the host), and the
//! `sweepbench diff` subcommand exits nonzero on unexplained drift.

use crate::drift::{CellDelta, SectionDrift, Tolerance};
use psi_cache::{CacheConfig, WritePolicy};
use psi_core::{Measurement, PsiError, Resource};
use psi_machine::{Machine, MachineConfig};
use psi_mem::TraceEntry;
use psi_tools::json::ObjectBuilder;
use psi_tools::pmms;
use psi_tools::quantile::percentile;
use psi_workloads::runner::{default_parallelism, par_map_catch};
use psi_workloads::Workload;
use std::fmt::Write as _;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

// ------------------------------------------------------------------
// grid specification
// ------------------------------------------------------------------

/// Execution lane of a machine-configuration axis point (the three
/// verified-equivalent lanes of ARCHITECTURE.md).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Lane {
    /// Lane A: full measurement — the only lane that drives the cache
    /// model, so only fidelity planes spread over the geometry axis.
    Fidelity,
    /// Lane B: measurement off, predecoded dispatch.
    Throughput,
    /// Lane C: measurement off, fused superinstruction dispatch.
    Compiled,
}

impl Lane {
    /// Single-letter lane code used in reports and cell keys.
    pub fn code(&self) -> &'static str {
        match self {
            Lane::Fidelity => "A",
            Lane::Throughput => "B",
            Lane::Compiled => "C",
        }
    }
}

/// One point on the machine-configuration axis.
#[derive(Debug, Clone)]
pub struct ConfigPoint {
    /// Display name, e.g. `"A-linear"`; part of the cell key.
    pub name: String,
    /// Execution lane.
    pub lane: Lane,
    /// First-argument clause indexing on?
    pub clause_indexing: bool,
    /// Optional governor step budget (None = unlimited, the paper's
    /// configuration).
    pub max_steps: Option<u64>,
}

impl ConfigPoint {
    /// A named fidelity-lane point.
    pub fn fidelity(name: &str, clause_indexing: bool) -> ConfigPoint {
        ConfigPoint {
            name: name.to_owned(),
            lane: Lane::Fidelity,
            clause_indexing,
            max_steps: None,
        }
    }

    /// The [`MachineConfig`] this point denotes, attached to `geometry`.
    pub fn machine_config(&self, geometry: CacheConfig) -> MachineConfig {
        let mut c = MachineConfig::psi();
        c.cache = Some(geometry);
        c.clause_indexing = self.clause_indexing;
        match self.lane {
            Lane::Fidelity => {}
            Lane::Throughput => c.measurement = Measurement::Off,
            Lane::Compiled => {
                c.measurement = Measurement::Off;
                c.compiled = true;
            }
        }
        if let Some(steps) = self.max_steps {
            c.limits.max_steps = Some(steps);
        }
        c
    }

    fn canon(&self) -> String {
        format!(
            "cfg={}:{}:{}:{}",
            self.name,
            self.lane.code(),
            u8::from(self.clause_indexing),
            self.max_steps.map_or_else(|| "-".into(), |s| s.to_string()),
        )
    }
}

/// The cache-geometry axis as a cross product. [`GeometryAxis::expand`]
/// filters combinations the cache model cannot represent (set count
/// not a power of two, capacity below one block per way) and counts
/// them, so a grid never silently shrinks.
#[derive(Debug, Clone)]
pub struct GeometryAxis {
    /// Total capacities in words.
    pub capacities: Vec<u32>,
    /// Associativities.
    pub ways: Vec<u32>,
    /// Block sizes in words.
    pub block_words: Vec<u32>,
    /// Write policies.
    pub policies: Vec<WritePolicy>,
    /// Write-stack no-fetch variants (spec (g) on/off).
    pub write_stack_no_fetch: Vec<bool>,
}

impl GeometryAxis {
    /// Only the PSI cache as shipped — a single-geometry axis.
    pub fn psi_only() -> GeometryAxis {
        GeometryAxis {
            capacities: vec![8192],
            ways: vec![2],
            block_words: vec![4],
            policies: vec![WritePolicy::StoreIn],
            write_stack_no_fetch: vec![true],
        }
    }

    /// Expands the cross product into concrete configurations (in
    /// capacity-major order), returning the valid ones plus the count
    /// of filtered-out invalid combinations.
    pub fn expand(&self) -> (Vec<CacheConfig>, usize) {
        let mut configs = Vec::new();
        let mut invalid = 0;
        for &capacity_words in &self.capacities {
            for &ways in &self.ways {
                for &block_words in &self.block_words {
                    for &policy in &self.policies {
                        for &write_stack_no_fetch in &self.write_stack_no_fetch {
                            let c = CacheConfig {
                                capacity_words,
                                block_words,
                                ways,
                                policy,
                                write_stack_no_fetch,
                                ..CacheConfig::psi()
                            };
                            if geometry_is_valid(&c) {
                                configs.push(c);
                            } else {
                                invalid += 1;
                            }
                        }
                    }
                }
            }
        }
        (configs, invalid)
    }
}

/// The non-panicking mirror of `CacheConfig::assert_valid`, so a grid
/// spec can carry invalid cross-product corners without aborting the
/// sweep (they are filtered and counted instead).
pub fn geometry_is_valid(c: &CacheConfig) -> bool {
    c.block_words.is_power_of_two()
        && c.ways > 0
        && c.capacity_words >= c.block_words * c.ways
        && c.capacity_words.is_multiple_of(c.block_words * c.ways)
        && c.sets().is_power_of_two()
}

/// A declarative experiment grid: workloads × machine configurations
/// × cache geometries. Fast-lane (B/C) configuration points never
/// drive the cache model, so their cells collapse onto the single
/// stock PSI geometry instead of spreading over the geometry axis;
/// the collapsed cell count is reported, never silently dropped.
#[derive(Debug, Clone)]
pub struct SweepSpec {
    /// Grid name (report header, default cell-directory name).
    pub name: String,
    /// Workload axis.
    pub workloads: Vec<Workload>,
    /// Machine-configuration axis.
    pub configs: Vec<ConfigPoint>,
    /// Geometry axis, already expanded to concrete configurations
    /// (see [`GeometryAxis::expand`]).
    pub geometries: Vec<CacheConfig>,
}

// ------------------------------------------------------------------
// cells and keys
// ------------------------------------------------------------------

fn fnv1a64(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn policy_label(p: WritePolicy) -> &'static str {
    match p {
        WritePolicy::StoreIn => "in",
        WritePolicy::StoreThrough => "through",
    }
}

fn geometry_canon(g: &CacheConfig) -> String {
    format!(
        "geom=c{}w{}b{}p{}s{}",
        g.capacity_words,
        g.ways,
        g.block_words,
        policy_label(g.policy),
        u8::from(g.write_stack_no_fetch),
    )
}

/// The content-addressed key of one cell: 16 hex digits of FNV-1a
/// over the canonical cell spec (workload name + source fingerprint +
/// goal + solution cap + background goals, configuration point,
/// geometry). Identical specs key identically across runs and hosts;
/// any change to any axis field moves the key.
pub fn cell_key(w: &Workload, config: &ConfigPoint, geometry: &CacheConfig) -> String {
    let canon = format!(
        "w={}|src={:016x}|goal={}|max={}|bg={}|{}|{}",
        w.name,
        fnv1a64(&w.source),
        w.goal,
        w.max_solutions,
        w.background.join(";"),
        config.canon(),
        geometry_canon(geometry),
    );
    format!("{:016x}", fnv1a64(&canon))
}

/// One expanded grid cell (indices into the spec's axes).
#[derive(Debug, Clone)]
struct CellTask {
    workload: usize,
    config: usize,
    geometry: CacheConfig,
    plane: usize,
    key: String,
}

/// How the engine produces cells.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SweepMode {
    /// Consult one template per (workload, config) plane, then
    /// [`Machine::fork_with_cache`] per cell. The default.
    Fork,
    /// Fidelity planes run once with tracing on, then replay the
    /// trace through each geometry (the Figure 1 method). Fast-lane
    /// planes have no trace and fall back to forking.
    Replay,
    /// Re-parse and re-consult per cell — the pre-engine behaviour,
    /// kept as the baseline the fork path is measured against.
    Fresh,
}

impl SweepMode {
    /// Lowercase mode label for reports.
    pub fn label(&self) -> &'static str {
        match self {
            SweepMode::Fork => "fork",
            SweepMode::Replay => "replay",
            SweepMode::Fresh => "fresh",
        }
    }
}

/// Execution knobs for one sweep run.
#[derive(Debug, Clone)]
pub struct SweepOptions {
    /// Worker threads (work stealing over cells; 1 = serial).
    pub threads: usize,
    /// Cell production strategy.
    pub mode: SweepMode,
    /// `Some((i, n))` runs only cells whose grid index ≡ i (mod n) —
    /// the multi-host split. Shards are disjoint and union to the
    /// full grid.
    pub shard: Option<(usize, usize)>,
    /// Directory for per-cell flat-JSON files. `Some` enables
    /// skip-if-present resume; `None` keeps the sweep in memory.
    pub cell_dir: Option<PathBuf>,
    /// Stop after this many *computed* (not resumed) cells. Used by
    /// the resumability tests to simulate a killed sweep; `None` runs
    /// everything.
    pub limit: Option<usize>,
}

impl Default for SweepOptions {
    fn default() -> SweepOptions {
        SweepOptions {
            threads: default_parallelism(),
            mode: SweepMode::Fork,
            shard: None,
            cell_dir: None,
            limit: None,
        }
    }
}

// ------------------------------------------------------------------
// results
// ------------------------------------------------------------------

/// One completed cell. Every field except `wall_ns` and `engine` is
/// deterministic — [`diff_reports`] compares exactly the
/// deterministic ones.
#[derive(Debug, Clone, PartialEq)]
pub struct CellResult {
    /// Content-addressed cell key ([`cell_key`]).
    pub key: String,
    /// Workload name.
    pub workload: String,
    /// Configuration point name.
    pub config: String,
    /// Lane code ("A"/"B"/"C").
    pub lane: String,
    /// Clause indexing on?
    pub indexing: bool,
    /// Cache capacity in words.
    pub capacity: u32,
    /// Associativity.
    pub ways: u32,
    /// Block size in words.
    pub block: u32,
    /// Write policy label ("in"/"through").
    pub policy: String,
    /// Write-stack no-fetch enabled?
    pub write_stack: bool,
    /// Outcome label: ok / exhausted / timed_out / failed / panicked.
    pub outcome: String,
    /// Error detail for non-ok outcomes (empty when ok).
    pub detail: String,
    /// Interpreter microsteps (0 for non-ok cells).
    pub steps: u64,
    /// Simulated time in nanoseconds.
    pub time_ns: u64,
    /// Solution count.
    pub solutions: u64,
    /// Total cache hit ratio (%); `None` when the lane never drove
    /// the cache model or the cell did not complete.
    pub hit_pct: Option<f64>,
    /// Figure 1 improvement ratio (%); `None` off the fidelity lane.
    pub improvement_pct: Option<f64>,
    /// Host wall time of the cell, nanoseconds (untracked by diff).
    pub wall_ns: u64,
    /// How the cell was produced: fork / replay / fresh.
    pub engine: String,
}

impl CellResult {
    /// Serializes the cell as one flat JSON line (the per-cell file
    /// format and the `cells` array entry of `BENCH_sweep.json`).
    /// `None` float fields are omitted — absence encodes "not
    /// measured" in the flat codec.
    pub fn to_json_line(&self) -> String {
        let mut b = ObjectBuilder::new()
            .str("key", &self.key)
            .str("workload", &self.workload)
            .str("config", &self.config)
            .str("lane", &self.lane)
            .bool("indexing", self.indexing)
            .u64("capacity", self.capacity as u64)
            .u64("ways", self.ways as u64)
            .u64("block", self.block as u64)
            .str("policy", &self.policy)
            .bool("write_stack", self.write_stack)
            .str("outcome", &self.outcome);
        if !self.detail.is_empty() {
            b = b.str("detail", &self.detail);
        }
        b = b
            .u64("steps", self.steps)
            .u64("time_ns", self.time_ns)
            .u64("solutions", self.solutions);
        if let Some(h) = self.hit_pct {
            b = b.f64("hit_pct", h);
        }
        if let Some(i) = self.improvement_pct {
            b = b.f64("improvement_pct", i);
        }
        b.u64("wall_ns", self.wall_ns)
            .str("engine", &self.engine)
            .finish()
    }

    /// Parses a cell back from its JSON line; `None` when the line is
    /// not a well-formed cell (a truncated file from a killed run is
    /// recomputed rather than trusted).
    pub fn from_json_line(line: &str) -> Option<CellResult> {
        let obj = psi_tools::json::parse_object(line).ok()?;
        let opt_f64 = |key: &str| obj.get(key).and_then(|v| v.as_f64());
        Some(CellResult {
            key: obj.str_field("key").ok()?.to_owned(),
            workload: obj.str_field("workload").ok()?.to_owned(),
            config: obj.str_field("config").ok()?.to_owned(),
            lane: obj.str_field("lane").ok()?.to_owned(),
            indexing: obj.get("indexing")?.as_bool()?,
            capacity: obj.u64_field("capacity").ok()? as u32,
            ways: obj.u64_field("ways").ok()? as u32,
            block: obj.u64_field("block").ok()? as u32,
            policy: obj.str_field("policy").ok()?.to_owned(),
            write_stack: obj.get("write_stack")?.as_bool()?,
            outcome: obj.str_field("outcome").ok()?.to_owned(),
            detail: obj
                .get("detail")
                .and_then(|v| v.as_str())
                .unwrap_or("")
                .to_owned(),
            steps: obj.u64_field("steps").ok()?,
            time_ns: obj.u64_field("time_ns").ok()?,
            solutions: obj.u64_field("solutions").ok()?,
            hit_pct: opt_f64("hit_pct"),
            improvement_pct: opt_f64("improvement_pct"),
            wall_ns: obj.u64_field("wall_ns").ok()?,
            engine: obj.str_field("engine").ok()?.to_owned(),
        })
    }
}

/// Per-plane summary: one line per (workload, configuration) pair
/// that actually materialized a template or trace.
#[derive(Debug, Clone)]
pub struct PlaneSummary {
    /// Workload name.
    pub workload: String,
    /// Configuration point name.
    pub config: String,
    /// How the plane served its cells: fork / replay / fresh / broken.
    pub engine: String,
    /// Captured trace length (replay planes; 0 otherwise).
    pub trace_len: u64,
    /// Microsteps of the plane's reference run (replay planes; 0
    /// otherwise).
    pub steps: u64,
}

/// Timing comparison between the engine's templated path and the
/// per-cell re-consult baseline over the same grid.
#[derive(Debug, Clone, Copy)]
pub struct ModeComparison {
    /// Wall time of the primary (fork or replay) run, nanoseconds.
    pub engine_wall_ns: u64,
    /// Wall time of the fresh re-consult run, nanoseconds.
    pub fresh_wall_ns: u64,
}

impl ModeComparison {
    /// Fresh-over-engine wall-time ratio (zero-guarded).
    pub fn speedup(&self) -> f64 {
        if self.engine_wall_ns == 0 {
            return 0.0;
        }
        self.fresh_wall_ns as f64 / self.engine_wall_ns as f64
    }
}

/// A full sweep run: the sharded cell results in grid order plus the
/// bookkeeping the report serializes.
#[derive(Debug, Clone)]
pub struct SweepReport {
    /// Grid name.
    pub grid: String,
    /// Mode label of the run.
    pub mode: String,
    /// Shard of the grid this run covered.
    pub shard: Option<(usize, usize)>,
    /// Axis sizes: workloads, configs, geometries.
    pub axes: (usize, usize, usize),
    /// Geometry-axis cross-product combinations filtered as invalid.
    pub invalid_geometries: usize,
    /// Cells not generated because a fast-lane configuration point
    /// collapses the geometry axis onto the stock PSI cache.
    pub collapsed_fast_lane_cells: usize,
    /// Cell results, in grid order.
    pub cells: Vec<CellResult>,
    /// Cells computed by this run.
    pub computed: usize,
    /// Cells resumed byte-identically from the cell directory.
    pub resumed: usize,
    /// Cells left unrun by [`SweepOptions::limit`].
    pub unrun: usize,
    /// Per-plane summaries.
    pub planes: Vec<PlaneSummary>,
    /// Total wall time of the run, nanoseconds.
    pub wall_ns_total: u64,
    /// Optional fork-vs-fresh comparison (the `--compare-fresh` run).
    pub comparison: Option<ModeComparison>,
}

impl SweepReport {
    /// Count of cells with the given outcome label.
    pub fn outcome_count(&self, label: &str) -> usize {
        self.cells.iter().filter(|c| c.outcome == label).count()
    }

    /// Did every cell in this shard complete ok?
    pub fn all_ok(&self) -> bool {
        self.unrun == 0 && self.outcome_count("ok") == self.cells.len()
    }

    /// Type-7 percentile of per-cell wall times, via the shared
    /// [`psi_tools::quantile`] estimator.
    pub fn wall_percentile(&self, q: f64) -> u64 {
        let walls: Vec<u64> = self.cells.iter().map(|c| c.wall_ns).collect();
        percentile(&walls, q)
    }

    /// Serializes the report (schema `psi-sweep-v1`). Every entry of
    /// the `planes` and `cells` arrays is one flat JSON object per
    /// line, so the hand-rolled flat codec can read them back line by
    /// line ([`parse_report_cells`]).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n  \"schema\": \"psi-sweep-v1\",\n");
        let _ = writeln!(out, "  \"grid\": \"{}\",", self.grid);
        let _ = writeln!(out, "  \"mode\": \"{}\",", self.mode);
        if let Some((i, n)) = self.shard {
            let _ = writeln!(out, "  \"shard\": \"{i}/{n}\",");
        }
        let _ = writeln!(out, "  \"workloads\": {},", self.axes.0);
        let _ = writeln!(out, "  \"configs\": {},", self.axes.1);
        let _ = writeln!(out, "  \"geometries\": {},", self.axes.2);
        let _ = writeln!(
            out,
            "  \"invalid_geometries\": {},",
            self.invalid_geometries
        );
        let _ = writeln!(
            out,
            "  \"collapsed_fast_lane_cells\": {},",
            self.collapsed_fast_lane_cells
        );
        let _ = writeln!(out, "  \"cells_total\": {},", self.cells.len());
        let _ = writeln!(out, "  \"computed\": {},", self.computed);
        let _ = writeln!(out, "  \"resumed\": {},", self.resumed);
        let _ = writeln!(out, "  \"unrun\": {},", self.unrun);
        for label in ["ok", "exhausted", "timed_out", "failed", "panicked"] {
            let _ = writeln!(out, "  \"{label}\": {},", self.outcome_count(label));
        }
        let _ = writeln!(out, "  \"wall_ns_total\": {},", self.wall_ns_total);
        for (name, q) in [("p50", 0.50), ("p90", 0.90), ("p99", 0.99)] {
            let _ = writeln!(
                out,
                "  \"cell_wall_{name}_ns\": {},",
                self.wall_percentile(q)
            );
        }
        if let Some(c) = &self.comparison {
            let _ = writeln!(out, "  \"engine_wall_ns\": {},", c.engine_wall_ns);
            let _ = writeln!(out, "  \"fresh_wall_ns\": {},", c.fresh_wall_ns);
            let _ = writeln!(out, "  \"fresh_over_engine\": {:.3},", c.speedup());
        }
        out.push_str("  \"planes\": [\n");
        for (i, p) in self.planes.iter().enumerate() {
            let line = ObjectBuilder::new()
                .str("workload", &p.workload)
                .str("config", &p.config)
                .str("engine", &p.engine)
                .u64("trace_len", p.trace_len)
                .u64("steps", p.steps)
                .finish();
            let comma = if i + 1 < self.planes.len() { "," } else { "" };
            let _ = writeln!(out, "    {line}{comma}");
        }
        out.push_str("  ],\n  \"cells\": [\n");
        for (i, c) in self.cells.iter().enumerate() {
            let comma = if i + 1 < self.cells.len() { "," } else { "" };
            let _ = writeln!(out, "    {}{comma}", c.to_json_line());
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Human-readable run summary.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "sweep '{}' [{}]: {} cells ({} computed, {} resumed{}) — {} ok, {} exhausted, {} timed out, {} failed, {} panicked",
            self.grid,
            self.mode,
            self.cells.len(),
            self.computed,
            self.resumed,
            match self.shard {
                Some((i, n)) => format!(", shard {i}/{n}"),
                None => String::new(),
            },
            self.outcome_count("ok"),
            self.outcome_count("exhausted"),
            self.outcome_count("timed_out"),
            self.outcome_count("failed"),
            self.outcome_count("panicked"),
        );
        if self.unrun > 0 {
            let _ = writeln!(out, "  {} cells left unrun by --limit", self.unrun);
        }
        if self.invalid_geometries > 0 {
            let _ = writeln!(
                out,
                "  {} invalid geometry combinations filtered from the axis",
                self.invalid_geometries
            );
        }
        if self.collapsed_fast_lane_cells > 0 {
            let _ = writeln!(
                out,
                "  {} fast-lane cells collapsed onto the stock geometry (lanes B/C never drive the cache)",
                self.collapsed_fast_lane_cells
            );
        }
        let _ = writeln!(
            out,
            "  wall {:.1} ms total; per-cell p50 {:.2} ms, p90 {:.2} ms, p99 {:.2} ms",
            self.wall_ns_total as f64 / 1e6,
            self.wall_percentile(0.50) as f64 / 1e6,
            self.wall_percentile(0.90) as f64 / 1e6,
            self.wall_percentile(0.99) as f64 / 1e6,
        );
        if let Some(c) = &self.comparison {
            let _ = writeln!(
                out,
                "  engine ({}) {:.1} ms vs per-cell re-consult {:.1} ms — {:.2}x",
                self.mode,
                c.engine_wall_ns as f64 / 1e6,
                c.fresh_wall_ns as f64 / 1e6,
                c.speedup(),
            );
        }
        out
    }
}

// ------------------------------------------------------------------
// execution
// ------------------------------------------------------------------

/// Lazily initialized per-plane context, shared by every cell on the
/// plane.
enum PlaneCtx {
    /// A consulted, never-run template; cells fork it.
    Fork(Box<Machine>),
    /// A captured trace plus the reference run's deterministic
    /// numbers; cells replay it.
    Replay {
        trace: Vec<TraceEntry>,
        steps: u64,
        solutions: u64,
        cycle_ns: u64,
    },
    /// Cells consult for themselves.
    Fresh,
    /// Plane setup failed; every cell degrades with this reason.
    Broken(String),
}

fn run_workload_on(m: &mut Machine, w: &Workload) -> psi_core::Result<Vec<String>> {
    let solutions = if w.background.is_empty() {
        m.solve(&w.goal, w.max_solutions)?
    } else {
        let bg: Vec<&str> = w.background.iter().map(String::as_str).collect();
        m.run_session(&w.goal, &bg)?
    };
    Ok(solutions.iter().map(|s| s.to_string()).collect())
}

fn outcome_of(error: &PsiError) -> (&'static str, String) {
    match error {
        PsiError::ResourceExhausted {
            resource: Resource::WallClockMs,
            ..
        } => ("timed_out", error.to_string()),
        PsiError::ResourceExhausted { .. } => ("exhausted", error.to_string()),
        _ => ("failed", error.to_string()),
    }
}

/// Skeleton cell with axis identity filled in and measurement fields
/// zeroed; outcome fields overwritten by the producing path.
fn blank_cell(task: &CellTask, spec: &SweepSpec, engine: &str) -> CellResult {
    let w = &spec.workloads[task.workload];
    let c = &spec.configs[task.config];
    let g = &task.geometry;
    CellResult {
        key: task.key.clone(),
        workload: w.name.clone(),
        config: c.name.clone(),
        lane: c.lane.code().to_owned(),
        indexing: c.clause_indexing,
        capacity: g.capacity_words,
        ways: g.ways,
        block: g.block_words,
        policy: policy_label(g.policy).to_owned(),
        write_stack: g.write_stack_no_fetch,
        outcome: "ok".to_owned(),
        detail: String::new(),
        steps: 0,
        time_ns: 0,
        solutions: 0,
        hit_pct: None,
        improvement_pct: None,
        wall_ns: 0,
        engine: engine.to_owned(),
    }
}

/// Fills the measurement fields of a live (fork/fresh) cell from the
/// machine that ran it.
fn fill_from_machine(cell: &mut CellResult, m: &Machine, solutions: usize, config: &ConfigPoint) {
    let stats = m.stats();
    cell.steps = stats.steps;
    cell.time_ns = stats.time_ns;
    cell.solutions = solutions as u64;
    if config.lane == Lane::Fidelity {
        cell.hit_pct = stats.cache.hit_ratio_pct();
        if let Some(geometry) = m.config().cache {
            cell.improvement_pct = Some(pmms::improvement_from_run(
                stats.steps,
                stats.time_ns,
                stats.cache.total().accesses(),
                m.config().cycle_ns,
                geometry,
            ));
        }
    }
}

/// Runs one sweep. Cells are expanded in deterministic grid order
/// (workload-major, then configuration, then geometry), sharded,
/// resumed from the cell directory when possible, and the remainder
/// executed in parallel with work stealing; each cell is
/// fault-isolated, so one bad cell degrades one cell.
pub fn run_sweep(spec: &SweepSpec, options: &SweepOptions) -> SweepReport {
    let t0 = Instant::now();
    let psi_geometry = CacheConfig::psi();

    // --- expand the grid ------------------------------------------
    let mut planes: Vec<(usize, usize)> = Vec::new(); // (workload, config)
    let mut tasks: Vec<CellTask> = Vec::new();
    let mut collapsed = 0usize;
    for (wi, w) in spec.workloads.iter().enumerate() {
        for (ci, c) in spec.configs.iter().enumerate() {
            let plane = planes.len();
            planes.push((wi, ci));
            let geoms: &[CacheConfig] = if c.lane == Lane::Fidelity {
                &spec.geometries
            } else {
                collapsed += spec.geometries.len().saturating_sub(1);
                std::slice::from_ref(&psi_geometry)
            };
            for g in geoms {
                tasks.push(CellTask {
                    workload: wi,
                    config: ci,
                    geometry: *g,
                    plane,
                    key: cell_key(w, c, g),
                });
            }
        }
    }

    // --- shard ----------------------------------------------------
    let tasks: Vec<CellTask> = match options.shard {
        Some((i, n)) if n > 1 => tasks
            .into_iter()
            .enumerate()
            .filter(|(idx, _)| idx % n == i)
            .map(|(_, t)| t)
            .collect(),
        _ => tasks,
    };

    if let Some(dir) = &options.cell_dir {
        // A first failure here will surface as per-cell write errors;
        // creating the directory is best-effort by design.
        let _ = std::fs::create_dir_all(dir);
    }

    // --- plane contexts (lazy, shared across workers) -------------
    let plane_ctx: Vec<OnceLock<PlaneCtx>> = (0..planes.len()).map(|_| OnceLock::new()).collect();
    let build_plane = |plane: usize| -> PlaneCtx {
        let (wi, ci) = planes[plane];
        let w = &spec.workloads[wi];
        let c = &spec.configs[ci];
        let mode = if options.mode == SweepMode::Replay && c.lane != Lane::Fidelity {
            // No trace exists off the fidelity lane; fork instead.
            SweepMode::Fork
        } else {
            options.mode
        };
        match mode {
            SweepMode::Fresh => PlaneCtx::Fresh,
            SweepMode::Fork => {
                let program = match kl0::Program::parse(&w.source) {
                    Ok(p) => p,
                    Err(e) => return PlaneCtx::Broken(e.to_string()),
                };
                match Machine::load(&program, c.machine_config(psi_geometry)) {
                    Ok(template) => PlaneCtx::Fork(Box::new(template)),
                    Err(e) => PlaneCtx::Broken(e.to_string()),
                }
            }
            SweepMode::Replay => {
                let mut config = c.machine_config(psi_geometry);
                config.trace_memory = true;
                match psi_workloads::runner::run_on_psi_machine(w, config) {
                    Ok((run, mut machine)) => PlaneCtx::Replay {
                        trace: machine.take_trace(),
                        steps: run.stats.steps,
                        solutions: run.solutions.len() as u64,
                        cycle_ns: machine.config().cycle_ns,
                    },
                    Err(e) => PlaneCtx::Broken(e.to_string()),
                }
            }
        }
    };

    // --- execute --------------------------------------------------
    let computed = AtomicUsize::new(0);
    let resumed = AtomicUsize::new(0);
    let run_cell = |task: &CellTask| -> Option<CellResult> {
        // Resume: a present, well-formed cell file with the right key
        // is reused verbatim and never rewritten (byte-identical
        // skip).
        if let Some(dir) = &options.cell_dir {
            let path = dir.join(format!("{}.json", task.key));
            if let Ok(text) = std::fs::read_to_string(&path) {
                if let Some(cell) = CellResult::from_json_line(text.trim_end()) {
                    if cell.key == task.key {
                        resumed.fetch_add(1, Ordering::Relaxed);
                        return Some(cell);
                    }
                }
            }
        }
        if let Some(limit) = options.limit {
            // Claim a computation slot; give it back on overshoot so
            // exactly `limit` cells compute.
            if computed.fetch_add(1, Ordering::Relaxed) >= limit {
                computed.fetch_sub(1, Ordering::Relaxed);
                return None;
            }
        } else {
            computed.fetch_add(1, Ordering::Relaxed);
        }

        let cell_t0 = Instant::now();
        let ctx = plane_ctx[task.plane].get_or_init(|| build_plane(task.plane));
        let config = &spec.configs[task.config];
        let workload = &spec.workloads[task.workload];
        let mut cell;
        match ctx {
            PlaneCtx::Broken(reason) => {
                cell = blank_cell(task, spec, options.mode.label());
                cell.outcome = "failed".to_owned();
                cell.detail = format!("plane setup failed: {reason}");
            }
            PlaneCtx::Fork(template) => {
                cell = blank_cell(task, spec, "fork");
                match template.fork_with_cache(Some(task.geometry)) {
                    Ok(mut m) => match run_workload_on(&mut m, workload) {
                        Ok(solutions) => fill_from_machine(&mut cell, &m, solutions.len(), config),
                        Err(e) => {
                            let (label, detail) = outcome_of(&e);
                            cell.outcome = label.to_owned();
                            cell.detail = detail;
                        }
                    },
                    Err(e) => {
                        cell.outcome = "failed".to_owned();
                        cell.detail = e.to_string();
                    }
                }
            }
            PlaneCtx::Replay {
                trace,
                steps,
                solutions,
                cycle_ns,
            } => {
                cell = blank_cell(task, spec, "replay");
                let (stats, time) = pmms::replay(trace, task.geometry, *cycle_ns, *steps);
                cell.steps = *steps;
                cell.time_ns = time;
                cell.solutions = *solutions;
                cell.hit_pct = stats.hit_ratio_pct();
                cell.improvement_pct = Some(pmms::improvement_ratio_pct(
                    trace,
                    task.geometry,
                    *cycle_ns,
                    *steps,
                ));
            }
            PlaneCtx::Fresh => {
                cell = blank_cell(task, spec, "fresh");
                let mut config_m = config.machine_config(task.geometry);
                config_m.cache = Some(task.geometry);
                match psi_workloads::runner::run_on_psi(workload, config_m) {
                    Ok(run) => {
                        cell.steps = run.stats.steps;
                        cell.time_ns = run.stats.time_ns;
                        cell.solutions = run.solutions.len() as u64;
                        if config.lane == Lane::Fidelity {
                            cell.hit_pct = run.stats.cache.hit_ratio_pct();
                            cell.improvement_pct = Some(pmms::improvement_from_run(
                                run.stats.steps,
                                run.stats.time_ns,
                                run.stats.cache.total().accesses(),
                                MachineConfig::psi().cycle_ns,
                                task.geometry,
                            ));
                        }
                    }
                    Err(e) => {
                        let (label, detail) = outcome_of(&e);
                        cell.outcome = label.to_owned();
                        cell.detail = detail;
                    }
                }
            }
        }
        cell.wall_ns = cell_t0.elapsed().as_nanos() as u64;

        if let Some(dir) = &options.cell_dir {
            // Atomic-ish publish: a killed run leaves either nothing
            // or a complete file, never a half-written cell that a
            // resume would trust.
            let tmp = dir.join(format!("{}.json.tmp", task.key));
            let path = dir.join(format!("{}.json", task.key));
            let body = format!("{}\n", cell.to_json_line());
            if std::fs::write(&tmp, body)
                .and_then(|()| std::fs::rename(&tmp, &path))
                .is_err()
            {
                cell.detail = format!("{} (cell file write failed)", cell.detail);
            }
        }
        Some(cell)
    };

    let slots = par_map_catch(&tasks, options.threads, |_, task| run_cell(task));
    let mut cells = Vec::with_capacity(tasks.len());
    let mut unrun = 0usize;
    for (task, slot) in tasks.iter().zip(slots) {
        match slot {
            Ok(Some(cell)) => cells.push(cell),
            Ok(None) => unrun += 1,
            Err(panic_msg) => {
                let mut cell = blank_cell(task, spec, options.mode.label());
                cell.outcome = "panicked".to_owned();
                cell.detail = panic_msg;
                cells.push(cell);
            }
        }
    }

    let plane_summaries: Vec<PlaneSummary> = planes
        .iter()
        .zip(&plane_ctx)
        .filter_map(|(&(wi, ci), ctx)| {
            let ctx = ctx.get()?;
            let (engine, trace_len, steps) = match ctx {
                PlaneCtx::Fork(_) => ("fork", 0, 0),
                PlaneCtx::Replay { trace, steps, .. } => ("replay", trace.len() as u64, *steps),
                PlaneCtx::Fresh => ("fresh", 0, 0),
                PlaneCtx::Broken(_) => ("broken", 0, 0),
            };
            Some(PlaneSummary {
                workload: spec.workloads[wi].name.clone(),
                config: spec.configs[ci].name.clone(),
                engine: engine.to_owned(),
                trace_len,
                steps,
            })
        })
        .collect();

    SweepReport {
        grid: spec.name.clone(),
        mode: options.mode.label().to_owned(),
        shard: options.shard,
        axes: (
            spec.workloads.len(),
            spec.configs.len(),
            spec.geometries.len(),
        ),
        invalid_geometries: 0,
        collapsed_fast_lane_cells: collapsed,
        cells,
        computed: computed.load(Ordering::Relaxed),
        resumed: resumed.load(Ordering::Relaxed),
        unrun,
        planes: plane_summaries,
        wall_ns_total: t0.elapsed().as_nanos() as u64,
        comparison: None,
    }
}

// ------------------------------------------------------------------
// report parsing and diffing
// ------------------------------------------------------------------

/// Extracts the per-cell objects from a `BENCH_sweep.json` document.
/// Each entry of the `cells` array is one flat JSON object on its own
/// line, so the flat codec reads the report back without a nested
/// parser.
///
/// # Errors
///
/// [`PsiError::Syntax`] when a cell line fails to parse.
pub fn parse_report_cells(json: &str) -> psi_core::Result<Vec<CellResult>> {
    let mut cells = Vec::new();
    for line in json.lines() {
        let line = line.trim().trim_end_matches(',');
        if !line.starts_with("{\"key\"") {
            continue;
        }
        let cell = CellResult::from_json_line(line).ok_or_else(|| PsiError::Syntax {
            line: 0,
            column: 0,
            detail: format!("malformed sweep cell line: {line}"),
        })?;
        cells.push(cell);
    }
    Ok(cells)
}

/// The result of diffing two sweep reports, built from the same
/// cell-diff machinery as the EXPERIMENTS.md drift pass: one
/// [`SectionDrift`] per drifted cell (section = cell key, cell index
/// = position in [`DIFFED_FIELDS`]), plus keys present on only one
/// side.
#[derive(Debug, Clone)]
pub struct SweepDiff {
    /// Cells compared on both sides.
    pub compared: usize,
    /// Numeric values compared.
    pub values: usize,
    /// Drifted cells, one section each.
    pub sections: Vec<SectionDrift>,
    /// Keys in the old report with no counterpart in the new.
    pub missing: Vec<String>,
    /// Keys in the new report with no counterpart in the old.
    pub added: Vec<String>,
}

/// The deterministic numeric fields [`diff_reports`] compares, in
/// fixed order. Wall times (`wall_ns`) and the producing engine are
/// deliberately untracked — they measure the host and the run
/// strategy, not the simulator.
pub const DIFFED_FIELDS: [&str; 5] = [
    "steps",
    "time_ns",
    "solutions",
    "hit_pct",
    "improvement_pct",
];

impl SweepDiff {
    /// Did anything drift (value moved, outcome changed, cell
    /// appeared or disappeared)?
    pub fn has_drift(&self) -> bool {
        !self.missing.is_empty()
            || !self.added.is_empty()
            || self.sections.iter().any(|s| !s.is_clean())
    }

    /// Renders the human-readable diff.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "sweep diff: {} cells compared, {} values",
            self.compared, self.values
        );
        for s in &self.sections {
            let _ = writeln!(out, "  cell {} DRIFT", s.section);
            for d in &s.deltas {
                let field = DIFFED_FIELDS
                    .get(d.cell.saturating_sub(1))
                    .copied()
                    .unwrap_or("?");
                let _ = writeln!(
                    out,
                    "    {field}: {} -> {} ({:+.2}%)",
                    d.archived,
                    d.regenerated,
                    d.rel_delta_pct()
                );
            }
            for m in &s.shape {
                let _ = writeln!(out, "    {m}");
            }
        }
        for k in &self.missing {
            let _ = writeln!(out, "  cell {k} MISSING from the new report");
        }
        for k in &self.added {
            let _ = writeln!(out, "  cell {k} ADDED in the new report");
        }
        if self.has_drift() {
            let _ = writeln!(out, "SWEEP DRIFT DETECTED");
        } else {
            let _ = writeln!(out, "no drift: the sweeps agree on every tracked value");
        }
        out
    }
}

fn numeric_field(cell: &CellResult, field: &str) -> Option<f64> {
    match field {
        "steps" => Some(cell.steps as f64),
        "time_ns" => Some(cell.time_ns as f64),
        "solutions" => Some(cell.solutions as f64),
        "hit_pct" => cell.hit_pct,
        "improvement_pct" => cell.improvement_pct,
        _ => None,
    }
}

/// Diffs two parsed sweeps cell by cell under `tolerance`
/// ([`Tolerance::EXACT`] by default usage — the simulator is
/// deterministic). Cells pair by key; outcome changes and
/// present-on-one-side optional fields report as shape mismatches,
/// numeric movements as [`CellDelta`]s.
pub fn diff_cells(old: &[CellResult], new: &[CellResult], tolerance: Tolerance) -> SweepDiff {
    use std::collections::BTreeMap;
    let new_by_key: BTreeMap<&str, &CellResult> = new.iter().map(|c| (c.key.as_str(), c)).collect();
    let old_keys: std::collections::BTreeSet<&str> = old.iter().map(|c| c.key.as_str()).collect();

    let mut diff = SweepDiff {
        compared: 0,
        values: 0,
        sections: Vec::new(),
        missing: Vec::new(),
        added: Vec::new(),
    };
    for o in old {
        let Some(n) = new_by_key.get(o.key.as_str()) else {
            diff.missing.push(o.key.clone());
            continue;
        };
        diff.compared += 1;
        let mut section = SectionDrift {
            section: o.key.clone(),
            cells: 0,
            deltas: Vec::new(),
            shape: Vec::new(),
        };
        if o.outcome != n.outcome {
            section
                .shape
                .push(format!("outcome changed: {} -> {}", o.outcome, n.outcome));
        }
        for (fi, field) in DIFFED_FIELDS.iter().enumerate() {
            match (numeric_field(o, field), numeric_field(n, field)) {
                (Some(a), Some(b)) => {
                    diff.values += 1;
                    section.cells += 1;
                    if !tolerance.allows(a, b) {
                        section.deltas.push(CellDelta {
                            line: 1,
                            cell: fi + 1,
                            archived: a,
                            regenerated: b,
                        });
                    }
                }
                (None, None) => {}
                (a, b) => section.shape.push(format!(
                    "{field} present on one side only ({} -> {})",
                    a.map_or_else(|| "absent".into(), |v| v.to_string()),
                    b.map_or_else(|| "absent".into(), |v| v.to_string()),
                )),
            }
        }
        if !section.is_clean() {
            diff.sections.push(section);
        }
    }
    for n in new {
        if !old_keys.contains(n.key.as_str()) {
            diff.added.push(n.key.clone());
        }
    }
    diff
}

/// Parses and diffs two serialized sweep reports.
///
/// # Errors
///
/// [`PsiError::Syntax`] when either report has a malformed cell line.
pub fn diff_reports(old: &str, new: &str, tolerance: Tolerance) -> psi_core::Result<SweepDiff> {
    Ok(diff_cells(
        &parse_report_cells(old)?,
        &parse_report_cells(new)?,
        tolerance,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use psi_workloads::contest;

    fn tiny_spec() -> SweepSpec {
        let (geometries, invalid) = GeometryAxis {
            capacities: vec![64, 8192],
            ways: vec![1, 2],
            block_words: vec![4],
            policies: vec![WritePolicy::StoreIn],
            write_stack_no_fetch: vec![true],
        }
        .expand();
        assert_eq!(invalid, 0);
        SweepSpec {
            name: "tiny".into(),
            workloads: vec![contest::nreverse(8), contest::quick_sort(10)],
            configs: vec![
                ConfigPoint::fidelity("A-linear", false),
                ConfigPoint {
                    name: "B-linear".into(),
                    lane: Lane::Throughput,
                    clause_indexing: false,
                    max_steps: None,
                },
            ],
            geometries,
        }
    }

    #[test]
    fn grid_expansion_counts_and_orders() {
        let spec = tiny_spec();
        let report = run_sweep(&spec, &SweepOptions::default());
        // 2 workloads × (1 fidelity config × 4 geometries + 1 fast
        // lane collapsed to 1 geometry).
        assert_eq!(report.cells.len(), 2 * (4 + 1));
        assert_eq!(report.collapsed_fast_lane_cells, 2 * 3);
        assert!(report.all_ok(), "{}", report.render());
        // Grid order is workload-major: first workload's five cells
        // first.
        assert!(report.cells[..5].iter().all(|c| c.workload == "nreverse"));
        // Keys are unique.
        let mut keys: Vec<&str> = report.cells.iter().map(|c| c.key.as_str()).collect();
        keys.sort_unstable();
        keys.dedup();
        assert_eq!(keys.len(), report.cells.len());
    }

    #[test]
    fn fork_replay_and_fresh_agree_on_deterministic_fields() {
        let spec = tiny_spec();
        let fork = run_sweep(
            &spec,
            &SweepOptions {
                mode: SweepMode::Fork,
                ..SweepOptions::default()
            },
        );
        let replay = run_sweep(
            &spec,
            &SweepOptions {
                mode: SweepMode::Replay,
                ..SweepOptions::default()
            },
        );
        let fresh = run_sweep(
            &spec,
            &SweepOptions {
                mode: SweepMode::Fresh,
                ..SweepOptions::default()
            },
        );
        for other in [&replay, &fresh] {
            let diff = diff_cells(&fork.cells, &other.cells, Tolerance::EXACT);
            assert!(
                !diff.has_drift(),
                "modes must agree bit-for-bit:\n{}",
                diff.render()
            );
        }
    }

    #[test]
    fn shards_partition_the_grid() {
        let spec = tiny_spec();
        let full = run_sweep(&spec, &SweepOptions::default());
        let shard = |i: usize| {
            run_sweep(
                &spec,
                &SweepOptions {
                    shard: Some((i, 2)),
                    ..SweepOptions::default()
                },
            )
        };
        let (s0, s1) = (shard(0), shard(1));
        let mut union: Vec<&CellResult> = s0.cells.iter().chain(&s1.cells).collect();
        assert_eq!(union.len(), full.cells.len());
        union.sort_by(|a, b| a.key.cmp(&b.key));
        union.dedup_by(|a, b| a.key == b.key);
        assert_eq!(union.len(), full.cells.len(), "shards must not overlap");
        let shard_cells: Vec<CellResult> = s0.cells.iter().chain(&s1.cells).cloned().collect();
        let diff = diff_cells(&full.cells, &shard_cells, Tolerance::EXACT);
        assert!(!diff.has_drift(), "{}", diff.render());
    }

    #[test]
    fn cell_json_line_round_trips() {
        let spec = tiny_spec();
        let report = run_sweep(&spec, &SweepOptions::default());
        for cell in &report.cells {
            let line = cell.to_json_line();
            let back = CellResult::from_json_line(&line).expect("parse back");
            assert_eq!(&back, cell, "{line}");
        }
        assert!(CellResult::from_json_line("{\"key\":\"abc\"}").is_none());
        assert!(CellResult::from_json_line("not json").is_none());
    }

    #[test]
    fn report_json_parses_back_and_diffs_clean_against_itself() {
        let spec = tiny_spec();
        let report = run_sweep(&spec, &SweepOptions::default());
        let json = report.to_json();
        assert!(json.starts_with("{\n  \"schema\": \"psi-sweep-v1\""));
        let cells = parse_report_cells(&json).unwrap();
        assert_eq!(cells.len(), report.cells.len());
        let diff = diff_reports(&json, &json, Tolerance::EXACT).unwrap();
        assert_eq!(diff.compared, report.cells.len());
        assert!(!diff.has_drift());
    }

    #[test]
    fn diff_flags_value_outcome_and_membership_drift() {
        let spec = tiny_spec();
        let report = run_sweep(&spec, &SweepOptions::default());
        let mut tampered = report.cells.clone();
        tampered[0].steps += 7;
        tampered[1].outcome = "failed".into();
        let dropped = tampered.pop().unwrap();
        let diff = diff_cells(&report.cells, &tampered, Tolerance::EXACT);
        assert!(diff.has_drift());
        assert_eq!(diff.missing, vec![dropped.key.clone()]);
        assert!(diff
            .sections
            .iter()
            .any(|s| s.deltas.iter().any(|d| d.cell == 1)));
        assert!(diff
            .sections
            .iter()
            .any(|s| s.shape.iter().any(|m| m.contains("outcome changed"))));
        let rendered = diff.render();
        assert!(rendered.contains("SWEEP DRIFT DETECTED"), "{rendered}");
    }

    #[test]
    fn governed_config_point_reports_exhaustion_as_one_cell() {
        let (geometries, _) = GeometryAxis::psi_only().expand();
        let spec = SweepSpec {
            name: "governed".into(),
            workloads: vec![contest::nreverse(20)],
            configs: vec![ConfigPoint {
                name: "A-starved".into(),
                lane: Lane::Fidelity,
                clause_indexing: false,
                max_steps: Some(10),
            }],
            geometries,
        };
        let report = run_sweep(&spec, &SweepOptions::default());
        assert_eq!(report.cells.len(), 1);
        assert_eq!(report.cells[0].outcome, "exhausted");
        assert!(report.cells[0].detail.contains("steps"));
    }

    #[test]
    fn invalid_geometry_combinations_are_filtered_and_counted() {
        let (geoms, invalid) = GeometryAxis {
            capacities: vec![8],
            ways: vec![2],
            block_words: vec![4, 8],
            policies: vec![WritePolicy::StoreIn],
            write_stack_no_fetch: vec![true],
        }
        .expand();
        // cap 8 / block 8 / ways 2 needs 16 words minimum → invalid.
        assert_eq!(geoms.len(), 1);
        assert_eq!(invalid, 1);
        assert!(geometry_is_valid(&CacheConfig::psi()));
    }
}
