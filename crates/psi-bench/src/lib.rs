//! Regenerators for every table and figure of the paper.
//!
//! Each `tableN_report` / `figure1_report` function runs the
//! corresponding workloads on the simulators and renders the same
//! rows the paper reports, side by side with the paper's values
//! (from [`psi_workloads::suite::paper`]). The binaries in `src/bin`
//! print one report each; EXPERIMENTS.md archives their output.
//!
//! The regenerators are fault-isolated: suites run through the
//! governed runner ([`psi_workloads::runner::run_suite_governed`]),
//! so a workload that fails, exhausts a budget, or panics degrades
//! into an annotated row while every remaining row is still
//! regenerated. On the default (unlimited) configuration every row
//! is ok and the reports are byte-identical to a serial run.
//!
//! The [`drift`] module closes the loop: it re-runs every generator
//! and diffs the output cell-by-cell against the blocks archived in
//! EXPERIMENTS.md (the `drift_report` binary exits nonzero on
//! unexplained drift, and CI runs it).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod drift;
pub mod perf;
pub mod sweep;

use psi_machine::{InterpModule, MachineConfig, MachineStats};
use psi_workloads::runner::{
    default_parallelism, par_map_catch, run_on_dec, run_on_psi, run_suite_governed, SuiteOptions,
    SuiteReport,
};
use psi_workloads::suite::{self, paper};
use psi_workloads::{parsers, window, Workload};
use std::fmt::Write as _;

/// Runs one workload on the PSI machine, containing failure to this
/// row.
fn try_run_psi(w: &Workload) -> Result<MachineStats, String> {
    run_on_psi(w, MachineConfig::psi())
        .map(|r| r.stats)
        .map_err(|e| e.to_string())
}

/// Runs a suite through the governed parallel runner. Rendering
/// afterwards stays serial, so report text is identical to a serial
/// run whenever every row is ok; failed rows degrade into annotated
/// lines instead of aborting the report.
fn run_suite(workloads: &[Workload]) -> SuiteReport {
    run_suite_governed(workloads, &MachineConfig::psi(), &SuiteOptions::default())
}

/// Renders the standard annotation for a row whose workload did not
/// complete.
fn unavailable_row(out: &mut String, name: &str, width: usize, reason: &str) {
    let _ = writeln!(out, "{name:<width$} (row unavailable: {reason})");
}

/// Table 1: execution time of the nineteen benchmark programs on both
/// machines, with the paper's DEC/PSI ratios for comparison.
pub fn table1_report() -> String {
    use psi_workloads::runner::{DecRun, PsiRun};
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Table 1: Execution time of benchmark programs on PSI and DEC-2060"
    );
    let _ = writeln!(
        out,
        "{:<20} {:>10} {:>10} {:>9} {:>11}",
        "program", "PSI(ms)", "DEC(ms)", "DEC/PSI", "paper ratio"
    );
    // Both engines for all nineteen rows in parallel; the rows are
    // rendered in suite order afterwards, so the report text matches
    // the serial version byte for byte. Panics and engine errors are
    // contained per row.
    let entries = suite::table1_suite();
    let runs = par_map_catch(
        &entries,
        default_parallelism(),
        |_, e| -> Result<(PsiRun, DecRun), String> {
            let psi = run_on_psi(&e.workload, MachineConfig::psi())
                .map_err(|err| format!("{}: {err}", e.workload.name))?;
            let dec =
                run_on_dec(&e.workload).map_err(|err| format!("{}: {err}", e.workload.name))?;
            Ok((psi, dec))
        },
    );
    for (e, slot) in entries.iter().zip(runs) {
        let label = format!("({}) {}", e.index, e.workload.name);
        let run = slot
            .map_err(|panic_msg| format!("panicked: {panic_msg}"))
            .and_then(|r| r);
        match run {
            Ok((psi, dec)) => {
                if psi.solutions != dec.solutions {
                    unavailable_row(&mut out, &label, 20, "engines disagree on solutions");
                    continue;
                }
                let psi_ms = psi.stats.time_ms();
                let dec_ms = dec.time_ns as f64 / 1e6;
                let _ = writeln!(
                    out,
                    "{:<20} {:>10.2} {:>10.2} {:>9.2} {:>11.2}",
                    label,
                    psi_ms,
                    dec_ms,
                    dec_ms / psi_ms,
                    e.paper_ratio()
                );
            }
            Err(reason) => unavailable_row(&mut out, &label, 20, &reason),
        }
    }
    out
}

/// Table 2: execution step ratios of each interpreter module (%),
/// plus the §3.2 built-in call shares.
pub fn table2_report() -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Table 2: Execution step ratios of each component module of the firmware interpreter (%)"
    );
    let _ = writeln!(
        out,
        "{:<14} {:>9} {:>9} {:>9} {:>9} {:>9} {:>9}",
        "program", "control", "unify", "trail", "get_arg", "cut", "built"
    );
    let workloads = suite::table2_suite();
    let report = run_suite(&workloads);
    for (i, (w, row)) in workloads.iter().zip(&report.rows).enumerate() {
        match row.run() {
            Some(run) => {
                let stats = &run.stats;
                let pct = stats.modules.percentages();
                let _ = writeln!(
                    out,
                    "{:<14} {:>9.1} {:>9.1} {:>9.1} {:>9.1} {:>9.1} {:>9.1}",
                    w.name,
                    pct[InterpModule::Control.index()],
                    pct[InterpModule::Unify.index()],
                    pct[InterpModule::Trail.index()],
                    pct[InterpModule::GetArg.index()],
                    pct[InterpModule::Cut.index()],
                    pct[InterpModule::Builtin.index()],
                );
            }
            None => unavailable_row(&mut out, &w.name, 14, &row.describe()),
        }
        let (pname, prow) = paper::TABLE2[i];
        let _ = writeln!(
            out,
            "{:<14} {:>9.1} {:>9.1} {:>9.1} {:>9.1} {:>9.1} {:>9.1}",
            format!("  paper {pname}"),
            prow[0],
            prow[1],
            prow[2],
            prow[3],
            prow[4],
            prow[5],
        );
        // §3.2 built-in call shares for window and BUP.
        if let Some(run) = row.run() {
            if w.name.starts_with("window") || w.name.starts_with("BUP") {
                let _ = writeln!(
                    out,
                    "{:<14} built-in call share: {:.1}% (paper: {}%)",
                    "",
                    run.stats.builtin_call_share_pct(),
                    if w.name.starts_with("window") {
                        82.0
                    } else {
                        65.0
                    }
                );
            }
        }
    }
    out
}

/// The seven Table 3–5 workloads, run once (in parallel) and shared by
/// all three reports — the serial version recomputed the whole suite
/// per table. A row that fails is memoized as its failure reason so
/// each table annotates it without rerunning.
fn hardware_stats() -> &'static [(String, Result<MachineStats, String>)] {
    use std::sync::OnceLock;
    static STATS: OnceLock<Vec<(String, Result<MachineStats, String>)>> = OnceLock::new();
    STATS.get_or_init(|| {
        let workloads = suite::hardware_suite();
        let report = run_suite(&workloads);
        report
            .rows
            .iter()
            .zip(&workloads)
            .map(|(row, w)| {
                let stats = match row.run() {
                    Some(run) => Ok(run.stats.clone()),
                    None => Err(row.describe()),
                };
                (w.name.clone(), stats)
            })
            .collect()
    })
}

/// Table 3: execution rate of each cache command per microstep (%),
/// plus the §4.2 read:write and write-stack share observations.
pub fn table3_report() -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Table 3: Execution rate of each cache command in the total microprogram steps (%)"
    );
    let _ = writeln!(
        out,
        "{:<14} {:>7} {:>12} {:>7} {:>12} {:>7}   (paper total)",
        "program", "read", "write-stack", "write", "write-total", "total"
    );
    for (i, (name, stats)) in hardware_stats().iter().enumerate() {
        let s = match stats {
            Ok(s) => s,
            Err(reason) => {
                unavailable_row(&mut out, name, 14, reason);
                continue;
            }
        };
        let steps = s.steps.max(1) as f64;
        let t = s.cache.total();
        let read = t.reads as f64 * 100.0 / steps;
        let ws = t.write_stacks as f64 * 100.0 / steps;
        let wr = t.writes as f64 * 100.0 / steps;
        let _ = writeln!(
            out,
            "{:<14} {:>7.1} {:>12.1} {:>7.1} {:>12.1} {:>7.1}   ({:.1})",
            name,
            read,
            ws,
            wr,
            ws + wr,
            read + ws + wr,
            paper::TABLE3[i].1[4],
        );
    }
    match &hardware_stats()[4].1 {
        // BUP (memoized, not a rerun)
        Ok(s) => {
            let _ = writeln!(
                out,
                "\nread:write ratio (BUP) = {:.2} (paper: about 3:1); \
                 write-stack share of writes = {:.0}% (paper: 50-75%)",
                s.cache.read_write_ratio().unwrap_or(0.0),
                s.cache.write_stack_share_pct().unwrap_or(0.0),
            );
        }
        Err(reason) => {
            let _ = writeln!(out, "\n(BUP observations unavailable: {reason})");
        }
    }
    out
}

/// Table 4: access frequency of each memory area (%).
pub fn table4_report() -> String {
    let mut out = String::new();
    let _ = writeln!(out, "Table 4: Access frequency of each memory area (%)");
    let _ = writeln!(
        out,
        "{:<14} {:>7} {:>8} {:>7} {:>8} {:>7}",
        "program", "heap", "global", "local", "control", "trail"
    );
    for (i, (name, stats)) in hardware_stats().iter().enumerate() {
        match stats {
            Ok(s) => {
                let shares = s.cache.area_shares_pct();
                use psi_core::Area;
                let _ = writeln!(
                    out,
                    "{:<14} {:>7.1} {:>8.1} {:>7.1} {:>8.1} {:>7.1}",
                    name,
                    shares[Area::Heap.index()],
                    shares[Area::GlobalStack.index()],
                    shares[Area::LocalStack.index()],
                    shares[Area::ControlStack.index()],
                    shares[Area::TrailStack.index()],
                );
            }
            Err(reason) => unavailable_row(&mut out, name, 14, reason),
        }
        let p = paper::TABLE4[i].1;
        let _ = writeln!(
            out,
            "{:<14} {:>7.1} {:>8.1} {:>7.1} {:>8.1} {:>7.1}",
            "  paper", p[0], p[1], p[2], p[3], p[4],
        );
    }
    out
}

/// Table 5: cache hit ratios of each memory area (%).
pub fn table5_report() -> String {
    let mut out = String::new();
    let _ = writeln!(out, "Table 5: Cache hit ratios of each memory area (%)");
    let _ = writeln!(
        out,
        "{:<14} {:>7} {:>8} {:>7} {:>8} {:>7} {:>7}",
        "program", "heap", "global", "local", "control", "trail", "total"
    );
    use psi_core::Area;
    for (i, (name, stats)) in hardware_stats().iter().enumerate() {
        match stats {
            Ok(s) => {
                let hit = |a: Area| s.cache.area(a).hit_ratio_pct().unwrap_or(100.0);
                let _ = writeln!(
                    out,
                    "{:<14} {:>7.1} {:>8.1} {:>7.1} {:>8.1} {:>7.1} {:>7.1}",
                    name,
                    hit(Area::Heap),
                    hit(Area::GlobalStack),
                    hit(Area::LocalStack),
                    hit(Area::ControlStack),
                    hit(Area::TrailStack),
                    s.cache.hit_ratio_pct().unwrap_or(100.0),
                );
            }
            Err(reason) => unavailable_row(&mut out, name, 14, reason),
        }
        let p = paper::TABLE5[i].1;
        let _ = writeln!(
            out,
            "{:<14} {:>7.1} {:>8.1} {:>7.1} {:>8.1} {:>7.1} {:>7.1}",
            "  paper", p[0], p[2], p[1], p[3], p[4], p[5],
        );
    }
    out
}

/// Table 6: dynamic frequency of WF access modes, measured on BUP as
/// in the paper.
pub fn table6_report() -> String {
    let mut out = String::new();
    let w = parsers::bup(2);
    let _ = writeln!(
        out,
        "Table 6: Dynamic frequency of the Work File access modes (%), program BUP"
    );
    let stats = match try_run_psi(&w) {
        Ok(stats) => stats,
        Err(reason) => {
            unavailable_row(&mut out, &w.name, 12, &reason);
            return out;
        }
    };
    let rows = psi_tools::map::wf_mode_table(&stats.wf, stats.steps);
    let rates = psi_tools::map::wf_field_rates(&stats.wf, stats.steps);
    let _ = writeln!(
        out,
        "{:<12} {:>16} {:>16} {:>16}",
        "mode", "source1 †/‡", "source2 †/‡", "dest †/‡"
    );
    for (i, row) in rows.iter().enumerate() {
        let cell = |f: Option<(f64, f64)>| match f {
            Some((share, rate)) => format!("{share:5.1}/{rate:5.1}"),
            None => "    -    ".to_owned(),
        };
        let _ = writeln!(
            out,
            "{:<12} {:>16} {:>16} {:>16}   (paper s1 share: {})",
            row.mode.label(),
            cell(row.fields[0]),
            cell(row.fields[1]),
            cell(row.fields[2]),
            paper::TABLE6_SHARES[i].1[0],
        );
    }
    let _ = writeln!(
        out,
        "{:<12} {:>10.1} {:>16.1} {:>16.1}   (paper: {:.1} {:.1} {:.1})",
        "total ‡",
        rates[0],
        rates[1],
        rates[2],
        paper::TABLE6_FIELD_RATES[0],
        paper::TABLE6_FIELD_RATES[1],
        paper::TABLE6_FIELD_RATES[2],
    );
    let _ = writeln!(
        out,
        "\ndirect+buffer coverage = {:.2}% (paper: >99%); \
         WFAR1 auto-increment share = {:.0}% (paper: >=90%)",
        stats.wf.coverage_direct_and_buffers_pct(),
        stats.wf.wfar1_auto_share_pct(),
    );
    out
}

/// Table 7: dynamic frequency of branch operations for BUP, window
/// and 8 puzzle.
pub fn table7_report() -> String {
    let mut out = String::new();
    let workloads = [
        parsers::bup(2),
        window::window(1),
        psi_workloads::puzzle::eight_puzzle(6),
    ];
    let stats: Vec<Result<MachineStats, String>> =
        par_map_catch(&workloads, default_parallelism(), |_, w| try_run_psi(w))
            .into_iter()
            .map(|slot| slot.map_err(|p| format!("panicked: {p}")).and_then(|r| r))
            .collect();
    let _ = writeln!(
        out,
        "Table 7: Dynamic frequency of branch operations in microprogram steps (%)"
    );
    let _ = writeln!(
        out,
        "{:<22} {:>7} {:>7} {:>9}   paper(BUP, window, 8puz)",
        "operation", "BUP", "window", "8 puzzle"
    );
    for (w, s) in workloads.iter().zip(&stats) {
        if let Err(reason) = s {
            unavailable_row(&mut out, &w.name, 22, reason);
        }
    }
    let tables: Vec<_> = stats
        .iter()
        .map(|s| {
            s.as_ref()
                .ok()
                .map(|s| psi_tools::map::branch_table(&s.branches))
        })
        .collect();
    // A failed workload renders as "-" in its column; the other
    // columns still regenerate.
    let share = |t: &Option<Vec<psi_tools::map::BranchRow>>, i: usize, width: usize| match t {
        Some(rows) => format!("{:>width$.1}", rows[i].share_pct),
        None => format!("{:>width$}", "-"),
    };
    for (i, row) in paper::TABLE7.iter().enumerate().take(16) {
        let p = row.1;
        let label = tables
            .iter()
            .flatten()
            .next()
            .map(|rows| rows[i].op.label())
            .unwrap_or(row.0);
        let _ = writeln!(
            out,
            "{:<22} {} {} {}   ({:.1}, {:.1}, {:.2})",
            label,
            share(&tables[0], i, 7),
            share(&tables[1], i, 7),
            share(&tables[2], i, 9),
            p[0],
            p[1],
            p[2],
        );
    }
    for (w, s) in workloads.iter().zip(&stats) {
        if let Ok(s) = s {
            let _ = writeln!(
                out,
                "{:<14} branch share = {:.1}% (paper: 77-83%), with data = {:.1}% (paper: ~50%)",
                w.name,
                s.branches.branch_share_pct(),
                s.branches.with_data_share_pct(),
            );
        }
    }
    out
}

/// Figure 1 plus the §4.2 in-text studies: improvement ratio vs cache
/// capacity on the WINDOW trace, 1-set vs 2-set, store-in vs
/// store-through.
///
/// A thin consumer of the [`sweep`] engine: the eleven Figure 1
/// capacities plus the two §4.2 study geometries run as one
/// 13-geometry replay grid over the WINDOW workload. The cap-8192
/// cell doubles as the two-set and store-in study values
/// ([`psi_cache::CacheConfig::psi_two_set_8k`] *is* the stock
/// geometry), so nothing is replayed twice. Byte-identical to the
/// pre-engine direct `capacity_sweep_parallel` output — the engine's
/// replay cells go through the same [`psi_tools::pmms`] math.
pub fn figure1_report() -> String {
    use psi_cache::CacheConfig;
    let mut out = String::new();
    let w = window::window(1);
    let _ = writeln!(
        out,
        "Figure 1: Performance improvement ratios against the cache memory size"
    );
    let caps = psi_tools::pmms::figure1_capacities();
    let mut geometries: Vec<CacheConfig> = caps
        .iter()
        .map(|&cap| CacheConfig::psi_with_capacity(cap))
        .collect();
    geometries.push(CacheConfig::psi_direct_mapped_4k());
    geometries.push(CacheConfig::psi_store_through());
    let spec = sweep::SweepSpec {
        name: "figure1".into(),
        workloads: vec![w.clone()],
        configs: vec![sweep::ConfigPoint::fidelity("A-linear", false)],
        geometries,
    };
    let report = sweep::run_sweep(
        &spec,
        &sweep::SweepOptions {
            mode: sweep::SweepMode::Replay,
            ..sweep::SweepOptions::default()
        },
    );
    if !report.all_ok() || report.planes.is_empty() {
        let reason = report.cells.iter().find(|c| c.outcome != "ok").map_or_else(
            || "sweep produced no cells".to_owned(),
            |c| c.detail.clone(),
        );
        unavailable_row(&mut out, &w.name, 12, &reason);
        return out;
    }
    let plane = &report.planes[0];
    let _ = writeln!(
        out,
        "(trace: {}, {} accesses, {} steps)",
        w.name, plane.trace_len, plane.steps
    );
    let _ = writeln!(out, "{:>10} {:>12}", "capacity", "improvement%");
    let ratio_of = |cell: &sweep::CellResult| cell.improvement_pct.unwrap_or(0.0);
    for (cap, cell) in caps.iter().zip(&report.cells) {
        let ratio = ratio_of(cell);
        let bar = "#".repeat((ratio / 2.0).max(0.0) as usize);
        let _ = writeln!(out, "{:>10} {:>12.1}  {}", cap, ratio, bar);
    }
    let _ = writeln!(
        out,
        "(paper: the improvement ratio saturates near 512 words)"
    );

    // Cell 10 is cap 8192 = the stock two-set store-in geometry;
    // cells 11 and 12 are the appended study geometries.
    let (two, one) = (ratio_of(&report.cells[10]), ratio_of(&report.cells[11]));
    let _ = writeln!(
        out,
        "\nassociativity: two 4KW sets = {two:.1}%, one 4KW set = {one:.1}%, \
         delta = {:.1} points (paper: one set only ~3% lower)",
        two - one
    );
    let (si, st) = (ratio_of(&report.cells[10]), ratio_of(&report.cells[12]));
    let _ = writeln!(
        out,
        "write policy: store-in = {si:.1}%, store-through = {st:.1}%, \
         delta = {:.1} points (paper: store-in 8% higher)",
        si - st
    );
    out
}

/// Ablation study for the design choices DESIGN.md calls out: tail
/// recursion optimization and the WF frame buffers.
pub fn ablation_report() -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Ablation: PSI design features on nreverse(30) and BUP-2"
    );
    let _ = writeln!(
        out,
        "{:<34} {:>10} {:>10} {:>10}",
        "configuration", "steps", "time_ms", "local%"
    );
    // The full workload × feature grid runs in parallel; rendering
    // preserves grid order and contains failures per cell.
    let mut grid = Vec::new();
    for w in [psi_workloads::contest::nreverse(30), parsers::bup(2)] {
        for (label, tro, fb) in [
            ("full PSI", true, true),
            ("no tail recursion opt", false, true),
            ("no frame buffering", true, false),
            ("neither", false, false),
        ] {
            grid.push((w.clone(), label, tro, fb));
        }
    }
    let runs = par_map_catch(&grid, default_parallelism(), |_, (w, _, tro, fb)| {
        let mut config = MachineConfig::psi();
        config.tail_recursion_opt = *tro;
        config.frame_buffering = *fb;
        run_on_psi(w, config)
            .map(|r| r.stats)
            .map_err(|e| e.to_string())
    });
    for ((w, label, _, _), slot) in grid.iter().zip(&runs) {
        let cell = format!("{} / {}", w.name, label);
        match slot
            .as_ref()
            .map_err(|p| format!("panicked: {p}"))
            .and_then(|r| r.clone())
        {
            Ok(stats) => {
                let local = stats.cache.area_shares_pct()[psi_core::Area::LocalStack.index()];
                let _ = writeln!(
                    out,
                    "{:<34} {:>10} {:>10.2} {:>10.1}",
                    cell,
                    stats.steps,
                    stats.time_ms(),
                    local,
                );
            }
            Err(reason) => unavailable_row(&mut out, &cell, 34, &reason),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_report_contains_all_rows() {
        let r = table2_report();
        for name in ["window-1", "8 puzzle", "BUP-3", "harmonizer-2"] {
            assert!(r.contains(name), "{r}");
        }
    }

    #[test]
    fn figure1_report_runs() {
        let r = figure1_report();
        assert!(r.contains("store-in"));
        assert!(r.contains("8192"));
    }
}
