//! Regenerators for every table and figure of the paper.
//!
//! Each `tableN_report` / `figure1_report` function runs the
//! corresponding workloads on the simulators and renders the same
//! rows the paper reports, side by side with the paper's values
//! (from [`psi_workloads::suite::paper`]). The binaries in `src/bin`
//! print one report each; EXPERIMENTS.md archives their output.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use psi_machine::{InterpModule, MachineConfig, MachineStats};
use psi_workloads::runner::{
    default_parallelism, par_map, run_on_dec, run_on_psi, run_on_psi_machine, run_suite_parallel,
};
use psi_workloads::suite::{self, paper};
use psi_workloads::{parsers, window, Workload};
use std::fmt::Write as _;

fn run_psi(w: &Workload) -> MachineStats {
    run_on_psi(w, MachineConfig::psi())
        .unwrap_or_else(|e| panic!("{}: {e}", w.name))
        .stats
}

/// Runs a suite through [`run_suite_parallel`] and unwraps each run,
/// preserving workload order. Rendering afterwards stays serial, so
/// report text is identical to a serial run.
fn run_suite(workloads: &[Workload]) -> Vec<psi_workloads::runner::PsiRun> {
    run_suite_parallel(workloads, &MachineConfig::psi())
        .into_iter()
        .zip(workloads)
        .map(|(r, w)| r.unwrap_or_else(|e| panic!("{}: {e}", w.name)))
        .collect()
}

/// Table 1: execution time of the nineteen benchmark programs on both
/// machines, with the paper's DEC/PSI ratios for comparison.
pub fn table1_report() -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Table 1: Execution time of benchmark programs on PSI and DEC-2060"
    );
    let _ = writeln!(
        out,
        "{:<20} {:>10} {:>10} {:>9} {:>11}",
        "program", "PSI(ms)", "DEC(ms)", "DEC/PSI", "paper ratio"
    );
    // Both engines for all nineteen rows in parallel; the rows are
    // rendered in suite order afterwards, so the report text matches
    // the serial version byte for byte.
    let entries = suite::table1_suite();
    let runs = par_map(&entries, default_parallelism(), |_, e| {
        let psi = run_on_psi(&e.workload, MachineConfig::psi())
            .unwrap_or_else(|err| panic!("{}: {err}", e.workload.name));
        let dec =
            run_on_dec(&e.workload).unwrap_or_else(|err| panic!("{}: {err}", e.workload.name));
        (psi, dec)
    });
    for (e, (psi, dec)) in entries.iter().zip(runs) {
        assert_eq!(
            psi.solutions, dec.solutions,
            "{}: engines disagree",
            e.workload.name
        );
        let psi_ms = psi.stats.time_ms();
        let dec_ms = dec.time_ns as f64 / 1e6;
        let _ = writeln!(
            out,
            "{:<20} {:>10.2} {:>10.2} {:>9.2} {:>11.2}",
            format!("({}) {}", e.index, e.workload.name),
            psi_ms,
            dec_ms,
            dec_ms / psi_ms,
            e.paper_ratio()
        );
    }
    out
}

/// Table 2: execution step ratios of each interpreter module (%),
/// plus the §3.2 built-in call shares.
pub fn table2_report() -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Table 2: Execution step ratios of each component module of the firmware interpreter (%)"
    );
    let _ = writeln!(
        out,
        "{:<14} {:>9} {:>9} {:>9} {:>9} {:>9} {:>9}",
        "program", "control", "unify", "trail", "get_arg", "cut", "built"
    );
    let workloads = suite::table2_suite();
    let runs = run_suite(&workloads);
    for (i, (w, run)) in workloads.iter().zip(&runs).enumerate() {
        let stats = &run.stats;
        let pct = stats.modules.percentages();
        let _ = writeln!(
            out,
            "{:<14} {:>9.1} {:>9.1} {:>9.1} {:>9.1} {:>9.1} {:>9.1}",
            w.name,
            pct[InterpModule::Control.index()],
            pct[InterpModule::Unify.index()],
            pct[InterpModule::Trail.index()],
            pct[InterpModule::GetArg.index()],
            pct[InterpModule::Cut.index()],
            pct[InterpModule::Builtin.index()],
        );
        let (pname, prow) = paper::TABLE2[i];
        let _ = writeln!(
            out,
            "{:<14} {:>9.1} {:>9.1} {:>9.1} {:>9.1} {:>9.1} {:>9.1}",
            format!("  paper {pname}"),
            prow[0],
            prow[1],
            prow[2],
            prow[3],
            prow[4],
            prow[5],
        );
        // §3.2 built-in call shares for window and BUP.
        if w.name.starts_with("window") || w.name.starts_with("BUP") {
            let _ = writeln!(
                out,
                "{:<14} built-in call share: {:.1}% (paper: {}%)",
                "",
                stats.builtin_call_share_pct(),
                if w.name.starts_with("window") {
                    82.0
                } else {
                    65.0
                }
            );
        }
    }
    out
}

/// The seven Table 3–5 workloads, run once (in parallel) and shared by
/// all three reports — the serial version recomputed the whole suite
/// per table.
fn hardware_stats() -> &'static [(String, MachineStats)] {
    use std::sync::OnceLock;
    static STATS: OnceLock<Vec<(String, MachineStats)>> = OnceLock::new();
    STATS.get_or_init(|| {
        let workloads = suite::hardware_suite();
        run_suite(&workloads)
            .into_iter()
            .zip(&workloads)
            .map(|(run, w)| (w.name.clone(), run.stats))
            .collect()
    })
}

/// Table 3: execution rate of each cache command per microstep (%),
/// plus the §4.2 read:write and write-stack share observations.
pub fn table3_report() -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Table 3: Execution rate of each cache command in the total microprogram steps (%)"
    );
    let _ = writeln!(
        out,
        "{:<14} {:>7} {:>12} {:>7} {:>12} {:>7}   (paper total)",
        "program", "read", "write-stack", "write", "write-total", "total"
    );
    for (i, (name, s)) in hardware_stats().iter().enumerate() {
        let steps = s.steps.max(1) as f64;
        let t = s.cache.total();
        let read = t.reads as f64 * 100.0 / steps;
        let ws = t.write_stacks as f64 * 100.0 / steps;
        let wr = t.writes as f64 * 100.0 / steps;
        let _ = writeln!(
            out,
            "{:<14} {:>7.1} {:>12.1} {:>7.1} {:>12.1} {:>7.1}   ({:.1})",
            name,
            read,
            ws,
            wr,
            ws + wr,
            read + ws + wr,
            paper::TABLE3[i].1[4],
        );
    }
    let (_, s) = &hardware_stats()[4]; // BUP (memoized, not a rerun)
    let _ = writeln!(
        out,
        "\nread:write ratio (BUP) = {:.2} (paper: about 3:1); \
         write-stack share of writes = {:.0}% (paper: 50-75%)",
        s.cache.read_write_ratio().unwrap_or(0.0),
        s.cache.write_stack_share_pct().unwrap_or(0.0),
    );
    out
}

/// Table 4: access frequency of each memory area (%).
pub fn table4_report() -> String {
    let mut out = String::new();
    let _ = writeln!(out, "Table 4: Access frequency of each memory area (%)");
    let _ = writeln!(
        out,
        "{:<14} {:>7} {:>8} {:>7} {:>8} {:>7}",
        "program", "heap", "global", "local", "control", "trail"
    );
    for (i, (name, s)) in hardware_stats().iter().enumerate() {
        let shares = s.cache.area_shares_pct();
        use psi_core::Area;
        let _ = writeln!(
            out,
            "{:<14} {:>7.1} {:>8.1} {:>7.1} {:>8.1} {:>7.1}",
            name,
            shares[Area::Heap.index()],
            shares[Area::GlobalStack.index()],
            shares[Area::LocalStack.index()],
            shares[Area::ControlStack.index()],
            shares[Area::TrailStack.index()],
        );
        let p = paper::TABLE4[i].1;
        let _ = writeln!(
            out,
            "{:<14} {:>7.1} {:>8.1} {:>7.1} {:>8.1} {:>7.1}",
            "  paper", p[0], p[1], p[2], p[3], p[4],
        );
    }
    out
}

/// Table 5: cache hit ratios of each memory area (%).
pub fn table5_report() -> String {
    let mut out = String::new();
    let _ = writeln!(out, "Table 5: Cache hit ratios of each memory area (%)");
    let _ = writeln!(
        out,
        "{:<14} {:>7} {:>8} {:>7} {:>8} {:>7} {:>7}",
        "program", "heap", "global", "local", "control", "trail", "total"
    );
    use psi_core::Area;
    for (i, (name, s)) in hardware_stats().iter().enumerate() {
        let hit = |a: Area| s.cache.area(a).hit_ratio_pct().unwrap_or(100.0);
        let _ = writeln!(
            out,
            "{:<14} {:>7.1} {:>8.1} {:>7.1} {:>8.1} {:>7.1} {:>7.1}",
            name,
            hit(Area::Heap),
            hit(Area::GlobalStack),
            hit(Area::LocalStack),
            hit(Area::ControlStack),
            hit(Area::TrailStack),
            s.cache.hit_ratio_pct().unwrap_or(100.0),
        );
        let p = paper::TABLE5[i].1;
        let _ = writeln!(
            out,
            "{:<14} {:>7.1} {:>8.1} {:>7.1} {:>8.1} {:>7.1} {:>7.1}",
            "  paper", p[0], p[2], p[1], p[3], p[4], p[5],
        );
    }
    out
}

/// Table 6: dynamic frequency of WF access modes, measured on BUP as
/// in the paper.
pub fn table6_report() -> String {
    let mut out = String::new();
    let w = parsers::bup(2);
    let stats = run_psi(&w);
    let rows = psi_tools::map::wf_mode_table(&stats.wf, stats.steps);
    let rates = psi_tools::map::wf_field_rates(&stats.wf, stats.steps);
    let _ = writeln!(
        out,
        "Table 6: Dynamic frequency of the Work File access modes (%), program BUP"
    );
    let _ = writeln!(
        out,
        "{:<12} {:>16} {:>16} {:>16}",
        "mode", "source1 †/‡", "source2 †/‡", "dest †/‡"
    );
    for (i, row) in rows.iter().enumerate() {
        let cell = |f: Option<(f64, f64)>| match f {
            Some((share, rate)) => format!("{share:5.1}/{rate:5.1}"),
            None => "    -    ".to_owned(),
        };
        let _ = writeln!(
            out,
            "{:<12} {:>16} {:>16} {:>16}   (paper s1 share: {})",
            row.mode.label(),
            cell(row.fields[0]),
            cell(row.fields[1]),
            cell(row.fields[2]),
            paper::TABLE6_SHARES[i].1[0],
        );
    }
    let _ = writeln!(
        out,
        "{:<12} {:>10.1} {:>16.1} {:>16.1}   (paper: {:.1} {:.1} {:.1})",
        "total ‡",
        rates[0],
        rates[1],
        rates[2],
        paper::TABLE6_FIELD_RATES[0],
        paper::TABLE6_FIELD_RATES[1],
        paper::TABLE6_FIELD_RATES[2],
    );
    let _ = writeln!(
        out,
        "\ndirect+buffer coverage = {:.2}% (paper: >99%); \
         WFAR1 auto-increment share = {:.0}% (paper: >=90%)",
        stats.wf.coverage_direct_and_buffers_pct(),
        stats.wf.wfar1_auto_share_pct(),
    );
    out
}

/// Table 7: dynamic frequency of branch operations for BUP, window
/// and 8 puzzle.
pub fn table7_report() -> String {
    let mut out = String::new();
    let workloads = [
        parsers::bup(2),
        window::window(1),
        psi_workloads::puzzle::eight_puzzle(6),
    ];
    let stats: Vec<MachineStats> = par_map(&workloads, default_parallelism(), |_, w| run_psi(w));
    let _ = writeln!(
        out,
        "Table 7: Dynamic frequency of branch operations in microprogram steps (%)"
    );
    let _ = writeln!(
        out,
        "{:<22} {:>7} {:>7} {:>9}   paper(BUP, window, 8puz)",
        "operation", "BUP", "window", "8 puzzle"
    );
    let tables: Vec<_> = stats
        .iter()
        .map(|s| psi_tools::map::branch_table(&s.branches))
        .collect();
    for (i, row) in paper::TABLE7.iter().enumerate().take(16) {
        let p = row.1;
        let _ = writeln!(
            out,
            "{:<22} {:>7.1} {:>7.1} {:>9.1}   ({:.1}, {:.1}, {:.2})",
            tables[0][i].op.label(),
            tables[0][i].share_pct,
            tables[1][i].share_pct,
            tables[2][i].share_pct,
            p[0],
            p[1],
            p[2],
        );
    }
    for (w, s) in workloads.iter().zip(&stats) {
        let _ = writeln!(
            out,
            "{:<14} branch share = {:.1}% (paper: 77-83%), with data = {:.1}% (paper: ~50%)",
            w.name,
            s.branches.branch_share_pct(),
            s.branches.with_data_share_pct(),
        );
    }
    out
}

/// Figure 1 plus the §4.2 in-text studies: improvement ratio vs cache
/// capacity on the WINDOW trace, 1-set vs 2-set, store-in vs
/// store-through.
pub fn figure1_report() -> String {
    let mut out = String::new();
    let mut config = MachineConfig::psi();
    config.trace_memory = true;
    let w = window::window(1);
    let (run, mut machine) = run_on_psi_machine(&w, config).expect("window workload runs");
    let trace = machine.take_trace();
    let steps = run.stats.steps;
    let _ = writeln!(
        out,
        "Figure 1: Performance improvement ratios against the cache memory size"
    );
    let _ = writeln!(
        out,
        "(trace: {}, {} accesses, {} steps)",
        w.name,
        trace.len(),
        steps
    );
    let _ = writeln!(out, "{:>10} {:>12}", "capacity", "improvement%");
    let sweep = psi_tools::pmms::capacity_sweep_parallel(&trace, 200, steps, default_parallelism());
    for (cap, ratio) in &sweep {
        let bar = "#".repeat((*ratio / 2.0).max(0.0) as usize);
        let _ = writeln!(out, "{:>10} {:>12.1}  {}", cap, ratio, bar);
    }
    let _ = writeln!(
        out,
        "(paper: the improvement ratio saturates near 512 words)"
    );

    let (two, one) = psi_tools::pmms::associativity_study(&trace, 200, steps);
    let _ = writeln!(
        out,
        "\nassociativity: two 4KW sets = {two:.1}%, one 4KW set = {one:.1}%, \
         delta = {:.1} points (paper: one set only ~3% lower)",
        two - one
    );
    let (si, st) = psi_tools::pmms::policy_study(&trace, 200, steps);
    let _ = writeln!(
        out,
        "write policy: store-in = {si:.1}%, store-through = {st:.1}%, \
         delta = {:.1} points (paper: store-in 8% higher)",
        si - st
    );
    out
}

/// Ablation study for the design choices DESIGN.md calls out: tail
/// recursion optimization and the WF frame buffers.
pub fn ablation_report() -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Ablation: PSI design features on nreverse(30) and BUP-2"
    );
    let _ = writeln!(
        out,
        "{:<34} {:>10} {:>10} {:>10}",
        "configuration", "steps", "time_ms", "local%"
    );
    // The full workload × feature grid runs in parallel; rendering
    // preserves grid order.
    let mut grid = Vec::new();
    for w in [psi_workloads::contest::nreverse(30), parsers::bup(2)] {
        for (label, tro, fb) in [
            ("full PSI", true, true),
            ("no tail recursion opt", false, true),
            ("no frame buffering", true, false),
            ("neither", false, false),
        ] {
            grid.push((w.clone(), label, tro, fb));
        }
    }
    let runs = par_map(&grid, default_parallelism(), |_, (w, _, tro, fb)| {
        let mut config = MachineConfig::psi();
        config.tail_recursion_opt = *tro;
        config.frame_buffering = *fb;
        run_on_psi(w, config)
            .unwrap_or_else(|e| panic!("{}: {e}", w.name))
            .stats
    });
    for ((w, label, _, _), stats) in grid.iter().zip(&runs) {
        let local = stats.cache.area_shares_pct()[psi_core::Area::LocalStack.index()];
        let _ = writeln!(
            out,
            "{:<34} {:>10} {:>10.2} {:>10.1}",
            format!("{} / {}", w.name, label),
            stats.steps,
            stats.time_ms(),
            local,
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_report_contains_all_rows() {
        let r = table2_report();
        for name in ["window-1", "8 puzzle", "BUP-3", "harmonizer-2"] {
            assert!(r.contains(name), "{r}");
        }
    }

    #[test]
    fn figure1_report_runs() {
        let r = figure1_report();
        assert!(r.contains("store-in"));
        assert!(r.contains("8192"));
    }
}
