//! Reproducible microbenchmark harness over the Table 1 suite, along
//! two dimensions:
//!
//! * **profile** — paper-faithful linear clause selection
//!   ([`MachineConfig::psi`]) vs the opt-in first-argument indexing
//!   profile ([`MachineConfig::psi_indexed`]);
//! * **lane** — the fidelity lane (full cache/trace/event
//!   measurement, [`psi_core::Measurement::Full`]), the throughput
//!   lane ([`psi_core::Measurement::Off`]), and the compiled lane
//!   ([`MachineConfig::psi_compiled`]: measurement off plus fused
//!   dispatch). Both fast lanes must produce bit-identical solutions
//!   and step totals while running well over 2× faster on the heavy
//!   rows (compiled over throughput again).
//!
//! Unlike the table regenerators — which report *simulated* PSI time
//! and are bit-reproducible — this harness also measures host wall
//! time, which varies run to run. Each workload therefore runs
//! `warmup` untimed iterations followed by `repetitions` timed ones,
//! and the report records the median. Simulator statistics (steps,
//! choice points, backtracks) are deterministic and recorded from the
//! final iteration.
//!
//! The report serializes to `BENCH_psi.json` (hand-rolled JSON — the
//! workspace deliberately has no serde dependency) and doubles as an
//! equivalence check: all six cells of a row must produce identical
//! solution lists, and the three lanes must agree exactly on every
//! deterministic counter.

use psi_core::Measurement;
use psi_machine::MachineConfig;
use psi_obs::Counter;
use psi_workloads::runner::run_on_psi_machine;
use psi_workloads::suite::table1_suite;
use std::fmt::Write as _;
use std::time::Instant;

/// Knobs for one harness run.
#[derive(Debug, Clone, Copy)]
pub struct PerfOptions {
    /// Untimed iterations per workload/profile before measurement.
    pub warmup: usize,
    /// Timed iterations per workload/profile (median is reported).
    pub repetitions: usize,
}

impl PerfOptions {
    /// Full run: 1 warmup + 5 timed repetitions.
    pub fn full() -> PerfOptions {
        PerfOptions {
            warmup: 1,
            repetitions: 5,
        }
    }

    /// CI smoke run: no warmup, a single timed repetition. Wall times
    /// are noisy but the equivalence checks and simulator statistics
    /// are exactly those of a full run.
    pub fn quick() -> PerfOptions {
        PerfOptions {
            warmup: 0,
            repetitions: 1,
        }
    }
}

/// One (profile, lane) cell's measurements for one workload.
#[derive(Debug, Clone)]
pub struct ProfileMeasurement {
    /// Median host wall time over the timed repetitions, nanoseconds.
    pub wall_ns: u64,
    /// Simulated PSI time, nanoseconds (deterministic; zero stall
    /// contribution in the throughput lane).
    pub sim_ns: u64,
    /// Interpreter microsteps (deterministic, lane-invariant).
    pub steps: u64,
    /// Choice points pushed (host-side counter, deterministic).
    pub choice_points: u64,
    /// Backtracks (choice point retried or discarded).
    pub backtracks: u64,
    /// Calls that consulted the first-argument index.
    pub indexed_calls: u64,
    /// Indexed calls whose single surviving candidate was entered
    /// with no choice point.
    pub index_direct_entries: u64,
    /// Dispatches served from the predecoded code cache (fast lanes
    /// only; always zero in the fidelity lane).
    pub predecode_hits: u64,
    /// Rendered solutions, for cross-cell comparison.
    pub solutions: Vec<String>,
}

/// One lane's pair of profile measurements.
#[derive(Debug, Clone)]
pub struct LaneMeasurements {
    /// Paper-faithful profile ([`MachineConfig::psi`]).
    pub linear: ProfileMeasurement,
    /// Indexing profile ([`MachineConfig::psi_indexed`]).
    pub indexed: ProfileMeasurement,
}

/// One Table 1 row measured under both profiles in all three lanes.
#[derive(Debug, Clone)]
pub struct PerfRow {
    /// Row number in Table 1 (1-based).
    pub index: usize,
    /// Workload name.
    pub program: String,
    /// Fidelity lane (full measurement, the archived-numbers lane).
    pub fidelity: LaneMeasurements,
    /// Throughput lane (measurement off).
    pub throughput: LaneMeasurements,
    /// Compiled lane (measurement off, fused dispatch).
    pub compiled: LaneMeasurements,
}

/// Do two cells agree on everything that must be lane-invariant?
fn cells_equivalent(a: &ProfileMeasurement, b: &ProfileMeasurement) -> bool {
    a.steps == b.steps
        && a.choice_points == b.choice_points
        && a.backtracks == b.backtracks
        && a.indexed_calls == b.indexed_calls
        && a.index_direct_entries == b.index_direct_entries
        && a.solutions == b.solutions
}

/// Wall-time speedup of a fast-lane cell over the fidelity cell.
/// Zero-guarded: a zero fast-lane wall time (possible on trivial rows
/// where the median timed iteration is below the clock resolution)
/// reports 0.0 rather than a nonsense near-infinite ratio.
fn speedup(fidelity_wall_ns: u64, lane_wall_ns: u64) -> f64 {
    if lane_wall_ns == 0 {
        return 0.0;
    }
    fidelity_wall_ns as f64 / lane_wall_ns as f64
}

impl PerfRow {
    /// Whether all six cells produced identical solution lists.
    pub fn solutions_match(&self) -> bool {
        let reference = &self.fidelity.linear.solutions;
        *reference == self.fidelity.indexed.solutions
            && *reference == self.throughput.linear.solutions
            && *reference == self.throughput.indexed.solutions
            && *reference == self.compiled.linear.solutions
            && *reference == self.compiled.indexed.solutions
    }

    /// Whether both fast lanes matched the fidelity lane exactly on
    /// every deterministic counter (steps, choice points, backtracks,
    /// indexing statistics) and on solutions, per profile.
    pub fn lanes_match(&self) -> bool {
        cells_equivalent(&self.fidelity.linear, &self.throughput.linear)
            && cells_equivalent(&self.fidelity.indexed, &self.throughput.indexed)
            && cells_equivalent(&self.fidelity.linear, &self.compiled.linear)
            && cells_equivalent(&self.fidelity.indexed, &self.compiled.indexed)
    }

    /// Wall-time speedup of the throughput lane over the fidelity
    /// lane, linear profile (zero-guarded, see [`PerfRow::speedup_lane_b`]).
    pub fn speedup_linear(&self) -> f64 {
        self.speedup_lane_b()
    }

    /// Wall-time speedup of the throughput lane (lane B) over the
    /// fidelity lane, linear profile. 0.0 when the throughput cell's
    /// wall time rounded to zero.
    pub fn speedup_lane_b(&self) -> f64 {
        speedup(self.fidelity.linear.wall_ns, self.throughput.linear.wall_ns)
    }

    /// Wall-time speedup of the compiled lane (lane C) over the
    /// fidelity lane, linear profile. 0.0 when the compiled cell's
    /// wall time rounded to zero.
    pub fn speedup_lane_c(&self) -> f64 {
        speedup(self.fidelity.linear.wall_ns, self.compiled.linear.wall_ns)
    }
}

/// A full harness run over the (possibly filtered) Table 1 suite.
#[derive(Debug, Clone)]
pub struct PerfReport {
    /// The options the run used.
    pub options: PerfOptions,
    /// One row per selected Table 1 entry, in table order.
    pub rows: Vec<PerfRow>,
}

impl PerfReport {
    /// Rows whose four cells disagreed on solutions (must be empty).
    pub fn mismatches(&self) -> Vec<&PerfRow> {
        self.rows.iter().filter(|r| !r.solutions_match()).collect()
    }

    /// Rows where the throughput lane diverged from the fidelity lane
    /// on a deterministic counter (must be empty).
    pub fn lane_mismatches(&self) -> Vec<&PerfRow> {
        self.rows.iter().filter(|r| !r.lanes_match()).collect()
    }

    /// Serializes the report as pretty-printed JSON.
    ///
    /// Schema `psi-bench-perf-v3`: top-level `warmup`, `repetitions`,
    /// and `rows`; each row carries a `fidelity`, a `throughput` and a
    /// `compiled` lane object (in that order — readers of the archive
    /// rely on the fidelity lane coming first, see [`archived_steps`]),
    /// each with a `linear` and an `indexed` measurement, plus
    /// per-lane wall-time speedups `speedup_lane_b` / `speedup_lane_c`
    /// (`speedup_linear` is kept as an alias of `speedup_lane_b` for
    /// v2 readers). Solution texts are not embedded (they can be
    /// thousands of bindings); only their count and the
    /// `solutions_match` / `lanes_match` verdicts are.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n  \"schema\": \"psi-bench-perf-v3\",\n");
        let _ = writeln!(out, "  \"warmup\": {},", self.options.warmup);
        let _ = writeln!(out, "  \"repetitions\": {},", self.options.repetitions);
        out.push_str("  \"rows\": [\n");
        for (i, row) in self.rows.iter().enumerate() {
            let _ = writeln!(out, "    {{");
            let _ = writeln!(out, "      \"index\": {},", row.index);
            let _ = writeln!(out, "      \"program\": \"{}\",", escape(&row.program));
            let _ = writeln!(
                out,
                "      \"solutions\": {},",
                row.fidelity.linear.solutions.len()
            );
            let _ = writeln!(out, "      \"solutions_match\": {},", row.solutions_match());
            let _ = writeln!(out, "      \"lanes_match\": {},", row.lanes_match());
            let _ = writeln!(
                out,
                "      \"speedup_linear\": {:.3},",
                row.speedup_linear()
            );
            let _ = writeln!(
                out,
                "      \"speedup_lane_b\": {:.3},",
                row.speedup_lane_b()
            );
            let _ = writeln!(
                out,
                "      \"speedup_lane_c\": {:.3},",
                row.speedup_lane_c()
            );
            for (j, (lane, m)) in [
                ("fidelity", &row.fidelity),
                ("throughput", &row.throughput),
                ("compiled", &row.compiled),
            ]
            .into_iter()
            .enumerate()
            {
                let _ = writeln!(out, "      \"{lane}\": {{");
                let _ = writeln!(out, "        \"linear\": {},", measurement_json(&m.linear));
                let _ = writeln!(out, "        \"indexed\": {}", measurement_json(&m.indexed));
                let comma = if j < 2 { "," } else { "" };
                let _ = writeln!(out, "      }}{comma}");
            }
            let comma = if i + 1 < self.rows.len() { "," } else { "" };
            let _ = writeln!(out, "    }}{comma}");
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Renders a human-readable summary table (one line per row).
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<22} {:>12} {:>10} {:>10} {:>10} {:>7} {:>7}  match lanes",
            "program", "steps lin", "wall fid", "wall thr", "wall cmp", "spd B", "spd C"
        );
        for row in &self.rows {
            let _ = writeln!(
                out,
                "{:<22} {:>12} {:>8.2}ms {:>8.2}ms {:>8.2}ms {:>6.2}x {:>6.2}x  {:<5} {}",
                row.program,
                row.fidelity.linear.steps,
                row.fidelity.linear.wall_ns as f64 / 1e6,
                row.throughput.linear.wall_ns as f64 / 1e6,
                row.compiled.linear.wall_ns as f64 / 1e6,
                row.speedup_lane_b(),
                row.speedup_lane_c(),
                if row.solutions_match() { "yes" } else { "NO" },
                if row.lanes_match() { "yes" } else { "NO" },
            );
        }
        out
    }
}

fn measurement_json(m: &ProfileMeasurement) -> String {
    format!(
        "{{\"wall_ns\": {}, \"sim_ns\": {}, \"steps\": {}, \"choice_points\": {}, \
         \"backtracks\": {}, \"indexed_calls\": {}, \"index_direct_entries\": {}, \
         \"predecode_hits\": {}}}",
        m.wall_ns,
        m.sim_ns,
        m.steps,
        m.choice_points,
        m.backtracks,
        m.indexed_calls,
        m.index_direct_entries,
        m.predecode_hits,
    )
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Does a `--rows` filter token list select `(index, program)`?
///
/// The spec is comma-separated; each token is either a 1-based Table 1
/// row number (`3`) or a case-insensitive substring of the program
/// name (`lisp`, `qsort`). An empty spec selects nothing.
pub fn row_matches(spec: &str, index: usize, program: &str) -> bool {
    let program = program.to_lowercase();
    spec.split(',')
        .map(str::trim)
        .filter(|t| !t.is_empty())
        .any(|t| match t.parse::<usize>() {
            Ok(n) => n == index,
            Err(_) => program.contains(&t.to_lowercase()),
        })
}

/// Extracts `(program, fidelity-lane linear steps)` pairs from a
/// previously written `BENCH_psi.json`, for the microstep-regression
/// gate. Works on the v1 schema (one `"linear"` object per row) and
/// the v2/v3 schemas (fidelity lane first): in every layout the
/// first `"linear"` line after a `"program"` line is the fidelity
/// lane's linear measurement.
pub fn archived_steps(json: &str) -> Vec<(String, u64)> {
    let mut out = Vec::new();
    let mut program: Option<String> = None;
    for line in json.lines() {
        let line = line.trim_start();
        if let Some(rest) = line.strip_prefix("\"program\": \"") {
            if let Some(end) = rest.find('"') {
                program = Some(rest[..end].to_owned());
            }
        } else if line.starts_with("\"linear\": {") {
            if let Some(p) = program.take() {
                if let Some(steps) = scan_u64_field(line, "\"steps\": ") {
                    out.push((p, steps));
                }
            }
        }
    }
    out
}

fn scan_u64_field(line: &str, key: &str) -> Option<u64> {
    let at = line.find(key)? + key.len();
    let digits: String = line[at..]
        .chars()
        .take_while(char::is_ascii_digit)
        .collect();
    digits.parse().ok()
}

/// Measures one workload under one machine configuration (one
/// profile/lane cell).
fn measure(
    w: &psi_workloads::Workload,
    config: &MachineConfig,
    options: &PerfOptions,
) -> psi_core::Result<ProfileMeasurement> {
    for _ in 0..options.warmup {
        run_on_psi_machine(w, config.clone())?;
    }
    let mut walls = Vec::with_capacity(options.repetitions.max(1));
    let mut last = None;
    for _ in 0..options.repetitions.max(1) {
        let t0 = Instant::now();
        let result = run_on_psi_machine(w, config.clone())?;
        walls.push(t0.elapsed().as_nanos() as u64);
        last = Some(result);
    }
    walls.sort_unstable();
    let (run, machine) = last.expect("at least one repetition");
    let snap = machine.metrics_snapshot();
    Ok(ProfileMeasurement {
        wall_ns: walls[walls.len() / 2],
        sim_ns: run.stats.time_ns,
        steps: run.stats.steps,
        choice_points: run.stats.choice_points,
        backtracks: snap.get(Counter::Backtracks),
        indexed_calls: run.stats.indexed_calls,
        index_direct_entries: run.stats.index_direct_entries,
        predecode_hits: snap.get(Counter::PredecodeHits),
        solutions: run.solutions,
    })
}

fn with_lane(mut config: MachineConfig, lane: Measurement) -> MachineConfig {
    config.measurement = lane;
    config
}

fn with_compiled(mut config: MachineConfig) -> MachineConfig {
    config.compiled = true;
    config
}

/// Measures one suite entry across all six (profile, lane) cells.
fn measure_row(
    entry: &psi_workloads::suite::Table1Entry,
    options: &PerfOptions,
) -> psi_core::Result<PerfRow> {
    let w = &entry.workload;
    let fidelity = LaneMeasurements {
        linear: measure(w, &MachineConfig::psi(), options)?,
        indexed: measure(w, &MachineConfig::psi_indexed(), options)?,
    };
    let throughput = LaneMeasurements {
        linear: measure(
            w,
            &with_lane(MachineConfig::psi(), Measurement::Off),
            options,
        )?,
        indexed: measure(
            w,
            &with_lane(MachineConfig::psi_indexed(), Measurement::Off),
            options,
        )?,
    };
    let compiled = LaneMeasurements {
        linear: measure(w, &MachineConfig::psi_compiled(), options)?,
        indexed: measure(
            w,
            &with_compiled(with_lane(MachineConfig::psi_indexed(), Measurement::Off)),
            options,
        )?,
    };
    Ok(PerfRow {
        index: entry.index,
        program: w.name.clone(),
        fidelity,
        throughput,
        compiled,
    })
}

/// Runs the Table 1 suite under both profiles in all three lanes.
///
/// # Errors
///
/// Propagates the first workload failure ([`psi_core::PsiError`]);
/// the suite is expected to be green under every profile/lane cell.
pub fn run(options: PerfOptions) -> psi_core::Result<PerfReport> {
    run_rows(options, None)
}

/// [`run`] restricted to the rows selected by a `--rows` spec (see
/// [`row_matches`]); `None` runs the whole suite.
///
/// # Errors
///
/// Propagates the first workload failure ([`psi_core::PsiError`]).
pub fn run_rows(options: PerfOptions, filter: Option<&str>) -> psi_core::Result<PerfReport> {
    let mut rows = Vec::new();
    for entry in table1_suite() {
        if let Some(spec) = filter {
            if !row_matches(spec, entry.index, &entry.workload.name) {
                continue;
            }
        }
        rows.push(measure_row(&entry, &options)?);
    }
    Ok(PerfReport { options, rows })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escape_handles_quotes_and_control_chars() {
        assert_eq!(escape("a\"b\\c\n"), "a\\\"b\\\\c\\u000a");
    }

    #[test]
    fn json_shape_is_stable() {
        let report = sample_report();
        let json = report.to_json();
        assert!(json.starts_with("{\n  \"schema\": \"psi-bench-perf-v3\""));
        assert!(json.contains("\"program\": \"nreverse 30\""));
        assert!(json.contains("\"solutions_match\": true"));
        assert!(json.contains("\"lanes_match\": true"));
        assert!(json.contains("\"speedup_lane_b\": "));
        assert!(json.contains("\"speedup_lane_c\": "));
        assert!(json.contains("\"fidelity\": {"));
        assert!(json.contains("\"throughput\": {"));
        assert!(json.contains("\"compiled\": {"));
        assert!(json.contains("\"choice_points\": 10"));
        assert!(json.trim_end().ends_with('}'));
        // The fidelity lane must serialize before the fast lanes —
        // archived_steps picks the first "linear" after "program".
        let fid = json.find("\"fidelity\"").expect("fidelity present");
        let thr = json.find("\"throughput\"").expect("throughput present");
        let cmp = json.find("\"compiled\"").expect("compiled present");
        assert!(fid < thr && thr < cmp, "lane order must be fid, thr, cmp");
    }

    #[test]
    fn speedups_are_zero_guarded_and_per_lane() {
        let mut row = sample_report().rows.remove(0);
        row.fidelity.linear.wall_ns = 9000;
        row.throughput.linear.wall_ns = 3000;
        row.compiled.linear.wall_ns = 1500;
        assert!((row.speedup_lane_b() - 3.0).abs() < 1e-12);
        assert!((row.speedup_lane_c() - 6.0).abs() < 1e-12);
        assert_eq!(row.speedup_linear(), row.speedup_lane_b());
        // A sub-resolution fast cell must not explode into a
        // near-infinite ratio.
        row.throughput.linear.wall_ns = 0;
        row.compiled.linear.wall_ns = 0;
        assert_eq!(row.speedup_lane_b(), 0.0);
        assert_eq!(row.speedup_lane_c(), 0.0);
        assert_eq!(row.speedup_linear(), 0.0);
    }

    #[test]
    fn lanes_match_covers_the_compiled_lane() {
        let mut row = sample_report().rows.remove(0);
        assert!(row.lanes_match());
        row.compiled.linear.steps += 1;
        assert!(!row.lanes_match(), "a compiled-lane step drift must trip");
        let mut row = sample_report().rows.remove(0);
        row.compiled.indexed.solutions.push("X = 2".into());
        assert!(!row.solutions_match());
    }

    #[test]
    fn row_filter_matches_by_index_and_name() {
        assert!(row_matches("3", 3, "qsort 50"));
        assert!(!row_matches("3", 4, "qsort 50"));
        assert!(row_matches("LISP", 7, "lisp tarai3"));
        assert!(row_matches("1, lisp", 7, "lisp tarai3"));
        assert!(row_matches(" qsort ,9", 9, "nreverse 30"));
        assert!(!row_matches("", 1, "nreverse 30"));
        assert!(!row_matches(" , ", 1, "nreverse 30"));
    }

    #[test]
    fn archived_steps_reads_own_v3_output() {
        let report = sample_report();
        let pairs = archived_steps(&report.to_json());
        assert_eq!(pairs, vec![("nreverse 30".to_owned(), 30)]);
    }

    #[test]
    fn archived_steps_reads_v1_layout() {
        let v1 = r#"{
  "schema": "psi-bench-perf-v1",
  "rows": [
    {
      "index": 1,
      "program": "qsort 50",
      "linear": {"wall_ns": 9, "sim_ns": 8, "steps": 4321, "choice_points": 2},
      "indexed": {"wall_ns": 9, "sim_ns": 8, "steps": 17, "choice_points": 2}
    }
  ]
}"#;
        assert_eq!(archived_steps(v1), vec![("qsort 50".to_owned(), 4321)]);
    }

    fn sample_report() -> PerfReport {
        let lane = || LaneMeasurements {
            linear: sample_measurement(10),
            indexed: sample_measurement(10),
        };
        PerfReport {
            options: PerfOptions::quick(),
            rows: vec![PerfRow {
                index: 1,
                program: "nreverse 30".into(),
                fidelity: lane(),
                throughput: lane(),
                compiled: lane(),
            }],
        }
    }

    fn sample_measurement(cp: u64) -> ProfileMeasurement {
        ProfileMeasurement {
            wall_ns: 1000,
            sim_ns: 2000,
            steps: 30,
            choice_points: cp,
            backtracks: 4,
            indexed_calls: 0,
            index_direct_entries: 0,
            predecode_hits: 0,
            solutions: vec!["X = 1".into()],
        }
    }
}
