//! Reproducible microbenchmark harness comparing the paper-faithful
//! (linear clause selection) profile against the opt-in first-argument
//! indexing profile over the Table 1 suite.
//!
//! Unlike the table regenerators — which report *simulated* PSI time
//! and are bit-reproducible — this harness also measures host wall
//! time, which varies run to run. Each workload therefore runs
//! `warmup` untimed iterations followed by `repetitions` timed ones,
//! and the report records the median. Simulator statistics (steps,
//! choice points, backtracks) are deterministic and recorded from the
//! final iteration.
//!
//! The report serializes to `BENCH_psi.json` (hand-rolled JSON — the
//! workspace deliberately has no serde dependency) and doubles as a
//! cross-profile equivalence check: both profiles must produce
//! identical solution lists on every row.

use psi_machine::MachineConfig;
use psi_obs::Counter;
use psi_workloads::runner::run_on_psi_machine;
use psi_workloads::suite::table1_suite;
use std::fmt::Write as _;
use std::time::Instant;

/// Knobs for one harness run.
#[derive(Debug, Clone, Copy)]
pub struct PerfOptions {
    /// Untimed iterations per workload/profile before measurement.
    pub warmup: usize,
    /// Timed iterations per workload/profile (median is reported).
    pub repetitions: usize,
}

impl PerfOptions {
    /// Full run: 1 warmup + 5 timed repetitions.
    pub fn full() -> PerfOptions {
        PerfOptions {
            warmup: 1,
            repetitions: 5,
        }
    }

    /// CI smoke run: no warmup, a single timed repetition. Wall times
    /// are noisy but the equivalence check and simulator statistics
    /// are exactly those of a full run.
    pub fn quick() -> PerfOptions {
        PerfOptions {
            warmup: 0,
            repetitions: 1,
        }
    }
}

/// One profile's measurements for one workload.
#[derive(Debug, Clone)]
pub struct ProfileMeasurement {
    /// Median host wall time over the timed repetitions, nanoseconds.
    pub wall_ns: u64,
    /// Simulated PSI time, nanoseconds (deterministic).
    pub sim_ns: u64,
    /// Interpreter microsteps (deterministic).
    pub steps: u64,
    /// Choice points pushed (host-side counter, deterministic).
    pub choice_points: u64,
    /// Backtracks (choice point retried or discarded).
    pub backtracks: u64,
    /// Calls that consulted the first-argument index.
    pub indexed_calls: u64,
    /// Indexed calls whose single surviving candidate was entered
    /// with no choice point.
    pub index_direct_entries: u64,
    /// Rendered solutions, for cross-profile comparison.
    pub solutions: Vec<String>,
}

/// One Table 1 row measured under both profiles.
#[derive(Debug, Clone)]
pub struct PerfRow {
    /// Row number in Table 1 (1-based).
    pub index: usize,
    /// Workload name.
    pub program: String,
    /// Paper-faithful profile ([`MachineConfig::psi`]).
    pub linear: ProfileMeasurement,
    /// Indexing profile ([`MachineConfig::psi_indexed`]).
    pub indexed: ProfileMeasurement,
}

impl PerfRow {
    /// Whether both profiles produced identical solution lists.
    pub fn solutions_match(&self) -> bool {
        self.linear.solutions == self.indexed.solutions
    }
}

/// A full harness run over the Table 1 suite.
#[derive(Debug, Clone)]
pub struct PerfReport {
    /// The options the run used.
    pub options: PerfOptions,
    /// One row per Table 1 entry, in table order.
    pub rows: Vec<PerfRow>,
}

impl PerfReport {
    /// Rows whose profiles disagreed on solutions (must be empty).
    pub fn mismatches(&self) -> Vec<&PerfRow> {
        self.rows.iter().filter(|r| !r.solutions_match()).collect()
    }

    /// Serializes the report as pretty-printed JSON.
    ///
    /// Schema `psi-bench-perf-v1`: top-level `warmup`, `repetitions`,
    /// and `rows`, each row carrying a `linear` and an `indexed`
    /// measurement object. Solution texts are not embedded (they can
    /// be thousands of bindings); only their count and the
    /// cross-profile `solutions_match` verdict are.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n  \"schema\": \"psi-bench-perf-v1\",\n");
        let _ = writeln!(out, "  \"warmup\": {},", self.options.warmup);
        let _ = writeln!(out, "  \"repetitions\": {},", self.options.repetitions);
        out.push_str("  \"rows\": [\n");
        for (i, row) in self.rows.iter().enumerate() {
            let _ = writeln!(out, "    {{");
            let _ = writeln!(out, "      \"index\": {},", row.index);
            let _ = writeln!(out, "      \"program\": \"{}\",", escape(&row.program));
            let _ = writeln!(out, "      \"solutions\": {},", row.linear.solutions.len());
            let _ = writeln!(out, "      \"solutions_match\": {},", row.solutions_match());
            let _ = writeln!(out, "      \"linear\": {},", measurement_json(&row.linear));
            let _ = writeln!(out, "      \"indexed\": {}", measurement_json(&row.indexed));
            let comma = if i + 1 < self.rows.len() { "," } else { "" };
            let _ = writeln!(out, "    }}{comma}");
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Renders a human-readable summary table (one line per row).
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<22} {:>12} {:>12} {:>9} {:>9} {:>9} {:>9}  match",
            "program", "steps lin", "steps idx", "cp lin", "cp idx", "wall lin", "wall idx"
        );
        for row in &self.rows {
            let _ = writeln!(
                out,
                "{:<22} {:>12} {:>12} {:>9} {:>9} {:>8.2}ms {:>8.2}ms  {}",
                row.program,
                row.linear.steps,
                row.indexed.steps,
                row.linear.choice_points,
                row.indexed.choice_points,
                row.linear.wall_ns as f64 / 1e6,
                row.indexed.wall_ns as f64 / 1e6,
                if row.solutions_match() { "yes" } else { "NO" },
            );
        }
        out
    }
}

fn measurement_json(m: &ProfileMeasurement) -> String {
    format!(
        "{{\"wall_ns\": {}, \"sim_ns\": {}, \"steps\": {}, \"choice_points\": {}, \
         \"backtracks\": {}, \"indexed_calls\": {}, \"index_direct_entries\": {}}}",
        m.wall_ns,
        m.sim_ns,
        m.steps,
        m.choice_points,
        m.backtracks,
        m.indexed_calls,
        m.index_direct_entries,
    )
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Measures one workload under one profile.
fn measure(
    w: &psi_workloads::Workload,
    config: &MachineConfig,
    options: &PerfOptions,
) -> psi_core::Result<ProfileMeasurement> {
    for _ in 0..options.warmup {
        run_on_psi_machine(w, config.clone())?;
    }
    let mut walls = Vec::with_capacity(options.repetitions.max(1));
    let mut last = None;
    for _ in 0..options.repetitions.max(1) {
        let t0 = Instant::now();
        let result = run_on_psi_machine(w, config.clone())?;
        walls.push(t0.elapsed().as_nanos() as u64);
        last = Some(result);
    }
    walls.sort_unstable();
    let (run, machine) = last.expect("at least one repetition");
    let snap = machine.metrics_snapshot();
    Ok(ProfileMeasurement {
        wall_ns: walls[walls.len() / 2],
        sim_ns: run.stats.time_ns,
        steps: run.stats.steps,
        choice_points: run.stats.choice_points,
        backtracks: snap.get(Counter::Backtracks),
        indexed_calls: run.stats.indexed_calls,
        index_direct_entries: run.stats.index_direct_entries,
        solutions: run.solutions,
    })
}

/// Runs the Table 1 suite under both profiles.
///
/// # Errors
///
/// Propagates the first workload failure ([`psi_core::PsiError`]);
/// the suite is expected to be green under both profiles.
pub fn run(options: PerfOptions) -> psi_core::Result<PerfReport> {
    let mut rows = Vec::new();
    for entry in table1_suite() {
        let linear = measure(&entry.workload, &MachineConfig::psi(), &options)?;
        let indexed = measure(&entry.workload, &MachineConfig::psi_indexed(), &options)?;
        rows.push(PerfRow {
            index: entry.index,
            program: entry.workload.name.clone(),
            linear,
            indexed,
        });
    }
    Ok(PerfReport { options, rows })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escape_handles_quotes_and_control_chars() {
        assert_eq!(escape("a\"b\\c\n"), "a\\\"b\\\\c\\u000a");
    }

    #[test]
    fn json_shape_is_stable() {
        let report = PerfReport {
            options: PerfOptions::quick(),
            rows: vec![PerfRow {
                index: 1,
                program: "nreverse 30".into(),
                linear: sample_measurement(10),
                indexed: sample_measurement(7),
            }],
        };
        let json = report.to_json();
        assert!(json.starts_with("{\n  \"schema\": \"psi-bench-perf-v1\""));
        assert!(json.contains("\"program\": \"nreverse 30\""));
        assert!(json.contains("\"solutions_match\": true"));
        assert!(json.contains("\"choice_points\": 10"));
        assert!(json.trim_end().ends_with('}'));
    }

    fn sample_measurement(cp: u64) -> ProfileMeasurement {
        ProfileMeasurement {
            wall_ns: 1000,
            sim_ns: 2000,
            steps: 30,
            choice_points: cp,
            backtracks: 4,
            indexed_calls: 0,
            index_direct_entries: 0,
            solutions: vec!["X = 1".into()],
        }
    }
}
