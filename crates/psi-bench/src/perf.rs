//! Reproducible microbenchmark harness over the Table 1 suite, along
//! two dimensions:
//!
//! * **profile** — paper-faithful linear clause selection
//!   ([`MachineConfig::psi`]) vs the opt-in first-argument indexing
//!   profile ([`MachineConfig::psi_indexed`]);
//! * **lane** — the fidelity lane (full cache/trace/event
//!   measurement, [`psi_core::Measurement::Full`]) vs the throughput
//!   lane ([`psi_core::Measurement::Off`]), which must produce
//!   bit-identical solutions and step totals while running well over
//!   2× faster on the heavy rows.
//!
//! Unlike the table regenerators — which report *simulated* PSI time
//! and are bit-reproducible — this harness also measures host wall
//! time, which varies run to run. Each workload therefore runs
//! `warmup` untimed iterations followed by `repetitions` timed ones,
//! and the report records the median. Simulator statistics (steps,
//! choice points, backtracks) are deterministic and recorded from the
//! final iteration.
//!
//! The report serializes to `BENCH_psi.json` (hand-rolled JSON — the
//! workspace deliberately has no serde dependency) and doubles as an
//! equivalence check: all four cells of a row must produce identical
//! solution lists, and the two lanes must agree exactly on every
//! deterministic counter.

use psi_core::Measurement;
use psi_machine::MachineConfig;
use psi_obs::Counter;
use psi_workloads::runner::run_on_psi_machine;
use psi_workloads::suite::table1_suite;
use std::fmt::Write as _;
use std::time::Instant;

/// Knobs for one harness run.
#[derive(Debug, Clone, Copy)]
pub struct PerfOptions {
    /// Untimed iterations per workload/profile before measurement.
    pub warmup: usize,
    /// Timed iterations per workload/profile (median is reported).
    pub repetitions: usize,
}

impl PerfOptions {
    /// Full run: 1 warmup + 5 timed repetitions.
    pub fn full() -> PerfOptions {
        PerfOptions {
            warmup: 1,
            repetitions: 5,
        }
    }

    /// CI smoke run: no warmup, a single timed repetition. Wall times
    /// are noisy but the equivalence checks and simulator statistics
    /// are exactly those of a full run.
    pub fn quick() -> PerfOptions {
        PerfOptions {
            warmup: 0,
            repetitions: 1,
        }
    }
}

/// One (profile, lane) cell's measurements for one workload.
#[derive(Debug, Clone)]
pub struct ProfileMeasurement {
    /// Median host wall time over the timed repetitions, nanoseconds.
    pub wall_ns: u64,
    /// Simulated PSI time, nanoseconds (deterministic; zero stall
    /// contribution in the throughput lane).
    pub sim_ns: u64,
    /// Interpreter microsteps (deterministic, lane-invariant).
    pub steps: u64,
    /// Choice points pushed (host-side counter, deterministic).
    pub choice_points: u64,
    /// Backtracks (choice point retried or discarded).
    pub backtracks: u64,
    /// Calls that consulted the first-argument index.
    pub indexed_calls: u64,
    /// Indexed calls whose single surviving candidate was entered
    /// with no choice point.
    pub index_direct_entries: u64,
    /// Dispatches served from the predecoded code cache (throughput
    /// lane only; always zero in the fidelity lane).
    pub predecode_hits: u64,
    /// Rendered solutions, for cross-cell comparison.
    pub solutions: Vec<String>,
}

/// One lane's pair of profile measurements.
#[derive(Debug, Clone)]
pub struct LaneMeasurements {
    /// Paper-faithful profile ([`MachineConfig::psi`]).
    pub linear: ProfileMeasurement,
    /// Indexing profile ([`MachineConfig::psi_indexed`]).
    pub indexed: ProfileMeasurement,
}

/// One Table 1 row measured under both profiles in both lanes.
#[derive(Debug, Clone)]
pub struct PerfRow {
    /// Row number in Table 1 (1-based).
    pub index: usize,
    /// Workload name.
    pub program: String,
    /// Fidelity lane (full measurement, the archived-numbers lane).
    pub fidelity: LaneMeasurements,
    /// Throughput lane (measurement off).
    pub throughput: LaneMeasurements,
}

/// Do two cells agree on everything that must be lane-invariant?
fn cells_equivalent(a: &ProfileMeasurement, b: &ProfileMeasurement) -> bool {
    a.steps == b.steps
        && a.choice_points == b.choice_points
        && a.backtracks == b.backtracks
        && a.indexed_calls == b.indexed_calls
        && a.index_direct_entries == b.index_direct_entries
        && a.solutions == b.solutions
}

impl PerfRow {
    /// Whether all four cells produced identical solution lists.
    pub fn solutions_match(&self) -> bool {
        self.fidelity.linear.solutions == self.fidelity.indexed.solutions
            && self.fidelity.linear.solutions == self.throughput.linear.solutions
            && self.fidelity.linear.solutions == self.throughput.indexed.solutions
    }

    /// Whether the throughput lane matched the fidelity lane exactly
    /// on every deterministic counter (steps, choice points,
    /// backtracks, indexing statistics) and on solutions, per profile.
    pub fn lanes_match(&self) -> bool {
        cells_equivalent(&self.fidelity.linear, &self.throughput.linear)
            && cells_equivalent(&self.fidelity.indexed, &self.throughput.indexed)
    }

    /// Wall-time speedup of the throughput lane over the fidelity
    /// lane, linear profile.
    pub fn speedup_linear(&self) -> f64 {
        self.fidelity.linear.wall_ns as f64 / self.throughput.linear.wall_ns.max(1) as f64
    }
}

/// A full harness run over the (possibly filtered) Table 1 suite.
#[derive(Debug, Clone)]
pub struct PerfReport {
    /// The options the run used.
    pub options: PerfOptions,
    /// One row per selected Table 1 entry, in table order.
    pub rows: Vec<PerfRow>,
}

impl PerfReport {
    /// Rows whose four cells disagreed on solutions (must be empty).
    pub fn mismatches(&self) -> Vec<&PerfRow> {
        self.rows.iter().filter(|r| !r.solutions_match()).collect()
    }

    /// Rows where the throughput lane diverged from the fidelity lane
    /// on a deterministic counter (must be empty).
    pub fn lane_mismatches(&self) -> Vec<&PerfRow> {
        self.rows.iter().filter(|r| !r.lanes_match()).collect()
    }

    /// Serializes the report as pretty-printed JSON.
    ///
    /// Schema `psi-bench-perf-v2`: top-level `warmup`, `repetitions`,
    /// and `rows`; each row carries a `fidelity` and a `throughput`
    /// lane object, each with a `linear` and an `indexed` measurement.
    /// Solution texts are not embedded (they can be thousands of
    /// bindings); only their count and the `solutions_match` /
    /// `lanes_match` verdicts are.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n  \"schema\": \"psi-bench-perf-v2\",\n");
        let _ = writeln!(out, "  \"warmup\": {},", self.options.warmup);
        let _ = writeln!(out, "  \"repetitions\": {},", self.options.repetitions);
        out.push_str("  \"rows\": [\n");
        for (i, row) in self.rows.iter().enumerate() {
            let _ = writeln!(out, "    {{");
            let _ = writeln!(out, "      \"index\": {},", row.index);
            let _ = writeln!(out, "      \"program\": \"{}\",", escape(&row.program));
            let _ = writeln!(
                out,
                "      \"solutions\": {},",
                row.fidelity.linear.solutions.len()
            );
            let _ = writeln!(out, "      \"solutions_match\": {},", row.solutions_match());
            let _ = writeln!(out, "      \"lanes_match\": {},", row.lanes_match());
            let _ = writeln!(
                out,
                "      \"speedup_linear\": {:.3},",
                row.speedup_linear()
            );
            let _ = writeln!(out, "      \"fidelity\": {{");
            let _ = writeln!(
                out,
                "        \"linear\": {},",
                measurement_json(&row.fidelity.linear)
            );
            let _ = writeln!(
                out,
                "        \"indexed\": {}",
                measurement_json(&row.fidelity.indexed)
            );
            let _ = writeln!(out, "      }},");
            let _ = writeln!(out, "      \"throughput\": {{");
            let _ = writeln!(
                out,
                "        \"linear\": {},",
                measurement_json(&row.throughput.linear)
            );
            let _ = writeln!(
                out,
                "        \"indexed\": {}",
                measurement_json(&row.throughput.indexed)
            );
            let _ = writeln!(out, "      }}");
            let comma = if i + 1 < self.rows.len() { "," } else { "" };
            let _ = writeln!(out, "    }}{comma}");
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Renders a human-readable summary table (one line per row).
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<22} {:>12} {:>9} {:>10} {:>10} {:>8}  match lanes",
            "program", "steps lin", "cp lin", "wall fid", "wall thr", "speedup"
        );
        for row in &self.rows {
            let _ = writeln!(
                out,
                "{:<22} {:>12} {:>9} {:>8.2}ms {:>8.2}ms {:>7.2}x  {:<5} {}",
                row.program,
                row.fidelity.linear.steps,
                row.fidelity.linear.choice_points,
                row.fidelity.linear.wall_ns as f64 / 1e6,
                row.throughput.linear.wall_ns as f64 / 1e6,
                row.speedup_linear(),
                if row.solutions_match() { "yes" } else { "NO" },
                if row.lanes_match() { "yes" } else { "NO" },
            );
        }
        out
    }
}

fn measurement_json(m: &ProfileMeasurement) -> String {
    format!(
        "{{\"wall_ns\": {}, \"sim_ns\": {}, \"steps\": {}, \"choice_points\": {}, \
         \"backtracks\": {}, \"indexed_calls\": {}, \"index_direct_entries\": {}, \
         \"predecode_hits\": {}}}",
        m.wall_ns,
        m.sim_ns,
        m.steps,
        m.choice_points,
        m.backtracks,
        m.indexed_calls,
        m.index_direct_entries,
        m.predecode_hits,
    )
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Does a `--rows` filter token list select `(index, program)`?
///
/// The spec is comma-separated; each token is either a 1-based Table 1
/// row number (`3`) or a case-insensitive substring of the program
/// name (`lisp`, `qsort`). An empty spec selects nothing.
pub fn row_matches(spec: &str, index: usize, program: &str) -> bool {
    let program = program.to_lowercase();
    spec.split(',')
        .map(str::trim)
        .filter(|t| !t.is_empty())
        .any(|t| match t.parse::<usize>() {
            Ok(n) => n == index,
            Err(_) => program.contains(&t.to_lowercase()),
        })
}

/// Extracts `(program, fidelity-lane linear steps)` pairs from a
/// previously written `BENCH_psi.json`, for the microstep-regression
/// gate. Works on both the v1 schema (one `"linear"` object per row)
/// and the v2 schema (fidelity lane first): in either layout the
/// first `"linear"` line after a `"program"` line is the fidelity
/// lane's linear measurement.
pub fn archived_steps(json: &str) -> Vec<(String, u64)> {
    let mut out = Vec::new();
    let mut program: Option<String> = None;
    for line in json.lines() {
        let line = line.trim_start();
        if let Some(rest) = line.strip_prefix("\"program\": \"") {
            if let Some(end) = rest.find('"') {
                program = Some(rest[..end].to_owned());
            }
        } else if line.starts_with("\"linear\": {") {
            if let Some(p) = program.take() {
                if let Some(steps) = scan_u64_field(line, "\"steps\": ") {
                    out.push((p, steps));
                }
            }
        }
    }
    out
}

fn scan_u64_field(line: &str, key: &str) -> Option<u64> {
    let at = line.find(key)? + key.len();
    let digits: String = line[at..]
        .chars()
        .take_while(char::is_ascii_digit)
        .collect();
    digits.parse().ok()
}

/// Measures one workload under one machine configuration (one
/// profile/lane cell).
fn measure(
    w: &psi_workloads::Workload,
    config: &MachineConfig,
    options: &PerfOptions,
) -> psi_core::Result<ProfileMeasurement> {
    for _ in 0..options.warmup {
        run_on_psi_machine(w, config.clone())?;
    }
    let mut walls = Vec::with_capacity(options.repetitions.max(1));
    let mut last = None;
    for _ in 0..options.repetitions.max(1) {
        let t0 = Instant::now();
        let result = run_on_psi_machine(w, config.clone())?;
        walls.push(t0.elapsed().as_nanos() as u64);
        last = Some(result);
    }
    walls.sort_unstable();
    let (run, machine) = last.expect("at least one repetition");
    let snap = machine.metrics_snapshot();
    Ok(ProfileMeasurement {
        wall_ns: walls[walls.len() / 2],
        sim_ns: run.stats.time_ns,
        steps: run.stats.steps,
        choice_points: run.stats.choice_points,
        backtracks: snap.get(Counter::Backtracks),
        indexed_calls: run.stats.indexed_calls,
        index_direct_entries: run.stats.index_direct_entries,
        predecode_hits: snap.get(Counter::PredecodeHits),
        solutions: run.solutions,
    })
}

fn with_lane(mut config: MachineConfig, lane: Measurement) -> MachineConfig {
    config.measurement = lane;
    config
}

/// Measures one suite entry across all four (profile, lane) cells.
fn measure_row(
    entry: &psi_workloads::suite::Table1Entry,
    options: &PerfOptions,
) -> psi_core::Result<PerfRow> {
    let w = &entry.workload;
    let fidelity = LaneMeasurements {
        linear: measure(w, &MachineConfig::psi(), options)?,
        indexed: measure(w, &MachineConfig::psi_indexed(), options)?,
    };
    let throughput = LaneMeasurements {
        linear: measure(
            w,
            &with_lane(MachineConfig::psi(), Measurement::Off),
            options,
        )?,
        indexed: measure(
            w,
            &with_lane(MachineConfig::psi_indexed(), Measurement::Off),
            options,
        )?,
    };
    Ok(PerfRow {
        index: entry.index,
        program: w.name.clone(),
        fidelity,
        throughput,
    })
}

/// Runs the Table 1 suite under both profiles in both lanes.
///
/// # Errors
///
/// Propagates the first workload failure ([`psi_core::PsiError`]);
/// the suite is expected to be green under every profile/lane cell.
pub fn run(options: PerfOptions) -> psi_core::Result<PerfReport> {
    run_rows(options, None)
}

/// [`run`] restricted to the rows selected by a `--rows` spec (see
/// [`row_matches`]); `None` runs the whole suite.
///
/// # Errors
///
/// Propagates the first workload failure ([`psi_core::PsiError`]).
pub fn run_rows(options: PerfOptions, filter: Option<&str>) -> psi_core::Result<PerfReport> {
    let mut rows = Vec::new();
    for entry in table1_suite() {
        if let Some(spec) = filter {
            if !row_matches(spec, entry.index, &entry.workload.name) {
                continue;
            }
        }
        rows.push(measure_row(&entry, &options)?);
    }
    Ok(PerfReport { options, rows })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escape_handles_quotes_and_control_chars() {
        assert_eq!(escape("a\"b\\c\n"), "a\\\"b\\\\c\\u000a");
    }

    #[test]
    fn json_shape_is_stable() {
        let report = sample_report();
        let json = report.to_json();
        assert!(json.starts_with("{\n  \"schema\": \"psi-bench-perf-v2\""));
        assert!(json.contains("\"program\": \"nreverse 30\""));
        assert!(json.contains("\"solutions_match\": true"));
        assert!(json.contains("\"lanes_match\": true"));
        assert!(json.contains("\"fidelity\": {"));
        assert!(json.contains("\"throughput\": {"));
        assert!(json.contains("\"choice_points\": 10"));
        assert!(json.trim_end().ends_with('}'));
    }

    #[test]
    fn row_filter_matches_by_index_and_name() {
        assert!(row_matches("3", 3, "qsort 50"));
        assert!(!row_matches("3", 4, "qsort 50"));
        assert!(row_matches("LISP", 7, "lisp tarai3"));
        assert!(row_matches("1, lisp", 7, "lisp tarai3"));
        assert!(row_matches(" qsort ,9", 9, "nreverse 30"));
        assert!(!row_matches("", 1, "nreverse 30"));
        assert!(!row_matches(" , ", 1, "nreverse 30"));
    }

    #[test]
    fn archived_steps_reads_own_v2_output() {
        let report = sample_report();
        let pairs = archived_steps(&report.to_json());
        assert_eq!(pairs, vec![("nreverse 30".to_owned(), 30)]);
    }

    #[test]
    fn archived_steps_reads_v1_layout() {
        let v1 = r#"{
  "schema": "psi-bench-perf-v1",
  "rows": [
    {
      "index": 1,
      "program": "qsort 50",
      "linear": {"wall_ns": 9, "sim_ns": 8, "steps": 4321, "choice_points": 2},
      "indexed": {"wall_ns": 9, "sim_ns": 8, "steps": 17, "choice_points": 2}
    }
  ]
}"#;
        assert_eq!(archived_steps(v1), vec![("qsort 50".to_owned(), 4321)]);
    }

    fn sample_report() -> PerfReport {
        let lane = || LaneMeasurements {
            linear: sample_measurement(10),
            indexed: sample_measurement(10),
        };
        PerfReport {
            options: PerfOptions::quick(),
            rows: vec![PerfRow {
                index: 1,
                program: "nreverse 30".into(),
                fidelity: lane(),
                throughput: lane(),
            }],
        }
    }

    fn sample_measurement(cp: u64) -> ProfileMeasurement {
        ProfileMeasurement {
            wall_ns: 1000,
            sim_ns: 2000,
            steps: 30,
            choice_points: cp,
            backtracks: 4,
            indexed_calls: 0,
            index_direct_entries: 0,
            predecode_hits: 0,
            solutions: vec!["X = 1".into()],
        }
    }
}
