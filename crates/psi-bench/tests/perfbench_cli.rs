//! Integration tests for the `perfbench` binary's command-line
//! contract: bad output locations fail fast with a clear message
//! (before any measurement), `--rows` runs a spot-check subset
//! without overwriting the archived report, and junk arguments are
//! rejected.

use std::process::Command;

fn perfbench() -> Command {
    Command::new(env!("CARGO_BIN_EXE_perfbench"))
}

#[test]
fn missing_output_directory_is_a_clear_error_not_a_panic() {
    let dir = std::env::temp_dir().join("perfbench-no-such-dir-a8f2");
    assert!(!dir.exists(), "test precondition: {dir:?} must not exist");
    let out = perfbench()
        .args(["--quick", "--out"])
        .arg(dir.join("bench.json"))
        .output()
        .expect("binary runs");
    assert!(!out.status.success(), "should exit nonzero");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("does not exist"),
        "stderr should name the missing directory, got: {stderr}"
    );
    assert!(
        !stderr.contains("panicked"),
        "must be a clear error, not a panic: {stderr}"
    );
}

#[test]
fn rows_filter_runs_a_subset_and_does_not_write_the_archive() {
    let out = perfbench()
        .args(["--quick", "--rows", "1"])
        .output()
        .expect("binary runs");
    let stdout = String::from_utf8_lossy(&out.stdout);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(out.status.success(), "exit ok, stderr: {stderr}");
    assert!(stdout.contains("nreverse"), "row 1 is nreverse: {stdout}");
    assert!(
        !stdout.contains("wrote "),
        "a subset run must not overwrite the archived report: {stdout}"
    );
    // Exactly one measured row: header line plus one program line.
    let rows = stdout
        .lines()
        .filter(|l| l.contains("ms") && l.contains('x'))
        .count();
    assert_eq!(rows, 1, "expected exactly one measured row: {stdout}");
}

#[test]
fn rows_filter_matching_nothing_is_an_error() {
    let out = perfbench()
        .args(["--quick", "--rows", "no-such-program-zz"])
        .output()
        .expect("binary runs");
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("matched no"),
        "stderr should say the filter matched nothing: {stderr}"
    );
}

#[test]
fn unknown_arguments_are_rejected_with_usage() {
    let out = perfbench()
        .arg("--frobnicate")
        .output()
        .expect("binary runs");
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("usage:"), "expected usage line: {stderr}");
}
