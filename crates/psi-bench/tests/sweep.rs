//! Integration tests for the sweep engine's restart story: a killed
//! sweep resumes from its cell directory without recomputing (or even
//! rewriting) completed cells, shards are disjoint and union to the
//! unsharded grid, and the `sweepbench` binary's end-to-end contract
//! holds — sweep twice, `diff` exits 0; tamper, `diff` exits nonzero.

use psi_bench::drift::Tolerance;
use psi_bench::sweep::{diff_cells, run_sweep, ConfigPoint, GeometryAxis, SweepOptions, SweepSpec};
use psi_cache::WritePolicy;
use psi_workloads::contest;
use std::path::PathBuf;
use std::process::Command;

fn spec() -> SweepSpec {
    let (geometries, invalid) = GeometryAxis {
        capacities: vec![64, 256, 8192],
        ways: vec![1, 2],
        block_words: vec![4],
        policies: vec![WritePolicy::StoreIn, WritePolicy::StoreThrough],
        write_stack_no_fetch: vec![true],
    }
    .expand();
    assert_eq!(invalid, 0);
    SweepSpec {
        name: "resume-test".into(),
        workloads: vec![contest::nreverse(12), contest::quick_sort(16)],
        configs: vec![ConfigPoint::fidelity("A-linear", false)],
        geometries,
    }
}

/// A unique scratch directory per test (removed on success; left for
/// inspection on failure).
fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("psi-sweep-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn cell_files(dir: &PathBuf) -> Vec<(String, Vec<u8>)> {
    let mut files: Vec<(String, Vec<u8>)> = std::fs::read_dir(dir)
        .unwrap()
        .map(|e| {
            let e = e.unwrap();
            (
                e.file_name().to_string_lossy().into_owned(),
                std::fs::read(e.path()).unwrap(),
            )
        })
        .collect();
    files.sort();
    files
}

/// The kill-and-restart story: a sweep stopped mid-grid (simulated
/// with the `limit` option) leaves complete per-cell files behind; a
/// restart with the same cell directory resumes them byte-identically
/// — the files are not rewritten, their contents do not change, and
/// the finished grid equals a never-killed run bit for bit.
#[test]
fn killed_sweep_resumes_byte_identically() {
    let spec = spec();
    let dir = scratch("resume");
    let total = 2 * 12; // 2 workloads × 1 config × 12 geometries

    // First run dies after 5 cells.
    let killed = run_sweep(
        &spec,
        &SweepOptions {
            threads: 1,
            cell_dir: Some(dir.clone()),
            limit: Some(5),
            ..SweepOptions::default()
        },
    );
    assert_eq!(killed.computed, 5);
    assert_eq!(killed.unrun, total - 5);
    let after_kill = cell_files(&dir);
    assert_eq!(after_kill.len(), 5, "one complete file per computed cell");
    assert!(
        after_kill.iter().all(|(name, _)| !name.ends_with(".tmp")),
        "no half-written temp files may survive: {after_kill:?}"
    );

    // Restart: the 5 persisted cells resume, the rest compute.
    let resumed = run_sweep(
        &spec,
        &SweepOptions {
            threads: 1,
            cell_dir: Some(dir.clone()),
            ..SweepOptions::default()
        },
    );
    assert_eq!(resumed.resumed, 5);
    assert_eq!(resumed.computed, total - 5);
    assert_eq!(resumed.cells.len(), total);
    assert!(resumed.all_ok(), "{}", resumed.render());

    // The resumed cells' files are byte-for-byte what the killed run
    // left (skip-if-present never rewrites).
    let after_resume = cell_files(&dir);
    assert_eq!(after_resume.len(), total);
    for (name, bytes) in &after_kill {
        let unchanged = after_resume.iter().any(|(n, b)| n == name && b == bytes);
        assert!(unchanged, "{name} was rewritten by the resume");
    }

    // And the finished grid equals a clean, never-killed in-memory
    // run on every tracked field.
    let clean = run_sweep(&spec, &SweepOptions::default());
    let diff = diff_cells(&clean.cells, &resumed.cells, Tolerance::EXACT);
    assert!(!diff.has_drift(), "{}", diff.render());
    // Wall times of resumed cells are the *original* measurements,
    // preserved verbatim from the first run's files.
    for cell in &resumed.cells {
        assert!(
            cell.wall_ns > 0,
            "{}: wall_ns must survive the resume",
            cell.key
        );
    }

    let _ = std::fs::remove_dir_all(&dir);
}

/// Shards 0/2 and 1/2 are disjoint, union to the unsharded grid, and
/// can share one cell directory without contention: a subsequent
/// unsharded run resumes every cell the two shards left behind.
#[test]
fn shards_union_to_the_full_grid_on_disk() {
    let spec = spec();
    let dir = scratch("shards");
    let total = 2 * 12;

    for i in 0..2 {
        let shard = run_sweep(
            &spec,
            &SweepOptions {
                threads: 2,
                shard: Some((i, 2)),
                cell_dir: Some(dir.clone()),
                ..SweepOptions::default()
            },
        );
        assert_eq!(shard.computed, total / 2, "shard {i}/2 owns half the grid");
        assert_eq!(shard.resumed, 0, "shards are disjoint — nothing to resume");
        assert!(shard.all_ok(), "{}", shard.render());
    }
    assert_eq!(cell_files(&dir).len(), total);

    // The merge run finds every cell already present.
    let merged = run_sweep(
        &spec,
        &SweepOptions {
            cell_dir: Some(dir.clone()),
            ..SweepOptions::default()
        },
    );
    assert_eq!(merged.resumed, total);
    assert_eq!(merged.computed, 0);
    let clean = run_sweep(&spec, &SweepOptions::default());
    let diff = diff_cells(&clean.cells, &merged.cells, Tolerance::EXACT);
    assert!(!diff.has_drift(), "{}", diff.render());

    let _ = std::fs::remove_dir_all(&dir);
}

/// A corrupt or truncated cell file (the window a kill could hit
/// without the tmp+rename discipline) is recomputed, not trusted.
#[test]
fn corrupt_cell_files_are_recomputed() {
    let spec = spec();
    let dir = scratch("corrupt");

    let first = run_sweep(
        &spec,
        &SweepOptions {
            threads: 1,
            cell_dir: Some(dir.clone()),
            ..SweepOptions::default()
        },
    );
    assert!(first.all_ok());
    let files = cell_files(&dir);
    // Truncate one file and scribble junk into another.
    std::fs::write(dir.join(&files[0].0), &files[0].1[..files[0].1.len() / 2]).unwrap();
    std::fs::write(dir.join(&files[1].0), "not json at all").unwrap();

    let again = run_sweep(
        &spec,
        &SweepOptions {
            threads: 1,
            cell_dir: Some(dir.clone()),
            ..SweepOptions::default()
        },
    );
    assert_eq!(again.computed, 2, "exactly the two damaged cells recompute");
    assert_eq!(again.resumed, first.cells.len() - 2);
    assert!(again.all_ok(), "{}", again.render());
    let diff = diff_cells(&first.cells, &again.cells, Tolerance::EXACT);
    assert!(!diff.has_drift(), "{}", diff.render());

    let _ = std::fs::remove_dir_all(&dir);
}

// ------------------------------------------------------------------
// sweepbench binary contract
// ------------------------------------------------------------------

fn sweepbench() -> Command {
    Command::new(env!("CARGO_BIN_EXE_sweepbench"))
}

/// The CI self-check contract: sweep the quick grid twice, `diff`
/// exits 0; tamper with one value, `diff` exits nonzero and names the
/// drift.
#[test]
fn sweep_twice_diffs_clean_and_tampering_is_caught() {
    let dir = scratch("cli");
    let (a, b) = (dir.join("a.json"), dir.join("b.json"));
    for out in [&a, &b] {
        let run = sweepbench()
            .args(["--quick", "--threads", "2", "--out"])
            .arg(out)
            .output()
            .expect("binary runs");
        assert!(
            run.status.success(),
            "sweepbench --quick must exit 0: {}",
            String::from_utf8_lossy(&run.stderr)
        );
    }

    let clean = sweepbench().arg("diff").args([&a, &b]).output().unwrap();
    let stdout = String::from_utf8_lossy(&clean.stdout);
    assert!(
        clean.status.success(),
        "identical grids must diff clean: {stdout}"
    );
    assert!(stdout.contains("no drift"), "{stdout}");

    // Tamper with one steps value in the second report.
    let text = std::fs::read_to_string(&b).unwrap();
    let needle = "\"steps\":";
    let at = text.rfind(needle).unwrap() + needle.len();
    let end = text[at..].find(',').unwrap() + at;
    let tampered = format!("{}{}{}", &text[..at], "123456789", &text[end..]);
    std::fs::write(&b, tampered).unwrap();

    let drifted = sweepbench().arg("diff").args([&a, &b]).output().unwrap();
    let stdout = String::from_utf8_lossy(&drifted.stdout);
    assert!(
        !drifted.status.success(),
        "a moved value must exit nonzero: {stdout}"
    );
    assert!(stdout.contains("SWEEP DRIFT DETECTED"), "{stdout}");
    assert!(stdout.contains("steps"), "{stdout}");

    let _ = std::fs::remove_dir_all(&dir);
}

/// Bad invocations fail fast with a clear message, before any
/// measurement.
#[test]
fn malformed_arguments_are_clear_errors() {
    for (args, expect) in [
        (vec!["--shard", "2/2"], "--shard"),
        (vec!["--shard", "nope"], "--shard"),
        (vec!["--mode", "turbo"], "--mode"),
        (vec!["--threads", "0"], "--threads"),
        (vec!["--bogus"], "unknown argument"),
        (vec!["diff", "only-one.json"], "usage"),
    ] {
        let out = sweepbench().args(&args).output().unwrap();
        assert!(!out.status.success(), "{args:?} must exit nonzero");
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(
            stderr.contains(expect),
            "{args:?}: stderr should mention `{expect}`, got: {stderr}"
        );
        assert!(!stderr.contains("panicked"), "{args:?}: {stderr}");
    }
}
