//! Measures serial vs parallel regeneration wall-clock for the
//! Table 1 suite and the Figure 1 capacity sweep. The numbers quoted
//! in EXPERIMENTS.md ("Regeneration performance") come from this
//! example: `cargo run --release -p psi-bench --example regen_timing`.

use psi_core::Measurement;
use psi_machine::MachineConfig;
use psi_tools::pmms;
use psi_workloads::runner::{default_parallelism, run_on_psi_machine, run_suite_parallel_with};
use psi_workloads::suite::table1_suite;
use psi_workloads::window;
use std::time::Instant;

fn main() {
    let threads = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or_else(default_parallelism);
    println!(
        "host parallelism: {} (timing with {threads} workers)",
        default_parallelism()
    );

    // Table 1 suite: PSI side of all nineteen rows.
    let workloads: Vec<_> = table1_suite().into_iter().map(|e| e.workload).collect();
    let config = MachineConfig::psi();
    let t = Instant::now();
    let serial = run_suite_parallel_with(&workloads, &config, Measurement::Full, 1);
    let serial_s = t.elapsed().as_secs_f64();
    let t = Instant::now();
    let parallel = run_suite_parallel_with(&workloads, &config, Measurement::Full, threads);
    let parallel_s = t.elapsed().as_secs_f64();
    for (a, b) in serial.iter().zip(&parallel) {
        let (a, b) = (a.as_ref().unwrap(), b.as_ref().unwrap());
        assert_eq!(a.stats, b.stats, "parallel run must be bit-identical");
    }
    println!(
        "table1 suite  : serial {serial_s:.2}s, parallel {parallel_s:.2}s, \
         speedup {:.2}x",
        serial_s / parallel_s
    );

    // Figure 1: trace the WINDOW run once, then sweep 11 capacities.
    let mut config = MachineConfig::psi();
    config.trace_memory = true;
    let w = window::window(1);
    let (run, mut machine) = run_on_psi_machine(&w, config).expect("window runs");
    let trace = machine.take_trace();
    let steps = run.stats.steps;
    let t = Instant::now();
    let serial_sweep = pmms::capacity_sweep_parallel(&trace, 200, steps, 1);
    let serial_s = t.elapsed().as_secs_f64();
    let t = Instant::now();
    let parallel_sweep = pmms::capacity_sweep_parallel(&trace, 200, steps, threads);
    let parallel_s = t.elapsed().as_secs_f64();
    assert_eq!(serial_sweep, parallel_sweep, "sweep must be identical");
    println!(
        "figure1 sweep : serial {serial_s:.2}s, parallel {parallel_s:.2}s, \
         speedup {:.2}x",
        serial_s / parallel_s
    );
}
