//! Profiling driver: runs one Table 1 row repeatedly in a chosen
//! lane so a sampling profiler can attribute the hot path, and so
//! lane speedups can be timed outside the full perfbench harness.
//! Usage: lane_profile <name-substring> <fidelity|throughput|compiled> <reps>
use psi_core::Measurement;
use psi_machine::MachineConfig;
use psi_workloads::runner::run_on_psi;
use psi_workloads::suite::table1_suite;

fn main() {
    let mut args = std::env::args().skip(1);
    let name = args.next().unwrap_or_else(|| "tarai3".into());
    let lane = args.next().unwrap_or_else(|| "throughput".into());
    let reps: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(5);
    let mut config = MachineConfig::psi();
    if lane == "throughput" || lane == "compiled" {
        config.measurement = Measurement::Off;
    }
    if lane == "compiled" {
        config.compiled = true;
    }
    let entry = table1_suite()
        .into_iter()
        .find(|e| e.workload.name.contains(&name))
        .expect("row");
    for _ in 0..reps {
        let run = run_on_psi(&entry.workload, config.clone()).expect("run");
        assert!(!run.solutions.is_empty() || run.stats.steps > 0);
    }
    println!("done: {} x{reps} ({lane})", entry.workload.name);
}
