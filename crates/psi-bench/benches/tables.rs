//! Criterion benchmarks: one per reproduced table/figure, so `cargo
//! bench` exercises every experiment, plus simulator throughput
//! benchmarks. The heavyweight experiments run on reduced inputs here;
//! the `src/bin` generators produce the full reports.

use criterion::{criterion_group, criterion_main, Criterion};
use psi_machine::MachineConfig;
use psi_workloads::runner::{run_on_dec, run_on_psi, run_on_psi_machine};
use psi_workloads::{contest, harmonizer, parsers, puzzle, window};

fn bench_table1(c: &mut Criterion) {
    let mut g = c.benchmark_group("table1");
    g.sample_size(10);
    g.bench_function("psi_nreverse30", |b| {
        let w = contest::nreverse(30);
        b.iter(|| run_on_psi(&w, MachineConfig::psi()).unwrap())
    });
    g.bench_function("dec_nreverse30", |b| {
        let w = contest::nreverse(30);
        b.iter(|| run_on_dec(&w).unwrap())
    });
    g.bench_function("psi_lcp2", |b| {
        let w = parsers::lcp(2);
        b.iter(|| run_on_psi(&w, MachineConfig::psi()).unwrap())
    });
    g.bench_function("dec_lcp2", |b| {
        let w = parsers::lcp(2);
        b.iter(|| run_on_dec(&w).unwrap())
    });
    g.finish();
}

fn bench_table2(c: &mut Criterion) {
    let mut g = c.benchmark_group("table2");
    g.sample_size(10);
    g.bench_function("module_ratios_harmonizer", |b| {
        let w = harmonizer::harmonizer(1);
        b.iter(|| {
            let r = run_on_psi(&w, MachineConfig::psi()).unwrap();
            r.stats.modules.percentages()
        })
    });
    g.finish();
}

fn bench_tables3_to_5(c: &mut Criterion) {
    let mut g = c.benchmark_group("tables3-5");
    g.sample_size(10);
    g.bench_function("cache_stats_window1", |b| {
        let w = window::window(1);
        b.iter(|| {
            let r = run_on_psi(&w, MachineConfig::psi()).unwrap();
            (r.stats.cache.hit_ratio_pct(), r.stats.cache.area_shares_pct())
        })
    });
    g.bench_function("cache_stats_8puzzle", |b| {
        let w = puzzle::eight_puzzle(4);
        b.iter(|| {
            let r = run_on_psi(&w, MachineConfig::psi()).unwrap();
            r.stats.cache.hit_ratio_pct()
        })
    });
    g.finish();
}

fn bench_tables6_and_7(c: &mut Criterion) {
    let mut g = c.benchmark_group("tables6-7");
    g.sample_size(10);
    g.bench_function("wf_and_branch_stats_bup1", |b| {
        let w = parsers::bup(1);
        b.iter(|| {
            let r = run_on_psi(&w, MachineConfig::psi()).unwrap();
            let t6 = psi_tools::map::wf_mode_table(&r.stats.wf, r.stats.steps);
            let t7 = psi_tools::map::branch_table(&r.stats.branches);
            (t6.len(), t7.len())
        })
    });
    g.finish();
}

fn bench_figure1(c: &mut Criterion) {
    // Collect the WINDOW trace once; benchmark the PMMS sweep itself.
    let mut config = MachineConfig::psi();
    config.trace_memory = true;
    let w = window::window(1);
    let (run, mut machine) = run_on_psi_machine(&w, config).unwrap();
    let trace = machine.take_trace();
    let steps = run.stats.steps;
    let mut g = c.benchmark_group("figure1");
    g.sample_size(10);
    g.bench_function("pmms_capacity_sweep", |b| {
        b.iter(|| psi_tools::pmms::capacity_sweep(&trace, 200, steps))
    });
    g.bench_function("pmms_policy_study", |b| {
        b.iter(|| psi_tools::pmms::policy_study(&trace, 200, steps))
    });
    g.finish();
}

fn bench_simulator_throughput(c: &mut Criterion) {
    let mut g = c.benchmark_group("throughput");
    g.sample_size(10);
    g.bench_function("psi_steps_per_sec_queens6", |b| {
        let w = {
            let mut w = contest::queens_first(6);
            w.max_solutions = 1;
            w
        };
        b.iter(|| run_on_psi(&w, MachineConfig::psi()).unwrap().stats.steps)
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_table1,
    bench_table2,
    bench_tables3_to_5,
    bench_tables6_and_7,
    bench_figure1,
    bench_simulator_throughput
);
criterion_main!(benches);
