//! Benchmarks: one group per reproduced table/figure, so `cargo bench`
//! exercises every experiment, plus simulator throughput benchmarks.
//! The heavyweight experiments run on reduced inputs here; the
//! `src/bin` generators produce the full reports.
//!
//! Self-contained timing harness (`harness = false`): each benchmark
//! runs a short warm-up, then reports the best and mean wall-clock of
//! a fixed number of iterations. Pass a substring argument to run a
//! subset, e.g. `cargo bench --bench tables -- table1`.

use psi_core::Measurement;
use psi_machine::MachineConfig;
use psi_workloads::runner::{run_on_dec, run_on_psi, run_on_psi_machine, run_suite_parallel};
use psi_workloads::{contest, harmonizer, parsers, puzzle, window};
use std::time::{Duration, Instant};

struct Bench {
    filter: Option<String>,
}

impl Bench {
    fn new() -> Bench {
        Bench {
            filter: std::env::args().nth(1),
        }
    }

    /// Times `f` (3 warm-up + 10 measured iterations) and prints one
    /// report line. A `std::hint::black_box` on the result keeps the
    /// optimizer honest.
    fn run<T>(&self, name: &str, mut f: impl FnMut() -> T) {
        if let Some(filter) = &self.filter {
            if !name.contains(filter.as_str()) {
                return;
            }
        }
        const WARMUP: usize = 3;
        const ITERS: usize = 10;
        for _ in 0..WARMUP {
            std::hint::black_box(f());
        }
        let mut best = Duration::MAX;
        let mut total = Duration::ZERO;
        for _ in 0..ITERS {
            let start = Instant::now();
            std::hint::black_box(f());
            let elapsed = start.elapsed();
            total += elapsed;
            best = best.min(elapsed);
        }
        let mean = total / ITERS as u32;
        println!("{name:<40} best {best:>12.3?}   mean {mean:>12.3?}   ({ITERS} iters)");
    }
}

fn main() {
    let b = Bench::new();

    // table1: representative rows, serial engines, and the parallel
    // suite runner over the same rows.
    b.run("table1/psi_nreverse30", || {
        run_on_psi(&contest::nreverse(30), MachineConfig::psi()).unwrap()
    });
    b.run("table1/dec_nreverse30", || {
        run_on_dec(&contest::nreverse(30)).unwrap()
    });
    b.run("table1/psi_lcp2", || {
        run_on_psi(&parsers::lcp(2), MachineConfig::psi()).unwrap()
    });
    b.run("table1/dec_lcp2", || run_on_dec(&parsers::lcp(2)).unwrap());
    b.run("table1/parallel_four_rows", || {
        let rows = [
            contest::nreverse(30),
            contest::quick_sort(50),
            parsers::lcp(2),
            parsers::bup(2),
        ];
        run_suite_parallel(&rows, &MachineConfig::psi(), Measurement::Full)
            .into_iter()
            .map(|r| r.unwrap().stats.steps)
            .sum::<u64>()
    });

    b.run("table2/module_ratios_harmonizer", || {
        let r = run_on_psi(&harmonizer::harmonizer(1), MachineConfig::psi()).unwrap();
        r.stats.modules.percentages()
    });

    b.run("tables3-5/cache_stats_window1", || {
        let r = run_on_psi(&window::window(1), MachineConfig::psi()).unwrap();
        (
            r.stats.cache.hit_ratio_pct(),
            r.stats.cache.area_shares_pct(),
        )
    });
    b.run("tables3-5/cache_stats_8puzzle", || {
        let r = run_on_psi(&puzzle::eight_puzzle(4), MachineConfig::psi()).unwrap();
        r.stats.cache.hit_ratio_pct()
    });

    b.run("tables6-7/wf_and_branch_stats_bup1", || {
        let r = run_on_psi(&parsers::bup(1), MachineConfig::psi()).unwrap();
        let t6 = psi_tools::map::wf_mode_table(&r.stats.wf, r.stats.steps);
        let t7 = psi_tools::map::branch_table(&r.stats.branches);
        (t6.len(), t7.len())
    });

    // figure1: collect the WINDOW trace once; benchmark the PMMS sweep
    // itself.
    {
        let mut config = MachineConfig::psi();
        config.trace_memory = true;
        let w = window::window(1);
        let (run, mut machine) = run_on_psi_machine(&w, config).unwrap();
        let trace = machine.take_trace();
        let steps = run.stats.steps;
        b.run("figure1/pmms_capacity_sweep", || {
            psi_tools::pmms::capacity_sweep(&trace, 200, steps)
        });
        b.run("figure1/pmms_policy_study", || {
            psi_tools::pmms::policy_study(&trace, 200, steps)
        });
    }

    b.run("throughput/psi_steps_per_sec_queens6", || {
        let w = {
            let mut w = contest::queens_first(6);
            w.max_solutions = 1;
            w
        };
        run_on_psi(&w, MachineConfig::psi()).unwrap().stats.steps
    });
}
