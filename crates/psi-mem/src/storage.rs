//! Word storage for every (process, area) pair.

use psi_core::{Address, Area, ProcessId, PsiError, Result, Word, AREA_COUNT};

/// Default growth limit per area, in words.
const DEFAULT_AREA_LIMIT: usize = 1 << 24;

/// Raw word storage for the five areas of up to four processes.
///
/// Storage grows on demand (writes one past the end extend the area,
/// which is how stack pushes materialize); reads beyond the written
/// extent are errors, catching interpreter bugs early.
#[derive(Debug, Clone)]
pub struct Memory {
    areas: Vec<Vec<Word>>, // indexed by process * AREA_COUNT + area
    limit: usize,
}

impl Memory {
    /// Creates an empty memory with the default per-area growth limit.
    pub fn new() -> Memory {
        Memory::with_limit(DEFAULT_AREA_LIMIT)
    }

    /// Creates an empty memory with an explicit per-area limit in
    /// words. Exceeding the limit raises
    /// [`PsiError::StackOverflow`].
    pub fn with_limit(limit: usize) -> Memory {
        Memory {
            areas: vec![Vec::new(); ProcessId::MAX_PROCESSES * AREA_COUNT],
            limit,
        }
    }

    #[inline]
    fn slot(&self, addr: Address) -> usize {
        addr.process().index() * AREA_COUNT + addr.area().index()
    }

    /// Reads the word at `addr`.
    ///
    /// # Errors
    ///
    /// Returns [`PsiError::OutOfArea`] if `addr` is beyond the written
    /// extent of its area.
    #[inline]
    pub fn read(&self, addr: Address) -> Result<Word> {
        let area = &self.areas[self.slot(addr)];
        match area.get(addr.offset() as usize) {
            Some(&w) => Ok(w),
            None => Err(Self::out_of_area(addr)),
        }
    }

    /// Cold error constructor, kept out of the inlined read path (the
    /// `format!` machinery would otherwise bloat every call site).
    #[cold]
    #[inline(never)]
    fn out_of_area(addr: Address) -> PsiError {
        PsiError::OutOfArea {
            access: format!("read {addr}"),
        }
    }

    /// Writes `word` at `addr`, growing the area if `addr` is at or
    /// past the current extent.
    ///
    /// # Errors
    ///
    /// Returns [`PsiError::StackOverflow`] if growth would exceed the
    /// configured limit.
    #[inline]
    pub fn write(&mut self, addr: Address, word: Word) -> Result<()> {
        let slot = self.slot(addr);
        let area = &mut self.areas[slot];
        let off = addr.offset() as usize;
        if let Some(cell) = area.get_mut(off) {
            *cell = word;
            Ok(())
        } else if off == area.len() && off < self.limit {
            // Write exactly at the extent: a stack push. Hot — every
            // trail/stack push lands here — so it stays inline.
            area.push(word);
            Ok(())
        } else {
            self.write_grow(addr, word)
        }
    }

    /// Out-of-line slow half of [`Memory::write`]: a write past the
    /// extent with a gap (materializes the undef cells in between) or
    /// one that exceeds the configured limit.
    #[cold]
    #[inline(never)]
    fn write_grow(&mut self, addr: Address, word: Word) -> Result<()> {
        let limit = self.limit;
        let slot = self.slot(addr);
        let area = &mut self.areas[slot];
        let off = addr.offset() as usize;
        if off >= limit {
            return Err(PsiError::StackOverflow {
                area: addr.area().label(),
                limit,
            });
        }
        area.resize(off + 1, Word::undef());
        area[off] = word;
        Ok(())
    }

    /// The written extent of `area` for `process`, in words.
    pub fn extent(&self, process: ProcessId, area: Area) -> u32 {
        self.areas[process.index() * AREA_COUNT + area.index()].len() as u32
    }

    /// Truncates `area` of `process` to `len` words (stack pop en
    /// masse, used when backtracking discards stack tops).
    pub fn truncate(&mut self, process: ProcessId, area: Area, len: u32) {
        let a = &mut self.areas[process.index() * AREA_COUNT + area.index()];
        if (len as usize) < a.len() {
            a.truncate(len as usize);
        }
    }

    /// Total words currently allocated across all areas.
    pub fn total_words(&self) -> usize {
        self.areas.iter().map(Vec::len).sum()
    }
}

impl Default for Memory {
    fn default() -> Memory {
        Memory::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn addr(area: Area, off: u32) -> Address {
        Address::new(ProcessId::ZERO, area, off)
    }

    #[test]
    fn write_then_read() {
        let mut m = Memory::new();
        let a = addr(Area::Heap, 10);
        m.write(a, Word::int(42)).unwrap();
        assert_eq!(m.read(a).unwrap().int_value(), Some(42));
        // Cells below the write exist but are undef.
        assert!(m.read(addr(Area::Heap, 5)).unwrap().is_undef());
    }

    #[test]
    fn read_beyond_extent_is_error() {
        let m = Memory::new();
        assert!(matches!(
            m.read(addr(Area::LocalStack, 0)),
            Err(PsiError::OutOfArea { .. })
        ));
    }

    #[test]
    fn areas_are_independent() {
        let mut m = Memory::new();
        m.write(addr(Area::LocalStack, 0), Word::int(1)).unwrap();
        m.write(addr(Area::GlobalStack, 0), Word::int(2)).unwrap();
        let other = Address::new(ProcessId::new(1), Area::LocalStack, 0);
        assert!(m.read(other).is_err(), "processes are independent too");
        assert_eq!(
            m.read(addr(Area::LocalStack, 0)).unwrap().int_value(),
            Some(1)
        );
        assert_eq!(
            m.read(addr(Area::GlobalStack, 0)).unwrap().int_value(),
            Some(2)
        );
    }

    #[test]
    fn limit_is_enforced() {
        let mut m = Memory::with_limit(16);
        assert!(m.write(addr(Area::TrailStack, 15), Word::nil()).is_ok());
        assert!(matches!(
            m.write(addr(Area::TrailStack, 16), Word::nil()),
            Err(PsiError::StackOverflow {
                area: "trail",
                limit: 16
            })
        ));
    }

    #[test]
    fn truncate_pops() {
        let mut m = Memory::new();
        for i in 0..8 {
            m.write(addr(Area::ControlStack, i), Word::int(i as i32))
                .unwrap();
        }
        m.truncate(ProcessId::ZERO, Area::ControlStack, 3);
        assert_eq!(m.extent(ProcessId::ZERO, Area::ControlStack), 3);
        assert!(m.read(addr(Area::ControlStack, 3)).is_err());
        assert_eq!(
            m.read(addr(Area::ControlStack, 2)).unwrap().int_value(),
            Some(2)
        );
    }
}
