//! The memory unit: storage behind a cache, with stall accounting and
//! optional tracing.

use crate::{AddressTranslation, Memory};
use psi_cache::{Cache, CacheCommand, CacheConfig, CacheStats};
use psi_core::{Address, Measurement, ObsEvent, Result, Word};
use psi_obs::EventRing;

/// One traced memory access: the microstep at which it happened, the
/// cache command, and the logical address. This is exactly what the
/// paper's COLLECT tool dumped for PMMS to replay (§4.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEntry {
    /// Microinstruction step index at which the access occurred.
    pub step: u64,
    /// The cache command.
    pub command: CacheCommand,
    /// The logical address.
    pub address: Address,
}

#[derive(Debug, Clone)]
enum Attachment {
    /// A real cache.
    Cached(Box<Cache>),
    /// No cache: every access pays the full memory access time. This is
    /// the `Tnc` baseline of Figure 1's improvement-ratio definition.
    Uncached {
        stats: Box<CacheStats>,
        miss_extra_ns: u64,
    },
}

/// The memory unit the interpreter talks to.
///
/// All runtime accesses go through [`read`](MemBus::read),
/// [`write`](MemBus::write) and [`write_stack`](MemBus::write_stack),
/// which drive the cache model, accumulate stall time and optionally
/// record a trace. Code loading and debugging use the uncounted
/// [`peek`](MemBus::peek)/[`poke`](MemBus::poke) pair, mirroring how
/// the real machine loaded code through the console processor rather
/// than the cache.
///
/// # Execution lanes
///
/// The bus runs in one of two lanes, selected once via
/// [`MemBus::set_measurement`] (the machine does this at load, before
/// any counted access):
///
/// * [`Measurement::Full`] (default) — every counted access drives
///   address translation, the cache-occupancy model (stall
///   accounting), the optional address trace and the optional event
///   ring.
/// * [`Measurement::Off`] — counted accesses take a straight-line
///   fast route: storage read/write only. [`MemBus::tick`] still
///   counts microsteps but lets no simulated memory traffic drain.
///   Each access pays a single always-predicted lane branch instead
///   of the measured route's branch tree (translation, trace
///   `Option`, attachment match, event `Option`).
#[derive(Debug, Clone)]
pub struct MemBus {
    mem: Memory,
    attachment: Attachment,
    translation: AddressTranslation,
    stall_ns: u64,
    step: u64,
    /// Lane flag: `true` in the fidelity lane. Hoisted out of the
    /// access routines' match tree so the throughput lane tests one
    /// bool and jumps straight to storage.
    measured: bool,
    trace: Option<Vec<TraceEntry>>,
    /// Observability event ring: `None` (the default) records nothing
    /// and costs one branch per access, like `trace`.
    events: Option<Box<EventRing>>,
}

impl MemBus {
    /// A bus with the PSI production cache attached.
    pub fn with_psi_cache() -> MemBus {
        MemBus::with_cache(CacheConfig::psi())
    }

    /// A bus with an arbitrary cache configuration attached.
    pub fn with_cache(config: CacheConfig) -> MemBus {
        MemBus {
            mem: Memory::new(),
            attachment: Attachment::Cached(Box::new(Cache::new(config))),
            translation: AddressTranslation::new(),
            stall_ns: 0,
            step: 0,
            measured: true,
            trace: None,
            events: None,
        }
    }

    /// A bus with no cache: every access stalls for the full memory
    /// time (`miss_extra_ns` beyond the cycle). Used to measure `Tnc`
    /// in Figure 1's improvement ratio.
    pub fn without_cache() -> MemBus {
        let config = CacheConfig::psi();
        MemBus {
            mem: Memory::new(),
            attachment: Attachment::Uncached {
                stats: Box::new(CacheStats::new()),
                miss_extra_ns: config.miss_extra_ns(),
            },
            translation: AddressTranslation::new(),
            stall_ns: 0,
            step: 0,
            measured: true,
            trace: None,
            events: None,
        }
    }

    /// Selects the execution lane (see the type-level documentation).
    /// Call once before any counted access; switching lanes mid-run
    /// would split the cache statistics between models.
    pub fn set_measurement(&mut self, lane: Measurement) {
        self.measured = lane.is_full();
    }

    /// The currently selected lane.
    pub fn measurement(&self) -> Measurement {
        if self.measured {
            Measurement::Full
        } else {
            Measurement::Off
        }
    }

    /// Enables trace recording (COLLECT mode).
    pub fn enable_trace(&mut self) {
        self.set_trace_enabled(true);
    }

    /// Enables or disables trace recording. Disabling drops any
    /// recorded entries and returns the bus to the zero-cost path: a
    /// non-tracing bus pays only one branch per access.
    pub fn set_trace_enabled(&mut self, enabled: bool) {
        if enabled {
            if self.trace.is_none() {
                self.trace = Some(Vec::new());
            }
        } else {
            self.trace = None;
        }
    }

    /// Whether trace recording is currently enabled.
    pub fn trace_enabled(&self) -> bool {
        self.trace.is_some()
    }

    /// Takes the recorded trace, leaving recording enabled.
    pub fn take_trace(&mut self) -> Vec<TraceEntry> {
        match &mut self.trace {
            Some(t) => std::mem::take(t),
            None => Vec::new(),
        }
    }

    /// Enables or disables observability event recording. Enabling
    /// allocates the bounded ring once (capacity
    /// [`psi_obs::DEFAULT_EVENT_CAPACITY`]); a full ring overwrites
    /// its oldest event. Disabling drops the ring and returns the bus
    /// to the one-branch-per-access path.
    pub fn set_events_enabled(&mut self, enabled: bool) {
        if enabled {
            if self.events.is_none() {
                self.events = Some(Box::new(EventRing::new()));
            }
        } else {
            self.events = None;
        }
    }

    /// Whether observability event recording is enabled.
    pub fn events_enabled(&self) -> bool {
        self.events.is_some()
    }

    /// Records an externally produced event (the interpreter pushes
    /// its dispatch/backtrack/governor events through here so machine
    /// and cache events share one chronological ring). No-op while
    /// event recording is disabled.
    #[inline]
    pub fn record_event(&mut self, event: ObsEvent) {
        if let Some(ring) = &mut self.events {
            ring.push(event);
        }
    }

    /// Copies out the recorded events in chronological order and
    /// clears the ring, leaving recording enabled. Returns an empty
    /// vector while recording is disabled.
    pub fn take_events(&mut self) -> Vec<ObsEvent> {
        match &mut self.events {
            Some(ring) => {
                let out = ring.to_vec();
                ring.clear();
                out
            }
            None => Vec::new(),
        }
    }

    /// Events overwritten by the full ring since recording was enabled
    /// or last taken.
    pub fn events_dropped(&self) -> u64 {
        self.events.as_ref().map_or(0, |r| r.dropped())
    }

    /// Called by the interpreter once per microinstruction step so the
    /// bus can timestamp traced accesses and let the cache's pending
    /// memory traffic drain. In the throughput lane only the step
    /// counter advances — there is no simulated memory traffic to
    /// drain, so the lane's step accounting stays bit-identical while
    /// the occupancy model is skipped entirely.
    #[inline]
    pub fn tick(&mut self, cycle_ns: u64) {
        self.step += 1;
        if self.measured {
            if let Attachment::Cached(c) = &mut self.attachment {
                c.advance(cycle_ns);
            }
        }
    }

    /// Batch-advances the microstep counter by `n` ticks without
    /// consulting the cache model — the throughput/compiled lanes'
    /// equivalent of `n` [`MemBus::tick`]s, whose cache advance is
    /// measurement-gated off anyway. Never call this on a measuring
    /// bus: the cache-occupancy model would silently miss `n` cycles.
    #[inline]
    pub fn advance(&mut self, n: u64) {
        debug_assert!(!self.measured, "batch advance would bypass the cache model");
        self.step += n;
    }

    /// The current microstep counter.
    pub fn step(&self) -> u64 {
        self.step
    }

    /// Total stall time beyond microcycles, in nanoseconds.
    pub fn stall_ns(&self) -> u64 {
        self.stall_ns
    }

    /// Cache statistics (or bypass statistics when no cache is
    /// attached).
    pub fn cache_stats(&self) -> &CacheStats {
        match &self.attachment {
            Attachment::Cached(c) => c.stats(),
            Attachment::Uncached { stats, .. } => stats,
        }
    }

    /// Resets measurement state (statistics, stall time, step counter,
    /// trace) without touching memory contents — used to exclude
    /// warm-up, like the paper's breakpoint-triggered measurements.
    pub fn reset_measurement(&mut self) {
        match &mut self.attachment {
            Attachment::Cached(c) => c.reset_stats(),
            Attachment::Uncached { stats, .. } => **stats = CacheStats::new(),
        }
        self.stall_ns = 0;
        self.step = 0;
        if let Some(t) = &mut self.trace {
            t.clear();
        }
        if let Some(ring) = &mut self.events {
            ring.clear();
        }
    }

    /// Replaces the attached cache model (or detaches it with `None`)
    /// while keeping memory contents, the trace/event configuration
    /// and the lane flag. The new attachment starts with fresh
    /// statistics and no occupancy, so this belongs at a run boundary
    /// — `Machine::fork_with_cache` uses it to re-geometry a pre-run
    /// fork without re-seeding the simulated heap.
    pub fn set_cache(&mut self, config: Option<CacheConfig>) {
        self.attachment = match config {
            Some(c) => Attachment::Cached(Box::new(Cache::new(c))),
            None => Attachment::Uncached {
                stats: Box::new(CacheStats::new()),
                miss_extra_ns: CacheConfig::psi().miss_extra_ns(),
            },
        };
        self.stall_ns = 0;
    }

    /// The backing storage (for checkpointing in tests).
    pub fn memory(&self) -> &Memory {
        &self.mem
    }

    /// Mutable backing storage (used by the machine for bulk stack
    /// truncation on backtracking).
    pub fn memory_mut(&mut self) -> &mut Memory {
        &mut self.mem
    }

    /// The address translation table.
    pub fn translation_mut(&mut self) -> &mut AddressTranslation {
        &mut self.translation
    }

    fn access(&mut self, cmd: CacheCommand, addr: Address) {
        // Keep the translation table warm; the paper's machine
        // translated every access in hardware.
        self.translation.translate(addr);
        if let Some(t) = &mut self.trace {
            t.push(TraceEntry {
                step: self.step,
                command: cmd,
                address: addr,
            });
        }
        let hit = match &mut self.attachment {
            Attachment::Cached(c) => {
                let out = c.access(cmd, addr);
                self.stall_ns += out.stall_ns;
                out.hit
            }
            Attachment::Uncached {
                stats,
                miss_extra_ns,
            } => {
                let c = stats.area_mut(addr.area());
                match cmd {
                    CacheCommand::Read => c.reads += 1,
                    CacheCommand::Write => c.writes += 1,
                    CacheCommand::WriteStack => c.write_stacks += 1,
                }
                stats.stall_ns += *miss_extra_ns;
                self.stall_ns += *miss_extra_ns;
                false
            }
        };
        if let Some(ring) = &mut self.events {
            ring.push(ObsEvent::cache_access(
                self.step,
                cmd.code(),
                addr.area().index() as u32,
                hit,
            ));
        }
    }

    /// Counted read of one word.
    ///
    /// # Errors
    ///
    /// Propagates [`psi_core::PsiError::OutOfArea`] for reads beyond
    /// the written extent.
    #[inline]
    pub fn read(&mut self, addr: Address) -> Result<Word> {
        if self.measured {
            self.access(CacheCommand::Read, addr);
        }
        self.mem.read(addr)
    }

    /// Counted write of one word.
    ///
    /// # Errors
    ///
    /// Propagates [`psi_core::PsiError::StackOverflow`] if the area
    /// limit is exceeded.
    #[inline]
    pub fn write(&mut self, addr: Address, word: Word) -> Result<()> {
        if self.measured {
            self.access(CacheCommand::Write, addr);
        }
        self.mem.write(addr, word)
    }

    /// Counted write using the specialized write-stack command (for
    /// pushes to a stack top).
    ///
    /// # Errors
    ///
    /// Propagates [`psi_core::PsiError::StackOverflow`] if the area
    /// limit is exceeded.
    #[inline]
    pub fn write_stack(&mut self, addr: Address, word: Word) -> Result<()> {
        if self.measured {
            self.access(CacheCommand::WriteStack, addr);
        }
        self.mem.write(addr, word)
    }

    /// Uncounted read (console/debug path).
    ///
    /// # Errors
    ///
    /// Propagates [`psi_core::PsiError::OutOfArea`].
    pub fn peek(&self, addr: Address) -> Result<Word> {
        self.mem.read(addr)
    }

    /// Uncounted write (code loading path).
    ///
    /// # Errors
    ///
    /// Propagates [`psi_core::PsiError::StackOverflow`].
    pub fn poke(&mut self, addr: Address, word: Word) -> Result<()> {
        self.mem.write(addr, word)
    }
}

impl Default for MemBus {
    /// Defaults to the production PSI cache.
    fn default() -> MemBus {
        MemBus::with_psi_cache()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use psi_core::{Area, ProcessId};

    fn addr(off: u32) -> Address {
        Address::new(ProcessId::ZERO, Area::LocalStack, off)
    }

    #[test]
    fn counted_accesses_reach_stats() {
        let mut bus = MemBus::with_psi_cache();
        bus.write_stack(addr(0), Word::int(1)).unwrap();
        bus.read(addr(0)).unwrap();
        bus.write(addr(0), Word::int(2)).unwrap();
        let t = bus.cache_stats().total();
        assert_eq!(t.reads, 1);
        assert_eq!(t.writes, 1);
        assert_eq!(t.write_stacks, 1);
    }

    #[test]
    fn peek_poke_are_uncounted() {
        let mut bus = MemBus::with_psi_cache();
        bus.poke(addr(3), Word::int(9)).unwrap();
        assert_eq!(bus.peek(addr(3)).unwrap().int_value(), Some(9));
        assert_eq!(bus.cache_stats().total().accesses(), 0);
        assert_eq!(bus.stall_ns(), 0);
    }

    #[test]
    fn uncached_bus_stalls_every_access() {
        let mut bus = MemBus::without_cache();
        bus.write_stack(addr(0), Word::int(1)).unwrap();
        bus.read(addr(0)).unwrap();
        assert_eq!(bus.stall_ns(), 2 * 600);
    }

    #[test]
    fn cached_bus_stalls_only_on_misses() {
        let mut bus = MemBus::with_psi_cache();
        bus.write_stack(addr(0), Word::int(1)).unwrap(); // miss, no fetch
        let before = bus.stall_ns();
        bus.read(addr(0)).unwrap(); // hit
        assert_eq!(bus.stall_ns(), before);
    }

    #[test]
    fn trace_records_step_and_command() {
        let mut bus = MemBus::with_psi_cache();
        bus.enable_trace();
        bus.tick(200);
        bus.read(addr(0)).unwrap_err(); // read of unwritten cell: still traced
        bus.tick(200);
        bus.write_stack(addr(0), Word::nil()).unwrap();
        let trace = bus.take_trace();
        assert_eq!(trace.len(), 2);
        assert_eq!(trace[0].step, 1);
        assert_eq!(trace[0].command, CacheCommand::Read);
        assert_eq!(trace[1].step, 2);
        assert_eq!(trace[1].command, CacheCommand::WriteStack);
        assert_eq!(trace[1].address, addr(0));
    }

    #[test]
    fn event_ring_records_cache_accesses_chronologically() {
        use psi_core::EventKind;
        let mut bus = MemBus::with_psi_cache();
        assert!(!bus.events_enabled());
        bus.write_stack(addr(0), Word::int(1)).unwrap(); // not recorded yet
        bus.set_events_enabled(true);
        bus.tick(200);
        bus.read(addr(0)).unwrap(); // hit
        bus.tick(200);
        bus.read(addr(4096)).unwrap_err(); // miss (unwritten, still counted)
        bus.record_event(psi_core::ObsEvent::backtrack(bus.step(), 2));
        let events = bus.take_events();
        assert_eq!(events.len(), 3);
        assert_eq!(events[0].kind, EventKind::CacheAccess);
        assert_eq!(events[0].step, 1);
        assert_eq!(events[0].a, CacheCommand::Read.code());
        assert_eq!(events[0].c, 1, "resident block: hit");
        assert_eq!(events[1].c, 0, "cold block: miss");
        assert_eq!(events[2].kind, EventKind::Backtrack);
        assert_eq!(bus.events_dropped(), 0);
        // Taking drains the ring but keeps recording on.
        assert!(bus.events_enabled());
        assert!(bus.take_events().is_empty());
        bus.set_events_enabled(false);
        bus.write(addr(0), Word::int(2)).unwrap();
        assert!(bus.take_events().is_empty());
    }

    #[test]
    fn throughput_lane_skips_all_measurement() {
        let mut bus = MemBus::with_psi_cache();
        assert_eq!(bus.measurement(), Measurement::Full);
        bus.set_measurement(Measurement::Off);
        assert_eq!(bus.measurement(), Measurement::Off);
        bus.enable_trace();
        bus.set_events_enabled(true);
        bus.tick(200);
        bus.write_stack(addr(0), Word::int(7)).unwrap();
        bus.tick(200);
        assert_eq!(bus.read(addr(0)).unwrap().int_value(), Some(7));
        bus.write(addr(0), Word::int(8)).unwrap();
        // Storage works and steps count, but no measurement happened.
        assert_eq!(bus.step(), 2);
        assert_eq!(bus.cache_stats().total().accesses(), 0);
        assert_eq!(bus.stall_ns(), 0);
        assert!(bus.take_trace().is_empty());
        assert!(bus.take_events().is_empty());
    }

    #[test]
    fn uncached_throughput_lane_pays_no_stall() {
        let mut bus = MemBus::without_cache();
        bus.set_measurement(Measurement::Off);
        bus.write_stack(addr(0), Word::int(1)).unwrap();
        bus.read(addr(0)).unwrap();
        assert_eq!(bus.stall_ns(), 0);
        assert_eq!(bus.cache_stats().total().accesses(), 0);
    }

    #[test]
    fn reset_measurement_clears_counters_not_memory() {
        let mut bus = MemBus::with_psi_cache();
        bus.write_stack(addr(0), Word::int(5)).unwrap();
        bus.reset_measurement();
        assert_eq!(bus.cache_stats().total().accesses(), 0);
        assert_eq!(bus.stall_ns(), 0);
        assert_eq!(bus.peek(addr(0)).unwrap().int_value(), Some(5));
    }
}
