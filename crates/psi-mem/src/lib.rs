//! Simulated PSI memory subsystem.
//!
//! The PSI gives each process's four stacks and the shared heap
//! *independent logical address spaces* ("areas", §2.1) and maps them
//! onto physical memory through a hardware address translation table.
//! This crate models:
//!
//! * [`Memory`] — word storage for every (process, area) pair,
//! * [`AddressTranslation`] — the page-grained translation table,
//! * [`MemBus`] — the memory unit the interpreter talks to: every
//!   access goes through the attached [`Cache`](psi_cache::Cache)
//!   (or a bypass path when simulating the cache-less machine for the
//!   Figure 1 baseline), accumulates stall time, and can be traced for
//!   the COLLECT/PMMS tooling.
//!
//! # Example
//!
//! ```
//! use psi_core::{Address, Area, ProcessId, Word};
//! use psi_mem::MemBus;
//!
//! let mut bus = MemBus::with_psi_cache();
//! let a = Address::new(ProcessId::ZERO, Area::GlobalStack, 0);
//! bus.write_stack(a, Word::int(7))?;
//! assert_eq!(bus.read(a)?.int_value(), Some(7));
//! # Ok::<(), psi_core::PsiError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bus;
mod storage;
mod translate;

pub use bus::{MemBus, TraceEntry};
pub use storage::Memory;
pub use translate::{AddressTranslation, PAGE_WORDS};
