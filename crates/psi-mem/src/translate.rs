//! The hardware address translation table.
//!
//! §2.1: "In order to allocate physical memory pieces to the each area
//! a hardware address translation table is supported." We model it at
//! page granularity; frames are allocated on first touch. The table is
//! not on the critical path of the measurements (the paper never
//! reports TLB-style numbers) but it keeps the memory model honest:
//! every logical address the interpreter touches maps to a distinct
//! physical frame, and the mapping statistics are exposed.

use psi_core::Address;
use std::collections::HashMap;

/// Words per translation page.
pub const PAGE_WORDS: u32 = 1024;

/// Page-grained translation from logical addresses to physical frames.
#[derive(Debug, Clone, Default)]
pub struct AddressTranslation {
    frames: HashMap<u32, u32>,
    next_frame: u32,
}

impl AddressTranslation {
    /// Creates an empty table.
    pub fn new() -> AddressTranslation {
        AddressTranslation::default()
    }

    /// Translates `addr`, allocating a frame on first touch, and
    /// returns the physical word address.
    pub fn translate(&mut self, addr: Address) -> u64 {
        let page = addr.raw() / PAGE_WORDS;
        let next = self.next_frame;
        let frame = *self.frames.entry(page).or_insert_with(|| next);
        if frame == next {
            self.next_frame += 1;
        }
        (frame as u64) * PAGE_WORDS as u64 + (addr.raw() % PAGE_WORDS) as u64
    }

    /// Number of pages currently mapped.
    pub fn mapped_pages(&self) -> usize {
        self.frames.len()
    }

    /// Physical memory footprint in words.
    pub fn footprint_words(&self) -> u64 {
        self.frames.len() as u64 * PAGE_WORDS as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use psi_core::{Area, ProcessId};

    #[test]
    fn same_page_same_frame() {
        let mut t = AddressTranslation::new();
        let a = Address::new(ProcessId::ZERO, Area::Heap, 0);
        let b = Address::new(ProcessId::ZERO, Area::Heap, PAGE_WORDS - 1);
        let pa = t.translate(a);
        let pb = t.translate(b);
        assert_eq!(pa / PAGE_WORDS as u64, pb / PAGE_WORDS as u64);
        assert_eq!(t.mapped_pages(), 1);
    }

    #[test]
    fn different_areas_different_frames() {
        let mut t = AddressTranslation::new();
        let a = Address::new(ProcessId::ZERO, Area::Heap, 0);
        let b = Address::new(ProcessId::ZERO, Area::LocalStack, 0);
        assert_ne!(
            t.translate(a) / PAGE_WORDS as u64,
            t.translate(b) / PAGE_WORDS as u64
        );
        assert_eq!(t.mapped_pages(), 2);
    }

    #[test]
    fn translation_is_stable() {
        let mut t = AddressTranslation::new();
        let a = Address::new(ProcessId::new(2), Area::TrailStack, 12345);
        let first = t.translate(a);
        for _ in 0..10 {
            assert_eq!(t.translate(a), first);
        }
        assert_eq!(
            t.footprint_words(),
            PAGE_WORDS as u64 * t.mapped_pages() as u64
        );
    }
}
