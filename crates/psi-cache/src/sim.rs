//! The cache simulator proper.

use crate::{CacheConfig, CacheStats, WritePolicy};
use psi_core::Address;

/// A cache command, as issued by the microprogram (§4.2, Table 3
/// columns).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CacheCommand {
    /// Read one word.
    Read,
    /// Write one word (read-modify-write of a block on a miss under
    /// store-in).
    Write,
    /// Write one word to a stack top: on a miss the block is allocated
    /// *without* being read from memory, because the continuation of a
    /// push sequence will overwrite it anyway (spec item (g)).
    WriteStack,
}

impl CacheCommand {
    /// Is this one of the two write commands?
    pub fn is_write(self) -> bool {
        matches!(self, CacheCommand::Write | CacheCommand::WriteStack)
    }

    /// A stable numeric code, used as the payload of cache-access
    /// observability events ([`psi_core::ObsEvent::cache_access`]).
    pub fn code(self) -> u32 {
        match self {
            CacheCommand::Read => 0,
            CacheCommand::Write => 1,
            CacheCommand::WriteStack => 2,
        }
    }

    /// Decodes a [`CacheCommand::code`]; `None` for unknown codes.
    pub fn from_code(code: u32) -> Option<CacheCommand> {
        match code {
            0 => Some(CacheCommand::Read),
            1 => Some(CacheCommand::Write),
            2 => Some(CacheCommand::WriteStack),
            _ => None,
        }
    }
}

/// The result of one cache access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessOutcome {
    /// Did the access hit in the cache?
    pub hit: bool,
    /// Extra stall beyond the 200 ns microcycle, in nanoseconds.
    pub stall_ns: u64,
}

#[derive(Debug, Clone, Copy, Default)]
struct Line {
    valid: bool,
    dirty: bool,
    tag: u32,
    last_used: u64,
}

/// A simulated PSI cache.
///
/// Drive it either directly from the machine simulator or by replaying
/// a recorded trace (the PMMS methodology, see `psi-tools`).
#[derive(Debug, Clone)]
pub struct Cache {
    config: CacheConfig,
    lines: Vec<Line>,
    stats: CacheStats,
    stamp: u64,
    /// Simulated time at which main memory becomes free again; used to
    /// model write-back and write-through memory occupancy.
    mem_free_at_ns: u64,
    /// The cache's own access clock, advanced by each access's cost.
    now_ns: u64,
}

impl Cache {
    /// Creates a cache with the given configuration.
    ///
    /// # Panics
    ///
    /// Panics if the configuration geometry is invalid
    /// (see [`CacheConfig::assert_valid`]).
    pub fn new(config: CacheConfig) -> Cache {
        config.assert_valid();
        let lines = vec![Line::default(); config.blocks() as usize];
        Cache {
            config,
            lines,
            stats: CacheStats::new(),
            stamp: 0,
            mem_free_at_ns: 0,
            now_ns: 0,
        }
    }

    /// The configuration this cache was built with.
    pub fn config(&self) -> &CacheConfig {
        &self.config
    }

    /// The statistics accumulated so far.
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    /// Resets statistics (but not cache contents); used to exclude
    /// warm-up from measurements.
    pub fn reset_stats(&mut self) {
        self.stats = CacheStats::new();
    }

    /// Advances the cache clock by `ns` of non-memory computation.
    /// Letting time pass drains the write-back/write-through traffic
    /// that would otherwise stall later misses.
    pub fn advance(&mut self, ns: u64) {
        self.now_ns += ns;
    }

    /// Performs one access and returns whether it hit and how long it
    /// stalled the processor beyond the 200 ns cycle.
    pub fn access(&mut self, cmd: CacheCommand, addr: Address) -> AccessOutcome {
        self.stamp += 1;
        let block_addr = addr.raw() / self.config.block_words;
        let sets = self.config.sets();
        let set = (block_addr % sets) as usize;
        let tag = block_addr / sets;
        let ways = self.config.ways as usize;
        let base = set * ways;

        let mut hit_way = None;
        for w in 0..ways {
            let line = &self.lines[base + w];
            if line.valid && line.tag == tag {
                hit_way = Some(w);
                break;
            }
        }

        let hit = hit_way.is_some();
        let mut stall = 0u64;

        match (cmd, self.config.policy) {
            (CacheCommand::Read, _) => {
                if let Some(w) = hit_way {
                    self.touch(base + w);
                } else {
                    stall += self.fetch_block(base, ways, tag, false);
                }
            }
            (CacheCommand::Write, WritePolicy::StoreIn)
            | (CacheCommand::WriteStack, WritePolicy::StoreIn) => {
                let no_fetch = cmd == CacheCommand::WriteStack && self.config.write_stack_no_fetch;
                if let Some(w) = hit_way {
                    self.touch(base + w);
                    self.lines[base + w].dirty = true;
                } else if no_fetch {
                    // Allocate without read-in: the block is claimed and
                    // dirtied but memory is never consulted, so the push
                    // completes within the cycle.
                    stall += self.allocate_block(base, ways, tag, true, false, 0);
                } else {
                    stall += self.fetch_block(base, ways, tag, true);
                }
            }
            (CacheCommand::Write, WritePolicy::StoreThrough)
            | (CacheCommand::WriteStack, WritePolicy::StoreThrough) => {
                // Write-through with one-deep write buffer and no write
                // allocation: update the block on a hit, and send the
                // word to memory in either case.
                if let Some(w) = hit_way {
                    self.touch(base + w);
                }
                stall += self.wait_for_memory(stall);
                self.occupy_memory_after(stall);
                self.stats.through_writes += 1;
            }
        }

        self.record(cmd, addr, hit);
        self.now_ns += self.config.hit_ns + stall;
        AccessOutcome {
            hit,
            stall_ns: stall,
        }
    }

    /// Runs a whole trace through the cache, advancing the clock by
    /// `step_ns` of computation between successive accesses, and
    /// returns the total simulated time (computation + stalls).
    pub fn run_trace<'a, I>(&mut self, trace: I, step_ns: u64) -> u64
    where
        I: IntoIterator<Item = &'a (CacheCommand, Address)>,
    {
        let mut total = 0u64;
        for &(cmd, addr) in trace {
            self.advance(step_ns);
            total += step_ns;
            let outcome = self.access(cmd, addr);
            total += outcome.stall_ns;
        }
        total
    }

    fn touch(&mut self, idx: usize) {
        self.lines[idx].last_used = self.stamp;
    }

    /// Waits until main memory is free, measured from this access's
    /// current stall point (`now_ns + stall_so_far`); returns the
    /// extra wait in ns.
    fn wait_for_memory(&self, stall_so_far: u64) -> u64 {
        self.mem_free_at_ns
            .saturating_sub(self.now_ns + stall_so_far)
    }

    /// Marks main memory busy for `memory_busy_ns` beyond this
    /// access's current stall point. Every memory operation — block
    /// fetch, write-back, through-write — occupies memory this way, so
    /// a following operation queues behind it via
    /// [`Cache::wait_for_memory`].
    fn occupy_memory_after(&mut self, stall_so_far: u64) {
        self.mem_free_at_ns = self.now_ns + stall_so_far + self.config.memory_busy_ns;
    }

    /// Picks a victim way in the set, writing back a dirty victim.
    /// `stall_so_far` is the stall the access has already accumulated,
    /// so the write-back queues behind any transfer the same access
    /// started (e.g. its own block fetch). Returns the extra stall
    /// incurred here.
    fn allocate_block(
        &mut self,
        base: usize,
        ways: usize,
        tag: u32,
        dirty: bool,
        fetched: bool,
        stall_so_far: u64,
    ) -> u64 {
        let mut victim = 0usize;
        let mut best = u64::MAX;
        for w in 0..ways {
            let line = &self.lines[base + w];
            if !line.valid {
                victim = w;
                break;
            }
            if line.last_used < best {
                best = line.last_used;
                victim = w;
            }
        }
        let mut stall = 0u64;
        let line = self.lines[base + victim];
        if line.valid && line.dirty {
            // The dirty victim must be stored before the set entry can
            // be reused; the store occupies memory behind the access.
            stall += self.wait_for_memory(stall_so_far);
            self.occupy_memory_after(stall_so_far + stall);
            self.stats.writebacks += 1;
        }
        if fetched {
            self.stats.block_fetches += 1;
        }
        self.lines[base + victim] = Line {
            valid: true,
            dirty,
            tag,
            last_used: self.stamp,
        };
        stall
    }

    /// Fetches a block from memory into the set. Returns the stall.
    fn fetch_block(&mut self, base: usize, ways: usize, tag: u32, dirty: bool) -> u64 {
        let mut stall = self.wait_for_memory(0);
        stall += self.config.miss_extra_ns();
        // The block transfer keeps main memory busy beyond the
        // processor's own miss stall (spec (f)): a back-to-back miss,
        // a write-back, or a through-write racing this fetch queues
        // behind it. Omitting this under-counted clustered-miss
        // stalls.
        self.occupy_memory_after(stall);
        stall += self.allocate_block(base, ways, tag, dirty, true, stall);
        stall
    }

    fn record(&mut self, cmd: CacheCommand, addr: Address, hit: bool) {
        let c = self.stats.area_mut(addr.area());
        match cmd {
            CacheCommand::Read => {
                c.reads += 1;
                if hit {
                    c.read_hits += 1;
                }
            }
            CacheCommand::Write => {
                c.writes += 1;
                if hit {
                    c.write_hits += 1;
                }
            }
            CacheCommand::WriteStack => {
                c.write_stacks += 1;
                if hit {
                    c.write_stack_hits += 1;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use psi_core::{Area, ProcessId};

    fn addr(off: u32) -> Address {
        Address::new(ProcessId::ZERO, Area::LocalStack, off)
    }

    fn tiny() -> Cache {
        // 4 sets x 2 ways x 4-word blocks = 32 words.
        Cache::new(CacheConfig::psi_with_capacity(32))
    }

    #[test]
    fn cold_miss_then_hit() {
        let mut c = tiny();
        assert!(!c.access(CacheCommand::Read, addr(0)).hit);
        assert!(c.access(CacheCommand::Read, addr(0)).hit);
        assert!(
            c.access(CacheCommand::Read, addr(3)).hit,
            "same 4-word block"
        );
        assert!(!c.access(CacheCommand::Read, addr(4)).hit, "next block");
    }

    #[test]
    fn lru_eviction_within_set() {
        // tiny() = 8 blocks, 2 ways, 4 sets; blocks 16 words apart
        // share a set.
        let mut c = tiny();
        c.access(CacheCommand::Read, addr(0));
        c.access(CacheCommand::Read, addr(16));
        // touch block 0 so block at offset 16 becomes LRU
        c.access(CacheCommand::Read, addr(0));
        c.access(CacheCommand::Read, addr(32)); // evicts the block at 16
        assert!(c.access(CacheCommand::Read, addr(0)).hit);
        assert!(!c.access(CacheCommand::Read, addr(16)).hit, "was evicted");
    }

    #[test]
    fn write_stack_miss_does_not_fetch() {
        let mut c = tiny();
        let out = c.access(CacheCommand::WriteStack, addr(0));
        assert!(!out.hit);
        assert_eq!(out.stall_ns, 0, "no block read-in on write-stack miss");
        assert_eq!(c.stats().block_fetches, 0);
        // The block is now resident.
        assert!(c.access(CacheCommand::Read, addr(1)).hit);
    }

    #[test]
    fn plain_write_miss_fetches_under_store_in() {
        let mut c = tiny();
        let out = c.access(CacheCommand::Write, addr(0));
        assert!(!out.hit);
        assert_eq!(out.stall_ns, 600);
        assert_eq!(c.stats().block_fetches, 1);
    }

    #[test]
    fn dirty_eviction_writes_back() {
        let mut c = tiny();
        c.access(CacheCommand::WriteStack, addr(0)); // dirty block 0 in set 0
        c.access(CacheCommand::Read, addr(16)); // fill way 2 of set 0
        c.access(CacheCommand::Read, addr(32)); // evicts dirty block 0
        assert_eq!(c.stats().writebacks, 1);
    }

    #[test]
    fn store_through_sends_every_write_to_memory() {
        let mut c = Cache::new(CacheConfig {
            capacity_words: 32,
            ..CacheConfig::psi_store_through()
        });
        c.access(CacheCommand::Read, addr(0));
        c.access(CacheCommand::Write, addr(0));
        c.access(CacheCommand::Write, addr(1));
        assert_eq!(c.stats().through_writes, 2);
        assert_eq!(c.stats().writebacks, 0);
    }

    #[test]
    fn back_to_back_through_writes_stall_on_the_buffer() {
        let mut c = Cache::new(CacheConfig {
            capacity_words: 32,
            ..CacheConfig::psi_store_through()
        });
        c.access(CacheCommand::Read, addr(0)); // make it resident
        c.advance(10_000); // drain the block fetch's memory occupancy
        let w1 = c.access(CacheCommand::Write, addr(0));
        let w2 = c.access(CacheCommand::Write, addr(1));
        assert_eq!(w1.stall_ns, 0, "buffer empty");
        assert!(w2.stall_ns > 0, "buffer still draining");
        // After enough computation time the buffer has drained.
        c.advance(10_000);
        let w3 = c.access(CacheCommand::Write, addr(2));
        assert_eq!(w3.stall_ns, 0);
    }

    /// Regression: `fetch_block` used to leave `mem_free_at_ns`
    /// untouched, so the block transfer of a miss never occupied main
    /// memory and an immediately following miss paid only its own
    /// transfer stall. The second of two back-to-back misses must also
    /// wait out the first fetch's remaining occupancy.
    #[test]
    fn back_to_back_misses_queue_on_memory() {
        let mut c = tiny();
        let m1 = c.access(CacheCommand::Read, addr(0));
        let m2 = c.access(CacheCommand::Read, addr(4));
        assert_eq!(m1.stall_ns, 600, "first miss: transfer only");
        assert_eq!(
            m2.stall_ns,
            600 + 600,
            "second miss: residual occupancy + transfer"
        );
        // Enough computation time between misses drains the occupancy.
        c.advance(10_000);
        let m3 = c.access(CacheCommand::Read, addr(8));
        assert_eq!(m3.stall_ns, 600, "drained: transfer only");
        // Hit ratios are untouched by the timing fix: three accesses,
        // three misses, exactly three block fetches.
        assert_eq!(c.stats().total().accesses(), 3);
        assert_eq!(c.stats().total().hits(), 0);
        assert_eq!(c.stats().block_fetches, 3);
    }

    /// Regression: a through-write racing a just-issued block fetch
    /// must queue behind the fetch's memory occupancy.
    #[test]
    fn through_write_queues_behind_block_fetch() {
        let mut c = Cache::new(CacheConfig {
            capacity_words: 32,
            ..CacheConfig::psi_store_through()
        });
        let miss = c.access(CacheCommand::Read, addr(0));
        assert_eq!(miss.stall_ns, 600);
        let w = c.access(CacheCommand::Write, addr(0));
        assert!(
            w.stall_ns > 0,
            "write must wait for the in-flight fetch, got {}",
            w.stall_ns
        );
    }

    /// A dirty eviction behind the same access's block fetch queues
    /// its write-back after the fetch instead of re-waiting the stale
    /// pre-fetch period (the old code double-counted the initial wait
    /// and never serialized the write-back behind the fetch).
    #[test]
    fn dirty_eviction_queues_writeback_behind_own_fetch() {
        let mut c = tiny();
        // Dirty both ways of set 0 without any fetch traffic.
        c.access(CacheCommand::WriteStack, addr(0));
        c.access(CacheCommand::WriteStack, addr(16));
        c.advance(10_000);
        // Store-in write miss in set 0: fetches the new block and must
        // write back the LRU dirty victim behind that fetch.
        let out = c.access(CacheCommand::Write, addr(32));
        assert_eq!(c.stats().writebacks, 1);
        assert!(
            out.stall_ns > 600,
            "write-back must add stall beyond the fetch, got {}",
            out.stall_ns
        );
    }

    #[test]
    fn stats_account_every_access() {
        let mut c = tiny();
        for i in 0..100 {
            c.access(CacheCommand::Read, addr(i % 40));
            c.access(CacheCommand::WriteStack, addr(200 + (i % 16)));
        }
        let t = c.stats().total();
        assert_eq!(t.accesses(), 200);
        assert_eq!(t.hits() + t.misses(), 200);
        assert!(c.stats().hit_ratio_pct().unwrap() > 50.0);
    }

    #[test]
    fn run_trace_accumulates_time() {
        let trace: Vec<(CacheCommand, Address)> =
            (0..10).map(|i| (CacheCommand::Read, addr(i * 4))).collect();
        let mut c = tiny();
        let time = c.run_trace(&trace, 200);
        // 10 steps of 200 ns + 10 cold misses of 600 ns each... but the
        // tiny cache holds only 8 blocks (4 sets x 2 ways) so all
        // 10 are misses: at least 2000 + 6000.
        assert!(time >= 2000 + 6 * 600, "time = {time}");
        assert_eq!(c.stats().total().accesses(), 10);
    }

    #[test]
    fn larger_cache_never_hits_less_sequential() {
        // On a sequential read sweep, a bigger cache can only do better.
        let sweep: Vec<(CacheCommand, Address)> = (0..2048)
            .map(|i| (CacheCommand::Read, addr(i % 512)))
            .collect();
        let mut hits_prev = 0;
        for cap in [32u32, 128, 512, 2048] {
            let mut c = Cache::new(CacheConfig::psi_with_capacity(cap));
            c.run_trace(&sweep, 200);
            let hits = c.stats().total().hits();
            assert!(hits >= hits_prev, "cap {cap}: {hits} < {hits_prev}");
            hits_prev = hits;
        }
    }
}
